/**
 * Figure 9 reproduction: context-switch latency (mean and jitter) for
 * every core x RTOSUnit configuration over the RTOSBench-like suite,
 * 20 iterations per test, 8-entry hardware lists, single-cycle SRAM.
 *
 * Prints one block per core with one row per configuration:
 * min / mean / max / jitter in cycles, plus the reduction of the mean
 * versus (vanilla) — the quantity the paper's headline claims use.
 *
 * The whole grid runs through the SweepRunner: --threads N shards the
 * independent simulations across a thread pool with identical results
 * at any N (each point is an exact, isolated simulation; results are
 * collected in grid order). --out/--trace emit machine-readable JSONL:
 * one result line per grid point, and one line per recorded switch
 * carrying all six phase timestamps (irq-assert, trap-taken,
 * store-done, sched-done, load-done, mret).
 *
 * Usage: bench_fig9_latency [--iterations N] [--per-workload]
 *                           [--threads N] [--out results.jsonl]
 *                           [--trace trace.jsonl]
 *                           [--no-fast-forward] [--no-predecode]
 *                           [--no-block-exec] [--timing]
 *
 * --no-fast-forward forces the per-cycle reference mode of the
 * simulation kernel, --no-predecode disables the decode-once text
 * image and --no-block-exec disables superblock execution (all
 * byte-identical results, just slower); --timing adds the
 * nondeterministic wall_ms/mips fields to --out lines. The --out
 * stream starts with a schema-stamped header line.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    unsigned iterations = 20;
    unsigned threads = 1;
    bool per_workload = false;
    bool no_fast_forward = false;
    bool no_predecode = false;
    bool no_block_exec = false;
    bool include_timing = false;
    std::string out_path;
    std::string trace_path;
    ArgParser parser("Figure 9: context-switch latency per core and "
                     "RTOSUnit configuration");
    parser.addUnsigned("--iterations", &iterations,
                       "workload iterations per run");
    parser.addUnsigned("--threads", &threads, "worker threads");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.addString("--trace", &trace_path,
                     "per-switch trace JSONL path");
    parser.addFlag("--per-workload", &per_workload,
                   "print one table per workload");
    parser.addFlag("--no-fast-forward", &no_fast_forward,
                   "tick every cycle (reference mode)");
    parser.addFlag("--no-predecode", &no_predecode,
                   "decode from memory on every fetch");
    parser.addFlag("--no-block-exec", &no_block_exec,
                   "disable superblock execution");
    parser.addFlag("--timing", &include_timing,
                   "include wall-clock timing in the output");
    parser.parse(argc, argv);
    const bool fast_forward = !no_fast_forward;
    setQuiet(true);

    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p, CoreKind::kCva6, CoreKind::kNax};
    spec.units = RtosUnitConfig::latencyConfigs();
    spec.workloads = standardWorkloadNames();
    spec.iterations = iterations;

    const bool capture_trace = !trace_path.empty();
    SweepRunner runner(threads);
    // --no-fast-forward runs the per-cycle reference mode; results are
    // identical by construction (see tests/test_differential.cc), the
    // knob exists to prove exactly that and to debug the kernel.
    runner.setFastForward(fast_forward);
    runner.setPredecode(!no_predecode);
    runner.setBlockExec(!no_block_exec);
    const auto results = runner.run(spec, capture_trace);

    std::printf("Figure 9: context-switch latencies (cycles), "
                "RTOSBench-like suite x %u iterations (%u threads)\n",
                iterations, runner.threads());

    for (CoreKind core : spec.cores) {
        std::printf("\n=== %s ===\n", coreKindName(core));
        std::printf("%-9s %7s %8s %8s %8s %9s %9s\n", "config", "min",
                    "mean", "max", "jitter", "dMean%", "switches");

        double vanilla_mean = 0.0;
        for (const RtosUnitConfig &cfg : spec.units) {
            bool all_ok = true;
            std::vector<const SweepResult *> rows;
            for (const SweepResult &r : results) {
                if (r.point.core == core && r.point.unit == cfg) {
                    all_ok = all_ok && r.run.ok;
                    rows.push_back(&r);
                }
            }
            const SampleStats s = mergeSweepLatencies(
                results, [&](const SweepResult &r) {
                    return r.point.core == core && r.point.unit == cfg;
                });
            if (s.empty() || !all_ok) {
                std::printf("%-9s   RUN FAILED\n", cfg.name().c_str());
                continue;
            }
            if (cfg.isVanilla())
                vanilla_mean = s.mean();
            const double dmean =
                vanilla_mean > 0
                    ? 100.0 * (1.0 - s.mean() / vanilla_mean)
                    : 0.0;
            std::printf("%-9s %7.0f %8.1f %8.0f %8.0f %8.1f%% %9llu\n",
                        cfg.name().c_str(), s.min(), s.mean(), s.max(),
                        s.jitter(), dmean,
                        static_cast<unsigned long long>(s.count()));

            if (per_workload) {
                for (const SweepResult *r : rows) {
                    if (r->run.switchLatency.empty())
                        continue;
                    const SampleStats &w = r->run.switchLatency;
                    std::printf("    %-20s %6.0f %8.1f %8.0f %8.0f\n",
                                r->point.workload.c_str(), w.min(),
                                w.mean(), w.max(), w.jitter());
                }
            }
        }
    }

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
        writeResultsHeaderJsonl(os, "fig9_latency");
        writeResultsJsonl(os, results, include_timing);
        std::printf("\nresults: %s (%zu points)\n", out_path.c_str(),
                    results.size());
    }
    if (capture_trace) {
        std::ofstream os(trace_path);
        if (!os)
            fatal("cannot open --trace file '%s'", trace_path.c_str());
        writeTraceJsonl(os, results);
        std::printf("trace:   %s\n", trace_path.c_str());
    }
    return 0;
}
