/**
 * Figure 9 reproduction: context-switch latency (mean and jitter) for
 * every core x RTOSUnit configuration over the RTOSBench-like suite,
 * 20 iterations per test, 8-entry hardware lists, single-cycle SRAM.
 *
 * Prints one block per core with one row per configuration:
 * min / mean / max / jitter in cycles, plus the reduction of the mean
 * versus (vanilla) — the quantity the paper's headline claims use.
 *
 * Usage: bench_fig9_latency [--iterations N] [--per-workload]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/experiment.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    unsigned iterations = 20;
    bool per_workload = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--iterations") && i + 1 < argc)
            iterations = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--per-workload"))
            per_workload = true;
    }
    setQuiet(true);

    const CoreKind cores[] = {CoreKind::kCv32e40p, CoreKind::kCva6,
                              CoreKind::kNax};

    std::printf("Figure 9: context-switch latencies (cycles), "
                "RTOSBench-like suite x %u iterations\n",
                iterations);

    for (CoreKind core : cores) {
        std::printf("\n=== %s ===\n", coreKindName(core));
        std::printf("%-9s %7s %8s %8s %8s %9s %9s\n", "config", "min",
                    "mean", "max", "jitter", "dMean%", "switches");

        double vanilla_mean = 0.0;
        for (const RtosUnitConfig &cfg :
             RtosUnitConfig::latencyConfigs()) {
            const auto runs = runSuite(core, cfg, iterations);
            bool all_ok = true;
            for (const RunResult &r : runs)
                all_ok = all_ok && r.ok;
            const SampleStats s = mergeSwitchLatencies(runs);
            if (s.empty() || !all_ok) {
                std::printf("%-9s   RUN FAILED\n", cfg.name().c_str());
                continue;
            }
            if (cfg.isVanilla())
                vanilla_mean = s.mean();
            const double dmean =
                vanilla_mean > 0
                    ? 100.0 * (1.0 - s.mean() / vanilla_mean)
                    : 0.0;
            std::printf("%-9s %7.0f %8.1f %8.0f %8.0f %8.1f%% %9llu\n",
                        cfg.name().c_str(), s.min(), s.mean(), s.max(),
                        s.jitter(), dmean,
                        static_cast<unsigned long long>(s.count()));

            if (per_workload) {
                for (const RunResult &r : runs) {
                    if (r.switchLatency.empty())
                        continue;
                    const SampleStats &w = r.switchLatency;
                    std::printf("    %-20s %6.0f %8.1f %8.0f %8.0f\n",
                                r.workload.c_str(), w.min(), w.mean(),
                                w.max(), w.jitter());
                }
            }
        }
    }
    return 0;
}
