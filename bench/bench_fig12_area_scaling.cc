/**
 * Figure 12 reproduction: absolute area of CV32E40P with
 * hardware-scheduling-only (T) as the ready/delay list length sweeps
 * 0..64 slots. The paper reports approximately linear growth reaching
 * +14 % at 64 slots; length 0 is the unmodified core.
 */

#include <cstdio>

#include "asic/asic.hh"

using namespace rtu;

int
main()
{
    std::printf("Figure 12: ASIC area scaling with scheduler list "
                "length, CV32E40P (T)\n\n");
    std::printf("%6s %12s %10s %10s\n", "slots", "area[mm2]", "kGE",
                "overhead");

    const AreaResult base =
        AsicModel::area(CoreKind::kCv32e40p, RtosUnitConfig::vanilla());
    std::printf("%6u %12.4f %10.1f %9.1f%%\n", 0u, base.areaMm2,
                base.totalGE / 1000.0, 0.0);

    for (unsigned slots : {2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
        RtosUnitConfig cfg = RtosUnitConfig::fromName("T");
        cfg.listSlots = slots;
        const AreaResult a = AsicModel::area(CoreKind::kCv32e40p, cfg);
        std::printf("%6u %12.4f %10.1f %9.1f%%\n", slots, a.areaMm2,
                    a.totalGE / 1000.0,
                    100.0 * (a.normalized - 1.0));
    }
    std::printf("\npaper anchor: approximately linear, +14%% at 64 "
                "slots\n");
    return 0;
}
