/**
 * Simulator-throughput benchmark for the event-driven scheduling
 * kernel: every requested (core x config x workload) point runs four
 * times — per-cycle reference mode, fast-forward with the predecoded
 * instruction store disabled, fast-forward with the image on but
 * superblock execution off, and fast-forward with everything on —
 * with episode traces captured. All four traces must be
 * byte-identical (exit 1 otherwise); the report quantifies what each
 * optimization buys: skip ratio (fraction of simulated cycles never
 * ticked), guest MIPS, the fast-forward wall-clock speedup over
 * reference, the predecode speedup over decode-from-memory fetching,
 * and the block-execution speedup over per-instruction dispatch.
 *
 * Emits BENCH_sim_throughput.json with one record per point plus
 * per-core and overall aggregates. --min-skip-ratio gates the overall
 * skip ratio, --min-predecode-speedup the overall predecode speedup
 * and --min-block-speedup the overall block-execution speedup (exit 1
 * below the floor) so CI can assert the kernel actually
 * fast-forwards on periodic workloads and the decode-once front-end
 * and block fast path actually pay on compute-bound ones.
 *
 * Usage: bench_throughput [--cores cv32e40p,cva6,nax]
 *                         [--configs vanilla,SLT,...]
 *                         [--workloads delay_wake,...]
 *                         [--iterations N]
 *                         [--timer-period CYCLES]
 *                         [--repeats N]
 *                         [--out BENCH_sim_throughput.json]
 *                         [--min-skip-ratio R]
 *                         [--min-predecode-speedup S]
 *                         [--min-block-speedup S]
 *
 * --repeats runs each mode of each point N times and keeps the
 * minimum wall time (the runs are deterministic, so only scheduling
 * noise differs between them). Speedup gates in CI should use
 * --repeats 3 or more: single-shot wall times on millisecond-scale
 * runs swing tens of percent under host contention.
 *
 * --timer-period sets the preemption-timer period per point. The
 * default is 10000 cycles — a 10 kHz tick on a 100 MHz core, the
 * realistic regime where guests spend most cycles quiescent between
 * switches. The latency benches use 1000 to cram switches into short
 * runs; pass --timer-period 1000 to measure that (ISR-dominated)
 * regime instead.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

using namespace rtu;

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

CoreKind
coreFromName(const std::string &name)
{
    if (name == "cv32e40p")
        return CoreKind::kCv32e40p;
    if (name == "cva6")
        return CoreKind::kCva6;
    if (name == "nax" || name == "naxriscv")
        return CoreKind::kNax;
    fatal("unknown core '%s' (expected cv32e40p, cva6 or nax)",
          name.c_str());
}

struct PointReport
{
    SweepPoint point;
    RunThroughput ff;
    RunThroughput ref;
    RunThroughput nopre;    ///< fast-forward, predecoded image off
    RunThroughput noblock;  ///< fast-forward, block execution off
    Cycle cycles = 0;
    std::uint64_t instret = 0;
    std::uint64_t fetchPredecoded = 0;
    std::uint64_t fetchSlowPath = 0;
    std::uint64_t textInvalidations = 0;
    std::uint64_t blocksExecuted = 0;
    std::uint64_t blockFallbacks = 0;
    std::uint64_t blockInvalidations = 0;
    bool traceIdentical = false;
    bool ok = false;
};

double
mips(std::uint64_t instret, double seconds)
{
    return seconds > 0.0
               ? static_cast<double>(instret) / seconds / 1e6
               : 0.0;
}

double
skipRatio(std::uint64_t skipped, std::uint64_t ticked)
{
    const double total = static_cast<double>(skipped + ticked);
    return total > 0.0 ? static_cast<double>(skipped) / total : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::vector<CoreKind> cores = {CoreKind::kCv32e40p, CoreKind::kCva6,
                                   CoreKind::kNax};
    std::vector<std::string> configs = {"vanilla", "SLT"};
    std::vector<std::string> workloads = {"delay_wake", "sem_pingpong",
                                          "round_robin"};
    unsigned iterations = 20;
    unsigned timer_period = 10000;
    unsigned repeats = 1;
    std::string out_path = "BENCH_sim_throughput.json";
    double min_skip_ratio = 0.0;
    double min_predecode_speedup = 0.0;
    double min_block_speedup = 0.0;

    std::string cores_arg, configs_arg, workloads_arg;
    ArgParser parser("Event-driven simulation throughput: reference "
                     "ticking vs quiescence fast-forward");
    parser.addString("--cores", &cores_arg,
                     "comma list: cv32e40p,cva6,nax");
    parser.addString("--configs", &configs_arg,
                     "comma list of RTOSUnit configurations");
    parser.addString("--workloads", &workloads_arg,
                     "comma list of workloads");
    parser.addUnsigned("--iterations", &iterations,
                       "workload iterations per run");
    parser.addUnsigned("--timer-period", &timer_period,
                       "preemption timer period in cycles");
    parser.addUnsigned("--repeats", &repeats,
                       "timed runs per mode; min wall time kept");
    parser.addString("--out", &out_path, "JSON report path");
    parser.addDouble("--min-skip-ratio", &min_skip_ratio,
                     "fail when any point skips less than this ratio");
    parser.addDouble("--min-predecode-speedup", &min_predecode_speedup,
                     "fail when the overall predecode speedup is lower");
    parser.addDouble("--min-block-speedup", &min_block_speedup,
                     "fail when the overall block-exec speedup is lower");
    parser.parse(argc, argv);

    if (!cores_arg.empty()) {
        cores.clear();
        for (const std::string &n : splitList(cores_arg))
            cores.push_back(coreFromName(n));
    }
    if (!configs_arg.empty())
        configs = splitList(configs_arg);
    if (!workloads_arg.empty())
        workloads = splitList(workloads_arg);
    if (cores.empty() || configs.empty() || workloads.empty())
        fatal("need at least one core, config and workload");
    if (repeats == 0)
        repeats = 1;

    std::vector<PointReport> reports;
    bool allIdentical = true;

    std::printf("%-9s %-8s %-16s %12s %10s %9s %9s %9s %9s %8s %8s %8s\n",
                "core", "config", "workload", "cycles", "skip",
                "ref-ms", "nopre-ms", "noblk-ms", "ff-ms", "speedup",
                "pre-spd", "blk-spd");
    for (CoreKind core : cores) {
        for (const std::string &cfg : configs) {
            for (const std::string &w : workloads) {
                SweepPoint p;
                p.core = core;
                p.unit = RtosUnitConfig::fromName(cfg);
                p.workload = w;
                p.iterations = iterations;
                p.timerPeriodCycles = timer_period;
                p.reseed();

                // Reference first, then the three accelerated modes;
                // traces captured for the four-way byte-identity
                // check. Each mode runs --repeats times keeping the
                // minimum wall time.
                const auto bestOf = [&p, repeats](bool fast, bool pre,
                                                  bool block) {
                    SweepResult best =
                        runSweepPoint(p, true, fast, pre, block);
                    for (unsigned k = 1; k < repeats; ++k) {
                        SweepResult r =
                            runSweepPoint(p, true, fast, pre, block);
                        if (r.run.throughput.wallSeconds <
                            best.run.throughput.wallSeconds)
                            best = std::move(r);
                    }
                    return best;
                };
                const SweepResult ref = bestOf(false, true, true);
                const SweepResult nopre = bestOf(true, false, true);
                const SweepResult noblock = bestOf(true, true, false);
                const SweepResult ff = bestOf(true, true, true);

                PointReport r;
                r.point = p;
                r.ref = ref.run.throughput;
                r.nopre = nopre.run.throughput;
                r.noblock = noblock.run.throughput;
                r.ff = ff.run.throughput;
                r.cycles = ff.run.cycles;
                r.instret = ff.run.coreStats.instret;
                r.fetchPredecoded = ff.run.coreStats.fetchPredecoded;
                r.fetchSlowPath = ff.run.coreStats.fetchSlowPath;
                r.textInvalidations =
                    ff.run.coreStats.textInvalidations;
                r.blocksExecuted = ff.run.coreStats.blocksExecuted;
                r.blockFallbacks = ff.run.coreStats.blockFallbacks;
                r.blockInvalidations =
                    ff.run.coreStats.blockInvalidations;
                r.traceIdentical =
                    ff.trace == ref.trace && ff.trace == nopre.trace &&
                    ff.trace == noblock.trace &&
                    ff.run.cycles == ref.run.cycles &&
                    ff.run.cycles == nopre.run.cycles &&
                    ff.run.cycles == noblock.run.cycles &&
                    ff.run.status == ref.run.status &&
                    ff.run.status == nopre.run.status &&
                    ff.run.status == noblock.run.status;
                r.ok = ff.run.ok && ref.run.ok && nopre.run.ok &&
                       noblock.run.ok;
                allIdentical = allIdentical && r.traceIdentical;
                reports.push_back(r);

                const double speedup =
                    r.ff.wallSeconds > 0.0
                        ? r.ref.wallSeconds / r.ff.wallSeconds
                        : 0.0;
                const double preSpeedup =
                    r.ff.wallSeconds > 0.0
                        ? r.nopre.wallSeconds / r.ff.wallSeconds
                        : 0.0;
                const double blkSpeedup =
                    r.ff.wallSeconds > 0.0
                        ? r.noblock.wallSeconds / r.ff.wallSeconds
                        : 0.0;
                std::printf(
                    "%-9s %-8s %-16s %12llu %9.1f%% %9.2f %9.2f %9.2f "
                    "%9.2f %7.2fx %7.2fx %7.2fx%s\n",
                    coreKindName(core), cfg.c_str(), w.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    100.0 * skipRatio(r.ff.cyclesSkipped,
                                      r.ff.cyclesTicked +
                                          r.ff.cyclesBlockExecuted),
                    r.ref.wallSeconds * 1e3, r.nopre.wallSeconds * 1e3,
                    r.noblock.wallSeconds * 1e3,
                    r.ff.wallSeconds * 1e3, speedup, preSpeedup,
                    blkSpeedup,
                    r.traceIdentical ? "" : "  TRACE MISMATCH");
            }
        }
    }

    // Aggregates: per core and overall. Block-executed cycles count
    // as executed (not skipped) in the skip ratio, so the ratio is
    // comparable with and without the block fast path.
    std::uint64_t totTicked = 0, totSkipped = 0, totInstret = 0;
    double totRefWall = 0, totFfWall = 0, totNopreWall = 0,
           totNoblockWall = 0;
    std::ostringstream perCore;
    for (size_t ci = 0; ci < cores.size(); ++ci) {
        std::uint64_t ticked = 0, skipped = 0, instret = 0;
        double refWall = 0, ffWall = 0, nopreWall = 0, noblockWall = 0;
        for (const PointReport &r : reports) {
            if (r.point.core != cores[ci])
                continue;
            ticked += r.ff.cyclesTicked + r.ff.cyclesBlockExecuted;
            skipped += r.ff.cyclesSkipped;
            instret += r.instret;
            refWall += r.ref.wallSeconds;
            ffWall += r.ff.wallSeconds;
            nopreWall += r.nopre.wallSeconds;
            noblockWall += r.noblock.wallSeconds;
        }
        perCore << (ci ? "," : "") << "{\"core\":\""
                << jsonEscape(coreKindName(cores[ci]))
                << "\",\"skip_ratio\":"
                << csprintf("%.4f", skipRatio(skipped, ticked))
                << ",\"ff_mips\":" << csprintf("%.3f", mips(instret,
                                                            ffWall))
                << ",\"speedup\":"
                << csprintf("%.3f",
                            ffWall > 0.0 ? refWall / ffWall : 0.0)
                << ",\"predecode_speedup\":"
                << csprintf("%.3f",
                            ffWall > 0.0 ? nopreWall / ffWall : 0.0)
                << ",\"block_speedup\":"
                << csprintf("%.3f",
                            ffWall > 0.0 ? noblockWall / ffWall : 0.0)
                << "}";
        totTicked += ticked;
        totSkipped += skipped;
        totInstret += instret;
        totRefWall += refWall;
        totFfWall += ffWall;
        totNopreWall += nopreWall;
        totNoblockWall += noblockWall;
    }

    const double overallSkip = skipRatio(totSkipped, totTicked);
    const double overallSpeedup =
        totFfWall > 0.0 ? totRefWall / totFfWall : 0.0;
    const double overallPreSpeedup =
        totFfWall > 0.0 ? totNopreWall / totFfWall : 0.0;
    const double overallBlkSpeedup =
        totFfWall > 0.0 ? totNoblockWall / totFfWall : 0.0;
    std::printf("\noverall: skip ratio %.1f%%, speedup %.2fx, "
                "predecode speedup %.2fx, block speedup %.2fx, "
                "%.2f MIPS (noblock %.2f, nopre %.2f, ref %.2f)\n",
                100.0 * overallSkip, overallSpeedup, overallPreSpeedup,
                overallBlkSpeedup,
                mips(totInstret, totFfWall),
                mips(totInstret, totNoblockWall),
                mips(totInstret, totNopreWall),
                mips(totInstret, totRefWall));

    std::ofstream os(out_path);
    if (!os)
        fatal("cannot open --out file '%s'", out_path.c_str());
    os << "{\"schema\":2,\"iterations\":" << iterations
       << ",\"timer_period\":" << timer_period
       << ",\"repeats\":" << repeats << ",\"results\":[";
    for (size_t i = 0; i < reports.size(); ++i) {
        const PointReport &r = reports[i];
        os << (i ? "," : "") << "{\"core\":\""
           << jsonEscape(coreKindName(r.point.core)) << "\",\"config\":\""
           << jsonEscape(r.point.unit.name()) << "\",\"workload\":\""
           << jsonEscape(r.point.workload)
           << "\",\"ok\":" << (r.ok ? "true" : "false")
           << ",\"trace_identical\":"
           << (r.traceIdentical ? "true" : "false")
           << ",\"cycles\":" << r.cycles
           << ",\"cycles_ticked\":" << r.ff.cyclesTicked
           << ",\"cycles_skipped\":" << r.ff.cyclesSkipped
           << ",\"cycles_block_executed\":" << r.ff.cyclesBlockExecuted
           << ",\"stride_skips\":" << r.ff.strideSkips
           << ",\"block_runs\":" << r.ff.blockRuns
           << ",\"skip_ratio\":"
           << csprintf("%.4f",
                       skipRatio(r.ff.cyclesSkipped,
                                 r.ff.cyclesTicked +
                                     r.ff.cyclesBlockExecuted))
           << ",\"fetch_predecoded\":" << r.fetchPredecoded
           << ",\"fetch_slow_path\":" << r.fetchSlowPath
           << ",\"text_invalidations\":" << r.textInvalidations
           << ",\"blocks_executed\":" << r.blocksExecuted
           << ",\"block_fallbacks\":" << r.blockFallbacks
           << ",\"block_invalidations\":" << r.blockInvalidations
           << ",\"ref_wall_ms\":"
           << csprintf("%.3f", r.ref.wallSeconds * 1e3)
           << ",\"nopre_wall_ms\":"
           << csprintf("%.3f", r.nopre.wallSeconds * 1e3)
           << ",\"noblock_wall_ms\":"
           << csprintf("%.3f", r.noblock.wallSeconds * 1e3)
           << ",\"ff_wall_ms\":"
           << csprintf("%.3f", r.ff.wallSeconds * 1e3)
           << ",\"ref_mips\":"
           << csprintf("%.3f", mips(r.instret, r.ref.wallSeconds))
           << ",\"nopre_mips\":"
           << csprintf("%.3f", mips(r.instret, r.nopre.wallSeconds))
           << ",\"noblock_mips\":"
           << csprintf("%.3f", mips(r.instret, r.noblock.wallSeconds))
           << ",\"ff_mips\":"
           << csprintf("%.3f", mips(r.instret, r.ff.wallSeconds))
           << ",\"speedup\":"
           << csprintf("%.3f", r.ff.wallSeconds > 0.0
                                   ? r.ref.wallSeconds / r.ff.wallSeconds
                                   : 0.0)
           << ",\"predecode_speedup\":"
           << csprintf("%.3f",
                       r.ff.wallSeconds > 0.0
                           ? r.nopre.wallSeconds / r.ff.wallSeconds
                           : 0.0)
           << ",\"block_speedup\":"
           << csprintf("%.3f",
                       r.ff.wallSeconds > 0.0
                           ? r.noblock.wallSeconds / r.ff.wallSeconds
                           : 0.0)
           << "}";
    }
    os << "],\"per_core\":[" << perCore.str() << "]"
       << ",\"overall\":{\"skip_ratio\":"
       << csprintf("%.4f", overallSkip)
       << ",\"speedup\":" << csprintf("%.3f", overallSpeedup)
       << ",\"predecode_speedup\":"
       << csprintf("%.3f", overallPreSpeedup)
       << ",\"block_speedup\":"
       << csprintf("%.3f", overallBlkSpeedup) << "}}\n";
    std::printf("json: %s\n", out_path.c_str());

    if (!allIdentical) {
        std::fprintf(stderr, "FAIL: fast-forward and reference traces "
                             "differ\n");
        return 1;
    }
    if (min_skip_ratio > 0.0 && overallSkip < min_skip_ratio) {
        std::fprintf(stderr,
                     "FAIL: overall skip ratio %.4f below the "
                     "--min-skip-ratio floor %.4f\n",
                     overallSkip, min_skip_ratio);
        return 1;
    }
    if (min_predecode_speedup > 0.0 &&
        overallPreSpeedup < min_predecode_speedup) {
        std::fprintf(stderr,
                     "FAIL: overall predecode speedup %.3f below the "
                     "--min-predecode-speedup floor %.3f\n",
                     overallPreSpeedup, min_predecode_speedup);
        return 1;
    }
    if (min_block_speedup > 0.0 && overallBlkSpeedup < min_block_speedup) {
        std::fprintf(stderr,
                     "FAIL: overall block-exec speedup %.3f below the "
                     "--min-block-speedup floor %.3f\n",
                     overallBlkSpeedup, min_block_speedup);
        return 1;
    }
    return 0;
}
