/**
 * Schedulability co-analysis campaign: generate seeded synthetic
 * tasksets over a utilization grid, solve fixed-priority RTA with
 * *measured* per-configuration overheads (switch episodes from trace
 * phases, tick cost, CV32E40P static ISR WCET), then validate every
 * verdict by running the lowered taskset on the simulator and
 * counting deadline misses.
 *
 * The process exits non-zero on any soundness violation (a point the
 * RTA called schedulable that missed a deadline or failed to run
 * cleanly on the simulator) — CI gates on this. JSONL output is
 * byte-identical at any --threads for a given seed: tasksets are
 * derived from (seed, util index, taskset index) only, overheads are
 * measured serially up front, and the grid fans out into
 * index-addressed slots.
 *
 * Usage: bench_sched [--cores cv32e40p,cva6,nax]
 *                    [--configs vanilla,S,SLT,...]
 *                    [--tasksets N]      tasksets per utilization
 *                    [--seed S]
 *                    [--util-grid 0.4,0.5,...]
 *                    [--tasks N]         tasks per set (1..7)
 *                    [--period-min T] [--period-max T]   (ticks)
 *                    [--phase T] [--horizon T]           (ticks)
 *                    [--timer-period CYCLES]
 *                    [--margin M]        overhead safety multiplier
 *                    [--threads N]
 *                    [--no-sim]          RTA only, skip validation
 *                    [--out sched.jsonl]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "sched/campaign.hh"

using namespace rtu;

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

CoreKind
coreFromName(const std::string &name)
{
    if (name == "cv32e40p")
        return CoreKind::kCv32e40p;
    if (name == "cva6")
        return CoreKind::kCva6;
    if (name == "nax" || name == "naxriscv")
        return CoreKind::kNax;
    fatal("unknown core '%s' (expected cv32e40p, cva6 or nax)",
          name.c_str());
}

std::vector<double>
parseUtilGrid(const std::string &s)
{
    std::vector<double> grid;
    for (const std::string &item : splitList(s)) {
        char *end = nullptr;
        const double u = std::strtod(item.c_str(), &end);
        if (end == item.c_str() || *end != '\0' || u <= 0.0)
            fatal("bad --util-grid entry '%s'", item.c_str());
        grid.push_back(u);
    }
    return grid;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    SchedCampaignSpec spec;
    spec.configs = {RtosUnitConfig::fromName("vanilla"),
                    RtosUnitConfig::fromName("S"),
                    RtosUnitConfig::fromName("SLT")};

    std::string cores_arg, configs_arg, util_arg;
    std::string out_path = "sched.jsonl";
    unsigned threads = 1;
    bool no_sim = false;
    std::uint64_t seed = 1;

    ArgParser parser("Schedulability co-analysis: seeded tasksets, "
                     "measured-overhead RTA, simulated deadline "
                     "validation");
    parser.addString("--cores", &cores_arg,
                     "comma list: cv32e40p,cva6,nax");
    parser.addString("--configs", &configs_arg,
                     "comma list of RTOSUnit configurations");
    parser.addUnsigned("--tasksets", &spec.tasksetsPerUtil,
                       "tasksets per utilization level");
    parser.addU64("--seed", &seed, "campaign seed");
    parser.addString("--util-grid", &util_arg,
                     "comma list of total utilizations");
    parser.addUnsigned("--tasks", &spec.taskset.tasks,
                       "tasks per set (1..7)");
    parser.addUnsigned("--period-min", &spec.taskset.periodMinTicks,
                       "minimum period in timer ticks");
    parser.addUnsigned("--period-max", &spec.taskset.periodMaxTicks,
                       "maximum period in timer ticks");
    parser.addUnsigned("--phase", &spec.lower.phaseTicks,
                       "common first release tick");
    parser.addUnsigned("--horizon", &spec.lower.horizonTicks,
                       "release horizon in ticks (0 = auto)");
    unsigned timer_period = 1000;
    parser.addUnsigned("--timer-period", &timer_period,
                       "timer period in cycles");
    parser.addDouble("--margin", &spec.margin,
                     "safety multiplier on measured overheads");
    parser.addUnsigned("--threads", &threads, "worker threads");
    parser.addFlag("--no-sim", &no_sim,
                   "skip the simulation validation pass");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.parse(argc, argv);

    spec.seed = seed;
    spec.threads = threads;
    spec.simulate = !no_sim;
    spec.lower.timerPeriodCycles = timer_period;
    if (!cores_arg.empty()) {
        spec.cores.clear();
        for (const std::string &n : splitList(cores_arg))
            spec.cores.push_back(coreFromName(n));
    }
    if (!configs_arg.empty()) {
        spec.configs.clear();
        for (const std::string &n : splitList(configs_arg))
            spec.configs.push_back(RtosUnitConfig::fromName(n));
    }
    if (!util_arg.empty())
        spec.utilGrid = parseUtilGrid(util_arg);

    const SchedCampaignResult result = runSchedCampaign(spec);

    std::printf("%-9s %-8s %7s %8s %8s %6s %10s\n", "core", "config",
                "points", "rta-ok", "sim-ok", "viol", "pessimism");
    for (const SchedConfigSummary &s : result.summaries) {
        std::printf("%-9s %-8s %7u %8u %8u %6u %9.2fx\n",
                    coreKindName(s.core), s.config.c_str(), s.points,
                    s.rtaSchedulable, s.simSchedulable, s.violations,
                    s.meanPessimism);
        std::printf("  overheads: S=%.1f C_clk=%.1f cycles "
                    "(meas switch %.0f, tick %.0f, entry %.0f%s)\n",
                    s.overheads.rta.switchCost,
                    s.overheads.rta.tickCost, s.overheads.measSwitchMax,
                    s.overheads.measTickMax, s.overheads.measEntryMax,
                    s.overheads.hasWcet
                        ? csprintf(", wcet %.0f",
                                   s.overheads.wcetCycles)
                              .c_str()
                        : "");
    }

    std::ofstream os(out_path);
    if (!os)
        fatal("cannot open --out file '%s'", out_path.c_str());
    writeSchedJsonl(os, spec, result);
    std::printf("jsonl: %s (%zu points)\n", out_path.c_str(),
                result.points.size());

    if (result.soundnessViolations) {
        std::fprintf(stderr,
                     "FAIL: %u soundness violation(s) — RTA-schedulable "
                     "points missed deadlines on the simulator\n",
                     result.soundnessViolations);
        return 1;
    }
    return 0;
}
