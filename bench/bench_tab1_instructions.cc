/**
 * Table 1 reproduction: the custom-instruction overview, printed from
 * the live instruction definitions (encodings included, which the
 * paper's table omits).
 *
 * Usage: bench_tab1_instructions [--out table.jsonl]
 *
 * --out emits one schema-stamped header line followed by one JSONL
 * record per instruction (name, description, requirement, encoding).
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "asm/disasm.hh"
#include "asm/encode.hh"
#include "common/argparse.hh"
#include "common/json.hh"
#include "common/logging.hh"

int
main(int argc, char **argv)
{
    using namespace rtu;

    std::string out_path;
    ArgParser parser("Table 1: the RTOSUnit custom-instruction "
                     "overview with live encodings");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.parse(argc, argv);

    struct Row
    {
        Op op;
        const char *name;
        const char *desc;
        const char *requiredFor;
        bool extension;
    };
    const Row rows[] = {
        {Op::kAddReady, "ADD_READY", "Insert task into ready list",
         "HW scheduling", false},
        {Op::kAddDelay, "ADD_DELAY", "Insert task into delay list",
         "HW scheduling", false},
        {Op::kRmTask, "RM_TASK", "Remove task from HW lists",
         "HW scheduling", false},
        {Op::kSetContextId, "SET_CONTEXT_ID", "Set the next task",
         "w/o HW scheduling", false},
        {Op::kGetHwSched, "GET_HW_SCHED", "Get next task from HW",
         "HW scheduling", false},
        {Op::kSwitchRf, "SWITCH_RF", "Switch back to the APP RF",
         "Context storing w/o loading", false},
        {Op::kSemTake, "SEM_TAKE", "Acquire hardware semaphore",
         "+HS extension", true},
        {Op::kSemGive, "SEM_GIVE", "Release hardware semaphore",
         "+HS extension", true},
    };

    std::printf("Table 1: Overview of the proposed custom "
                "instructions (custom-0 opcode space)\n\n");
    std::printf("%-16s %-34s %-28s %-10s\n", "Instruction",
                "Description", "Required for", "Encoding");
    std::printf("%.104s\n",
                "-----------------------------------------------------"
                "-----------------------------------------------------");
    bool ext_banner = false;
    for (const Row &r : rows) {
        if (r.extension && !ext_banner) {
            std::printf("\nExtension (paper Section 7 future work, "
                        "implemented here):\n");
            ext_banner = true;
        }
        const Word enc = encode(r.op, A0, A1, A2, 0);
        std::printf("%-16s %-34s %-28s 0x%08x\n", r.name, r.desc,
                    r.requiredFor, enc);
    }

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
        os << "{\"schema\":1,\"bench\":\"tab1_instructions\"}\n";
        for (const Row &r : rows) {
            const Word enc = encode(r.op, A0, A1, A2, 0);
            os << "{\"name\":\"" << jsonEscape(r.name)
               << "\",\"description\":\"" << jsonEscape(r.desc)
               << "\",\"required_for\":\"" << jsonEscape(r.requiredFor)
               << "\",\"extension\":" << (r.extension ? "true" : "false")
               << ",\"encoding\":" << enc << "}\n";
        }
        std::printf("\nresults: %s\n", out_path.c_str());
    }
    return 0;
}
