/**
 * Table 1 reproduction: the custom-instruction overview, printed from
 * the live instruction definitions (encodings included, which the
 * paper's table omits).
 */

#include <cstdio>

#include "asm/disasm.hh"
#include "asm/encode.hh"

int
main()
{
    using namespace rtu;
    struct Row
    {
        Op op;
        const char *name;
        const char *desc;
        const char *requiredFor;
    };
    const Row rows[] = {
        {Op::kAddReady, "ADD_READY", "Insert task into ready list",
         "HW scheduling"},
        {Op::kAddDelay, "ADD_DELAY", "Insert task into delay list",
         "HW scheduling"},
        {Op::kRmTask, "RM_TASK", "Remove task from HW lists",
         "HW scheduling"},
        {Op::kSetContextId, "SET_CONTEXT_ID", "Set the next task",
         "w/o HW scheduling"},
        {Op::kGetHwSched, "GET_HW_SCHED", "Get next task from HW",
         "HW scheduling"},
        {Op::kSwitchRf, "SWITCH_RF", "Switch back to the APP RF",
         "Context storing w/o loading"},
    };

    std::printf("Table 1: Overview of the proposed custom "
                "instructions (custom-0 opcode space)\n\n");
    std::printf("%-16s %-34s %-28s %-10s\n", "Instruction",
                "Description", "Required for", "Encoding");
    std::printf("%.104s\n",
                "-----------------------------------------------------"
                "-----------------------------------------------------");
    for (const Row &r : rows) {
        const Word enc = encode(r.op, A0, A1, A2, 0);
        std::printf("%-16s %-34s %-28s 0x%08x\n", r.name, r.desc,
                    r.requiredFor, enc);
    }

    const Row ext_rows[] = {
        {Op::kSemTake, "SEM_TAKE", "Acquire hardware semaphore",
         "+HS extension"},
        {Op::kSemGive, "SEM_GIVE", "Release hardware semaphore",
         "+HS extension"},
    };
    std::printf("\nExtension (paper Section 7 future work, implemented "
                "here):\n");
    for (const Row &r : ext_rows) {
        const Word enc = encode(r.op, A0, A1, A2, 0);
        std::printf("%-16s %-34s %-28s 0x%08x\n", r.name, r.desc,
                    r.requiredFor, enc);
    }
    return 0;
}
