/**
 * Extension evaluation (the paper's future work, Section 7): hardware
 * semaphores in the RTOSUnit versus the software kernel primitives.
 *
 * Three tasks contend on a binary semaphore. The software path costs
 * an interrupt-disable window, TCB list surgery and event-list walks
 * per operation; the hardware path is a single custom instruction.
 * Reported: total run time, context switches taken and mean switch
 * latency for (SLT) with software synchronization vs (SLT+HS).
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/simulation.hh"
#include "kernel/kernel.hh"
#include "sim/hostio.hh"

using namespace rtu;

namespace {

struct Outcome
{
    bool ok = false;
    Cycle cycles = 0;
    std::uint64_t switches = 0;
    double meanLatency = 0;
    std::uint64_t instret = 0;
};

void
emitContender(KernelBuilder &kb, unsigned t, unsigned iterations,
              bool hw, unsigned hw_sem)
{
    TaskSpec spec;
    spec.name = csprintf("cont%u", t);
    spec.priority = t == 2 ? 3 : 2;
    spec.body = [=](KernelBuilder &k) {
        Assembler &a = k.a();
        const std::string loop = csprintf("x_loop_%u", t);
        a.li(S0, static_cast<SWord>(iterations));
        a.label(loop);
        if (hw)
            k.callHwSemTake(hw_sem);
        else
            k.callMutexTake("x_mtx");
        k.emitBusyLoop(40);
        if (hw)
            k.callHwSemGive(hw_sem);
        else
            k.callMutexGive("x_mtx");
        if (t == 2)
            k.callDelay(1);
        else
            k.emitBusyLoop(25);
        a.addi(S0, S0, -1);
        a.bnez(S0, loop);
        a.csrrci(Zero, csr::kMstatus, 8);
        a.la(T0, "x_done");
        a.lw(T1, 0, T0);
        a.addi(T1, T1, 1);
        a.sw(T1, 0, T0);
        a.csrrsi(Zero, csr::kMstatus, 8);
        a.li(T2, 3);
        const std::string park = csprintf("x_park_%u", t);
        a.bne(T1, T2, park);
        k.emitExit(0);
        a.label(park);
        const std::string ploop = csprintf("x_ploop_%u", t);
        a.label(ploop);
        a.li(A0, 1'000'000);
        a.call("k_delay");
        a.j(ploop);
    };
    kb.addTask(spec);
}

Outcome
run(bool hw, unsigned iterations)
{
    KernelParams kp;
    kp.unit = RtosUnitConfig::fromName(hw ? "SLT+HS" : "SLT");
    KernelBuilder kb(kp);
    unsigned hw_sem = 0;
    if (hw)
        hw_sem = kb.createHwSemaphore(1);
    else
        kb.createMutex("x_mtx");
    kb.a().dataWord("x_done", 0);
    for (unsigned t = 0; t < 3; ++t)
        emitContender(kb, t, iterations, hw, hw_sem);
    const Program program = kb.build();

    SimConfig sc;
    sc.core = CoreKind::kCv32e40p;
    sc.unit = kp.unit;
    Simulation sim(sc, program);
    Outcome o;
    o.ok = sim.run() && sim.exitCode() == 0;
    o.cycles = sim.now();
    const SampleStats lat = sim.recorder().latencyStats(true);
    o.switches = lat.count();
    o.meanLatency = lat.empty() ? 0.0 : lat.mean();
    o.instret = sim.coreStats().instret;
    return o;
}

} // namespace

int
main()
{
    setQuiet(true);
    constexpr unsigned kIters = 40;
    std::printf("Extension: hardware semaphores (+HS) vs software "
                "kernel primitives, CV32E40P (SLT), 3 contenders x "
                "%u critical sections\n\n", kIters);
    std::printf("%-22s %12s %10s %12s %12s\n", "variant",
                "total[cyc]", "switches", "mean sw lat", "guest insns");
    const Outcome sw = run(false, kIters);
    const Outcome hw = run(true, kIters);
    if (!sw.ok || !hw.ok) {
        std::printf("RUN FAILED (sw ok=%d hw ok=%d)\n", sw.ok, hw.ok);
        return 1;
    }
    std::printf("%-22s %12llu %10llu %12.1f %12llu\n",
                "software mutex (SLT)",
                static_cast<unsigned long long>(sw.cycles),
                static_cast<unsigned long long>(sw.switches),
                sw.meanLatency,
                static_cast<unsigned long long>(sw.instret));
    std::printf("%-22s %12llu %10llu %12.1f %12llu\n",
                "hardware sem (SLT+HS)",
                static_cast<unsigned long long>(hw.cycles),
                static_cast<unsigned long long>(hw.switches),
                hw.meanLatency,
                static_cast<unsigned long long>(hw.instret));
    std::printf("\ntotal runtime: %+.1f%%   guest instructions: "
                "%+.1f%%\n",
                100.0 * (double(hw.cycles) / double(sw.cycles) - 1.0),
                100.0 * (double(hw.instret) / double(sw.instret) - 1.0));
    std::printf("\nEach hardware take/give is one custom instruction "
                "with no interrupt-disable window; the\nsoftware path "
                "walks priority-ordered event lists under disabled "
                "interrupts (paper §7 outlook).\n");
    return 0;
}
