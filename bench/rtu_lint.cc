/**
 * rtu_lint: static context-integrity lint gate over the generated
 * kernel matrix.
 *
 * Runs the four analysis passes (src/analyze) — trap-path context
 * integrity vs. the RTOSUnit configuration, callee-saved ABI, stack
 * discipline, CFG/WCET soundness — over every generated kernel image:
 * all twelve paper configurations (plus the +HS extension points)
 * crossed with the standard workload suite.
 *
 * Usage:
 *   rtu_lint [--configs=S,SDLOT,...] [--workloads=yield_pingpong,...]
 *            [--out=diags.jsonl] [--warn-as-error] [--no-hwsync]
 *            [--quiet]
 *
 * Exit status is non-zero when any error diagnostic (or, with
 * --warn-as-error, any diagnostic at all) is produced, so CI can use
 * the binary directly as a gate. Diagnostics go to stdout as text and
 * optionally to --out as JSONL, one object per diagnostic with the
 * configuration and workload attached.
 */

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "analyze/linter.hh"
#include "common/json.hh"
#include "common/logging.hh"

using namespace rtu;

namespace {

std::set<std::string>
parseList(const std::string &arg)
{
    std::set<std::string> out;
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.insert(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.insert(cur);
    return out;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--configs=A,B,...] [--workloads=a,b,...] "
                 "[--out=FILE.jsonl] [--warn-as-error] [--no-hwsync] "
                 "[--quiet]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::set<std::string> configFilter;
    std::set<std::string> workloadFilter;
    std::string outPath;
    bool warnAsError = false;
    bool includeHwsync = true;
    bool quiet = false;

    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        // Accepts both --flag=value and --flag value, like the other
        // bench drivers.
        auto value = [&](const char *flag) {
            const std::string eq = std::string(flag) + "=";
            if (arg.rfind(eq, 0) == 0)
                return arg.substr(eq.size());
            if (i + 1 < argc)
                return std::string(argv[++i]);
            ok = false;
            return std::string();
        };
        auto matches = [&arg](const char *flag) {
            return arg == flag ||
                   arg.rfind(std::string(flag) + "=", 0) == 0;
        };
        if (matches("--configs")) {
            configFilter = parseList(value("--configs"));
        } else if (matches("--workloads")) {
            workloadFilter = parseList(value("--workloads"));
        } else if (matches("--out")) {
            outPath = value("--out");
        } else if (arg == "--warn-as-error") {
            warnAsError = true;
        } else if (arg == "--no-hwsync") {
            includeHwsync = false;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            ok = false;
        }
        if (!ok) {
            usage(argv[0]);
            return 2;
        }
    }

    std::FILE *jsonl = nullptr;
    if (!outPath.empty()) {
        jsonl = std::fopen(outPath.c_str(), "w");
        if (jsonl == nullptr) {
            std::fprintf(stderr, "rtu_lint: cannot open %s\n",
                         outPath.c_str());
            return 2;
        }
    }

    unsigned points = 0;
    unsigned dirtyPoints = 0;
    unsigned errors = 0;
    unsigned warnings = 0;
    forEachGeneratedProgram(
        [&](const LintPoint &point) {
            const std::string cfgName = point.unit.name();
            if (!configFilter.empty() &&
                configFilter.count(cfgName) == 0)
                return;
            if (!workloadFilter.empty() &&
                workloadFilter.count(point.workload) == 0)
                return;
            ++points;
            const LintResult result =
                lintProgram(point.program, point.unit);
            errors += result.errors();
            warnings += result.warnings();
            if (!result.clean())
                ++dirtyPoints;
            for (const Diagnostic &d : result.diags) {
                if (!quiet) {
                    std::printf("[%s x %s] %s\n", cfgName.c_str(),
                                point.workload.c_str(),
                                diagToString(d).c_str());
                }
                if (jsonl != nullptr) {
                    const std::string context = csprintf(
                        "\"config\":\"%s\",\"workload\":\"%s\"",
                        jsonEscape(cfgName).c_str(),
                        jsonEscape(point.workload).c_str());
                    std::fprintf(jsonl, "%s\n",
                                 diagToJson(d, context).c_str());
                }
            }
        },
        includeHwsync);

    if (jsonl != nullptr)
        std::fclose(jsonl);

    if (!quiet) {
        std::printf("rtu_lint: %u program points, %u with findings, "
                    "%u errors, %u warnings\n",
                    points, dirtyPoints, errors, warnings);
    }
    if (points == 0) {
        std::fprintf(stderr, "rtu_lint: no program points matched "
                             "the filters\n");
        return 2;
    }
    return errors > 0 || (warnAsError && warnings > 0) ? 1 : 0;
}
