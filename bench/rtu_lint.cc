/**
 * rtu_lint: static context-integrity lint gate over the generated
 * kernel matrix.
 *
 * Runs the analysis passes (src/analyze) — trap-path context
 * integrity vs. the RTOSUnit configuration, callee-saved ABI, stack
 * discipline, CFG/WCET soundness and, with --absint, the
 * abstract-interpretation family (inferred loop bounds, worst-case
 * stack usage, infeasible branches) — over every generated kernel
 * image:
 * all twelve paper configurations (plus the +HS extension points)
 * crossed with the standard workload suite.
 *
 * Usage:
 *   rtu_lint [--configs S,SDLOT,...] [--workloads yield_pingpong,...]
 *            [--out diags.jsonl] [--warn-as-error] [--no-hwsync]
 *            [--absint] [--pedantic-bounds] [--quiet]
 *            (--flag=value also accepted)
 *
 * Exit status is non-zero when any error diagnostic (or, with
 * --warn-as-error, any diagnostic at all) is produced, so CI can use
 * the binary directly as a gate. Diagnostics go to stdout as text and
 * optionally to --out as JSONL, one object per diagnostic with the
 * configuration and workload attached.
 */

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "analyze/linter.hh"
#include "common/argparse.hh"
#include "common/json.hh"
#include "common/logging.hh"

using namespace rtu;

namespace {

std::set<std::string>
parseList(const std::string &arg)
{
    std::set<std::string> out;
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.insert(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.insert(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string configs_arg;
    std::string workloads_arg;
    std::string outPath;
    bool warnAsError = false;
    bool noHwsync = false;
    bool absint = false;
    bool pedanticBounds = false;
    bool quiet = false;

    ArgParser parser("Static context-integrity lint gate over the "
                     "generated kernel matrix");
    parser.addString("--configs", &configs_arg,
                     "comma list of configurations (default: all)");
    parser.addString("--workloads", &workloads_arg,
                     "comma list of workloads (default: all)");
    parser.addString("--out", &outPath, "diagnostic JSONL path");
    parser.addFlag("--warn-as-error", &warnAsError,
                   "any diagnostic fails the gate");
    parser.addFlag("--no-hwsync", &noHwsync,
                   "skip the +HS extension points");
    parser.addFlag("--absint", &absint,
                   "run the abstract-interpretation pass family "
                   "(inferred loop bounds, worst-case stack usage)");
    parser.addFlag("--pedantic-bounds", &pedanticBounds,
                   "with --absint: warn on annotations looser than "
                   "the inferred bound");
    parser.addFlag("--quiet", &quiet, "suppress text diagnostics");
    parser.parse(argc, argv);

    const std::set<std::string> configFilter = parseList(configs_arg);
    const std::set<std::string> workloadFilter =
        parseList(workloads_arg);
    const bool includeHwsync = !noHwsync;

    std::FILE *jsonl = nullptr;
    if (!outPath.empty()) {
        jsonl = std::fopen(outPath.c_str(), "w");
        if (jsonl == nullptr) {
            std::fprintf(stderr, "rtu_lint: cannot open %s\n",
                         outPath.c_str());
            return 2;
        }
    }

    unsigned points = 0;
    unsigned dirtyPoints = 0;
    unsigned errors = 0;
    unsigned warnings = 0;
    forEachGeneratedProgram(
        [&](const LintPoint &point) {
            const std::string cfgName = point.unit.name();
            if (!configFilter.empty() &&
                configFilter.count(cfgName) == 0)
                return;
            if (!workloadFilter.empty() &&
                workloadFilter.count(point.workload) == 0)
                return;
            ++points;
            LintOptions lintOptions;
            lintOptions.absint = absint;
            lintOptions.absintPedanticBounds = pedanticBounds;
            const LintResult result =
                lintProgram(point.program, point.unit, lintOptions);
            errors += result.errors();
            warnings += result.warnings();
            if (!result.clean())
                ++dirtyPoints;
            for (const Diagnostic &d : result.diags) {
                if (!quiet) {
                    std::printf("[%s x %s] %s\n", cfgName.c_str(),
                                point.workload.c_str(),
                                diagToString(d).c_str());
                }
                if (jsonl != nullptr) {
                    const std::string context = csprintf(
                        "\"config\":\"%s\",\"workload\":\"%s\"",
                        jsonEscape(cfgName).c_str(),
                        jsonEscape(point.workload).c_str());
                    std::fprintf(jsonl, "%s\n",
                                 diagToJson(d, context).c_str());
                }
            }
        },
        includeHwsync);

    if (jsonl != nullptr)
        std::fclose(jsonl);

    if (!quiet) {
        std::printf("rtu_lint: %u program points, %u with findings, "
                    "%u errors, %u warnings\n",
                    points, dirtyPoints, errors, warnings);
    }
    if (points == 0) {
        std::fprintf(stderr, "rtu_lint: no program points matched "
                             "the filters\n");
        return 2;
    }
    return errors > 0 || (warnAsError && warnings > 0) ? 1 : 0;
}
