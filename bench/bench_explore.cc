/**
 * Co-exploration driver — the paper's titular contribution as a
 * command-line query tool. Evaluates a {core} x {config} design grid
 * end-to-end (simulated latency/jitter + static WCET joined with the
 * analytical 22 nm area/f_max/power models), prints the Pareto
 * frontier over the chosen objectives as a markdown table, and
 * answers constrained queries ("minimize mean latency subject to
 * area <= +35 %") the way the paper's Section 6.4 picks per-core
 * recommendations.
 *
 * An analytical prefilter prunes points violating area/f_max bounds
 * before simulation; a persistent result cache (--cache-dir) makes
 * repeat explorations only simulate never-seen points.
 *
 * Usage: bench_explore [--cores cv32e40p,cva6,nax]
 *                      [--configs vanilla,S,SLT,...]
 *                      [--workloads w1,w2,...] [--iterations N]
 *                      [--objectives lat_mean,jitter,area]
 *                      [--constraint area<=1.35]... [--minimize OBJ]
 *                      [--cache-dir DIR] [--threads N]
 *                      [--robust-faults N] [--robust-seed S]
 *                      [--sched-tasksets N] [--sched-seed S]
 *                      [--out explore.json] [--md frontier.md]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "explore/explorer.hh"
#include "workloads/workloads.hh"

using namespace rtu;

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

CoreKind
coreFromName(const std::string &name)
{
    if (name == "cv32e40p")
        return CoreKind::kCv32e40p;
    if (name == "cva6")
        return CoreKind::kCva6;
    if (name == "nax" || name == "naxriscv")
        return CoreKind::kNax;
    fatal("unknown core '%s' (expected cv32e40p, cva6 or nax)",
          name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    ExploreSpec spec;
    spec.cores = {CoreKind::kCv32e40p, CoreKind::kCva6, CoreKind::kNax};
    spec.units = RtosUnitConfig::latencyConfigs();

    std::vector<Objective> objectives = {Objective::kLatMean,
                                         Objective::kLatJitter,
                                         Objective::kArea};
    bool haveMinimize = false;
    Objective minimize = Objective::kLatMean;
    std::string out_path, md_path;

    std::string cores_arg, configs_arg, workloads_arg, objectives_arg;
    std::string minimize_arg;
    std::vector<std::string> constraint_args;
    bool no_wcet = false;

    ArgParser parser("Co-exploration over the {core} x {config} design "
                     "grid with Pareto frontiers and constrained "
                     "queries");
    parser.addString("--cores", &cores_arg,
                     "comma list: cv32e40p,cva6,nax (default all)");
    parser.addString("--configs", &configs_arg,
                     "comma list of RTOSUnit configurations");
    parser.addString("--workloads", &workloads_arg,
                     "comma list (default: standard suite)");
    parser.addUnsigned("--iterations", &spec.iterations,
                       "workload iterations per run");
    parser.addUnsigned("--threads", &spec.threads, "worker threads");
    parser.addString("--objectives", &objectives_arg,
                     "comma list (default lat_mean,jitter,area)");
    parser.addStringList("--constraint", &constraint_args,
                         "feasibility bound, e.g. area<=1.35 "
                         "(repeatable)");
    parser.addString("--minimize", &minimize_arg,
                     "objective of the constrained query");
    parser.addString("--cache-dir", &spec.cacheDir,
                     "persistent result cache directory");
    parser.addUnsigned("--robust-faults", &spec.robustnessFaults,
                       "fault-injection runs per design point; adds "
                       "the detect objective");
    parser.addU64("--robust-seed", &spec.robustnessSeed,
                  "campaign seed of the robustness objective");
    parser.addUnsigned("--sched-tasksets", &spec.schedTasksets,
                       "RTA taskset shapes per design point; adds "
                       "the sched-util objective");
    parser.addU64("--sched-seed", &spec.schedSeed,
                  "seed of the sched-util taskset shapes");
    parser.addString("--out", &out_path, "JSON report path");
    parser.addString("--md", &md_path, "markdown frontier table path");
    parser.addFlag("--no-wcet", &no_wcet,
                   "skip the static WCET objective");
    parser.parse(argc, argv);

    if (!cores_arg.empty()) {
        spec.cores.clear();
        for (const std::string &n : splitList(cores_arg))
            spec.cores.push_back(coreFromName(n));
    }
    if (!configs_arg.empty()) {
        spec.units.clear();
        for (const std::string &n : splitList(configs_arg))
            spec.units.push_back(RtosUnitConfig::fromName(n));
    }
    if (!workloads_arg.empty())
        spec.workloads = splitList(workloads_arg);
    if (!objectives_arg.empty()) {
        objectives.clear();
        for (const std::string &n : splitList(objectives_arg))
            objectives.push_back(objectiveFromName(n));
    }
    for (const std::string &c : constraint_args)
        spec.constraints.push_back(parseConstraint(c));
    if (!minimize_arg.empty()) {
        minimize = objectiveFromName(minimize_arg);
        haveMinimize = true;
    }
    spec.computeWcet = !no_wcet;
    if (objectives.empty())
        fatal("--objectives must name at least one objective");
    // Constraints imply a query; default to the paper's primary
    // objective when --minimize is not spelled out.
    if (!spec.constraints.empty())
        haveMinimize = true;

    Explorer explorer(spec);
    const std::vector<DesignEval> evals = explorer.evaluate();
    const ExploreStats &stats = explorer.stats();

    std::printf("Co-exploration: %zu design points (%zu pruned "
                "analytically), %zu sweep points — %zu cache hits, "
                "simulated %zu\n",
                stats.designPoints, stats.prefiltered,
                stats.sweepPoints, stats.cacheHits, stats.simulated);
    // Failed runs carry a structured status (cycle-limit vs the
    // no-retire watchdog) instead of silently scoring as !ok.
    for (const std::string &f : stats.failures)
        std::printf("FAILED %s\n", f.c_str());
    if (!spec.cacheDir.empty())
        std::printf("cache: %s (%zu entries)\n",
                    explorer.cache().filePath().c_str(),
                    explorer.cache().size());

    std::printf("\nPareto frontier over {");
    for (size_t i = 0; i < objectives.size(); ++i)
        std::printf("%s%s", i ? ", " : "",
                    objectiveName(objectives[i]));
    std::printf("}:\n\n");

    std::ostringstream md;
    writeFrontierMarkdown(md, evals, objectives);
    std::fputs(md.str().c_str(), stdout);

    size_t best = SIZE_MAX;
    if (haveMinimize) {
        best = selectBest(evals, minimize, spec.constraints);
        std::printf("\nquery: %s %s", objectiveMaximized(minimize)
                        ? "maximize" : "minimize",
                    objectiveName(minimize));
        for (const Constraint &c : spec.constraints)
            std::printf("  s.t. %s", c.str().c_str());
        if (best == SIZE_MAX) {
            std::printf("\n  -> no feasible design point\n");
        } else {
            const DesignEval &e = evals[best];
            std::printf("\n  -> %s (%s): lat %.1f cy, jitter %.0f, "
                        "area %.3fx, fmax %.2f GHz, power %.2f mW\n",
                        e.id.unit.name().c_str(),
                        coreKindName(e.id.core), e.latMean, e.latJitter,
                        e.areaNorm, e.fmaxGHz, e.powerMw);
        }
        // Per-core recommendations, the way the paper's Section 6
        // discussion picks one configuration per core.
        std::printf("\nper-core best under the same query:\n");
        for (CoreKind core : spec.cores) {
            std::vector<Constraint> cs = spec.constraints;
            size_t coreBest = SIZE_MAX;
            double bestV = 0;
            for (size_t i = 0; i < evals.size(); ++i) {
                if (evals[i].id.core != core || !evals[i].ok)
                    continue;
                bool feas = true;
                for (const Constraint &c : cs)
                    feas = feas && c.satisfiedBy(evals[i]);
                if (!feas)
                    continue;
                const double v = canonicalValue(evals[i], minimize);
                if (coreBest == SIZE_MAX || v < bestV) {
                    coreBest = i;
                    bestV = v;
                }
            }
            if (coreBest == SIZE_MAX) {
                std::printf("  %-9s -> infeasible\n",
                            coreKindName(core));
            } else {
                std::printf("  %-9s -> %s\n", coreKindName(core),
                            evals[coreBest].id.unit.name().c_str());
            }
        }
    }

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
        writeExploreJson(os, spec, evals, objectives, stats, best);
        std::printf("\njson: %s\n", out_path.c_str());
    }
    if (!md_path.empty()) {
        std::ofstream os(md_path);
        if (!os)
            fatal("cannot open --md file '%s'", md_path.c_str());
        os << md.str();
        std::printf("markdown: %s\n", md_path.c_str());
    }
    return 0;
}
