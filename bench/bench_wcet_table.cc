/**
 * Section 6.2 reproduction: static worst-case context-switch latency
 * on CV32E40P (the paper restricts WCET analysis to the in-order
 * core). The analyzer walks the generated ISR with every-instruction
 * worst-case latencies and the kernel's loop-bound annotations
 * (8 delayed tasks, 8-entry lists), and combines the software path
 * with the decoupled RTOSUnit FSM path.
 *
 * Paper reference points: vanilla 1649, SL 1442, T 202, SLT 70
 * cycles. Absolute values differ (the authors' ISR and memory model
 * are not byte-identical to ours) but the ordering and the collapse
 * from ~1.6k to ~70 cycles must reproduce.
 *
 * Usage: bench_wcet_table [--out wcet.jsonl]
 *
 * --out emits a schema-stamped header line and one JSONL record per
 * configuration (static bounds, path stats, measured latencies).
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "analyze/absint/loopbound.hh"
#include "common/argparse.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "kernel/kernel.hh"
#include "wcet/wcet.hh"
#include "workloads/workloads.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    std::string out_path;
    ArgParser parser("Section 6.2: static worst-case context-switch "
                     "latency on CV32E40P");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.parse(argc, argv);
    setQuiet(true);

    std::ofstream out;
    if (!out_path.empty()) {
        out.open(out_path);
        if (!out)
            fatal("cannot open --out file '%s'", out_path.c_str());
        out << "{\"schema\":1,\"bench\":\"wcet_table\"}\n";
    }
    std::printf("Worst-case context-switch latency, CV32E40P "
                "(8 delayed tasks, 8-entry lists)\n\n");
    std::printf("%-9s %10s %10s %10s %10s %8s %8s   %s\n", "config",
                "WCET[cyc]", "inferred", "sw-path", "hw-path", "insns",
                "memops", "measured mean/max");

    for (const char *name : {"vanilla", "CV32RT", "S", "SL", "T", "ST",
                             "SLT", "SDLOT", "SPLIT"}) {
        const RtosUnitConfig unit = RtosUnitConfig::fromName(name);

        // Build a maximally-loaded kernel: 7 user tasks (so up to
        // 8 TCBs move through lists) with the external path enabled.
        KernelParams kp;
        kp.unit = unit;
        kp.usesExternalIrq = true;
        KernelBuilder kb(kp);
        auto w = makeDelayWake(1);
        w->addTasks(kb);
        const Program program = kb.build();

        WcetAnalyzer analyzer(program, unit);
        const WcetResult res = analyzer.analyzeIsr();

        // Same walk with the abstract-interpretation facts applied:
        // every back edge budgeted with the tighter of its annotation
        // and the inferred bound, infeasible edges pruned. The delta
        // against the annotation-only column is the pessimism the
        // capacity-style annotations (8 tasks, 8-entry lists) carry
        // for this concrete workload.
        WcetAnalyzer inferred(program, unit);
        inferred.setFacts(deriveAbsintFacts(program));
        const WcetResult inf = inferred.analyzeIsr();

        // Side-by-side: measured behaviour of the same configuration.
        auto wl = makeDelayWake(20);
        const RunResult run =
            runWorkload(CoreKind::kCv32e40p, unit, *wl);
        const SampleStats &m = run.switchLatency;

        std::printf("%-9s %10llu %10llu %10llu %10llu %8llu %8llu   "
                    "%.1f / %.0f\n",
                    name,
                    static_cast<unsigned long long>(res.totalCycles),
                    static_cast<unsigned long long>(inf.totalCycles),
                    static_cast<unsigned long long>(res.softwareCycles),
                    static_cast<unsigned long long>(res.hardwareCycles),
                    static_cast<unsigned long long>(res.pathInsns),
                    static_cast<unsigned long long>(res.pathMemOps),
                    m.empty() ? 0.0 : m.mean(), m.empty() ? 0.0 : m.max());

        if (out.is_open()) {
            char mean[32], mx[32];
            std::snprintf(mean, sizeof(mean), "%.3f",
                          m.empty() ? 0.0 : m.mean());
            std::snprintf(mx, sizeof(mx), "%.0f",
                          m.empty() ? 0.0 : m.max());
            out << "{\"config\":\"" << jsonEscape(name)
                << "\",\"wcet_cycles\":" << res.totalCycles
                << ",\"wcet_inferred\":" << inf.totalCycles
                << ",\"sw_cycles\":" << res.softwareCycles
                << ",\"hw_cycles\":" << res.hardwareCycles
                << ",\"path_insns\":" << res.pathInsns
                << ",\"path_mem_ops\":" << res.pathMemOps
                << ",\"measured_mean\":" << mean
                << ",\"measured_max\":" << mx << "}\n";
        }
    }
    std::printf("\npaper (CV32E40P): vanilla 1649, SL 1442, T 202, "
                "SLT 70 cycles\n");
    if (out.is_open())
        std::printf("results: %s\n", out_path.c_str());
    return 0;
}
