/**
 * Fault-injection campaign driver.
 *
 * Default mode: run a deterministic campaign over the requested
 * (core x config x workload) grid — one golden reference plus
 * --faults injected runs per point — classify every outcome and
 * stream one JSONL record per injected run to --out. Identical
 * --seed and grid produce byte-identical output at any --threads.
 * Exits non-zero when any *clean* run fires an oracle (an oracle
 * soundness bug), or when any injected run escapes as
 * silent-corruption with --strict.
 *
 * --selftest mode: a seeded-defect matrix with hand-picked,
 * guaranteed-detectable faults. Asserts that every context/list
 * defect is caught by the intended oracle, that clean runs across
 * the full paper configuration matrix never fire, and that nothing
 * classifies as silent-corruption. This is the CI smoke gate.
 *
 * Usage: bench_inject [--cores cv32e40p,cva6,nax]
 *                     [--configs vanilla,SLT,...] [--workloads ...]
 *                     [--iterations N] [--timer-period CYCLES]
 *                     [--faults N] [--campaign-size N] [--seed S]
 *                     [--threads N] [--out campaign.jsonl]
 *                     [--strict] [--selftest] [--no-block-exec]
 *
 * Block execution is exact, so --no-block-exec must not change a
 * single outcome classification; CI runs the selftest both ways.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "inject/campaign.hh"
#include "inject/fault.hh"
#include "kernel/layout.hh"
#include "sweep/sweep.hh"

using namespace rtu;

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

CoreKind
coreFromName(const std::string &name)
{
    if (name == "cv32e40p")
        return CoreKind::kCv32e40p;
    if (name == "cva6")
        return CoreKind::kCva6;
    if (name == "nax" || name == "naxriscv")
        return CoreKind::kNax;
    fatal("unknown core '%s' (expected cv32e40p, cva6 or nax)",
          name.c_str());
}

void
printSummary(const CampaignResult &res)
{
    std::printf("campaign: %zu points, %zu injected runs\n",
                res.goldens.size(), res.faults.size());
    for (unsigned o = 0; o < kNumFaultOutcomes; ++o) {
        const auto outcome = static_cast<FaultOutcome>(o);
        std::printf("  %-18s %u\n", faultOutcomeName(outcome),
                    res.countOf(outcome));
    }
    std::printf("  detection coverage %.4f\n", res.detectionCoverage());
    std::printf("  clean-run oracle firings %u\n", res.cleanOracleHits());
}

/**
 * The seeded-defect matrix: hand-picked faults each oracle is
 * guaranteed to catch, across representative configurations of every
 * context mechanism. Returns the number of failed expectations.
 */
unsigned
runSelftest(const SweepRunner &runner, unsigned iterations,
            Word timer_period, bool block_exec)
{
    unsigned failures = 0;
    const auto expect = [&](bool ok, const std::string &what) {
        if (!ok) {
            ++failures;
            std::fprintf(stderr, "selftest FAIL: %s\n", what.c_str());
        }
    };

    // Clean matrix: the full paper configuration set on three
    // workloads must never fire an oracle.
    {
        SweepSpec spec;
        spec.cores = {CoreKind::kCv32e40p};
        spec.units = RtosUnitConfig::paperConfigs();
        spec.workloads = {"yield_pingpong", "round_robin",
                          "ext_interrupt"};
        spec.iterations = iterations;
        spec.timerPeriods = {timer_period};
        CampaignSpec cs;
        cs.points = spec.points();
        cs.faultsPerPoint = 1;
        cs.seed = 42;
        cs.blockExec = block_exec;
        const CampaignResult res = runCampaign(cs, runner);
        expect(res.cleanOracleHits() == 0,
               csprintf("clean matrix fired %u oracle hits (first: %s)",
                        res.cleanOracleHits(),
                        [&] {
                            for (const GoldenRecord &g : res.goldens)
                                if (g.oracleHits)
                                    return g.point.key() + ": " +
                                           g.oracleDetail;
                            return std::string("none");
                        }()
                            .c_str()));
        expect(res.countOf(FaultOutcome::kSilentCorruption) == 0,
               "seeded campaign produced silent corruption");
    }

    // Hand-picked defects with a guaranteed detection path.
    struct Fixture
    {
        const char *config;
        FaultSpec fault;
        const char *oracle;  ///< expected oracle name
    };
    FaultSpec ctxFlip;
    ctxFlip.kind = FaultKind::kCtxFlip;
    ctxFlip.episode = 2;
    ctxFlip.word = 4;  // x5: compared at every resume regardless of use
    ctxFlip.bitMask = 0xFF0;
    FaultSpec tcbFlip;
    tcbFlip.kind = FaultKind::kTcbField;
    tcbFlip.episode = 2;
    tcbFlip.tcbField = kernel::kTcbId;  // breaks table<->TCB mapping
    tcbFlip.bitMask = 0x7;
    tcbFlip.taskSel = 1;
    FaultSpec fsmAbort;
    fsmAbort.kind = FaultKind::kFsmAbort;
    fsmAbort.episode = 3;
    fsmAbort.cycles = 2;  // kill the store drain near its start
    const std::vector<Fixture> fixtures = {
        {"vanilla", ctxFlip, "context"}, {"vanilla", tcbFlip, "list"},
        {"S", ctxFlip, "context"},       {"S", tcbFlip, "list"},
        {"SDLOT", ctxFlip, "context"},   {"T", tcbFlip, "list"},
        {"CV32RT", ctxFlip, "context"},  {"S", fsmAbort, "context"},
    };
    for (const Fixture &fx : fixtures) {
        SweepPoint pt;
        pt.core = CoreKind::kCv32e40p;
        pt.unit = RtosUnitConfig::fromName(fx.config);
        pt.workload = "yield_pingpong";
        pt.iterations = iterations;
        pt.timerPeriodCycles = timer_period;
        pt.reseed();
        GoldenRecord golden;
        const FaultRunRecord rec =
            runSingleFault(pt, fx.fault, true, &golden, block_exec);
        const std::string label =
            csprintf("%s/%s", fx.config, fx.fault.describe().c_str());
        expect(golden.oracleHits == 0,
               csprintf("%s: clean run fired: %s", label.c_str(),
                        golden.oracleDetail.c_str()));
        expect(rec.fired, label + ": fault never fired");
        expect(rec.outcome == FaultOutcome::kDetectedOracle,
               csprintf("%s: classified %s, expected detected-oracle "
                        "(%s)",
                        label.c_str(), faultOutcomeName(rec.outcome),
                        rec.oracleDetail.c_str()));
        expect(rec.oracleName == fx.oracle,
               csprintf("%s: %s oracle fired (%s), expected %s",
                        label.c_str(), rec.oracleName.c_str(),
                        rec.oracleDetail.c_str(), fx.oracle));
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string cores_arg = "cv32e40p";
    std::string configs_arg = "vanilla,S,SLT,SDLOT,T,CV32RT";
    std::string workloads_arg = "yield_pingpong,round_robin,ext_interrupt";
    unsigned iterations = 5;
    unsigned timer_period = 1000;
    unsigned faults = 8;
    unsigned campaign_size = 0;
    std::uint64_t seed = 1;
    unsigned threads = 1;
    std::string out_path = "BENCH_inject_campaign.jsonl";
    bool strict = false;
    bool selftest = false;
    bool no_block_exec = false;

    ArgParser parser("Fault-injection campaign with kernel-invariant "
                     "oracles");
    parser.addString("--cores", &cores_arg,
                     "comma list: cv32e40p,cva6,nax");
    parser.addString("--configs", &configs_arg,
                     "comma list of RTOSUnit configurations");
    parser.addString("--workloads", &workloads_arg,
                     "comma list of workloads");
    parser.addUnsigned("--iterations", &iterations,
                       "workload iterations per run");
    parser.addUnsigned("--timer-period", &timer_period,
                       "preemption timer period in cycles");
    parser.addUnsigned("--faults", &faults,
                       "injected faults per grid point");
    parser.addUnsigned("--campaign-size", &campaign_size,
                       "total fault budget (overrides --faults)");
    parser.addU64("--seed", &seed, "campaign seed (plans derive from it)");
    parser.addUnsigned("--threads", &threads, "worker threads");
    parser.addString("--out", &out_path, "outcome JSONL path");
    parser.addFlag("--strict", &strict,
                   "exit non-zero on any silent-corruption outcome");
    parser.addFlag("--selftest", &selftest,
                   "run the seeded-defect matrix and exit");
    parser.addFlag("--no-block-exec", &no_block_exec,
                   "disable superblock execution (classification must "
                   "not change)");
    parser.parse(argc, argv);

    const SweepRunner runner(threads);

    if (selftest) {
        const unsigned failures =
            runSelftest(runner, iterations, timer_period, !no_block_exec);
        if (failures != 0) {
            std::fprintf(stderr, "selftest: %u failures\n", failures);
            return 1;
        }
        std::printf("selftest: all oracles detected their seeded "
                    "defects; clean matrix silent\n");
        return 0;
    }

    SweepSpec spec;
    for (const std::string &c : splitList(cores_arg))
        spec.cores.push_back(coreFromName(c));
    for (const std::string &c : splitList(configs_arg))
        spec.units.push_back(RtosUnitConfig::fromName(c));
    spec.workloads = splitList(workloads_arg);
    spec.iterations = iterations;
    spec.timerPeriods = {timer_period};

    CampaignSpec cs;
    cs.points = spec.points();
    cs.seed = seed;
    cs.blockExec = !no_block_exec;
    cs.faultsPerPoint = faults;
    if (campaign_size != 0) {
        cs.faultsPerPoint = std::max<unsigned>(
            1, (campaign_size + static_cast<unsigned>(cs.points.size()) -
                1) /
                   static_cast<unsigned>(cs.points.size()));
    }

    const CampaignResult res = runCampaign(cs, runner);

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot open '%s'", out_path.c_str());
    writeCampaignJsonl(out, cs, res);
    printSummary(res);

    if (res.cleanOracleHits() != 0) {
        std::fprintf(stderr,
                     "FAIL: clean runs fired %u oracle hits — oracle "
                     "soundness bug\n",
                     res.cleanOracleHits());
        return 1;
    }
    if (strict && res.countOf(FaultOutcome::kSilentCorruption) != 0) {
        std::fprintf(stderr, "FAIL: %u silent-corruption escapes\n",
                     res.countOf(FaultOutcome::kSilentCorruption));
        return 1;
    }
    return 0;
}
