/**
 * Figure 10 reproduction: normalized ASIC area of each core under
 * every RTOSUnit configuration, with absolute areas (the paper prints
 * them above the bars) and the per-structure breakdown the analytical
 * model accounts.
 *
 * Usage: bench_fig10_area [--breakdown] [--out area.jsonl]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "asic/asic.hh"
#include "common/json.hh"
#include "common/argparse.hh"
#include "common/logging.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    bool breakdown = false;
    std::string out_path;
    ArgParser parser("Figure 10: normalized ASIC area per core and "
                     "RTOSUnit configuration");
    parser.addFlag("--breakdown", &breakdown,
                   "print the per-structure area breakdown");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.parse(argc, argv);

    std::ofstream os;
    if (!out_path.empty()) {
        os.open(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
    }

    std::printf("Figure 10: normalized ASIC area w.r.t. each core's "
                "baseline (22 nm model)\n");
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax}) {
        std::printf("\n=== %s ===\n", coreKindName(core));
        std::printf("%-9s %10s %12s %10s\n", "config", "norm",
                    "area[mm2]", "kGE");
        for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs()) {
            const AreaResult a = AsicModel::area(core, cfg);
            std::printf("%-9s %9.3fx %12.4f %10.1f\n",
                        cfg.name().c_str(), a.normalized, a.areaMm2,
                        a.totalGE / 1000.0);
            if (breakdown) {
                for (const auto &[name, ge] : a.breakdownGE) {
                    if (name != "core")
                        std::printf("    %-28s %8.1f kGE\n",
                                    name.c_str(), ge / 1000.0);
                }
            }
            if (os.is_open()) {
                char buf[256];
                std::snprintf(buf, sizeof(buf),
                              "{\"core\":\"%s\",\"config\":\"%s\","
                              "\"norm\":%.6f,\"area_mm2\":%.6f,"
                              "\"total_ge\":%.1f}\n",
                              coreKindName(core),
                              jsonEscape(cfg.name()).c_str(),
                              a.normalized, a.areaMm2, a.totalGE);
                os << buf;
            }
        }
    }
    std::printf("\npaper anchors: CV32E40P S +21.9%%, CV32RT +21.2%%, "
                "T ~0%%, ST +33%%, SPLIT +44%%; CVA6 S +3-5%%; "
                "NaxRiscv S ~15%%, CV32RT +19%%\n");
    if (os.is_open())
        std::printf("results: %s\n", out_path.c_str());
    return 0;
}
