/**
 * Figure 10 reproduction: normalized ASIC area of each core under
 * every RTOSUnit configuration, with absolute areas (the paper prints
 * them above the bars) and the per-structure breakdown the analytical
 * model accounts.
 */

#include <cstdio>

#include "asic/asic.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    const bool breakdown = argc > 1 &&
                           std::string(argv[1]) == "--breakdown";

    std::printf("Figure 10: normalized ASIC area w.r.t. each core's "
                "baseline (22 nm model)\n");
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax}) {
        std::printf("\n=== %s ===\n", coreKindName(core));
        std::printf("%-9s %10s %12s %10s\n", "config", "norm",
                    "area[mm2]", "kGE");
        for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs()) {
            const AreaResult a = AsicModel::area(core, cfg);
            std::printf("%-9s %9.3fx %12.4f %10.1f\n",
                        cfg.name().c_str(), a.normalized, a.areaMm2,
                        a.totalGE / 1000.0);
            if (breakdown) {
                for (const auto &[name, ge] : a.breakdownGE) {
                    if (name != "core")
                        std::printf("    %-28s %8.1f kGE\n",
                                    name.c_str(), ge / 1000.0);
                }
            }
        }
    }
    std::printf("\npaper anchors: CV32E40P S +21.9%%, CV32RT +21.2%%, "
                "T ~0%%, ST +33%%, SPLIT +44%%; CVA6 S +3-5%%; "
                "NaxRiscv S ~15%%, CV32RT +19%%\n");
    return 0;
}
