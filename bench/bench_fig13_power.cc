/**
 * Figure 13 reproduction: average power of each core x configuration
 * running `mutex_workload` at 500 MHz. As in the paper, the dynamic
 * component derives from the switching activity of an *actual*
 * workload execution (our analytical analogue of their gate-level
 * waveform power flow), and static power tracks area.
 */

#include <cstdio>

#include "asic/asic.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

using namespace rtu;

int
main()
{
    setQuiet(true);
    constexpr double kFreqMhz = 500.0;

    std::printf("Figure 13: average power on mutex_workload @ "
                "%.0f MHz (22 nm model)\n", kFreqMhz);
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax}) {
        std::printf("\n=== %s ===\n", coreKindName(core));
        std::printf("%-9s %10s %10s %10s %9s\n", "config",
                    "static[mW]", "dyn[mW]", "total[mW]", "vs base");
        double base_total = 0.0;
        for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs()) {
            auto w = makeMutexWorkload(20);
            const RunResult run = runWorkload(core, cfg, *w);
            if (!run.ok) {
                std::printf("%-9s   RUN FAILED\n", cfg.name().c_str());
                continue;
            }
            const PowerResult p =
                AsicModel::power(core, cfg, run.activity, kFreqMhz);
            if (cfg.isVanilla())
                base_total = p.totalMw();
            std::printf("%-9s %10.2f %10.2f %10.2f %+8.1f%%\n",
                        cfg.name().c_str(), p.staticMw, p.dynamicMw,
                        p.totalMw(),
                        100.0 * (p.totalMw() / base_total - 1.0));
        }
    }
    std::printf("\npaper anchors: strong area-power correlation; "
                "relative increases up to +72%% (CV32E40P), +33%% "
                "(CVA6), +13%% (NaxRiscv, CV32RT highest there)\n");
    return 0;
}
