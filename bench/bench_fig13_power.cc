/**
 * Figure 13 reproduction: average power of each core x configuration
 * running `mutex_workload` at 500 MHz. As in the paper, the dynamic
 * component derives from the switching activity of an *actual*
 * workload execution (our analytical analogue of their gate-level
 * waveform power flow), and static power tracks area.
 *
 * The workload grid runs through the SweepRunner: --threads N shards
 * the independent simulations with identical results at any N, and
 * --out emits the per-point JSONL the other figure benches share.
 *
 * Usage: bench_fig13_power [--threads N] [--iterations N]
 *                          [--out power.jsonl]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "asic/asic.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    unsigned iterations = 20;
    unsigned threads = 1;
    std::string out_path;
    ArgParser parser("Figure 13: average power on mutex_workload "
                     "(22 nm model)");
    parser.addUnsigned("--iterations", &iterations,
                       "workload iterations per run");
    parser.addUnsigned("--threads", &threads, "worker threads");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.parse(argc, argv);
    setQuiet(true);
    constexpr double kFreqMhz = 500.0;

    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p, CoreKind::kCva6, CoreKind::kNax};
    spec.units = RtosUnitConfig::paperConfigs();
    spec.workloads = {"mutex_workload"};
    spec.iterations = iterations;

    const SweepRunner runner(threads);
    const auto results = runner.run(spec);

    std::printf("Figure 13: average power on mutex_workload @ "
                "%.0f MHz (22 nm model, %u threads)\n", kFreqMhz,
                runner.threads());
    for (CoreKind core : spec.cores) {
        std::printf("\n=== %s ===\n", coreKindName(core));
        std::printf("%-9s %10s %10s %10s %9s\n", "config",
                    "static[mW]", "dyn[mW]", "total[mW]", "vs base");
        double base_total = 0.0;
        for (const RtosUnitConfig &cfg : spec.units) {
            const SweepResult *row = nullptr;
            for (const SweepResult &r : results) {
                if (r.point.core == core && r.point.unit == cfg)
                    row = &r;
            }
            if (!row || !row->run.ok) {
                std::printf("%-9s   RUN FAILED\n", cfg.name().c_str());
                continue;
            }
            const PowerResult p = AsicModel::power(
                core, cfg, row->run.activity, kFreqMhz);
            if (cfg.isVanilla())
                base_total = p.totalMw();
            std::printf("%-9s %10.2f %10.2f %10.2f %+8.1f%%\n",
                        cfg.name().c_str(), p.staticMw, p.dynamicMw,
                        p.totalMw(),
                        100.0 * (p.totalMw() / base_total - 1.0));
        }
    }
    std::printf("\npaper anchors: strong area-power correlation; "
                "relative increases up to +72%% (CV32E40P), +33%% "
                "(CVA6), +13%% (NaxRiscv, CV32RT highest there)\n");

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
        writeResultsJsonl(os, results);
        std::printf("results: %s (%zu points)\n", out_path.c_str(),
                    results.size());
    }
    return 0;
}
