/**
 * Figure 11 reproduction: achievable ASIC frequency of each core
 * under every RTOSUnit configuration (22 nm critical-path model).
 *
 * Usage: bench_fig11_fmax [--out fmax.jsonl]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "asic/asic.hh"
#include "common/json.hh"
#include "common/argparse.hh"
#include "common/logging.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    std::string out_path;
    ArgParser parser("Figure 11: achievable ASIC f_max per core and "
                     "RTOSUnit configuration");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.parse(argc, argv);

    std::ofstream os;
    if (!out_path.empty()) {
        os.open(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
    }

    std::printf("Figure 11: ASIC f_max under RTOSUnit "
                "configurations (GHz)\n\n");
    std::printf("%-9s", "config");
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax})
        std::printf(" %14s", coreKindName(core));
    std::printf("\n");

    for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs()) {
        std::printf("%-9s", cfg.name().c_str());
        for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                              CoreKind::kNax}) {
            const double base =
                AsicModel::fmaxGHz(core, RtosUnitConfig::vanilla());
            const double f = AsicModel::fmaxGHz(core, cfg);
            std::printf("  %5.2f (%+4.0f%%)", f,
                        100.0 * (f / base - 1.0));
            if (os.is_open()) {
                char buf[256];
                std::snprintf(buf, sizeof(buf),
                              "{\"core\":\"%s\",\"config\":\"%s\","
                              "\"fmax_ghz\":%.6f,\"delta_pct\":%.3f}\n",
                              coreKindName(core),
                              jsonEscape(cfg.name()).c_str(), f,
                              100.0 * (f / base - 1.0));
                os << buf;
            }
        }
        std::printf("\n");
    }
    std::printf("\npaper anchors: CV32E40P ~-15%% on all RTOSUnit "
                "configs (CV32RT unaffected); CVA6 ~-8%%; NaxRiscv "
                "stable, SPLIT -4%%\n");
    if (os.is_open())
        std::printf("results: %s\n", out_path.c_str());
    return 0;
}
