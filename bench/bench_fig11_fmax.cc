/**
 * Figure 11 reproduction: achievable ASIC frequency of each core
 * under every RTOSUnit configuration (22 nm critical-path model).
 */

#include <cstdio>

#include "asic/asic.hh"

using namespace rtu;

int
main()
{
    std::printf("Figure 11: ASIC f_max under RTOSUnit "
                "configurations (GHz)\n\n");
    std::printf("%-9s", "config");
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax})
        std::printf(" %14s", coreKindName(core));
    std::printf("\n");

    for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs()) {
        std::printf("%-9s", cfg.name().c_str());
        for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                              CoreKind::kNax}) {
            const double base =
                AsicModel::fmaxGHz(core, RtosUnitConfig::vanilla());
            const double f = AsicModel::fmaxGHz(core, cfg);
            std::printf("  %5.2f (%+4.0f%%)", f,
                        100.0 * (f / base - 1.0));
        }
        std::printf("\n");
    }
    std::printf("\npaper anchors: CV32E40P ~-15%% on all RTOSUnit "
                "configs (CV32RT unaffected); CVA6 ~-8%%; NaxRiscv "
                "stable, SPLIT -4%%\n");
    return 0;
}
