/**
 * Google-benchmark microbenchmarks of the simulator's own building
 * blocks: instruction decode, functional execution, hardware-list
 * sorting, context FSM transfers and whole-system simulation
 * throughput (host cycles per simulated cycle).
 *
 * Deliberately NOT on the shared ArgParser: BENCHMARK_MAIN() owns the
 * command line, and google-benchmark's native flags already cover the
 * driver conventions (--benchmark_out=FILE --benchmark_out_format=json
 * is this binary's --out; --benchmark_filter selects benchmarks).
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "asm/decode.hh"
#include "asm/encode.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "rtosunit/hw_lists.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

void
BM_Decode(benchmark::State &state)
{
    const Word insns[] = {
        encode(Op::kAddi, A0, A1, 0, 42),
        encode(Op::kLw, A0, SP, 0, 16),
        encode(Op::kBne, 0, A0, A1, -16),
        encode(Op::kMul, A2, A3, A4, 0),
        encode(Op::kCsrrw, A0, T0, 0, 0, csr::kMscratch),
        encode(Op::kGetHwSched, T0, 0, 0, 0),
    };
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(decode(insns[i % 6]));
        ++i;
    }
}
BENCHMARK(BM_Decode);

void
BM_AssembleKernel(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        KernelParams kp;
        kp.unit = RtosUnitConfig::fromName("SLT");
        KernelBuilder kb(kp);
        auto w = makeMutexWorkload(5);
        w->addTasks(kb);
        benchmark::DoNotOptimize(kb.build());
    }
}
BENCHMARK(BM_AssembleKernel);

void
BM_HwListSortSettle(benchmark::State &state)
{
    const unsigned slots = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        HwReadyList list(slots);
        for (unsigned i = 0; i < slots; ++i)
            list.insert(static_cast<TaskId>(i % 8),
                        static_cast<Priority>((i * 5) % 8));
        while (list.sorting())
            list.tick();
        benchmark::DoNotOptimize(list.popHeadRoundRobin());
    }
}
BENCHMARK(BM_HwListSortSettle)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_SimulationThroughput(benchmark::State &state)
{
    setQuiet(true);
    const CoreKind core = static_cast<CoreKind>(state.range(0));
    std::uint64_t simulated = 0;
    for (auto _ : state) {
        auto w = makeRoundRobin(5);
        const RunResult r =
            runWorkload(core, RtosUnitConfig::fromName("SLT"), *w);
        simulated += r.cycles;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulationThroughput)
    ->Arg(static_cast<int>(CoreKind::kCv32e40p))
    ->Arg(static_cast<int>(CoreKind::kCva6))
    ->Arg(static_cast<int>(CoreKind::kNax))
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace rtu

BENCHMARK_MAIN();
