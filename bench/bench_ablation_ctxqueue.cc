/**
 * Ablation: NaxRiscv LSU ctxQueue depth (paper Section 5.3: "we
 * evaluated different queue sizes and identified eight entries as a
 * Pareto-optimal solution. Further reducing the queue size would
 * negatively impact context-switch latency, while larger sizes offer
 * no performance gain").
 *
 * Sweeps the depth 1..16 on the (SLT) configuration through the
 * SweepRunner and reports mean switch latency over the workload suite
 * — the knee at eight entries should reproduce.
 *
 * Usage: bench_ablation_ctxqueue [--threads N] [--out results.jsonl]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    unsigned threads = 1;
    bool no_fast_forward = false;
    bool no_predecode = false;
    bool no_block_exec = false;
    std::string out_path;
    ArgParser parser("Ablation: NaxRiscv LSU ctxQueue depth vs switch "
                     "latency");
    parser.addUnsigned("--threads", &threads, "worker threads");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.addFlag("--no-fast-forward", &no_fast_forward,
                   "tick every cycle (reference mode)");
    parser.addFlag("--no-predecode", &no_predecode,
                   "decode from memory on every fetch");
    parser.addFlag("--no-block-exec", &no_block_exec,
                   "disable superblock execution");
    parser.parse(argc, argv);
    const bool fast_forward = !no_fast_forward;
    setQuiet(true);

    SweepSpec spec;
    spec.cores = {CoreKind::kNax};
    spec.units = {RtosUnitConfig::fromName("SLT")};
    spec.workloads = standardWorkloadNames();
    spec.ctxQueueDepths = {1, 2, 4, 6, 8, 12, 16};
    spec.iterations = 10;

    SweepRunner runner(threads);
    runner.setFastForward(fast_forward);
    runner.setPredecode(!no_predecode);
    runner.setBlockExec(!no_block_exec);
    const auto results = runner.run(spec);

    std::printf("Ablation: ctxQueue depth on NaxRiscv (SLT), mean "
                "context-switch latency (%u threads)\n\n", threads);
    std::printf("%7s %10s\n", "entries", "mean[cy]");
    double at8 = 0;
    for (unsigned depth : spec.ctxQueueDepths) {
        const SampleStats merged = mergeSweepLatencies(
            results, [&](const SweepResult &r) {
                return r.point.naxCtxQueueEntries == depth && r.run.ok;
            });
        const double m = merged.empty() ? 0.0 : merged.mean();
        if (depth == 8)
            at8 = m;
        std::printf("%7u %10.1f\n", depth, m);
    }
    std::printf("\npaper: eight entries Pareto-optimal — shallower "
                "queues hurt latency, deeper ones gain nothing "
                "(measured knee at 8: %.1f cycles)\n", at8);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
        writeResultsHeaderJsonl(os, "ablation_ctxqueue");
        writeResultsJsonl(os, results);
        std::printf("results: %s (%zu points)\n", out_path.c_str(),
                    results.size());
    }
    return 0;
}
