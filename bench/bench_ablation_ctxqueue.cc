/**
 * Ablation: NaxRiscv LSU ctxQueue depth (paper Section 5.3: "we
 * evaluated different queue sizes and identified eight entries as a
 * Pareto-optimal solution. Further reducing the queue size would
 * negatively impact context-switch latency, while larger sizes offer
 * no performance gain").
 *
 * Sweeps the depth 1..16 on the (SLT) configuration and reports mean
 * switch latency over the workload suite — the knee at eight entries
 * should reproduce.
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "kernel/kernel.hh"

using namespace rtu;

namespace {

double
meanLatency(unsigned depth)
{
    SampleStats merged;
    for (const auto &w : standardSuite(10)) {
        const WorkloadInfo info = w->info();
        KernelParams kp;
        kp.unit = RtosUnitConfig::fromName("SLT");
        kp.usesExternalIrq = info.usesExternalIrq;
        KernelBuilder kb(kp);
        w->addTasks(kb);
        const Program program = kb.build();
        SimConfig sc;
        sc.core = CoreKind::kNax;
        sc.unit = kp.unit;
        sc.maxCycles = info.maxCycles;
        sc.naxCtxQueueEntries = depth;
        Simulation sim(sc, program);
        for (Cycle at : info.extIrqSchedule)
            sim.scheduleExtIrq(at);
        if (!sim.run() || sim.exitCode() != 0) {
            warn("ctxQueue depth %u: %s failed", depth,
                 info.name.c_str());
            continue;
        }
        merged.merge(sim.recorder().latencyStats(true));
    }
    return merged.empty() ? 0.0 : merged.mean();
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Ablation: ctxQueue depth on NaxRiscv (SLT), mean "
                "context-switch latency\n\n");
    std::printf("%7s %10s\n", "entries", "mean[cy]");
    double at8 = 0;
    for (unsigned depth : {1u, 2u, 4u, 6u, 8u, 12u, 16u}) {
        const double m = meanLatency(depth);
        if (depth == 8)
            at8 = m;
        std::printf("%7u %10.1f\n", depth, m);
    }
    std::printf("\npaper: eight entries Pareto-optimal — shallower "
                "queues hurt latency, deeper ones gain nothing "
                "(measured knee at 8: %.1f cycles)\n", at8);
    return 0;
}
