/**
 * Ablation: hardware list length vs switch latency on CV32E40P (T).
 *
 * Figure 12 shows the *area* cost of longer lists; this bench shows
 * the latency side of the same knob: the iterative sorting network
 * needs one phase per slot, so GET_HW_SCHED's worst stall grows with
 * the list length even when few tasks exist. Together they bound the
 * sensible list size for a given task count — the design trade-off
 * behind the paper's 8-entry default.
 *
 * Usage: bench_ablation_lists [--threads N] [--out results.jsonl]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

using namespace rtu;

int
main(int argc, char **argv)
{
    unsigned threads = 1;
    bool no_fast_forward = false;
    bool no_predecode = false;
    bool no_block_exec = false;
    std::string out_path;
    ArgParser parser("Ablation: hardware list length vs switch latency "
                     "on CV32E40P (T)");
    parser.addUnsigned("--threads", &threads, "worker threads");
    parser.addString("--out", &out_path, "JSONL output path");
    parser.addFlag("--no-fast-forward", &no_fast_forward,
                   "tick every cycle (reference mode)");
    parser.addFlag("--no-predecode", &no_predecode,
                   "decode from memory on every fetch");
    parser.addFlag("--no-block-exec", &no_block_exec,
                   "disable superblock execution");
    parser.parse(argc, argv);
    const bool fast_forward = !no_fast_forward;
    setQuiet(true);

    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p};
    for (unsigned slots : {8u, 16u, 32u, 64u}) {
        RtosUnitConfig cfg = RtosUnitConfig::fromName("T");
        cfg.listSlots = slots;
        spec.units.push_back(cfg);
    }
    spec.workloads = standardWorkloadNames();
    spec.iterations = 10;

    SweepRunner runner(threads);
    runner.setFastForward(fast_forward);
    runner.setPredecode(!no_predecode);
    runner.setBlockExec(!no_block_exec);
    const auto results = runner.run(spec);

    std::printf("Ablation: hardware list length on CV32E40P (T), "
                "workload suite x10 (%u threads)\n\n", threads);
    std::printf("%6s %10s %8s %8s\n", "slots", "mean[cy]", "max",
                "jitter");
    for (const RtosUnitConfig &cfg : spec.units) {
        bool ok = true;
        for (const SweepResult &r : results) {
            if (r.point.unit == cfg)
                ok = ok && r.run.ok;
        }
        const SampleStats merged = mergeSweepLatencies(
            results,
            [&](const SweepResult &r) { return r.point.unit == cfg; });
        if (merged.empty() || !ok) {
            std::printf("%6u    RUN FAILED\n", cfg.listSlots);
            continue;
        }
        std::printf("%6u %10.1f %8.0f %8.0f\n", cfg.listSlots,
                    merged.mean(), merged.max(), merged.jitter());
    }
    std::printf("\nLonger lists lengthen the sort-settle stall of "
                "GET_HW_SCHED; with eight tasks the 8-slot default "
                "is latency-optimal, matching the paper's choice.\n");

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("cannot open --out file '%s'", out_path.c_str());
        writeResultsHeaderJsonl(os, "ablation_lists");
        writeResultsJsonl(os, results);
        std::printf("results: %s (%zu points)\n", out_path.c_str(),
                    results.size());
    }
    return 0;
}
