/**
 * Ablation: hardware list length vs switch latency on CV32E40P (T).
 *
 * Figure 12 shows the *area* cost of longer lists; this bench shows
 * the latency side of the same knob: the iterative sorting network
 * needs one phase per slot, so GET_HW_SCHED's worst stall grows with
 * the list length even when few tasks exist. Together they bound the
 * sensible list size for a given task count — the design trade-off
 * behind the paper's 8-entry default.
 */

#include <cstdio>

#include "common/logging.hh"
#include "harness/experiment.hh"

using namespace rtu;

int
main()
{
    setQuiet(true);
    std::printf("Ablation: hardware list length on CV32E40P (T), "
                "workload suite x10\n\n");
    std::printf("%6s %10s %8s %8s\n", "slots", "mean[cy]", "max",
                "jitter");
    for (unsigned slots : {8u, 16u, 32u, 64u}) {
        RtosUnitConfig cfg = RtosUnitConfig::fromName("T");
        cfg.listSlots = slots;
        const auto runs = runSuite(CoreKind::kCv32e40p, cfg, 10);
        SampleStats merged = mergeSwitchLatencies(runs);
        bool ok = !merged.empty();
        for (const RunResult &r : runs)
            ok = ok && r.ok;
        if (!ok) {
            std::printf("%6u    RUN FAILED\n", slots);
            continue;
        }
        std::printf("%6u %10.1f %8.0f %8.0f\n", slots, merged.mean(),
                    merged.max(), merged.jitter());
    }
    std::printf("\nLonger lists lengthen the sort-settle stall of "
                "GET_HW_SCHED; with eight tasks the 8-slot default "
                "is latency-optimal, matching the paper's choice.\n");
    return 0;
}
