/** End-to-end smoke tests: generated kernels run to completion on the
 *  CV32E40P model across RTOSUnit configurations. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/hostio.hh"

namespace rtu {
namespace {

TEST(EndToEnd, VanillaYieldPingPongCompletes)
{
    auto w = makeYieldPingPong(10);
    const RunResult r = runWorkload(CoreKind::kCv32e40p,
                                    RtosUnitConfig::vanilla(), *w);
    EXPECT_TRUE(r.ok) << "exit code 0x" << std::hex << r.exitCode;
    EXPECT_GT(r.switchLatency.count(), 10u);
}

TEST(EndToEnd, SltYieldPingPongCompletes)
{
    auto w = makeYieldPingPong(10);
    const RunResult r = runWorkload(
        CoreKind::kCv32e40p, RtosUnitConfig::fromName("SLT"), *w);
    EXPECT_TRUE(r.ok) << "exit code 0x" << std::hex << r.exitCode;
    EXPECT_GT(r.switchLatency.count(), 10u);
}

TEST(EndToEnd, SltIsFasterThanVanilla)
{
    auto w = makeYieldPingPong(10);
    const RunResult vanilla = runWorkload(
        CoreKind::kCv32e40p, RtosUnitConfig::vanilla(), *w);
    auto w2 = makeYieldPingPong(10);
    const RunResult slt = runWorkload(
        CoreKind::kCv32e40p, RtosUnitConfig::fromName("SLT"), *w2);
    ASSERT_TRUE(vanilla.ok);
    ASSERT_TRUE(slt.ok);
    EXPECT_LT(slt.switchLatency.mean(), vanilla.switchLatency.mean());
}

} // namespace
} // namespace rtu
