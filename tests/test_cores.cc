/** Core timing-model tests: deterministic CV32E40P interrupt entry,
 *  data-dependent divider latency, hazards; CVA6 scoreboard overlap
 *  and cache effects; NaxRiscv superscalar throughput, commit-boundary
 *  interrupts and the LSU ctxQueue. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "cores/cv32e40p.hh"
#include "cores/cva6.hh"
#include "cores/nax.hh"
#include "sim/clint.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

/** Minimal bare-metal harness around one core model. */
class CoreHarness : public CoreListener
{
  public:
    explicit CoreHarness(const Program &program)
        : imem("imem", memmap::kImemBase, memmap::kImemSize),
          dmem("dmem", memmap::kDmemBase, memmap::kDmemSize),
          clint(irq), exec(state, mem, irq), dmemPort("dmem"),
          busPort("bus")
    {
        mem.addDevice(&imem);
        mem.addDevice(&dmem);
        mem.addDevice(&clint);
        imem.loadWords(program.textBase, program.text);
        dmem.loadWords(program.dataBase, program.data);
        state.setPc(program.textBase);
        exec.setClock(&now);
    }

    template <typename CoreT, typename... Args>
    CoreT *
    make(Args &&...args)
    {
        Core::Env env;
        env.state = &state;
        env.exec = &exec;
        env.mem = &mem;
        env.irq = &irq;
        env.dmemPort = &dmemPort;
        env.clint = &clint;
        auto c = std::make_unique<CoreT>(env, std::forward<Args>(args)...);
        CoreT *raw = c.get();
        core = std::move(c);
        core->setListener(this);
        return raw;
    }

    /** Run until pc reaches @p stop_pc (or the cycle limit). */
    Cycle
    runUntilPc(Addr stop_pc, Cycle limit = 100000)
    {
        while (state.pc() != stop_pc && now < limit)
            step();
        return now;
    }

    void
    step()
    {
        clint.tick(now);
        dmemPort.beginCycle();
        busPort.beginCycle();
        core->tick(now);
        ++now;
    }

    void trapTaken(Word cause, Cycle entry) override
    {
        lastTrapCause = cause;
        lastTrapEntry = entry;
        ++traps;
    }
    void mretCompleted(Cycle cycle) override { lastMret = cycle; }

    IrqLines irq;
    MemSystem mem;
    Sram imem;
    Sram dmem;
    Clint clint;
    ArchState state;
    Executor exec;
    SharedPort dmemPort;
    SharedPort busPort;
    std::unique_ptr<Core> core;
    Cycle now = 0;
    Word lastTrapCause = 0;
    Cycle lastTrapEntry = 0;
    Cycle lastMret = 0;
    unsigned traps = 0;
};

Program
straightLine(unsigned alu_insns)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    for (unsigned i = 0; i < alu_insns; ++i)
        a.addi(A0, A0, 1);
    a.label("end");
    a.j("end");
    return a.finish();
}

TEST(Cv32e40pTiming, OneCyclePerAluInsn)
{
    const Program p = straightLine(50);
    CoreHarness h(p);
    h.make<Cv32e40pCore>();
    const Cycle t = h.runUntilPc(p.symbol("end"));
    EXPECT_EQ(t, 50u);
    EXPECT_EQ(h.state.reg(A0), 50u);
}

TEST(Cv32e40pTiming, TakenBranchCostsTwoExtraCycles)
{
    // The timing model charges an instruction's cost before the next
    // one may start, so a trailing marker observes the branch penalty.
    auto measure = [](bool taken) {
        Assembler a(memmap::kImemBase, memmap::kDmemBase);
        if (taken)
            a.beq(Zero, Zero, "t");
        else
            a.bne(Zero, Zero, "t");
        a.label("t");
        a.nop();  // marker
        a.label("end");
        a.j("end");
        const Program p = a.finish();
        CoreHarness h(p);
        h.make<Cv32e40pCore>();
        return h.runUntilPc(p.symbol("end"));
    };
    EXPECT_EQ(measure(true), measure(false) + 2);
}

TEST(Cv32e40pTiming, DividerLatencyTracksDividendMagnitude)
{
    auto measure = [](SWord dividend) {
        Assembler a(memmap::kImemBase, memmap::kDmemBase);
        a.lui(A0, static_cast<SWord>(
                      (static_cast<Word>(dividend) + 0x800) >> 12));
        a.li(A1, 3);
        a.div(A2, A0, A1);
        a.nop();  // marker after the divide completes
        a.label("end");
        a.j("end");
        const Program p = a.finish();
        CoreHarness h(p);
        h.make<Cv32e40pCore>();
        return h.runUntilPc(p.symbol("end"));
    };
    EXPECT_LT(measure(0x7000), measure(0x70000000));
    EXPECT_GE(measure(0x70000000) - measure(0x7000), 10u);
}

TEST(Cv32e40pTiming, LoadUseHazardAddsOneBubble)
{
    auto build = [](bool use_immediately) {
        Assembler a(memmap::kImemBase, memmap::kDmemBase);
        a.li(A0, static_cast<SWord>(memmap::kDmemBase));
        a.lw(A1, 0, A0);
        if (use_immediately)
            a.addi(A2, A1, 1);  // consumes the load
        else
            a.addi(A2, A3, 1);  // independent
        a.nop();  // marker
        a.label("end");
        a.j("end");
        return a.finish();
    };
    const Program dep = build(true);
    const Program indep = build(false);
    CoreHarness h1(dep);
    h1.make<Cv32e40pCore>();
    CoreHarness h2(indep);
    h2.make<Cv32e40pCore>();
    EXPECT_EQ(h1.runUntilPc(dep.symbol("end")),
              h2.runUntilPc(indep.symbol("end")) + 1);
}

/** The property behind the paper's zero-jitter SLT result: CV32E40P
 *  interrupt entry latency is constant even when the interrupt lands
 *  in a multi-cycle divide (the core kills in-flight ops). */
TEST(Cv32e40pTiming, InterruptEntryIsConstant)
{
    std::vector<Cycle> entry_delays;
    for (Cycle fire : {20u, 23u, 26u, 29u, 32u}) {
        Assembler a(memmap::kImemBase, memmap::kDmemBase);
        a.label("isr");
        a.j("isr");  // mtvec == 0: the "handler" parks
        const Program p = [&] {
            Assembler b(memmap::kImemBase, memmap::kDmemBase);
            b.label("isr_park");
            b.j("isr_park");
            // main at 0x8: long divides back to back
            b.label("main");
            b.li(T0, 0x7FFF0000);
            b.li(T1, 3);
            for (int i = 0; i < 8; ++i)
                b.divu(T2, T0, T1);
            b.label("spin");
            b.j("spin");
            return b.finish();
        }();
        CoreHarness h(p);
        h.make<Cv32e40pCore>();
        h.state.setPc(p.symbol("main"));
        h.state.csrs.mtvec = p.symbol("isr_park");
        h.state.csrs.mie = irq::kMti;
        h.state.csrs.mstatus = mstatus::kMie;
        h.clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
        h.clint.write(memmap::kClintMtimecmp, static_cast<Word>(fire),
                      MemSize::kWord);
        while (h.traps == 0 && h.now < 1000)
            h.step();
        ASSERT_EQ(h.traps, 1u);
        entry_delays.push_back(h.lastTrapEntry - fire);
    }
    for (size_t i = 1; i < entry_delays.size(); ++i)
        EXPECT_EQ(entry_delays[i], entry_delays[0]) << i;
}

TEST(Cva6Timing, ScoreboardOverlapsDivideWithIndependentWork)
{
    auto build = [](bool dependent) {
        Assembler a(memmap::kImemBase, memmap::kDmemBase);
        a.li(A0, 0x7FFF0000);
        a.li(A1, 3);
        a.divu(A2, A0, A1);
        for (int i = 0; i < 10; ++i) {
            if (dependent)
                a.addi(A3, A2, 1);  // waits on the divide
            else
                a.addi(A3, A4, 1);  // independent: overlaps
        }
        a.add(A5, A2, A3);  // final join
        a.label("end");
        a.j("end");
        return a.finish();
    };
    const Program dep = build(true);
    const Program indep = build(false);
    CoreHarness h1(dep);
    h1.make<Cva6Core>(h1.busPort);
    CoreHarness h2(indep);
    h2.make<Cva6Core>(h2.busPort);
    const Cycle t_dep = h1.runUntilPc(dep.symbol("end"));
    const Cycle t_indep = h2.runUntilPc(indep.symbol("end"));
    EXPECT_GT(t_dep, t_indep + 5);
}

TEST(Cva6Timing, CacheMissCostsMoreThanHit)
{
    auto measure = [](bool second_access_same_line) {
        Assembler a(memmap::kImemBase, memmap::kDmemBase);
        a.li(A0, static_cast<SWord>(memmap::kDmemBase));
        a.lw(A1, 0, A0);  // cold miss
        if (second_access_same_line)
            a.lw(A2, 4, A0);  // hit
        else
            a.lw(A2, 0x400, A0);  // another cold miss
        a.add(A3, A1, A2);
        a.label("end");
        a.j("end");
        return a.finish();
    };
    const Program hit = measure(true);
    const Program miss = measure(false);
    CoreHarness h1(hit);
    h1.make<Cva6Core>(h1.busPort);
    CoreHarness h2(miss);
    h2.make<Cva6Core>(h2.busPort);
    EXPECT_LT(h1.runUntilPc(hit.symbol("end")),
              h2.runUntilPc(miss.symbol("end")));
}

TEST(NaxTiming, DualIssueBeatsSingleIssueOnIndependentCode)
{
    // Independent ALU stream: NaxRiscv should approach IPC 2 and beat
    // the in-order CV32E40P clearly.
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    for (int i = 0; i < 64; ++i)
        a.addi(static_cast<Reg>(10 + (i % 4)),
               static_cast<Reg>(14 + (i % 4)), 1);
    a.label("end");
    a.j("end");
    const Program p = a.finish();

    CoreHarness nax_h(p);
    nax_h.make<NaxCore>();
    CoreHarness cv_h(p);
    cv_h.make<Cv32e40pCore>();
    const Cycle t_nax = nax_h.runUntilPc(p.symbol("end"));
    const Cycle t_cv = cv_h.runUntilPc(p.symbol("end"));
    EXPECT_LT(t_nax * 3, t_cv * 2);  // at least 1.5x faster
}

TEST(NaxTiming, CommitBoundaryEntryWaitsOnLongOps)
{
    // An interrupt landing in a serialized divide chain must wait for
    // the oldest in-flight divide to commit; in plain ALU code the
    // boundary is immediate. This is the modelled source of the
    // residual (SLT) jitter on NaxRiscv (paper Section 6.1).
    auto entry_delay = [](bool divides) {
        Assembler b(memmap::kImemBase, memmap::kDmemBase);
        b.label("isr_park");
        b.j("isr_park");
        b.label("main");
        b.li(T0, 0x7FFF0000);
        b.li(T1, 3);
        for (int i = 0; i < 40; ++i) {
            if (divides) {
                b.divu(T2, T0, T1);
                b.add(T0, T0, T2);  // serialize the chain
            } else {
                b.addi(T2, T2, 1);
            }
        }
        b.label("spin");
        b.j("spin");
        const Program p = b.finish();
        CoreHarness h(p);
        h.make<NaxCore>();
        h.state.setPc(p.symbol("main"));
        h.state.csrs.mtvec = p.symbol("isr_park");
        h.state.csrs.mie = irq::kMti;
        h.state.csrs.mstatus = mstatus::kMie;
        h.clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
        h.clint.write(memmap::kClintMtimecmp, 60, MemSize::kWord);
        while (h.traps == 0 && h.now < 5000)
            h.step();
        EXPECT_EQ(h.traps, 1u);
        return h.lastTrapEntry - 60;
    };
    EXPECT_GT(entry_delay(true), entry_delay(false) + 5);
}

TEST(NaxTiming, CtxQueueServicesRequestsInOrder)
{
    const Program p = straightLine(4);
    CoreHarness h(p);
    NaxCore *nax = h.make<NaxCore>();
    UnitMemPort &port = nax->ctxQueuePort();

    h.mem.write32(memmap::kCtxBase + 0, 0x11);
    h.mem.write32(memmap::kCtxBase + 4, 0x22);
    ASSERT_TRUE(port.canAccept());
    port.pushRead(memmap::kCtxBase + 0);
    port.pushRead(memmap::kCtxBase + 4);
    port.pushWrite(memmap::kCtxBase + 8, 0x33);

    for (int i = 0; i < 64; ++i) {
        h.step();
        port.tick();
    }
    Word v = 0;
    ASSERT_TRUE(port.popResponse(&v));
    EXPECT_EQ(v, 0x11u);
    ASSERT_TRUE(port.popResponse(&v));
    EXPECT_EQ(v, 0x22u);
    EXPECT_FALSE(port.popResponse(&v));
    EXPECT_EQ(h.mem.read32(memmap::kCtxBase + 8), 0x33u);
    EXPECT_TRUE(port.idle());
}

TEST(NaxTiming, CtxQueueCapacityIsEightEntries)
{
    const Program p = straightLine(4);
    CoreHarness h(p);
    NaxCore *nax = h.make<NaxCore>();
    UnitMemPort &port = nax->ctxQueuePort();
    for (unsigned i = 0; i < 8; ++i) {
        ASSERT_TRUE(port.canAccept()) << i;
        port.pushWrite(memmap::kCtxBase + 4 * i, i);
    }
    EXPECT_FALSE(port.canAccept());
}

} // namespace
} // namespace rtu
