/** Determinism and cross-core semantics: identical runs produce
 *  identical traces; scheduling invariants hold on every core model. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/hostio.hh"

namespace rtu {
namespace {

struct RunCapture
{
    Cycle cycles = 0;
    std::vector<SwitchRecord> switches;
    std::vector<GuestEvent> events;
    Word exitCode = 0;
};

RunCapture
capture(CoreKind core, const std::string &config,
        const std::string &workload)
{
    auto w = makeWorkload(workload, 8);
    const WorkloadInfo info = w->info();
    KernelParams kp;
    kp.unit = RtosUnitConfig::fromName(config);
    kp.usesExternalIrq = info.usesExternalIrq;
    KernelBuilder kb(kp);
    w->addTasks(kb);
    const Program program = kb.build();
    SimConfig sc;
    sc.core = core;
    sc.unit = kp.unit;
    sc.maxCycles = info.maxCycles;
    Simulation sim(sc, program);
    for (Cycle at : info.extIrqSchedule)
        sim.scheduleExtIrq(at);
    sim.run();
    RunCapture out;
    out.cycles = sim.now();
    out.switches = sim.recorder().records();
    out.events = sim.hostIo().events();
    out.exitCode = sim.exitCode();
    return out;
}

class Determinism
    : public ::testing::TestWithParam<std::tuple<CoreKind, std::string>>
{
};

TEST_P(Determinism, IdenticalRunsProduceIdenticalTraces)
{
    const auto [core, config] = GetParam();
    const RunCapture a = capture(core, config, "mutex_workload");
    const RunCapture b = capture(core, config, "mutex_workload");
    ASSERT_EQ(a.cycles, b.cycles);
    ASSERT_EQ(a.exitCode, b.exitCode);
    ASSERT_EQ(a.switches.size(), b.switches.size());
    for (size_t i = 0; i < a.switches.size(); ++i) {
        EXPECT_EQ(a.switches[i].assertCycle, b.switches[i].assertCycle);
        EXPECT_EQ(a.switches[i].mretCycle, b.switches[i].mretCycle);
        EXPECT_EQ(a.switches[i].fromTask, b.switches[i].fromTask);
        EXPECT_EQ(a.switches[i].toTask, b.switches[i].toTask);
    }
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
        EXPECT_EQ(a.events[i].value, b.events[i].value);
    }
}

TEST_P(Determinism, MutexExclusionHoldsOnEveryCore)
{
    const auto [core, config] = GetParam();
    const RunCapture r = capture(core, config, "mutex_workload");
    ASSERT_EQ(r.exitCode, 0u);
    bool held = false;
    for (const GuestEvent &e : r.events) {
        if (e.tag == tag::kMutexAcq) {
            EXPECT_FALSE(held);
            held = true;
        } else if (e.tag == tag::kMutexRel) {
            EXPECT_TRUE(held);
            held = false;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    CoreConfig, Determinism,
    ::testing::Combine(::testing::Values(CoreKind::kCv32e40p,
                                         CoreKind::kCva6,
                                         CoreKind::kNax),
                       ::testing::Values("vanilla", "CV32RT", "SLT",
                                         "SPLIT")),
    [](const auto &info) {
        return std::string(coreKindName(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param);
    });

} // namespace
} // namespace rtu
