/** Harness tests: workload registry, experiment driver, cross-core
 *  runs, activity counters and latency merging. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace rtu {
namespace {

TEST(Workloads, SuiteHasSevenScenarios)
{
    const auto suite = standardSuite(5);
    EXPECT_EQ(suite.size(), 7u);
    std::set<std::string> names;
    for (const auto &w : suite)
        names.insert(w->info().name);
    EXPECT_EQ(names.size(), suite.size());
}

TEST(Workloads, RegistryFindsEveryName)
{
    for (const char *n :
         {"yield_pingpong", "round_robin", "mutex_workload",
          "delay_wake", "sem_pingpong", "priority_preempt",
          "ext_interrupt"}) {
        auto w = makeWorkload(n, 3);
        EXPECT_EQ(w->info().name, n);
    }
}

TEST(WorkloadsDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nope", 3),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Workloads, ExtInterruptSchedulesOneIrqPerIteration)
{
    auto w = makeExtInterrupt(7);
    const WorkloadInfo info = w->info();
    EXPECT_TRUE(info.usesExternalIrq);
    EXPECT_EQ(info.extIrqSchedule.size(), 7u);
    for (size_t i = 1; i < info.extIrqSchedule.size(); ++i)
        EXPECT_GT(info.extIrqSchedule[i], info.extIrqSchedule[i - 1]);
}

class CrossCore : public ::testing::TestWithParam<CoreKind>
{
};

TEST_P(CrossCore, VanillaAndSltRunEverywhere)
{
    for (const char *cfg : {"vanilla", "SLT"}) {
        auto w = makeYieldPingPong(5);
        const RunResult r =
            runWorkload(GetParam(), RtosUnitConfig::fromName(cfg), *w);
        EXPECT_TRUE(r.ok) << coreKindName(GetParam()) << "/" << cfg;
        EXPECT_GT(r.switchLatency.count(), 5u);
        EXPECT_GT(r.activity.instret, 100u);
        EXPECT_GT(r.activity.cycles, 100u);
    }
}

TEST_P(CrossCore, UnitActivityOnlyWithHardware)
{
    auto w1 = makeYieldPingPong(5);
    const RunResult vanilla =
        runWorkload(GetParam(), RtosUnitConfig::vanilla(), *w1);
    auto w2 = makeYieldPingPong(5);
    const RunResult slt = runWorkload(
        GetParam(), RtosUnitConfig::fromName("SLT"), *w2);
    EXPECT_EQ(vanilla.activity.unitMemWords, 0u);
    EXPECT_GT(slt.activity.unitMemWords, 100u);
    EXPECT_GT(slt.activity.sortPhases, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cores, CrossCore,
    ::testing::Values(CoreKind::kCv32e40p, CoreKind::kCva6,
                      CoreKind::kNax),
    [](const ::testing::TestParamInfo<CoreKind> &info) {
        return coreKindName(info.param);
    });

TEST(Experiment, MergeCombinesSamples)
{
    std::vector<RunResult> runs(2);
    runs[0].switchLatency.add(10);
    runs[0].switchLatency.add(20);
    runs[1].switchLatency.add(30);
    const SampleStats merged = mergeSwitchLatencies(runs);
    EXPECT_EQ(merged.count(), 3u);
    EXPECT_DOUBLE_EQ(merged.mean(), 20.0);
    EXPECT_DOUBLE_EQ(merged.jitter(), 20.0);
}

TEST(Experiment, SuiteRunProducesOneResultPerWorkload)
{
    const auto results =
        runSuite(CoreKind::kCv32e40p, RtosUnitConfig::fromName("T"), 3);
    EXPECT_EQ(results.size(), 7u);
    for (const RunResult &r : results)
        EXPECT_TRUE(r.ok) << r.workload;
}

TEST(Simulation, ReadSymbolWordSeesGuestState)
{
    auto w = makeYieldPingPong(3);
    KernelParams kp;
    kp.unit = RtosUnitConfig::vanilla();
    KernelBuilder kb(kp);
    w->addTasks(kb);
    const Program program = kb.build();
    SimConfig sc;
    sc.core = CoreKind::kCv32e40p;
    sc.unit = kp.unit;
    Simulation sim(sc, program);
    ASSERT_TRUE(sim.run());
    // Both tasks finished: the shared done counter reached 2.
    EXPECT_EQ(sim.readSymbolWord("w_done"), 2u);
    // The tick counter advanced with the 1000-cycle timer.
    EXPECT_GE(sim.readSymbolWord("k_tick_count"), sim.now() / 1000 - 1);
}

TEST(Simulation, SwitchRecordsCarryValidTaskIds)
{
    auto w = makeRoundRobin(3);
    const WorkloadInfo info = w->info();
    KernelParams kp;
    kp.unit = RtosUnitConfig::fromName("SLT");
    KernelBuilder kb(kp);
    w->addTasks(kb);
    const Program program = kb.build();
    SimConfig sc;
    sc.core = CoreKind::kCv32e40p;
    sc.unit = kp.unit;
    sc.maxCycles = info.maxCycles;
    Simulation sim(sc, program);
    ASSERT_TRUE(sim.run());
    for (const SwitchRecord &r : sim.recorder().records()) {
        EXPECT_LT(r.fromTask, 5u);  // idle + 4 workers
        EXPECT_LT(r.toTask, 5u);
        EXPECT_GE(r.entryCycle, r.assertCycle);
        EXPECT_GT(r.mretCycle, r.entryCycle);
    }
}

} // namespace
} // namespace rtu
