/** Direct tests of the RTOSUnit's context FSMs: store, restore,
 *  SWITCH_RF / mret stalls, dirty bits, load omission, preloading. */

#include <gtest/gtest.h>

#include "cores/arch_state.hh"
#include "kernel/layout.hh"
#include "rtosunit/rtosunit.hh"
#include "sim/mem.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

class FsmTest : public ::testing::Test
{
  protected:
    FsmTest()
    {
        mem.addDevice(&dmem);
    }

    void
    makeUnit(const std::string &config_name)
    {
        config = RtosUnitConfig::fromName(config_name);
        port = std::make_unique<DirectUnitPort>(arb, mem);
        unit = std::make_unique<RtosUnit>(config, state, *port);
    }

    /** Advance @p n cycles with the core leaving the port idle. */
    void
    idleCycles(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            arb.beginCycle();
            unit->tick(cycle++);
        }
    }

    /** Advance @p n cycles with the core hogging the memory port. */
    void
    busyCycles(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            arb.beginCycle();
            arb.claim();
            unit->tick(cycle++);
        }
    }

    void
    fillAppRegs(Word seed)
    {
        for (RegIndex r = 1; r < 32; ++r)
            state.setBankReg(ArchState::kAppBank, r, seed + r);
    }

    ArchState state;
    MemSystem mem;
    Sram dmem{"dmem", memmap::kDmemBase, memmap::kDmemSize};
    SharedPort arb{"dmem"};
    RtosUnitConfig config;
    std::unique_ptr<DirectUnitPort> port;
    std::unique_ptr<RtosUnit> unit;
    Cycle cycle = 0;
};

TEST_F(FsmTest, StoreFsmDrainsFullContext)
{
    makeUnit("S");
    fillAppRegs(1000);
    state.csrs.mepc = 0x1234;
    state.csrs.mstatus = mstatus::kMpie;
    unit->setContextId(3);

    unit->onTrapEntry(mcause::kMachineTimer);
    EXPECT_TRUE(unit->storeBusy());
    EXPECT_EQ(state.activeBank(), ArchState::kIsrBank);

    idleCycles(kCtxWords + 2);
    EXPECT_FALSE(unit->storeBusy());

    const Addr base = memmap::ctxAddr(3);
    EXPECT_EQ(mem.read32(base + 0), 0x1234u);           // mepc
    EXPECT_EQ(mem.read32(base + 4), mstatus::kMpie);    // mstatus
    EXPECT_EQ(mem.read32(base + 8), 1000u + 1);         // x1
    EXPECT_EQ(mem.read32(base + 12), 1000u + 2);        // x2
    EXPECT_EQ(mem.read32(base + 16), 1000u + 5);        // x5
    EXPECT_EQ(mem.read32(base + 4 * 30), 1000u + 31);   // x31
    EXPECT_EQ(unit->stats().storeWords, kCtxWords);
}

TEST_F(FsmTest, StoreFsmTakesExactly31FreeCycles)
{
    makeUnit("S");
    unit->setContextId(0);
    unit->onTrapEntry(mcause::kMachineTimer);
    idleCycles(kCtxWords - 1);
    EXPECT_TRUE(unit->storeBusy());
    idleCycles(1);
    EXPECT_FALSE(unit->storeBusy());
}

TEST_F(FsmTest, StoreFsmYieldsToTheCore)
{
    makeUnit("S");
    unit->setContextId(0);
    unit->onTrapEntry(mcause::kMachineTimer);
    // While the core owns the port, no word transfers.
    busyCycles(100);
    EXPECT_TRUE(unit->storeBusy());
    EXPECT_EQ(unit->stats().storeWords, 0u);
    idleCycles(kCtxWords);
    EXPECT_FALSE(unit->storeBusy());
}

TEST_F(FsmTest, SwitchRfStallsWhileStoring)
{
    makeUnit("S");
    unit->setContextId(0);
    unit->onTrapEntry(mcause::kMachineSoftware);
    EXPECT_TRUE(unit->switchRfStall());
    idleCycles(kCtxWords);
    EXPECT_FALSE(unit->switchRfStall());
    unit->switchRf();
    EXPECT_EQ(state.activeBank(), ArchState::kAppBank);
}

TEST_F(FsmTest, RestoreFsmLoadsContextAndStallsMret)
{
    makeUnit("SL");
    // Prepare task 2's context image in memory.
    const Addr base = memmap::ctxAddr(2);
    mem.write32(base + 0, 0x4444);               // mepc
    mem.write32(base + 4, mstatus::kMpie);       // mstatus
    for (unsigned i = 2; i < kCtxWords; ++i)
        mem.write32(base + 4 * i, 0xAA00 + i);

    unit->setContextId(0);
    idleCycles(kCtxWords + 4);  // boot-time restore of task 0 drains
    unit->onTrapEntry(mcause::kMachineSoftware);
    unit->setContextId(2);  // schedules the restore
    EXPECT_TRUE(unit->mretStall());

    // Store (31) then restore (31) serialized on the single port.
    idleCycles(2 * kCtxWords + 2);
    EXPECT_FALSE(unit->mretStall());
    EXPECT_EQ(state.csrs.mepc, 0x4444u);
    EXPECT_EQ(state.csrs.mstatus, mstatus::kMpie);
    EXPECT_EQ(state.bankReg(ArchState::kAppBank, 1), 0xAA02u);
    EXPECT_EQ(state.bankReg(ArchState::kAppBank, 31),
              0xAA00u + kCtxWords - 1);

    unit->onMretExecuted();
    EXPECT_EQ(state.activeBank(), ArchState::kAppBank);
}

TEST_F(FsmTest, StoreThenRestoreRoundTripsThroughMemory)
{
    makeUnit("SL");
    unit->setContextId(5);
    idleCycles(kCtxWords + 4);  // boot-time restore of task 5 drains
    fillAppRegs(7000);
    state.csrs.mepc = 0xBEE0;
    unit->onTrapEntry(mcause::kMachineTimer);
    // Switch back to the same task: restore must read what the store
    // wrote (restore is ordered after the store drain).
    unit->setContextId(5);
    idleCycles(2 * kCtxWords + 2);
    EXPECT_FALSE(unit->mretStall());
    for (RegIndex r : {1, 2, 5, 17, 31}) {
        EXPECT_EQ(state.bankReg(ArchState::kAppBank, r), 7000u + r)
            << "x" << unsigned(r);
    }
    EXPECT_EQ(state.csrs.mepc, 0xBEE0u);
}

TEST_F(FsmTest, DirtyBitsSkipCleanRegisters)
{
    makeUnit("SD");
    state.clearDirtyBits();
    state.setReg(A0, 42);  // dirties x10 only
    state.setReg(T0, 43);  // dirties x5
    unit->setContextId(1);
    unit->onTrapEntry(mcause::kMachineTimer);
    idleCycles(kCtxWords);
    EXPECT_FALSE(unit->storeBusy());
    // mepc + mstatus + two dirty registers.
    EXPECT_EQ(unit->stats().storeWords, 4u);
    EXPECT_EQ(unit->stats().dirtySkippedWords, 27u);
    EXPECT_EQ(mem.read32(memmap::ctxAddr(1) + kernel::ctxSlotOfReg(10)),
              42u);
    EXPECT_EQ(mem.read32(memmap::ctxAddr(1) + kernel::ctxSlotOfReg(5)),
              43u);
}

TEST_F(FsmTest, DirtyBitsClearedAtMret)
{
    makeUnit("SD");
    state.setReg(A0, 42);
    EXPECT_TRUE(state.regDirty(A0));
    unit->setContextId(1);
    unit->onTrapEntry(mcause::kMachineTimer);
    idleCycles(kCtxWords);
    unit->switchRf();
    unit->onMretExecuted();
    EXPECT_FALSE(state.regDirty(A0));
}

TEST_F(FsmTest, LoadOmissionSkipsRestoreForSameTask)
{
    makeUnit("SDLO");
    unit->setContextId(4);
    idleCycles(kCtxWords + 4);  // boot-time restore (counts one run)
    state.markAllDirty();
    unit->onTrapEntry(mcause::kMachineTimer);
    unit->setContextId(4);  // next == previous
    idleCycles(2 * kCtxWords);
    EXPECT_EQ(unit->stats().loadOmissions, 1u);
    EXPECT_EQ(unit->stats().restoreRuns, 1u);  // the boot restore only
    EXPECT_FALSE(unit->mretStall());
}

TEST_F(FsmTest, LoadOmissionStillRestoresDifferentTask)
{
    makeUnit("SDLO");
    unit->setContextId(4);
    idleCycles(kCtxWords + 4);
    state.markAllDirty();
    unit->onTrapEntry(mcause::kMachineTimer);
    unit->setContextId(6);
    idleCycles(2 * kCtxWords + 2);
    EXPECT_EQ(unit->stats().loadOmissions, 0u);
    EXPECT_EQ(unit->stats().restoreRuns, 2u);  // boot + this switch
}

class PreloadTest : public FsmTest
{
  protected:
    void
    SetUp() override
    {
        makeUnit("SPLIT");
        // Seed contexts for tasks 0..2.
        for (TaskId id : {0, 1, 2}) {
            const Addr base = memmap::ctxAddr(id);
            for (unsigned i = 0; i < kCtxWords; ++i)
                mem.write32(base + 4 * i, 0x1000u * id + i);
        }
        // Boot like the SLT kernel: make everything ready, pop the
        // first task (0, the highest priority), let its restore
        // drain, then retire it from the ready list so task 1 is the
        // prefetch candidate.
        unit->addReady(0, 7);
        unit->addReady(1, 5);
        unit->addReady(2, 5);
        idleCycles(12);  // sort settles
        ASSERT_FALSE(unit->getHwSchedStall());
        ASSERT_EQ(unit->getHwSched(), 0u);  // current := 0, restores 0
        idleCycles(kCtxWords + 6);
        unit->rmTask(0);
        idleCycles(60);  // resort + prefetch of the new head (task 1)
    }
};

TEST_F(PreloadTest, PrefetchesReadyListHead)
{
    EXPECT_EQ(unit->stats().preloadFetches, 1u);
}

TEST_F(PreloadTest, CorrectPredictionMakesRestoreFree)
{
    unit->onTrapEntry(mcause::kMachineSoftware);
    idleCycles(3);
    // GET pops task 1 == the preloaded context.
    while (unit->getHwSchedStall())
        idleCycles(1);
    const Word next = unit->getHwSched();
    EXPECT_EQ(next, 1u);
    // The store drain doubles as the restore (lockstep): no restore
    // FSM run, registers already carry task 1's context afterwards.
    idleCycles(kCtxWords + 2);
    EXPECT_FALSE(unit->mretStall());
    EXPECT_EQ(unit->stats().preloadHits, 1u);
    EXPECT_EQ(unit->stats().restoreRuns, 1u);  // only the boot restore
    EXPECT_EQ(state.csrs.mepc, 0x1000u & ~1u);
    EXPECT_EQ(state.bankReg(ArchState::kAppBank, 1), 0x1000u + 2);
}

TEST_F(PreloadTest, WrongPredictionFallsBackToFullRestore)
{
    // A higher-priority task becomes ready right at the interrupt —
    // the paper's canonical misprediction scenario.
    unit->onTrapEntry(mcause::kMachineSoftware);
    unit->addReady(3, 7);
    const Addr base = memmap::ctxAddr(3);
    for (unsigned i = 0; i < kCtxWords; ++i)
        mem.write32(base + 4 * i, 0x3000u + i);
    while (unit->getHwSchedStall())
        idleCycles(1);
    const Word next = unit->getHwSched();
    EXPECT_EQ(next, 3u);
    idleCycles(2 * kCtxWords + 4);
    EXPECT_FALSE(unit->mretStall());
    EXPECT_EQ(unit->stats().preloadMisses, 1u);
    EXPECT_EQ(unit->stats().restoreRuns, 2u);  // boot + fallback
    EXPECT_EQ(state.bankReg(ArchState::kAppBank, 1), 0x3000u + 2);
}

TEST_F(PreloadTest, NeverPrefetchesTheRunningTask)
{
    // Leave only the running task (0) ready: its context memory is
    // stale while it runs, so the prefetcher must stay idle.
    unit->rmTask(1);
    unit->rmTask(2);
    unit->addReady(0, 7);
    idleCycles(12);
    const auto fetches = unit->stats().preloadFetches;
    idleCycles(80);
    EXPECT_EQ(unit->stats().preloadFetches, fetches);
}

TEST_F(FsmTest, SchedulerStallsGetDuringSortAndTransfer)
{
    makeUnit("T");
    unit->addReady(1, 3);
    EXPECT_TRUE(unit->getHwSchedStall());
    idleCycles(config.listSlots + 2);
    EXPECT_FALSE(unit->getHwSchedStall());

    // Latch task 1 as current the way the kernel does (via GET), then
    // delay it exactly like k_delay: remove from ready, add to delay.
    EXPECT_EQ(unit->getHwSched(), 1u);
    idleCycles(config.listSlots + 2);
    unit->rmTask(1);
    unit->addDelay(3, 1);
    idleCycles(config.listSlots + 2);
    unit->onTrapEntry(mcause::kMachineTimer);  // delay 1 -> 0
    EXPECT_TRUE(unit->getHwSchedStall());      // expiry transfer pending
    idleCycles(2 * config.listSlots + 4);
    EXPECT_FALSE(unit->getHwSchedStall());
    EXPECT_EQ(unit->getHwSched(), 1u);
}

TEST_F(FsmTest, TimerTrapWithSchedMovesExpiredTasks)
{
    makeUnit("SLT");
    unit->addReady(0, 0);
    unit->setContextId(2);        // also schedules a boot restore
    unit->addDelay(4, 2);         // delay current (2) for two ticks
    idleCycles(kCtxWords + 10);   // restore + sorts settle
    unit->onTrapEntry(mcause::kMachineTimer);
    idleCycles(kCtxWords + 20);
    // One tick elapsed: task 2 still delayed; idle (0) schedulable.
    EXPECT_FALSE(unit->delayList().slots().empty());
    EXPECT_EQ(unit->delayList().occupancy(), 1u);
    unit->getHwSched();  // pops idle
    // wait for pending restore of idle to finish before next episode
    idleCycles(2 * kCtxWords + 8);
    unit->onTrapEntry(mcause::kMachineTimer);
    idleCycles(2 * config.listSlots + 8);
    EXPECT_EQ(unit->delayList().occupancy(), 0u);
    EXPECT_TRUE(unit->readyList().occupancy() >= 2);
}

} // namespace
} // namespace rtu
