/** Functional executor tests: semantics of every instruction class,
 *  CSRs, traps and register-file banking. */

#include <gtest/gtest.h>

#include "asm/encode.hh"
#include "cores/executor.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

class ExecutorTest : public ::testing::Test
{
  protected:
    ExecutorTest() : exec(state, mem, irq)
    {
        mem.addDevice(&dmem);
        state.setPc(0x0);
    }

    ExecResult
    run(Op op, RegIndex rd, RegIndex rs1, RegIndex rs2, SWord imm,
        std::uint16_t csr_addr = 0)
    {
        const DecodedInsn d =
            decodeLike(op, rd, rs1, rs2, imm, csr_addr);
        return exec.execute(d, state.pc());
    }

    static DecodedInsn
    decodeLike(Op op, RegIndex rd, RegIndex rs1, RegIndex rs2, SWord imm,
               std::uint16_t csr_addr)
    {
        DecodedInsn d;
        d.op = op;
        d.rd = rd;
        d.rs1 = rs1;
        d.rs2 = rs2;
        d.imm = imm;
        d.csr = csr_addr;
        return d;
    }

    ArchState state;
    MemSystem mem;
    IrqLines irq;
    Sram dmem{"dmem", memmap::kDmemBase, 0x1000};
    Executor exec;
};

TEST_F(ExecutorTest, AluArithmetic)
{
    state.setReg(A1, 20);
    state.setReg(A2, 22);
    run(Op::kAdd, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 42u);
    run(Op::kSub, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), static_cast<Word>(-2));
    run(Op::kXor, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 20u ^ 22u);
}

TEST_F(ExecutorTest, X0IsAlwaysZero)
{
    run(Op::kAddi, Zero, Zero, 0, 99);
    EXPECT_EQ(state.reg(Zero), 0u);
}

TEST_F(ExecutorTest, ShiftsAndComparisons)
{
    state.setReg(A1, 0x80000000);
    run(Op::kSrai, A0, A1, 0, 4);
    EXPECT_EQ(state.reg(A0), 0xF8000000u);
    run(Op::kSrli, A0, A1, 0, 4);
    EXPECT_EQ(state.reg(A0), 0x08000000u);
    state.setReg(A2, 1);
    run(Op::kSlt, A0, A1, A2, 0);  // INT_MIN < 1 signed
    EXPECT_EQ(state.reg(A0), 1u);
    run(Op::kSltu, A0, A1, A2, 0);  // 0x80000000 > 1 unsigned
    EXPECT_EQ(state.reg(A0), 0u);
}

TEST_F(ExecutorTest, MulDivCornerCases)
{
    state.setReg(A1, 0x80000000);  // INT_MIN
    state.setReg(A2, static_cast<Word>(-1));
    run(Op::kDiv, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 0x80000000u);  // overflow -> INT_MIN
    run(Op::kRem, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 0u);

    state.setReg(A2, 0);
    run(Op::kDiv, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 0xFFFFFFFFu);  // div by zero -> -1
    run(Op::kRem, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 0x80000000u);  // rem by zero -> rs1

    state.setReg(A1, 7);
    state.setReg(A2, 3);
    run(Op::kMulh, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 0u);
    state.setReg(A1, 0xFFFFFFFF);
    state.setReg(A2, 0xFFFFFFFF);
    run(Op::kMulhu, A0, A1, A2, 0);
    EXPECT_EQ(state.reg(A0), 0xFFFFFFFEu);
}

TEST_F(ExecutorTest, LoadStoreWithSignExtension)
{
    state.setReg(A1, memmap::kDmemBase);
    state.setReg(A2, 0xFFFF8081);
    run(Op::kSw, 0, A1, A2, 0);
    run(Op::kLb, A0, A1, 0, 0);
    EXPECT_EQ(state.reg(A0), 0xFFFFFF81u);
    run(Op::kLbu, A0, A1, 0, 0);
    EXPECT_EQ(state.reg(A0), 0x81u);
    run(Op::kLh, A0, A1, 0, 0);
    EXPECT_EQ(state.reg(A0), 0xFFFF8081u);
    run(Op::kLhu, A0, A1, 0, 0);
    EXPECT_EQ(state.reg(A0), 0x8081u);
}

TEST_F(ExecutorTest, BranchesComputeTakenAndTarget)
{
    state.setReg(A1, 5);
    state.setReg(A2, 5);
    ExecResult r = run(Op::kBeq, 0, A1, A2, -8);
    EXPECT_TRUE(r.branchTaken);
    EXPECT_EQ(r.nextPc, state.pc() - 8);
    r = run(Op::kBne, 0, A1, A2, -8);
    EXPECT_FALSE(r.branchTaken);
    EXPECT_EQ(r.nextPc, state.pc() + 4);
    r = run(Op::kBltu, 0, Zero, A1, 16);
    EXPECT_TRUE(r.branchTaken);
}

TEST_F(ExecutorTest, JalLinksAndJumps)
{
    state.setPc(0x100);
    ExecResult r = run(Op::kJal, RA, 0, 0, 0x40);
    EXPECT_EQ(state.reg(RA), 0x104u);
    EXPECT_EQ(r.nextPc, 0x140u);

    state.setReg(A1, 0x203);
    r = run(Op::kJalr, RA, A1, 0, 1);
    EXPECT_EQ(r.nextPc, 0x204u);  // low bit cleared
}

TEST_F(ExecutorTest, CsrReadWriteAndSetClear)
{
    run(Op::kCsrrw, A0, Zero, 0, 0, csr::kMscratch);
    state.setReg(A1, 0xABCD);
    run(Op::kCsrrw, A0, A1, 0, 0, csr::kMscratch);
    EXPECT_EQ(state.csrs.mscratch, 0xABCDu);
    run(Op::kCsrrsi, A0, Zero, 0, 0x2, csr::kMscratch);
    EXPECT_EQ(state.reg(A0), 0xABCDu);
    EXPECT_EQ(state.csrs.mscratch, 0xABCFu);
    run(Op::kCsrrci, A0, Zero, 0, 0xF, csr::kMscratch);
    EXPECT_EQ(state.csrs.mscratch, 0xABC0u);
}

TEST_F(ExecutorTest, MstatusWriteMasksToImplementedBits)
{
    state.setReg(A1, 0xFFFFFFFF);
    run(Op::kCsrrw, Zero, A1, 0, 0, csr::kMstatus);
    EXPECT_EQ(state.csrs.mstatus,
              mstatus::kMie | mstatus::kMpie | mstatus::kMppMask);
}

TEST_F(ExecutorTest, TrapEntryAndMretRoundTrip)
{
    state.csrs.mtvec = 0x80;
    state.csrs.mstatus = mstatus::kMie;
    exec.takeTrap(mcause::kMachineTimer, 0x1234);
    EXPECT_EQ(state.pc(), 0x80u);
    EXPECT_EQ(state.csrs.mepc, 0x1234u);
    EXPECT_EQ(state.csrs.mcause, mcause::kMachineTimer);
    EXPECT_EQ(state.csrs.mstatus & mstatus::kMie, 0u);
    EXPECT_NE(state.csrs.mstatus & mstatus::kMpie, 0u);

    const ExecResult r = run(Op::kMret, 0, 0, 0, 0);
    EXPECT_TRUE(r.isMret);
    EXPECT_EQ(r.nextPc, 0x1234u);
    EXPECT_NE(state.csrs.mstatus & mstatus::kMie, 0u);
}

TEST_F(ExecutorTest, InterruptPriorityOrder)
{
    state.csrs.mie = irq::kMsi | irq::kMti | irq::kMei;
    state.csrs.mstatus = mstatus::kMie;
    irq.raise(irq::kMti, 0);
    EXPECT_EQ(exec.pendingCause(), mcause::kMachineTimer);
    irq.raise(irq::kMsi, 0);
    EXPECT_EQ(exec.pendingCause(), mcause::kMachineSoftware);
    irq.raise(irq::kMei, 0);
    EXPECT_EQ(exec.pendingCause(), mcause::kMachineExternal);
}

TEST_F(ExecutorTest, InterruptGatedByMieAndMstatus)
{
    irq.raise(irq::kMti, 0);
    EXPECT_FALSE(exec.interruptReady());
    state.csrs.mie = irq::kMti;
    EXPECT_FALSE(exec.interruptReady());
    state.csrs.mstatus = mstatus::kMie;
    EXPECT_TRUE(exec.interruptReady());
}

TEST_F(ExecutorTest, EcallRaisesSynchronousTrap)
{
    const ExecResult r = run(Op::kEcall, 0, 0, 0, 0);
    EXPECT_TRUE(r.trap);
    EXPECT_EQ(r.trapCause, mcause::kEcallM);
}

TEST_F(ExecutorTest, RegisterBankIsolation)
{
    state.setReg(A0, 111);
    state.setActiveBank(ArchState::kIsrBank);
    EXPECT_EQ(state.reg(A0), 0u);
    state.setReg(A0, 222);
    state.setActiveBank(ArchState::kAppBank);
    EXPECT_EQ(state.reg(A0), 111u);
    EXPECT_EQ(state.bankReg(ArchState::kIsrBank, A0), 222u);
}

TEST_F(ExecutorTest, DirtyBitsTrackAppBankWritesOnly)
{
    state.clearDirtyBits();
    state.setReg(A0, 1);
    EXPECT_TRUE(state.regDirty(A0));
    EXPECT_FALSE(state.regDirty(A1));
    state.setActiveBank(ArchState::kIsrBank);
    state.setReg(A1, 2);
    EXPECT_FALSE(state.regDirty(A1));
    state.setActiveBank(ArchState::kAppBank);
    state.setBankReg(ArchState::kAppBank, A2, 3);  // FSM writes: clean
    EXPECT_FALSE(state.regDirty(A2));
}

TEST_F(ExecutorTest, CustomInsnWithoutUnitPanics)
{
    EXPECT_DEATH(run(Op::kSwitchRf, 0, 0, 0, 0), "without an RTOSUnit");
}

} // namespace
} // namespace rtu
