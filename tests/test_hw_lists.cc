/** Hardware scheduler list tests (paper Fig 5 semantics). */

#include <gtest/gtest.h>

#include "rtosunit/hw_lists.hh"

namespace rtu {
namespace {

void
settle(HwListBase &list)
{
    for (unsigned i = 0; i < 4 * list.capacity() && list.sorting(); ++i)
        list.tick();
    ASSERT_FALSE(list.sorting());
}

TEST(HwReadyList, SortsByPriorityDescending)
{
    HwReadyList list(8);
    list.insert(1, 2);
    list.insert(2, 5);
    list.insert(3, 1);
    settle(list);
    TaskId head = 0;
    ASSERT_TRUE(list.peekHead(&head));
    EXPECT_EQ(head, 2);
}

TEST(HwReadyList, FifoWithinEqualPriority)
{
    HwReadyList list(8);
    list.insert(4, 3);
    list.insert(5, 3);
    list.insert(6, 3);
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 4);
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 5);
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 6);
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 4);  // round robin wraps
}

TEST(HwReadyList, PopRequeuesAtTailOfPriorityClass)
{
    HwReadyList list(8);
    list.insert(1, 3);
    list.insert(2, 3);
    list.insert(3, 1);  // lower priority stays below
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 1);
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 2);
    settle(list);
    EXPECT_EQ(list.popHeadRoundRobin(), 1);
    settle(list);
    TaskId head;
    ASSERT_TRUE(list.peekHead(&head));
    EXPECT_EQ(head, 2);  // task 3 never surfaces above priority 3
}

TEST(HwReadyList, SortingFlagWhileSettling)
{
    HwReadyList list(8);
    list.insert(1, 1);
    EXPECT_TRUE(list.sorting());
    settle(list);
    EXPECT_FALSE(list.sorting());
}

TEST(HwReadyList, RemoveClearsAllMatches)
{
    HwReadyList list(8);
    list.insert(1, 2);
    list.insert(2, 4);
    settle(list);
    list.remove(2);
    settle(list);
    TaskId head;
    ASSERT_TRUE(list.peekHead(&head));
    EXPECT_EQ(head, 1);
    EXPECT_EQ(list.occupancy(), 1u);
}

TEST(HwReadyListDeath, OverflowIsFatal)
{
    HwReadyList list(2);
    list.insert(1, 1);
    list.insert(2, 1);
    EXPECT_DEATH(list.insert(3, 1), "overflow");
}

TEST(HwReadyListDeath, PopEmptyIsFatal)
{
    HwReadyList list(4);
    EXPECT_DEATH(list.popHeadRoundRobin(), "empty");
}

TEST(HwDelayList, ExpiryMigratesToReadyList)
{
    HwReadyList ready(8);
    HwDelayList delay(8, ready);
    delay.insert(5, 2, 2);
    settle(delay);
    delay.timerTick();  // 2 -> 1
    settle(delay);
    EXPECT_FALSE(delay.transferring());
    delay.timerTick();  // 1 -> 0
    settle(delay);
    EXPECT_TRUE(delay.transferring());
    delay.transferTick();
    EXPECT_FALSE(delay.transferring());
    settle(ready);
    TaskId head;
    ASSERT_TRUE(ready.peekHead(&head));
    EXPECT_EQ(head, 5);
    EXPECT_EQ(delay.occupancy(), 0u);
}

TEST(HwDelayList, OneTransferPerCycle)
{
    HwReadyList ready(8);
    HwDelayList delay(8, ready);
    delay.insert(1, 1, 1);
    delay.insert(2, 2, 1);
    delay.insert(3, 3, 1);
    settle(delay);
    delay.timerTick();
    settle(delay);
    ASSERT_TRUE(delay.transferring());
    delay.transferTick();
    EXPECT_EQ(ready.occupancy(), 1u);
    delay.transferTick();
    delay.transferTick();
    EXPECT_EQ(ready.occupancy(), 3u);
}

TEST(HwDelayList, SortedByRemainingDelayThenPriority)
{
    HwReadyList ready(8);
    HwDelayList delay(8, ready);
    delay.insert(1, 1, 5);
    delay.insert(2, 7, 2);
    delay.insert(3, 3, 2);  // same delay as 2, lower priority
    settle(delay);
    const auto &slots = delay.slots();
    EXPECT_EQ(slots[0].id, 2);
    EXPECT_EQ(slots[1].id, 3);
    EXPECT_EQ(slots[2].id, 1);
}

TEST(HwLists, StatsTrackActivity)
{
    HwReadyList list(8);
    list.insert(1, 1);
    settle(list);
    list.popHeadRoundRobin();
    settle(list);
    list.remove(1);
    EXPECT_EQ(list.stats().inserts, 1u);
    EXPECT_EQ(list.stats().pops, 1u);
    EXPECT_EQ(list.stats().removes, 1u);
    EXPECT_GT(list.stats().sortPhases, 0u);
}

/** Property sweep: any insertion order settles into a stable
 *  priority-descending order within capacity() phases. */
class ReadySortProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ReadySortProperty, SettlesSortedWithinBoundedPhases)
{
    const unsigned seed = GetParam();
    HwReadyList list(8);
    unsigned x = seed;
    for (TaskId id = 0; id < 8; ++id) {
        x = x * 1103515245 + 12345;
        list.insert(id, static_cast<Priority>((x >> 16) % 8));
    }
    // A full odd-even transposition of N elements needs N phases
    // (plus one for starting parity).
    for (unsigned i = 0; i < 9 && list.sorting(); ++i)
        list.tick();
    EXPECT_FALSE(list.sorting());
    const auto &slots = list.slots();
    for (unsigned i = 0; i + 1 < slots.size(); ++i) {
        ASSERT_TRUE(slots[i].valid);
        if (slots[i].prio == slots[i + 1].prio) {
            EXPECT_LT(slots[i].seq, slots[i + 1].seq);
        } else {
            EXPECT_GT(slots[i].prio, slots[i + 1].prio);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadySortProperty,
                         ::testing::Range(0u, 25u));

} // namespace
} // namespace rtu
