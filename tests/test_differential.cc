/** Differential harness for the scheduling kernel: every paper
 *  configuration (plus the +HS extension points) x every workload runs
 *  once with event-driven fast-forward and once in per-cycle reference
 *  mode; episode traces, cycle counts, status and all counters must be
 *  byte-identical. This is the contract that makes the fast-forward
 *  path trustworthy for the paper's latency/jitter numbers. */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "rtosunit/config.hh"
#include "sweep/sweep.hh"

namespace rtu {
namespace {

/** paperConfigs() + the three +HS composition points — the same
 *  matrix the lint gate walks (see analyze/linter.cc). */
std::vector<RtosUnitConfig>
matrixConfigs()
{
    std::vector<RtosUnitConfig> units = RtosUnitConfig::paperConfigs();
    for (const char *name : {"ST", "SDLOT", "SPLIT"}) {
        RtosUnitConfig u = RtosUnitConfig::fromName(name);
        u.hwsync = true;
        units.push_back(u);
    }
    return units;
}

TEST(Differential, FastForwardMatchesReferenceAcrossTheMatrix)
{
    const std::vector<RtosUnitConfig> units = matrixConfigs();
    const std::array<const char *, 7> workloads = {
        "yield_pingpong", "round_robin",   "mutex_workload",
        "delay_wake",     "sem_pingpong",  "priority_preempt",
        "ext_interrupt"};
    const std::array<CoreKind, 3> cores = {
        CoreKind::kCv32e40p, CoreKind::kCva6, CoreKind::kNax};

    size_t idx = 0;
    for (const RtosUnitConfig &unit : units) {
        for (const char *w : workloads) {
            SweepPoint p;
            // Round-robin the cores over the matrix: each core model
            // still sees every configuration and every workload.
            p.core = cores[idx % cores.size()];
            p.unit = unit;
            p.workload = w;
            p.iterations = 3;
            p.reseed();
            ++idx;

            const SweepResult ff = runSweepPoint(p, true, true);
            const SweepResult ref = runSweepPoint(p, true, false);
            const std::string key = p.key();

            // The reference mode never skips; fast-forward must
            // account for every reference cycle exactly once.
            EXPECT_EQ(ref.run.throughput.cyclesSkipped, 0u) << key;
            EXPECT_EQ(ff.run.throughput.cyclesTicked +
                          ff.run.throughput.cyclesSkipped,
                      ref.run.throughput.cyclesTicked)
                << key;

            EXPECT_EQ(ff.run.ok, ref.run.ok) << key;
            EXPECT_EQ(ff.run.status, ref.run.status) << key;
            EXPECT_EQ(ff.run.exitCode, ref.run.exitCode) << key;
            EXPECT_EQ(ff.run.cycles, ref.run.cycles) << key;

            const CoreStats &a = ff.run.coreStats;
            const CoreStats &b = ref.run.coreStats;
            EXPECT_EQ(a.instret, b.instret) << key;
            EXPECT_EQ(a.traps, b.traps) << key;
            EXPECT_EQ(a.mrets, b.mrets) << key;
            EXPECT_EQ(a.wfiCycles, b.wfiCycles) << key;
            EXPECT_EQ(a.memOps, b.memOps) << key;
            EXPECT_EQ(a.stallCycles, b.stallCycles) << key;
            EXPECT_EQ(a.branchMispredicts, b.branchMispredicts) << key;
            EXPECT_EQ(a.cacheMisses, b.cacheMisses) << key;

            EXPECT_TRUE(ff.run.switchLatency.samples() ==
                        ref.run.switchLatency.samples())
                << key << ": switch-latency samples differ";
            EXPECT_TRUE(ff.run.episodeLatency.samples() ==
                        ref.run.episodeLatency.samples())
                << key << ": episode-latency samples differ";
            EXPECT_TRUE(ff.trace == ref.trace)
                << key << ": episode trace JSONL differs ("
                << ff.trace.size() << " vs " << ref.trace.size()
                << " bytes)";
        }
    }
    EXPECT_EQ(idx, 105u);  // 15 configurations x 7 workloads
}

} // namespace
} // namespace rtu
