/** Differential harness for the scheduling kernel: every paper
 *  configuration (plus the +HS extension points) x every workload runs
 *  in a four-way mode matrix — per-cycle reference, fast-forward with
 *  and without the predecoded image, and fast-forward with superblock
 *  execution; episode traces, cycle counts, status and all semantic
 *  counters must be byte-identical across all four. This is the
 *  contract that makes the accelerated paths trustworthy for the
 *  paper's latency/jitter numbers. */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "rtosunit/config.hh"
#include "sweep/sweep.hh"

namespace rtu {
namespace {

/** paperConfigs() + the three +HS composition points — the same
 *  matrix the lint gate walks (see analyze/linter.cc). */
std::vector<RtosUnitConfig>
matrixConfigs()
{
    std::vector<RtosUnitConfig> units = RtosUnitConfig::paperConfigs();
    for (const char *name : {"ST", "SDLOT", "SPLIT"}) {
        RtosUnitConfig u = RtosUnitConfig::fromName(name);
        u.hwsync = true;
        units.push_back(u);
    }
    return units;
}

/** One accelerated mode of the four-way matrix (the fourth mode is
 *  the per-cycle reference every entry is compared against). */
struct AccelMode
{
    const char *name;
    bool predecode;
    bool blockExec;
};

TEST(Differential, FastForwardMatchesReferenceAcrossTheMatrix)
{
    const std::vector<RtosUnitConfig> units = matrixConfigs();
    const std::array<const char *, 7> workloads = {
        "yield_pingpong", "round_robin",   "mutex_workload",
        "delay_wake",     "sem_pingpong",  "priority_preempt",
        "ext_interrupt"};
    const std::array<CoreKind, 3> cores = {
        CoreKind::kCv32e40p, CoreKind::kCva6, CoreKind::kNax};

    // Block execution requires the predecoded image, so the
    // predecode-off mode also exercises the knob being inert.
    const std::array<AccelMode, 3> modes = {{
        {"ff+pre+block", true, true},
        {"ff+pre", true, false},
        {"ff+block-nopre", false, true},
    }};

    size_t idx = 0;
    for (const RtosUnitConfig &unit : units) {
        for (const char *w : workloads) {
            SweepPoint p;
            // Round-robin the cores over the matrix: each core model
            // still sees every configuration and every workload.
            p.core = cores[idx % cores.size()];
            p.unit = unit;
            p.workload = w;
            p.iterations = 3;
            p.reseed();
            ++idx;

            const SweepResult ref =
                runSweepPoint(p, true, /*fast_forward=*/false);
            const std::string key = p.key();

            // The reference mode never skips and never block-executes.
            EXPECT_EQ(ref.run.throughput.cyclesSkipped, 0u) << key;
            EXPECT_EQ(ref.run.throughput.cyclesBlockExecuted, 0u) << key;

            for (const AccelMode &m : modes) {
                const SweepResult ff = runSweepPoint(
                    p, true, true, m.predecode, m.blockExec);
                const std::string mkey = key + " [" + m.name + "]";

                // Every reference cycle is accounted exactly once:
                // ticked, bulk-skipped, or block-executed.
                EXPECT_EQ(ff.run.throughput.cyclesTicked +
                              ff.run.throughput.cyclesSkipped +
                              ff.run.throughput.cyclesBlockExecuted,
                          ref.run.throughput.cyclesTicked)
                    << mkey;
                if (!m.predecode) {
                    // No image => no block index => knob is inert.
                    EXPECT_EQ(ff.run.throughput.cyclesBlockExecuted, 0u)
                        << mkey;
                }

                EXPECT_EQ(ff.run.ok, ref.run.ok) << mkey;
                EXPECT_EQ(ff.run.status, ref.run.status) << mkey;
                EXPECT_EQ(ff.run.exitCode, ref.run.exitCode) << mkey;
                EXPECT_EQ(ff.run.cycles, ref.run.cycles) << mkey;

                const CoreStats &a = ff.run.coreStats;
                const CoreStats &b = ref.run.coreStats;
                EXPECT_EQ(a.instret, b.instret) << mkey;
                EXPECT_EQ(a.traps, b.traps) << mkey;
                EXPECT_EQ(a.mrets, b.mrets) << mkey;
                EXPECT_EQ(a.wfiCycles, b.wfiCycles) << mkey;
                EXPECT_EQ(a.memOps, b.memOps) << mkey;
                EXPECT_EQ(a.stallCycles, b.stallCycles) << mkey;
                EXPECT_EQ(a.branchMispredicts, b.branchMispredicts)
                    << mkey;
                EXPECT_EQ(a.cacheMisses, b.cacheMisses) << mkey;
                // The front end total is invariant; only the
                // predecoded/slow-path split moves with the knobs.
                EXPECT_EQ(a.fetchPredecoded + a.fetchSlowPath,
                          b.fetchPredecoded + b.fetchSlowPath)
                    << mkey;

                EXPECT_TRUE(ff.run.switchLatency.samples() ==
                            ref.run.switchLatency.samples())
                    << mkey << ": switch-latency samples differ";
                EXPECT_TRUE(ff.run.episodeLatency.samples() ==
                            ref.run.episodeLatency.samples())
                    << mkey << ": episode-latency samples differ";
                EXPECT_TRUE(ff.trace == ref.trace)
                    << mkey << ": episode trace JSONL differs ("
                    << ff.trace.size() << " vs " << ref.trace.size()
                    << " bytes)";
            }
        }
    }
    EXPECT_EQ(idx, 105u);  // 15 configurations x 7 workloads
}

} // namespace
} // namespace rtu
