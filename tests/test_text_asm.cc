/** Text-assembler tests: parsing, equivalence with the builder API,
 *  and a bare-metal end-to-end run of text-assembled code. */

#include <gtest/gtest.h>

#include "asm/decode.hh"
#include "asm/disasm.hh"
#include "asm/text_asm.hh"
#include "cores/cv32e40p.hh"
#include "sim/clint.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

TEST(TextAsm, BasicInstructionsMatchBuilder)
{
    const Program text = assembleProgram(R"(
        addi a0, zero, 42
        add  a1, a0, a0
        lw   a2, 16(sp)
        sw   a2, 0(t0)
        lui  t1, 0x12345
    )");

    Assembler b(0x0, 0x1000'0000);
    b.addi(A0, Zero, 42);
    b.add(A1, A0, A0);
    b.lw(A2, 16, SP);
    b.sw(A2, 0, T0);
    b.lui(T1, 0x12345);
    const Program built = b.finish();

    ASSERT_EQ(text.text.size(), built.text.size());
    for (size_t i = 0; i < built.text.size(); ++i)
        EXPECT_EQ(text.text[i], built.text[i])
            << i << ": " << disassemble(text.text[i]) << " vs "
            << disassemble(built.text[i]);
}

TEST(TextAsm, LabelsBranchesAndComments)
{
    const Program p = assembleProgram(R"(
        # counts down from 3
        li t0, 3
loop:   addi t0, t0, -1
        bnez t0, loop       # backward branch
        j done
done:   nop
    )");
    EXPECT_EQ(p.symbol("loop"), 4u);
    EXPECT_EQ(p.symbol("done"), 16u);
    const DecodedInsn br = decode(p.text[2]);
    EXPECT_EQ(br.op, Op::kBne);
    EXPECT_EQ(br.imm, -4);
}

TEST(TextAsm, CsrNamesAndCustomInstructions)
{
    const Program p = assembleProgram(R"(
        csrr t0, mstatus
        csrw mscratch, t0
        csrrwi t1, mtvec, 4
        rtu.getsched t0
        rtu.addready t0, t1
        rtu.semtake t2, a0
        mret
    )");
    EXPECT_EQ(decode(p.text[0]).csr, csr::kMstatus);
    EXPECT_EQ(decode(p.text[1]).csr, csr::kMscratch);
    EXPECT_EQ(decode(p.text[3]).op, Op::kGetHwSched);
    EXPECT_EQ(decode(p.text[4]).op, Op::kAddReady);
    EXPECT_EQ(decode(p.text[5]).op, Op::kSemTake);
    EXPECT_EQ(decode(p.text[6]).op, Op::kMret);
}

TEST(TextAsm, DataDirectivesAndLa)
{
    const Program p = assembleProgram(R"(
        .word counter 7
        .array buffer 4
        la a0, counter
        lw a1, 0(a0)
    )");
    EXPECT_EQ(p.data[0], 7u);
    EXPECT_EQ(p.data.size(), 5u);
    EXPECT_EQ(p.symbol("buffer"), p.symbol("counter") + 4);
}

TEST(TextAsm, LoopBoundDirective)
{
    const Program p = assembleProgram(R"(
loop:   nop
        .loopbound 8
        j loop
    )");
    ASSERT_EQ(p.loopBounds.size(), 1u);
    EXPECT_EQ(p.loopBounds.begin()->second, 8u);
}

TEST(TextAsmDeath, ErrorsCarryLineNumbers)
{
    EXPECT_EXIT(assembleProgram("addi a0, a0\n"),
                ::testing::ExitedWithCode(1), "line 1");
    EXPECT_EXIT(assembleProgram("\nfoo a0, a0, a0\n"),
                ::testing::ExitedWithCode(1),
                "line 2.*unknown mnemonic");
    EXPECT_EXIT(assembleProgram("addi a0, a9, 1\n"),
                ::testing::ExitedWithCode(1), "unknown register");
    EXPECT_EXIT(assembleProgram("lw a0, 16[sp]\n"),
                ::testing::ExitedWithCode(1), "off\\(base\\)");
}

TEST(TextAsm, EndToEndFibonacciOnCv32e40p)
{
    const Program p = assembleProgram(R"(
        # fib(10) into a0, store to DMEM, then spin
        li   t0, 10
        li   a0, 0
        li   a1, 1
fib:    add  t1, a0, a1
        mv   a0, a1
        mv   a1, t1
        addi t0, t0, -1
        bnez t0, fib
        lui  t2, 0x10000
        sw   a0, 0(t2)
end:    j end
    )");

    IrqLines irq;
    MemSystem mem;
    Sram imem("imem", memmap::kImemBase, memmap::kImemSize);
    Sram dmem("dmem", memmap::kDmemBase, memmap::kDmemSize);
    Clint clint(irq);
    mem.addDevice(&imem);
    mem.addDevice(&dmem);
    imem.loadWords(p.textBase, p.text);
    ArchState state;
    Executor exec(state, mem, irq);
    SharedPort port("dmem");
    Core::Env env;
    env.state = &state;
    env.exec = &exec;
    env.mem = &mem;
    env.irq = &irq;
    env.dmemPort = &port;
    env.clint = &clint;
    Cv32e40pCore core(env);
    for (Cycle c = 0; c < 300 && state.pc() != p.symbol("end"); ++c) {
        port.beginCycle();
        core.tick(c);
    }
    EXPECT_EQ(mem.read32(memmap::kDmemBase), 55u);  // fib(10)
}

} // namespace
} // namespace rtu
