/** Tests for the CV32RT comparison baseline unit (Balas et al.). */

#include <gtest/gtest.h>

#include "cores/cache.hh"
#include "rtosunit/cv32rt.hh"
#include "sim/mem.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

class Cv32rtTest : public ::testing::Test
{
  protected:
    Cv32rtTest()
    {
        mem.addDevice(&dmem);
        port = std::make_unique<DedicatedUnitPort>(mem);
        unit = std::make_unique<Cv32rtUnit>(state, *port);
        // A plausible interrupted stack pointer inside DMEM.
        sp = memmap::kDmemBase + 0x8000;
        state.setBankReg(ArchState::kAppBank, 2, sp);
    }

    void
    run(unsigned cycles)
    {
        for (unsigned i = 0; i < cycles; ++i)
            unit->tick(now++);
    }

    ArchState state;
    MemSystem mem;
    Sram dmem{"dmem", memmap::kDmemBase, memmap::kDmemSize};
    std::unique_ptr<DedicatedUnitPort> port;
    std::unique_ptr<Cv32rtUnit> unit;
    Addr sp = 0;
    Cycle now = 0;
};

TEST_F(Cv32rtTest, SnapshotsUpperHalfAtEntry)
{
    for (RegIndex r = 16; r < 32; ++r)
        state.setBankReg(ArchState::kAppBank, r, 0x900 + r);
    unit->onTrapEntry(mcause::kMachineTimer);
    EXPECT_TRUE(unit->drainBusy());
    // ISR may clobber the registers immediately; the snapshot must
    // still drain the pre-trap values.
    for (RegIndex r = 16; r < 32; ++r)
        state.setBankReg(ArchState::kAppBank, r, 0xDEAD);
    run(Cv32rtUnit::kSnapWords);
    EXPECT_FALSE(unit->drainBusy());

    const Addr base = sp - Cv32rtUnit::kFrameBytes +
                      Cv32rtUnit::kHwSlotOffset;
    for (unsigned i = 0; i < Cv32rtUnit::kSnapWords; ++i)
        EXPECT_EQ(mem.read32(base + 4 * i), 0x900u + 16 + i) << i;
    EXPECT_EQ(unit->stats().snapshots, 1u);
    EXPECT_EQ(unit->stats().drainedWords, Cv32rtUnit::kSnapWords);
}

TEST_F(Cv32rtTest, DrainUsesOneWordPerCycleOnDedicatedPort)
{
    unit->onTrapEntry(mcause::kMachineTimer);
    run(Cv32rtUnit::kSnapWords - 1);
    EXPECT_TRUE(unit->drainBusy());
    run(1);
    EXPECT_FALSE(unit->drainBusy());
}

TEST_F(Cv32rtTest, BarrierStallsUntilDrainComplete)
{
    unit->onTrapEntry(mcause::kMachineTimer);
    EXPECT_TRUE(unit->switchRfStall());
    run(Cv32rtUnit::kSnapWords);
    EXPECT_FALSE(unit->switchRfStall());
    EXPECT_GT(unit->stats().barrierStallCycles, 0u);
}

TEST_F(Cv32rtTest, NoMretStallEver)
{
    unit->onTrapEntry(mcause::kMachineTimer);
    EXPECT_FALSE(unit->mretStall());
}

TEST_F(Cv32rtTest, SchedulerInstructionsAreRejected)
{
    EXPECT_DEATH(unit->getHwSched(), "not part of the CV32RT");
    EXPECT_DEATH(unit->addReady(1, 1), "not part of the CV32RT");
    EXPECT_DEATH(unit->addDelay(1, 1), "not part of the CV32RT");
    EXPECT_DEATH(unit->rmTask(1), "not part of the CV32RT");
    EXPECT_DEATH(unit->setContextId(1), "not part of the CV32RT");
}

TEST_F(Cv32rtTest, CacheHookInvalidatesDrainedLines)
{
    CacheModel cache({1024, 2, 16, true});
    Cv32rtUnit hooked(state, *port, &cache);
    // Warm the lines covering the drain area.
    const Addr base = sp - Cv32rtUnit::kFrameBytes +
                      Cv32rtUnit::kHwSlotOffset;
    for (Addr a = base; a < base + 64; a += 16)
        cache.access(a, false);
    const auto before = cache.stats().invalidations;
    hooked.onTrapEntry(mcause::kMachineTimer);
    for (unsigned i = 0; i < Cv32rtUnit::kSnapWords + 2; ++i)
        hooked.tick(now++);
    EXPECT_GT(cache.stats().invalidations, before);
}

} // namespace
} // namespace rtu
