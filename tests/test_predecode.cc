/** Pre-decoded instruction store tests: image install/lookup and the
 *  write-invalidation contract (guest stores, sub-word and straddling
 *  writes, injected bit flips), wild-jump fetches ending the run as a
 *  typed guest fault, self-modifying code behaving identically with
 *  the image on and off, and the full 105-point config x workload
 *  differential: episodes, traces and counters byte-identical with the
 *  predecoded image enabled and disabled, in both fast-forward modes. */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "asm/decode.hh"
#include "harness/simulation.hh"
#include "rtosunit/config.hh"
#include "sim/memmap.hh"
#include "sim/predecode.hh"
#include "sweep/sweep.hh"

namespace rtu {
namespace {

/** "addi a0, x0, 42" — the patch word self-modifying tests store. */
constexpr Word kLiA042 = 0x02A00513;

struct ImageFixture
{
    Sram imem{"imem", memmap::kImemBase, memmap::kImemSize};
    MemSystem mem;
    PredecodedImage image;

    explicit ImageFixture(const std::vector<Word> &text)
    {
        mem.addDevice(&imem);
        imem.loadWords(memmap::kImemBase, text);
        image.install(mem, memmap::kImemBase, text.size());
    }
};

TEST(Predecode, InstallDecodesEveryTextWord)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.li(A0, 42);
    a.mv(A1, A0);
    a.label("spin");
    a.j("spin");
    const Program p = a.finish();

    ImageFixture f(p.text);
    ASSERT_TRUE(f.image.installed());
    for (std::size_t i = 0; i < p.text.size(); ++i) {
        const Addr pc = memmap::kImemBase + 4 * static_cast<Addr>(i);
        ASSERT_TRUE(f.image.covers(pc)) << "pc 0x" << std::hex << pc;
        const DecodedInsn &d = f.image.at(pc);
        const DecodedInsn ref = decode(p.text[i]);
        EXPECT_EQ(d.op, ref.op);
        EXPECT_EQ(d.raw, ref.raw);
        EXPECT_EQ(d.imm, ref.imm);
    }
    EXPECT_EQ(f.image.invalidations(), 0u);
}

TEST(Predecode, CoversRejectsOutOfTextAndMisalignedPcs)
{
    ImageFixture f({0x00000013, 0x00000013});  // two nops
    const Addr base = memmap::kImemBase;
    EXPECT_TRUE(f.image.covers(base));
    EXPECT_TRUE(f.image.covers(base + 4));
    EXPECT_FALSE(f.image.covers(base + 8));   // one past the end
    EXPECT_FALSE(f.image.covers(base + 2));   // misaligned
    EXPECT_FALSE(f.image.covers(0xFFFF'FFF0));
    EXPECT_FALSE(f.image.covers(memmap::kDmemBase));
}

TEST(Predecode, WordWriteInTextRedecodes)
{
    ImageFixture f({0x00000013, 0x00000013});
    const Addr pc = memmap::kImemBase + 4;
    ASSERT_EQ(f.image.at(pc).op, Op::kAddi);  // nop = addi x0,x0,0

    f.mem.write32(pc, kLiA042);
    EXPECT_EQ(f.image.invalidations(), 1u);
    EXPECT_EQ(f.image.at(pc).op, Op::kAddi);
    EXPECT_EQ(f.image.at(pc).rd, A0);
    EXPECT_EQ(f.image.at(pc).imm, 42);
    EXPECT_EQ(f.image.at(pc).raw, kLiA042);
    // The untouched word keeps its decode.
    EXPECT_EQ(f.image.at(memmap::kImemBase).raw, 0x00000013u);
}

TEST(Predecode, SubWordWritesRedecodeTheContainingWord)
{
    ImageFixture f({kLiA042});
    const Addr pc = memmap::kImemBase;

    // Byte write into the immediate field: addi a0, x0, 43.
    f.mem.write(pc + 3, 0x02, MemSize::kByte);
    f.mem.write(pc + 2, 0xB0, MemSize::kByte);
    EXPECT_EQ(f.image.invalidations(), 2u);
    EXPECT_EQ(f.image.at(pc).imm, 43);

    // Half write over the low half changes rd to a1.
    f.mem.write(pc, 0x0593, MemSize::kHalf);
    EXPECT_EQ(f.image.invalidations(), 3u);
    EXPECT_EQ(f.image.at(pc).rd, A1);
}

TEST(Predecode, StraddlingWriteRedecodesBothWords)
{
    ImageFixture f({0x00000013, 0x00000013, 0x00000013});
    f.mem.write(memmap::kImemBase + 6, 0xDEADBEEF, MemSize::kWord);
    // Bytes 6..9 span words 1 and 2: both re-decode.
    EXPECT_EQ(f.image.invalidations(), 2u);
    EXPECT_NE(f.image.at(memmap::kImemBase + 4).raw, 0x00000013u);
    EXPECT_NE(f.image.at(memmap::kImemBase + 8).raw, 0x00000013u);
    EXPECT_EQ(f.image.at(memmap::kImemBase).raw, 0x00000013u);
}

TEST(Predecode, WritesOutsideTextDoNotInvalidate)
{
    ImageFixture f({0x00000013, 0x00000013});
    // Still imem, but past the image's two words.
    f.mem.write32(memmap::kImemBase + 64, 0x12345678);
    EXPECT_EQ(f.image.invalidations(), 0u);
}

TEST(Predecode, InjectedBitFlipRedecodesToTheFlippedInstruction)
{
    ImageFixture f({kLiA042});
    const Addr pc = memmap::kImemBase;

    // The fault campaign's flipWord: read, xor one bit, write back.
    const Word flipped = f.mem.read32(pc) ^ (1u << 20);
    f.mem.write32(pc, flipped);

    EXPECT_EQ(f.image.invalidations(), 1u);
    EXPECT_EQ(f.image.at(pc).raw, flipped);
    const DecodedInsn ref = decode(flipped);
    EXPECT_EQ(f.image.at(pc).op, ref.op);
    EXPECT_EQ(f.image.at(pc).imm, ref.imm);
}

SimConfig
bareConfig(bool fast_forward, bool predecode)
{
    SimConfig cfg;
    cfg.core = CoreKind::kCv32e40p;
    cfg.unit = RtosUnitConfig::vanilla();
    cfg.fastForward = fast_forward;
    cfg.predecode = predecode;
    cfg.maxCycles = 5000;
    cfg.watchdogCycles = 0;
    return cfg;
}

/** Jump straight into unmapped address space (a fault-corrupted
 *  return context does exactly this). */
Program
wildJumpProgram()
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.li(T0, 0x4000'0000);
    a.jalr(Zero, T0, 0);
    return a.finish();
}

TEST(Predecode, WildJumpEndsTheRunAsAGuestFault)
{
    const Program p = wildJumpProgram();
    for (bool predecode : {true, false}) {
        Simulation sim(bareConfig(true, predecode), p);
        EXPECT_FALSE(sim.run());
        EXPECT_EQ(sim.status(), RunStatus::kGuestFault)
            << "predecode=" << predecode;
        EXPECT_FALSE(sim.statusDiagnostic().empty());
        // The faulting fetch itself is the slow path.
        EXPECT_GE(sim.coreStats().fetchSlowPath, 1u);
    }
}

/** Store a new instruction over the patch site, then execute it. */
Program
selfModifyProgram()
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.la(T0, "patch");
    a.li(T1, static_cast<SWord>(kLiA042));
    a.sw(T1, 0, T0);
    a.label("patch");
    a.mv(A0, Zero);  // overwritten before it executes
    a.label("spin");
    a.j("spin");
    return a.finish();
}

TEST(Predecode, SelfModifyingStoreIsObservedByTheImage)
{
    const Program p = selfModifyProgram();

    auto run = [&](bool predecode) {
        Simulation sim(bareConfig(true, predecode), p);
        EXPECT_FALSE(sim.run());  // spins to the cycle limit
        EXPECT_EQ(sim.archState().reg(A0), 42u)
            << "predecode=" << predecode
            << ": patched instruction not executed";
        return sim.coreStats();
    };

    const CoreStats on = run(true);
    const CoreStats off = run(false);
    EXPECT_EQ(on.instret, off.instret);
    EXPECT_EQ(on.memOps, off.memOps);
    // With the image on, every fetch hits it and the patch store
    // invalidated exactly one word; off, everything is slow path.
    EXPECT_GT(on.fetchPredecoded, 0u);
    EXPECT_EQ(on.fetchSlowPath, 0u);
    EXPECT_EQ(on.textInvalidations, 1u);
    EXPECT_EQ(off.fetchPredecoded, 0u);
    EXPECT_GT(off.fetchSlowPath, 0u);
    EXPECT_EQ(off.textInvalidations, 0u);
    // Fetch totals are mode-invariant: same instruction stream.
    EXPECT_EQ(on.fetchPredecoded + on.fetchSlowPath,
              off.fetchPredecoded + off.fetchSlowPath);
}

/** paperConfigs() + the three +HS composition points — the same
 *  matrix test_differential walks for ff-vs-reference. */
std::vector<RtosUnitConfig>
matrixConfigs()
{
    std::vector<RtosUnitConfig> units = RtosUnitConfig::paperConfigs();
    for (const char *name : {"ST", "SDLOT", "SPLIT"}) {
        RtosUnitConfig u = RtosUnitConfig::fromName(name);
        u.hwsync = true;
        units.push_back(u);
    }
    return units;
}

TEST(PredecodeDifferential, ImageOnMatchesImageOffAcrossTheMatrix)
{
    const std::vector<RtosUnitConfig> units = matrixConfigs();
    const std::array<const char *, 7> workloads = {
        "yield_pingpong", "round_robin",   "mutex_workload",
        "delay_wake",     "sem_pingpong",  "priority_preempt",
        "ext_interrupt"};
    const std::array<CoreKind, 3> cores = {
        CoreKind::kCv32e40p, CoreKind::kCva6, CoreKind::kNax};

    size_t idx = 0;
    for (const RtosUnitConfig &unit : units) {
        for (const char *w : workloads) {
            SweepPoint p;
            // Round-robin the cores over the matrix; alternate the
            // kernel mode so both fast-forward and reference ticking
            // are exercised against the image.
            p.core = cores[idx % cores.size()];
            p.unit = unit;
            p.workload = w;
            p.iterations = 3;
            p.reseed();
            const bool ff = idx % 2 == 0;
            ++idx;

            const SweepResult on = runSweepPoint(p, true, ff, true);
            const SweepResult off = runSweepPoint(p, true, ff, false);
            const std::string key = p.key();

            EXPECT_EQ(on.run.ok, off.run.ok) << key;
            EXPECT_EQ(on.run.status, off.run.status) << key;
            EXPECT_EQ(on.run.exitCode, off.run.exitCode) << key;
            EXPECT_EQ(on.run.cycles, off.run.cycles) << key;

            const CoreStats &a = on.run.coreStats;
            const CoreStats &b = off.run.coreStats;
            EXPECT_EQ(a.instret, b.instret) << key;
            EXPECT_EQ(a.traps, b.traps) << key;
            EXPECT_EQ(a.mrets, b.mrets) << key;
            EXPECT_EQ(a.wfiCycles, b.wfiCycles) << key;
            EXPECT_EQ(a.memOps, b.memOps) << key;
            EXPECT_EQ(a.stallCycles, b.stallCycles) << key;
            EXPECT_EQ(a.branchMispredicts, b.branchMispredicts) << key;
            EXPECT_EQ(a.cacheMisses, b.cacheMisses) << key;
            // The split between the two fetch paths differs by
            // design; the total is the same instruction stream.
            EXPECT_EQ(a.fetchPredecoded + a.fetchSlowPath,
                      b.fetchPredecoded + b.fetchSlowPath)
                << key;
            // No kernel workload jumps out of text: with the image
            // on, every fetch is pre-decoded.
            EXPECT_EQ(a.fetchSlowPath, 0u) << key;
            EXPECT_EQ(b.fetchPredecoded, 0u) << key;

            EXPECT_TRUE(on.run.switchLatency.samples() ==
                        off.run.switchLatency.samples())
                << key << ": switch-latency samples differ";
            EXPECT_TRUE(on.run.episodeLatency.samples() ==
                        off.run.episodeLatency.samples())
                << key << ": episode-latency samples differ";
            EXPECT_TRUE(on.trace == off.trace)
                << key << ": episode trace JSONL differs ("
                << on.trace.size() << " vs " << off.trace.size()
                << " bytes)";
        }
    }
    EXPECT_EQ(idx, 105u);  // 15 configurations x 7 workloads
}

} // namespace
} // namespace rtu
