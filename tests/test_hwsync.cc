/** Tests for the hardware-semaphore extension (the paper's future
 *  work, Section 7): unit-level semantics and full-kernel behaviour. */

#include <gtest/gtest.h>

#include "harness/simulation.hh"
#include "kernel/kernel.hh"
#include "rtosunit/rtosunit.hh"
#include "sim/hostio.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

class HwSemUnit : public ::testing::Test
{
  protected:
    HwSemUnit()
    {
        mem.addDevice(&dmem);
        config = RtosUnitConfig::fromName("T+HS");
        port = std::make_unique<DirectUnitPort>(arb, mem);
        unit = std::make_unique<RtosUnit>(config, state, *port);
    }

    void
    settle(unsigned n = 24)
    {
        for (unsigned i = 0; i < n; ++i) {
            arb.beginCycle();
            unit->tick(cycle++);
        }
    }

    /** Make @p id the running task via the scheduler. */
    void
    schedule(TaskId id, Priority prio)
    {
        unit->addReady(id, prio);
        settle();
        ASSERT_EQ(unit->getHwSched(), id);
        settle();
    }

    ArchState state;
    MemSystem mem;
    Sram dmem{"dmem", memmap::kDmemBase, memmap::kDmemSize};
    SharedPort arb{"dmem"};
    RtosUnitConfig config;
    std::unique_ptr<DirectUnitPort> port;
    std::unique_ptr<RtosUnit> unit;
    Cycle cycle = 0;
};

TEST_F(HwSemUnit, CountingSemantics)
{
    schedule(1, 3);
    EXPECT_EQ(unit->semGive(0), 0u);  // no waiter: count -> 1
    EXPECT_EQ(unit->semGive(0), 0u);  // count -> 2
    EXPECT_EQ(unit->semTake(0), 1u);  // count -> 1
    EXPECT_EQ(unit->semTake(0), 1u);  // count -> 0
    EXPECT_EQ(unit->stats().semTakes, 2u);
    EXPECT_EQ(unit->stats().semBlocks, 0u);
}

TEST_F(HwSemUnit, TakeOnEmptyBlocksAndRemovesFromReady)
{
    schedule(1, 3);
    const unsigned ready_before = unit->readyList().occupancy();
    EXPECT_EQ(unit->semTake(0), 0u);  // blocks
    settle();
    EXPECT_EQ(unit->readyList().occupancy(), ready_before - 1);
    EXPECT_EQ(unit->stats().semBlocks, 1u);
}

TEST_F(HwSemUnit, GiveHandsTokenToHighestPriorityWaiter)
{
    // Three tasks block on semaphore 0 with different priorities.
    for (TaskId id : {1, 2, 3}) {
        schedule(id, static_cast<Priority>(id));
        EXPECT_EQ(unit->semTake(0), 0u);
        settle();
    }
    schedule(4, 7);  // the giver
    EXPECT_EQ(unit->semGive(0), 0u);  // prio 3 waiter < giver prio 7
    settle();
    // The highest-priority waiter (3) is ready again; others not.
    bool found3 = false;
    for (const HwSlot &s : unit->readyList().slots()) {
        if (s.valid && s.id == 3)
            found3 = true;
        EXPECT_FALSE(s.valid && (s.id == 1 || s.id == 2));
    }
    EXPECT_TRUE(found3);
    EXPECT_EQ(unit->stats().semWakes, 1u);
}

TEST_F(HwSemUnit, GiveSignalsPreemptionForHigherPriorityWaiter)
{
    schedule(5, 6);
    EXPECT_EQ(unit->semTake(0), 0u);  // prio-6 task blocks
    settle();
    schedule(1, 2);  // low-priority giver
    EXPECT_EQ(unit->semGive(0), 1u);  // waiter outranks the giver
}

TEST_F(HwSemUnit, ValidationRequiresScheduling)
{
    RtosUnitConfig c = RtosUnitConfig::fromName("SLT");
    c.hwsync = true;
    std::string why;
    EXPECT_TRUE(c.validate(&why)) << why;
    c = RtosUnitConfig::fromName("SL");
    c.hwsync = true;
    EXPECT_FALSE(c.validate(&why));
    EXPECT_EQ(RtosUnitConfig::fromName("SLT+HS").name(), "SLT+HS");
    EXPECT_EQ(RtosUnitConfig::fromName("SPLIT+HS").name(), "SPLIT+HS");
}

// ---- full-kernel behaviour -------------------------------------------

class HwSemKernel : public ::testing::TestWithParam<std::string>
{
  protected:
    std::vector<GuestEvent>
    runMutexScenario(unsigned iterations, bool *ok)
    {
        KernelParams kp;
        kp.unit = RtosUnitConfig::fromName(GetParam());
        KernelBuilder kb(kp);
        const unsigned sem = kb.createHwSemaphore(1);  // binary

        kb.a().dataWord("w_done", 0);
        for (unsigned t = 0; t < 3; ++t) {
            TaskSpec spec;
            spec.name = csprintf("hws%u", t);
            spec.priority = t == 2 ? 3 : 2;
            spec.body = [=](KernelBuilder &k) {
                Assembler &a = k.a();
                const std::string loop = csprintf("w_hwl_%u", t);
                a.li(S0, static_cast<SWord>(iterations));
                a.label(loop);
                k.callHwSemTake(sem);
                k.emitTrace(tag::kMutexAcq, t);
                k.emitBusyLoop(50);
                k.emitTrace(tag::kMutexRel, t);
                k.callHwSemGive(sem);
                if (t == 2)
                    k.callDelay(2);
                else
                    k.emitBusyLoop(30);
                a.addi(S0, S0, -1);
                a.bnez(S0, loop);
                // Finish accounting (same pattern as the workloads).
                a.csrrci(Zero, csr::kMstatus, 8);
                a.la(T0, "w_done");
                a.lw(T1, 0, T0);
                a.addi(T1, T1, 1);
                a.sw(T1, 0, T0);
                a.csrrsi(Zero, csr::kMstatus, 8);
                a.li(T2, 3);
                const std::string park = csprintf("w_hwp_%u", t);
                a.bne(T1, T2, park);
                k.emitExit(0);
                a.label(park);
                const std::string ploop = csprintf("w_hwpl_%u", t);
                a.label(ploop);
                a.li(A0, 1'000'000);
                a.call("k_delay");
                a.j(ploop);
            };
            kb.addTask(spec);
        }
        const Program program = kb.build();
        SimConfig sc;
        sc.core = CoreKind::kCv32e40p;
        sc.unit = kp.unit;
        Simulation sim(sc, program);
        const bool exited = sim.run();
        *ok = exited && sim.exitCode() == 0;
        return sim.hostIo().events();
    }
};

TEST_P(HwSemKernel, MutualExclusionHolds)
{
    bool ok = false;
    const auto events = runMutexScenario(6, &ok);
    ASSERT_TRUE(ok);
    bool held = false;
    Word holder = 0;
    unsigned acquisitions = 0;
    unsigned per_task[3] = {0, 0, 0};
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kMutexAcq) {
            EXPECT_FALSE(held) << "task " << e.value << " entered while "
                               << holder << " holds the semaphore";
            held = true;
            holder = e.value;
            ++acquisitions;
            if (e.value < 3)
                ++per_task[e.value];
        } else if (e.tag == tag::kMutexRel) {
            EXPECT_TRUE(held);
            EXPECT_EQ(e.value, holder);
            held = false;
        }
    }
    EXPECT_EQ(acquisitions, 18u);
    for (unsigned t = 0; t < 3; ++t)
        EXPECT_EQ(per_task[t], 6u) << "task " << t;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HwSemKernel,
    ::testing::Values("T+HS", "ST+HS", "SLT+HS", "SPLIT+HS"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '+')
                c = '_';
        }
        return n;
    });

} // namespace
} // namespace rtu
