/** CLINT tests: mtime/mtimecmp/msip plus the auto-reset extension. */

#include <gtest/gtest.h>

#include "sim/clint.hh"

namespace rtu {
namespace {

class ClintTest : public ::testing::Test
{
  protected:
    IrqLines irq;
    Clint clint{irq};
};

TEST_F(ClintTest, MtimeAdvancesPerTick)
{
    EXPECT_EQ(clint.mtime(), 0u);
    clint.tick(0);
    clint.tick(1);
    EXPECT_EQ(clint.mtime(), 2u);
    EXPECT_EQ(clint.read(memmap::kClintMtime, MemSize::kWord), 2u);
}

TEST_F(ClintTest, TimerInterruptFiresAtCompare)
{
    clint.write(memmap::kClintMtimecmp, 3, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.tick(0);
    clint.tick(1);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
    clint.tick(2);
    EXPECT_NE(irq.pending() & irq::kMti, 0u);
    EXPECT_EQ(irq.assertCycle(mcause::kMachineTimer), 2u);
}

TEST_F(ClintTest, ReprogrammingCompareClearsTimerLine)
{
    clint.write(memmap::kClintMtimecmp, 1, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.tick(0);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    clint.write(memmap::kClintMtimecmp, 100, MemSize::kWord);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
}

TEST_F(ClintTest, MsipRaisesAndClearsSoftwareInterrupt)
{
    clint.tick(0);
    clint.write(memmap::kClintMsip, 1, MemSize::kWord);
    EXPECT_NE(irq.pending() & irq::kMsi, 0u);
    clint.write(memmap::kClintMsip, 0, MemSize::kWord);
    EXPECT_EQ(irq.pending() & irq::kMsi, 0u);
}

TEST_F(ClintTest, AutoResetAdvancesCompareOnTakenTimer)
{
    clint.enableAutoReset(1000);
    clint.write(memmap::kClintMtimecmp, 1000, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    for (Cycle c = 0; c < 1000; ++c)
        clint.tick(c);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), 2000u);
    clint.tick(1000);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
}

TEST_F(ClintTest, AutoResetKeepsExactCadence)
{
    clint.enableAutoReset(100);
    clint.write(memmap::kClintMtimecmp, 100, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    // Take the interrupt late: the next deadline must stay on the
    // original 100-cycle grid, not drift.
    for (Cycle c = 0; c < 150; ++c)
        clint.tick(c);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), 200u);
}

TEST_F(ClintTest, WithoutAutoResetTakenTimerDoesNothing)
{
    clint.write(memmap::kClintMtimecmp, 10, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), 10u);
}

TEST_F(ClintTest, AutoResetSaturatesAtTheCompareCeiling)
{
    // Regression: with mtimecmp near 2^64 - 1, the auto-reset used to
    // wrap the deadline around to a tiny compare value, turning the
    // next few billion cycles into an MTIP storm. It must saturate at
    // ~0 — the architectural "timer disarmed" idiom — and stay there.
    clint.enableAutoReset(1000);
    clint.write(memmap::kClintMtimecmp, 0xFFFFFE00u, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0xFFFFFFFFu, MemSize::kWord);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), ~DWord{0});
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), ~DWord{0});
}

TEST_F(ClintTest, NextEventWithDisarmedCompareIsAstronomicallyFar)
{
    // The reset value mtimecmp = ~0 is still a reachable deadline —
    // mtime hits it after ~2^64 ticks — so nextEventAt reports that
    // exact far-future cycle rather than aliasing the kNoEvent
    // sentinel or overflowing `now + delta` into a bogus near-term
    // event.
    clint.tick(0);  // mtime = 1
    EXPECT_EQ(clint.nextEventAt(1), ~DWord{0} - 1);
}

TEST_F(ClintTest, NextEventWithZeroComparePendingForever)
{
    // cmp = 0 satisfies mtime >= cmp at every value including across
    // the mtime wrap, so a raised line never clears: kNoEvent, not a
    // wrap-distance event 2^64 ticks out.
    clint.write(memmap::kClintMtimecmp, 0, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.tick(0);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    EXPECT_EQ(clint.nextEventAt(1), kNoEvent);
}

TEST_F(ClintTest, PendingLineClearsWhenMtimeWraps)
{
    // mtime pressed against the uint64 ceiling with mtimecmp just
    // below it: the line raises at cmp and clears when mtime wraps to
    // 0 < cmp. nextEventAt must schedule that wrap-induced clear (a
    // fast-forward would otherwise skip it) without underflowing the
    // not-pending branch's cmp - mtime difference beforehand.
    const DWord cmp = ~DWord{0} - 2;
    clint.write(memmap::kClintMtimecmp,
                static_cast<Word>(cmp), MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi,
                static_cast<Word>(cmp >> 32), MemSize::kWord);
    // Bulk-advance mtime to cmp - 2 (the stretch is quiescent).
    const DWord target = cmp - 2;
    clint.skipTo(0, target);
    EXPECT_EQ(clint.mtime(), target);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
    // Next tick is mtime = cmp - 1 (still clear), the one after
    // raises the line.
    EXPECT_EQ(clint.nextEventAt(target), target + 1);
    clint.tick(target);
    clint.tick(target + 1);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    // Pending with mtime = cmp: the clear happens when mtime wraps —
    // three more ticks (cmp -> ~0 -> 0), i.e. at now + toWrap - 1.
    EXPECT_EQ(clint.nextEventAt(target + 2), target + 2 + 2);
    clint.tick(target + 2);
    clint.tick(target + 3);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);  // mtime = ~0
    clint.tick(target + 4);                    // wraps to 0
    EXPECT_EQ(clint.mtime(), 0u);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
}

TEST_F(ClintTest, ExtIrqDriverAssertsAtScheduledCycle)
{
    ExtIrqDriver ext(irq);
    ext.schedule(5);
    ext.tick(4);
    EXPECT_EQ(irq.pending() & irq::kMei, 0u);
    ext.tick(5);
    EXPECT_NE(irq.pending() & irq::kMei, 0u);
    ext.ack(irq);
    EXPECT_EQ(irq.pending() & irq::kMei, 0u);
}

TEST_F(ClintTest, ExtIrqDriverNextEventTracksSchedule)
{
    ExtIrqDriver ext(irq);
    EXPECT_EQ(ext.nextEventAt(0), kNoEvent);
    ext.schedule(20);
    ext.schedule(7);  // out-of-order insert keeps the queue sorted
    EXPECT_EQ(ext.nextEventAt(0), 7u);
    ext.tick(7);
    EXPECT_NE(irq.pending() & irq::kMei, 0u);
    EXPECT_EQ(ext.nextEventAt(8), 20u);
    // A skip across the second event consumes it without asserting.
    ext.skipTo(8, 21);
    EXPECT_EQ(ext.nextEventAt(21), kNoEvent);
}

} // namespace
} // namespace rtu
