/** CLINT tests: mtime/mtimecmp/msip plus the auto-reset extension. */

#include <gtest/gtest.h>

#include "sim/clint.hh"

namespace rtu {
namespace {

class ClintTest : public ::testing::Test
{
  protected:
    IrqLines irq;
    Clint clint{irq};
};

TEST_F(ClintTest, MtimeAdvancesPerTick)
{
    EXPECT_EQ(clint.mtime(), 0u);
    clint.tick(0);
    clint.tick(1);
    EXPECT_EQ(clint.mtime(), 2u);
    EXPECT_EQ(clint.read(memmap::kClintMtime, MemSize::kWord), 2u);
}

TEST_F(ClintTest, TimerInterruptFiresAtCompare)
{
    clint.write(memmap::kClintMtimecmp, 3, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.tick(0);
    clint.tick(1);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
    clint.tick(2);
    EXPECT_NE(irq.pending() & irq::kMti, 0u);
    EXPECT_EQ(irq.assertCycle(mcause::kMachineTimer), 2u);
}

TEST_F(ClintTest, ReprogrammingCompareClearsTimerLine)
{
    clint.write(memmap::kClintMtimecmp, 1, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.tick(0);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    clint.write(memmap::kClintMtimecmp, 100, MemSize::kWord);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
}

TEST_F(ClintTest, MsipRaisesAndClearsSoftwareInterrupt)
{
    clint.tick(0);
    clint.write(memmap::kClintMsip, 1, MemSize::kWord);
    EXPECT_NE(irq.pending() & irq::kMsi, 0u);
    clint.write(memmap::kClintMsip, 0, MemSize::kWord);
    EXPECT_EQ(irq.pending() & irq::kMsi, 0u);
}

TEST_F(ClintTest, AutoResetAdvancesCompareOnTakenTimer)
{
    clint.enableAutoReset(1000);
    clint.write(memmap::kClintMtimecmp, 1000, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    for (Cycle c = 0; c < 1000; ++c)
        clint.tick(c);
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), 2000u);
    clint.tick(1000);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
}

TEST_F(ClintTest, AutoResetKeepsExactCadence)
{
    clint.enableAutoReset(100);
    clint.write(memmap::kClintMtimecmp, 100, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    // Take the interrupt late: the next deadline must stay on the
    // original 100-cycle grid, not drift.
    for (Cycle c = 0; c < 150; ++c)
        clint.tick(c);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), 200u);
}

TEST_F(ClintTest, WithoutAutoResetTakenTimerDoesNothing)
{
    clint.write(memmap::kClintMtimecmp, 10, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    clint.timerTaken();
    EXPECT_EQ(clint.mtimecmp(), 10u);
}

TEST_F(ClintTest, ExtIrqDriverAssertsAtScheduledCycle)
{
    ExtIrqDriver ext(irq);
    ext.schedule(5);
    ext.tick(4);
    EXPECT_EQ(irq.pending() & irq::kMei, 0u);
    ext.tick(5);
    EXPECT_NE(irq.pending() & irq::kMei, 0u);
    ext.ack(irq);
    EXPECT_EQ(irq.pending() & irq::kMei, 0u);
}

TEST_F(ClintTest, ExtIrqDriverNextEventTracksSchedule)
{
    ExtIrqDriver ext(irq);
    EXPECT_EQ(ext.nextEventAt(0), kNoEvent);
    ext.schedule(20);
    ext.schedule(7);  // out-of-order insert keeps the queue sorted
    EXPECT_EQ(ext.nextEventAt(0), 7u);
    ext.tick(7);
    EXPECT_NE(irq.pending() & irq::kMei, 0u);
    EXPECT_EQ(ext.nextEventAt(8), 20u);
    // A skip across the second event consumes it without asserting.
    ext.skipTo(8, 21);
    EXPECT_EQ(ext.nextEventAt(21), kNoEvent);
}

} // namespace
} // namespace rtu
