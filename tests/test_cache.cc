/** Cache timing-model tests: hit/miss, LRU, write policies,
 *  invalidation (the CV32RT hook on NaxRiscv). */

#include <gtest/gtest.h>

#include "cores/cache.hh"

namespace rtu {
namespace {

TEST(Cache, ColdMissThenHit)
{
    CacheModel c({1024, 2, 16, false});
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x10C, false).hit);  // same line
    EXPECT_FALSE(c.access(0x110, false).hit); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 16B lines, 1024B => 32 sets; same set every 512B.
    CacheModel c({1024, 2, 16, false});
    c.access(0x000, false);
    c.access(0x200, false);
    EXPECT_TRUE(c.access(0x000, false).hit);
    // Third distinct line in the set evicts the LRU (0x200).
    c.access(0x400, false);
    EXPECT_TRUE(c.access(0x000, false).hit);
    EXPECT_FALSE(c.access(0x200, false).hit);
}

TEST(Cache, WriteThroughDoesNotAllocateOnStoreMiss)
{
    CacheModel c({1024, 2, 16, false});
    EXPECT_FALSE(c.access(0x300, true).hit);
    EXPECT_FALSE(c.access(0x300, false).hit);  // still not resident
}

TEST(Cache, WriteBackAllocatesAndMarksDirty)
{
    CacheModel c({1024, 2, 16, true});
    EXPECT_FALSE(c.access(0x300, true).hit);
    EXPECT_TRUE(c.access(0x300, false).hit);
    // Evicting the dirty line reports a writeback.
    c.access(0x500, true);
    const auto res = c.access(0x700, true);
    EXPECT_TRUE(res.writeback || c.stats().writebacks > 0);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    CacheModel c({1024, 2, 16, true});
    c.access(0x000, false);
    c.access(0x200, false);
    const auto res = c.access(0x400, false);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, InvalidateRangeDropsLines)
{
    CacheModel c({1024, 2, 16, true});
    c.access(0x100, true);
    c.access(0x110, true);
    c.invalidateRange(0x100, 32);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_FALSE(c.access(0x110, false).hit);
    EXPECT_EQ(c.stats().invalidations, 2u);
}

TEST(Cache, StatsCount)
{
    CacheModel c({1024, 2, 16, false});
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 2u);
}

/** Property: any address maps back to the same set/tag (round-trip
 *  through a fill + probe). */
class CacheProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheProperty, FilledAddressAlwaysHitsUntilEvicted)
{
    CacheModel c({4096, 4, 32, true});
    unsigned x = GetParam() * 2654435761u + 12345u;
    const Addr addr = (x % 0x10000) & ~3u;
    c.access(addr, false);
    EXPECT_TRUE(c.access(addr, false).hit);
    EXPECT_TRUE(c.access(addr ^ 0x1C, false).hit);  // same 32B line
}

INSTANTIATE_TEST_SUITE_P(Addresses, CacheProperty,
                         ::testing::Range(0u, 20u));

} // namespace
} // namespace rtu
