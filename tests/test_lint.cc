/**
 * Static context-integrity verifier (src/analyze): CFG construction,
 * the four lint passes over seeded-defect fixtures (each must produce
 * exactly the documented diagnostic), and the headline acceptance
 * check — every generated kernel x workload x configuration point
 * lints clean.
 */

#include <gtest/gtest.h>

#include "analyze/linter.hh"
#include "asm/assembler.hh"
#include "kernel/layout.hh"
#include "wcet/wcet.hh"

using namespace rtu;
using kernel::frameSlotOfReg;

namespace {

constexpr Addr kTextBase = 0x0000;
constexpr Addr kDataBase = 0x8000;

std::string
diagsText(const std::vector<Diagnostic> &diags)
{
    std::string out;
    for (const Diagnostic &d : diags)
        out += "  " + diagToString(d) + "\n";
    return out;
}

std::vector<Diagnostic>
lint(const Program &program, const std::string &config)
{
    return lintProgram(program, RtosUnitConfig::fromName(config)).diags;
}

} // namespace

// ---- CFG construction ------------------------------------------------

TEST(Cfg, BlocksAndTerminators)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(T0, Zero, 3);          // 0x00
    a.label("loop");
    a.addi(T0, T0, -1);           // 0x04
    a.bnez(T0, "loop");           // 0x08: branch, back edge
    a.call("g");                  // 0x0c: call
    a.ret();                      // 0x10: return
    a.fnEnd();
    a.fnBegin("g");
    a.nop();                      // 0x14
    a.ret();                      // 0x18
    a.fnEnd();
    const Program p = a.finish();
    const Cfg cfg(p);

    // Leaders: 0x00 (entry), 0x04 (loop label + branch target),
    // 0x0c (post-branch), 0x10 (call continuation), 0x14 (g), 0x18
    // (post-call of g's body split by no label -> none; 0x18 belongs
    // to g's block).
    ASSERT_TRUE(cfg.blocks().count(0x00));
    ASSERT_TRUE(cfg.blocks().count(0x04));
    ASSERT_TRUE(cfg.blocks().count(0x0c));
    ASSERT_TRUE(cfg.blocks().count(0x10));
    ASSERT_TRUE(cfg.blocks().count(0x14));

    const BasicBlock &loop = cfg.blockAt(0x04);
    EXPECT_EQ(loop.term, TermKind::kBranch);
    EXPECT_EQ(loop.takenTarget, 0x04u);
    EXPECT_EQ(loop.succs.size(), 2u);

    const BasicBlock &callBlock = cfg.blockAt(0x0c);
    EXPECT_EQ(callBlock.term, TermKind::kCall);
    EXPECT_EQ(callBlock.takenTarget, 0x14u);
    ASSERT_EQ(callBlock.succs.size(), 1u);
    EXPECT_EQ(callBlock.succs[0], 0x10u);  // continuation, not callee

    EXPECT_EQ(cfg.blockAt(0x10).term, TermKind::kReturn);

    // Interprocedural reachability descends through the call.
    const auto scope = cfg.reachableFrom(0x00, /*follow_calls=*/true);
    EXPECT_TRUE(scope.count(0x14));
    const auto local = cfg.reachableFrom(0x00, /*follow_calls=*/false);
    EXPECT_FALSE(local.count(0x14));
}

TEST(Cfg, ClosedLoopDetection)
{
    Assembler a(kTextBase, kDataBase);
    a.label("spin");
    a.wfi();
    a.j("spin");       // idle pattern: closed
    a.label("exit_loop");
    a.nop();
    a.ret();           // reaches a return: not closed
    const Program p = a.finish();
    const Cfg cfg(p);
    EXPECT_TRUE(cfg.isClosedLoop(p.symbol("spin")));
    EXPECT_FALSE(cfg.isClosedLoop(p.symbol("exit_loop")));
}

// ---- pass 1: context integrity ---------------------------------------

TEST(ContextIntegrity, ClobberBeforeSaveVanilla)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(T0, Zero, 1);  // t0 clobbered, never saved
    a.mret();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "ctx-clobbered-before-save"))
        << diagsText(diags);
}

TEST(ContextIntegrity, SavedButNotRestored)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(SP, SP, -128);
    a.sw(T0, frameSlotOfReg(5), SP);  // save t0 properly
    a.addi(T0, Zero, 7);              // clobber (legal: saved)
    a.addi(SP, SP, 128);
    a.mret();                         // ...but never reloaded
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_FALSE(hasCode(diags, "ctx-clobbered-before-save"))
        << diagsText(diags);
    EXPECT_TRUE(hasCode(diags, "ctx-not-restored")) << diagsText(diags);
}

TEST(ContextIntegrity, SaveRestoreRoundTripIsClean)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(SP, SP, -128);
    a.sw(T0, frameSlotOfReg(5), SP);
    a.addi(T0, Zero, 7);
    a.lw(T0, frameSlotOfReg(5), SP);  // reload before mret
    a.addi(SP, SP, 128);
    a.mret();
    const auto diags = lint(a.finish(), "vanilla");
    for (const Diagnostic &d : diags)
        EXPECT_NE(d.code, "ctx-not-restored") << diagsText(diags);
    EXPECT_FALSE(hasCode(diags, "ctx-clobbered-before-save"))
        << diagsText(diags);
}

TEST(ContextIntegrity, UntouchedRegistersNeedNoRestore)
{
    // A handler that touches nothing resumes the interrupted task
    // with all values intact: no obligations.
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.mret();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_FALSE(hasCode(diags, "ctx-not-restored")) << diagsText(diags);
    EXPECT_FALSE(hasCode(diags, "ctx-clobbered-before-save"))
        << diagsText(diags);
}

TEST(ContextIntegrity, StoreConfigAllowsClobberButFlagsStaleRead)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(T1, T0, 1);  // reads t0: ISR bank is stale at entry
    a.mret();
    const auto diags = lint(a.finish(), "S");
    // The write to t1 is fine under (S) - hardware archived the task
    // context - but the read of never-written t0 is not.
    EXPECT_FALSE(hasCode(diags, "ctx-clobbered-before-save"))
        << diagsText(diags);
    EXPECT_TRUE(hasCode(diags, "isr-uninit-read")) << diagsText(diags);
}

TEST(ContextIntegrity, OmitConfigRejectsLiveSwitchRf)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.rtuSwitchRf();  // touches the app bank: omitted loads are live
    a.mret();
    const auto diags = lint(a.finish(), "SDLO");
    EXPECT_TRUE(hasCode(diags, "omit-live-load")) << diagsText(diags);
}

TEST(ContextIntegrity, OmitConfigCleanWithoutSwitchRf)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.mret();  // hardware restores; software never switches banks
    const auto diags = lint(a.finish(), "SDLO");
    EXPECT_FALSE(hasCode(diags, "omit-live-load")) << diagsText(diags);
    EXPECT_FALSE(hasCode(diags, "ctx-not-restored")) << diagsText(diags);
}

TEST(ContextIntegrity, Cv32rtRestoreBeforeBarrier)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(SP, SP, -128);
    // x16 (a6) is hardware-drained under CV32RT; reloading its frame
    // slot before the SWITCH_RF barrier races the drain.
    a.lw(A6, frameSlotOfReg(16), SP);
    a.addi(SP, SP, 128);
    a.mret();
    const auto diags = lint(a.finish(), "CV32RT");
    EXPECT_TRUE(hasCode(diags, "ctx-restore-before-barrier"))
        << diagsText(diags);
}

// ---- pass 2: callee-saved ABI ----------------------------------------

TEST(CalleeSaved, ClobberedSRegisterNotRestored)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(S0, Zero, 5);  // clobbers s0 with no spill
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "abi-callee-saved")) << diagsText(diags);
}

TEST(CalleeSaved, SpillReloadIsClean)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(SP, SP, -16);
    a.sw(S0, 0, SP);
    a.addi(S0, Zero, 5);
    a.lw(S0, 0, SP);
    a.addi(SP, SP, 16);
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_FALSE(hasCode(diags, "abi-callee-saved")) << diagsText(diags);
    EXPECT_FALSE(hasCode(diags, "abi-ra-clobbered")) << diagsText(diags);
}

TEST(CalleeSaved, ReloadFromWrongSlotStillClobbered)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(SP, SP, -16);
    a.sw(S0, 0, SP);
    a.addi(S0, Zero, 5);
    a.lw(S0, 4, SP);  // wrong slot: garbage, not the entry value
    a.addi(SP, SP, 16);
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "abi-callee-saved")) << diagsText(diags);
}

TEST(CalleeSaved, CallWithoutRaSpill)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.call("g");  // overwrites ra; never spilled
    a.ret();      // returns into g's caller frame: wrong address
    a.fnEnd();
    a.fnBegin("g");
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "abi-ra-clobbered")) << diagsText(diags);
}

TEST(CalleeSaved, CallWithRaSpillIsClean)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(SP, SP, -16);
    a.sw(RA, 12, SP);
    a.call("g");
    a.lw(RA, 12, SP);
    a.addi(SP, SP, 16);
    a.ret();
    a.fnEnd();
    a.fnBegin("g");
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_FALSE(hasCode(diags, "abi-ra-clobbered")) << diagsText(diags);
}

// ---- pass 3: stack discipline ----------------------------------------

TEST(StackDiscipline, ImbalancedJoinAndReturn)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(SP, SP, -16);
    a.beqz(A0, "skip");   // taken path keeps the frame...
    a.addi(SP, SP, 16);   // ...fall-through pops it
    a.label("skip");
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "stack-imbalance")) << diagsText(diags);
    EXPECT_TRUE(hasCode(diags, "stack-ret-imbalance"))
        << diagsText(diags);
}

TEST(StackDiscipline, AccessBelowSp)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.sw(T0, -4, SP);  // below sp: dead zone, interrupts clobber it
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "stack-below-sp")) << diagsText(diags);
}

TEST(StackDiscipline, BalancedFrameIsClean)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.addi(SP, SP, -32);
    a.sw(T0, 0, SP);
    a.lw(T0, 0, SP);
    a.addi(SP, SP, 32);
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_FALSE(hasCode(diags, "stack-imbalance")) << diagsText(diags);
    EXPECT_FALSE(hasCode(diags, "stack-ret-imbalance"))
        << diagsText(diags);
    EXPECT_FALSE(hasCode(diags, "stack-below-sp")) << diagsText(diags);
}

// ---- pass 4: CFG soundness and WCET coverage -------------------------

TEST(Soundness, UnboundedIsrLoop)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(SP, SP, -128);
    a.sw(T0, frameSlotOfReg(5), SP);
    a.li(T0, 8);
    a.label("loop");
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");  // backward branch without loopBound()
    a.lw(T0, frameSlotOfReg(5), SP);
    a.addi(SP, SP, 128);
    a.mret();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "wcet-unannotated-back-edge"))
        << diagsText(diags);
}

TEST(Soundness, AnnotatedIsrLoopIsClean)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.addi(SP, SP, -128);
    a.sw(T0, frameSlotOfReg(5), SP);
    a.li(T0, 8);
    a.label("loop");
    a.addi(T0, T0, -1);
    a.beqz(T0, "done");
    a.loopBound(8);
    a.j("loop");  // the generator's annotated back-edge idiom
    a.label("done");
    a.lw(T0, frameSlotOfReg(5), SP);
    a.addi(SP, SP, 128);
    a.mret();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_FALSE(hasCode(diags, "wcet-unannotated-back-edge"))
        << diagsText(diags);
}

TEST(Soundness, IsrWithoutMret)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.j("k_isr");  // handler spins forever, can never return
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "isr-no-mret")) << diagsText(diags);
    // The self-loop is a closed terminal loop, not a missing bound.
    EXPECT_FALSE(hasCode(diags, "wcet-unannotated-back-edge"))
        << diagsText(diags);
}

TEST(Soundness, FallThroughAcrossFunctions)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.nop();  // no terminator: falls into g
    a.fnEnd();
    a.fnBegin("g");
    a.ret();
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "cfg-fall-through-function"))
        << diagsText(diags);
}

TEST(Soundness, FallOffTextEnd)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.nop();  // last text word is not a terminator
    a.fnEnd();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "cfg-fall-off-text")) << diagsText(diags);
}

TEST(Soundness, UnreachableBlock)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("f");
    a.ret();
    a.fnEnd();
    a.label("orphan");  // no edge and no function reaches this
    a.nop();
    a.ret();
    const auto diags = lint(a.finish(), "vanilla");
    EXPECT_TRUE(hasCode(diags, "cfg-unreachable")) << diagsText(diags);
}

// ---- WCET analyzer: structured diagnostics instead of aborts ---------

TEST(WcetDiagnostics, UnannotatedBackEdgeIsReportedNotFatal)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.li(T0, 8);
    a.label("loop");
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");  // would previously rtu_assert-abort
    a.mret();
    const Program p = a.finish();
    WcetAnalyzer analyzer(p, RtosUnitConfig::vanilla());
    const WcetResult res = analyzer.analyzeIsr();  // must not abort
    EXPECT_GT(res.totalCycles, 0u);
    EXPECT_TRUE(hasCode(analyzer.diagnostics(),
                        "wcet-unannotated-back-edge"));
}

TEST(WcetDiagnostics, CleanIsrHasNoDiagnostics)
{
    Assembler a(kTextBase, kDataBase);
    a.label("k_isr");
    a.li(T0, 8);
    a.label("loop");
    a.addi(T0, T0, -1);
    a.beqz(T0, "done");
    a.loopBound(8);
    a.j("loop");
    a.label("done");
    a.mret();
    const Program p = a.finish();
    WcetAnalyzer analyzer(p, RtosUnitConfig::vanilla());
    analyzer.analyzeIsr();
    EXPECT_TRUE(analyzer.diagnostics().empty());
}

// ---- acceptance: the generated matrix lints clean --------------------

TEST(GeneratedMatrix, EveryProgramPointLintsClean)
{
    unsigned points = 0;
    forEachGeneratedProgram([&](const LintPoint &point) {
        ++points;
        const LintResult result = lintProgram(point.program, point.unit);
        EXPECT_TRUE(result.clean())
            << point.unit.name() << " x " << point.workload << ":\n"
            << diagsText(result.diags);
    });
    // 12 paper configs + 3 hwsync points, 7 workloads each.
    EXPECT_EQ(points, 15u * 7u);
}

TEST(GeneratedMatrix, WcetAnalyzerCleanOnGeneratedIsrs)
{
    // The shared-CFG WCET walk must agree with the lint passes that
    // every generated ISR is statically sound.
    forEachGeneratedProgram(
        [&](const LintPoint &point) {
            WcetAnalyzer analyzer(point.program, point.unit);
            analyzer.analyzeIsr();
            EXPECT_TRUE(analyzer.diagnostics().empty())
                << point.unit.name() << " x " << point.workload << ":\n"
                << diagsText(analyzer.diagnostics());
        },
        /*include_hwsync=*/false);
}
