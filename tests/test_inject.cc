/** Fault-injection engine tests: outcome classification (all five
 *  classes), fault-plan determinism, campaign thread-count
 *  independence, and seeded defects each runtime oracle is guaranteed
 *  to catch (context flip, TCB corruption, stack-canary smash). */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "inject/campaign.hh"
#include "inject/fault.hh"
#include "inject/oracle.hh"
#include "kernel/layout.hh"
#include "sim/hostio.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

GoldenRecord
syntheticGolden()
{
    GoldenRecord g;
    g.run.exitCode = 0;
    g.events = {{tag::kWorkItem, 1}, {tag::kWorkItem, 2}};
    return g;
}

TEST(ClassifyOutcome, OracleBeatsEveryOtherSignal)
{
    const GoldenRecord g = syntheticGolden();
    // Even a crashed or hung run classifies as detected-oracle when
    // an oracle fired first: the oracle is the earliest detector.
    EXPECT_EQ(classifyOutcome(1, RunStatus::kNoRetire, 0, g.events, g),
              FaultOutcome::kDetectedOracle);
    EXPECT_EQ(classifyOutcome(3, RunStatus::kCycleLimit, 7, {}, g),
              FaultOutcome::kDetectedOracle);
    EXPECT_EQ(classifyOutcome(1, RunStatus::kExited, 0, g.events, g),
              FaultOutcome::kDetectedOracle);
}

TEST(ClassifyOutcome, WatchdogCatchesNoRetireAndGuestFaults)
{
    const GoldenRecord g = syntheticGolden();
    EXPECT_EQ(classifyOutcome(0, RunStatus::kNoRetire, 0, g.events, g),
              FaultOutcome::kDetectedWatchdog);
    // A guest crash (illegal instruction, bus error) is platform-level
    // detection, grouped with the watchdog — not silent corruption.
    EXPECT_EQ(classifyOutcome(0, RunStatus::kGuestFault, 0, {}, g),
              FaultOutcome::kDetectedWatchdog);
}

TEST(ClassifyOutcome, CycleLimitIsHang)
{
    const GoldenRecord g = syntheticGolden();
    EXPECT_EQ(classifyOutcome(0, RunStatus::kCycleLimit, 0, g.events, g),
              FaultOutcome::kHang);
}

TEST(ClassifyOutcome, CleanExitMatchingGoldenIsMasked)
{
    const GoldenRecord g = syntheticGolden();
    EXPECT_EQ(classifyOutcome(0, RunStatus::kExited, 0, g.events, g),
              FaultOutcome::kMasked);
}

TEST(ClassifyOutcome, WrongExitCodeOrEventsIsSilentCorruption)
{
    const GoldenRecord g = syntheticGolden();
    EXPECT_EQ(classifyOutcome(0, RunStatus::kExited, 1, g.events, g),
              FaultOutcome::kSilentCorruption);
    SemanticEvents wrong = g.events;
    wrong.back().second ^= 1;
    EXPECT_EQ(classifyOutcome(0, RunStatus::kExited, 0, wrong, g),
              FaultOutcome::kSilentCorruption);
    // A dropped event is as corrupt as a changed one.
    wrong = g.events;
    wrong.pop_back();
    EXPECT_EQ(classifyOutcome(0, RunStatus::kExited, 0, wrong, g),
              FaultOutcome::kSilentCorruption);
}

TEST(CampaignAggregates, CoverageCountsDetectedOverNonMasked)
{
    CampaignResult res;
    const auto push = [&](FaultOutcome o) {
        FaultRunRecord r;
        r.outcome = o;
        res.faults.push_back(r);
    };
    push(FaultOutcome::kMasked);
    push(FaultOutcome::kMasked);
    push(FaultOutcome::kDetectedOracle);
    push(FaultOutcome::kDetectedWatchdog);
    push(FaultOutcome::kHang);
    push(FaultOutcome::kSilentCorruption);
    EXPECT_EQ(res.countOf(FaultOutcome::kMasked), 2u);
    EXPECT_EQ(res.countOf(FaultOutcome::kDetectedOracle), 1u);
    // 2 detected out of 4 non-masked.
    EXPECT_DOUBLE_EQ(res.detectionCoverage(), 0.5);
}

TEST(CampaignAggregates, AllMaskedCampaignHasFullCoverage)
{
    CampaignResult res;
    FaultRunRecord r;
    r.outcome = FaultOutcome::kMasked;
    res.faults = {r, r, r};
    // Nothing escaped because nothing took effect.
    EXPECT_DOUBLE_EQ(res.detectionCoverage(), 1.0);
}

SweepPoint
smallPoint(const char *config, const char *workload = "yield_pingpong")
{
    SweepPoint pt;
    pt.core = CoreKind::kCv32e40p;
    pt.unit = RtosUnitConfig::fromName(config);
    pt.workload = workload;
    pt.iterations = 4;
    pt.timerPeriodCycles = 1000;
    pt.reseed();
    return pt;
}

TEST(FaultPlan, DeterministicInSeedAndPointKey)
{
    const SweepPoint pt = smallPoint("SLT");
    const WorkloadInfo winfo =
        makeWorkload(pt.workload, pt.iterations)->info();
    const auto a = makeFaultPlan(7, pt, winfo, 8);
    const auto b = makeFaultPlan(7, pt, winfo, 8);
    ASSERT_EQ(a.size(), 8u);
    ASSERT_EQ(b.size(), 8u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].describe(), b[i].describe()) << i;

    // A different campaign seed yields a different plan.
    const auto c = makeFaultPlan(8, pt, winfo, 8);
    bool anyDiff = false;
    for (size_t i = 0; i < a.size(); ++i)
        anyDiff = anyDiff || a[i].describe() != c[i].describe();
    EXPECT_TRUE(anyDiff);
}

TEST(FaultPlan, OnlyApplicableKindsArePlanned)
{
    // Vanilla has no RTOSUnit: no FSM/port perturbations may appear.
    const SweepPoint pt = smallPoint("vanilla");
    const WorkloadInfo winfo =
        makeWorkload(pt.workload, pt.iterations)->info();
    for (const FaultSpec &f : makeFaultPlan(3, pt, winfo, 16)) {
        EXPECT_NE(f.kind, FaultKind::kMemStall) << f.describe();
        EXPECT_NE(f.kind, FaultKind::kFsmStall) << f.describe();
        EXPECT_NE(f.kind, FaultKind::kFsmAbort) << f.describe();
    }
}

/** Seeded defects: each oracle must catch its guaranteed fixture and
 *  the paired clean run must stay silent (soundness). */
class SeededDefect : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    FaultRunRecord
    runFixture(const char *config, const FaultSpec &fault)
    {
        GoldenRecord golden;
        const FaultRunRecord rec =
            runSingleFault(smallPoint(config), fault, true, &golden);
        EXPECT_EQ(golden.oracleHits, 0u)
            << config << " clean run fired: " << golden.oracleDetail;
        EXPECT_TRUE(rec.fired) << fault.describe();
        return rec;
    }
};

TEST_F(SeededDefect, ContextFlipCaughtByContextOracle)
{
    FaultSpec f;
    f.kind = FaultKind::kCtxFlip;
    f.episode = 2;
    f.word = 4;  // x5: compared at every resume
    f.bitMask = 0xFF0;
    for (const char *config : {"vanilla", "S", "SDLOT", "CV32RT"}) {
        const FaultRunRecord rec = runFixture(config, f);
        EXPECT_EQ(rec.outcome, FaultOutcome::kDetectedOracle)
            << config << ": " << faultOutcomeName(rec.outcome);
        EXPECT_EQ(rec.oracleName, "context") << rec.oracleDetail;
    }
}

TEST_F(SeededDefect, TcbIdFlipCaughtByListOracle)
{
    FaultSpec f;
    f.kind = FaultKind::kTcbField;
    f.episode = 2;
    f.tcbField = kernel::kTcbId;  // breaks table<->TCB mapping
    f.bitMask = 0x7;
    f.taskSel = 1;
    for (const char *config : {"vanilla", "T"}) {
        const FaultRunRecord rec = runFixture(config, f);
        EXPECT_EQ(rec.outcome, FaultOutcome::kDetectedOracle)
            << config << ": " << faultOutcomeName(rec.outcome);
        EXPECT_EQ(rec.oracleName, "list") << rec.oracleDetail;
    }
}

TEST_F(SeededDefect, FsmAbortCaughtByContextOracle)
{
    FaultSpec f;
    f.kind = FaultKind::kFsmAbort;
    f.episode = 3;
    f.cycles = 2;  // kill the store drain near its start
    const FaultRunRecord rec = runFixture("S", f);
    EXPECT_EQ(rec.outcome, FaultOutcome::kDetectedOracle)
        << faultOutcomeName(rec.outcome);
    EXPECT_EQ(rec.oracleName, "context") << rec.oracleDetail;
}

TEST_F(SeededDefect, SmashedStackCanaryCaughtByFinalCheck)
{
    // No FaultSpec smashes canaries directly; drive the oracle by
    // hand: plant, overwrite task 0's stack-base magic word, run, and
    // the end-of-run sweep must report it.
    const SweepPoint pt = smallPoint("SLT");
    const auto workload = makeWorkload(pt.workload, pt.iterations);
    RunOptions opts;
    opts.timerPeriodCycles = pt.timerPeriodCycles;
    opts.seed = pt.seed;
    std::unique_ptr<KernelOracle> oracle;
    opts.preRun = [&](Simulation &sim) {
        oracle = std::make_unique<KernelOracle>(sim, pt.unit);
        oracle->plantCanaries();
        const Addr base = sim.findSymbolAddr("k_stack_0");
        ASSERT_NE(base, 0u);
        sim.mem().write32(base, KernelOracle::kCanary ^ 0xFFFF);
    };
    opts.postRun = [&](Simulation &) { oracle->finalCheck(); };
    const RunResult run =
        runWorkload(pt.core, pt.unit, *workload, opts);
    EXPECT_TRUE(run.ok);
    ASSERT_GT(oracle->hitCount(), 0u);
    EXPECT_EQ(oracle->hits().front().oracle, "canary")
        << oracle->hits().front().detail;
}

TEST(Campaign, ByteIdenticalJsonlAtAnyThreadCount)
{
    setQuiet(true);
    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p};
    spec.units = {RtosUnitConfig::vanilla(),
                  RtosUnitConfig::fromName("S")};
    spec.workloads = {"yield_pingpong"};
    spec.iterations = 4;
    spec.timerPeriods = {1000};
    CampaignSpec cs;
    cs.points = spec.points();
    cs.faultsPerPoint = 3;
    cs.seed = 11;

    const auto jsonl = [&](unsigned threads) {
        const CampaignResult res = runCampaign(cs, SweepRunner(threads));
        EXPECT_EQ(res.cleanOracleHits(), 0u);
        std::ostringstream os;
        writeCampaignJsonl(os, cs, res);
        return os.str();
    };
    const std::string serial = jsonl(1);
    const std::string parallel = jsonl(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // One record per planned fault, plan order.
    EXPECT_EQ(static_cast<unsigned>(
                  std::count(serial.begin(), serial.end(), '\n')),
              cs.faultsPerPoint *
                  static_cast<unsigned>(cs.points.size()));
}

} // namespace
} // namespace rtu
