/** Schedulability co-analysis tests: UUniFast-Discard utilization-sum
 *  property, log-uniform period bounds, taskset seed determinism, RTA
 *  golden cases (classic Liu-Layland boundary sets), overhead
 *  monotonicity, breakdown utilization, taskset lowering with zero
 *  deadline misses on both software- and hardware-scheduler
 *  configurations, campaign thread-count byte-identity, and the
 *  makeWorkload unknown-name diagnostic. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "harness/experiment.hh"
#include "sched/campaign.hh"
#include "sched/lower.hh"
#include "sched/rta.hh"
#include "sched/taskset.hh"
#include "sim/hostio.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

TEST(UUniFast, SumsToTotalAndStaysAdmissible)
{
    for (std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
        for (unsigned n : {1u, 2u, 4u, 7u}) {
            for (double total : {0.3, 0.6, 0.9}) {
                SplitMix64 rng(seed);
                const std::vector<double> u =
                    uunifastDiscard(rng, n, total);
                ASSERT_EQ(u.size(), n);
                double sum = 0.0;
                for (double ui : u) {
                    EXPECT_GT(ui, 0.0);
                    EXPECT_LE(ui, 1.0);
                    sum += ui;
                }
                EXPECT_NEAR(sum, total, 1e-9);
            }
        }
    }
}

TEST(UUniFast, DiscardKeepsPerTaskUtilizationBelowOne)
{
    // total > 1 forces the discard path: a 2-task set at 1.8 total
    // would produce u > 1 on most draws without it.
    SplitMix64 rng(42);
    for (unsigned round = 0; round < 50; ++round) {
        const std::vector<double> u = uunifastDiscard(rng, 2, 1.8);
        double sum = 0.0;
        for (double ui : u) {
            EXPECT_LE(ui, 1.0);
            sum += ui;
        }
        EXPECT_NEAR(sum, 1.8, 1e-9);
    }
}

TEST(TasksetGen, PeriodsStayInLogUniformBounds)
{
    TasksetParams p;
    p.tasks = 7;
    p.totalUtil = 0.7;
    p.periodMinTicks = 10;
    p.periodMaxTicks = 100;
    std::set<unsigned> seen;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const Taskset ts = makeTaskset(seed, p);
        for (const SchedTask &t : ts.tasks) {
            EXPECT_GE(t.periodTicks, p.periodMinTicks);
            EXPECT_LE(t.periodTicks, p.periodMaxTicks);
            EXPECT_EQ(t.deadlineTicks, t.periodTicks);
            seen.insert(t.periodTicks);
        }
    }
    // Log-uniform over [10, 100] must populate both decades.
    EXPECT_GT(seen.size(), 10u);
    EXPECT_LT(*seen.begin(), 20u);
    EXPECT_GT(*seen.rbegin(), 60u);
}

TEST(TasksetGen, RateMonotonicDistinctPriorities)
{
    TasksetParams p;
    p.tasks = 5;
    const Taskset ts = makeTaskset(17, p);
    std::set<unsigned> prios;
    for (size_t i = 1; i < ts.tasks.size(); ++i) {
        EXPECT_LE(ts.tasks[i - 1].periodTicks, ts.tasks[i].periodTicks);
        EXPECT_GT(ts.tasks[i - 1].priority, ts.tasks[i].priority);
    }
    for (const SchedTask &t : ts.tasks) {
        EXPECT_GE(t.priority, 1u);
        EXPECT_LE(t.priority, 7u);
        prios.insert(t.priority);
    }
    EXPECT_EQ(prios.size(), ts.tasks.size());
}

TEST(TasksetGen, SeedDeterminismAndDecorrelation)
{
    TasksetParams p;
    const Taskset a = makeTaskset(tasksetSeed(5, 2, 3), p);
    const Taskset b = makeTaskset(tasksetSeed(5, 2, 3), p);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t i = 0; i < a.tasks.size(); ++i) {
        EXPECT_EQ(a.tasks[i].util, b.tasks[i].util);
        EXPECT_EQ(a.tasks[i].periodTicks, b.tasks[i].periodTicks);
    }
    // Neighbouring grid coordinates draw different seeds.
    std::set<std::uint64_t> seeds;
    for (unsigned ui = 0; ui < 4; ++ui)
        for (unsigned ti = 0; ti < 8; ++ti)
            seeds.insert(tasksetSeed(5, ui, ti));
    EXPECT_EQ(seeds.size(), 32u);
}

// Classic Liu-Layland boundary set: T=(4,6,12), C=(1,2,3) converges
// to R=(1,3,10) under zero overheads.
TEST(Rta, GoldenLiuLaylandResponseTimes)
{
    const std::vector<RtaTask> tasks = {
        {1.0, 4.0, 4.0}, {2.0, 6.0, 6.0}, {3.0, 12.0, 12.0}};
    const RtaResult r = responseTimeAnalysis(tasks, {});
    ASSERT_TRUE(r.schedulable);
    EXPECT_DOUBLE_EQ(r.tasks[0].responseCycles, 1.0);
    EXPECT_DOUBLE_EQ(r.tasks[1].responseCycles, 3.0);
    EXPECT_DOUBLE_EQ(r.tasks[2].responseCycles, 10.0);
}

TEST(Rta, GoldenUnschedulablePair)
{
    // U = 1.0 but non-harmonic: the low task's recurrence crosses its
    // deadline of 3 (fixpoint would be 3.5).
    const std::vector<RtaTask> tasks = {{1.0, 2.0, 2.0},
                                        {1.5, 3.0, 3.0}};
    const RtaResult r = responseTimeAnalysis(tasks, {});
    EXPECT_TRUE(r.tasks[0].schedulable);
    EXPECT_FALSE(r.tasks[1].schedulable);
    EXPECT_FALSE(r.schedulable);
}

TEST(Rta, GoldenHarmonicFullUtilization)
{
    // Harmonic periods are schedulable at exactly U = 1 — and any
    // nonzero switch overhead must break that boundary case.
    const std::vector<RtaTask> tasks = {
        {1.0, 2.0, 2.0}, {1.0, 4.0, 4.0}, {2.0, 8.0, 8.0}};
    const RtaResult clean = responseTimeAnalysis(tasks, {});
    ASSERT_TRUE(clean.schedulable);
    EXPECT_DOUBLE_EQ(clean.tasks[2].responseCycles, 8.0);

    RtaOverheads oh;
    oh.switchCost = 0.01;
    EXPECT_FALSE(responseTimeAnalysis(tasks, oh).schedulable);
}

TEST(Rta, TickInterferenceCharged)
{
    // One task, C=5, D=T=10, tick ISR of 3 cycles every 4 cycles:
    // R = 5 + 2*ceil(R/4)*... -> R0=5 -> 5+2*3=11 > 10? iterate:
    // ceil(5/4)=2 -> 5+6=11 > D -> unschedulable. Without the tick
    // term it is trivially schedulable.
    const std::vector<RtaTask> tasks = {{5.0, 10.0, 10.0}};
    RtaOverheads oh;
    oh.tickCost = 3.0;
    oh.tickPeriodCycles = 4.0;
    EXPECT_FALSE(responseTimeAnalysis(tasks, oh).schedulable);
    EXPECT_TRUE(responseTimeAnalysis(tasks, {}).schedulable);
}

TEST(Rta, BreakdownUtilizationMonotoneInOverheads)
{
    TasksetParams p;
    p.tasks = 4;
    p.totalUtil = 1.0;
    const Taskset shape = makeTaskset(11, p);

    const double clean = breakdownUtilization(shape, {}, 1000.0);
    RtaOverheads oh;
    oh.switchCost = 50.0;
    oh.tickCost = 40.0;
    oh.tickPeriodCycles = 1000.0;
    const double loaded = breakdownUtilization(shape, oh, 1000.0);
    EXPECT_GT(clean, 0.5);
    EXPECT_LE(clean, 1.0 + 1e-9);
    EXPECT_LT(loaded, clean);
    EXPECT_GT(loaded, 0.0);

    // Harmonic shape with zero overheads saturates at U = 1.
    Taskset harmonic;
    harmonic.tasks = {{0.5, 2, 2, 7}, {0.25, 4, 4, 6}, {0.25, 8, 8, 5}};
    EXPECT_NEAR(breakdownUtilization(harmonic, {}, 1000.0), 1.0, 5e-3);
}

TEST(Lower, HorizonAndExpectedJobs)
{
    TasksetParams tp;
    tp.tasks = 3;
    const Taskset ts = makeTaskset(3, tp);
    LowerParams p;
    unsigned maxT = 0;
    for (const SchedTask &t : ts.tasks)
        maxT = std::max(maxT, t.periodTicks);
    EXPECT_EQ(horizonTicksFor(ts, p), p.phaseTicks + 4 * maxT);

    SchedTask t;
    t.periodTicks = 10;
    t.deadlineTicks = 10;
    EXPECT_EQ(expectedJobs(t, p, 42u), 4u);  // releases at 2,12,22,32
    EXPECT_EQ(expectedJobs(t, p, 2u), 0u);
    EXPECT_EQ(expectedJobs(t, p, 13u), 2u);
}

TEST(Lower, CalibrationIsSaneAndDeterministic)
{
    const RtosUnitConfig unit = RtosUnitConfig::fromName("vanilla");
    const BusyCalibration a =
        calibrateBusy(CoreKind::kCv32e40p, unit, 1000);
    const BusyCalibration b =
        calibrateBusy(CoreKind::kCv32e40p, unit, 1000);
    EXPECT_EQ(a.cyclesPerIter, b.cyclesPerIter);
    EXPECT_EQ(a.perJobOverheadCycles, b.perJobOverheadCycles);
    EXPECT_GT(a.cyclesPerIter, 0.5);
    EXPECT_LT(a.cyclesPerIter, 100.0);
    EXPECT_GE(a.perJobOverheadCycles, 0.0);
    EXPECT_LT(a.perJobOverheadCycles, 20000.0);
}

// A light taskset must run to completion with zero deadline misses on
// both scheduler families (software delay list and the hardware
// delay list driven through the new k_delay_until path).
TEST(Lower, LightTasksetMeetsEveryDeadline)
{
    TasksetParams tp;
    tp.tasks = 3;
    tp.totalUtil = 0.3;
    const Taskset ts = makeTaskset(tasksetSeed(9, 0, 0), tp);
    LowerParams p;

    for (const char *cfg : {"vanilla", "SLT"}) {
        const RtosUnitConfig unit = RtosUnitConfig::fromName(cfg);
        const BusyCalibration cal =
            calibrateBusy(CoreKind::kCv32e40p, unit, 1000);
        const auto w = lowerTaskset(ts, p, cal, "sched_test");

        RunOptions opts;
        std::vector<GuestEvent> events;
        opts.postRun = [&events](Simulation &sim) {
            events = sim.hostIo().events();
        };
        const RunResult rr =
            runWorkload(CoreKind::kCv32e40p, unit, *w, opts);
        ASSERT_TRUE(rr.ok) << cfg << ": " << rr.diagnostic;

        const DeadlineReport report =
            checkDeadlines(events, ts, p, horizonTicksFor(ts, p));
        EXPECT_GT(report.jobsExpected, 0u) << cfg;
        EXPECT_EQ(report.jobsDone, report.jobsExpected) << cfg;
        EXPECT_EQ(report.misses, 0u) << cfg;
        EXPECT_GT(report.maxNormResponse, 0.0) << cfg;
        EXPECT_LE(report.maxNormResponse, 1.0) << cfg;
    }
}

TEST(Campaign, ThreadCountByteIdentity)
{
    SchedCampaignSpec spec;
    spec.cores = {CoreKind::kCv32e40p};
    spec.configs = {RtosUnitConfig::fromName("vanilla")};
    spec.utilGrid = {0.4, 0.7};
    spec.tasksetsPerUtil = 2;
    spec.taskset.tasks = 3;
    spec.seed = 21;

    spec.threads = 1;
    const SchedCampaignResult r1 = runSchedCampaign(spec);
    spec.threads = 4;
    const SchedCampaignResult r4 = runSchedCampaign(spec);

    std::ostringstream o1, o4;
    spec.threads = 1;
    writeSchedJsonl(o1, spec, r1);
    writeSchedJsonl(o4, spec, r4);
    EXPECT_EQ(o1.str(), o4.str());
    EXPECT_EQ(r1.points.size(), 4u);
    EXPECT_EQ(r1.soundnessViolations, 0u);
}

TEST(Workloads, UnknownNameListsAvailableWorkloads)
{
    EXPECT_DEATH(makeWorkload("no_such_workload", 1),
                 "unknown workload 'no_such_workload' \\(available: "
                 "yield_pingpong, round_robin");
}

} // namespace
} // namespace rtu
