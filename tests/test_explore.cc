/** Co-exploration engine tests: Pareto dominance properties,
 *  constraint parsing and queries, the analytical prefilter, and the
 *  persistent result cache (cold -> warm gives a byte-identical
 *  frontier with zero simulations, >= 10x faster). */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "common/logging.hh"
#include "explore/cache.hh"
#include "explore/explorer.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

DesignEval
synthetic(double mean, double jitter, double area, double fmax = 1.0,
          double power = 1.0)
{
    DesignEval e;
    e.ok = true;
    e.latMean = mean;
    e.latJitter = jitter;
    e.areaNorm = area;
    e.fmaxGHz = fmax;
    e.powerMw = power;
    return e;
}

const std::vector<Objective> kLatArea = {Objective::kLatMean,
                                         Objective::kArea};

TEST(Pareto, DominanceIsStrict)
{
    const DesignEval a = synthetic(10, 5, 1.0);
    const DesignEval b = synthetic(20, 5, 1.2);
    const DesignEval c = synthetic(10, 5, 1.0);  // equal to a
    EXPECT_TRUE(dominates(a, b, kLatArea));
    EXPECT_FALSE(dominates(b, a, kLatArea));
    EXPECT_FALSE(dominates(a, c, kLatArea));  // equality never dominates
    EXPECT_FALSE(dominates(c, a, kLatArea));
}

TEST(Pareto, FmaxIsMaximized)
{
    const DesignEval slow = synthetic(10, 5, 1.0, 0.9);
    const DesignEval fast = synthetic(10, 5, 1.0, 1.4);
    EXPECT_TRUE(dominates(fast, slow,
                          {Objective::kLatMean, Objective::kFmax}));
    EXPECT_FALSE(dominates(slow, fast,
                           {Objective::kLatMean, Objective::kFmax}));
}

TEST(Pareto, MissingWcetNeverBeatsAPresentOne)
{
    DesignEval bounded = synthetic(10, 5, 1.0);
    bounded.hasWcet = true;
    bounded.wcetCycles = 1000;
    DesignEval unbounded = synthetic(10, 5, 1.0);
    EXPECT_TRUE(dominates(bounded, unbounded,
                          {Objective::kLatMean, Objective::kWcet}));
    EXPECT_FALSE(dominates(unbounded, bounded,
                           {Objective::kLatMean, Objective::kWcet}));
}

TEST(Pareto, FrontierPropertyOnRandomPoints)
{
    // Property test: no frontier point is dominated, and every
    // dropped point is dominated by some frontier member.
    std::mt19937 rng(0xc0de);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::vector<DesignEval> evals;
    for (int i = 0; i < 200; ++i)
        evals.push_back(synthetic(u(rng), u(rng), u(rng), u(rng)));
    // Inject duplicates: equal points must both survive.
    evals.push_back(evals[0]);

    const std::vector<Objective> objs = {Objective::kLatMean,
                                         Objective::kLatJitter,
                                         Objective::kArea,
                                         Objective::kFmax};
    const std::vector<size_t> front = paretoFrontier(evals, objs);
    ASSERT_FALSE(front.empty());

    std::vector<bool> onFront(evals.size(), false);
    for (size_t i : front)
        onFront[i] = true;

    for (size_t i = 0; i < evals.size(); ++i) {
        if (onFront[i]) {
            for (size_t j = 0; j < evals.size(); ++j)
                EXPECT_FALSE(dominates(evals[j], evals[i], objs))
                    << "frontier point " << i << " dominated by " << j;
        } else {
            bool dominatedByFront = false;
            for (size_t j : front)
                dominatedByFront =
                    dominatedByFront || dominates(evals[j], evals[i], objs);
            EXPECT_TRUE(dominatedByFront)
                << "dropped point " << i
                << " not dominated by any frontier member";
        }
    }
}

TEST(Pareto, NonDominatedRankLayersConsistently)
{
    // A chain a > b > c plus one incomparable point.
    std::vector<DesignEval> evals = {
        synthetic(1, 1, 1.0),   // rank 0
        synthetic(2, 2, 1.1),   // rank 1 (dominated only by [0])
        synthetic(3, 3, 1.2),   // rank 2
        synthetic(0.5, 9, 2.0), // rank 0 (best mean, worst area)
    };
    const std::vector<Objective> objs = {Objective::kLatMean,
                                         Objective::kArea};
    const std::vector<unsigned> rank = nonDominatedRank(evals, objs);
    EXPECT_EQ(rank[0], 0u);
    EXPECT_EQ(rank[1], 1u);
    EXPECT_EQ(rank[2], 2u);
    EXPECT_EQ(rank[3], 0u);
    const std::vector<size_t> front = paretoFrontier(evals, objs);
    EXPECT_EQ(front, (std::vector<size_t>{0, 3}));
}

TEST(Constraints, ParseAndPrint)
{
    const Constraint area = parseConstraint("area<=1.35");
    EXPECT_EQ(area.obj, Objective::kArea);
    EXPECT_TRUE(area.isUpperBound);
    EXPECT_DOUBLE_EQ(area.bound, 1.35);
    EXPECT_FALSE(area.relativeToVanilla);
    EXPECT_TRUE(area.analytic());
    EXPECT_EQ(area.str(), "area<=1.35");

    const Constraint fmax = parseConstraint("fmax>=0.9x");
    EXPECT_EQ(fmax.obj, Objective::kFmax);
    EXPECT_FALSE(fmax.isUpperBound);
    EXPECT_TRUE(fmax.relativeToVanilla);
    EXPECT_EQ(fmax.str(), "fmax>=0.9x");

    const Constraint jitter = parseConstraint("jitter<=20");
    EXPECT_EQ(jitter.obj, Objective::kLatJitter);
    EXPECT_FALSE(jitter.analytic());
}

TEST(ConstraintsDeath, MalformedInputIsFatal)
{
    EXPECT_DEATH(parseConstraint("area=1.35"), "malformed");
    EXPECT_DEATH(parseConstraint("area<=abc"), "malformed");
    EXPECT_DEATH(parseConstraint("frobs<=1"), "unknown objective");
    EXPECT_DEATH(parseConstraint("lat_mean<=100x"), "relative bound");
}

TEST(Constraints, SelectBestHonorsBoundsAndTieBreaksByOrder)
{
    std::vector<DesignEval> evals = {
        synthetic(50, 10, 1.5),  // infeasible: area
        synthetic(80, 10, 1.2),
        synthetic(60, 10, 1.3),
        synthetic(60, 10, 1.1),  // same mean as [2]: earlier wins -> [2]
    };
    const std::vector<Constraint> cs = {parseConstraint("area<=1.35")};
    EXPECT_EQ(selectBest(evals, Objective::kLatMean, cs), 2u);
    // Without constraints the global optimum wins.
    EXPECT_EQ(selectBest(evals, Objective::kLatMean, {}), 0u);
    // Failed runs are never selected.
    evals[2].ok = evals[3].ok = false;
    EXPECT_EQ(selectBest(evals, Objective::kLatMean, cs), 1u);
    // An unsatisfiable bound yields no selection.
    EXPECT_EQ(selectBest(evals, Objective::kLatMean,
                         {parseConstraint("area<=0.5")}),
              SIZE_MAX);
}

class ExploreEngine : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuiet(true);
        char tmpl[] = "/tmp/rtu_explore_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    /** Small but real spec: 2 configs x 2 workloads on CV32E40P. */
    ExploreSpec
    smallSpec() const
    {
        ExploreSpec spec;
        spec.cores = {CoreKind::kCv32e40p};
        spec.units = {RtosUnitConfig::vanilla(),
                      RtosUnitConfig::fromName("SLT")};
        spec.workloads = {"mutex_workload", "yield_pingpong"};
        spec.iterations = 5;
        spec.threads = 2;
        spec.cacheDir = dir_;
        return spec;
    }

    static std::string
    report(const ExploreSpec &spec, const std::vector<DesignEval> &evals)
    {
        // Fixed stats: the report must compare across cold/warm runs.
        std::ostringstream os;
        writeExploreJson(os, spec, evals,
                         {Objective::kLatMean, Objective::kLatJitter,
                          Objective::kArea},
                         ExploreStats(), SIZE_MAX);
        return os.str();
    }

    std::string dir_;
};

TEST_F(ExploreEngine, ColdThenWarmCacheIsByteIdenticalAndTenTimesFaster)
{
    using clock = std::chrono::steady_clock;
    // Enough cold simulation work (3 configs x full suite x 40
    // iterations, single-threaded) that the >= 10x timing assertion
    // has real margin: warm-side cost is one small file parse and
    // barely grows with the grid.
    ExploreSpec spec = smallSpec();
    spec.units = {RtosUnitConfig::vanilla(),
                  RtosUnitConfig::fromName("T"),
                  RtosUnitConfig::fromName("SLT")};
    spec.workloads.clear();  // full standard suite
    spec.iterations = 40;
    spec.threads = 1;
    const size_t nPoints = 3 * standardWorkloadNames().size();

    const auto t0 = clock::now();
    Explorer cold(spec);
    const auto coldEvals = cold.evaluate();
    const auto t1 = clock::now();
    ASSERT_EQ(coldEvals.size(), 3u);
    EXPECT_TRUE(coldEvals[0].ok);
    EXPECT_EQ(cold.stats().sweepPoints, nPoints);
    EXPECT_EQ(cold.stats().simulated, nPoints);
    EXPECT_EQ(cold.stats().cacheHits, 0u);

    const auto t2 = clock::now();
    Explorer warm(spec);
    const auto warmEvals = warm.evaluate();
    const auto t3 = clock::now();
    // Zero simulations: everything served from the JSONL cache.
    EXPECT_EQ(warm.stats().simulated, 0u);
    EXPECT_EQ(warm.stats().cacheHits, nPoints);

    // Byte-identical frontier and evaluations.
    EXPECT_EQ(report(spec, coldEvals), report(spec, warmEvals));
    std::ostringstream mdCold, mdWarm;
    writeFrontierMarkdown(mdCold, coldEvals, kLatArea);
    writeFrontierMarkdown(mdWarm, warmEvals, kLatArea);
    EXPECT_EQ(mdCold.str(), mdWarm.str());

    // The cache must buy at least 10x (in practice it's 100x+: file
    // parse vs cycle-level simulation of four workload runs).
    const auto coldUs =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0);
    const auto warmUs =
        std::chrono::duration_cast<std::chrono::microseconds>(t3 - t2);
    EXPECT_GE(coldUs.count(), 10 * warmUs.count())
        << "cold " << coldUs.count() << "us vs warm "
        << warmUs.count() << "us";
}

TEST_F(ExploreEngine, CacheToleratesCorruptAndForeignSchemaLines)
{
    const ExploreSpec spec = smallSpec();
    Explorer(spec).evaluate();

    {
        std::ofstream os(dir_ + "/results.jsonl", std::ios::app);
        os << "this is not json\n";
        os << "{\"v\":999,\"key\":\"future/schema\",\"ok\":true}\n";
        os << "{\"v\":1,\"key\":\"truncated";  // no newline, cut short
    }
    Explorer warm(spec);
    EXPECT_EQ(warm.evaluate().size(), 2u);
    EXPECT_EQ(warm.stats().simulated, 0u);
    EXPECT_EQ(warm.stats().cacheHits, 4u);
}

TEST_F(ExploreEngine, CacheFileStartsWithASchemaHeaderTheLoaderChecks)
{
    const ExploreSpec spec = smallSpec();
    Explorer(spec).evaluate();

    // Fresh cache files lead with the schema-stamped header object
    // (the sweep benches' --out convention); the loader asserts its
    // shape and position before trusting any entry.
    std::ifstream is(dir_ + "/results.jsonl");
    std::string first;
    ASSERT_TRUE(std::getline(is, first));
    EXPECT_EQ(first,
              csprintf("{\"schema\":%u,\"bench\":\"explore_cache\"}",
                       ResultCache::kSchemaVersion));

    // A warm explorer still serves everything from the cache.
    Explorer warm(spec);
    warm.evaluate();
    EXPECT_EQ(warm.stats().simulated, 0u);

    // A file stamped by another writer generation loads no entries:
    // its header (and every line after it) is another schema.
    const std::string foreign = dir_ + "/foreign";
    std::filesystem::create_directories(foreign);
    {
        std::ofstream os(foreign + "/results.jsonl");
        os << "{\"schema\":999,\"bench\":\"explore_cache\"}\n";
        os << "{\"v\":999,\"key\":\"future/entry\",\"ok\":true}\n";
    }
    ResultCache other(foreign);
    EXPECT_EQ(other.size(), 0u);
}

TEST_F(ExploreEngine, CacheRoundTripsNonFiniteSamplesAsNull)
{
    // Regression: non-finite samples used to serialize through printf
    // as bare `inf`/`nan`, corrupting the JSONL stream. They now
    // serialize as JSON null and load back as quiet NaN — same sample
    // count, finite neighbors untouched.
    SweepPoint point;
    point.core = CoreKind::kCv32e40p;
    point.unit = RtosUnitConfig::vanilla();
    point.workload = "mutex_workload";
    point.iterations = 5;

    CachedRun run;
    run.ok = true;
    run.cycles = 1234;
    run.switchSamples = {42.0,
                         std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         7.5};
    {
        ResultCache cache(dir_);
        cache.insert(point, run);
    }
    ResultCache reloaded(dir_);
    CachedRun back;
    ASSERT_TRUE(reloaded.lookup(point, &back));
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.cycles, 1234u);
    ASSERT_EQ(back.switchSamples.size(), 4u);
    EXPECT_DOUBLE_EQ(back.switchSamples[0], 42.0);
    EXPECT_TRUE(std::isnan(back.switchSamples[1]));
    EXPECT_TRUE(std::isnan(back.switchSamples[2]));  // null loses sign
    EXPECT_DOUBLE_EQ(back.switchSamples[3], 7.5);
    // The file itself never contains a bare inf/nan token.
    std::ifstream is(reloaded.filePath());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_NE(text.find("null"), std::string::npos);
}

TEST_F(ExploreEngine, AnalyticPrefilterSkipsBeforeSimulating)
{
    ExploreSpec spec = smallSpec();
    spec.units = {RtosUnitConfig::vanilla(),
                  RtosUnitConfig::fromName("SPLIT")};
    // SPLIT on CV32E40P costs ~+47 % area: an area<=1.01 bound prunes
    // it from the grid before any simulation is spent on it.
    spec.constraints = {parseConstraint("area<=1.01")};
    Explorer ex(spec);
    const auto evals = ex.evaluate();
    EXPECT_EQ(ex.stats().designPoints, 2u);
    EXPECT_EQ(ex.stats().prefiltered, 1u);
    EXPECT_EQ(ex.stats().sweepPoints, 2u);  // vanilla's workloads only
    EXPECT_EQ(ex.stats().simulated, 2u);
    ASSERT_EQ(evals.size(), 1u);
    EXPECT_TRUE(evals[0].id.unit.isVanilla());
}

TEST_F(ExploreEngine, CtxQueueAxisOnlyExpandsOnNax)
{
    ExploreSpec spec = smallSpec();
    spec.units = {RtosUnitConfig::vanilla()};
    spec.workloads = {"yield_pingpong"};
    spec.iterations = 2;
    spec.ctxQueueDepths = {4, 8};
    Explorer ex(spec);
    // The ctxQueue is a NaxRiscv LSU structure; CV32E40P evaluates one
    // design point, not one per depth.
    EXPECT_EQ(ex.evaluate().size(), 1u);
    EXPECT_EQ(ex.stats().designPoints, 1u);
}

TEST_F(ExploreEngine, AcceptanceQuerySelectsSltClassOnCv32e40p)
{
    // The paper's Section 6 recommendation, as a constrained query:
    // "minimize mean latency subject to area <= +35 %" on CV32E40P
    // must land on an SLT-class configuration (hardware store + load
    // + scheduling) — SPLIT is priced out, vanilla/CV32RT/S/SL/T are
    // out-performed.
    ExploreSpec spec = smallSpec();
    spec.units = RtosUnitConfig::latencyConfigs();
    spec.workloads = {"mutex_workload", "yield_pingpong"};
    spec.iterations = 4;
    spec.threads = 4;
    spec.constraints = {parseConstraint("area<=1.35")};
    Explorer ex(spec);
    const auto evals = ex.evaluate();
    // SPLIT (~+47 %) is the one analytically pruned configuration.
    EXPECT_EQ(ex.stats().prefiltered, 1u);

    const size_t best =
        selectBest(evals, Objective::kLatMean, spec.constraints);
    ASSERT_NE(best, SIZE_MAX);
    const RtosUnitConfig &u = evals[best].id.unit;
    EXPECT_TRUE(u.store && u.load && u.sched)
        << "expected an SLT-class config, got " << u.name();

    // The frontier over {lat_mean, jitter, area} contains no
    // dominated point (acceptance criterion).
    const std::vector<Objective> objs = {Objective::kLatMean,
                                         Objective::kLatJitter,
                                         Objective::kArea};
    const auto front = paretoFrontier(evals, objs);
    for (size_t i : front) {
        for (size_t j = 0; j < evals.size(); ++j)
            EXPECT_FALSE(dominates(evals[j], evals[i], objs));
    }
    // The winning SLT-class point is itself Pareto-optimal, and
    // vanilla sits on the frontier too — as the unique minimum-area
    // point it can't be dominated once area is an objective, yet the
    // constrained query never picks it (the whole reason queries, not
    // raw frontiers, drive the paper's recommendations).
    EXPECT_NE(std::find(front.begin(), front.end(), best), front.end());
    EXPECT_FALSE(evals[best].id.unit.isVanilla());

    // Adding the paper's hard-real-time lens (tight jitter) narrows
    // the pick to (SLT) itself: SDLOT trades jitter for mean.
    std::vector<Constraint> rt = spec.constraints;
    rt.push_back(parseConstraint("jitter<=20"));
    const size_t rtBest = selectBest(evals, Objective::kLatMean, rt);
    if (rtBest != SIZE_MAX) {
        const RtosUnitConfig &ru = evals[rtBest].id.unit;
        EXPECT_TRUE(ru.sched) << "hard-RT pick must use hardware "
                                 "scheduling, got " << ru.name();
    }
}

TEST_F(ExploreEngine, SchedUtilObjectiveRanksFasterSwitchPathsHigher)
{
    // The schedulability axis: with the sched-util objective enabled,
    // every evaluated point carries a breakdown utilization computed
    // from its own measured switch path, and the hardware-assisted
    // SLT configuration admits strictly more schedulable load than
    // vanilla (its margined switch maximum is several times smaller).
    ExploreSpec spec = smallSpec();
    spec.schedTasksets = 4;
    spec.schedSeed = 7;
    Explorer ex(spec);
    const auto evals = ex.evaluate();
    ASSERT_EQ(evals.size(), 2u);

    const DesignEval *vanilla = nullptr, *slt = nullptr;
    for (const DesignEval &e : evals) {
        if (e.id.unit.isVanilla())
            vanilla = &e;
        else
            slt = &e;
    }
    ASSERT_NE(vanilla, nullptr);
    ASSERT_NE(slt, nullptr);
    ASSERT_TRUE(vanilla->hasSchedUtil);
    ASSERT_TRUE(slt->hasSchedUtil);
    EXPECT_GT(vanilla->schedUtil, 0.0);
    EXPECT_LE(slt->schedUtil, 1.0);
    EXPECT_GT(slt->schedUtil, vanilla->schedUtil);

    // A constrained "maximize schedulable utilization" query — the
    // co-design question the subsystem exists to answer — picks the
    // hardware-assisted point.
    const std::vector<Constraint> cs = {parseConstraint("area<=1.35")};
    const size_t best =
        selectBest(evals, Objective::kSchedUtil, cs);
    ASSERT_NE(best, SIZE_MAX);
    EXPECT_FALSE(evals[best].id.unit.isVanilla());

    // Objective plumbing: name round-trip, maximized direction, and
    // the missing-value canonicalization (a never-analyzed point
    // scores worst, mirroring wcet/detect).
    EXPECT_EQ(objectiveFromName("sched-util"), Objective::kSchedUtil);
    EXPECT_TRUE(objectiveMaximized(Objective::kSchedUtil));
    DesignEval bare;
    EXPECT_TRUE(std::isinf(canonicalValue(bare,
                                          Objective::kSchedUtil)));
    EXPECT_EQ(canonicalValue(*slt, Objective::kSchedUtil),
              -slt->schedUtil);
}

} // namespace
} // namespace rtu
