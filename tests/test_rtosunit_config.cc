/** RTOSUnit configuration validity and naming tests. */

#include <gtest/gtest.h>

#include "rtosunit/config.hh"

namespace rtu {
namespace {

TEST(Config, VanillaHasNoHardware)
{
    const RtosUnitConfig c = RtosUnitConfig::vanilla();
    EXPECT_TRUE(c.isVanilla());
    EXPECT_FALSE(c.anyHardware());
    EXPECT_TRUE(c.validate());
    EXPECT_EQ(c.name(), "vanilla");
}

TEST(Config, FromNameRoundTripsPaperNames)
{
    for (const char *n : {"S", "SD", "SL", "SDLO", "T", "ST", "SDT",
                          "SLT", "SDLOT", "SPLIT", "CV32RT", "vanilla"}) {
        const RtosUnitConfig c = RtosUnitConfig::fromName(n);
        EXPECT_EQ(c.name(), n) << n;
        EXPECT_TRUE(c.validate()) << n;
    }
}

TEST(Config, SplitExpandsToStorePreloadLoadOmitSched)
{
    const RtosUnitConfig c = RtosUnitConfig::fromName("SPLIT");
    EXPECT_TRUE(c.store);
    EXPECT_TRUE(c.preload);
    EXPECT_TRUE(c.load);
    EXPECT_TRUE(c.omit);
    EXPECT_TRUE(c.sched);
    EXPECT_FALSE(c.dirty);
}

TEST(Config, ValidityRules)
{
    std::string why;

    RtosUnitConfig c;
    c.load = true;  // L without S
    EXPECT_FALSE(c.validate(&why));

    c = {};
    c.store = true;
    c.load = true;
    c.omit = true;
    EXPECT_TRUE(c.validate(&why)) << why;

    c = {};
    c.omit = true;  // O without L
    EXPECT_FALSE(c.validate(&why));

    c = {};
    c.dirty = true;  // D without S
    EXPECT_FALSE(c.validate(&why));

    c = RtosUnitConfig::fromName("SPLIT");
    c.dirty = true;  // P incompatible with D
    EXPECT_FALSE(c.validate(&why));

    c = {};
    c.cv32rt = true;
    c.store = true;  // CV32RT is standalone
    EXPECT_FALSE(c.validate(&why));

    c = {};
    c.sched = true;
    c.listSlots = 0;
    EXPECT_FALSE(c.validate(&why));
}

TEST(Config, PaperConfigListsAreValid)
{
    const auto all = RtosUnitConfig::paperConfigs();
    EXPECT_EQ(all.size(), 12u);
    for (const auto &c : all)
        EXPECT_TRUE(c.validate()) << c.name();
    const auto lat = RtosUnitConfig::latencyConfigs();
    EXPECT_EQ(lat.size(), 10u);
}

} // namespace
} // namespace rtu
