/** WCET analyzer tests on synthetic programs with known worst paths,
 *  plus ordering properties over generated kernels. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "harness/experiment.hh"
#include "kernel/kernel.hh"
#include "sim/memmap.hh"
#include "wcet/wcet.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

Program
withIsr(const std::function<void(Assembler &)> &body)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.label("k_isr");
    body(a);
    return a.finish();
}

std::uint64_t
isrWcet(const Program &p,
        const RtosUnitConfig &unit = RtosUnitConfig::vanilla())
{
    WcetAnalyzer an(p, unit);
    return an.analyzeIsr().totalCycles;
}

TEST(Wcet, StraightLineCountsEveryInstruction)
{
    const Program p = withIsr([](Assembler &a) {
        for (int i = 0; i < 10; ++i)
            a.addi(A0, A0, 1);
        a.mret();
    });
    // 4 entry + 10 alu + 5 mret.
    EXPECT_EQ(isrWcet(p), 4u + 10u + 5u);
}

TEST(Wcet, BranchTakesWorstSuccessor)
{
    const Program p = withIsr([](Assembler &a) {
        a.beq(A0, A1, "cheap");
        for (int i = 0; i < 20; ++i)
            a.addi(A0, A0, 1);
        a.label("cheap");
        a.mret();
    });
    // 4 entry + branch(3 pessimistic) + 20 alu + 5 mret.
    EXPECT_EQ(isrWcet(p), 4u + 3u + 20u + 5u);
}

TEST(Wcet, BoundedLoopMultipliesBodyCost)
{
    const Program p = withIsr([](Assembler &a) {
        a.li(T0, 5);
        a.label("loop");
        a.addi(T0, T0, -1);
        a.bnez(T0, "exit_check");
        a.j("done");
        a.label("exit_check");
        a.loopBound(5);
        a.j("loop");
        a.label("done");
        a.mret();
    });
    // The annotated back edge may execute 5 times, so the analyzer
    // admits up to 6 body executions before the exit:
    // 4 entry + li 1 + 6*(addi 1 + bnez 3) + 5*j(back) + j(done) +
    // mret 5.
    EXPECT_EQ(isrWcet(p), 4u + 1u + 6u * 4u + 5u * 2u + 2u + 5u);
}

TEST(Wcet, FunctionCallsAddCalleeCost)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.label("k_isr");
    a.call("leaf");
    a.mret();
    a.label("leaf");
    a.addi(A0, A0, 1);
    a.ret();
    const Program p = a.finish();
    // 4 entry + call(2) + [addi 1 + ret 2] + mret 5.
    EXPECT_EQ(isrWcet(p), 4u + 2u + 3u + 5u);
}

TEST(Wcet, DivAssumesWorstLatency)
{
    const Program p = withIsr([](Assembler &a) {
        a.div(A0, A1, A2);
        a.mret();
    });
    EXPECT_EQ(isrWcet(p), 4u + 35u + 5u);
}

TEST(Wcet, HardwarePathBoundsMretStallConfigs)
{
    const Program p = withIsr([](Assembler &a) {
        a.addi(A0, A0, 1);
        a.mret();
    });
    const RtosUnitConfig slt = RtosUnitConfig::fromName("SLT");
    WcetAnalyzer an(p, slt);
    const WcetResult r = an.analyzeIsr();
    // Store + restore = 62 words on the shared port dominate the
    // 1-instruction software path.
    EXPECT_EQ(r.hardwareCycles, 4u + 62u + 0u + 5u);
    EXPECT_EQ(r.totalCycles, r.hardwareCycles);
}

TEST(Wcet, ErrorPathSelfLoopTerminatesAnalysis)
{
    const Program p = withIsr([](Assembler &a) {
        a.beq(A0, A1, "fatal");
        a.mret();
        a.label("fatal");
        a.li(T0, 0xD);
        a.j("fatal");
    });
    // Analysis completes; the mret path dominates.
    EXPECT_GT(isrWcet(p), 0u);
}

// ---- ordering properties over real generated kernels ----------------

class KernelWcet : public ::testing::Test
{
  protected:
    static WcetResult
    analyze(const char *config_name)
    {
        const RtosUnitConfig unit = RtosUnitConfig::fromName(config_name);
        KernelParams kp;
        kp.unit = unit;
        kp.usesExternalIrq = true;
        KernelBuilder kb(kp);
        auto w = makeDelayWake(1);
        w->addTasks(kb);
        const Program program = kb.build();
        WcetAnalyzer an(program, unit);
        return an.analyzeIsr();
    }
};

TEST_F(KernelWcet, PaperOrderingHolds)
{
    const auto vanilla = analyze("vanilla").totalCycles;
    const auto sl = analyze("SL").totalCycles;
    const auto t = analyze("T").totalCycles;
    const auto slt = analyze("SLT").totalCycles;
    // Section 6.2: vanilla > SL > T > SLT, with a collapse of more
    // than an order of magnitude end to end.
    EXPECT_GT(vanilla, sl);
    EXPECT_GT(sl, t);
    EXPECT_GT(t, slt);
    EXPECT_GT(vanilla, 5 * slt);
}

TEST_F(KernelWcet, WcetBoundsMeasuredWorstCase)
{
    // The static bound must dominate anything actually measured.
    for (const char *name : {"vanilla", "T", "SLT"}) {
        const auto wcet = analyze(name).totalCycles;
        auto w = makeDelayWake(20);
        const RunResult run = runWorkload(
            CoreKind::kCv32e40p, RtosUnitConfig::fromName(name), *w);
        ASSERT_TRUE(run.ok);
        EXPECT_GE(wcet, static_cast<std::uint64_t>(
                            run.switchLatency.max()))
            << name;
    }
}

TEST_F(KernelWcet, SoftwareSchedulingDominatesVanillaWcet)
{
    const WcetResult r = analyze("vanilla");
    EXPECT_EQ(r.totalCycles, r.softwareCycles);
    EXPECT_EQ(r.hardwareCycles, 0u);
    EXPECT_GT(r.pathInsns, 100u);
}

TEST_F(KernelWcet, GoldenValuesPinnedAcrossRefactors)
{
    // Exact analyzer output for the delay-wake fixture, recorded from
    // the pre-shared-CFG analyzer and verified byte-identical after
    // the refactor onto src/analyze. A change here means the WCET
    // semantics moved; that must be deliberate, not a refactor side
    // effect.
    struct Golden {
        const char *config;
        std::uint64_t total, sw, hw, insns, mem;
    };
    static const Golden kGolden[] = {
        {"vanilla", 630u, 630u, 0u, 415u, 216u},
        {"CV32RT", 615u, 615u, 0u, 400u, 200u},
        {"S", 631u, 631u, 224u, 386u, 184u},
        {"SD", 631u, 631u, 224u, 386u, 184u},
        {"SL", 530u, 530u, 224u, 347u, 153u},
        {"SDLO", 530u, 530u, 224u, 347u, 153u},
        {"T", 195u, 195u, 0u, 112u, 74u},
        {"ST", 195u, 195u, 82u, 82u, 42u},
        {"SDT", 195u, 195u, 82u, 82u, 42u},
        {"SLT", 94u, 94u, 82u, 43u, 11u},
        {"SDLOT", 94u, 94u, 82u, 43u, 11u},
        {"SPLIT", 94u, 94u, 82u, 43u, 11u},
    };
    for (const Golden &g : kGolden) {
        const WcetResult r = analyze(g.config);
        EXPECT_EQ(r.totalCycles, g.total) << g.config;
        EXPECT_EQ(r.softwareCycles, g.sw) << g.config;
        EXPECT_EQ(r.hardwareCycles, g.hw) << g.config;
        EXPECT_EQ(r.pathInsns, g.insns) << g.config;
        EXPECT_EQ(r.pathMemOps, g.mem) << g.config;
    }
}

} // namespace
} // namespace rtu
