/** WCET analyzer tests on synthetic programs with known worst paths,
 *  plus ordering properties over generated kernels. */

#include <gtest/gtest.h>

#include "analyze/absint/loopbound.hh"
#include "analyze/linter.hh"
#include "asm/assembler.hh"
#include "harness/experiment.hh"
#include "kernel/kernel.hh"
#include "sim/memmap.hh"
#include "wcet/wcet.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

Program
withIsr(const std::function<void(Assembler &)> &body)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.label("k_isr");
    body(a);
    return a.finish();
}

std::uint64_t
isrWcet(const Program &p,
        const RtosUnitConfig &unit = RtosUnitConfig::vanilla())
{
    WcetAnalyzer an(p, unit);
    return an.analyzeIsr().totalCycles;
}

TEST(Wcet, StraightLineCountsEveryInstruction)
{
    const Program p = withIsr([](Assembler &a) {
        for (int i = 0; i < 10; ++i)
            a.addi(A0, A0, 1);
        a.mret();
    });
    // 4 entry + 10 alu + 5 mret.
    EXPECT_EQ(isrWcet(p), 4u + 10u + 5u);
}

TEST(Wcet, BranchTakesWorstSuccessor)
{
    const Program p = withIsr([](Assembler &a) {
        a.beq(A0, A1, "cheap");
        for (int i = 0; i < 20; ++i)
            a.addi(A0, A0, 1);
        a.label("cheap");
        a.mret();
    });
    // 4 entry + branch(3 pessimistic) + 20 alu + 5 mret.
    EXPECT_EQ(isrWcet(p), 4u + 3u + 20u + 5u);
}

TEST(Wcet, BoundedLoopMultipliesBodyCost)
{
    const Program p = withIsr([](Assembler &a) {
        a.li(T0, 5);
        a.label("loop");
        a.addi(T0, T0, -1);
        a.bnez(T0, "exit_check");
        a.j("done");
        a.label("exit_check");
        a.loopBound(5);
        a.j("loop");
        a.label("done");
        a.mret();
    });
    // The annotated back edge may execute 5 times, so the analyzer
    // admits up to 6 body executions before the exit:
    // 4 entry + li 1 + 6*(addi 1 + bnez 3) + 5*j(back) + j(done) +
    // mret 5.
    EXPECT_EQ(isrWcet(p), 4u + 1u + 6u * 4u + 5u * 2u + 2u + 5u);
}

TEST(Wcet, FunctionCallsAddCalleeCost)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.label("k_isr");
    a.call("leaf");
    a.mret();
    a.label("leaf");
    a.addi(A0, A0, 1);
    a.ret();
    const Program p = a.finish();
    // 4 entry + call(2) + [addi 1 + ret 2] + mret 5.
    EXPECT_EQ(isrWcet(p), 4u + 2u + 3u + 5u);
}

TEST(Wcet, DivAssumesWorstLatency)
{
    const Program p = withIsr([](Assembler &a) {
        a.div(A0, A1, A2);
        a.mret();
    });
    EXPECT_EQ(isrWcet(p), 4u + 35u + 5u);
}

TEST(Wcet, HardwarePathBoundsMretStallConfigs)
{
    const Program p = withIsr([](Assembler &a) {
        a.addi(A0, A0, 1);
        a.mret();
    });
    const RtosUnitConfig slt = RtosUnitConfig::fromName("SLT");
    WcetAnalyzer an(p, slt);
    const WcetResult r = an.analyzeIsr();
    // Store + restore = 62 words on the shared port dominate the
    // 1-instruction software path.
    EXPECT_EQ(r.hardwareCycles, 4u + 62u + 0u + 5u);
    EXPECT_EQ(r.totalCycles, r.hardwareCycles);
}

TEST(Wcet, ErrorPathSelfLoopTerminatesAnalysis)
{
    const Program p = withIsr([](Assembler &a) {
        a.beq(A0, A1, "fatal");
        a.mret();
        a.label("fatal");
        a.li(T0, 0xD);
        a.j("fatal");
    });
    // Analysis completes; the mret path dominates.
    EXPECT_GT(isrWcet(p), 0u);
}

// ---- ordering properties over real generated kernels ----------------

class KernelWcet : public ::testing::Test
{
  protected:
    static WcetResult
    analyze(const char *config_name)
    {
        const RtosUnitConfig unit = RtosUnitConfig::fromName(config_name);
        KernelParams kp;
        kp.unit = unit;
        kp.usesExternalIrq = true;
        KernelBuilder kb(kp);
        auto w = makeDelayWake(1);
        w->addTasks(kb);
        const Program program = kb.build();
        WcetAnalyzer an(program, unit);
        return an.analyzeIsr();
    }
};

TEST_F(KernelWcet, PaperOrderingHolds)
{
    const auto vanilla = analyze("vanilla").totalCycles;
    const auto sl = analyze("SL").totalCycles;
    const auto t = analyze("T").totalCycles;
    const auto slt = analyze("SLT").totalCycles;
    // Section 6.2: vanilla > SL > T > SLT, with a collapse of more
    // than an order of magnitude end to end.
    EXPECT_GT(vanilla, sl);
    EXPECT_GT(sl, t);
    EXPECT_GT(t, slt);
    EXPECT_GT(vanilla, 5 * slt);
}

TEST_F(KernelWcet, WcetBoundsMeasuredWorstCase)
{
    // The static bound must dominate anything actually measured.
    for (const char *name : {"vanilla", "T", "SLT"}) {
        const auto wcet = analyze(name).totalCycles;
        auto w = makeDelayWake(20);
        const RunResult run = runWorkload(
            CoreKind::kCv32e40p, RtosUnitConfig::fromName(name), *w);
        ASSERT_TRUE(run.ok);
        EXPECT_GE(wcet, static_cast<std::uint64_t>(
                            run.switchLatency.max()))
            << name;
    }
}

TEST_F(KernelWcet, SoftwareSchedulingDominatesVanillaWcet)
{
    const WcetResult r = analyze("vanilla");
    EXPECT_EQ(r.totalCycles, r.softwareCycles);
    EXPECT_EQ(r.hardwareCycles, 0u);
    EXPECT_GT(r.pathInsns, 100u);
}

TEST_F(KernelWcet, GoldenValuesPinnedAcrossRefactors)
{
    // Exact analyzer output for the delay-wake fixture, recorded from
    // the pre-shared-CFG analyzer and verified byte-identical after
    // the refactor onto src/analyze. A change here means the WCET
    // semantics moved; that must be deliberate, not a refactor side
    // effect.
    struct Golden {
        const char *config;
        std::uint64_t total, sw, hw, insns, mem;
    };
    static const Golden kGolden[] = {
        {"vanilla", 630u, 630u, 0u, 415u, 216u},
        {"CV32RT", 615u, 615u, 0u, 400u, 200u},
        {"S", 631u, 631u, 224u, 386u, 184u},
        {"SD", 631u, 631u, 224u, 386u, 184u},
        {"SL", 530u, 530u, 224u, 347u, 153u},
        {"SDLO", 530u, 530u, 224u, 347u, 153u},
        {"T", 195u, 195u, 0u, 112u, 74u},
        {"ST", 195u, 195u, 82u, 82u, 42u},
        {"SDT", 195u, 195u, 82u, 82u, 42u},
        {"SLT", 94u, 94u, 82u, 43u, 11u},
        {"SDLOT", 94u, 94u, 82u, 43u, 11u},
        {"SPLIT", 94u, 94u, 82u, 43u, 11u},
    };
    for (const Golden &g : kGolden) {
        const WcetResult r = analyze(g.config);
        EXPECT_EQ(r.totalCycles, g.total) << g.config;
        EXPECT_EQ(r.softwareCycles, g.sw) << g.config;
        EXPECT_EQ(r.hardwareCycles, g.hw) << g.config;
        EXPECT_EQ(r.pathInsns, g.insns) << g.config;
        EXPECT_EQ(r.pathMemOps, g.mem) << g.config;
    }
}

// ---- abstract-interpretation facts (src/analyze/absint) --------------

TEST(WcetFacts, InfeasibleBranchPruningTightensTheBound)
{
    // The expensive path is guarded by a branch the interval analysis
    // refutes: annotation-only WCET must charge it, facts-aware WCET
    // must not.
    const Program p = withIsr([](Assembler &a) {
        a.li(T0, 0);
        a.bne(T0, Zero, "slow");  // t0 == 0: never taken
        a.mret();
        a.label("slow");
        for (int i = 0; i < 50; ++i)
            a.nop();
        a.mret();
    });

    const std::uint64_t plain = isrWcet(p);
    WcetAnalyzer an(p, RtosUnitConfig::vanilla());
    an.setFacts(deriveAbsintFacts(p));
    const std::uint64_t pruned = an.analyzeIsr().totalCycles;
    EXPECT_LT(pruned, plain);
    EXPECT_GT(pruned, 0u);
}

TEST(WcetFacts, InferredBoundTightensAnOverwideAnnotation)
{
    // Annotated 100, provable worst case 9: the facts-aware walk must
    // budget the tighter inferred bound.
    const auto loop = [](unsigned annotation) {
        return withIsr([annotation](Assembler &a) {
            a.li(T0, 10);
            a.label("loop");
            a.addi(T0, T0, -1);
            a.loopBound(annotation);
            a.bnez(T0, "loop");
            a.mret();
        });
    };
    const Program loose = loop(100);
    const Program exact = loop(9);

    WcetAnalyzer an(loose, RtosUnitConfig::vanilla());
    an.setFacts(deriveAbsintFacts(loose));
    EXPECT_EQ(an.analyzeIsr().totalCycles, isrWcet(exact));
}

TEST(WcetFacts, GoldenInferredNeverLoosensAnyMatrixPoint)
{
    // Acceptance pin over the whole generated matrix: applying the
    // derived facts may only tighten (or match) the annotation-only
    // WCET, at every paper configuration x workload point.
    unsigned points = 0;
    forEachGeneratedProgram(
        [&](const LintPoint &point) {
            WcetAnalyzer plain(point.program, point.unit);
            const std::uint64_t base = plain.analyzeIsr().totalCycles;

            WcetAnalyzer facts(point.program, point.unit);
            facts.setFacts(deriveAbsintFacts(point.program));
            const std::uint64_t derived = facts.analyzeIsr().totalCycles;

            EXPECT_LE(derived, base)
                << point.unit.name() << "/" << point.workload;
            EXPECT_GT(derived, 0u)
                << point.unit.name() << "/" << point.workload;
            ++points;
        },
        /*include_hwsync=*/false);
    EXPECT_EQ(points, 12u * 7u);
}

} // namespace
} // namespace rtu
