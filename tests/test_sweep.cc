/** SweepRunner tests: grid expansion, determinism (same spec twice
 *  => byte-identical JSONL; serial == parallel), and the per-episode
 *  trace schema (all six phase timestamps present; hardware phases
 *  populated on hardware configurations). */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

namespace rtu {
namespace {

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p, CoreKind::kNax};
    spec.units = {RtosUnitConfig::vanilla(),
                  RtosUnitConfig::fromName("SLT")};
    spec.workloads = {"mutex_workload", "yield_pingpong"};
    spec.iterations = 4;
    return spec;
}

std::pair<std::string, std::string>
runToJsonl(const SweepSpec &spec, unsigned threads)
{
    const auto results = SweepRunner(threads).run(spec, true);
    std::ostringstream res, trc;
    writeResultsJsonl(res, results);
    writeTraceJsonl(trc, results);
    return {res.str(), trc.str()};
}

TEST(SweepSpec, ExpandsTheFullCartesianGridInStableOrder)
{
    const SweepSpec spec = smallSpec();
    const auto pts = spec.points();
    ASSERT_EQ(pts.size(), 8u);
    // Core-major nesting: first half CV32E40P, second half Nax.
    EXPECT_EQ(pts[0].core, CoreKind::kCv32e40p);
    EXPECT_EQ(pts[4].core, CoreKind::kNax);
    // unit > workload nesting inside a core.
    EXPECT_TRUE(pts[0].unit.isVanilla());
    EXPECT_EQ(pts[0].workload, "mutex_workload");
    EXPECT_EQ(pts[1].workload, "yield_pingpong");
    EXPECT_FALSE(pts[2].unit.isVanilla());
    // Seeds are deterministic and distinct per point.
    EXPECT_NE(pts[0].seed, 0u);
    EXPECT_NE(pts[0].seed, pts[1].seed);
    EXPECT_EQ(pts[0].seed, spec.points()[0].seed);
}

TEST(SweepSpecDeath, EmptyAxisPanics)
{
    SweepSpec spec = smallSpec();
    spec.workloads.clear();
    EXPECT_DEATH(spec.points(), "empty axis");
}

TEST(SweepSpecDeath, ZeroIterationsPanics)
{
    // A zero-iteration workload never reaches its exit call, so the
    // simulation would spin forever; reject it up front.
    SweepSpec spec = smallSpec();
    spec.iterations = 0;
    EXPECT_DEATH(spec.points(), "at least one iteration");
}

TEST(SweepRunner, SameSpecTwiceIsByteIdentical)
{
    setQuiet(true);
    const SweepSpec spec = smallSpec();
    const auto [res_a, trc_a] = runToJsonl(spec, 2);
    const auto [res_b, trc_b] = runToJsonl(spec, 2);
    EXPECT_FALSE(res_a.empty());
    EXPECT_FALSE(trc_a.empty());
    EXPECT_EQ(res_a, res_b);
    EXPECT_EQ(trc_a, trc_b);
}

TEST(SweepRunner, SerialAndParallelAgree)
{
    setQuiet(true);
    const SweepSpec spec = smallSpec();
    const auto [res_serial, trc_serial] = runToJsonl(spec, 1);
    const auto [res_par, trc_par] = runToJsonl(spec, 4);
    EXPECT_EQ(res_serial, res_par);
    EXPECT_EQ(trc_serial, trc_par);
}

TEST(SweepRunner, ResultsMatchTheDirectHarnessPath)
{
    setQuiet(true);
    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p};
    spec.units = {RtosUnitConfig::fromName("SLT")};
    spec.workloads = {"mutex_workload"};
    spec.iterations = 4;
    const auto results = SweepRunner(3).run(spec);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].run.ok);

    const auto w = makeWorkload("mutex_workload", 4);
    const RunResult direct =
        runWorkload(CoreKind::kCv32e40p, spec.units[0], *w);
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(results[0].run.cycles, direct.cycles);
    ASSERT_EQ(results[0].run.switchLatency.count(),
              direct.switchLatency.count());
    EXPECT_DOUBLE_EQ(results[0].run.switchLatency.mean(),
                     direct.switchLatency.mean());
    EXPECT_DOUBLE_EQ(results[0].run.switchLatency.jitter(),
                     direct.switchLatency.jitter());
}

TEST(SweepRunner, TraceCarriesAllSixPhaseTimestamps)
{
    setQuiet(true);
    SweepSpec spec;
    spec.cores = {CoreKind::kCv32e40p};
    spec.units = {RtosUnitConfig::fromName("SLT")};
    spec.workloads = {"mutex_workload"};
    spec.iterations = 4;
    const auto results = SweepRunner(1).run(spec, true);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].run.ok);
    const std::string &trace = results[0].trace;
    ASSERT_FALSE(trace.empty());

    // Every line is one episode object carrying all six phase fields.
    std::istringstream is(trace);
    std::string line;
    size_t lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        for (const char *field :
             {"\"irq_assert\":", "\"trap_taken\":", "\"store_done\":",
              "\"sched_done\":", "\"load_done\":", "\"mret\":"}) {
            EXPECT_NE(line.find(field), std::string::npos)
                << "missing " << field << " in: " << line;
        }
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    // One line per recorded episode: at least every episode that
    // entered the latency statistics (queued/preempted add more).
    EXPECT_GE(lines,
              static_cast<size_t>(
                  results[0].run.episodeLatency.count()));
    EXPECT_GT(lines, 0u);

    // On (SLT) the hardware performs store+sched+load: the phases
    // must actually be stamped (not the absent-phase null) on
    // switching episodes.
    bool sawStamped = false;
    std::istringstream is2(trace);
    while (std::getline(is2, line)) {
        if (line.find("\"store_done\":null,") == std::string::npos &&
            line.find("\"sched_done\":null,") == std::string::npos &&
            line.find("\"load_done\":null,") == std::string::npos) {
            sawStamped = true;
            break;
        }
    }
    EXPECT_TRUE(sawStamped)
        << "no episode carries all three hardware phase stamps";
}

} // namespace
} // namespace rtu
