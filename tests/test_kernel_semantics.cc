/** Scheduling-semantics tests: every RTOSUnit configuration must
 *  preserve FreeRTOS behaviour — the hardware accelerates the switch,
 *  never changes what runs. Verified through guest trace events on
 *  the CV32E40P model across all twelve paper configurations. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/hostio.hh"

namespace rtu {
namespace {

class AllConfigs : public ::testing::TestWithParam<std::string>
{
  protected:
    RunResult
    run(const std::string &workload, unsigned iterations,
        HostIo **hostio_out = nullptr)
    {
        (void)hostio_out;
        auto w = makeWorkload(workload, iterations);
        return runWorkload(CoreKind::kCv32e40p,
                           RtosUnitConfig::fromName(GetParam()), *w);
    }

    /** Run and additionally capture guest events. */
    std::vector<GuestEvent>
    runEvents(const std::string &workload, unsigned iterations,
              bool *ok = nullptr, Word timer_period = 1000)
    {
        auto w = makeWorkload(workload, iterations);
        const WorkloadInfo info = w->info();
        KernelParams kp;
        kp.unit = RtosUnitConfig::fromName(GetParam());
        kp.timerPeriodCycles = timer_period;
        kp.usesExternalIrq = info.usesExternalIrq;
        KernelBuilder kb(kp);
        w->addTasks(kb);
        const Program program = kb.build();
        SimConfig sc;
        sc.core = CoreKind::kCv32e40p;
        sc.unit = kp.unit;
        sc.timerPeriodCycles = timer_period;
        sc.maxCycles = info.maxCycles;
        Simulation sim(sc, program);
        for (Cycle at : info.extIrqSchedule)
            sim.scheduleExtIrq(at);
        const bool exited = sim.run();
        if (ok)
            *ok = exited && sim.exitCode() == 0;
        return sim.hostIo().events();
    }
};

TEST_P(AllConfigs, EveryWorkloadRunsToCompletion)
{
    for (const char *w :
         {"yield_pingpong", "round_robin", "mutex_workload",
          "delay_wake", "sem_pingpong", "priority_preempt",
          "ext_interrupt"}) {
        const RunResult r = run(w, 5);
        EXPECT_TRUE(r.ok) << w << " exit=0x" << std::hex << r.exitCode;
    }
}

TEST_P(AllConfigs, YieldPingPongAlternatesTasks)
{
    bool ok = false;
    // A long timer period keeps round-robin ticks from legitimately
    // breaking the strict yield alternation under scrutiny here.
    const auto events = runEvents("yield_pingpong", 8, &ok, 100'000);
    ASSERT_TRUE(ok);
    std::vector<Word> items;
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kWorkItem)
            items.push_back(e.value);
    }
    ASSERT_GE(items.size(), 15u);
    for (size_t i = 1; i < items.size(); ++i)
        EXPECT_NE(items[i], items[i - 1]) << "at " << i;
}

TEST_P(AllConfigs, MutexIsMutuallyExclusive)
{
    bool ok = false;
    const auto events = runEvents("mutex_workload", 6, &ok);
    ASSERT_TRUE(ok);
    // Acquire/release events must strictly alternate with matching
    // owner ids: no task acquires while another holds the mutex.
    bool held = false;
    Word holder = 0;
    unsigned acquisitions = 0;
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kMutexAcq) {
            EXPECT_FALSE(held) << "task " << e.value
                               << " acquired while task " << holder
                               << " holds the mutex";
            held = true;
            holder = e.value;
            ++acquisitions;
        } else if (e.tag == tag::kMutexRel) {
            EXPECT_TRUE(held);
            EXPECT_EQ(e.value, holder);
            held = false;
        }
    }
    EXPECT_EQ(acquisitions, 3u * 6u);
}

TEST_P(AllConfigs, EveryMutexWorkerGetsItsTurns)
{
    bool ok = false;
    const auto events = runEvents("mutex_workload", 6, &ok);
    ASSERT_TRUE(ok);
    unsigned per_task[3] = {0, 0, 0};
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kMutexAcq && e.value < 3)
            ++per_task[e.value];
    }
    for (unsigned t = 0; t < 3; ++t)
        EXPECT_EQ(per_task[t], 6u) << "task " << t;
}

TEST_P(AllConfigs, DelayedTasksSleepAtLeastTheRequestedTime)
{
    bool ok = false;
    const auto events = runEvents("delay_wake", 6, &ok);
    ASSERT_TRUE(ok);
    // Task t delays 1 + (t % 4) ticks of 1000 cycles. FreeRTOS
    // semantics (shared by the hardware delay list): a delay of N
    // ticks sleeps through at least N-1 full periods (the first
    // period is partial), and the task wakes on the N-th tick.
    std::map<Word, Cycle> last;
    for (const GuestEvent &e : events) {
        if (e.tag != tag::kWorkItem)
            continue;
        auto it = last.find(e.value);
        if (it != last.end()) {
            const Cycle ticks = 1 + (e.value % 4);
            const Cycle gap = e.cycle - it->second;
            EXPECT_GE(gap, (ticks - 1) * 1000) << "task " << e.value;
            // Low-priority tasks may additionally wait for
            // higher-priority work after waking; only runaway delays
            // are errors.
            EXPECT_LE(gap, ticks * 1000 + 8000) << "task " << e.value;
        }
        last[e.value] = e.cycle;
    }
    EXPECT_EQ(last.size(), 6u);
}

TEST_P(AllConfigs, SemaphoreNeverLosesTokens)
{
    bool ok = false;
    const auto events = runEvents("sem_pingpong", 10, &ok);
    ASSERT_TRUE(ok);
    int gives = 0;
    int takes = 0;
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kSemGive)
            ++gives;
        else if (e.tag == tag::kSemTake)
            ++takes;
        EXPECT_LE(takes, gives + 1);  // take blocks until a give
    }
    EXPECT_EQ(takes, 10);
}

TEST_P(AllConfigs, HighPriorityTaskPreemptsPeriodically)
{
    bool ok = false;
    const auto events = runEvents("priority_preempt", 8, &ok);
    ASSERT_TRUE(ok);
    std::vector<Cycle> wakes;
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kWorkItem && e.value == 0xC0)
            wakes.push_back(e.cycle);
    }
    ASSERT_EQ(wakes.size(), 8u);
    for (size_t i = 1; i < wakes.size(); ++i) {
        const Cycle gap = wakes[i] - wakes[i - 1];
        EXPECT_GE(gap, 1950u) << i;  // two ticks minus wake skew
        EXPECT_LE(gap, 3500u) << i;  // woken on the expected tick
    }
}

TEST_P(AllConfigs, ExternalInterruptWakesHandler)
{
    bool ok = false;
    const auto events = runEvents("ext_interrupt", 6, &ok);
    ASSERT_TRUE(ok);
    unsigned handled = 0;
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kWorkItem && e.value == 0xE0)
            ++handled;
    }
    EXPECT_EQ(handled, 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AllConfigs,
    ::testing::Values("vanilla", "CV32RT", "S", "SD", "SL", "SDLO", "T",
                      "ST", "SDT", "SLT", "SDLOT", "SPLIT"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace rtu
