/** SampleStats unit tests (the aggregation behind every latency
 *  number reported by the benches). */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace rtu {
namespace {

TEST(SampleStats, BasicAggregates)
{
    SampleStats s;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 25.0);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 40.0);
    EXPECT_DOUBLE_EQ(s.jitter(), 30.0);
}

TEST(SampleStats, SingleSampleHasZeroJitterAndStddev)
{
    SampleStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.jitter(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, PercentileNearestRank)
{
    SampleStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
    EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
}

TEST(SampleStats, PercentileOrderInsensitive)
{
    SampleStats s;
    for (double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(SampleStats, PercentileTrueNearestRank)
{
    // Nearest-rank: the smallest sample with rank ceil(p*n).
    SampleStats s;
    for (double v : {15.0, 20.0, 35.0, 40.0, 50.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.30), 20.0);  // ceil(1.5) = rank 2
    EXPECT_DOUBLE_EQ(s.percentile(0.40), 20.0);  // ceil(2.0) = rank 2
    EXPECT_DOUBLE_EQ(s.percentile(0.50), 35.0);  // ceil(2.5) = rank 3
    EXPECT_DOUBLE_EQ(s.percentile(1.00), 50.0);  // rank n
    EXPECT_DOUBLE_EQ(s.percentile(0.00), 15.0);  // clamped to rank 1
}

TEST(SampleStats, PercentileSingleAndTwoSampleSets)
{
    SampleStats one;
    one.add(7.0);
    for (double p : {0.0, 0.25, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(one.percentile(p), 7.0) << "p=" << p;

    SampleStats two;
    two.add(10.0);
    two.add(2.0);
    EXPECT_DOUBLE_EQ(two.percentile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(two.percentile(0.5), 2.0);   // rank ceil(1.0) = 1
    EXPECT_DOUBLE_EQ(two.percentile(0.51), 10.0); // rank ceil(1.02) = 2
    EXPECT_DOUBLE_EQ(two.percentile(1.0), 10.0);
}

TEST(SampleStats, PercentileCacheSurvivesInterleavedAdds)
{
    // The sorted view is cached; add() must invalidate it.
    SampleStats s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 9.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
}

TEST(SampleStats, MergeUpdatesPercentilesAndExtremes)
{
    SampleStats a;
    a.add(3.0);
    SampleStats b;
    b.add(1.0);
    b.add(2.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 3.0);
}

TEST(SampleStatsDeath, PercentileOutOfRangePanics)
{
    SampleStats s;
    s.add(1.0);
    EXPECT_DEATH(s.percentile(-0.1), "out of");
    EXPECT_DEATH(s.percentile(1.1), "out of");
}

TEST(SampleStats, StddevMatchesHandComputation)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    // Sample stddev of this classic set is ~2.138.
    EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(SampleStats, MergePreservesExtremes)
{
    SampleStats a;
    a.add(1.0);
    a.add(3.0);
    SampleStats b;
    b.add(100.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(SampleStats, BulkMergeEqualsElementwiseAdds)
{
    // merge() takes a bulk path (reserve + append + one sort-cache
    // invalidation); it must be observationally identical to add()ing
    // every sample one by one.
    SampleStats bulk, elementwise;
    std::vector<double> first = {5.0, 1.0, 9.0, 3.0};
    std::vector<double> second = {2.0, 8.0, 0.5, 12.0, 4.0};
    for (double v : first) {
        bulk.add(v);
        elementwise.add(v);
    }
    SampleStats other;
    for (double v : second)
        other.add(v);
    bulk.merge(other);
    for (double v : second)
        elementwise.add(v);

    EXPECT_EQ(bulk.count(), elementwise.count());
    EXPECT_DOUBLE_EQ(bulk.mean(), elementwise.mean());
    EXPECT_DOUBLE_EQ(bulk.min(), elementwise.min());
    EXPECT_DOUBLE_EQ(bulk.max(), elementwise.max());
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(bulk.percentile(p), elementwise.percentile(p))
            << "p=" << p;
}

TEST(SampleStats, MergeInvalidatesPercentileCache)
{
    SampleStats a;
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 5.0);  // populate sorted cache
    SampleStats b;
    b.add(9.0);
    b.add(1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 9.0);
}

TEST(SampleStats, MergeEmptyIsNoOp)
{
    SampleStats a;
    a.add(3.0);
    a.add(7.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 7.0);
    const SampleStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 3.0);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);

    SampleStats fresh;
    fresh.merge(empty);
    EXPECT_TRUE(fresh.empty());
}

TEST(SampleStats, AllDuplicateSamplesHaveZeroSpread)
{
    SampleStats s;
    for (int i = 0; i < 6; ++i)
        s.add(4.0);
    EXPECT_EQ(s.count(), 6u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.jitter(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    for (double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(s.percentile(p), 4.0) << "p=" << p;
}

TEST(SampleStats, MergeIntoEmptyAdoptsEverything)
{
    SampleStats empty;
    SampleStats b;
    b.add(2.0);
    b.add(8.0);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.min(), 2.0);
    EXPECT_DOUBLE_EQ(empty.max(), 8.0);
    EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
    EXPECT_DOUBLE_EQ(empty.percentile(1.0), 8.0);
}

TEST(SampleStatsDeath, EmptyAggregatesPanic)
{
    SampleStats s;
    EXPECT_DEATH(s.mean(), "empty");
    EXPECT_DEATH(s.min(), "empty");
    EXPECT_DEATH(s.max(), "empty");
    EXPECT_DEATH(s.percentile(0.5), "empty");
}

} // namespace
} // namespace rtu
