/** Unit tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

namespace rtu {
namespace {

TEST(BitUtil, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
    EXPECT_EQ(bits(0xDEADBEEF, 3, 0), 0xFu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
    EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
}

TEST(BitUtil, BitExtractsSingle)
{
    EXPECT_EQ(bit(0b1000, 3), 1u);
    EXPECT_EQ(bit(0b1000, 2), 0u);
}

TEST(BitUtil, SextSignExtends)
{
    EXPECT_EQ(sext(0xFFF, 12), -1);
    EXPECT_EQ(sext(0x7FF, 12), 2047);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x0, 12), 0);
    EXPECT_EQ(sext(0xFFFF'FFFF, 32), -1);
}

TEST(BitUtil, InsertBitsPlacesField)
{
    EXPECT_EQ(insertBits(0x3, 1, 0), 0x3u);
    EXPECT_EQ(insertBits(0x3, 5, 4), 0x30u);
    EXPECT_EQ(insertBits(0xFF, 3, 0), 0xFu);  // masked to width
}

TEST(BitUtil, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(2047, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_FALSE(fitsSigned(-2049, 12));
    EXPECT_TRUE(fitsSigned(0, 1));
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(alignDown(0x1237, 16), 0x1230u);
    EXPECT_TRUE(isAligned(0x1000, 4));
    EXPECT_FALSE(isAligned(0x1002, 4));
}

} // namespace
} // namespace rtu
