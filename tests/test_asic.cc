/** ASIC model tests: structural monotonicity, paper anchor ranges,
 *  list-length scaling, frequency and power behaviour. */

#include <gtest/gtest.h>

#include "asic/asic.hh"

namespace rtu {
namespace {

double
norm(CoreKind core, const char *name)
{
    return AsicModel::area(core, RtosUnitConfig::fromName(name))
        .normalized;
}

TEST(AsicArea, VanillaIsTheBaseline)
{
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax}) {
        const AreaResult a =
            AsicModel::area(core, RtosUnitConfig::vanilla());
        EXPECT_DOUBLE_EQ(a.normalized, 1.0);
        EXPECT_GT(a.areaMm2, 0.0);
    }
}

TEST(AsicArea, EveryConfigurationCostsAtLeastTheBaseline)
{
    for (CoreKind core : {CoreKind::kCv32e40p, CoreKind::kCva6,
                          CoreKind::kNax}) {
        for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs())
            EXPECT_GE(AsicModel::area(core, cfg).normalized, 1.0)
                << coreKindName(core) << "/" << cfg.name();
    }
}

TEST(AsicArea, Cv32e40pAnchorsMatchPaperRanges)
{
    // Paper Section 6.3 figures for CV32E40P.
    EXPECT_NEAR(norm(CoreKind::kCv32e40p, "S"), 1.219, 0.05);
    EXPECT_NEAR(norm(CoreKind::kCv32e40p, "CV32RT"), 1.212, 0.05);
    EXPECT_LT(norm(CoreKind::kCv32e40p, "T"), 1.03);  // "no overhead"
    EXPECT_NEAR(norm(CoreKind::kCv32e40p, "ST"), 1.33, 0.05);
    EXPECT_NEAR(norm(CoreKind::kCv32e40p, "SPLIT"), 1.44, 0.07);
}

TEST(AsicArea, RelativeOverheadShrinksOnBiggerCores)
{
    for (const char *name : {"S", "SLT", "SPLIT"}) {
        EXPECT_GT(norm(CoreKind::kCv32e40p, name),
                  norm(CoreKind::kCva6, name))
            << name;
    }
}

TEST(AsicArea, Cv32rtIsWorstOnNaxDueToRenaming)
{
    // Paper: 16 extra read ports under register renaming make CV32RT
    // the most expensive variant on NaxRiscv, above even SPLIT.
    EXPECT_GT(norm(CoreKind::kNax, "CV32RT"),
              norm(CoreKind::kNax, "SPLIT"));
    EXPECT_NEAR(norm(CoreKind::kNax, "CV32RT"), 1.19, 0.04);
}

TEST(AsicArea, Cva6StoreWithoutLoadCostsMoreThanWithLoad)
{
    // Paper: SWITCH_RF hazard logic makes (S*) > (S*L*) on CVA6 ...
    EXPECT_GT(norm(CoreKind::kCva6, "ST"), norm(CoreKind::kCva6, "SLT"));
    EXPECT_GT(norm(CoreKind::kCva6, "S"), norm(CoreKind::kCva6, "SL"));
    // ... while NaxRiscv shows the opposite (pipeline rescheduling).
    EXPECT_LT(norm(CoreKind::kNax, "S"), norm(CoreKind::kNax, "SL"));
}

TEST(AsicArea, ListLengthScalingIsLinear)
{
    // Figure 12: approximately linear, +14 % at 64 slots.
    RtosUnitConfig cfg = RtosUnitConfig::fromName("T");
    std::vector<double> norms;
    for (unsigned slots : {8u, 16u, 32u, 64u}) {
        cfg.listSlots = slots;
        norms.push_back(
            AsicModel::area(CoreKind::kCv32e40p, cfg).normalized);
    }
    for (size_t i = 1; i < norms.size(); ++i)
        EXPECT_GT(norms[i], norms[i - 1]);
    // Linear in slot count: doubling the slots doubles the increment.
    const double step1 = norms[2] - norms[1];  // 16 -> 32
    const double step2 = norms[3] - norms[2];  // 32 -> 64
    EXPECT_NEAR(step2 / step1, 2.0, 0.1);
    cfg.listSlots = 64;
    EXPECT_NEAR(AsicModel::area(CoreKind::kCv32e40p, cfg).normalized,
                1.14, 0.03);
}

TEST(AsicFmax, PaperTrends)
{
    const auto f = [](CoreKind c, const char *n) {
        return AsicModel::fmaxGHz(c, RtosUnitConfig::fromName(n));
    };
    // CV32E40P: ~-15 % for all RTOSUnit configs, CV32RT unaffected.
    EXPECT_NEAR(f(CoreKind::kCv32e40p, "SLT") /
                    f(CoreKind::kCv32e40p, "vanilla"),
                0.85, 0.02);
    EXPECT_DOUBLE_EQ(f(CoreKind::kCv32e40p, "CV32RT"),
                     f(CoreKind::kCv32e40p, "vanilla"));
    // CVA6 ~-8 %.
    EXPECT_NEAR(f(CoreKind::kCva6, "SLT") / f(CoreKind::kCva6, "vanilla"),
                0.92, 0.02);
    // NaxRiscv stable except SPLIT (-4 %).
    EXPECT_DOUBLE_EQ(f(CoreKind::kNax, "SLT"),
                     f(CoreKind::kNax, "vanilla"));
    EXPECT_NEAR(f(CoreKind::kNax, "SPLIT") / f(CoreKind::kNax, "vanilla"),
                0.96, 0.02);
    // All remain GHz-class (paper: "viable operating frequencies").
    for (CoreKind c : {CoreKind::kCv32e40p, CoreKind::kCva6,
                       CoreKind::kNax}) {
        for (const RtosUnitConfig &cfg : RtosUnitConfig::paperConfigs())
            EXPECT_GT(AsicModel::fmaxGHz(c, cfg), 0.5);
    }
}

TEST(AsicPower, StaticTracksArea)
{
    ActivityCounters act;
    act.cycles = 100000;
    act.instret = 70000;
    act.memOps = 20000;
    const PowerResult small = AsicModel::power(
        CoreKind::kCv32e40p, RtosUnitConfig::vanilla(), act, 500);
    const PowerResult big = AsicModel::power(
        CoreKind::kCv32e40p, RtosUnitConfig::fromName("SPLIT"), act,
        500);
    EXPECT_GT(big.staticMw, small.staticMw);
    EXPECT_GT(big.totalMw(), small.totalMw());
}

TEST(AsicPower, DynamicScalesWithFrequency)
{
    ActivityCounters act;
    act.cycles = 100000;
    act.instret = 70000;
    const PowerResult slow = AsicModel::power(
        CoreKind::kCva6, RtosUnitConfig::vanilla(), act, 100);
    const PowerResult fast = AsicModel::power(
        CoreKind::kCva6, RtosUnitConfig::vanilla(), act, 500);
    EXPECT_NEAR(fast.dynamicMw / slow.dynamicMw, 5.0, 0.01);
    EXPECT_DOUBLE_EQ(fast.staticMw, slow.staticMw);
}

TEST(AsicPower, BiggerCoresDrawMore)
{
    ActivityCounters act;
    act.cycles = 100000;
    act.instret = 70000;
    act.memOps = 20000;
    const double cv32 =
        AsicModel::power(CoreKind::kCv32e40p, RtosUnitConfig::vanilla(),
                         act, 500)
            .totalMw();
    const double cva6 =
        AsicModel::power(CoreKind::kCva6, RtosUnitConfig::vanilla(), act,
                         500)
            .totalMw();
    const double nax = AsicModel::power(CoreKind::kNax,
                                        RtosUnitConfig::vanilla(), act,
                                        500)
                           .totalMw();
    EXPECT_LT(cv32, cva6);
    EXPECT_LT(cva6, nax);
}

} // namespace
} // namespace rtu
