/** Assembler tests: labels, fixups, pseudo-ops, data section. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/decode.hh"

namespace rtu {
namespace {

TEST(Assembler, ForwardBranchFixup)
{
    Assembler a(0x0, 0x1000'0000);
    a.beq(A0, A1, "target");
    a.nop();
    a.label("target");
    a.nop();
    Program p = a.finish();
    const DecodedInsn d = decode(p.text[0]);
    EXPECT_EQ(d.op, Op::kBeq);
    EXPECT_EQ(d.imm, 8);  // two instructions forward
}

TEST(Assembler, BackwardJumpFixup)
{
    Assembler a(0x0, 0x1000'0000);
    a.label("loop");
    a.nop();
    a.j("loop");
    Program p = a.finish();
    const DecodedInsn d = decode(p.text[1]);
    EXPECT_EQ(d.op, Op::kJal);
    EXPECT_EQ(d.rd, Zero);
    EXPECT_EQ(d.imm, -4);
}

TEST(Assembler, LiSmallImmediateIsOneInsn)
{
    Assembler a(0x0, 0x1000'0000);
    a.li(A0, 42);
    Program p = a.finish();
    ASSERT_EQ(p.text.size(), 1u);
    EXPECT_EQ(decode(p.text[0]).op, Op::kAddi);
}

TEST(Assembler, LiLargeImmediateSplitsHiLo)
{
    Assembler a(0x0, 0x1000'0000);
    a.li(A0, static_cast<SWord>(0xDEADBEEF));
    Program p = a.finish();
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(decode(p.text[0]).op, Op::kLui);
    EXPECT_EQ(decode(p.text[1]).op, Op::kAddi);
}

TEST(Assembler, LaResolvesDataSymbol)
{
    Assembler a(0x0, 0x1000'0000);
    a.la(A0, "myword");
    a.dataWord("unused", 7);
    const Addr addr = a.dataWord("myword", 99);
    Program p = a.finish();
    ASSERT_EQ(p.text.size(), 2u);
    const DecodedInsn lui = decode(p.text[0]);
    const DecodedInsn addi = decode(p.text[1]);
    const Word resolved =
        (static_cast<Word>(lui.imm) << 12) + static_cast<Word>(addi.imm);
    EXPECT_EQ(resolved, addr);
    EXPECT_EQ(p.symbol("myword"), addr);
    EXPECT_EQ(p.data[1], 99u);
}

TEST(Assembler, LoopBoundAnnotatesNextControlFlow)
{
    Assembler a(0x0, 0x1000'0000);
    a.label("loop");
    a.nop();
    a.loopBound(8);
    a.j("loop");
    Program p = a.finish();
    ASSERT_EQ(p.loopBounds.size(), 1u);
    EXPECT_EQ(p.loopBounds.begin()->first, 4u);
    EXPECT_EQ(p.loopBounds.begin()->second, 8u);
}

TEST(Assembler, FunctionRangesRecorded)
{
    Assembler a(0x0, 0x1000'0000);
    a.fnBegin("foo");
    a.nop();
    a.ret();
    a.fnEnd();
    Program p = a.finish();
    EXPECT_EQ(p.functionAt(0x0), "foo");
    EXPECT_EQ(p.functionAt(0x4), "foo");
    EXPECT_EQ(p.functionAt(0x8), "");
}

TEST(AssemblerDeath, DuplicateLabelPanics)
{
    Assembler a(0x0, 0x1000'0000);
    a.label("x");
    EXPECT_DEATH(a.label("x"), "duplicate label");
}

TEST(AssemblerDeath, UndefinedLabelPanics)
{
    Assembler a(0x0, 0x1000'0000);
    a.j("nowhere");
    EXPECT_DEATH(a.finish(), "undefined label");
}

} // namespace
} // namespace rtu
