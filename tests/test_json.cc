/** JSON escaping tests: the one helper every JSONL writer (sweep
 *  results, episode traces, the explorer's result cache) relies on
 *  for well-formed output from arbitrary workload names and keys. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/json.hh"
#include "sweep/sweep.hh"

namespace rtu {
namespace {

TEST(JsonEscape, PlainIdentifiersPassThrough)
{
    EXPECT_EQ(jsonEscape("mutex_workload"), "mutex_workload");
    EXPECT_EQ(jsonEscape("CV32E40P/SLT/slots8"), "CV32E40P/SLT/slots8");
}

TEST(JsonEscape, QuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscape, NonAsciiBytesPassThrough)
{
    const std::string utf8 = "\xc3\xa9";  // e-acute in UTF-8
    EXPECT_EQ(jsonEscape(utf8), utf8);
}

TEST(JsonUnescape, RoundTripsEverything)
{
    std::string nasty;
    for (int c = 0; c < 256; ++c)
        nasty.push_back(static_cast<char>(c));
    nasty += "\"quoted\" \\slashed\\ \n newline";
    EXPECT_EQ(jsonUnescape(jsonEscape(nasty)), nasty);
}

TEST(JsonUnescape, UnicodeEscapes)
{
    EXPECT_EQ(jsonUnescape("\\u0041"), "A");
    EXPECT_EQ(jsonUnescape("\\u00e9"), "\xc3\xa9");
    // Malformed escapes stay verbatim instead of vanishing.
    EXPECT_EQ(jsonUnescape("\\u00"), "\\u00");
    EXPECT_EQ(jsonUnescape("\\uzzzz"), "\\uzzzz");
    EXPECT_EQ(jsonUnescape("trailing\\"), "trailing\\");
}

TEST(JsonNumber, FiniteValuesUseTheRequestedFormat)
{
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(2.0, "%.3f"), "2.000");
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(-7.25, "%.2f"), "-7.25");
}

TEST(JsonNumber, NonFiniteValuesBecomeNull)
{
    // printf would emit bare `inf`/`nan`, which no JSON parser
    // accepts; every non-finite value must serialize as null.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(jsonNumber(inf), "null");
    EXPECT_EQ(jsonNumber(-inf), "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(inf, "%.3f"), "null");  // fmt ignored
}

TEST(JsonNumber, RoundTripsThroughParse)
{
    for (const double v : {0.0, 1.0, -3.5, 1e300, 1e-300,
                           12345.678901234567}) {
        double back = 0;
        bool wasNull = true;
        ASSERT_TRUE(jsonParseNumber(jsonNumber(v), &back, &wasNull));
        EXPECT_EQ(back, v);  // %.17g is round-trip exact
        EXPECT_FALSE(wasNull);
    }
}

TEST(JsonParseNumber, NullParsesAsNanWithFlag)
{
    double v = 0;
    bool wasNull = false;
    ASSERT_TRUE(jsonParseNumber("null", &v, &wasNull));
    EXPECT_TRUE(wasNull);
    EXPECT_TRUE(std::isnan(v));
    // Whitespace around the token is tolerated (cache lines are
    // sliced by comma, leaving incidental spaces).
    ASSERT_TRUE(jsonParseNumber("  null ", &v, &wasNull));
    EXPECT_TRUE(wasNull);
}

TEST(JsonParseNumber, LegacyBareInfNanStillParse)
{
    // Streams written before the jsonNumber fix carry printf's bare
    // inf/nan; strtod accepts them, so old caches keep loading.
    double v = 0;
    bool wasNull = true;
    ASSERT_TRUE(jsonParseNumber("inf", &v, &wasNull));
    EXPECT_TRUE(std::isinf(v));
    EXPECT_FALSE(wasNull);
    ASSERT_TRUE(jsonParseNumber("nan", &v, &wasNull));
    EXPECT_TRUE(std::isnan(v));
    EXPECT_FALSE(wasNull);
}

TEST(JsonParseNumber, RejectsMalformedText)
{
    double v = 0;
    EXPECT_FALSE(jsonParseNumber("", &v));
    EXPECT_FALSE(jsonParseNumber("abc", &v));
    EXPECT_FALSE(jsonParseNumber("1.5x", &v));
    EXPECT_FALSE(jsonParseNumber("nulll", &v));
    EXPECT_FALSE(jsonParseNumber("1.5 2.5", &v));
}

TEST(JsonEscape, SweepResultWriterEscapesWorkloadNames)
{
    // Workload names flow into writeResultsJsonl; an adversarial name
    // must not break the line structure (one valid object per line).
    SweepResult r;
    r.point.workload = "evil\"name\nwith\\specials";
    std::ostringstream os;
    writeResultsJsonl(os, {r});
    const std::string line = os.str();
    EXPECT_NE(line.find("evil\\\"name\\nwith\\\\specials"),
              std::string::npos);
    // Exactly one newline: the record terminator, not the payload's.
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
    EXPECT_EQ(line.back(), '\n');
}

} // namespace
} // namespace rtu
