/** JSON escaping tests: the one helper every JSONL writer (sweep
 *  results, episode traces, the explorer's result cache) relies on
 *  for well-formed output from arbitrary workload names and keys. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/json.hh"
#include "sweep/sweep.hh"

namespace rtu {
namespace {

TEST(JsonEscape, PlainIdentifiersPassThrough)
{
    EXPECT_EQ(jsonEscape("mutex_workload"), "mutex_workload");
    EXPECT_EQ(jsonEscape("CV32E40P/SLT/slots8"), "CV32E40P/SLT/slots8");
}

TEST(JsonEscape, QuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscape, NonAsciiBytesPassThrough)
{
    const std::string utf8 = "\xc3\xa9";  // e-acute in UTF-8
    EXPECT_EQ(jsonEscape(utf8), utf8);
}

TEST(JsonUnescape, RoundTripsEverything)
{
    std::string nasty;
    for (int c = 0; c < 256; ++c)
        nasty.push_back(static_cast<char>(c));
    nasty += "\"quoted\" \\slashed\\ \n newline";
    EXPECT_EQ(jsonUnescape(jsonEscape(nasty)), nasty);
}

TEST(JsonUnescape, UnicodeEscapes)
{
    EXPECT_EQ(jsonUnescape("\\u0041"), "A");
    EXPECT_EQ(jsonUnescape("\\u00e9"), "\xc3\xa9");
    // Malformed escapes stay verbatim instead of vanishing.
    EXPECT_EQ(jsonUnescape("\\u00"), "\\u00");
    EXPECT_EQ(jsonUnescape("\\uzzzz"), "\\uzzzz");
    EXPECT_EQ(jsonUnescape("trailing\\"), "trailing\\");
}

TEST(JsonEscape, SweepResultWriterEscapesWorkloadNames)
{
    // Workload names flow into writeResultsJsonl; an adversarial name
    // must not break the line structure (one valid object per line).
    SweepResult r;
    r.point.workload = "evil\"name\nwith\\specials";
    std::ostringstream os;
    writeResultsJsonl(os, {r});
    const std::string line = os.str();
    EXPECT_NE(line.find("evil\\\"name\\nwith\\\\specials"),
              std::string::npos);
    // Exactly one newline: the record terminator, not the payload's.
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
    EXPECT_EQ(line.back(), '\n');
}

} // namespace
} // namespace rtu
