/** SimKernel tests: next-event min-reduction, fast-forward and stride
 *  arithmetic on fake components, skip bounds against the real CLINT
 *  and external-irq driver, stride enter/exit on a spinning guest, and
 *  the no-retire watchdog (mode-identical abort cycles). */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "harness/simulation.hh"
#include "sim/clint.hh"
#include "sim/kernel.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

/** Scripted component: quiescent until a fixed event cycle, active
 *  (and thus un-skippable) from then on. */
class FakeClocked : public Clocked
{
  public:
    explicit FakeClocked(Cycle event) : event_(event) {}

    void
    tick(Cycle now) override
    {
        ++ticks;
        lastTickAt = now;
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        return event_ <= now ? now : event_;
    }

    void
    skipTo(Cycle now, Cycle target) override
    {
        ++skips;
        lastSkipFrom = now;
        lastSkipTo = target;
    }

    Cycle event_;
    unsigned ticks = 0;
    unsigned skips = 0;
    Cycle lastTickAt = 0;
    Cycle lastSkipFrom = 0;
    Cycle lastSkipTo = 0;
};

/** Always-active component advertising a fixed execution stride. */
class FakeStrider : public FakeClocked
{
  public:
    explicit FakeStrider(Cycle period) : FakeClocked(0), period_(period)
    {}

    Cycle
    stridePeriod(Cycle now) const override
    {
        (void)now;
        return period_;
    }

    void
    applyStride(Cycle now, std::uint64_t periods) override
    {
        (void)now;
        appliedPeriods += periods;
        ++strides;
    }

    Cycle period_;
    std::uint64_t appliedPeriods = 0;
    unsigned strides = 0;
};

TEST(SimKernel, NextEventCycleIsMinReduction)
{
    SimKernel k;
    FakeClocked a(25), b(10), c(kNoEvent);
    k.add(&a);
    k.add(&b);
    k.add(&c);
    EXPECT_EQ(k.nextEventCycle(1000), 10u);
    EXPECT_EQ(k.nextEventCycle(7), 7u);  // clamped to the limit
}

TEST(SimKernel, RegistrationOrderDoesNotChangeNextEvent)
{
    FakeClocked a(25), b(10);
    SimKernel fwd, rev;
    fwd.add(&a);
    fwd.add(&b);
    rev.add(&b);
    rev.add(&a);
    EXPECT_EQ(fwd.nextEventCycle(1000), rev.nextEventCycle(1000));
}

TEST(SimKernel, FastForwardSkipsToEarliestEvent)
{
    SimKernel k;
    FakeClocked a(10), b(25);
    k.add(&a);
    k.add(&b);

    ASSERT_TRUE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 10u);
    EXPECT_EQ(a.skips, 1u);
    EXPECT_EQ(a.lastSkipFrom, 0u);
    EXPECT_EQ(a.lastSkipTo, 10u);
    EXPECT_EQ(b.skips, 1u);
    EXPECT_EQ(a.ticks, 0u);

    // `a` is active at cycle 10 and offers no stride: no further skip.
    EXPECT_FALSE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 10u);

    const SimKernelStats &s = k.stats();
    EXPECT_EQ(s.cyclesSkipped, 10u);
    EXPECT_EQ(s.fastForwards, 1u);
    EXPECT_EQ(s.cyclesTicked, 0u);
}

TEST(SimKernel, ActiveComponentVetoesSkip)
{
    SimKernel k;
    FakeClocked busy(0), idle(50);
    k.add(&busy);
    k.add(&idle);
    EXPECT_FALSE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 0u);
    EXPECT_EQ(busy.skips, 0u);
    EXPECT_EQ(idle.skips, 0u);
}

TEST(SimKernel, AllQuiescentSkipsToTheLimit)
{
    SimKernel k;
    FakeClocked a(kNoEvent), b(kNoEvent);
    k.add(&a);
    k.add(&b);
    ASSERT_TRUE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 1000u);
    EXPECT_EQ(k.stats().cyclesSkipped, 1000u);
    // At the limit there is nothing left to fast-forward.
    EXPECT_FALSE(k.fastForward(1000));
}

TEST(SimKernel, StrideAdvancesWholePeriodsOnly)
{
    SimKernel k;
    FakeStrider spin(7);
    FakeClocked foreign(100);
    k.add(&spin);
    k.add(&foreign);

    // 100 / 7 = 14 whole periods -> cycle 98, never past the foreign
    // event and never a fractional period (the loop phase survives).
    ASSERT_TRUE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 98u);
    EXPECT_EQ(spin.appliedPeriods, 14u);
    EXPECT_EQ(spin.strides, 1u);
    EXPECT_EQ(spin.skips, 0u);  // the strider strides, never skipTo()s
    EXPECT_EQ(foreign.skips, 1u);
    EXPECT_EQ(foreign.lastSkipTo, 98u);
    EXPECT_EQ(k.stats().strideSkips, 1u);
    EXPECT_EQ(k.stats().strideCyclesSkipped, 98u);

    // The 2 remaining cycles to the foreign event are < one period.
    EXPECT_FALSE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 98u);
}

TEST(SimKernel, TwoActiveComponentsCannotStride)
{
    SimKernel k;
    FakeStrider s1(5), s2(5);
    k.add(&s1);
    k.add(&s2);
    EXPECT_FALSE(k.fastForward(1000));
    EXPECT_EQ(s1.appliedPeriods, 0u);
    EXPECT_EQ(s2.appliedPeriods, 0u);
}

TEST(SimKernel, TickOneRunsEveryComponentThenAdvances)
{
    SimKernel k;
    FakeClocked a(kNoEvent), b(kNoEvent);
    k.add(&a);
    k.add(&b);
    k.tickOne();
    EXPECT_EQ(k.now(), 1u);
    EXPECT_EQ(a.ticks, 1u);
    EXPECT_EQ(b.ticks, 1u);
    EXPECT_EQ(a.lastTickAt, 0u);
    EXPECT_EQ(k.stats().cyclesTicked, 1u);
}

TEST(SimKernel, NeverSkipsPastScheduledExtIrq)
{
    IrqLines irq;
    ExtIrqDriver ext(irq);
    ext.schedule(42);
    FakeClocked idle(kNoEvent);

    SimKernel k;
    k.add(&ext);
    k.add(&idle);

    ASSERT_TRUE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 42u);  // stopped exactly on the event
    EXPECT_EQ(irq.pending() & irq::kMei, 0u);  // skip raised nothing
    k.tickOne();
    EXPECT_NE(irq.pending() & irq::kMei, 0u);
    EXPECT_EQ(irq.assertCycle(mcause::kMachineExternal), 42u);
}

TEST(SimKernel, NeverSkipsPastClintExpiry)
{
    IrqLines irq;
    Clint clint(irq);
    clint.write(memmap::kClintMtimecmp, 10, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    FakeClocked idle(kNoEvent);

    SimKernel k;
    k.add(&clint);
    k.add(&idle);

    // The tick at cycle 9 moves mtime to 10 == mtimecmp and raises
    // MTIP; the skip must stop just before and replicate mtime.
    ASSERT_TRUE(k.fastForward(1000));
    EXPECT_EQ(k.now(), 9u);
    EXPECT_EQ(clint.mtime(), 9u);
    EXPECT_EQ(irq.pending() & irq::kMti, 0u);
    k.tickOne();
    EXPECT_NE(irq.pending() & irq::kMti, 0u);
    EXPECT_EQ(irq.assertCycle(mcause::kMachineTimer), 9u);
}

TEST(ClintNextEvent, ArithmeticCoversTheProtocol)
{
    IrqLines irq;
    Clint clint(irq);

    // Reset state: mtimecmp = ~0 is an unreachable deadline (either
    // the kNoEvent clamp or a deadline in the astronomically far
    // future, depending on `now`).
    EXPECT_GE(clint.nextEventAt(0), kNoEvent - 1);
    EXPECT_EQ(clint.nextEventAt(2), kNoEvent);

    // Future deadline: the raising tick is at cmp - mtime - 1.
    clint.write(memmap::kClintMtimecmp, 100, MemSize::kWord);
    clint.write(memmap::kClintMtimecmpHi, 0, MemSize::kWord);
    EXPECT_EQ(clint.nextEventAt(0), 99u);
    clint.tick(0);  // mtime = 1
    EXPECT_EQ(clint.nextEventAt(1), 99u);

    // Imminent deadline: the very next tick raises the line.
    clint.write(memmap::kClintMtimecmp, 2, MemSize::kWord);
    EXPECT_EQ(clint.nextEventAt(1), 1u);

    // Pending and cmp <= mtime + 1: the line stays raised forever
    // (mtime only grows), so the CLINT goes quiescent.
    clint.tick(1);  // mtime = 2 -> MTIP
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    EXPECT_EQ(clint.nextEventAt(2), kNoEvent);

    // Pending but cmp re-armed ahead (auto-reset): next tick clears.
    clint.enableAutoReset(100);
    clint.timerTaken();  // cmp = 102, line still raised
    ASSERT_NE(irq.pending() & irq::kMti, 0u);
    EXPECT_EQ(clint.nextEventAt(2), 2u);
}

/** Infinite pure spin whose architectural state recurs exactly each
 *  iteration — the stride detector's target shape. */
Program
spinProgram()
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.label("spin");
    a.mv(A0, Zero);
    a.j("spin");
    return a.finish();
}

/** One retired instruction, then sleep with interrupts disabled. */
Program
hangProgram()
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.csrw(csr::kMie, Zero);
    a.wfi();
    a.label("end");
    a.j("end");
    return a.finish();
}

SimConfig
bareConfig(bool fast_forward)
{
    SimConfig cfg;
    cfg.core = CoreKind::kCv32e40p;
    cfg.unit = RtosUnitConfig::vanilla();
    cfg.fastForward = fast_forward;
    return cfg;
}

TEST(SimKernelGuest, StrideEngagesOnSpinAndPreservesState)
{
    const Program p = spinProgram();

    SimConfig ref = bareConfig(false);
    ref.maxCycles = 5000;
    ref.watchdogCycles = 0;  // a spin retires; keep the test focused
    Simulation refSim(ref, p);
    EXPECT_FALSE(refSim.run());

    SimConfig ff = bareConfig(true);
    ff.maxCycles = 5000;
    ff.watchdogCycles = 0;
    Simulation ffSim(ff, p);
    EXPECT_FALSE(ffSim.run());

    // The detector must engage...
    EXPECT_GT(ffSim.kernelStats().strideSkips, 0u);
    EXPECT_GT(ffSim.kernelStats().cyclesSkipped, 0u);
    EXPECT_LT(ffSim.kernelStats().cyclesTicked, ref.maxCycles);
    // ...and reproduce the reference run bit-exactly.
    EXPECT_EQ(ffSim.now(), refSim.now());
    EXPECT_EQ(ffSim.status(), refSim.status());
    EXPECT_EQ(ffSim.coreStats().instret, refSim.coreStats().instret);
    EXPECT_EQ(ffSim.coreStats().stallCycles,
              refSim.coreStats().stallCycles);
    EXPECT_EQ(ffSim.archState().pc(), refSim.archState().pc());
    for (RegIndex r = 0; r < 32; ++r)
        EXPECT_EQ(ffSim.archState().reg(r), refSim.archState().reg(r))
            << "x" << unsigned(r);
}

TEST(SimKernelGuest, StrideExitsOnIrqDelivery)
{
    // Same spin, but an external interrupt arrives mid-stride. With
    // interrupts disabled (reset state) delivery is just the MEIP
    // line rising — the skip still must not step over that cycle, so
    // the phase-sensitive state around it stays exact.
    const Program p = spinProgram();

    auto run = [&](bool fast_forward) {
        SimConfig cfg = bareConfig(fast_forward);
        cfg.maxCycles = 3000;
        cfg.watchdogCycles = 0;
        Simulation sim(cfg, p);
        sim.scheduleExtIrq(1777);
        EXPECT_FALSE(sim.run());
        return sim.coreStats().instret;
    };

    EXPECT_EQ(run(true), run(false));
}

TEST(SimKernelGuest, WatchdogAbortsIdenticallyInBothModes)
{
    const Program p = hangProgram();

    auto run = [&](bool fast_forward) {
        SimConfig cfg = bareConfig(fast_forward);
        cfg.maxCycles = 100000;
        cfg.watchdogCycles = 500;
        Simulation sim(cfg, p);
        EXPECT_FALSE(sim.run());
        EXPECT_EQ(sim.status(), RunStatus::kNoRetire);
        EXPECT_FALSE(sim.statusDiagnostic().empty());
        return sim.now();
    };

    const Cycle ffAbort = run(true);
    const Cycle refAbort = run(false);
    EXPECT_EQ(ffAbort, refAbort);
    EXPECT_LT(ffAbort, 100000u);  // well before the cycle limit
}

} // namespace
} // namespace rtu
