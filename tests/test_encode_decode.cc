/** Encoder/decoder round-trip and golden-encoding tests. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/decode.hh"
#include "asm/disasm.hh"
#include "asm/encode.hh"

namespace rtu {
namespace {

TEST(Encode, GoldenEncodings)
{
    // Cross-checked against the RISC-V ISA manual / binutils.
    EXPECT_EQ(encode(Op::kAddi, A0, Zero, 0, 42), 0x02A00513u);
    EXPECT_EQ(encode(Op::kAdd, A0, A1, A2, 0), 0x00C58533u);
    EXPECT_EQ(encode(Op::kLui, T0, 0, 0, 0x12345), 0x123452B7u);
    EXPECT_EQ(encode(Op::kLw, A0, SP, 0, 16), 0x01012503u);
    EXPECT_EQ(encode(Op::kSw, 0, SP, A0, 16), 0x00A12823u);
    EXPECT_EQ(encode(Op::kMret, 0, 0, 0, 0), 0x30200073u);
    EXPECT_EQ(encode(Op::kWfi, 0, 0, 0, 0), 0x10500073u);
    EXPECT_EQ(encode(Op::kEcall, 0, 0, 0, 0), 0x00000073u);
    EXPECT_EQ(encode(Op::kMul, A0, A1, A2, 0), 0x02C58533u);
}

TEST(Decode, GoldenDecodings)
{
    DecodedInsn d = decode(0x02A00513);  // addi a0, zero, 42
    EXPECT_EQ(d.op, Op::kAddi);
    EXPECT_EQ(d.rd, A0);
    EXPECT_EQ(d.rs1, Zero);
    EXPECT_EQ(d.imm, 42);

    d = decode(0xFE5214E3);  // bne tu... a backward branch
    EXPECT_EQ(d.op, Op::kBne);
    EXPECT_LT(d.imm, 0);
}

TEST(Decode, InvalidEncodingYieldsInvalidOp)
{
    EXPECT_EQ(decode(0xFFFFFFFF).op, Op::kInvalid);
    EXPECT_EQ(decode(0x00000000).op, Op::kInvalid);
}

class RoundTrip : public ::testing::TestWithParam<Op>
{
};

TEST_P(RoundTrip, EncodeDecodeIsIdentity)
{
    const Op op = GetParam();
    DecodedInsn in;
    in.op = op;
    in.rd = writesRd(op) ? A0 : Zero;
    in.rs1 = readsRs1(op) ? A1 : Zero;
    in.rs2 = readsRs2(op) ? A2 : Zero;
    in.csr = classOf(op) == InsnClass::kCsr ? csr::kMscratch : 0;
    switch (classOf(op)) {
      case InsnClass::kBranch: in.imm = -64; break;
      case InsnClass::kJump: in.imm = op == Op::kJal ? 2048 : 52; break;
      case InsnClass::kLoad:
      case InsnClass::kStore: in.imm = -4; break;
      case InsnClass::kCsr:
        in.imm = (op == Op::kCsrrwi || op == Op::kCsrrsi ||
                  op == Op::kCsrrci)
                     ? 13
                     : 0;
        break;
      default:
        if (op == Op::kSlli || op == Op::kSrli || op == Op::kSrai)
            in.imm = 7;
        else if (op == Op::kAddi || op == Op::kSlti ||
                 op == Op::kSltiu || op == Op::kXori || op == Op::kOri ||
                 op == Op::kAndi)
            in.imm = -3;
        else if (op == Op::kLui || op == Op::kAuipc)
            in.imm = 0x1234;
        break;
    }

    const Word raw = encode(in.op, in.rd, in.rs1, in.rs2, in.imm, in.csr);
    const DecodedInsn out = decode(raw);
    EXPECT_EQ(out.op, in.op) << disassemble(raw);
    if (writesRd(op)) {
        EXPECT_EQ(out.rd, in.rd);
    }
    if (readsRs1(op) && classOf(op) != InsnClass::kCsr) {
        EXPECT_EQ(out.rs1, in.rs1);
    }
    if (readsRs2(op)) {
        EXPECT_EQ(out.rs2, in.rs2);
    }
    if (classOf(op) == InsnClass::kCsr) {
        EXPECT_EQ(out.csr, in.csr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTrip,
    ::testing::Values(
        Op::kLui, Op::kAuipc, Op::kJal, Op::kJalr, Op::kBeq, Op::kBne,
        Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu, Op::kLb, Op::kLh,
        Op::kLw, Op::kLbu, Op::kLhu, Op::kSb, Op::kSh, Op::kSw,
        Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri,
        Op::kAndi, Op::kSlli, Op::kSrli, Op::kSrai, Op::kAdd, Op::kSub,
        Op::kSll, Op::kSlt, Op::kSltu, Op::kXor, Op::kSrl, Op::kSra,
        Op::kOr, Op::kAnd, Op::kEcall, Op::kMret, Op::kWfi, Op::kCsrrw,
        Op::kCsrrs, Op::kCsrrc, Op::kCsrrwi, Op::kCsrrsi, Op::kCsrrci,
        Op::kMul, Op::kMulh, Op::kMulhsu, Op::kMulhu, Op::kDiv,
        Op::kDivu, Op::kRem, Op::kRemu, Op::kSetContextId,
        Op::kGetHwSched, Op::kAddReady, Op::kAddDelay, Op::kRmTask,
        Op::kSwitchRf),
    [](const ::testing::TestParamInfo<Op> &info) {
        std::string name = opName(info.param);
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

// The CFG builder (src/analyze/cfg.cc) computes every edge target
// from decoded immediates of the control ops. Each of those ops must
// round-trip its immediate exactly across the encodable range, or the
// lint passes and the WCET analyzer would walk a wrong graph.

class ControlImmRoundTrip : public ::testing::TestWithParam<Op>
{
};

TEST_P(ControlImmRoundTrip, ImmediatePreservedExactly)
{
    const Op op = GetParam();
    std::vector<SWord> imms;
    switch (classOf(op)) {
      case InsnClass::kBranch:
        // B-type: +/-4 KiB, multiples of 2 (we emit multiples of 4).
        imms = {-4096, -2048, -64, -4, 0, 4, 64, 2048, 4094};
        break;
      case InsnClass::kJump:
        if (op == Op::kJal) {
            // J-type: +/-1 MiB.
            imms = {-1048576, -65536, -2048, -4, 0, 4, 2048, 65536,
                    1048574};
        } else {
            // JALR I-type: +/-2 KiB, any alignment.
            imms = {-2048, -1, 0, 1, 4, 52, 2047};
        }
        break;
      default:  // mret carries no immediate
        imms = {0};
        break;
    }
    for (const SWord imm : imms) {
        const Word raw = encode(op, Zero, op == Op::kJalr ? RA : Zero,
                                Zero, imm);
        const DecodedInsn out = decode(raw);
        EXPECT_EQ(out.op, op) << disassemble(raw);
        EXPECT_EQ(out.imm, imm) << disassemble(raw);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CfgEdgeOps, ControlImmRoundTrip,
    ::testing::Values(Op::kBeq, Op::kBne, Op::kBlt, Op::kBge,
                      Op::kBltu, Op::kBgeu, Op::kJal, Op::kJalr,
                      Op::kMret),
    [](const ::testing::TestParamInfo<Op> &info) {
        return std::string(opName(info.param));
    });

TEST(ControlImmRoundTrip, ReturnIdiomDecodesAsRet)
{
    // `ret` = jalr zero, ra, 0: the exact triple the CFG's kReturn
    // classification and the WCET walk key on.
    const DecodedInsn d = decode(encode(Op::kJalr, Zero, RA, Zero, 0));
    EXPECT_EQ(d.op, Op::kJalr);
    EXPECT_EQ(d.rd, Zero);
    EXPECT_EQ(d.rs1, RA);
    EXPECT_EQ(d.imm, 0);
}

TEST(Disasm, RendersReadableText)
{
    EXPECT_EQ(disassemble(encode(Op::kAddi, A0, Zero, 0, 42)),
              "addi a0, zero, 42");
    EXPECT_EQ(disassemble(encode(Op::kLw, A0, SP, 0, 16)),
              "lw a0, 16(sp)");
    EXPECT_EQ(disassemble(encode(Op::kGetHwSched, T0, 0, 0, 0)),
              "rtu.getsched t0");
}

} // namespace
} // namespace rtu
