/** SwitchRecorder unit tests: episode lifecycle, nested-trap
 *  truncation (the preempted flag), phase timestamps and sink
 *  streaming. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/switchrec.hh"
#include "trace/trace.hh"

namespace rtu {
namespace {

TEST(SwitchRecorder, RecordsOneEpisode)
{
    SwitchRecorder rec;
    rec.beginEpisode(7, 100, 105, 1);
    EXPECT_TRUE(rec.inEpisode());
    rec.endEpisode(180, 2);
    EXPECT_FALSE(rec.inEpisode());
    ASSERT_EQ(rec.records().size(), 1u);
    const SwitchRecord &r = rec.records()[0];
    EXPECT_EQ(r.cause, 7u);
    EXPECT_EQ(r.assertCycle, 100u);
    EXPECT_EQ(r.entryCycle, 105u);
    EXPECT_EQ(r.mretCycle, 180u);
    EXPECT_EQ(r.latency(), 80u);
    EXPECT_TRUE(r.switchedTask());
    EXPECT_FALSE(r.queued);
    EXPECT_FALSE(r.preempted);
}

TEST(SwitchRecorder, NestedTrapKeepsTruncatedEpisode)
{
    // A second trap taken before the first episode's mret must not
    // silently discard the in-flight record: it is committed with the
    // preempted flag, truncated at the preempting trap's entry.
    SwitchRecorder rec;
    rec.beginEpisode(7, 100, 105, 1);
    rec.beginEpisode(11, 140, 145, 1);  // nested/back-to-back trap
    rec.endEpisode(200, 2);

    ASSERT_EQ(rec.records().size(), 2u);
    const SwitchRecord &lost = rec.records()[0];
    EXPECT_TRUE(lost.preempted);
    EXPECT_EQ(lost.cause, 7u);
    EXPECT_EQ(lost.mretCycle, 145u);  // cut at the new trap's entry
    EXPECT_EQ(lost.fromTask, lost.toTask);  // never switched

    const SwitchRecord &second = rec.records()[1];
    EXPECT_FALSE(second.preempted);
    EXPECT_EQ(second.cause, 11u);
    EXPECT_EQ(second.mretCycle, 200u);
}

TEST(SwitchRecorder, PreemptedEpisodesExcludedFromLatencyStats)
{
    SwitchRecorder rec;
    rec.beginEpisode(7, 100, 105, 1);
    rec.beginEpisode(7, 140, 145, 1);
    rec.endEpisode(200, 2);

    // Only the completed episode contributes; include_queued and
    // switches_only must not re-admit the truncated one.
    EXPECT_EQ(rec.latencyStats(true, true).count(), 1u);
    EXPECT_EQ(rec.latencyStats(false, true).count(), 1u);
    EXPECT_DOUBLE_EQ(rec.latencyStats(true, true).mean(), 60.0);
}

TEST(SwitchRecorder, QueuedEpisodeFlaggedAndFilteredByDefault)
{
    SwitchRecorder rec;
    rec.beginEpisode(7, 100, 105, 1);
    rec.endEpisode(180, 2);
    // Asserted at 170, before the previous mret at 180: queued.
    rec.beginEpisode(7, 170, 185, 2);
    rec.endEpisode(260, 1);

    ASSERT_EQ(rec.records().size(), 2u);
    EXPECT_FALSE(rec.records()[0].queued);
    EXPECT_TRUE(rec.records()[1].queued);
    EXPECT_EQ(rec.latencyStats(true, false).count(), 1u);
    EXPECT_EQ(rec.latencyStats(true, true).count(), 2u);
}

TEST(SwitchRecorder, PhaseTimestampsLandInTheRunningEpisode)
{
    SwitchRecorder rec;
    // Phases outside an episode are dropped.
    rec.notePhase(SwitchPhase::kStoreDone, 50);
    rec.beginEpisode(7, 100, 105, 1);
    rec.notePhase(SwitchPhase::kStoreDone, 130);
    rec.notePhase(SwitchPhase::kSchedDone, 120);
    rec.notePhase(SwitchPhase::kLoadDone, 160);
    rec.endEpisode(180, 2);

    ASSERT_EQ(rec.records().size(), 1u);
    const SwitchRecord &r = rec.records()[0];
    EXPECT_EQ(r.storeDoneCycle, 130u);
    EXPECT_EQ(r.schedDoneCycle, 120u);
    EXPECT_EQ(r.loadDoneCycle, 160u);

    const EpisodeTrace t = r.toTrace();
    EXPECT_EQ(t.irqAssert, 100u);
    EXPECT_EQ(t.trapTaken, 105u);
    EXPECT_EQ(t.storeDone, 130u);
    EXPECT_EQ(t.schedDone, 120u);
    EXPECT_EQ(t.loadDone, 160u);
    EXPECT_EQ(t.mret, 180u);
}

TEST(SwitchRecorder, SinkReceivesEpisodesIncludingPreempted)
{
    std::ostringstream os;
    JsonlTraceSink sink(os);
    TraceRunLabel label;
    label.core = "CV32E40P";
    label.config = "SLT";
    label.workload = "unit_test";
    sink.beginRun(label);

    SwitchRecorder rec;
    rec.setSink(&sink);
    rec.beginEpisode(7, 100, 105, 1);
    rec.beginEpisode(7, 140, 145, 1);  // truncates the first
    rec.endEpisode(200, 2);

    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    EXPECT_NE(out.find("\"preempted\":true"), std::string::npos);
    EXPECT_NE(out.find("\"preempted\":false"), std::string::npos);
    // Every line carries all six phase fields.
    for (const char *field :
         {"\"irq_assert\":", "\"trap_taken\":", "\"store_done\":",
          "\"sched_done\":", "\"load_done\":", "\"mret\":"}) {
        size_t hits = 0;
        for (size_t pos = out.find(field); pos != std::string::npos;
             pos = out.find(field, pos + 1))
            ++hits;
        EXPECT_EQ(hits, 2u) << field;
    }
}

TEST(TraceSinks, Cycle0PhaseIsDistinctFromPhaseAbsent)
{
    // Regression: phases used to serialize "never ran" as 0, making a
    // phase that legitimately completed at cycle 0 (interrupt at
    // reset) indistinguishable from one the configuration performs in
    // software. Absent phases carry kNoPhase and serialize as JSON
    // null / an empty CSV cell; a real cycle-0 stamp prints as 0.
    EpisodeTrace stamped;
    stamped.irqAssert = 0;
    stamped.trapTaken = 0;
    stamped.storeDone = 0;   // hardware store drained at cycle 0
    stamped.mret = 5;        // sched/load stay kNoPhase

    std::ostringstream js;
    JsonlTraceSink jsink(js);
    jsink.beginRun(TraceRunLabel{});
    jsink.episode(stamped);
    EXPECT_NE(js.str().find("\"store_done\":0,"), std::string::npos);
    EXPECT_NE(js.str().find("\"sched_done\":null,"),
              std::string::npos);
    EXPECT_NE(js.str().find("\"load_done\":null,"), std::string::npos);

    std::ostringstream cs;
    CsvTraceSink csink(cs);
    csink.beginRun(TraceRunLabel{});
    csink.episode(stamped);
    // CSV tail: irq,trap,store,sched,load,mret — a stamped 0 prints,
    // absent phases leave their cell empty.
    EXPECT_NE(cs.str().find(",0,0,0,,,5\n"), std::string::npos)
        << cs.str();
}

TEST(TraceSinks, CsvHasHeaderAndOneRowPerEpisode)
{
    std::ostringstream os;
    CsvTraceSink sink(os);
    TraceRunLabel label;
    label.core = "CVA6";
    label.config = "T";
    label.workload = "unit_test";
    sink.beginRun(label);
    EpisodeTrace e;
    e.irqAssert = 10;
    e.mret = 60;
    sink.episode(e);
    sink.episode(e);

    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    EXPECT_EQ(out.rfind("core,config,workload", 0), 0u);
    EXPECT_NE(out.find("CVA6,T,unit_test"), std::string::npos);
}

} // namespace
} // namespace rtu
