/**
 * Abstract-interpretation engine (src/analyze/absint): the
 * interval/value-set/congruence domain, the fixpoint engine, the
 * loop-bound recognizers with their seeded-defect fixtures (each must
 * produce exactly the documented diagnostic), worst-case stack usage,
 * the derived-stack-size kernel generator path, and the acceptance
 * check — every generated kernel x workload x configuration point
 * passes the absint pass family clean.
 */

#include <gtest/gtest.h>

#include "analyze/absint/engine.hh"
#include "analyze/absint/interval.hh"
#include "analyze/absint/loopbound.hh"
#include "analyze/absint/wcsu.hh"
#include "analyze/linter.hh"
#include "asm/assembler.hh"
#include "harness/simulation.hh"
#include "kernel/kernel.hh"
#include "kernel/layout.hh"
#include "workloads/workloads.hh"

using namespace rtu;

namespace {

constexpr Addr kTextBase = 0x0000;
constexpr Addr kDataBase = 0x8000;

std::string
diagsText(const std::vector<Diagnostic> &diags)
{
    std::string out;
    for (const Diagnostic &d : diags)
        out += "  " + diagToString(d) + "\n";
    return out;
}

/** Run only the absint pass family over @p program. */
std::vector<Diagnostic>
absintLint(const Program &program, bool pedantic = false)
{
    LintOptions options;
    options.absint = true;
    options.absintPedanticBounds = pedantic;
    std::vector<Diagnostic> out;
    checkAbsint(program, options, out);
    return out;
}

/**
 * Countdown-loop fixture: t0 counts 10 -> 0, the bnez back edge
 * executes 9 times. @p annotation is attached to the back edge.
 */
Program
countdownLoop(unsigned annotation)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("_start");
    a.li(T0, 10);
    a.label("loop");
    a.addi(T0, T0, -1);
    a.loopBound(annotation);
    a.bnez(T0, "loop");
    a.ret();
    a.fnEnd();
    return a.finish();
}

} // namespace

// ---- interval domain -------------------------------------------------

TEST(Interval, JoinMeetWiden)
{
    const Interval a = Interval::range(2, 5);
    const Interval b = Interval::range(8, 9);
    EXPECT_EQ(Interval::join(a, b), Interval::range(2, 9));
    EXPECT_TRUE(Interval::meet(a, b).isBottom());
    EXPECT_EQ(Interval::meet(Interval::range(2, 8), b),
              Interval::constant(8));

    // Threshold widening: an upward-creeping bound jumps to the next
    // ladder rung rather than iterating to the moon one step at a time.
    const Interval w =
        Interval::widen(Interval::range(0, 3), Interval::range(0, 4));
    EXPECT_EQ(w.lo, 0);
    EXPECT_EQ(w.hi, Interval::kMax);
    // A stable bound is left alone.
    EXPECT_EQ(Interval::widen(a, a), a);
}

TEST(Interval, TransferOverflowDegrades)
{
    // Adding past INT32_MAX may wrap in RV32, so the result must not
    // pretend to be a tight positive range.
    const Interval big = Interval::constant(Interval::kMax);
    const Interval one = Interval::constant(1);
    EXPECT_TRUE(Interval::add(big, one).isTop());
    // In-range arithmetic stays exact.
    EXPECT_EQ(Interval::add(Interval::range(1, 2), Interval::range(10, 20)),
              Interval::range(11, 22));
    EXPECT_EQ(Interval::mul(Interval::range(2, 3), Interval::constant(4)),
              Interval::range(8, 12));
}

TEST(Interval, DecideBranches)
{
    const Interval lo = Interval::range(0, 3);
    const Interval hi = Interval::range(5, 9);
    EXPECT_EQ(Interval::decide(Op::kBlt, lo, hi), std::optional(true));
    EXPECT_EQ(Interval::decide(Op::kBge, lo, hi), std::optional(false));
    EXPECT_EQ(Interval::decide(Op::kBeq, lo, hi), std::optional(false));
    // Overlapping ranges cannot be decided.
    EXPECT_EQ(Interval::decide(Op::kBlt, lo, Interval::range(2, 4)),
              std::nullopt);
}

// ---- value-set / congruence domain -----------------------------------

TEST(AbsVal, StridedMaterializesSmallSets)
{
    // [0, 224] restricted to multiples of 32 is exactly 8 values:
    // small enough for the exact set (e.g. the 8 ready-list headers).
    const AbsVal v = AbsVal::strided(Interval::range(0, 224), 32, 0);
    ASSERT_TRUE(v.hasSet);
    ASSERT_EQ(v.consts.size(), 8u);
    EXPECT_EQ(v.consts.front(), 0);
    EXPECT_EQ(v.consts.back(), 224);
    EXPECT_EQ(v.valueGap(), 32);

    // Too many members: stays an interval but keeps the congruence.
    const AbsVal w = AbsVal::strided(Interval::range(0, 100'000), 8, 4);
    EXPECT_FALSE(w.hasSet);
    EXPECT_EQ(w.stride, 8);
    EXPECT_EQ(w.iv.lo % 8, 4);
}

TEST(AbsVal, JoinGrowsSetsThenKeepsStride)
{
    const AbsVal j = AbsVal::join(AbsVal::constant(0x8000),
                                  AbsVal::constant(0x8040));
    ASSERT_TRUE(j.hasSet);
    EXPECT_EQ(j.consts.size(), 2u);
    EXPECT_EQ(j.valueGap(), 0x40);

    // Past kMaxConsts the set degrades to its interval hull, but the
    // gcd of the member gaps survives as a congruence.
    AbsVal acc = AbsVal::constant(0);
    const std::int64_t last = 32 * (AbsVal::kMaxConsts + 4);
    for (std::int64_t v = 32; v <= last; v += 32)
        acc = AbsVal::join(acc, AbsVal::constant(v));
    EXPECT_FALSE(acc.hasSet);
    EXPECT_EQ(acc.stride, 32);
}

TEST(AbsVal, Pow2StrideSurvivesWrappingAdd)
{
    // The k_select address pattern: base + (i << 5) where the widened
    // index makes the interval add overflow the 32-bit guard. A
    // power-of-two stride divides 2^32, so the congruence is preserved
    // through the wrap and refinement against the array extent
    // recovers the exact 8-header set.
    const AbsVal base = AbsVal::constant(0x10000014);
    const AbsVal index =
        AbsVal::strided(Interval::range(Interval::kMin, 224), 32, 0);
    const AbsVal sum = absEval(Op::kAdd, base, index);
    ASSERT_FALSE(sum.isBottom());
    EXPECT_EQ(sum.stride, 32);
    EXPECT_EQ(((sum.iv.lo % 32) + 32) % 32, 0x14 % 32);

    const AbsVal refined =
        sum.refined(Interval::range(0x10000014, 0x10000113));
    ASSERT_TRUE(refined.hasSet);
    EXPECT_EQ(refined.consts.size(), 8u);
    EXPECT_EQ(refined.consts.front(), 0x10000014);
    EXPECT_EQ(refined.consts.back(), 0x10000014 + 7 * 32);
}

TEST(AbsVal, RefineByBranch)
{
    // beq taken against a constant pins the unknown operand.
    AbsVal a = AbsVal::fromInterval(Interval::range(0, 10));
    AbsVal b = AbsVal::constant(5);
    refineByBranch(Op::kBeq, /*taken=*/true, a, b);
    EXPECT_TRUE(a.isConst());
    EXPECT_EQ(a.constValue(), 5);

    // blt not-taken: a >= b.
    AbsVal c = AbsVal::fromInterval(Interval::range(0, 10));
    AbsVal d = AbsVal::constant(7);
    refineByBranch(Op::kBlt, /*taken=*/false, c, d);
    EXPECT_EQ(c.iv.lo, 7);
    EXPECT_EQ(c.iv.hi, 10);

    // Contradiction proves the edge infeasible.
    AbsVal e = AbsVal::constant(3);
    AbsVal f = AbsVal::constant(4);
    refineByBranch(Op::kBeq, /*taken=*/true, e, f);
    EXPECT_TRUE(e.isBottom() || f.isBottom());
}

TEST(AbsVal, SetwiseDecideBeatsIntervalHull)
{
    // Two disjoint pointer sets whose interval hulls overlap: the
    // set-pointwise decision still proves inequality.
    const AbsVal a = AbsVal::fromSet({0x8000, 0x8020});
    const AbsVal b = AbsVal::fromSet({0x8010, 0x8030});
    EXPECT_EQ(absDecide(Op::kBeq, a, b), std::optional(false));
    EXPECT_EQ(absDecide(Op::kBne, a, b), std::optional(true));
    EXPECT_EQ(absDecide(Op::kBeq, a, a), std::nullopt);
}

// ---- engine ----------------------------------------------------------

TEST(AbsintEngine, ConvergesAndTracksTheCounter)
{
    const Program p = countdownLoop(9);
    AbsintEngine engine(p);
    engine.run();
    ASSERT_TRUE(engine.converged());

    // At the bnez the counter must include the whole descending chain
    // and nothing below 0 (the exit refinement pins t0 == 0 after).
    const Addr branch = p.symbol("loop") + 4;
    const RegState *term = engine.termState(p.symbol("loop"));
    ASSERT_NE(term, nullptr);
    EXPECT_GE(term->reg(T0).iv.lo, 0);
    EXPECT_LE(term->reg(T0).iv.hi, 9);

    const RegState *after = engine.edgeState(p.symbol("loop"), branch + 4);
    ASSERT_NE(after, nullptr);
    EXPECT_TRUE(after->reg(T0).isConst());
    EXPECT_EQ(after->reg(T0).constValue(), 0);
}

TEST(AbsintEngine, ProvesInfeasibleBranchEdges)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("_start");
    a.li(T0, 0);
    a.bne(T0, Zero, "unreached");  // t0 == 0: taken edge infeasible
    a.nop();
    a.label("unreached");
    a.ret();
    a.fnEnd();
    const Program p = a.finish();

    AbsintEngine engine(p);
    engine.run();
    ASSERT_TRUE(engine.converged());
    EXPECT_EQ(engine.infeasibleTaken().size(), 1u);
    EXPECT_TRUE(engine.infeasibleFall().empty());

    const AbsintFacts facts = deriveAbsintFacts(p);
    EXPECT_FALSE(facts.empty());
    EXPECT_EQ(facts.infeasibleTaken.size(), 1u);
}

// ---- loop-bound inference + seeded defects ---------------------------

TEST(LoopBound, InfersCountdownTripCount)
{
    const Program p = countdownLoop(9);
    AbsintEngine engine(p);
    engine.run();
    const LoopBoundResult r = inferLoopBounds(engine);
    ASSERT_EQ(r.inferred.size(), 1u);
    EXPECT_EQ(r.inferred.begin()->second, 9u);
    EXPECT_TRUE(r.diags.empty()) << diagsText(r.diags);
}

TEST(LoopBound, SeededTooTightAnnotationIsAnError)
{
    // Annotated 5, actual worst case 9: WCET budgets derived from the
    // annotation would be unsound.
    const auto diags = absintLint(countdownLoop(5));
    EXPECT_TRUE(hasCode(diags, "loop-bound-too-tight")) << diagsText(diags);
    EXPECT_GE(countErrors(diags), 1u);
}

TEST(LoopBound, ExactAnnotationVerifiesClean)
{
    const auto diags = absintLint(countdownLoop(9));
    EXPECT_TRUE(diags.empty()) << diagsText(diags);
}

TEST(LoopBound, SeededLooseAnnotationIsPedanticOnly)
{
    // Annotated 20, actual worst case 9: sound but pessimistic — only
    // flagged when the pedantic knob is set.
    EXPECT_TRUE(absintLint(countdownLoop(20)).empty());
    const auto diags = absintLint(countdownLoop(20), /*pedantic=*/true);
    EXPECT_TRUE(hasCode(diags, "loop-bound-loose")) << diagsText(diags);
    EXPECT_EQ(countErrors(diags), 0u);
}

TEST(LoopBound, SeededUnrecognizableLoopIsUnverified)
{
    // A halving loop terminates, but no recognizer covers shift steps:
    // the annotation must be flagged as unconfirmed, not trusted.
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("_start");
    a.li(T0, 10);
    a.label("loop");
    a.srli(T0, T0, 1);
    a.loopBound(4);
    a.bnez(T0, "loop");
    a.ret();
    a.fnEnd();
    const auto diags = absintLint(a.finish());
    EXPECT_TRUE(hasCode(diags, "loop-bound-unverified")) << diagsText(diags);
    EXPECT_EQ(countErrors(diags), 0u);
}

// ---- worst-case stack usage ------------------------------------------

TEST(Wcsu, ComposesDepthsOverTheCallGraph)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("k_task_a");
    a.addi(SP, SP, -32);
    a.sw(RA, 28, SP);
    a.call("helper");
    a.lw(RA, 28, SP);
    a.addi(SP, SP, 32);
    a.ret();
    a.fnEnd();
    a.fnBegin("helper");
    a.addi(SP, SP, -16);
    a.addi(SP, SP, 16);
    a.ret();
    a.fnEnd();
    const Program p = a.finish();
    const Cfg cfg(p);

    WcsuAnalyzer wcsu(cfg);
    wcsu.run();
    ASSERT_TRUE(wcsu.converged());
    EXPECT_EQ(wcsu.entryDepth("helper"), 16u);
    EXPECT_EQ(wcsu.entryDepth("k_task_a"), 48u);
    EXPECT_TRUE(wcsu.diags().empty()) << diagsText(wcsu.diags());
}

TEST(Wcsu, SeededRecursionIsReported)
{
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("r");
    a.addi(SP, SP, -16);
    a.call("r");
    a.addi(SP, SP, 16);
    a.ret();
    a.fnEnd();
    const Program p = a.finish();
    const Cfg cfg(p);
    WcsuAnalyzer wcsu(cfg);
    wcsu.run();
    EXPECT_TRUE(hasCode(wcsu.diags(), "wcsu-recursion"))
        << diagsText(wcsu.diags());
}

TEST(Wcsu, SeededOverflowRiskIsReported)
{
    // A 512-byte frame against a 64-byte generated stack region.
    Assembler a(kTextBase, kDataBase);
    a.fnBegin("k_task_big");
    a.addi(SP, SP, -512);
    a.addi(SP, SP, 512);
    a.ret();
    a.fnEnd();
    a.dataArray("k_stack_0", 16);
    a.dataWord("k_stack_0_top");
    const Program p = a.finish();
    const Cfg cfg(p);

    WcsuAnalyzer wcsu(cfg);
    wcsu.run();
    ASSERT_EQ(wcsu.stackRegions().size(), 1u);
    EXPECT_EQ(wcsu.stackRegions()[0].capacity(), 64u);

    std::vector<Diagnostic> out;
    wcsu.checkOverflow(out);
    EXPECT_TRUE(hasCode(out, "stack-overflow-risk")) << diagsText(out);
    EXPECT_GE(countErrors(out), 1u);
}

// ---- derived task-stack sizing (KernelParams::useDerivedStackSize) ---

namespace {

Program
buildKernelImage(const std::string &config, const Workload &workload,
                 bool derived_stacks)
{
    const WorkloadInfo info = workload.info();
    KernelParams kparams;
    kparams.unit = RtosUnitConfig::fromName(config);
    kparams.timerPeriodCycles = 1000;
    kparams.usesExternalIrq = info.usesExternalIrq;
    kparams.usesDelayUntil = info.usesDelayUntil;
    kparams.useDerivedStackSize = derived_stacks;
    KernelBuilder kb(kparams);
    workload.addTasks(kb);
    return kb.build();
}

} // namespace

TEST(DerivedStacks, OffPathIsDeterministicallyFixedSize)
{
    const auto w = makeWorkload("yield_pingpong", 3);
    const Program fixed = buildKernelImage("SLT", *w, false);
    const Program again = buildKernelImage("SLT", *w, false);
    EXPECT_EQ(fixed.text, again.text);
    EXPECT_EQ(fixed.data, again.data);
    EXPECT_EQ(fixed.symbols, again.symbols);

    // Fixed-size layout: every task stack is exactly kTaskStackBytes.
    const Addr base = fixed.symbol("k_stack_0");
    const Addr top = fixed.symbol("k_stack_0_top");
    EXPECT_EQ(top - base, kernel::kTaskStackBytes);
}

TEST(DerivedStacks, DerivedRegionsAreAlignedAndFrameSafe)
{
    const auto w = makeWorkload("mutex_workload", 2);
    const Program p = buildKernelImage("SLT", *w, true);
    for (unsigned i = 0;; ++i) {
        const auto it = p.symbols.find("k_stack_" + std::to_string(i));
        if (it == p.symbols.end()) {
            EXPECT_GT(i, 0u);
            break;
        }
        const Addr cap =
            p.symbol("k_stack_" + std::to_string(i) + "_top") - it->second;
        EXPECT_GE(cap, kernel::kFrameBytes) << "k_stack_" << i;
        EXPECT_EQ(cap % 16, 0u) << "k_stack_" << i;
    }
}

TEST(DerivedStacks, DerivedImagePassesTheAbsintGate)
{
    const auto w = makeWorkload("sem_pingpong", 2);
    const auto diags = absintLint(buildKernelImage("SLT", *w, true));
    EXPECT_TRUE(diags.empty()) << diagsText(diags);
}

TEST(DerivedStacks, DerivedImageRunsToCompletion)
{
    for (const char *config : {"vanilla", "SLT"}) {
        for (const char *name : {"yield_pingpong", "mutex_workload"}) {
            const auto w = makeWorkload(name, 3);
            const Program p = buildKernelImage(config, *w, true);

            SimConfig sconfig;
            sconfig.core = CoreKind::kCv32e40p;
            sconfig.unit = RtosUnitConfig::fromName(config);
            sconfig.timerPeriodCycles = 1000;
            sconfig.maxCycles = w->info().maxCycles;
            Simulation sim(sconfig, p);
            EXPECT_TRUE(sim.run()) << config << "/" << name;
            EXPECT_EQ(sim.exitCode(), 0u) << config << "/" << name;
        }
    }
}

// ---- acceptance: the generated matrix passes the absint family -------

TEST(AbsintMatrix, EveryGeneratedKernelPassesClean)
{
    unsigned points = 0;
    forEachGeneratedProgram(
        [&](const LintPoint &point) {
            const auto diags = absintLint(point.program);
            EXPECT_TRUE(diags.empty())
                << point.unit.name() << "/" << point.workload << "\n"
                << diagsText(diags);
            ++points;
        },
        /*include_hwsync=*/false);
    EXPECT_EQ(points, 12u * 7u);
}
