/** Superblock index and block-execution tests: block formation over a
 *  hand-built program (flags, run lengths, worst-case suffix costs),
 *  the word-granular invalidation audit — a 2-byte store straddling a
 *  block boundary re-forms both blocks — and the end-to-end acceptance
 *  case: a mid-block bit flip written by the running guest re-forms
 *  the block and the flipped instruction executes, identically with
 *  block execution on and off. Counter plumbing through the sweep
 *  JSONL stream is checked last. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "asm/decode.hh"
#include "harness/simulation.hh"
#include "rtosunit/config.hh"
#include "sim/blockexec.hh"
#include "sim/memmap.hh"
#include "sim/predecode.hh"
#include "sweep/sweep.hh"

namespace rtu {
namespace {

struct IndexFixture
{
    Sram imem{"imem", memmap::kImemBase, memmap::kImemSize};
    MemSystem mem;
    PredecodedImage image;
    BlockIndex index;

    explicit IndexFixture(const std::vector<Word> &text)
    {
        mem.addDevice(&imem);
        imem.loadWords(memmap::kImemBase, text);
        image.install(mem, memmap::kImemBase, text.size());
        index.install(image, Cv32e40pCostParams{});
    }

    Addr pc(std::size_t word) const
    {
        return memmap::kImemBase + 4 * static_cast<Addr>(word);
    }
};

TEST(Blockexec, FormationFlagsRunLengthsAndWorstCosts)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.label("top");
    a.addi(A0, Zero, 1);    // w0: plain ALU
    a.lw(T1, 0, T0);        // w1: load
    a.add(A1, T1, A0);      // w2: consumes the load -> hazard stall
    a.sw(A1, 0, T0);        // w3: store
    a.j("top");             // w4: block terminator
    a.ecall();              // w5: stop word
    a.addi(Zero, Zero, 0);  // w6: plain word at the end of text
    const Program p = a.finish();
    ASSERT_EQ(p.text.size(), 7u);

    IndexFixture f(p.text);
    ASSERT_TRUE(f.index.installed());
    for (std::size_t w = 0; w < p.text.size(); ++w)
        EXPECT_TRUE(f.index.covers(f.pc(w))) << "word " << w;
    EXPECT_FALSE(f.index.covers(f.pc(7)));
    EXPECT_FALSE(f.index.covers(f.pc(0) + 2));

    using B = BlockIndex;
    // A store at w3 marks every word of the run up to it.
    EXPECT_EQ(f.index.flagsAt(f.pc(0)), B::kSuffixStore);
    EXPECT_EQ(f.index.flagsAt(f.pc(1)), B::kMem | B::kSuffixStore);
    EXPECT_EQ(f.index.flagsAt(f.pc(2)), B::kHazPrev | B::kSuffixStore);
    EXPECT_EQ(f.index.flagsAt(f.pc(3)),
              B::kMem | B::kStoreOp | B::kSuffixStore);
    EXPECT_EQ(f.index.flagsAt(f.pc(4)), B::kControl);
    EXPECT_EQ(f.index.flagsAt(f.pc(5)), B::kStop);
    EXPECT_EQ(f.index.flagsAt(f.pc(6)), 0u);

    // Run lengths count down to the terminator, terminator included;
    // stop words never execute in-block; the last text word is a
    // one-instruction run by construction.
    const std::uint32_t lens[7] = {5, 4, 3, 2, 1, 0, 1};
    for (std::size_t w = 0; w < 7; ++w)
        EXPECT_EQ(f.index.runLenAt(f.pc(w)), lens[w]) << "word " << w;

    // Worst-case CV32E40P suffix costs: ALU/load/store 1 cycle, the
    // hazard consumer 1 + loadUseStall, the jump 2.
    const std::uint32_t worst[7] = {7, 6, 5, 3, 2, 0, 1};
    for (std::size_t w = 0; w < 7; ++w)
        EXPECT_EQ(f.index.worstCyclesAt(f.pc(w)), worst[w])
            << "word " << w;

    EXPECT_EQ(f.index.invalidations(), 0u);
}

TEST(Blockexec, StraddlingHalfStoreReformsBothBlocks)
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.label("top");
    a.addi(A0, Zero, 1);  // w0 ┐ block A
    a.j("top");           // w1 ┘
    a.addi(A1, Zero, 2);  // w2 ┐ block B
    a.j("top");           // w3 ┘
    const Program p = a.finish();
    ASSERT_EQ(p.text.size(), 4u);

    IndexFixture f(p.text);
    using B = BlockIndex;
    ASSERT_EQ(f.index.runLenAt(f.pc(0)), 2u);
    ASSERT_EQ(f.index.runLenAt(f.pc(2)), 2u);
    ASSERT_EQ(f.index.flagsAt(f.pc(2)), 0u);
    const std::uint64_t before = f.index.invalidations();

    // A 2-byte store at byte 7 spans the last byte of block A's
    // terminator (w1) and the first byte of block B's head (w2): the
    // low byte 0x00 rewrites w1's jal immediate field, the high byte
    // 0x6F rewrites w2's opcode to JAL. Both words re-decode and both
    // blocks re-form — B is now two one-instruction runs.
    f.mem.write(f.pc(1) + 3, 0x6F00, MemSize::kHalf);

    EXPECT_EQ(f.image.invalidations(), 2u);
    EXPECT_GE(f.index.invalidations() - before, 2u);

    // Block B re-formed around the new control word.
    EXPECT_NE(f.index.flagsAt(f.pc(2)) & B::kControl, 0u);
    EXPECT_EQ(f.index.runLenAt(f.pc(2)), 1u);
    // Block A re-formed too: w1 is still a jal (opcode byte is below
    // the written range), so its summaries are re-derived unchanged.
    EXPECT_NE(f.index.flagsAt(f.pc(1)) & B::kControl, 0u);
    EXPECT_EQ(f.index.runLenAt(f.pc(0)), 2u);
    EXPECT_EQ(f.index.worstCyclesAt(f.pc(0)), 3u);
}

SimConfig
bareConfig(bool block_exec)
{
    SimConfig cfg;
    cfg.core = CoreKind::kCv32e40p;
    cfg.unit = RtosUnitConfig::vanilla();
    cfg.fastForward = true;
    cfg.predecode = true;
    cfg.blockExec = block_exec;
    cfg.maxCycles = 5000;
    cfg.watchdogCycles = 0;
    return cfg;
}

/** Flip bit 20 of a later instruction in the same straight-line run —
 *  the immediate's LSB of "addi a0, x0, 0" — then fall through into
 *  it. The store and its target sit in one superblock, so this is the
 *  worst case for stale summaries: the flip must re-form the block
 *  mid-run and the flipped instruction must execute. */
Program
midBlockFlipProgram()
{
    Assembler a(memmap::kImemBase, memmap::kDmemBase);
    a.dataWord("currentTaskId", 0);
    a.la(T0, "patch");
    a.lw(T1, 0, T0);
    a.li(T2, 1 << 20);
    a.xor_(T1, T1, T2);
    a.sw(T1, 0, T0);
    a.label("patch");
    a.addi(A0, Zero, 0);  // becomes addi a0, x0, 1 after the flip
    a.label("spin");
    a.j("spin");
    return a.finish();
}

TEST(Blockexec, MidBlockBitFlipReformsTheBlockAndExecutesTheFlip)
{
    const Program p = midBlockFlipProgram();

    auto run = [&](bool block_exec) {
        Simulation sim(bareConfig(block_exec), p);
        EXPECT_FALSE(sim.run());  // spins to the cycle limit
        EXPECT_EQ(sim.archState().reg(A0), 1u)
            << "block_exec=" << block_exec
            << ": flipped instruction not executed";
        return sim.coreStats();
    };

    const CoreStats on = run(true);
    const CoreStats off = run(false);
    EXPECT_EQ(on.instret, off.instret);
    EXPECT_EQ(on.memOps, off.memOps);
    EXPECT_EQ(on.stallCycles, off.stallCycles);
    // The guest store re-decoded one text word and re-formed its
    // block; with the knob off the index is never installed.
    EXPECT_EQ(on.textInvalidations, 1u);
    EXPECT_GE(on.blockInvalidations, 1u);
    EXPECT_GT(on.blocksExecuted, 0u);
    EXPECT_EQ(off.blocksExecuted, 0u);
    EXPECT_EQ(off.blockInvalidations, 0u);
}

TEST(Blockexec, CountersFlowThroughTheSweepJsonlStream)
{
    SweepPoint p;
    p.core = CoreKind::kCv32e40p;
    p.unit = RtosUnitConfig::vanilla();
    p.workload = "round_robin";
    p.iterations = 3;
    p.reseed();

    std::vector<SweepResult> on{runSweepPoint(p, false)};
    const std::vector<SweepResult> off{
        runSweepPoint(p, false, true, true, /*block_exec=*/false)};

    EXPECT_GT(on[0].run.throughput.cyclesBlockExecuted, 0u);
    EXPECT_GT(on[0].run.coreStats.blocksExecuted, 0u);
    EXPECT_EQ(off[0].run.throughput.cyclesBlockExecuted, 0u);
    EXPECT_EQ(off[0].run.coreStats.blocksExecuted, 0u);
    EXPECT_EQ(off[0].run.coreStats.blockFallbacks, 0u);

    std::ostringstream os;
    writeResultsJsonl(os, on);
    const std::string line = os.str();
    const CoreStats &s = on[0].run.coreStats;
    EXPECT_NE(line.find("\"blocks_executed\":" +
                        std::to_string(s.blocksExecuted)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"block_fallbacks\":" +
                        std::to_string(s.blockFallbacks)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"block_invalidations\":" +
                        std::to_string(s.blockInvalidations)),
              std::string::npos)
        << line;
}

} // namespace
} // namespace rtu
