/** Randomized per-opcode battery: the functional executor checked
 *  against an independent reference implementation over many operand
 *  pairs, including the classic RISC-V corner values. */

#include <gtest/gtest.h>

#include "cores/executor.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

/** Deterministic operand stream mixing corner cases and PRNG values. */
class OperandStream
{
  public:
    explicit OperandStream(Word seed) : x_(seed | 1) {}

    Word
    next()
    {
        static constexpr Word corners[] = {
            0, 1, 2, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xFFFFFFFE,
            31, 32, 0x55555555, 0xAAAAAAAA,
        };
        if (idx_ < std::size(corners))
            return corners[idx_++];
        x_ ^= x_ << 13;
        x_ ^= x_ >> 17;
        x_ ^= x_ << 5;
        return x_;
    }

  private:
    Word x_;
    size_t idx_ = 0;
};

struct AluCase
{
    Op op;
    Word (*ref)(Word a, Word b);
};

Word refAdd(Word a, Word b) { return a + b; }
Word refSub(Word a, Word b) { return a - b; }
Word refSll(Word a, Word b) { return a << (b & 31); }
Word refSrl(Word a, Word b) { return a >> (b & 31); }
Word
refSra(Word a, Word b)
{
    return static_cast<Word>(static_cast<SWord>(a) >> (b & 31));
}
Word refXor(Word a, Word b) { return a ^ b; }
Word refOr(Word a, Word b) { return a | b; }
Word refAnd(Word a, Word b) { return a & b; }
Word
refSlt(Word a, Word b)
{
    return static_cast<SWord>(a) < static_cast<SWord>(b) ? 1 : 0;
}
Word refSltu(Word a, Word b) { return a < b ? 1 : 0; }
Word refMul(Word a, Word b) { return a * b; }
Word
refMulh(Word a, Word b)
{
    return static_cast<Word>(
        (static_cast<std::int64_t>(static_cast<SWord>(a)) *
         static_cast<std::int64_t>(static_cast<SWord>(b))) >>
        32);
}
Word
refMulhu(Word a, Word b)
{
    return static_cast<Word>(
        (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >>
        32);
}
Word
refMulhsu(Word a, Word b)
{
    return static_cast<Word>(
        (static_cast<std::int64_t>(static_cast<SWord>(a)) *
         static_cast<std::int64_t>(static_cast<std::uint64_t>(b))) >>
        32);
}
Word
refDiv(Word a, Word b)
{
    if (b == 0)
        return 0xFFFFFFFF;
    if (a == 0x80000000 && b == 0xFFFFFFFF)
        return 0x80000000;
    return static_cast<Word>(static_cast<SWord>(a) /
                             static_cast<SWord>(b));
}
Word
refDivu(Word a, Word b)
{
    return b == 0 ? 0xFFFFFFFF : a / b;
}
Word
refRem(Word a, Word b)
{
    if (b == 0)
        return a;
    if (a == 0x80000000 && b == 0xFFFFFFFF)
        return 0;
    return static_cast<Word>(static_cast<SWord>(a) %
                             static_cast<SWord>(b));
}
Word
refRemu(Word a, Word b)
{
    return b == 0 ? a : a % b;
}

const AluCase kCases[] = {
    {Op::kAdd, refAdd},   {Op::kSub, refSub},   {Op::kSll, refSll},
    {Op::kSrl, refSrl},   {Op::kSra, refSra},   {Op::kXor, refXor},
    {Op::kOr, refOr},     {Op::kAnd, refAnd},   {Op::kSlt, refSlt},
    {Op::kSltu, refSltu}, {Op::kMul, refMul},   {Op::kMulh, refMulh},
    {Op::kMulhu, refMulhu}, {Op::kMulhsu, refMulhsu},
    {Op::kDiv, refDiv},   {Op::kDivu, refDivu}, {Op::kRem, refRem},
    {Op::kRemu, refRemu},
};

class Battery : public ::testing::TestWithParam<AluCase>
{
  protected:
    Battery() : exec(state, mem, irq) { mem.addDevice(&dmem); }

    ArchState state;
    MemSystem mem;
    IrqLines irq;
    Sram dmem{"dmem", memmap::kDmemBase, 0x1000};
    Executor exec;
};

TEST_P(Battery, MatchesReferenceOverOperandStream)
{
    const AluCase &c = GetParam();
    OperandStream sa(0x1234);
    OperandStream sb(0xBEEF);
    for (int i = 0; i < 200; ++i) {
        const Word a = sa.next();
        const Word b = sb.next();
        state.setReg(A1, a);
        state.setReg(A2, b);
        DecodedInsn d;
        d.op = c.op;
        d.rd = A0;
        d.rs1 = A1;
        d.rs2 = A2;
        exec.execute(d, 0x100);
        ASSERT_EQ(state.reg(A0), c.ref(a, b))
            << opName(c.op) << "(" << a << ", " << b << ")";
    }
    // Cross the corner cases against each other too.
    OperandStream ca(1);
    for (int i = 0; i < 11; ++i) {
        const Word a = ca.next();
        OperandStream cb(1);
        for (int j = 0; j < 11; ++j) {
            const Word b = cb.next();
            state.setReg(A1, a);
            state.setReg(A2, b);
            DecodedInsn d;
            d.op = c.op;
            d.rd = A0;
            d.rs1 = A1;
            d.rs2 = A2;
            exec.execute(d, 0x100);
            ASSERT_EQ(state.reg(A0), c.ref(a, b))
                << opName(c.op) << "(" << a << ", " << b << ")";
        }
    }
}

TEST_P(Battery, AliasedDestinationMatchesReference)
{
    // rd == rs1: the executor must read operands before writing.
    const AluCase &c = GetParam();
    OperandStream sa(77);
    OperandStream sb(99);
    for (int i = 0; i < 50; ++i) {
        const Word a = sa.next();
        const Word b = sb.next();
        state.setReg(A1, a);
        state.setReg(A2, b);
        DecodedInsn d;
        d.op = c.op;
        d.rd = A1;  // alias
        d.rs1 = A1;
        d.rs2 = A2;
        exec.execute(d, 0x100);
        ASSERT_EQ(state.reg(A1), c.ref(a, b)) << opName(c.op);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAluOps, Battery, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<AluCase> &info) {
        return std::string(opName(info.param.op));
    });

TEST(BatteryImm, ImmediateVariantsMatchRegisterForms)
{
    ArchState state;
    MemSystem mem;
    IrqLines irq;
    Executor exec(state, mem, irq);
    OperandStream sa(0xABC);
    for (int i = 0; i < 100; ++i) {
        const Word a = sa.next();
        const SWord imm = static_cast<SWord>(a % 4096) - 2048;
        state.setReg(A1, a);

        DecodedInsn d;
        d.rd = A0;
        d.rs1 = A1;
        d.imm = imm;
        d.op = Op::kAddi;
        exec.execute(d, 0);
        ASSERT_EQ(state.reg(A0), a + static_cast<Word>(imm));
        d.op = Op::kXori;
        exec.execute(d, 0);
        ASSERT_EQ(state.reg(A0), a ^ static_cast<Word>(imm));
        d.op = Op::kSltiu;
        exec.execute(d, 0);
        ASSERT_EQ(state.reg(A0), a < static_cast<Word>(imm) ? 1u : 0u);
    }
}

} // namespace
} // namespace rtu
