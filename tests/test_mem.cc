/** Memory system, SRAM and shared-port arbitration tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/mem.hh"
#include "sim/memmap.hh"

namespace rtu {
namespace {

TEST(Sram, ByteHalfWordAccess)
{
    Sram ram("ram", 0x1000, 0x100);
    ram.write(0x1000, 0xDEADBEEF, MemSize::kWord);
    EXPECT_EQ(ram.read(0x1000, MemSize::kWord), 0xDEADBEEFu);
    EXPECT_EQ(ram.read(0x1000, MemSize::kByte), 0xEFu);
    EXPECT_EQ(ram.read(0x1001, MemSize::kByte), 0xBEu);
    EXPECT_EQ(ram.read(0x1002, MemSize::kHalf), 0xDEADu);

    ram.write(0x1001, 0x42, MemSize::kByte);
    EXPECT_EQ(ram.read(0x1000, MemSize::kWord), 0xDEAD42EFu);
}

TEST(Sram, LoadWords)
{
    Sram ram("ram", 0, 64);
    ram.loadWords(8, {1, 2, 3});
    EXPECT_EQ(ram.read(8, MemSize::kWord), 1u);
    EXPECT_EQ(ram.read(12, MemSize::kWord), 2u);
    EXPECT_EQ(ram.read(16, MemSize::kWord), 3u);
}

TEST(MemSystem, RoutesByAddress)
{
    Sram a("a", 0x0, 0x100);
    Sram b("b", 0x1000, 0x100);
    MemSystem sys;
    sys.addDevice(&a);
    sys.addDevice(&b);
    sys.write32(0x10, 11);
    sys.write32(0x1010, 22);
    EXPECT_EQ(sys.read32(0x10), 11u);
    EXPECT_EQ(sys.read32(0x1010), 22u);
    EXPECT_EQ(sys.deviceAt(0x1010), &b);
    EXPECT_EQ(sys.deviceAt(0x5000), nullptr);
}

TEST(MemSystemGuestFault, UnmappedAccessThrows)
{
    // Bus errors are guest faults, not simulator panics: the run loop
    // classifies them (fault-injected guests crash routinely), and a
    // test can assert on them directly.
    MemSystem sys;
    EXPECT_THROW(sys.read32(0x42), GuestFault);
    try {
        sys.read32(0x42);
        FAIL() << "unmapped read did not throw";
    } catch (const GuestFault &gf) {
        EXPECT_NE(std::string(gf.what()).find("unmapped"),
                  std::string::npos);
    }
}

TEST(MemSystemGuestFault, StraddlingAccessIsACleanBusError)
{
    // A word access whose start lies in one device but whose last
    // byte falls off its end must fault in the bus layer (clean
    // error naming the range), not trip device-internal asserts.
    Sram a("a", 0x0, 0x100);
    Sram b("b", 0x1000, 0x100);
    MemSystem sys;
    sys.addDevice(&a);
    sys.addDevice(&b);
    EXPECT_THROW(sys.read(0xFE, MemSize::kWord), GuestFault);
    EXPECT_THROW(sys.write(0xFF, 1, MemSize::kHalf), GuestFault);
    EXPECT_THROW(sys.read(0x10FE, MemSize::kWord), GuestFault);
    try {
        sys.read(0xFE, MemSize::kWord);
        FAIL() << "straddling read did not throw";
    } catch (const GuestFault &gf) {
        EXPECT_NE(std::string(gf.what()).find("straddles"),
                  std::string::npos);
    }
    // The last in-bounds word access still works.
    sys.write(0xFC, 0x11223344, MemSize::kWord);
    EXPECT_EQ(sys.read(0xFC, MemSize::kWord), 0x11223344u);
    // Byte access to the last device byte is fine.
    EXPECT_EQ(sys.read(0xFF, MemSize::kByte), 0x11u);
}

TEST(SharedPort, CoreHasPriority)
{
    SharedPort port("p");
    port.beginCycle();
    EXPECT_TRUE(port.available());
    port.claim();
    EXPECT_FALSE(port.available());
    EXPECT_FALSE(port.tryUse());

    port.beginCycle();
    EXPECT_TRUE(port.tryUse());
    EXPECT_FALSE(port.tryUse());  // one secondary access per cycle

    port.beginCycle();
    EXPECT_TRUE(port.available());
}

TEST(MemMap, ContextRegionAddressing)
{
    EXPECT_EQ(memmap::ctxAddr(0), memmap::kCtxBase);
    EXPECT_EQ(memmap::ctxAddr(1), memmap::kCtxBase + 128);
    EXPECT_EQ(memmap::ctxAddr(7), memmap::kCtxBase + 7 * 128);
}

} // namespace
} // namespace rtu
