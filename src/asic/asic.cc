#include "asic.hh"

#include <cmath>

#include "common/logging.hh"
#include "tech.hh"

namespace rtu {

namespace {

/** Sparse-mux + bank-switch structure of the alternate register file
 *  (paper Section 4.2 optimization (1)). */
constexpr unsigned kAltRfRegs = 29;
constexpr unsigned kCv32rtSnapRegs = 16;

struct CoreFactors
{
    double baseGE;
    double routing;          ///< congestion factor on RF structures
    double renameDupGE;      ///< NaxRiscv: duplicated translation logic
    double hazardLogicGE;    ///< SWITCH_RF hazard handling (store, no L)
    double loadIntegrationGE;///< mret stall / restore integration
    double schedStoreGE;     ///< store+sched pipeline integration
    double preloadIntegrationGE;
    double cv32rtPortGE;     ///< dedicated port (+read ports on Nax)
};

CoreFactors
factorsFor(CoreKind core)
{
    switch (core) {
      case CoreKind::kCv32e40p:
        // schedStoreGE recalibrated against the paper's Fig 10
        // anchors (ST +33 %, SLT +31..33 % on CV32E40P): 6.5 kGE
        // overshot both to ~+36 %.
        return {tech::kCv32e40pBaseGE, 1.55, 0, 800, 500, 5'000, 800,
                8'000};
      case CoreKind::kCva6:
        // CVA6's SWITCH_RF hazard logic makes (S*) cost more than the
        // matching (S*L*) configuration (paper Section 6.3).
        return {tech::kCva6BaseGE, 1.05, 0, 9'000, 600, 28'000, 25'000,
                7'000};
      case CoreKind::kNax:
        // Renaming duplication dominates (S); CV32RT needs 16 extra
        // physical read ports under renaming (paper Section 6.3).
        return {tech::kNaxBaseGE, 1.0, 90'000, 0, 10'000, 3'000, 8'000,
                152'000};
    }
    panic("unknown core kind");
}

/** One hardware scheduler list slot (id, prio, delay, valid, seq,
 *  comparator share) — calibrated so 64+64 slots cost ~14 % of
 *  CV32E40P (paper Fig 12). */
constexpr double kListSlotGE = 65.0;

} // namespace

double
AsicModel::baseGE(CoreKind core)
{
    return factorsFor(core).baseGE;
}

double
AsicModel::routingFactor(CoreKind core)
{
    return factorsFor(core).routing;
}

AreaResult
AsicModel::area(CoreKind core, const RtosUnitConfig &unit)
{
    const CoreFactors f = factorsFor(core);
    AreaResult res;
    res.breakdownGE["core"] = f.baseGE;

    if (unit.cv32rt) {
        const double snap =
            kCv32rtSnapRegs * 32 * tech::kFlopGE * f.routing;
        res.breakdownGE["cv32rt-snapshot"] = snap;
        res.breakdownGE["cv32rt-port"] = f.cv32rtPortGE;
    } else {
        if (unit.store) {
            const double rf_flops =
                kAltRfRegs * 32 * tech::kFlopGE * f.routing;
            const double rf_mux =
                kAltRfRegs * 32 * tech::kMuxBitGE * f.routing;
            res.breakdownGE["alt-regfile"] = rf_flops;
            res.breakdownGE["rf-muxing"] = rf_mux;
            res.breakdownGE["store-fsm"] = 800;
            res.breakdownGE["mem-arbiter"] = 300;
            if (f.renameDupGE > 0)
                res.breakdownGE["rename-dup"] = f.renameDupGE;
            if (!unit.load && f.hazardLogicGE > 0)
                res.breakdownGE["switchrf-hazard"] = f.hazardLogicGE;
        }
        if (unit.load) {
            res.breakdownGE["restore-fsm"] = 600;
            res.breakdownGE["load-integration"] = f.loadIntegrationGE;
        }
        if (unit.sched) {
            res.breakdownGE["hw-lists"] =
                2.0 * unit.listSlots * kListSlotGE;
            res.breakdownGE["sched-control"] = 400;
            if (unit.store)
                res.breakdownGE["sched-store-integration"] =
                    f.schedStoreGE;
        }
        if (unit.dirty)
            res.breakdownGE["dirty-bits"] = 29 * tech::kFlopGE + 250;
        if (unit.hwsync) {
            // Future-work extension: one wait queue + counter per
            // hardware semaphore.
            res.breakdownGE["hw-sync"] =
                unit.semSlots * (unit.listSlots * kListSlotGE + 120.0);
        }
        if (unit.preload) {
            res.breakdownGE["preload-buffer"] =
                31 * 32 * tech::kFlopGE + 1'000;
            res.breakdownGE["preload-integration"] =
                f.preloadIntegrationGE;
        }
    }

    for (const auto &[name, ge] : res.breakdownGE)
        res.totalGE += ge;
    res.areaMm2 = res.totalGE * tech::kGateAreaUm2 * 1e-6;
    res.normalized = res.totalGE / f.baseGE;
    return res;
}

double
AsicModel::fmaxGHz(CoreKind core, const RtosUnitConfig &unit)
{
    double base;
    switch (core) {
      case CoreKind::kCv32e40p: base = tech::kCv32e40pBaseFmaxGHz; break;
      case CoreKind::kCva6: base = tech::kCva6BaseFmaxGHz; break;
      case CoreKind::kNax: base = tech::kNaxBaseFmaxGHz; break;
      default: panic("unknown core kind");
    }
    if (unit.isVanilla())
        return base;

    switch (core) {
      case CoreKind::kCv32e40p:
        // The RF mux sits in the operand-read path: ~15 % across all
        // RTOSUnit configurations; CV32RT's snapshot is off the
        // critical path (paper Fig 11).
        return unit.cv32rt ? base : base * 0.85;
      case CoreKind::kCva6:
        return unit.cv32rt ? base * 0.98 : base * 0.92;
      case CoreKind::kNax:
        // Stable except for preloading's lockstep write path.
        return unit.preload ? base * 0.96 : base;
      default:
        panic("unknown core kind");
    }
}

PowerResult
AsicModel::power(CoreKind core, const RtosUnitConfig &unit,
                 const ActivityCounters &activity, double freq_mhz)
{
    rtu_assert(activity.cycles > 0, "power model needs a real run");
    const AreaResult ar = area(core, unit);
    PowerResult res;

    // Static: leakage proportional to area (the paper's "strong
    // correlation between area and power" at 22 nm).
    res.staticMw = ar.areaMm2 * tech::kStaticMwPerMm2;

    // Dynamic: per-event energies from the measured activity of the
    // run, plus clock-tree power over the clocked area. The RTOSUnit's
    // structures are flop-rich (register banks, list slots, buffers),
    // so their per-GE toggle power exceeds the logic-dominated base
    // core; the factor is a per-core calibration (small cores pay
    // relatively more, matching the paper's relative increases).
    double toggle_factor;
    switch (core) {
      case CoreKind::kCv32e40p: toggle_factor = 2.2; break;
      case CoreKind::kCva6: toggle_factor = 2.0; break;
      default: toggle_factor = 0.6; break;
    }
    const double base_ge = baseGE(core);
    const double effective_ge =
        base_ge + (ar.totalGE - base_ge) * toggle_factor;
    const double cycles = static_cast<double>(activity.cycles);
    const double insn_scale = ar.totalGE / tech::kCv32e40pBaseGE;
    const double energy_pj =
        static_cast<double>(activity.instret) *
            tech::kEnergyPerInsnBasePj * std::sqrt(insn_scale) +
        static_cast<double>(activity.memOps) * tech::kEnergyPerMemOpPj +
        static_cast<double>(activity.unitMemWords) *
            tech::kEnergyPerUnitWordPj +
        static_cast<double>(activity.sortPhases) *
            tech::kEnergyPerSortPhasePj +
        static_cast<double>(activity.traps) * tech::kEnergyPerTrapPj +
        cycles * (effective_ge / 1000.0) * tech::kClockPjPerKGE;

    // Average energy per cycle times frequency.
    const double pj_per_cycle = energy_pj / cycles;
    res.dynamicMw = pj_per_cycle * freq_mhz * 1e-3;
    return res;
}

} // namespace rtu
