/**
 * @file
 * 22 nm technology calibration constants for the analytical
 * implementation models (area, f_max, power).
 *
 * The paper evaluates chip layouts produced by commercial EDA tools on
 * a 22 nm node; that flow is not reproducible here, so DESIGN.md
 * documents this substitution: every constant below is a
 * gate-equivalent (GE) or energy coefficient in the plausible range
 * for a 22 nm FD-SOI-class process, and the *structure counts* they
 * multiply are taken from the actual hardware composition of each
 * RTOSUnit configuration. Absolute numbers are therefore estimates;
 * the relative trends (which configuration costs what) follow from
 * structure, as in the paper.
 */

#ifndef RTU_ASIC_TECH_HH
#define RTU_ASIC_TECH_HH

namespace rtu::tech {

/** Area of one gate equivalent (NAND2) in um^2. */
constexpr double kGateAreaUm2 = 0.3;

/** Gate equivalents per storage/logic primitive. */
constexpr double kFlopGE = 6.0;
constexpr double kMuxBitGE = 2.0;
constexpr double kComparatorBitGE = 1.5;
constexpr double kAdderBitGE = 4.0;

/** Baseline core complexity (GE), calibrated to published 22 nm data:
 *  CV32E40P ~0.018 mm^2, CVA6 ~0.15 mm^2 (no cache SRAM macros),
 *  NaxRiscv ~0.25 mm^2 (no SRAM macros, as in the paper's Fig 10). */
constexpr double kCv32e40pBaseGE = 60'000;
constexpr double kCva6BaseGE = 500'000;
constexpr double kNaxBaseGE = 830'000;

/** Baseline achievable frequency (GHz) at the fixed synthesis target
 *  (paper Fig 11: GHz-range, embedded parts run far below). */
constexpr double kCv32e40pBaseFmaxGHz = 1.40;
constexpr double kCva6BaseFmaxGHz = 1.10;
constexpr double kNaxBaseFmaxGHz = 0.95;

/** Static power density (mW per mm^2): leakage dominates trends at
 *  22 nm and below (paper Section 6.3). */
constexpr double kStaticMwPerMm2 = 35.0;

/** Dynamic energy coefficients (pJ per event) at nominal voltage. */
constexpr double kEnergyPerInsnBasePj = 3.0;   ///< scaled by core size
constexpr double kEnergyPerMemOpPj = 4.0;
constexpr double kEnergyPerUnitWordPj = 3.5;   ///< FSM word transfer
constexpr double kEnergyPerSortPhasePj = 1.2;
constexpr double kEnergyPerTrapPj = 20.0;
/** Clock-tree + idle toggling: fraction of active-area power. */
constexpr double kClockTreeAlpha = 0.09;
/** pJ per kGE of clocked area per cycle (clock tree scale). */
constexpr double kClockPjPerKGE = 0.08;

} // namespace rtu::tech

#endif // RTU_ASIC_TECH_HH
