/**
 * @file
 * Analytical ASIC implementation models: silicon area (Fig 10 and
 * Fig 12), maximum frequency (Fig 11) and average power (Fig 13).
 *
 * Area is accounted bottom-up from the structures each configuration
 * instantiates (alternate register file + sparse muxing, FSMs,
 * scheduler list slots, preload buffer, renaming duplication on
 * NaxRiscv, the CV32RT snapshot bank and its extra read ports under
 * renaming), with per-core integration factors for routing
 * congestion. Frequency applies the critical-path penalties the paper
 * reports per core. Power combines static leakage (proportional to
 * area) with dynamic energy derived from the activity counters of an
 * actual simulation run — the analytical analogue of the paper's
 * gate-level waveform power flow.
 */

#ifndef RTU_ASIC_ASIC_HH
#define RTU_ASIC_ASIC_HH

#include <map>
#include <string>

#include "cores/core.hh"
#include "harness/experiment.hh"
#include "rtosunit/config.hh"

namespace rtu {

struct AreaResult
{
    double totalGE = 0;
    double areaMm2 = 0;
    double normalized = 1.0;  ///< vs the same core's vanilla build
    std::map<std::string, double> breakdownGE;
};

struct PowerResult
{
    double staticMw = 0;
    double dynamicMw = 0;
    double totalMw() const { return staticMw + dynamicMw; }
};

class AsicModel
{
  public:
    /** Area of @p core with @p unit (Fig 10; Fig 12 via listSlots). */
    static AreaResult area(CoreKind core, const RtosUnitConfig &unit);

    /** Achievable frequency in GHz (Fig 11). */
    static double fmaxGHz(CoreKind core, const RtosUnitConfig &unit);

    /**
     * Average power at @p freq_mhz using measured switching activity
     * (Fig 13; the paper runs mutex_workload at 500 MHz).
     */
    static PowerResult power(CoreKind core, const RtosUnitConfig &unit,
                             const ActivityCounters &activity,
                             double freq_mhz);

  private:
    static double baseGE(CoreKind core);
    static double routingFactor(CoreKind core);
};

} // namespace rtu

#endif // RTU_ASIC_ASIC_HH
