/**
 * @file
 * The RTOSUnit: the paper's configurable hardware unit for scheduling
 * and context switching (Section 4).
 *
 * Composition (all optional, see RtosUnitConfig):
 *  - context store FSM: on interrupt entry the core is switched to the
 *    ISR register bank while the FSM drains the application bank
 *    (29 GPRs + mepc + mstatus = 31 words) to the task's fixed slice
 *    of the context memory region, one word per free memory cycle;
 *  - context restore FSM: the inverse, triggered by SET_CONTEXT_ID /
 *    GET_HW_SCHED; `mret` stalls until it completes;
 *  - hardware scheduler: ready + delay lists (see hw_lists.hh), the
 *    auto-resetting timer, and GET_HW_SCHED round-robin pop;
 *  - dirty bits: store only registers written since the last switch;
 *  - load omission: skip the restore when next == previous;
 *  - preloading: speculatively fetch the ready-list head's context
 *    into a 31-word buffer and apply it in lockstep with the store
 *    FSM, so a correct prediction makes the restore free.
 */

#ifndef RTU_RTOSUNIT_RTOSUNIT_HH
#define RTU_RTOSUNIT_RTOSUNIT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "common/types.hh"
#include "config.hh"
#include "cores/arch_state.hh"
#include "cores/rtosunit_port.hh"
#include "hw_lists.hh"
#include "sim/kernel.hh"
#include "sim/memmap.hh"
#include "trace/trace.hh"
#include "unit_mem.hh"

namespace rtu {

/** Number of context words per task: mepc, mstatus, 29 GPRs. */
constexpr unsigned kCtxWords = 31;

/**
 * Context word index -> architectural register. Indices 0 and 1 are
 * mepc and mstatus; 2..30 map to x1, x2, x5..x31 (x0 is constant,
 * x3/gp and x4/tp are static in FreeRTOS and never saved — paper
 * Section 3).
 */
RegIndex ctxReg(unsigned idx);

struct RtosUnitStats
{
    std::uint64_t trapEntries = 0;
    std::uint64_t storeRuns = 0;
    std::uint64_t storeWords = 0;
    std::uint64_t restoreRuns = 0;
    std::uint64_t restoreWords = 0;
    std::uint64_t dirtySkippedWords = 0;
    std::uint64_t loadOmissions = 0;
    std::uint64_t preloadHits = 0;
    std::uint64_t preloadMisses = 0;
    std::uint64_t preloadFetches = 0;
    std::uint64_t busyCycles = 0;  ///< any FSM active
    std::uint64_t semTakes = 0;
    std::uint64_t semBlocks = 0;
    std::uint64_t semGives = 0;
    std::uint64_t semWakes = 0;
};

class RtosUnit : public RtosUnitPort, public Clocked
{
  public:
    RtosUnit(const RtosUnitConfig &config, ArchState &state,
             UnitMemPort &port);

    const RtosUnitConfig &config() const { return config_; }

    /** Advance one clock cycle (called after the core's tick). */
    void tick(Cycle now) override;

    /** `now` while any FSM, sort, transfer, prefetch or port request
     *  is (or would go) active this cycle; kNoEvent when the unit can
     *  only be woken by a core instruction or trap hook. */
    Cycle nextEventAt(Cycle now) const override;

    /** Quiescent cycles only advance the port's internal clock. */
    void skipTo(Cycle now, Cycle target) override;

    /** One-line FSM state description for hang diagnostics. */
    std::string fsmState() const;

    /**
     * Phase tracing: @p clock is the simulation's cycle counter (so
     * instruction-triggered phases like GET_HW_SCHED are stamped with
     * the core's cycle, not the unit's last tick); @p observer
     * receives store-done / sched-done / load-done boundaries.
     */
    void
    setPhaseObserver(PhaseObserver *observer, const Cycle *clock)
    {
        phaseObserver_ = observer;
        clock_ = clock;
    }

    // ---- RtosUnitPort -------------------------------------------------
    void setContextId(Word id) override;
    Word getHwSched() override;
    void addReady(Word id, Word prio) override;
    void addDelay(Word prio, Word ticks) override;
    void rmTask(Word id) override;
    void switchRf() override;
    Word semTake(Word sem_id) override;
    Word semGive(Word sem_id) override;
    bool switchRfStall() const override;
    bool getHwSchedStall() const override;
    bool mretStall() const override;
    bool semOpStall() const override;
    void onTrapEntry(Word cause) override;
    void onMretExecuted() override;

    // ---- fault injection (src/inject campaign engine) ------------------
    /**
     * Freeze the whole unit — FSMs, list sorting, delay transfers,
     * port pipelining — for @p cycles ticks. Models a clock-gating /
     * handshake fault; the core keeps running and simply observes the
     * stall conditions for longer. Cumulative across calls.
     */
    void injectStall(Cycle cycles) { stallRemaining_ += cycles; }

    /**
     * Deny the unit's memory port for @p cycles ticks (requests see
     * canAccept() == false). Models transient memory-latency
     * perturbation on the context traffic path. Cumulative.
     */
    void injectPortBlock(Cycle cycles) { portBlockRemaining_ += cycles; }

    /**
     * Kill whichever context FSM is active mid-transfer, leaving its
     * partial state in place (unwritten context words, a half-restored
     * register file). Returns "store" / "restore", or "" when both
     * FSMs were idle (the injection did not fire).
     */
    const char *injectAbortFsm();

    // ---- inspection ----------------------------------------------------
    bool storeBusy() const { return storeActive_; }
    bool restoreBusy() const
    {
        return restoreActive_ || restorePending_;
    }
    TaskId currentCtxId() const { return currentCtxId_; }
    const RtosUnitStats &stats() const { return stats_; }
    const HwReadyList &readyList() const { return ready_; }
    const HwDelayList &delayList() const { return delay_; }

  private:
    void startStoreFsm();
    void scheduleRestore(TaskId id);
    void stepStoreFsm();
    void stepRestoreFsm();
    void stepPreloader();
    void abortPreload();
    void notifyPhase(SwitchPhase phase);
    /** Would stepPreloader() spontaneously start a prefetch now? */
    bool wouldStartPreload() const;
    /** Port acceptance gated by an injected port block. */
    bool
    portFree() const
    {
        return portBlockRemaining_ == 0 && port_.canAccept();
    }

    RtosUnitConfig config_;
    ArchState &state_;
    UnitMemPort &port_;

    PhaseObserver *phaseObserver_ = nullptr;
    const Cycle *clock_ = nullptr;

    HwReadyList ready_;
    HwDelayList delay_;

    /** Hardware counting semaphores (future-work extension, §7). */
    struct HwSemaphore
    {
        Word count = 0;
        std::unique_ptr<HwReadyList> waiters;
    };
    std::vector<HwSemaphore> sems_;

    /** Task whose context currently occupies the application RF. */
    TaskId currentCtxId_ = 0;
    /** Priority of that task (from the last ready-list pop). */
    Priority currentPrio_ = 0;

    // ---- store FSM ----------------------------------------------------
    bool storeActive_ = false;
    unsigned storeIdx_ = 0;
    TaskId storeTask_ = 0;
    Word storeMepc_ = 0;
    Word storeMstatus_ = 0;
    std::array<bool, 32> storeDirty_{};

    // ---- restore FSM ---------------------------------------------------
    bool restoreActive_ = false;
    bool restorePending_ = false;
    TaskId restoreTask_ = 0;
    unsigned restoreReqIdx_ = 0;
    unsigned restoreRespIdx_ = 0;

    /** Which task's context the application RF holds (load omission). */
    TaskId rfHolds_ = 0;
    bool rfHoldsValid_ = false;

    // ---- preloader ------------------------------------------------------
    bool preActive_ = false;
    bool preAborting_ = false;
    unsigned preReqIdx_ = 0;
    unsigned preRespIdx_ = 0;
    TaskId preTask_ = 0;
    std::array<Word, kCtxWords> preBuf_{};
    bool preBufValid_ = false;
    TaskId preBufId_ = 0;
    /** Lockstep application armed for the current switch episode. */
    bool lockstepActive_ = false;
    TaskId lockstepId_ = 0;
    bool lockstepSatisfies_ = false;  ///< prediction confirmed correct

    // ---- injected faults -------------------------------------------------
    Cycle stallRemaining_ = 0;      ///< whole-unit freeze ticks left
    Cycle portBlockRemaining_ = 0;  ///< port-deny ticks left

    RtosUnitStats stats_;
};

} // namespace rtu

#endif // RTU_RTOSUNIT_RTOSUNIT_HH
