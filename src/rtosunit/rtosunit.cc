#include "rtosunit.hh"

#include "common/logging.hh"

namespace rtu {

RegIndex
ctxReg(unsigned idx)
{
    rtu_assert(idx >= 2 && idx < kCtxWords, "context word %u has no "
               "register", idx);
    // 2 -> x1 (ra), 3 -> x2 (sp), 4..30 -> x5..x31.
    if (idx == 2)
        return 1;
    if (idx == 3)
        return 2;
    return static_cast<RegIndex>(idx + 1);
}

namespace {

/** mstatus bits a context restore may modify. */
constexpr Word kMstatusCtxMask =
    mstatus::kMie | mstatus::kMpie | mstatus::kMppMask;

} // namespace

RtosUnit::RtosUnit(const RtosUnitConfig &config, ArchState &state,
                   UnitMemPort &port)
    : config_(config), state_(state), port_(port),
      ready_(config.listSlots), delay_(config.listSlots, ready_)
{
    std::string why;
    if (!config_.validate(&why))
        fatal("invalid RTOSUnit configuration: %s", why.c_str());
    rtu_assert(!config_.cv32rt,
               "use Cv32rtUnit for the CV32RT baseline");
    if (config_.hwsync) {
        sems_.resize(config_.semSlots);
        for (HwSemaphore &s : sems_)
            s.waiters = std::make_unique<HwReadyList>(config_.listSlots);
    }
}

// ---- custom instructions ----------------------------------------------

void
RtosUnit::setContextId(Word id)
{
    rtu_assert(config_.store || config_.load,
               "SET_CONTEXT_ID requires context storing/loading");
    rtu_assert(id < memmap::kCtxMaxTasks, "task id %u out of range", id);
    currentCtxId_ = static_cast<TaskId>(id);
    if (config_.load)
        scheduleRestore(currentCtxId_);
}

Word
RtosUnit::getHwSched()
{
    rtu_assert(config_.sched, "GET_HW_SCHED requires hardware scheduling");
    Priority prio = 0;
    const TaskId id = ready_.popHeadRoundRobin(&prio);
    currentCtxId_ = id;
    currentPrio_ = prio;
    notifyPhase(SwitchPhase::kSchedDone);
    if (config_.load)
        scheduleRestore(id);
    return id;
}

void
RtosUnit::addReady(Word id, Word prio)
{
    rtu_assert(config_.sched, "ADD_READY requires hardware scheduling");
    rtu_assert(id < memmap::kCtxMaxTasks, "task id %u out of range", id);
    ready_.insert(static_cast<TaskId>(id), static_cast<Priority>(prio));
}

void
RtosUnit::addDelay(Word prio, Word ticks)
{
    rtu_assert(config_.sched, "ADD_DELAY requires hardware scheduling");
    delay_.insert(currentCtxId_, static_cast<Priority>(prio), ticks);
}

void
RtosUnit::rmTask(Word id)
{
    rtu_assert(config_.sched, "RM_TASK requires hardware scheduling");
    ready_.remove(static_cast<TaskId>(id));
    delay_.remove(static_cast<TaskId>(id));
    for (HwSemaphore &s : sems_)
        s.waiters->remove(static_cast<TaskId>(id));
}

void
RtosUnit::switchRf()
{
    rtu_assert(config_.store, "SWITCH_RF requires context storing");
    rtu_assert(!storeActive_, "SWITCH_RF executed while the store FSM "
               "is draining (stall logic failed)");
    state_.setActiveBank(ArchState::kAppBank);
}

// ---- hardware semaphores (future-work extension, §7) ---------------------

Word
RtosUnit::semTake(Word sem_id)
{
    rtu_assert(config_.hwsync, "SEM_TAKE without the +HS extension");
    rtu_assert(sem_id < sems_.size(), "semaphore id %u out of range",
               sem_id);
    HwSemaphore &s = sems_[sem_id];
    ++stats_.semTakes;
    if (s.count > 0) {
        --s.count;
        return 1;
    }
    // Block the running task: retire it from the ready list and park
    // it in the semaphore's priority-ordered wait queue. The caller
    // yields; no interrupt-disable window is needed because the whole
    // transition is one instruction.
    ready_.remove(currentCtxId_);
    s.waiters->insert(currentCtxId_, currentPrio_);
    ++stats_.semBlocks;
    return 0;
}

Word
RtosUnit::semGive(Word sem_id)
{
    rtu_assert(config_.hwsync, "SEM_GIVE without the +HS extension");
    rtu_assert(sem_id < sems_.size(), "semaphore id %u out of range",
               sem_id);
    HwSemaphore &s = sems_[sem_id];
    ++stats_.semGives;
    TaskId id = 0;
    Priority prio = 0;
    if (s.waiters->popHeadRemove(&id, &prio)) {
        // Hand the token straight to the highest-priority waiter.
        ready_.insert(id, prio);
        ++stats_.semWakes;
        return prio > currentPrio_ ? 1 : 0;
    }
    ++s.count;
    return 0;
}

// ---- stall conditions ---------------------------------------------------

bool
RtosUnit::switchRfStall() const
{
    return storeActive_;
}

bool
RtosUnit::getHwSchedStall() const
{
    return ready_.sorting() || delay_.transferring();
}

bool
RtosUnit::mretStall() const
{
    return storeActive_ || restoreActive_ || restorePending_;
}

bool
RtosUnit::semOpStall() const
{
    for (const HwSemaphore &s : sems_) {
        if (s.waiters->sorting())
            return true;
    }
    return false;
}

// ---- trap boundary -------------------------------------------------------

void
RtosUnit::onTrapEntry(Word cause)
{
    ++stats_.trapEntries;
    if (config_.sched && cause == mcause::kMachineTimer)
        delay_.timerTick();
    if (config_.store) {
        if (preActive_)
            abortPreload();
        startStoreFsm();
        state_.setActiveBank(ArchState::kIsrBank);
    }
}

void
RtosUnit::onMretExecuted()
{
    if (config_.store) {
        rtu_assert(!mretStall(), "mret executed while context FSMs are "
                   "busy (stall logic failed)");
        state_.setActiveBank(ArchState::kAppBank);
        state_.clearDirtyBits();
    }
}

// ---- store FSM ------------------------------------------------------------

void
RtosUnit::startStoreFsm()
{
    rtu_assert(!storeActive_ && !restoreActive_ && !restorePending_,
               "context switch episode while FSMs are busy");
    storeActive_ = true;
    storeIdx_ = 0;
    storeTask_ = currentCtxId_;
    storeMepc_ = state_.csrs.mepc;
    storeMstatus_ = state_.csrs.mstatus;
    for (RegIndex r = 0; r < 32; ++r)
        storeDirty_[r] = state_.regDirty(r);
    state_.clearDirtyBits();
    ++stats_.storeRuns;

    // Arm lockstep preloading: while the old context drains, the
    // buffered context is written right behind it (paper Section 4.7).
    lockstepActive_ = config_.preload && preBufValid_;
    if (lockstepActive_) {
        lockstepId_ = preBufId_;
        lockstepSatisfies_ = false;
        preBufValid_ = false;  // consumed
        rfHoldsValid_ = false; // RF being overwritten word by word
    }
}

void
RtosUnit::stepStoreFsm()
{
    if (!storeActive_)
        return;

    auto skip = [this](unsigned idx) {
        return config_.dirty && idx >= 2 && !storeDirty_[ctxReg(idx)];
    };

    // Dirty-bit mask scanning is combinational: skipped words cost no
    // cycles.
    while (storeIdx_ < kCtxWords && skip(storeIdx_)) {
        ++stats_.dirtySkippedWords;
        ++storeIdx_;
    }

    if (storeIdx_ < kCtxWords) {
        if (portFree()) {
            Word value;
            if (storeIdx_ == 0)
                value = storeMepc_;
            else if (storeIdx_ == 1)
                value = storeMstatus_;
            else
                value = state_.bankReg(ArchState::kAppBank,
                                       ctxReg(storeIdx_));
            port_.pushWrite(memmap::ctxAddr(storeTask_) + 4 * storeIdx_,
                            value);
            ++stats_.storeWords;
            // Rewriting a context invalidates a stale preload of it.
            if (preBufValid_ && preBufId_ == storeTask_)
                preBufValid_ = false;
            if (lockstepActive_) {
                const Word pv = preBuf_[storeIdx_];
                if (storeIdx_ == 0) {
                    state_.csrs.mepc = pv & ~Word{1};
                } else if (storeIdx_ == 1) {
                    state_.csrs.mstatus = pv & kMstatusCtxMask;
                } else {
                    state_.setBankReg(ArchState::kAppBank,
                                      ctxReg(storeIdx_), pv);
                }
            }
            ++storeIdx_;
        } else {
            ++port_.stats().rejectCycles;
        }
    }

    if (storeIdx_ == kCtxWords && port_.idle()) {
        storeActive_ = false;
        notifyPhase(SwitchPhase::kStoreDone);
        if (lockstepActive_) {
            rfHolds_ = lockstepId_;
            rfHoldsValid_ = true;
            lockstepActive_ = false;
            // A confirmed lockstep preload IS the restore: it finishes
            // with the drain it shadowed.
            if (lockstepSatisfies_)
                notifyPhase(SwitchPhase::kLoadDone);
        } else {
            // A plain drain leaves the stored task's values in place.
            rfHolds_ = storeTask_;
            rfHoldsValid_ = true;
        }
    }
}

// ---- restore FSM ------------------------------------------------------------

void
RtosUnit::scheduleRestore(TaskId id)
{
    if (lockstepActive_ && lockstepId_ == id) {
        // Correct preload prediction: the lockstep write-behind is the
        // restore; nothing further to do.
        lockstepSatisfies_ = true;
        ++stats_.preloadHits;
        return;
    }
    if (lockstepActive_) {
        // Wrong prediction: the RF is being filled with the wrong
        // context; a full restore must follow the store.
        ++stats_.preloadMisses;
    } else if (config_.omit && rfHoldsValid_ && rfHolds_ == id) {
        // Load omission: previous == next, the application RF already
        // holds the right values (memory is made consistent by the
        // store that precedes any restore).
        ++stats_.loadOmissions;
        notifyPhase(SwitchPhase::kLoadDone);
        return;
    }
    rtu_assert(!restoreActive_, "restore scheduled while one is running");
    restorePending_ = true;
    restoreTask_ = id;
}

void
RtosUnit::stepRestoreFsm()
{
    if (restorePending_ && !storeActive_ && !restoreActive_ &&
        !preActive_ && !preAborting_) {
        restorePending_ = false;
        restoreActive_ = true;
        restoreReqIdx_ = 0;
        restoreRespIdx_ = 0;
        ++stats_.restoreRuns;
    }
    if (!restoreActive_)
        return;

    if (restoreReqIdx_ < kCtxWords && portFree()) {
        port_.pushRead(memmap::ctxAddr(restoreTask_) + 4 * restoreReqIdx_);
        ++restoreReqIdx_;
    } else if (restoreReqIdx_ < kCtxWords) {
        ++port_.stats().rejectCycles;
    }

    Word w;
    while (restoreRespIdx_ < restoreReqIdx_ && port_.popResponse(&w)) {
        if (restoreRespIdx_ == 0) {
            state_.csrs.mepc = w & ~Word{1};
        } else if (restoreRespIdx_ == 1) {
            state_.csrs.mstatus = w & kMstatusCtxMask;
        } else {
            state_.setBankReg(ArchState::kAppBank, ctxReg(restoreRespIdx_),
                              w);
        }
        ++restoreRespIdx_;
        ++stats_.restoreWords;
    }

    if (restoreRespIdx_ == kCtxWords) {
        restoreActive_ = false;
        rfHolds_ = restoreTask_;
        rfHoldsValid_ = true;
        notifyPhase(SwitchPhase::kLoadDone);
    }
}

// ---- preloader -----------------------------------------------------------

void
RtosUnit::abortPreload()
{
    preActive_ = false;
    preAborting_ = !port_.idle();
}

void
RtosUnit::stepPreloader()
{
    if (preAborting_) {
        Word w;
        while (port_.popResponse(&w)) {
            // Discard responses of the aborted prefetch.
        }
        if (port_.idle())
            preAborting_ = false;
        return;
    }
    if (!config_.preload)
        return;
    if (storeActive_ || restoreActive_ || restorePending_) {
        // A real context transfer outranks speculation; abandon any
        // prefetch in flight so the restore can take the port.
        if (preActive_)
            abortPreload();
        return;
    }

    if (!preActive_) {
        if (ready_.sorting())
            return;
        TaskId head;
        if (!ready_.peekHead(&head))
            return;
        // Never prefetch the running task: its context memory is stale
        // until the next store drains it.
        if (head == currentCtxId_)
            return;
        if (preBufValid_ && preBufId_ == head)
            return;
        preActive_ = true;
        preTask_ = head;
        preReqIdx_ = 0;
        preRespIdx_ = 0;
        return;
    }

    // Re-validate the prediction while fetching.
    TaskId head;
    if (!ready_.sorting() &&
        (!ready_.peekHead(&head) || head != preTask_)) {
        abortPreload();
        return;
    }

    if (preReqIdx_ < kCtxWords && portFree()) {
        port_.pushRead(memmap::ctxAddr(preTask_) + 4 * preReqIdx_);
        ++preReqIdx_;
    }

    Word w;
    while (preRespIdx_ < preReqIdx_ && port_.popResponse(&w)) {
        preBuf_[preRespIdx_] = w;
        ++preRespIdx_;
    }

    if (preRespIdx_ == kCtxWords) {
        preActive_ = false;
        preBufValid_ = true;
        preBufId_ = preTask_;
        ++stats_.preloadFetches;
    }
}

// ---- fault injection -----------------------------------------------------

const char *
RtosUnit::injectAbortFsm()
{
    if (storeActive_) {
        // Kill the drain mid-flight: words [storeIdx_, kCtxWords) of
        // the outgoing task's context never reach memory, and any
        // lockstep preload dies with it, leaving the RF with whatever
        // mix of old/new words it had applied so far. Nothing marks
        // the slice as torn — exactly the silent corruption the
        // context-integrity oracle must catch at the task's resume.
        storeActive_ = false;
        lockstepActive_ = false;
        rfHoldsValid_ = false;
        return "store";
    }
    if (restoreActive_ || restorePending_) {
        restorePending_ = false;
        restoreActive_ = false;
        // Drain in-flight read responses through the preloader's
        // abort path so they cannot alias a later transfer.
        preAborting_ = !port_.idle();
        rfHoldsValid_ = false;
        return "restore";
    }
    return "";
}

void
RtosUnit::notifyPhase(SwitchPhase phase)
{
    if (phaseObserver_ && clock_)
        phaseObserver_->phaseReached(phase, *clock_);
}

// ---- clock ------------------------------------------------------------------

void
RtosUnit::tick(Cycle now)
{
    (void)now;
    if (stallRemaining_ > 0) {
        // Injected whole-unit freeze: nothing steps, nothing drains.
        // The core observes the stall conditions for longer; the
        // episode completes late but otherwise intact.
        --stallRemaining_;
        return;
    }
    if (portBlockRemaining_ > 0)
        --portBlockRemaining_;
    ready_.tick();
    delay_.tick();
    for (HwSemaphore &s : sems_)
        s.waiters->tick();
    if (config_.sched)
        delay_.transferTick();
    stepPreloader();
    stepStoreFsm();
    stepRestoreFsm();
    port_.tick();
    if (storeActive_ || restoreActive_ || preActive_)
        ++stats_.busyCycles;
}

bool
RtosUnit::wouldStartPreload() const
{
    // Mirror of stepPreloader()'s spontaneous-start conditions; the
    // FSM-busy cases are excluded by the caller.
    if (!config_.preload || preActive_ || ready_.sorting())
        return false;
    TaskId head;
    if (!ready_.peekHead(&head))
        return false;
    if (head == currentCtxId_)
        return false;
    if (preBufValid_ && preBufId_ == head)
        return false;
    return true;
}

Cycle
RtosUnit::nextEventAt(Cycle now) const
{
    // Injected stall/port-block counters burn down one per tick; a
    // fast-forward skipping those ticks would let the fault linger
    // into a later episode and break campaign determinism.
    if (stallRemaining_ > 0 || portBlockRemaining_ > 0)
        return now;
    if (storeActive_ || restoreActive_ || restorePending_ ||
        preActive_ || preAborting_) {
        return now;
    }
    if (ready_.sorting() || delay_.sorting())
        return now;
    for (const HwSemaphore &s : sems_) {
        if (s.waiters->sorting())
            return now;
    }
    if (config_.sched && delay_.transferring())
        return now;
    if (!port_.idle())
        return now;
    if (wouldStartPreload())
        return now;
    // Only a core instruction or trap hook can wake the unit now.
    return kNoEvent;
}

void
RtosUnit::skipTo(Cycle now, Cycle target)
{
    port_.skipCycles(target - now);
}

std::string
RtosUnit::fsmState() const
{
    return csprintf(
        "store=%d restore=%d restorePending=%d pre=%d preAbort=%d "
        "sorting(ready=%d delay=%d) transferring=%d portIdle=%d "
        "ctxId=%u",
        storeActive_, restoreActive_, restorePending_, preActive_,
        preAborting_, ready_.sorting(), delay_.sorting(),
        config_.sched && delay_.transferring(), port_.idle(),
        static_cast<unsigned>(currentCtxId_));
}

} // namespace rtu
