#include "hw_lists.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtu {

HwListBase::HwListBase(unsigned slots)
{
    rtu_assert(slots > 0, "hardware list needs at least one slot");
    slots_.resize(slots);
}

unsigned
HwListBase::occupancy() const
{
    unsigned n = 0;
    for (const HwSlot &s : slots_)
        n += s.valid ? 1 : 0;
    return n;
}

void
HwListBase::insertSlot(const HwSlot &slot)
{
    for (HwSlot &s : slots_) {
        if (!s.valid) {
            s = slot;
            s.seq = nextSeq_++;
            s.valid = true;
            ++stats_.inserts;
            stats_.maxOccupancy = std::max(stats_.maxOccupancy,
                                           occupancy());
            restartSort();
            return;
        }
    }
    fatal("hardware list overflow (%u slots); the paper's fallback to "
          "software scheduling is out of scope", capacity());
}

void
HwListBase::remove(TaskId id)
{
    bool any = false;
    for (HwSlot &s : slots_) {
        if (s.valid && s.id == id) {
            s.valid = false;
            any = true;
        }
    }
    if (any) {
        ++stats_.removes;
        restartSort();
    }
}

void
HwListBase::tick()
{
    if (phasesLeft_ == 0)
        return;
    ++stats_.sortPhases;
    // Odd-even transposition phase: compare-exchange all disjoint
    // adjacent pairs starting at 0 (even phase) or 1 (odd phase).
    // Invalid slots order after all valid slots.
    const unsigned n = capacity();
    for (unsigned i = phaseOdd_ ? 1 : 0; i + 1 < n; i += 2) {
        HwSlot &a = slots_[i];
        HwSlot &b = slots_[i + 1];
        const bool swap = b.valid && (!a.valid || before(b, a));
        if (swap) {
            std::swap(a, b);
            ++stats_.swaps;
        }
    }
    phaseOdd_ = !phaseOdd_;
    --phasesLeft_;
}

// ---- ready list -------------------------------------------------------

bool
HwReadyList::before(const HwSlot &a, const HwSlot &b) const
{
    if (a.prio != b.prio)
        return a.prio > b.prio;
    return a.seq < b.seq;  // FIFO within a priority class
}

void
HwReadyList::insert(TaskId id, Priority prio)
{
    HwSlot s;
    s.id = id;
    s.prio = prio;
    insertSlot(s);
}

bool
HwReadyList::peekHead(TaskId *id) const
{
    if (!slots_[0].valid)
        return false;
    *id = slots_[0].id;
    return true;
}

TaskId
HwReadyList::popHeadRoundRobin(Priority *prio)
{
    rtu_assert(!sorting(), "ready-list head sampled while sorting");
    HwSlot &head = slots_[0];
    if (!head.valid)
        fatal("hardware ready list empty: no runnable task (the kernel "
              "must keep the idle task ready)");
    const TaskId id = head.id;
    if (prio)
        *prio = head.prio;
    // Requeue at the tail of its priority class: newest sequence
    // number, then let the sorting network re-settle.
    head.seq = nextSeq_++;
    ++stats_.pops;
    restartSort();
    return id;
}

bool
HwReadyList::popHeadRemove(TaskId *id, Priority *prio)
{
    rtu_assert(!sorting(), "wait-queue head sampled while sorting");
    HwSlot &head = slots_[0];
    if (!head.valid)
        return false;
    *id = head.id;
    *prio = head.prio;
    head.valid = false;
    ++stats_.pops;
    restartSort();
    return true;
}

// ---- delay list -------------------------------------------------------

bool
HwDelayList::before(const HwSlot &a, const HwSlot &b) const
{
    if (a.delay != b.delay)
        return a.delay < b.delay;
    if (a.prio != b.prio)
        return a.prio > b.prio;
    return a.seq < b.seq;
}

void
HwDelayList::insert(TaskId id, Priority prio, Word ticks)
{
    rtu_assert(ticks > 0, "zero-tick delay for task %u", id);
    HwSlot s;
    s.id = id;
    s.prio = prio;
    s.delay = ticks;
    insertSlot(s);
}

void
HwDelayList::timerTick()
{
    bool changed = false;
    for (HwSlot &s : slots_) {
        if (s.valid && s.delay > 0) {
            --s.delay;
            changed = true;
        }
    }
    if (changed)
        restartSort();
}

bool
HwDelayList::transferring() const
{
    for (const HwSlot &s : slots_) {
        if (s.valid && s.delay == 0)
            return true;
    }
    return false;
}

void
HwDelayList::transferTick()
{
    // Expired-entry detection is a parallel comparator per slot, so a
    // transfer can proceed even while the sorting network settles.
    for (HwSlot &s : slots_) {
        if (s.valid && s.delay == 0) {
            s.valid = false;
            ready_.insert(s.id, s.prio);
            restartSort();
            return;  // one migration per cycle
        }
    }
}

} // namespace rtu
