/**
 * @file
 * Memory access abstraction for the RTOSUnit's FSMs.
 *
 * The unit pushes at most one request per cycle; the port decides
 * acceptance (arbitration against the core, queue capacity) and
 * delivers read responses strictly in request order. Three
 * implementations exist:
 *  - DirectUnitPort: single-cycle tightly-coupled SRAM behind the
 *    shared LSU port (CV32E40P, paper Section 5.1) or the shared bus
 *    (CVA6, Section 5.2);
 *  - the NaxRiscv LSU ctxQueue port (Section 5.3, Fig 8), defined with
 *    the NaxRiscv core model;
 *  - DedicatedUnitPort: the CV32RT baseline's private memory port.
 */

#ifndef RTU_RTOSUNIT_UNIT_MEM_HH
#define RTU_RTOSUNIT_UNIT_MEM_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"
#include "sim/mem.hh"

namespace rtu {

/** Cache back-invalidation hook (implemented by cache models). */
class UnitCacheHook
{
  public:
    virtual ~UnitCacheHook() = default;
    virtual void invalidateRange(Addr base, unsigned bytes) = 0;
};

struct UnitMemStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rejectCycles = 0;  ///< canAccept() sampled false
};

class UnitMemPort
{
  public:
    virtual ~UnitMemPort() = default;

    /** May one request be pushed this cycle? */
    virtual bool canAccept() const = 0;

    virtual void pushRead(Addr addr) = 0;
    virtual void pushWrite(Addr addr, Word data) = 0;

    /** Pop the next in-order read response if one is ready. */
    virtual bool popResponse(Word *data) = 0;

    /** No requests in flight: writes drained, responses delivered. */
    virtual bool idle() const = 0;

    /** Advance internal pipelining one cycle. */
    virtual void tick() = 0;

    /** Bulk-advance an internal clock across @p delta quiescent
     *  cycles (ports without one ignore this). */
    virtual void skipCycles(Cycle delta) { (void)delta; }

    UnitMemStats &stats() { return stats_; }

  protected:
    UnitMemStats stats_;
};

/**
 * One word per cycle against single-cycle SRAM, arbitrated on a
 * SharedPort where the core has priority (paper Section 4.2(2)).
 */
class DirectUnitPort : public UnitMemPort
{
  public:
    DirectUnitPort(SharedPort &arb, MemSystem &mem)
        : arb_(arb), mem_(mem)
    {}

    bool
    canAccept() const override
    {
        return arb_.available();
    }

    void
    pushRead(Addr addr) override
    {
        const bool granted = arb_.tryUse();
        rtu_assert(granted, "pushRead without arbitration grant");
        responses_.push_back(mem_.read32(addr));
        ++stats_.reads;
    }

    void
    pushWrite(Addr addr, Word data) override
    {
        const bool granted = arb_.tryUse();
        rtu_assert(granted, "pushWrite without arbitration grant");
        mem_.write32(addr, data);
        ++stats_.writes;
    }

    bool
    popResponse(Word *data) override
    {
        if (responses_.empty())
            return false;
        *data = responses_.front();
        responses_.pop_front();
        return true;
    }

    bool idle() const override { return responses_.empty(); }

    void tick() override {}

  private:
    SharedPort &arb_;
    MemSystem &mem_;
    std::deque<Word> responses_;
};

/**
 * The CV32RT baseline's dedicated port: no arbitration, one word per
 * cycle straight to memory.
 */
class DedicatedUnitPort : public UnitMemPort
{
  public:
    explicit DedicatedUnitPort(MemSystem &mem) : mem_(mem) {}

    bool canAccept() const override { return true; }

    void
    pushRead(Addr addr) override
    {
        responses_.push_back(mem_.read32(addr));
        ++stats_.reads;
    }

    void
    pushWrite(Addr addr, Word data) override
    {
        mem_.write32(addr, data);
        ++stats_.writes;
    }

    bool
    popResponse(Word *data) override
    {
        if (responses_.empty())
            return false;
        *data = responses_.front();
        responses_.pop_front();
        return true;
    }

    bool idle() const override { return responses_.empty(); }

    void tick() override {}

  private:
    MemSystem &mem_;
    std::deque<Word> responses_;
};

} // namespace rtu

#endif // RTU_RTOSUNIT_UNIT_MEM_HH
