/**
 * @file
 * RTOSUnit feature configuration (paper Section 4).
 *
 * Features compose with the validity rules the paper states:
 *  - context Loading (L) only works in conjunction with Storing (S);
 *  - load Omission (O) requires L;
 *  - Dirty bits (D) require S (fixed per-task context region);
 *  - Preloading (P) requires S, L and T, and is incompatible with D
 *    (lockstep store/overwrite needs the full store sequence).
 *
 * The evaluated permutations in the paper: vanilla, CV32RT, S, SD,
 * SL, SDLO, T, ST, SDT, SLT, SDLOT, SPLIT.
 */

#ifndef RTU_RTOSUNIT_CONFIG_HH
#define RTU_RTOSUNIT_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace rtu {

struct RtosUnitConfig
{
    bool store = false;    ///< (S) hardware context storing
    bool load = false;     ///< (L) hardware context loading
    bool sched = false;    ///< (T) hardware ready/delay lists
    bool dirty = false;    ///< (D) dirty bits
    bool omit = false;     ///< (O) load omission
    bool preload = false;  ///< (P) speculative context preloading

    /**
     * Hardware counting semaphores ("+HS"): the paper's future-work
     * extension (Section 7). Requires (T): blocking removes the task
     * from the hardware ready list, waking re-inserts it.
     */
    bool hwsync = false;

    /** The CV32RT comparison baseline (Balas et al.). Exclusive. */
    bool cv32rt = false;

    /** Slots in each hardware list (paper default: 8). */
    unsigned listSlots = 8;

    /** Hardware semaphore slots (with hwsync). */
    unsigned semSlots = 4;

    /** Any hardware assistance present at all? */
    bool
    anyHardware() const
    {
        return store || load || sched || hwsync || cv32rt;
    }

    bool isVanilla() const { return !anyHardware(); }

    /** Check the composition rules; returns false and fills @p why. */
    bool validate(std::string *why = nullptr) const;

    /** Paper-style display name: "vanilla", "S", "SDLOT", "SPLIT"... */
    std::string name() const;

    static RtosUnitConfig vanilla() { return {}; }

    /**
     * Parse a paper-style configuration name. Accepts "vanilla",
     * "CV32RT", "SPLIT" (the paper's stylized name for S+P+L+O+T) and
     * any letter combination of S/L/T/D/O/P. Fatal on invalid names
     * or rule violations (user-facing input).
     */
    static RtosUnitConfig fromName(const std::string &name);

    /** The twelve configurations evaluated in the paper, in order. */
    static std::vector<RtosUnitConfig> paperConfigs();

    /** The subset shown in Figure 9 (latency evaluation). */
    static std::vector<RtosUnitConfig> latencyConfigs();

    bool
    operator==(const RtosUnitConfig &o) const
    {
        return store == o.store && load == o.load && sched == o.sched &&
               dirty == o.dirty && omit == o.omit &&
               preload == o.preload && hwsync == o.hwsync &&
               cv32rt == o.cv32rt && listSlots == o.listSlots &&
               semSlots == o.semSlots;
    }
};

} // namespace rtu

#endif // RTU_RTOSUNIT_CONFIG_HH
