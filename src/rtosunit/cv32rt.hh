/**
 * @file
 * Re-implementation of the CV32RT comparison baseline (Balas et al.,
 * paper Section 6): on interrupt entry, half the register file
 * (x16..x31) is snapshotted into a shadow bank in a single cycle and
 * drained to the task's stack frame in the background through a
 * *dedicated* memory port. The other half of the context, scheduling
 * and the entire restore path remain in software.
 *
 * The drain destination follows the kernel's fixed ISR frame
 * convention: the frame is 128 bytes below the interrupted stack
 * pointer, with the hardware-saved half at slots 14..29 (see
 * kernel/layout.hh). On NaxRiscv the dedicated port bypasses the
 * write-back data cache, and the affected lines are invalidated
 * (paper Section 6, CV32RT variant description).
 */

#ifndef RTU_RTOSUNIT_CV32RT_HH
#define RTU_RTOSUNIT_CV32RT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "cores/arch_state.hh"
#include "cores/rtosunit_port.hh"
#include "sim/kernel.hh"
#include "trace/trace.hh"
#include "unit_mem.hh"

namespace rtu {

struct Cv32rtStats
{
    std::uint64_t snapshots = 0;
    std::uint64_t drainedWords = 0;
    std::uint64_t barrierStallCycles = 0;
};

class Cv32rtUnit : public RtosUnitPort, public Clocked
{
  public:
    /** Snapshot covers x16..x31. */
    static constexpr RegIndex kFirstSnapReg = 16;
    static constexpr unsigned kSnapWords = 16;
    /** ISR frame: 32 words; hardware half at word offset 14. */
    static constexpr unsigned kFrameBytes = 128;
    static constexpr unsigned kHwSlotOffset = 14 * 4;

    Cv32rtUnit(ArchState &state, UnitMemPort &port,
               UnitCacheHook *cache = nullptr)
        : state_(state), port_(port), cache_(cache)
    {}

    void tick(Cycle now) override;

    /** `now` while the background drain (or its port) is busy. */
    Cycle
    nextEventAt(Cycle now) const override
    {
        return (drainBusy() || !port_.idle()) ? now : kNoEvent;
    }

    /** Quiescent cycles only advance the port's internal clock. */
    void
    skipTo(Cycle now, Cycle target) override
    {
        port_.skipCycles(target - now);
    }

    /** Phase tracing: store-done fires when the drain completes. */
    void setPhaseObserver(PhaseObserver *observer)
    {
        phaseObserver_ = observer;
    }

    // ---- RtosUnitPort ---------------------------------------------------
    void setContextId(Word id) override;
    Word getHwSched() override;
    void addReady(Word id, Word prio) override;
    void addDelay(Word prio, Word ticks) override;
    void rmTask(Word id) override;
    Word semTake(Word sem_id) override;
    Word semGive(Word sem_id) override;
    /** Re-purposed as the drain barrier in the CV32RT kernel. */
    void switchRf() override {}
    bool switchRfStall() const override;
    bool getHwSchedStall() const override { return false; }
    bool mretStall() const override { return false; }
    void onTrapEntry(Word cause) override;
    void onMretExecuted() override {}

    bool drainBusy() const { return drainIdx_ < kSnapWords; }
    const Cv32rtStats &stats() const { return stats_; }

  private:
    ArchState &state_;
    UnitMemPort &port_;
    UnitCacheHook *cache_;
    PhaseObserver *phaseObserver_ = nullptr;

    std::array<Word, kSnapWords> snapshot_{};
    Addr drainBase_ = 0;
    unsigned drainIdx_ = kSnapWords;  ///< == kSnapWords when idle

    mutable Cv32rtStats stats_;
};

} // namespace rtu

#endif // RTU_RTOSUNIT_CV32RT_HH
