#include "config.hh"

#include "common/logging.hh"

namespace rtu {

bool
RtosUnitConfig::validate(std::string *why) const
{
    auto fail = [why](const char *msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (cv32rt &&
        (store || load || sched || dirty || omit || preload || hwsync))
        return fail("CV32RT is a standalone baseline configuration");
    if (hwsync && !sched)
        return fail("hardware semaphores (+HS) require (T) hardware "
                    "scheduling");
    if (hwsync && (semSlots == 0 || semSlots > 16))
        return fail("hardware semaphore count must be in [1, 16]");
    if (load && !store)
        return fail("(L) context loading requires (S) context storing");
    if (omit && !load)
        return fail("(O) load omission requires (L) context loading");
    if (dirty && !store)
        return fail("(D) dirty bits require (S) context storing");
    if (preload && !(store && load && sched))
        return fail("(P) preloading requires (S), (L) and (T)");
    if (preload && dirty)
        return fail("(P) preloading is incompatible with (D) dirty bits");
    if (listSlots == 0 || listSlots > 64)
        return fail("hardware list length must be in [1, 64]");
    return true;
}

std::string
RtosUnitConfig::name() const
{
    if (cv32rt)
        return "CV32RT";
    if (isVanilla())
        return "vanilla";
    std::string n;
    if (preload) {
        n = "SPLIT";
    } else {
        if (store)
            n += 'S';
        if (dirty)
            n += 'D';
        if (load)
            n += 'L';
        if (omit)
            n += 'O';
        if (sched)
            n += 'T';
    }
    if (hwsync)
        n += "+HS";
    return n;
}

RtosUnitConfig
RtosUnitConfig::fromName(const std::string &name_in)
{
    RtosUnitConfig c;
    std::string name = name_in;
    bool hwsync = false;
    if (name.size() > 3 && name.substr(name.size() - 3) == "+HS") {
        hwsync = true;
        name = name.substr(0, name.size() - 3);
    }
    if (name == "vanilla" || name.empty()) {
        if (hwsync)
            fatal("+HS requires a (T) configuration");
        return c;
    }
    if (name == "CV32RT" || name == "cv32rt") {
        c.cv32rt = true;
        return c;
    }
    if (name == "SPLIT" || name == "split") {
        c.store = c.preload = c.load = c.omit = c.sched = true;
        c.hwsync = hwsync;
        std::string why;
        if (!c.validate(&why))
            fatal("invalid RTOSUnit configuration '%s': %s",
                  name_in.c_str(), why.c_str());
        return c;
    }
    c.hwsync = hwsync;
    for (char ch : name) {
        switch (ch) {
          case 'S': case 's': c.store = true; break;
          case 'L': case 'l': c.load = true; break;
          case 'T': case 't': c.sched = true; break;
          case 'D': case 'd': c.dirty = true; break;
          case 'O': case 'o': c.omit = true; break;
          case 'P': case 'p': c.preload = true; break;
          default:
            fatal("unknown RTOSUnit feature letter '%c' in '%s'", ch,
                  name.c_str());
        }
    }
    std::string why;
    if (!c.validate(&why))
        fatal("invalid RTOSUnit configuration '%s': %s",
              name_in.c_str(), why.c_str());
    return c;
}

std::vector<RtosUnitConfig>
RtosUnitConfig::paperConfigs()
{
    std::vector<RtosUnitConfig> out;
    for (const char *n : {"vanilla", "CV32RT", "S", "SD", "SL", "SDLO",
                          "T", "ST", "SDT", "SLT", "SDLOT", "SPLIT"}) {
        out.push_back(fromName(n));
    }
    return out;
}

std::vector<RtosUnitConfig>
RtosUnitConfig::latencyConfigs()
{
    std::vector<RtosUnitConfig> out;
    for (const char *n : {"vanilla", "CV32RT", "S", "SL", "T", "ST",
                          "SLT", "SDLO", "SDLOT", "SPLIT"}) {
        out.push_back(fromName(n));
    }
    return out;
}

} // namespace rtu
