#include "cv32rt.hh"

#include "common/logging.hh"

namespace rtu {

void
Cv32rtUnit::onTrapEntry(Word cause)
{
    (void)cause;
    rtu_assert(!drainBusy(), "interrupt re-entered while the CV32RT "
               "drain is still in flight");
    // Single-cycle parallel snapshot of the upper register-file half.
    for (unsigned i = 0; i < kSnapWords; ++i) {
        snapshot_[i] = state_.bankReg(
            ArchState::kAppBank,
            static_cast<RegIndex>(kFirstSnapReg + i));
    }
    // The kernel's ISR allocates its frame immediately below the
    // interrupted stack pointer; the hardware half starts at a fixed
    // offset inside it.
    const Word sp = state_.bankReg(ArchState::kAppBank, 2);
    drainBase_ = sp - kFrameBytes + kHwSlotOffset;
    drainIdx_ = 0;
    ++stats_.snapshots;
}

void
Cv32rtUnit::tick(Cycle now)
{
    if (drainBusy() && port_.canAccept()) {
        port_.pushWrite(drainBase_ + 4 * drainIdx_, snapshot_[drainIdx_]);
        ++stats_.drainedWords;
        ++drainIdx_;
        if (!drainBusy()) {
            if (cache_) {
                // The dedicated port bypassed the write-back cache; the
                // lines covering the drained words must be invalidated.
                cache_->invalidateRange(drainBase_, kSnapWords * 4);
            }
            if (phaseObserver_)
                phaseObserver_->phaseReached(SwitchPhase::kStoreDone, now);
        }
    }
    port_.tick();
}

bool
Cv32rtUnit::switchRfStall() const
{
    const bool stall = drainBusy() || !port_.idle();
    if (stall)
        ++stats_.barrierStallCycles;
    return stall;
}

void
Cv32rtUnit::setContextId(Word)
{
    panic("SET_CONTEXT_ID is not part of the CV32RT baseline");
}

Word
Cv32rtUnit::getHwSched()
{
    panic("GET_HW_SCHED is not part of the CV32RT baseline");
}

void
Cv32rtUnit::addReady(Word, Word)
{
    panic("ADD_READY is not part of the CV32RT baseline");
}

void
Cv32rtUnit::addDelay(Word, Word)
{
    panic("ADD_DELAY is not part of the CV32RT baseline");
}

void
Cv32rtUnit::rmTask(Word)
{
    panic("RM_TASK is not part of the CV32RT baseline");
}

Word
Cv32rtUnit::semTake(Word)
{
    panic("SEM_TAKE is not part of the CV32RT baseline");
}

Word
Cv32rtUnit::semGive(Word)
{
    panic("SEM_GIVE is not part of the CV32RT baseline");
}

} // namespace rtu
