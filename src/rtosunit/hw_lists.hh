/**
 * @file
 * The hardware scheduler's ready and delay lists (paper Fig 5).
 *
 * Both lists are fixed-size slot arrays kept sorted by an iterative
 * in-place sorting network: one odd-even transposition phase per
 * clock cycle, restarted on every mutation. A list of N slots is
 * guaranteed sorted after N phases. While a sort is in flight the
 * head must not be sampled, so GET_HW_SCHED stalls — the modelled
 * source of the small residual jitter of the (T) configuration.
 *
 * Ready-list order: priority descending, FIFO among equal priorities
 * (stable via an insertion sequence number). Invalid slots sort to
 * the tail. Delay-list order: remaining delay ascending, ties broken
 * by priority descending.
 */

#ifndef RTU_RTOSUNIT_HW_LISTS_HH
#define RTU_RTOSUNIT_HW_LISTS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rtu {

struct HwSlot
{
    bool valid = false;
    TaskId id = 0;
    Priority prio = 0;
    Word delay = 0;       ///< remaining ticks (delay list only)
    std::uint32_t seq = 0; ///< insertion order (stability)
};

/** Statistics shared by both lists (consumed by the power model). */
struct HwListStats
{
    std::uint64_t inserts = 0;
    std::uint64_t removes = 0;
    std::uint64_t pops = 0;
    std::uint64_t sortPhases = 0;
    std::uint64_t swaps = 0;
    unsigned maxOccupancy = 0;
};

class HwListBase
{
  public:
    explicit HwListBase(unsigned slots);
    virtual ~HwListBase() = default;

    /** One clock: perform a sort phase if unsorted. */
    void tick();

    /** True while the sorting network is still settling. */
    bool sorting() const { return phasesLeft_ > 0; }

    unsigned occupancy() const;
    unsigned capacity() const { return static_cast<unsigned>(slots_.size()); }
    bool full() const { return occupancy() == capacity(); }

    /** Clear valid bits of all slots matching @p id (RM_TASK). */
    void remove(TaskId id);

    const std::vector<HwSlot> &slots() const { return slots_; }
    const HwListStats &stats() const { return stats_; }

  protected:
    /** Strict ordering: should a sort before b? */
    virtual bool before(const HwSlot &a, const HwSlot &b) const = 0;

    void insertSlot(const HwSlot &slot);
    // Odd-even transposition sorts N elements in N phases; one extra
    // phase covers an arbitrary starting parity.
    void restartSort() { phasesLeft_ = capacity() + 1; }

    std::vector<HwSlot> slots_;
    std::uint32_t nextSeq_ = 0;
    unsigned phasesLeft_ = 0;
    bool phaseOdd_ = false;
    HwListStats stats_;
};

class HwReadyList : public HwListBase
{
  public:
    explicit HwReadyList(unsigned slots) : HwListBase(slots) {}

    /** ADD_READY: insert @p id with @p prio. Fatal when full. */
    void insert(TaskId id, Priority prio);

    /**
     * GET_HW_SCHED data path: return the head and requeue it at the
     * tail of its priority class (round-robin). Must only be called
     * when !sorting(). Fatal on an empty list (the kernel guarantees
     * an always-ready idle task). Optionally reports the priority.
     */
    TaskId popHeadRoundRobin(Priority *prio = nullptr);

    /** Peek the head (used by the preloader). */
    bool peekHead(TaskId *id) const;

    /**
     * Pop the head and *remove* it (no round-robin requeue) — used by
     * the hardware-semaphore wait queues. Returns false on an empty
     * list. Must only be called when !sorting().
     */
    bool popHeadRemove(TaskId *id, Priority *prio);

  protected:
    bool before(const HwSlot &a, const HwSlot &b) const override;
};

class HwDelayList : public HwListBase
{
  public:
    HwDelayList(unsigned slots, HwReadyList &ready)
        : HwListBase(slots), ready_(ready)
    {}

    /** ADD_DELAY: insert the running task. Fatal when full. */
    void insert(TaskId id, Priority prio, Word ticks);

    /** Timer interrupt: decrement every valid entry (paper Fig 5(e)). */
    void timerTick();

    /**
     * One expired entry per cycle migrates to the ready list (call
     * from the owner's tick, after the sort tick).
     */
    void transferTick();

    /** True while expired entries still await migration. */
    bool transferring() const;

  protected:
    bool before(const HwSlot &a, const HwSlot &b) const override;

  private:
    HwReadyList &ready_;
};

} // namespace rtu

#endif // RTU_RTOSUNIT_HW_LISTS_HH
