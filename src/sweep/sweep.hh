/**
 * @file
 * Parallel experiment sweep engine.
 *
 * All of the paper's headline results (Fig. 9 latency/jitter, the
 * S/L/T/D/O/P ablations, Tab. 1) are cross-products of
 * {core} x {RTOSUnit feature set} x {workload} (x timer period
 * x ctxQueue depth). A SweepSpec describes such a cartesian grid; a
 * SweepRunner shards the resulting independent Simulation instances
 * across a std::thread pool.
 *
 * Determinism contract: every grid point is an isolated, exact
 * simulation keyed by a deterministic per-point seed, workers pull
 * points from an atomic cursor and write into pre-sized, index-
 * addressed slots (a lock-free collector — no mutex, no reordering),
 * and results/traces are serialized in grid order afterwards. The
 * same spec therefore produces byte-identical JSONL output at any
 * thread count, while wall-clock scales with the pool size.
 */

#ifndef RTU_SWEEP_SWEEP_HH
#define RTU_SWEEP_SWEEP_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "harness/experiment.hh"
#include "trace/trace.hh"

namespace rtu {

/** One point of the cartesian grid: a single simulation run. */
struct SweepPoint
{
    CoreKind core = CoreKind::kCv32e40p;
    RtosUnitConfig unit;
    std::string workload;
    unsigned iterations = 20;
    Word timerPeriodCycles = 1000;
    unsigned naxCtxQueueEntries = 8;
    /** Deterministic per-point seed (FNV-1a over the point's key). */
    std::uint64_t seed = 0;

    /** Stable human-readable key, also the seed's hash input. */
    std::string key() const;

    /** Stamp the deterministic seed (FNV-1a over key()). Called by
     *  SweepSpec::points(); hand-built point lists (the explorer's
     *  cache misses) must call it before runPoints(). */
    void reseed();
};

/** Cartesian grid specification. Empty axes are invalid. */
struct SweepSpec
{
    std::vector<CoreKind> cores;
    std::vector<RtosUnitConfig> units;
    std::vector<std::string> workloads;
    std::vector<Word> timerPeriods{1000};
    std::vector<unsigned> ctxQueueDepths{8};
    unsigned iterations = 20;

    /**
     * Expand to the full grid in a stable nesting order (core-major:
     * core > unit > workload > period > depth), seeding each point.
     */
    std::vector<SweepPoint> points() const;
};

/** The outcome of one grid point, with its captured episode trace. */
struct SweepResult
{
    SweepPoint point;
    RunResult run;
    /** JSONL episode trace of this point (empty unless captured). */
    std::string trace;
};

class SweepRunner
{
  public:
    /** @p threads == 0 or 1 runs serially on the calling thread. */
    explicit SweepRunner(unsigned threads = 1) : threads_(threads) {}

    /**
     * Run every point of @p spec; results come back in grid order
     * regardless of the thread count. @p capture_trace additionally
     * records each point's per-episode JSONL trace.
     */
    std::vector<SweepResult> run(const SweepSpec &spec,
                                 bool capture_trace = false) const;

    /** Run an explicit point list (non-cartesian sweeps). */
    std::vector<SweepResult> runPoints(const std::vector<SweepPoint> &pts,
                                       bool capture_trace = false) const;

    /**
     * Generic deterministic fan-out over [0, n): @p fn is invoked for
     * every index exactly once, sharded across this runner's pool.
     * Callers own the result collection and must write only into
     * per-index slots they pre-sized — the same lock-free collector
     * discipline runPoints() uses, reused by the fault-injection
     * campaign so its outcome stream keeps the byte-stability
     * contract at any thread count.
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn) const;

    unsigned threads() const { return threads_; }

    /**
     * Simulation-kernel fast-forward for every point of this runner
     * (default on). A runner knob rather than a SweepPoint field: the
     * two modes are exact by construction, so they share one point
     * key — and the explorer's cache keys must not change.
     */
    void setFastForward(bool enable) { fastForward_ = enable; }
    bool fastForward() const { return fastForward_; }

    /**
     * Decode-once text image for every point (default on). Like
     * fast-forward, a runner knob rather than a point field: the image
     * is bit-exact, so both settings share one point key.
     */
    void setPredecode(bool enable) { predecode_ = enable; }
    bool predecode() const { return predecode_; }

    /**
     * Superblock execution for every point (default on). Like the
     * other two, a runner knob rather than a point field: block
     * execution is bit-exact, so both settings share one point key.
     */
    void setBlockExec(bool enable) { blockExec_ = enable; }
    bool blockExec() const { return blockExec_; }

  private:
    unsigned threads_;
    bool fastForward_ = true;
    bool predecode_ = true;
    bool blockExec_ = true;
};

/** Execute a single grid point (what each worker runs). */
SweepResult runSweepPoint(const SweepPoint &point, bool capture_trace,
                          bool fast_forward = true, bool predecode = true,
                          bool block_exec = true);

/**
 * Version of the writeResultsJsonl line format, stamped into the
 * header line every sweep bench emits before its result lines (the
 * same convention bench_sched/bench_throughput use). Bump when result
 * lines gain, lose or re-type fields — consumers skip streams from
 * another generation instead of misparsing them.
 * v2: block-execution counters (blocks_executed, block_fallbacks,
 *     block_invalidations).
 */
constexpr unsigned kSweepResultsSchema = 2;

/** One schema-stamped header object: `{"schema":N,"bench":"<name>"}`.
 *  Written as the first line of every sweep bench's --out stream. */
void writeResultsHeaderJsonl(std::ostream &os, const char *bench);

/**
 * Serialize one result line per point (JSONL, deterministic). The
 * run status and exact cycles-ticked/skipped counters are always
 * emitted; @p include_timing adds the nondeterministic wall_ms/mips
 * fields (off by default so the stream stays byte-stable).
 */
void writeResultsJsonl(std::ostream &os,
                       const std::vector<SweepResult> &results,
                       bool include_timing = false);

/** Concatenate the captured per-point traces in grid order. */
void writeTraceJsonl(std::ostream &os,
                     const std::vector<SweepResult> &results);

/** Merge switch-latency samples of a filtered result subset. */
template <typename Pred>
SampleStats
mergeSweepLatencies(const std::vector<SweepResult> &results, Pred pred)
{
    SampleStats merged;
    for (const SweepResult &r : results) {
        if (pred(r))
            merged.merge(r.run.switchLatency);
    }
    return merged;
}

} // namespace rtu

#endif // RTU_SWEEP_SWEEP_HH
