#include "sweep.hh"

#include <atomic>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace rtu {

std::string
SweepPoint::key() const
{
    std::ostringstream os;
    os << coreKindName(core) << '/' << unit.name() << "/slots"
       << unit.listSlots << '/' << workload << "/it" << iterations
       << "/tp" << timerPeriodCycles << "/cq" << naxCtxQueueEntries;
    return os.str();
}

void
SweepPoint::reseed()
{
    seed = fnv1a(key());
}

std::vector<SweepPoint>
SweepSpec::points() const
{
    rtu_assert(!cores.empty() && !units.empty() && !workloads.empty() &&
               !timerPeriods.empty() && !ctxQueueDepths.empty(),
               "sweep spec has an empty axis");
    rtu_assert(iterations > 0,
               "sweep spec needs at least one iteration per workload");
    std::vector<SweepPoint> pts;
    pts.reserve(cores.size() * units.size() * workloads.size() *
                timerPeriods.size() * ctxQueueDepths.size());
    for (CoreKind core : cores) {
        for (const RtosUnitConfig &unit : units) {
            for (const std::string &w : workloads) {
                for (Word period : timerPeriods) {
                    for (unsigned depth : ctxQueueDepths) {
                        SweepPoint p;
                        p.core = core;
                        p.unit = unit;
                        p.workload = w;
                        p.iterations = iterations;
                        p.timerPeriodCycles = period;
                        p.naxCtxQueueEntries = depth;
                        p.reseed();
                        pts.push_back(std::move(p));
                    }
                }
            }
        }
    }
    return pts;
}

SweepResult
runSweepPoint(const SweepPoint &point, bool capture_trace,
              bool fast_forward, bool predecode, bool block_exec)
{
    SweepResult out;
    out.point = point;

    const auto workload = makeWorkload(point.workload, point.iterations);

    RunOptions opts;
    opts.timerPeriodCycles = point.timerPeriodCycles;
    opts.naxCtxQueueEntries = point.naxCtxQueueEntries;
    opts.seed = point.seed;
    opts.fastForward = fast_forward;
    opts.predecode = predecode;
    opts.blockExec = block_exec;

    if (capture_trace) {
        std::ostringstream trace;
        JsonlTraceSink sink(trace);
        opts.sink = &sink;
        out.run = runWorkload(point.core, point.unit, *workload, opts);
        out.trace = trace.str();
    } else {
        out.run = runWorkload(point.core, point.unit, *workload, opts);
    }
    return out;
}

void
SweepRunner::forEachIndex(std::size_t n,
                          const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    const unsigned workers = std::max(1u,
        std::min<unsigned>(threads_, static_cast<unsigned>(n)));

    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Lock-free collection: workers pull the next index from an
    // atomic cursor and each writes only its own pre-sized slot, so
    // the result order is the index order whatever the interleaving.
    std::atomic<std::size_t> cursor{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = cursor.fetch_add(
                1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

std::vector<SweepResult>
SweepRunner::runPoints(const std::vector<SweepPoint> &pts,
                       bool capture_trace) const
{
    std::vector<SweepResult> results(pts.size());
    forEachIndex(pts.size(), [&](std::size_t i) {
        results[i] = runSweepPoint(pts[i], capture_trace, fastForward_,
                                   predecode_, blockExec_);
    });
    return results;
}

std::vector<SweepResult>
SweepRunner::run(const SweepSpec &spec, bool capture_trace) const
{
    return runPoints(spec.points(), capture_trace);
}

void
writeResultsHeaderJsonl(std::ostream &os, const char *bench)
{
    os << "{\"schema\":" << kSweepResultsSchema << ",\"bench\":\""
       << jsonEscape(bench) << "\"}\n";
}

void
writeResultsJsonl(std::ostream &os,
                  const std::vector<SweepResult> &results,
                  bool include_timing)
{
    for (const SweepResult &r : results) {
        const RunResult &run = r.run;
        os << "{\"core\":\"" << jsonEscape(coreKindName(r.point.core))
           << "\",\"config\":\"" << jsonEscape(r.point.unit.name())
           << "\",\"list_slots\":" << r.point.unit.listSlots
           << ",\"workload\":\"" << jsonEscape(r.point.workload)
           << "\",\"iterations\":" << r.point.iterations
           << ",\"timer_period\":" << r.point.timerPeriodCycles
           << ",\"ctxqueue\":" << r.point.naxCtxQueueEntries
           << ",\"seed\":" << r.point.seed
           << ",\"ok\":" << (run.ok ? "true" : "false")
           << ",\"exit_code\":" << run.exitCode
           << ",\"status\":\"" << runStatusName(run.status)
           << "\",\"cycles\":" << run.cycles
           << ",\"cycles_ticked\":" << run.throughput.cyclesTicked
           << ",\"cycles_skipped\":" << run.throughput.cyclesSkipped
           << ",\"fetch_predecoded\":" << run.coreStats.fetchPredecoded
           << ",\"fetch_slow_path\":" << run.coreStats.fetchSlowPath
           << ",\"text_invalidations\":"
           << run.coreStats.textInvalidations
           << ",\"blocks_executed\":" << run.coreStats.blocksExecuted
           << ",\"block_fallbacks\":" << run.coreStats.blockFallbacks
           << ",\"block_invalidations\":"
           << run.coreStats.blockInvalidations;
        if (include_timing) {
            // Wall time is nondeterministic; callers wanting the
            // byte-stability contract keep it off (the default).
            char wall[32], mips[32];
            std::snprintf(wall, sizeof(wall), "%.3f",
                          run.throughput.wallSeconds * 1e3);
            const double secs = run.throughput.wallSeconds;
            std::snprintf(mips, sizeof(mips), "%.3f",
                          secs > 0.0
                              ? static_cast<double>(
                                    run.coreStats.instret) / secs / 1e6
                              : 0.0);
            os << ",\"wall_ms\":" << wall << ",\"mips\":" << mips;
        }
        const SampleStats &s = run.switchLatency;
        os << ",\"switches\":" << s.count();
        if (!s.empty()) {
            // Latencies are integral cycle counts; print them as such
            // so the stream stays byte-stable across libc float
            // formatting differences (mean gets a fixed precision).
            const auto cy = [](double v) {
                return static_cast<std::uint64_t>(v);
            };
            char mean[32];
            std::snprintf(mean, sizeof(mean), "%.3f", s.mean());
            os << ",\"lat_min\":" << cy(s.min())
               << ",\"lat_mean\":" << mean
               << ",\"lat_max\":" << cy(s.max())
               << ",\"lat_jitter\":" << cy(s.jitter())
               << ",\"lat_p50\":" << cy(s.percentile(0.5))
               << ",\"lat_p99\":" << cy(s.percentile(0.99));
        }
        os << "}\n";
    }
}

void
writeTraceJsonl(std::ostream &os, const std::vector<SweepResult> &results)
{
    for (const SweepResult &r : results)
        os << r.trace;
}

} // namespace rtu
