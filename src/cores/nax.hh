/**
 * @file
 * NaxRiscv-class timing model: a superscalar out-of-order core with
 * register renaming, speculative execution and a write-back data
 * cache (paper Section 5.3).
 *
 * The model follows the classic dataflow-timing simplification:
 * instructions execute functionally in program order at dispatch (the
 * oracle front-end), while timing honours true dependencies
 * (renaming removes WAW/WAR), functional-unit contention, ROB
 * capacity, in-order commit, branch-resolution redirects and cache
 * behaviour. Wrong-path instructions are charged as front-end
 * redirect bubbles rather than executed. Custom RTOSUnit instructions
 * dispatch in order and non-speculatively by construction, matching
 * the paper's commit-coupled instruction queue (Fig 6) without extra
 * stalls.
 *
 * The RTOSUnit's memory interface is the paper's ctxQueue (Fig 8): an
 * 8-entry load/store queue that shares the D$ port with the core's
 * LSU at lower priority.
 */

#ifndef RTU_CORES_NAX_HH
#define RTU_CORES_NAX_HH

#include <array>
#include <deque>

#include "cache.hh"
#include "core.hh"
#include "rtosunit/unit_mem.hh"

namespace rtu {

struct NaxParams
{
    unsigned dispatchWidth = 2;
    unsigned robEntries = 32;
    unsigned trapEntryPenalty = 8;
    unsigned mretPenalty = 8;
    unsigned redirectPenalty = 2;   ///< after branch resolution
    unsigned aluCount = 2;
    unsigned mulLatency = 3;
    unsigned divBaseLatency = 4;    ///< plus one per significant bit
    unsigned loadHitLatency = 3;
    unsigned missPenalty = 8;       ///< line refill from 1-cycle SRAM
    unsigned writebackPenalty = 4;  ///< dirty victim eviction
    unsigned predictorEntries = 256;
    unsigned ctxQueueEntries = 8;   ///< paper: Pareto-optimal depth
    CacheParams cache{16 * 1024, 4, 32, /*writeBack=*/true};
};

/**
 * The ctxQueue: RTOSUnit requests buffered into the LSU, serviced one
 * per free D$-port cycle (paper Fig 8). Read responses return in
 * request order.
 */
class NaxCtxQueuePort : public UnitMemPort
{
  public:
    NaxCtxQueuePort(MemSystem &mem, CacheModel &dcache,
                    SharedPort &cache_port, const NaxParams &params)
        : mem_(mem), dcache_(dcache), cachePort_(cache_port),
          params_(params)
    {}

    bool
    canAccept() const override
    {
        return queue_.size() < params_.ctxQueueEntries;
    }

    void pushRead(Addr addr) override;
    void pushWrite(Addr addr, Word data) override;
    bool popResponse(Word *data) override;
    bool idle() const override;
    void tick() override;
    void skipCycles(Cycle delta) override { now_ += delta; }

  private:
    struct Entry
    {
        bool isRead = false;
        Addr addr = 0;
        Word data = 0;
        bool serviced = false;  ///< issued into the cache pipeline
        Cycle doneAt = 0;
    };

    MemSystem &mem_;
    CacheModel &dcache_;
    SharedPort &cachePort_;
    const NaxParams &params_;
    std::deque<Entry> queue_;
    std::deque<Word> responses_;
    Cycle now_ = 0;
    /** A miss blocks new issues until the refill completes. */
    Cycle pipeBlockedUntil_ = 0;
};

class NaxCore : public Core
{
  public:
    NaxCore(const Env &env, const NaxParams &params = {});

    void tick(Cycle now) override;

    /** Earliest cycle the core can change observable state. */
    Cycle nextEventAt(Cycle now) const override;

    /** Bulk-advance stall/sleep cycles, retiring ROB entries exactly
     *  where the per-cycle path would. */
    void skipTo(Cycle now, Cycle target) override;

    /** Superblock fast path: dispatch straight-line runs up to the
     *  event horizon. Each dispatch group is pre-verified as a whole
     *  (slot 1 included, branch direction resolved via
     *  Executor::evalBranch) before slot 0 executes, because a bail
     *  between the slots would leave a half-dispatched pair the
     *  per-cycle path can never reproduce. */
    Cycle blockRun(Cycle now, Cycle bound) override;

    const char *name() const override { return "naxriscv"; }

    CacheModel &dcache() { return dcache_; }
    SharedPort &cachePort() { return cachePort_; }
    /** The RTOSUnit-side memory port (LSU ctxQueue, Fig 8). */
    UnitMemPort &ctxQueuePort() { return ctxPort_; }

  private:
    bool stalledByUnit(const DecodedInsn &insn) const;
    bool dispatchOne(Cycle now);
    void retire(Cycle now);
    unsigned predictorIndex(Addr pc) const;

    NaxParams params_;
    CacheModel dcache_;
    SharedPort cachePort_;
    NaxCtxQueuePort ctxPort_;

    Cycle dispatchBlockedUntil_ = 0;
    std::array<Cycle, 32> regReadyAt_{};
    std::array<Cycle, 2> aluFreeAt_{};
    Cycle mulDivFreeAt_ = 0;
    Cycle lsuFreeAt_ = 0;
    Cycle cacheBusyUntil_ = 0;
    Cycle lastCommitAt_ = 0;
    unsigned commitsAtLast_ = 0;
    Cycle drainAt_ = 0;
    std::deque<Cycle> rob_;  ///< commit cycles of in-flight insns
    std::vector<std::uint8_t> predictor_;
    bool sleeping_ = false;
    bool mretPending_ = false;
    Cycle mretDoneAt_ = 0;
};

} // namespace rtu

#endif // RTU_CORES_NAX_HH
