/**
 * @file
 * CVA6-class timing model: a 6-stage application-class pipeline with
 * in-order issue, scoreboarded out-of-order write-back, a
 * write-through data cache and bus-level RTOSUnit arbitration
 * (paper Section 5.2).
 *
 * Modelled mechanisms:
 *  - scoreboard: independent instructions issue past long-latency
 *    producers (div/mul, cache-miss loads); consumers stall on RAW;
 *  - bimodal branch predictor; mispredictions cost a frontend flush;
 *  - write-through, no-write-allocate D$ with a draining store
 *    buffer; refills and write-throughs occupy the shared bus, which
 *    the RTOSUnit uses at lower priority (Section 5.2: bus-level
 *    arbitration trades mean latency for lower jitter);
 *  - interrupts are taken at issue boundaries *after draining*
 *    in-flight operations, so trap-entry latency is variable — the
 *    residual jitter the paper attributes to micro-architecture.
 */

#ifndef RTU_CORES_CVA6_HH
#define RTU_CORES_CVA6_HH

#include <array>

#include "cache.hh"
#include "core.hh"

namespace rtu {

struct Cva6Params
{
    unsigned trapEntryBase = 6;
    unsigned mretCycles = 7;
    unsigned mispredictPenalty = 5;
    unsigned jalCycles = 1;
    unsigned jalrCycles = 3;
    unsigned mulLatency = 2;
    unsigned divBaseLatency = 2;  ///< plus one per significant bit
    unsigned loadHitLatency = 2;
    unsigned missPenalty = 5;     ///< refill from single-cycle SRAM
    unsigned storeBufferDepth = 4;
    unsigned predictorEntries = 128;
    CacheParams cache{4 * 1024, 4, 16, /*writeBack=*/false};
};

class Cva6Core : public Core
{
  public:
    Cva6Core(const Env &env, SharedPort &bus_port,
             const Cva6Params &params = {});

    void tick(Cycle now) override;

    /** Earliest cycle the core can change observable state. */
    Cycle nextEventAt(Cycle now) const override;

    /** Bulk-advance stall/sleep cycles with a closed-form store-buffer
     *  drain. */
    void skipTo(Cycle now, Cycle target) override;

    /** Superblock fast path: issue straight-line runs up to the event
     *  horizon, re-validating each word against the block index (the
     *  scoreboard/cache state makes a static block cost impossible, so
     *  unlike CV32E40P every step is checked). */
    Cycle blockRun(Cycle now, Cycle bound) override;

    const char *name() const override { return "cva6"; }

    CacheModel &dcache() { return dcache_; }

  private:
    bool stalledByUnit(const DecodedInsn &insn) const;
    /** Issue one instruction; updates timing state. */
    void issue(Cycle now);
    unsigned predictorIndex(Addr pc) const;

    Cva6Params params_;
    SharedPort &busPort_;
    CacheModel dcache_;

    /** Next cycle the issue stage may accept an instruction. */
    Cycle issueReadyAt_ = 0;
    /** Completion cycle per architectural register (scoreboard). */
    std::array<Cycle, 32> regReadyAt_{};
    /** Latest completion among issued instructions (trap drain). */
    Cycle drainAt_ = 0;
    /** Bus busy with core traffic until this cycle (refills/WT). */
    Cycle busBusyUntil_ = 0;
    /** Write-through store buffer occupancy. */
    unsigned storeBuf_ = 0;
    /** Bimodal 2-bit counters. */
    std::vector<std::uint8_t> predictor_;
    bool sleeping_ = false;
    bool mretPending_ = false;
    Cycle mretDoneAt_ = 0;
};

} // namespace rtu

#endif // RTU_CORES_CVA6_HH
