#include "nax.hh"

#include <bit>

#include "sim/memmap.hh"

namespace rtu {

// ---- ctxQueue port -------------------------------------------------------

void
NaxCtxQueuePort::pushRead(Addr addr)
{
    rtu_assert(canAccept(), "ctxQueue overflow");
    queue_.push_back({true, addr, 0});
    ++stats_.reads;
}

void
NaxCtxQueuePort::pushWrite(Addr addr, Word data)
{
    rtu_assert(canAccept(), "ctxQueue overflow");
    queue_.push_back({false, addr, data});
    ++stats_.writes;
}

bool
NaxCtxQueuePort::popResponse(Word *data)
{
    if (responses_.empty())
        return false;
    *data = responses_.front();
    responses_.pop_front();
    return true;
}

bool
NaxCtxQueuePort::idle() const
{
    return queue_.empty() && responses_.empty();
}

void
NaxCtxQueuePort::tick()
{
    ++now_;
    if (queue_.empty())
        return;

    // Issue the oldest unserviced entry into the pipelined cache:
    // one issue per cycle on a free D$ port (the core's LSU has
    // priority); a miss blocks further issues until the refill is
    // done. Deeper queues therefore cover the cache's hit latency —
    // the mechanism behind the paper's Pareto-optimal depth of 8.
    Entry *next = nullptr;
    for (Entry &e : queue_) {
        if (!e.serviced) {
            next = &e;
            break;
        }
    }
    if (next && now_ >= pipeBlockedUntil_) {
        if (cachePort_.tryUse()) {
            const auto acc = dcache_.access(next->addr, !next->isRead);
            unsigned lat = params_.loadHitLatency;
            if (!acc.hit) {
                lat += params_.missPenalty;
                pipeBlockedUntil_ = now_ + params_.missPenalty;
            }
            if (acc.writeback) {
                lat += params_.writebackPenalty;
                pipeBlockedUntil_ =
                    std::max(pipeBlockedUntil_, now_) +
                    params_.writebackPenalty;
            }
            next->serviced = true;
            next->doneAt = now_ + lat;
        } else {
            ++stats_.rejectCycles;
        }
    }

    // Complete strictly in order.
    while (!queue_.empty() && queue_.front().serviced &&
           queue_.front().doneAt <= now_) {
        Entry &head = queue_.front();
        if (head.isRead)
            responses_.push_back(mem_.read32(head.addr));
        else
            mem_.write32(head.addr, head.data);
        queue_.pop_front();
    }
}

// ---- core ------------------------------------------------------------------

NaxCore::NaxCore(const Env &env, const NaxParams &params)
    : Core(env), params_(params), dcache_(params.cache),
      cachePort_("nax-dcache-port"),
      ctxPort_(*env.mem, dcache_, cachePort_, params_)
{
    predictor_.assign(params_.predictorEntries, 1);
}

unsigned
NaxCore::predictorIndex(Addr pc) const
{
    return (pc >> 2) & (params_.predictorEntries - 1);
}

bool
NaxCore::stalledByUnit(const DecodedInsn &insn) const
{
    RtosUnitPort *unit = exec_.unit();
    if (!unit)
        return false;
    switch (insn.op) {
      case Op::kSwitchRf: return unit->switchRfStall();
      case Op::kGetHwSched: return unit->getHwSchedStall();
      case Op::kMret: return unit->mretStall();
      case Op::kSemTake:
      case Op::kSemGive:
        return unit->semOpStall();
      default: return false;
    }
}

void
NaxCore::retire(Cycle now)
{
    while (!rob_.empty() && rob_.front() <= now)
        rob_.pop_front();
}

Cycle
NaxCore::nextEventAt(Cycle now) const
{
    // The per-cycle cachePort_.beginCycle()/claim() bookkeeping is
    // unobservable while the ctxQueue (the only other port user) is
    // quiescent — the kernel's precondition for skipping.
    if (mretPending_)
        return std::max(now, mretDoneAt_);  // listener completion event
    if (sleeping_)
        return exec_.pendingEnabledIrqs() != 0 ? now : kNoEvent;
    if (exec_.interruptReady()) {
        // Taken at the first commit boundary; until then the core only
        // burns stall cycles (and deliberately does not retire).
        if (!rob_.empty() && rob_.front() > now)
            return rob_.front();
        return now;
    }
    if (now < dispatchBlockedUntil_)
        return dispatchBlockedUntil_;
    return now;
}

void
NaxCore::skipTo(Cycle now, Cycle target)
{
    const Cycle delta = target - now;
    if (mretPending_) {
        retire(target - 1);
        stats_.stallCycles += delta;
        return;
    }
    if (sleeping_) {
        stats_.wfiCycles += delta;
        return;
    }
    if (exec_.interruptReady()) {
        // Waiting for the commit boundary: the reference path returns
        // before retire(), so the ROB must stay put here too.
        stats_.stallCycles += delta;
        return;
    }
    retire(target - 1);
    stats_.stallCycles += delta;
}

void
NaxCore::tick(Cycle now)
{
    // The cache port must be reset each core cycle (the simulation
    // only manages the system-level ports).
    cachePort_.beginCycle();

    // A refill in flight owns the D$ port.
    if (now < cacheBusyUntil_)
        cachePort_.claim();

    if (mretPending_ && now >= mretDoneAt_) {
        mretPending_ = false;
        if (listener_)
            listener_->mretCompleted(now);
    }

    if (sleeping_) {
        if (exec_.pendingEnabledIrqs() != 0) {
            sleeping_ = false;
        } else {
            ++stats_.wfiCycles;
            return;
        }
    }

    // Interrupts redirect the front-end themselves, so a pending
    // branch/mret redirect (dispatchBlockedUntil_) does not delay
    // entry. The interrupt is taken at the *first* commit boundary:
    // the oldest in-flight instruction completes (its latency — a
    // divide, a missing load — is the modelled source of NaxRiscv's
    // residual entry jitter) and everything younger is squashed.
    // This check runs before retire() so the boundary is observed,
    // not consumed.
    if (exec_.interruptReady() && !mretPending_) {
        if (!rob_.empty() && rob_.front() > now) {
            ++stats_.stallCycles;
            return;
        }
        rob_.clear();
        const Word cause = exec_.pendingCause();
        functionalTrap(cause, state_.pc(), now);
        dispatchBlockedUntil_ = now + params_.trapEntryPenalty;
        regReadyAt_.fill(now);
        aluFreeAt_.fill(now);
        mulDivFreeAt_ = now;
        lsuFreeAt_ = now;
        drainAt_ = now;
        lastCommitAt_ = now;
        commitsAtLast_ = 0;
        return;
    }

    retire(now);

    if (now < dispatchBlockedUntil_) {
        ++stats_.stallCycles;
        return;
    }

    for (unsigned slot = 0; slot < params_.dispatchWidth; ++slot) {
        if (!dispatchOne(now))
            break;
    }
}

bool
NaxCore::dispatchOne(Cycle now)
{
    if (rob_.size() >= params_.robEntries) {
        ++stats_.stallCycles;
        return false;
    }

    const Addr pc = state_.pc();
    const DecodedInsn insn = fetch(pc);

    if (stalledByUnit(insn)) {
        ++stats_.stallCycles;
        return false;
    }

    // Operand readiness via renamed dataflow (RAW only).
    Cycle ops_ready = now;
    if (insn.useRs1)
        ops_ready = std::max(ops_ready, regReadyAt_[insn.rs1]);
    if (insn.useRs2)
        ops_ready = std::max(ops_ready, regReadyAt_[insn.rs2]);

    const InsnClass cls = insn.cls;

    unsigned div_bits = 0;
    if (cls == InsnClass::kDiv) {
        const Word dividend = state_.reg(insn.rs1);
        div_bits = 32 - std::countl_zero(dividend | 1);
    }

    const ExecResult res = exec_.execute(insn, pc);
    if (res.trap) {
        functionalTrap(res.trapCause, pc, now);
        dispatchBlockedUntil_ = now + params_.trapEntryPenalty;
        return false;
    }
    state_.setPc(res.nextPc);
    ++stats_.instret;

    Cycle complete;
    bool block_group = false;

    switch (cls) {
      case InsnClass::kMul: {
        const Cycle start = std::max(ops_ready, mulDivFreeAt_);
        mulDivFreeAt_ = start + 1;  // pipelined
        complete = start + params_.mulLatency;
        break;
      }
      case InsnClass::kDiv: {
        const Cycle start = std::max(ops_ready, mulDivFreeAt_);
        const unsigned lat = params_.divBaseLatency + div_bits;
        mulDivFreeAt_ = start + lat;  // iterative, not pipelined
        complete = start + lat;
        break;
      }
      case InsnClass::kLoad: {
        ++stats_.memOps;
        const Cycle start = std::max(ops_ready, lsuFreeAt_);
        lsuFreeAt_ = start + 1;
        if (!cachePort_.claimed())
            cachePort_.claim();
        const bool cacheable = res.memAddr >= memmap::kDmemBase &&
                               res.memAddr <
                                   memmap::kDmemBase + memmap::kDmemSize;
        unsigned lat = params_.loadHitLatency;
        if (cacheable) {
            const auto acc = dcache_.access(res.memAddr, false);
            if (!acc.hit) {
                ++stats_.cacheMisses;
                lat += params_.missPenalty;
                cacheBusyUntil_ = std::max(cacheBusyUntil_, start) +
                                  params_.missPenalty;
            }
            if (acc.writeback) {
                lat += params_.writebackPenalty;
                cacheBusyUntil_ += params_.writebackPenalty;
            }
        } else {
            lat += 2;  // uncached device access
        }
        complete = start + lat;
        break;
      }
      case InsnClass::kStore: {
        ++stats_.memOps;
        const Cycle start = std::max(ops_ready, lsuFreeAt_);
        lsuFreeAt_ = start + 1;
        if (!cachePort_.claimed())
            cachePort_.claim();
        const bool cacheable = res.memAddr >= memmap::kDmemBase &&
                               res.memAddr <
                                   memmap::kDmemBase + memmap::kDmemSize;
        if (cacheable) {
            const auto acc = dcache_.access(res.memAddr, true);
            if (!acc.hit) {
                ++stats_.cacheMisses;
                cacheBusyUntil_ = std::max(cacheBusyUntil_, start) +
                                  params_.missPenalty;
            }
            if (acc.writeback)
                cacheBusyUntil_ += params_.writebackPenalty;
        }
        complete = start + 1;
        break;
      }
      case InsnClass::kBranch: {
        const Cycle start = std::max(
            ops_ready, std::min(aluFreeAt_[0], aluFreeAt_[1]));
        auto &fu = aluFreeAt_[aluFreeAt_[0] <= aluFreeAt_[1] ? 0 : 1];
        fu = start + 1;
        complete = start + 1;
        const unsigned idx = predictorIndex(pc);
        std::uint8_t &ctr = predictor_[idx];
        const bool predicted_taken = ctr >= 2;
        if (predicted_taken != res.branchTaken) {
            ++stats_.branchMispredicts;
            // Front-end redirect after the branch resolves.
            dispatchBlockedUntil_ = complete + params_.redirectPenalty;
            block_group = true;
        }
        if (res.branchTaken) {
            if (ctr < 3)
                ++ctr;
        } else if (ctr > 0) {
            --ctr;
        }
        break;
      }
      case InsnClass::kJump: {
        complete = now + 1;
        if (insn.op == Op::kJalr) {
            // Indirect target resolves at execute; short redirect.
            dispatchBlockedUntil_ = std::max(ops_ready, now) + 2;
            block_group = true;
        }
        break;
      }
      case InsnClass::kSystem: {
        complete = std::max(ops_ready, now) + 1;
        if (insn.op == Op::kMret) {
            ++stats_.mrets;
            const Cycle done = std::max(drainAt_, complete) +
                               params_.mretPenalty;
            dispatchBlockedUntil_ = done;
            mretPending_ = true;
            mretDoneAt_ = done - 1;
            block_group = true;
        } else if (res.isWfi) {
            sleeping_ = true;
            block_group = true;
        }
        break;
      }
      default: {
        // ALU / CSR / custom through an ALU pipe.
        const Cycle start = std::max(
            ops_ready, std::min(aluFreeAt_[0], aluFreeAt_[1]));
        auto &fu = aluFreeAt_[aluFreeAt_[0] <= aluFreeAt_[1] ? 0 : 1];
        fu = start + 1;
        complete = start + 1;
        break;
      }
    }

    // In-order commit, up to dispatchWidth per cycle.
    Cycle commit = std::max(complete, lastCommitAt_);
    if (commit == lastCommitAt_ && commitsAtLast_ >= params_.dispatchWidth)
        commit += 1;
    if (commit == lastCommitAt_) {
        ++commitsAtLast_;
    } else {
        lastCommitAt_ = commit;
        commitsAtLast_ = 1;
    }
    rob_.push_back(commit);
    drainAt_ = commit;

    if (insn.hasRd && insn.rd != 0)
        regReadyAt_[insn.rd] = complete;

    return !block_group;
}

Cycle
NaxCore::blockRun(Cycle now, Cycle bound)
{
    // Wider front-ends would need deeper group pre-verification than
    // the two-slot analysis below.
    if (blockindex_ == nullptr || params_.dispatchWidth > 2 ||
        mretPending_ || sleeping_ || exec_.interruptReady()) {
        return 0;
    }

    Cycle t = now;
    std::uint32_t sinceBoundary = 0;
    bool bailed = false;
    while (t < bound) {
        if (t < dispatchBlockedUntil_) {
            // Committed redirect/trap-shadow stall cycles: same
            // closed-form as skipTo() (retire is monotone, so one
            // call at the last stalled cycle equals one per cycle).
            const Cycle adv = std::min(dispatchBlockedUntil_, bound);
            retire(adv - 1);
            stats_.stallCycles += adv - t;
            t = adv;
            continue;
        }

        // Cycle-t prelude, exactly the top of tick(). Re-running it
        // after a bail at this cycle is harmless: beginCycle/claim are
        // unobservable while the ctxQueue is quiescent, retire() is
        // idempotent for a fixed cycle.
        cachePort_.beginCycle();
        if (t < cacheBusyUntil_)
            cachePort_.claim();
        retire(t);

        if (rob_.size() >= params_.robEntries) {
            ++stats_.stallCycles;  // slot 0 stalls, the group breaks
            t += 1;
            continue;
        }

        // ---- group pre-verification (no effects until it passes) ----
        const Addr pc0 = state_.pc();
        if (!blockindex_->covers(pc0)) {
            bailed = true;
            break;
        }
        const std::uint8_t flags0 = blockindex_->flagsAt(pc0);
        if (flags0 & BlockIndex::kStop) {
            bailed = true;
            break;
        }
        const DecodedInsn &insn0 = predecode_->at(pc0);
        if ((flags0 & BlockIndex::kMem) &&
            !blockSafeAccess(effectiveAddr(insn0), accessSize(insn0.op))) {
            bailed = true;
            break;
        }
        const InsnClass cls0 = insn0.cls;

        // Resolve slot 0's control flow without executing it, to learn
        // the group width and slot 1's pc.
        bool one_wide = params_.dispatchWidth < 2;
        Addr pc1 = pc0 + 4;
        if (cls0 == InsnClass::kBranch) {
            const bool taken = Executor::evalBranch(
                insn0.op, state_.reg(insn0.rs1), state_.reg(insn0.rs2));
            if ((predictor_[predictorIndex(pc0)] >= 2) != taken)
                one_wide = true;  // mispredict redirects the front-end
            if (taken)
                pc1 = pc0 + static_cast<Word>(insn0.imm);
        } else if (cls0 == InsnClass::kJump) {
            if (insn0.op == Op::kJal)
                pc1 = pc0 + static_cast<Word>(insn0.imm);
            else
                one_wide = true;  // jalr resolves at execute: redirect
        }

        InsnClass cls1 = InsnClass::kAlu;
        if (!one_wide) {
            if (!blockindex_->covers(pc1)) {
                bailed = true;
                break;
            }
            const std::uint8_t flags1 = blockindex_->flagsAt(pc1);
            if (flags1 & BlockIndex::kStop) {
                bailed = true;
                break;
            }
            const DecodedInsn &insn1 = predecode_->at(pc1);
            if (flags1 & BlockIndex::kMem) {
                // Slot 0's result may feed slot 1's address register;
                // the address can't be checked before slot 0 runs.
                if (insn0.hasRd && insn0.rd != 0 && insn1.useRs1 &&
                    insn1.rs1 == insn0.rd) {
                    bailed = true;
                    break;
                }
                if (!blockSafeAccess(effectiveAddr(insn1),
                                     accessSize(insn1.op))) {
                    bailed = true;
                    break;
                }
            }
            // A slot-0 store that lands on slot 1's instruction word
            // re-decodes it before the per-cycle path would fetch it;
            // the pre-verification above would be stale.
            if (cls0 == InsnClass::kStore) {
                const Addr ea0 = effectiveAddr(insn0);
                if (ea0 < pc1 + 4 && ea0 + accessSize(insn0.op) > pc1) {
                    bailed = true;
                    break;
                }
            }
            cls1 = insn1.cls;
        }

        // ---- dispatch, exactly tick()'s slot loop ----
        std::uint64_t before = stats_.instret;
        const bool cont = dispatchOne(t);
        if (stats_.instret != before) {
            if (cls0 == InsnClass::kBranch || cls0 == InsnClass::kJump) {
                ++stats_.blocksExecuted;
                sinceBoundary = 0;
            } else {
                ++sinceBoundary;
            }
        }
        if (cont && !one_wide) {
            before = stats_.instret;
            dispatchOne(t);  // may stall on a full ROB, as tick() would
            if (stats_.instret != before) {
                if (cls1 == InsnClass::kBranch ||
                    cls1 == InsnClass::kJump) {
                    ++stats_.blocksExecuted;
                    sinceBoundary = 0;
                } else {
                    ++sinceBoundary;
                }
            }
        }
        t += 1;
    }

    if (sinceBoundary > 0)
        ++stats_.blocksExecuted;  // partial run up to the exit point
    if (bailed)
        ++stats_.blockFallbacks;
    return t - now;
}

} // namespace rtu
