#include "nax.hh"

#include <bit>

#include "sim/memmap.hh"

namespace rtu {

// ---- ctxQueue port -------------------------------------------------------

void
NaxCtxQueuePort::pushRead(Addr addr)
{
    rtu_assert(canAccept(), "ctxQueue overflow");
    queue_.push_back({true, addr, 0});
    ++stats_.reads;
}

void
NaxCtxQueuePort::pushWrite(Addr addr, Word data)
{
    rtu_assert(canAccept(), "ctxQueue overflow");
    queue_.push_back({false, addr, data});
    ++stats_.writes;
}

bool
NaxCtxQueuePort::popResponse(Word *data)
{
    if (responses_.empty())
        return false;
    *data = responses_.front();
    responses_.pop_front();
    return true;
}

bool
NaxCtxQueuePort::idle() const
{
    return queue_.empty() && responses_.empty();
}

void
NaxCtxQueuePort::tick()
{
    ++now_;
    if (queue_.empty())
        return;

    // Issue the oldest unserviced entry into the pipelined cache:
    // one issue per cycle on a free D$ port (the core's LSU has
    // priority); a miss blocks further issues until the refill is
    // done. Deeper queues therefore cover the cache's hit latency —
    // the mechanism behind the paper's Pareto-optimal depth of 8.
    Entry *next = nullptr;
    for (Entry &e : queue_) {
        if (!e.serviced) {
            next = &e;
            break;
        }
    }
    if (next && now_ >= pipeBlockedUntil_) {
        if (cachePort_.tryUse()) {
            const auto acc = dcache_.access(next->addr, !next->isRead);
            unsigned lat = params_.loadHitLatency;
            if (!acc.hit) {
                lat += params_.missPenalty;
                pipeBlockedUntil_ = now_ + params_.missPenalty;
            }
            if (acc.writeback) {
                lat += params_.writebackPenalty;
                pipeBlockedUntil_ =
                    std::max(pipeBlockedUntil_, now_) +
                    params_.writebackPenalty;
            }
            next->serviced = true;
            next->doneAt = now_ + lat;
        } else {
            ++stats_.rejectCycles;
        }
    }

    // Complete strictly in order.
    while (!queue_.empty() && queue_.front().serviced &&
           queue_.front().doneAt <= now_) {
        Entry &head = queue_.front();
        if (head.isRead)
            responses_.push_back(mem_.read32(head.addr));
        else
            mem_.write32(head.addr, head.data);
        queue_.pop_front();
    }
}

// ---- core ------------------------------------------------------------------

NaxCore::NaxCore(const Env &env, const NaxParams &params)
    : Core(env), params_(params), dcache_(params.cache),
      cachePort_("nax-dcache-port"),
      ctxPort_(*env.mem, dcache_, cachePort_, params_)
{
    predictor_.assign(params_.predictorEntries, 1);
}

unsigned
NaxCore::predictorIndex(Addr pc) const
{
    return (pc >> 2) & (params_.predictorEntries - 1);
}

bool
NaxCore::stalledByUnit(const DecodedInsn &insn) const
{
    RtosUnitPort *unit = exec_.unit();
    if (!unit)
        return false;
    switch (insn.op) {
      case Op::kSwitchRf: return unit->switchRfStall();
      case Op::kGetHwSched: return unit->getHwSchedStall();
      case Op::kMret: return unit->mretStall();
      case Op::kSemTake:
      case Op::kSemGive:
        return unit->semOpStall();
      default: return false;
    }
}

void
NaxCore::retire(Cycle now)
{
    while (!rob_.empty() && rob_.front() <= now)
        rob_.pop_front();
}

Cycle
NaxCore::nextEventAt(Cycle now) const
{
    // The per-cycle cachePort_.beginCycle()/claim() bookkeeping is
    // unobservable while the ctxQueue (the only other port user) is
    // quiescent — the kernel's precondition for skipping.
    if (mretPending_)
        return std::max(now, mretDoneAt_);  // listener completion event
    if (sleeping_)
        return exec_.pendingEnabledIrqs() != 0 ? now : kNoEvent;
    if (exec_.interruptReady()) {
        // Taken at the first commit boundary; until then the core only
        // burns stall cycles (and deliberately does not retire).
        if (!rob_.empty() && rob_.front() > now)
            return rob_.front();
        return now;
    }
    if (now < dispatchBlockedUntil_)
        return dispatchBlockedUntil_;
    return now;
}

void
NaxCore::skipTo(Cycle now, Cycle target)
{
    const Cycle delta = target - now;
    if (mretPending_) {
        retire(target - 1);
        stats_.stallCycles += delta;
        return;
    }
    if (sleeping_) {
        stats_.wfiCycles += delta;
        return;
    }
    if (exec_.interruptReady()) {
        // Waiting for the commit boundary: the reference path returns
        // before retire(), so the ROB must stay put here too.
        stats_.stallCycles += delta;
        return;
    }
    retire(target - 1);
    stats_.stallCycles += delta;
}

void
NaxCore::tick(Cycle now)
{
    // The cache port must be reset each core cycle (the simulation
    // only manages the system-level ports).
    cachePort_.beginCycle();

    // A refill in flight owns the D$ port.
    if (now < cacheBusyUntil_)
        cachePort_.claim();

    if (mretPending_ && now >= mretDoneAt_) {
        mretPending_ = false;
        if (listener_)
            listener_->mretCompleted(now);
    }

    if (sleeping_) {
        if (exec_.pendingEnabledIrqs() != 0) {
            sleeping_ = false;
        } else {
            ++stats_.wfiCycles;
            return;
        }
    }

    // Interrupts redirect the front-end themselves, so a pending
    // branch/mret redirect (dispatchBlockedUntil_) does not delay
    // entry. The interrupt is taken at the *first* commit boundary:
    // the oldest in-flight instruction completes (its latency — a
    // divide, a missing load — is the modelled source of NaxRiscv's
    // residual entry jitter) and everything younger is squashed.
    // This check runs before retire() so the boundary is observed,
    // not consumed.
    if (exec_.interruptReady() && !mretPending_) {
        if (!rob_.empty() && rob_.front() > now) {
            ++stats_.stallCycles;
            return;
        }
        rob_.clear();
        const Word cause = exec_.pendingCause();
        functionalTrap(cause, state_.pc(), now);
        dispatchBlockedUntil_ = now + params_.trapEntryPenalty;
        regReadyAt_.fill(now);
        aluFreeAt_.fill(now);
        mulDivFreeAt_ = now;
        lsuFreeAt_ = now;
        drainAt_ = now;
        lastCommitAt_ = now;
        commitsAtLast_ = 0;
        return;
    }

    retire(now);

    if (now < dispatchBlockedUntil_) {
        ++stats_.stallCycles;
        return;
    }

    for (unsigned slot = 0; slot < params_.dispatchWidth; ++slot) {
        if (!dispatchOne(now))
            break;
    }
}

bool
NaxCore::dispatchOne(Cycle now)
{
    if (rob_.size() >= params_.robEntries) {
        ++stats_.stallCycles;
        return false;
    }

    const Addr pc = state_.pc();
    const DecodedInsn insn = fetch(pc);

    if (stalledByUnit(insn)) {
        ++stats_.stallCycles;
        return false;
    }

    // Operand readiness via renamed dataflow (RAW only).
    Cycle ops_ready = now;
    if (insn.useRs1)
        ops_ready = std::max(ops_ready, regReadyAt_[insn.rs1]);
    if (insn.useRs2)
        ops_ready = std::max(ops_ready, regReadyAt_[insn.rs2]);

    const InsnClass cls = insn.cls;

    unsigned div_bits = 0;
    if (cls == InsnClass::kDiv) {
        const Word dividend = state_.reg(insn.rs1);
        div_bits = 32 - std::countl_zero(dividend | 1);
    }

    const ExecResult res = exec_.execute(insn, pc);
    if (res.trap) {
        functionalTrap(res.trapCause, pc, now);
        dispatchBlockedUntil_ = now + params_.trapEntryPenalty;
        return false;
    }
    state_.setPc(res.nextPc);
    ++stats_.instret;

    Cycle complete;
    bool block_group = false;

    switch (cls) {
      case InsnClass::kMul: {
        const Cycle start = std::max(ops_ready, mulDivFreeAt_);
        mulDivFreeAt_ = start + 1;  // pipelined
        complete = start + params_.mulLatency;
        break;
      }
      case InsnClass::kDiv: {
        const Cycle start = std::max(ops_ready, mulDivFreeAt_);
        const unsigned lat = params_.divBaseLatency + div_bits;
        mulDivFreeAt_ = start + lat;  // iterative, not pipelined
        complete = start + lat;
        break;
      }
      case InsnClass::kLoad: {
        ++stats_.memOps;
        const Cycle start = std::max(ops_ready, lsuFreeAt_);
        lsuFreeAt_ = start + 1;
        if (!cachePort_.claimed())
            cachePort_.claim();
        const bool cacheable = res.memAddr >= memmap::kDmemBase &&
                               res.memAddr <
                                   memmap::kDmemBase + memmap::kDmemSize;
        unsigned lat = params_.loadHitLatency;
        if (cacheable) {
            const auto acc = dcache_.access(res.memAddr, false);
            if (!acc.hit) {
                ++stats_.cacheMisses;
                lat += params_.missPenalty;
                cacheBusyUntil_ = std::max(cacheBusyUntil_, start) +
                                  params_.missPenalty;
            }
            if (acc.writeback) {
                lat += params_.writebackPenalty;
                cacheBusyUntil_ += params_.writebackPenalty;
            }
        } else {
            lat += 2;  // uncached device access
        }
        complete = start + lat;
        break;
      }
      case InsnClass::kStore: {
        ++stats_.memOps;
        const Cycle start = std::max(ops_ready, lsuFreeAt_);
        lsuFreeAt_ = start + 1;
        if (!cachePort_.claimed())
            cachePort_.claim();
        const bool cacheable = res.memAddr >= memmap::kDmemBase &&
                               res.memAddr <
                                   memmap::kDmemBase + memmap::kDmemSize;
        if (cacheable) {
            const auto acc = dcache_.access(res.memAddr, true);
            if (!acc.hit) {
                ++stats_.cacheMisses;
                cacheBusyUntil_ = std::max(cacheBusyUntil_, start) +
                                  params_.missPenalty;
            }
            if (acc.writeback)
                cacheBusyUntil_ += params_.writebackPenalty;
        }
        complete = start + 1;
        break;
      }
      case InsnClass::kBranch: {
        const Cycle start = std::max(
            ops_ready, std::min(aluFreeAt_[0], aluFreeAt_[1]));
        auto &fu = aluFreeAt_[aluFreeAt_[0] <= aluFreeAt_[1] ? 0 : 1];
        fu = start + 1;
        complete = start + 1;
        const unsigned idx = predictorIndex(pc);
        std::uint8_t &ctr = predictor_[idx];
        const bool predicted_taken = ctr >= 2;
        if (predicted_taken != res.branchTaken) {
            ++stats_.branchMispredicts;
            // Front-end redirect after the branch resolves.
            dispatchBlockedUntil_ = complete + params_.redirectPenalty;
            block_group = true;
        }
        if (res.branchTaken) {
            if (ctr < 3)
                ++ctr;
        } else if (ctr > 0) {
            --ctr;
        }
        break;
      }
      case InsnClass::kJump: {
        complete = now + 1;
        if (insn.op == Op::kJalr) {
            // Indirect target resolves at execute; short redirect.
            dispatchBlockedUntil_ = std::max(ops_ready, now) + 2;
            block_group = true;
        }
        break;
      }
      case InsnClass::kSystem: {
        complete = std::max(ops_ready, now) + 1;
        if (insn.op == Op::kMret) {
            ++stats_.mrets;
            const Cycle done = std::max(drainAt_, complete) +
                               params_.mretPenalty;
            dispatchBlockedUntil_ = done;
            mretPending_ = true;
            mretDoneAt_ = done - 1;
            block_group = true;
        } else if (res.isWfi) {
            sleeping_ = true;
            block_group = true;
        }
        break;
      }
      default: {
        // ALU / CSR / custom through an ALU pipe.
        const Cycle start = std::max(
            ops_ready, std::min(aluFreeAt_[0], aluFreeAt_[1]));
        auto &fu = aluFreeAt_[aluFreeAt_[0] <= aluFreeAt_[1] ? 0 : 1];
        fu = start + 1;
        complete = start + 1;
        break;
      }
    }

    // In-order commit, up to dispatchWidth per cycle.
    Cycle commit = std::max(complete, lastCommitAt_);
    if (commit == lastCommitAt_ && commitsAtLast_ >= params_.dispatchWidth)
        commit += 1;
    if (commit == lastCommitAt_) {
        ++commitsAtLast_;
    } else {
        lastCommitAt_ = commit;
        commitsAtLast_ = 1;
    }
    rob_.push_back(commit);
    drainAt_ = commit;

    if (insn.hasRd && insn.rd != 0)
        regReadyAt_[insn.rd] = complete;

    return !block_group;
}

} // namespace rtu
