/**
 * @file
 * Set-associative cache timing model (tags only — data always comes
 * functionally from the memory system). Used write-through by the
 * CVA6 model and write-back by the NaxRiscv model; also provides the
 * back-invalidation hook the CV32RT baseline needs on NaxRiscv.
 */

#ifndef RTU_CORES_CACHE_HH
#define RTU_CORES_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "rtosunit/unit_mem.hh"

namespace rtu {

struct CacheParams
{
    unsigned sizeBytes = 8 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = 16;
    bool writeBack = false;  ///< false: write-through, no write-allocate
};

struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidations = 0;
};

class CacheModel : public UnitCacheHook
{
  public:
    explicit CacheModel(const CacheParams &params);

    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;  ///< dirty victim evicted (write-back)
    };

    /**
     * Touch the line containing @p addr. Loads and (write-back)
     * stores allocate on miss; write-through stores do not allocate.
     */
    AccessResult access(Addr addr, bool is_store);

    /** CV32RT dedicated-port drain: drop the affected lines. */
    void invalidateRange(Addr base, unsigned bytes) override;

    const CacheStats &stats() const { return stats_; }
    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;  // sets * ways
    std::uint64_t useCounter_ = 0;
    CacheStats stats_;
};

} // namespace rtu

#endif // RTU_CORES_CACHE_HH
