/**
 * @file
 * The narrow interface a core sees of the RTOSUnit (and of the CV32RT
 * comparison unit): functional execution of the custom instructions,
 * stall queries, and trap-boundary event hooks.
 *
 * Keeping this interface in the cores layer lets core models stay
 * independent of the RTOSUnit implementation (the paper's "minimal
 * intrusion" integration contract, Section 5).
 */

#ifndef RTU_CORES_RTOSUNIT_PORT_HH
#define RTU_CORES_RTOSUNIT_PORT_HH

#include "common/types.hh"

namespace rtu {

class RtosUnitPort
{
  public:
    virtual ~RtosUnitPort() = default;

    // ---- custom instructions (functional semantics) ------------------
    virtual void setContextId(Word id) = 0;
    virtual Word getHwSched() = 0;
    virtual void addReady(Word id, Word prio) = 0;
    virtual void addDelay(Word prio, Word ticks) = 0;
    virtual void rmTask(Word id) = 0;
    virtual void switchRf() = 0;

    // Hardware synchronization extension (paper future work, §7).
    /** SEM_TAKE: returns 1 when acquired; 0 when the caller was
     *  moved to the semaphore's wait queue and must yield. */
    virtual Word semTake(Word sem_id) = 0;
    /** SEM_GIVE: returns 1 when a higher-priority waiter woke (the
     *  caller should yield); 0 otherwise. */
    virtual Word semGive(Word sem_id) = 0;

    // ---- stall conditions (sampled before the insn executes) ---------
    /** SWITCH_RF must wait for the store FSM (Section 4.2). */
    virtual bool switchRfStall() const = 0;
    /** GET_HW_SCHED must wait while the ready list is mid-sort. */
    virtual bool getHwSchedStall() const = 0;
    /** mret must wait for context restore completion (Section 4.3). */
    virtual bool mretStall() const = 0;
    /** SEM_GIVE must wait while any wait queue is mid-sort. */
    virtual bool semOpStall() const { return false; }

    // ---- trap boundary events ----------------------------------------
    /** Interrupt entry: RF bank switch + store FSM start + delay tick. */
    virtual void onTrapEntry(Word cause) = 0;
    /** mret executed: automatic RF bank switch back (with (L)). */
    virtual void onMretExecuted() = 0;
};

} // namespace rtu

#endif // RTU_CORES_RTOSUNIT_PORT_HH
