/**
 * @file
 * CV32E40P-class timing model: a microcontroller-grade 4-stage
 * in-order pipeline (paper Section 5.1).
 *
 * Key properties reproduced:
 *  - single issue, one instruction in execution at a time;
 *  - tightly-coupled single-cycle instruction and data SRAM
 *    (no caches), so loads/stores occupy the shared DMEM port for
 *    exactly one cycle;
 *  - deterministic interrupt entry: in-flight multi-cycle operations
 *    (div) are killed so the trap is taken with constant latency —
 *    the property that lets the (SLT) configuration eliminate jitter
 *    entirely (paper Section 6.1);
 *  - data-dependent divider latency, taken-branch and jump penalties,
 *    load-use hazard stall.
 */

#ifndef RTU_CORES_CV32E40P_HH
#define RTU_CORES_CV32E40P_HH

#include "core.hh"

namespace rtu {

struct Cv32e40pParams
{
    unsigned trapEntryCycles = 4;   ///< constant interrupt entry
    unsigned mretCycles = 5;        ///< pipeline refill on return
    unsigned takenBranchCycles = 3; ///< branch resolved in EX
    unsigned jumpCycles = 2;
    unsigned loadUseStall = 1;
    unsigned divBaseCycles = 3;     ///< plus one per significant bit
};

class Cv32e40pCore : public Core
{
  public:
    Cv32e40pCore(const Env &env, const Cv32e40pParams &params = {})
        : Core(env), params_(params)
    {}

    void tick(Cycle now) override;

    const char *name() const override { return "cv32e40p"; }

  private:
    /** Cycles the instruction at hand occupies the pipeline. */
    unsigned costOf(const DecodedInsn &insn, const ExecResult &res) const;

    /** True while a custom-instruction / mret stall condition holds. */
    bool stalledByUnit(const DecodedInsn &insn) const;

    Cv32e40pParams params_;

    /** Remaining busy cycles of the instruction in flight. */
    unsigned remaining_ = 0;
    /** The in-flight op may be killed by an interrupt (mul/div). */
    bool abortable_ = false;
    /** Pending mret-completion notification at the end of the stall. */
    bool mretInFlight_ = false;
    /** Destination of the most recent load (load-use hazard). */
    RegIndex lastLoadRd_ = 0;
    bool lastWasLoad_ = false;
    /** Sleeping in wfi. */
    bool sleeping_ = false;
    /** Significant dividend bits of the div in flight (latency). */
    unsigned divOperandBits_ = 0;
};

} // namespace rtu

#endif // RTU_CORES_CV32E40P_HH
