/**
 * @file
 * CV32E40P-class timing model: a microcontroller-grade 4-stage
 * in-order pipeline (paper Section 5.1).
 *
 * Key properties reproduced:
 *  - single issue, one instruction in execution at a time;
 *  - tightly-coupled single-cycle instruction and data SRAM
 *    (no caches), so loads/stores occupy the shared DMEM port for
 *    exactly one cycle;
 *  - deterministic interrupt entry: in-flight multi-cycle operations
 *    (div) are killed so the trap is taken with constant latency —
 *    the property that lets the (SLT) configuration eliminate jitter
 *    entirely (paper Section 6.1);
 *  - data-dependent divider latency, taken-branch and jump penalties,
 *    load-use hazard stall.
 */

#ifndef RTU_CORES_CV32E40P_HH
#define RTU_CORES_CV32E40P_HH

#include <array>
#include <cstdint>

#include "core.hh"

namespace rtu {

struct Cv32e40pParams
{
    unsigned trapEntryCycles = 4;   ///< constant interrupt entry
    unsigned mretCycles = 5;        ///< pipeline refill on return
    unsigned takenBranchCycles = 3; ///< branch resolved in EX
    unsigned jumpCycles = 2;
    unsigned loadUseStall = 1;
    unsigned divBaseCycles = 3;     ///< plus one per significant bit
};

class Cv32e40pCore : public Core
{
  public:
    Cv32e40pCore(const Env &env, const Cv32e40pParams &params = {})
        : Core(env), params_(params)
    {}

    void tick(Cycle now) override;

    /** Earliest cycle the core can change observable state. */
    Cycle nextEventAt(Cycle now) const override;

    /** Bulk-advance a fixed-latency stall or wfi sleep. */
    void skipTo(Cycle now, Cycle target) override;

    /** Confirmed loop period if the core provably spins in a pure
     *  register-only loop starting exactly at the current state. */
    Cycle stridePeriod(Cycle now) const override;

    /** Account @p periods whole loop iterations' worth of stats. */
    void applyStride(Cycle now, std::uint64_t periods) override;

    /** Superblock fast path: execute straight-line runs up to the
     *  event horizon with one bound check per block. */
    Cycle blockRun(Cycle now, Cycle bound) override;

    const char *name() const override { return "cv32e40p"; }

  private:
    /**
     * Idle/busy-loop stride detection. An anchor slot is allocated per
     * backward control-transfer target; when the loop top is revisited
     * with a bit-identical machine state and no impure instruction
     * (memory, CSR, system, custom, unit stall, trap) executed in
     * between, the loop is provably periodic: every iteration replays
     * the same pure register-only computation. Multiple slots are kept
     * because nested busy loops would otherwise thrash one anchor —
     * the periodic loop the skipper wants is the *outer* one.
     */
    struct CoreSnapshot
    {
        std::array<std::array<Word, 32>, 2> banks;
        std::array<bool, 32> dirty;
        unsigned activeBank = 0;
        Addr pc = 0;
        Csrs csrs;
        bool lastWasLoad = false;
        RegIndex lastLoadRd = 0;
        unsigned divOperandBits = 0;

        bool operator==(const CoreSnapshot &) const = default;
    };

    struct StrideSlot
    {
        bool valid = false;
        bool armed = false;       ///< snapshot captured, awaiting revisit
        bool confirmed = false;
        /** Loop proved impure repeatedly; stop re-probing it. A loop's
         *  instruction mix is static, so one that keeps bumping the
         *  purity epoch (loads, stores, CSR ops...) can never confirm
         *  — snapshotting it on every backedge is pure overhead. */
        bool dead = false;
        std::uint8_t misses = 0;  ///< consecutive failed confirmations
        Addr target = 0;          ///< loop-top PC (backedge target)
        std::uint64_t epoch = 0;  ///< purity epoch at arm time
        Cycle cycle = 0;          ///< cycle of the last loop-top visit
        Cycle lastTouch = 0;      ///< for LRU replacement
        Cycle period = 0;
        CoreSnapshot snap;
        CoreStats statsAt;        ///< stats at the last visit
        CoreStats delta;          ///< per-period stats delta
    };

    static constexpr std::size_t kStrideSlots = 4;
    /** Failed confirmations before a slot is written off as impure. */
    static constexpr std::uint8_t kStrideMaxMisses = 4;

    /** Cycles the instruction at hand occupies the pipeline. */
    unsigned costOf(const DecodedInsn &insn, const ExecResult &res) const;

    /** True while a custom-instruction / mret stall condition holds. */
    bool stalledByUnit(const DecodedInsn &insn) const;

    CoreSnapshot captureSnapshot() const;
    const StrideSlot *findSlot(Addr target) const;
    StrideSlot *findSlot(Addr target);

    /** Outcome of one in-block instruction step. */
    enum class BlockStep
    {
        kDone,     ///< retired, run continues at the next word
        kControl,  ///< retired a branch/jump: block boundary
        kBailMem,  ///< unsafe access, nothing executed: fall back
        kHorizon,  ///< issued, stall crosses the bound: window full
    };
    /** Execute the (pre-validated non-stop) instruction at pc; @p t is
     *  advanced by the instruction's full pipeline occupancy. */
    BlockStep blockStep(Cycle &t, Cycle bound);
    /** A valid, not-written-off stride anchor sits at @p pc: the
     *  per-cycle path must run it so the loop can confirm. */
    bool strideSlotLive(Addr pc) const;
    bool strideSlotLiveInRange(Addr pc, std::uint32_t words) const;
    /** Any impure operation breaks all pending/confirmed periodicity. */
    void strideImpure() { ++strideEpoch_; }
    void strideVisit(Addr pc, Cycle now);
    void strideAnchor(Addr target, Cycle now);

    Cv32e40pParams params_;

    std::array<StrideSlot, kStrideSlots> slots_;
    std::uint64_t strideEpoch_ = 0;

    /** Remaining busy cycles of the instruction in flight. */
    unsigned remaining_ = 0;
    /** The in-flight op may be killed by an interrupt (mul/div). */
    bool abortable_ = false;
    /** Pending mret-completion notification at the end of the stall. */
    bool mretInFlight_ = false;
    /** Destination of the most recent load (load-use hazard). */
    RegIndex lastLoadRd_ = 0;
    bool lastWasLoad_ = false;
    /** Sleeping in wfi. */
    bool sleeping_ = false;
    /** Significant dividend bits of the div in flight (latency). */
    unsigned divOperandBits_ = 0;
};

} // namespace rtu

#endif // RTU_CORES_CV32E40P_HH
