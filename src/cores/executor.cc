#include "executor.hh"

#include "asm/disasm.hh"
#include "common/bitutil.hh"

namespace rtu {

namespace {

Word
mulh(SWord a, SWord b)
{
    const auto p = static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
    return static_cast<Word>(static_cast<std::uint64_t>(p) >> 32);
}

Word
mulhsu(SWord a, Word b)
{
    const auto p = static_cast<std::int64_t>(a) *
                   static_cast<std::int64_t>(static_cast<std::uint64_t>(b));
    return static_cast<Word>(static_cast<std::uint64_t>(p) >> 32);
}

Word
mulhu(Word a, Word b)
{
    const auto p = static_cast<std::uint64_t>(a) * b;
    return static_cast<Word>(p >> 32);
}

} // namespace

Word
Executor::pendingCause() const
{
    const Word p = pendingEnabledIrqs();
    if (p & irq::kMei)
        return mcause::kMachineExternal;
    if (p & irq::kMsi)
        return mcause::kMachineSoftware;
    if (p & irq::kMti)
        return mcause::kMachineTimer;
    panic("pendingCause() with no pending interrupt");
}

Word
Executor::readCsr(std::uint16_t addr) const
{
    switch (addr) {
      case csr::kMstatus: return state_.csrs.mstatus;
      case csr::kMie: return state_.csrs.mie;
      case csr::kMtvec: return state_.csrs.mtvec;
      case csr::kMscratch: return state_.csrs.mscratch;
      case csr::kMepc: return state_.csrs.mepc;
      case csr::kMcause: return state_.csrs.mcause;
      case csr::kMtval: return state_.csrs.mtval;
      case csr::kMip: return irq_.pending();
      case csr::kMcycle:
        return now_ ? static_cast<Word>(*now_) : 0;
      case csr::kMcycleh:
        return now_ ? static_cast<Word>(*now_ >> 32) : 0;
      case csr::kMhartid: return 0;
      default:
        guest_fault("read of unimplemented CSR 0x%03x", addr);
    }
}

void
Executor::writeCsr(std::uint16_t addr, Word value)
{
    switch (addr) {
      case csr::kMstatus:
        // Only MIE/MPIE/MPP are writable in this machine-only model.
        state_.csrs.mstatus =
            value & (mstatus::kMie | mstatus::kMpie | mstatus::kMppMask);
        break;
      case csr::kMie:
        state_.csrs.mie = value & (irq::kMsi | irq::kMti | irq::kMei);
        break;
      case csr::kMtvec:
        state_.csrs.mtvec = value & ~Word{3};  // direct mode only
        break;
      case csr::kMscratch: state_.csrs.mscratch = value; break;
      case csr::kMepc: state_.csrs.mepc = value & ~Word{1}; break;
      case csr::kMcause: state_.csrs.mcause = value; break;
      case csr::kMtval: state_.csrs.mtval = value; break;
      case csr::kMip:
        // Interrupt pending bits are device-driven; writes are ignored.
        break;
      case csr::kMcycle:
      case csr::kMcycleh:
        break;  // read-only counter in this model
      default:
        guest_fault("write of unimplemented CSR 0x%03x", addr);
    }
}

void
Executor::takeTrap(Word cause, Addr epc)
{
    Csrs &c = state_.csrs;
    c.mepc = epc;
    c.mcause = cause;
    // MPIE <- MIE; MIE <- 0; MPP <- M.
    const bool mie = (c.mstatus & mstatus::kMie) != 0;
    c.mstatus &= ~(mstatus::kMie | mstatus::kMpie);
    if (mie)
        c.mstatus |= mstatus::kMpie;
    c.mstatus |= mstatus::kMppMask;
    state_.setPc(c.mtvec);
    if (unit_ && (cause & mcause::kInterruptBit))
        unit_->onTrapEntry(cause);
}

// ---- per-family handlers ---------------------------------------------------
//
// One handler per op family; Executor::execute (inline in the header)
// looks the handler up in a flat table indexed by Op, so the dispatch
// path is a single indirect call instead of a monolithic switch.

void
Executor::execUpper(Executor &e, const DecodedInsn &d, Addr pc,
                    ExecResult &res)
{
    (void)res;
    if (d.op == Op::kLui)
        e.state_.setReg(d.rd, static_cast<Word>(d.imm) << 12);
    else
        e.state_.setReg(d.rd, pc + (static_cast<Word>(d.imm) << 12));
}

void
Executor::execJump(Executor &e, const DecodedInsn &d, Addr pc,
                   ExecResult &res)
{
    const Word rs1 = e.state_.reg(d.rs1);
    e.state_.setReg(d.rd, pc + 4);
    if (d.op == Op::kJal)
        res.nextPc = pc + static_cast<Word>(d.imm);
    else
        res.nextPc = (rs1 + static_cast<Word>(d.imm)) & ~Word{1};
}

bool
Executor::evalBranch(Op op, Word rs1, Word rs2)
{
    switch (op) {
      case Op::kBeq: return rs1 == rs2;
      case Op::kBne: return rs1 != rs2;
      case Op::kBlt:
        return static_cast<SWord>(rs1) < static_cast<SWord>(rs2);
      case Op::kBge:
        return static_cast<SWord>(rs1) >= static_cast<SWord>(rs2);
      case Op::kBltu: return rs1 < rs2;
      default: return rs1 >= rs2;  // kBgeu
    }
}

void
Executor::execBranch(Executor &e, const DecodedInsn &d, Addr pc,
                     ExecResult &res)
{
    (void)pc;
    res.branchTaken =
        evalBranch(d.op, e.state_.reg(d.rs1), e.state_.reg(d.rs2));
}

void
Executor::execLoad(Executor &e, const DecodedInsn &d, Addr pc,
                   ExecResult &res)
{
    (void)pc;
    const Addr addr = e.state_.reg(d.rs1) + static_cast<Word>(d.imm);
    res.memAccess = true;
    res.memAddr = addr;
    Word v = 0;
    switch (d.op) {
      case Op::kLb:
        v = static_cast<Word>(sext(e.mem_.read(addr, MemSize::kByte), 8));
        break;
      case Op::kLh:
        v = static_cast<Word>(sext(e.mem_.read(addr, MemSize::kHalf), 16));
        break;
      case Op::kLw: v = e.mem_.read(addr, MemSize::kWord); break;
      case Op::kLbu: v = e.mem_.read(addr, MemSize::kByte); break;
      default: v = e.mem_.read(addr, MemSize::kHalf); break;  // kLhu
    }
    e.state_.setReg(d.rd, v);
}

void
Executor::execStore(Executor &e, const DecodedInsn &d, Addr pc,
                    ExecResult &res)
{
    (void)pc;
    const Addr addr = e.state_.reg(d.rs1) + static_cast<Word>(d.imm);
    res.memAccess = true;
    res.memIsStore = true;
    res.memAddr = addr;
    const MemSize sz = d.op == Op::kSb   ? MemSize::kByte
                       : d.op == Op::kSh ? MemSize::kHalf
                                         : MemSize::kWord;
    e.mem_.write(addr, e.state_.reg(d.rs2), sz);
}

void
Executor::execAluImm(Executor &e, const DecodedInsn &d, Addr pc,
                     ExecResult &res)
{
    (void)pc;
    (void)res;
    ArchState &s = e.state_;
    const Word rs1 = s.reg(d.rs1);
    switch (d.op) {
      case Op::kAddi: s.setReg(d.rd, rs1 + static_cast<Word>(d.imm)); break;
      case Op::kSlti:
        s.setReg(d.rd, static_cast<SWord>(rs1) < d.imm ? 1 : 0);
        break;
      case Op::kSltiu:
        s.setReg(d.rd, rs1 < static_cast<Word>(d.imm) ? 1 : 0);
        break;
      case Op::kXori: s.setReg(d.rd, rs1 ^ static_cast<Word>(d.imm)); break;
      case Op::kOri: s.setReg(d.rd, rs1 | static_cast<Word>(d.imm)); break;
      case Op::kAndi: s.setReg(d.rd, rs1 & static_cast<Word>(d.imm)); break;
      case Op::kSlli: s.setReg(d.rd, rs1 << (d.imm & 31)); break;
      case Op::kSrli: s.setReg(d.rd, rs1 >> (d.imm & 31)); break;
      default:  // kSrai
        s.setReg(d.rd,
                 static_cast<Word>(static_cast<SWord>(rs1) >> (d.imm & 31)));
        break;
    }
}

void
Executor::execAluReg(Executor &e, const DecodedInsn &d, Addr pc,
                     ExecResult &res)
{
    (void)pc;
    (void)res;
    ArchState &s = e.state_;
    const Word rs1 = s.reg(d.rs1);
    const Word rs2 = s.reg(d.rs2);
    switch (d.op) {
      case Op::kAdd: s.setReg(d.rd, rs1 + rs2); break;
      case Op::kSub: s.setReg(d.rd, rs1 - rs2); break;
      case Op::kSll: s.setReg(d.rd, rs1 << (rs2 & 31)); break;
      case Op::kSlt:
        s.setReg(d.rd,
                 static_cast<SWord>(rs1) < static_cast<SWord>(rs2) ? 1 : 0);
        break;
      case Op::kSltu: s.setReg(d.rd, rs1 < rs2 ? 1 : 0); break;
      case Op::kXor: s.setReg(d.rd, rs1 ^ rs2); break;
      case Op::kSrl: s.setReg(d.rd, rs1 >> (rs2 & 31)); break;
      case Op::kSra:
        s.setReg(d.rd,
                 static_cast<Word>(static_cast<SWord>(rs1) >> (rs2 & 31)));
        break;
      case Op::kOr: s.setReg(d.rd, rs1 | rs2); break;
      default: s.setReg(d.rd, rs1 & rs2); break;  // kAnd
    }
}

void
Executor::execMulDiv(Executor &e, const DecodedInsn &d, Addr pc,
                     ExecResult &res)
{
    (void)pc;
    (void)res;
    ArchState &s = e.state_;
    const Word rs1 = s.reg(d.rs1);
    const Word rs2 = s.reg(d.rs2);
    switch (d.op) {
      case Op::kMul: s.setReg(d.rd, rs1 * rs2); break;
      case Op::kMulh:
        s.setReg(d.rd,
                 mulh(static_cast<SWord>(rs1), static_cast<SWord>(rs2)));
        break;
      case Op::kMulhsu:
        s.setReg(d.rd, mulhsu(static_cast<SWord>(rs1), rs2));
        break;
      case Op::kMulhu: s.setReg(d.rd, mulhu(rs1, rs2)); break;
      case Op::kDiv:
        if (rs2 == 0) {
            s.setReg(d.rd, ~Word{0});
        } else if (rs1 == 0x8000'0000 && rs2 == ~Word{0}) {
            s.setReg(d.rd, 0x8000'0000);
        } else {
            s.setReg(d.rd,
                     static_cast<Word>(static_cast<SWord>(rs1) /
                                       static_cast<SWord>(rs2)));
        }
        break;
      case Op::kDivu:
        s.setReg(d.rd, rs2 == 0 ? ~Word{0} : rs1 / rs2);
        break;
      case Op::kRem:
        if (rs2 == 0) {
            s.setReg(d.rd, rs1);
        } else if (rs1 == 0x8000'0000 && rs2 == ~Word{0}) {
            s.setReg(d.rd, 0);
        } else {
            s.setReg(d.rd,
                     static_cast<Word>(static_cast<SWord>(rs1) %
                                       static_cast<SWord>(rs2)));
        }
        break;
      default:  // kRemu
        s.setReg(d.rd, rs2 == 0 ? rs1 : rs1 % rs2);
        break;
    }
}

void
Executor::execSystem(Executor &e, const DecodedInsn &d, Addr pc,
                     ExecResult &res)
{
    switch (d.op) {
      case Op::kFence:
        break;
      case Op::kEcall:
        res.trap = true;
        res.trapCause = mcause::kEcallM;
        break;
      case Op::kEbreak:
        guest_fault("guest ebreak at pc 0x%08x", pc);
      case Op::kWfi:
        res.isWfi = true;
        break;
      default: {  // kMret
        Csrs &c = e.state_.csrs;
        const bool mpie = (c.mstatus & mstatus::kMpie) != 0;
        c.mstatus &= ~(mstatus::kMie | mstatus::kMpie);
        if (mpie)
            c.mstatus |= mstatus::kMie;
        c.mstatus |= mstatus::kMpie;
        res.isMret = true;
        if (e.unit_)
            e.unit_->onMretExecuted();
        // The restore FSM may have just written mepc: read it after
        // the unit hook.
        res.nextPc = c.mepc;
        break;
      }
    }
}

void
Executor::execCsr(Executor &e, const DecodedInsn &d, Addr pc,
                  ExecResult &res)
{
    (void)pc;
    (void)res;
    ArchState &s = e.state_;
    const Word rs1 = s.reg(d.rs1);
    switch (d.op) {
      case Op::kCsrrw: {
        const Word old = d.rd != 0 ? e.readCsr(d.csr) : 0;
        e.writeCsr(d.csr, rs1);
        s.setReg(d.rd, old);
        break;
      }
      case Op::kCsrrs: {
        const Word old = e.readCsr(d.csr);
        if (d.rs1 != 0)
            e.writeCsr(d.csr, old | rs1);
        s.setReg(d.rd, old);
        break;
      }
      case Op::kCsrrc: {
        const Word old = e.readCsr(d.csr);
        if (d.rs1 != 0)
            e.writeCsr(d.csr, old & ~rs1);
        s.setReg(d.rd, old);
        break;
      }
      case Op::kCsrrwi: {
        const Word old = d.rd != 0 ? e.readCsr(d.csr) : 0;
        e.writeCsr(d.csr, static_cast<Word>(d.imm));
        s.setReg(d.rd, old);
        break;
      }
      case Op::kCsrrsi: {
        const Word old = e.readCsr(d.csr);
        if (d.imm != 0)
            e.writeCsr(d.csr, old | static_cast<Word>(d.imm));
        s.setReg(d.rd, old);
        break;
      }
      default: {  // kCsrrci
        const Word old = e.readCsr(d.csr);
        if (d.imm != 0)
            e.writeCsr(d.csr, old & ~static_cast<Word>(d.imm));
        s.setReg(d.rd, old);
        break;
      }
    }
}

void
Executor::execCustom(Executor &e, const DecodedInsn &d, Addr pc,
                     ExecResult &res)
{
    (void)res;
    if (!e.unit_)
        panic("custom instruction %s without an RTOSUnit at pc "
              "0x%08x", opName(d.op), pc);
    ArchState &s = e.state_;
    const Word rs1 = s.reg(d.rs1);
    const Word rs2 = s.reg(d.rs2);
    RtosUnitPort *unit = e.unit_;
    switch (d.op) {
      case Op::kSetContextId: unit->setContextId(rs1); break;
      case Op::kGetHwSched: s.setReg(d.rd, unit->getHwSched()); break;
      case Op::kAddReady: unit->addReady(rs1, rs2); break;
      case Op::kAddDelay: unit->addDelay(rs1, rs2); break;
      case Op::kRmTask: unit->rmTask(rs1); break;
      case Op::kSwitchRf: unit->switchRf(); break;
      case Op::kSemTake: s.setReg(d.rd, unit->semTake(rs1)); break;
      default: s.setReg(d.rd, unit->semGive(rs1)); break;  // kSemGive
    }
}

void
Executor::execInvalid(Executor &e, const DecodedInsn &d, Addr pc,
                      ExecResult &res)
{
    (void)e;
    (void)res;
    guest_fault("illegal instruction 0x%08x at pc 0x%08x (%s)", d.raw, pc,
                disassemble(d).c_str());
}

const Executor::HandlerTable &
Executor::handlers()
{
    // Populated once at startup; every op family claims its opcodes.
    static const HandlerTable table = [] {
        HandlerTable t;
        t.fill(&Executor::execInvalid);
        const auto set = [&t](Op op, Handler h) {
            t[static_cast<std::size_t>(op)] = h;
        };
        set(Op::kLui, &Executor::execUpper);
        set(Op::kAuipc, &Executor::execUpper);
        set(Op::kJal, &Executor::execJump);
        set(Op::kJalr, &Executor::execJump);
        for (Op op : {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge, Op::kBltu,
                      Op::kBgeu})
            set(op, &Executor::execBranch);
        for (Op op : {Op::kLb, Op::kLh, Op::kLw, Op::kLbu, Op::kLhu})
            set(op, &Executor::execLoad);
        for (Op op : {Op::kSb, Op::kSh, Op::kSw})
            set(op, &Executor::execStore);
        for (Op op : {Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori,
                      Op::kOri, Op::kAndi, Op::kSlli, Op::kSrli,
                      Op::kSrai})
            set(op, &Executor::execAluImm);
        for (Op op : {Op::kAdd, Op::kSub, Op::kSll, Op::kSlt, Op::kSltu,
                      Op::kXor, Op::kSrl, Op::kSra, Op::kOr, Op::kAnd})
            set(op, &Executor::execAluReg);
        for (Op op : {Op::kMul, Op::kMulh, Op::kMulhsu, Op::kMulhu,
                      Op::kDiv, Op::kDivu, Op::kRem, Op::kRemu})
            set(op, &Executor::execMulDiv);
        for (Op op : {Op::kFence, Op::kEcall, Op::kEbreak, Op::kMret,
                      Op::kWfi})
            set(op, &Executor::execSystem);
        for (Op op : {Op::kCsrrw, Op::kCsrrs, Op::kCsrrc, Op::kCsrrwi,
                      Op::kCsrrsi, Op::kCsrrci})
            set(op, &Executor::execCsr);
        for (Op op : {Op::kSetContextId, Op::kGetHwSched, Op::kAddReady,
                      Op::kAddDelay, Op::kRmTask, Op::kSwitchRf,
                      Op::kSemTake, Op::kSemGive})
            set(op, &Executor::execCustom);
        return t;
    }();
    return table;
}

} // namespace rtu
