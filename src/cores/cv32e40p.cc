#include "cv32e40p.hh"

#include <bit>

namespace rtu {

bool
Cv32e40pCore::stalledByUnit(const DecodedInsn &insn) const
{
    RtosUnitPort *unit = exec_.unit();
    if (!unit)
        return false;
    switch (insn.op) {
      case Op::kSwitchRf:
        return unit->switchRfStall();
      case Op::kGetHwSched:
        return unit->getHwSchedStall();
      case Op::kMret:
        return unit->mretStall();
      case Op::kSemTake:
      case Op::kSemGive:
        return unit->semOpStall();
      default:
        return false;
    }
}

unsigned
Cv32e40pCore::costOf(const DecodedInsn &insn, const ExecResult &res) const
{
    switch (classOf(insn.op)) {
      case InsnClass::kJump:
        return params_.jumpCycles;
      case InsnClass::kBranch:
        return res.branchTaken ? params_.takenBranchCycles : 1;
      case InsnClass::kDiv:
        // Iterative divider: latency scales with dividend magnitude.
        return params_.divBaseCycles + divOperandBits_;
      case InsnClass::kSystem:
        if (insn.op == Op::kMret)
            return params_.mretCycles;
        return 1;
      default:
        return 1;
    }
}

void
Cv32e40pCore::tick(Cycle now)
{
    if (remaining_ > 0) {
        // CV32E40P kills in-flight multi-cycle ALU operations so the
        // interrupt is taken with constant latency.
        if (abortable_ && exec_.interruptReady()) {
            remaining_ = 0;
            abortable_ = false;
        } else {
            --remaining_;
            ++stats_.stallCycles;
            if (remaining_ == 0 && mretInFlight_) {
                mretInFlight_ = false;
                if (listener_)
                    listener_->mretCompleted(now);
            }
            return;
        }
    }

    if (sleeping_) {
        if (exec_.pendingEnabledIrqs() != 0) {
            sleeping_ = false;
        } else {
            ++stats_.wfiCycles;
            return;
        }
    }

    if (exec_.interruptReady()) {
        const Word cause = exec_.pendingCause();
        functionalTrap(cause, state_.pc(), now);
        remaining_ = params_.trapEntryCycles - 1;
        abortable_ = false;
        lastWasLoad_ = false;
        return;
    }

    const Addr pc = state_.pc();
    const DecodedInsn insn = fetch(pc);

    if (stalledByUnit(insn)) {
        ++stats_.stallCycles;
        return;
    }

    // Load-use hazard: one bubble when the previous instruction was a
    // load whose destination this instruction consumes.
    unsigned extra = 0;
    if (lastWasLoad_ && lastLoadRd_ != 0) {
        const bool uses =
            (readsRs1(insn.op) && insn.rs1 == lastLoadRd_) ||
            (readsRs2(insn.op) && insn.rs2 == lastLoadRd_);
        if (uses)
            extra = params_.loadUseStall;
    }

    // Capture the dividend before execution mutates the register file
    // (rd may alias rs1).
    divOperandBits_ = 0;
    if (classOf(insn.op) == InsnClass::kDiv) {
        const Word dividend = state_.reg(insn.rs1);
        divOperandBits_ = 32 - std::countl_zero(dividend | 1);
    }

    const ExecResult res = exec_.execute(insn, pc);

    if (res.trap) {
        functionalTrap(res.trapCause, pc, now);
        remaining_ = params_.trapEntryCycles - 1;
        return;
    }

    state_.setPc(res.nextPc);
    ++stats_.instret;

    if (res.memAccess) {
        dmemPort_.claim();
        ++stats_.memOps;
    }

    if (res.isWfi)
        sleeping_ = true;

    const unsigned cost = costOf(insn, res) + extra;
    remaining_ = cost - 1;
    const InsnClass cls = classOf(insn.op);
    abortable_ =
        remaining_ > 0 && (cls == InsnClass::kDiv || cls == InsnClass::kMul);

    if (insn.op == Op::kMret) {
        ++stats_.mrets;
        if (remaining_ == 0) {
            if (listener_)
                listener_->mretCompleted(now);
        } else {
            mretInFlight_ = true;
        }
    }

    lastWasLoad_ = cls == InsnClass::kLoad;
    lastLoadRd_ = insn.rd;
}

} // namespace rtu
