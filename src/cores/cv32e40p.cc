#include "cv32e40p.hh"

#include <bit>

namespace rtu {

bool
Cv32e40pCore::stalledByUnit(const DecodedInsn &insn) const
{
    RtosUnitPort *unit = exec_.unit();
    if (!unit)
        return false;
    switch (insn.op) {
      case Op::kSwitchRf:
        return unit->switchRfStall();
      case Op::kGetHwSched:
        return unit->getHwSchedStall();
      case Op::kMret:
        return unit->mretStall();
      case Op::kSemTake:
      case Op::kSemGive:
        return unit->semOpStall();
      default:
        return false;
    }
}

unsigned
Cv32e40pCore::costOf(const DecodedInsn &insn, const ExecResult &res) const
{
    switch (insn.cls) {
      case InsnClass::kJump:
        return params_.jumpCycles;
      case InsnClass::kBranch:
        return res.branchTaken ? params_.takenBranchCycles : 1;
      case InsnClass::kDiv:
        // Iterative divider: latency scales with dividend magnitude.
        return params_.divBaseCycles + divOperandBits_;
      case InsnClass::kSystem:
        if (insn.op == Op::kMret)
            return params_.mretCycles;
        return 1;
      default:
        return 1;
    }
}

namespace {

/** Instruction classes whose execution touches nothing outside the
 *  register file: safe inside a provably-periodic loop. Memory ops are
 *  excluded deliberately — the RTOSUnit FSMs can rewrite data memory
 *  without the core noticing, which would silently break periodicity. */
bool
stridePure(InsnClass cls)
{
    switch (cls) {
      case InsnClass::kAlu:
      case InsnClass::kMul:
      case InsnClass::kDiv:
      case InsnClass::kBranch:
      case InsnClass::kJump:
        return true;
      default:
        return false;
    }
}

CoreStats
statsDelta(const CoreStats &a, const CoreStats &b)
{
    CoreStats d;
    d.instret = a.instret - b.instret;
    d.traps = a.traps - b.traps;
    d.mrets = a.mrets - b.mrets;
    d.wfiCycles = a.wfiCycles - b.wfiCycles;
    d.memOps = a.memOps - b.memOps;
    d.stallCycles = a.stallCycles - b.stallCycles;
    d.branchMispredicts = a.branchMispredicts - b.branchMispredicts;
    d.cacheMisses = a.cacheMisses - b.cacheMisses;
    d.fetchPredecoded = a.fetchPredecoded - b.fetchPredecoded;
    d.fetchSlowPath = a.fetchSlowPath - b.fetchSlowPath;
    d.blocksExecuted = a.blocksExecuted - b.blocksExecuted;
    d.blockFallbacks = a.blockFallbacks - b.blockFallbacks;
    return d;
}

void
statsAccumulate(CoreStats &s, const CoreStats &d, std::uint64_t k)
{
    s.instret += k * d.instret;
    s.traps += k * d.traps;
    s.mrets += k * d.mrets;
    s.wfiCycles += k * d.wfiCycles;
    s.memOps += k * d.memOps;
    s.stallCycles += k * d.stallCycles;
    s.branchMispredicts += k * d.branchMispredicts;
    s.cacheMisses += k * d.cacheMisses;
    s.fetchPredecoded += k * d.fetchPredecoded;
    s.fetchSlowPath += k * d.fetchSlowPath;
    s.blocksExecuted += k * d.blocksExecuted;
    s.blockFallbacks += k * d.blockFallbacks;
}

} // namespace

Cv32e40pCore::CoreSnapshot
Cv32e40pCore::captureSnapshot() const
{
    CoreSnapshot s;
    for (unsigned bank = 0; bank < 2; ++bank) {
        s.banks[bank][0] = 0;
        for (RegIndex r = 1; r < 32; ++r)
            s.banks[bank][r] = state_.bankReg(bank, r);
    }
    for (RegIndex r = 0; r < 32; ++r)
        s.dirty[r] = state_.regDirty(r);
    s.activeBank = state_.activeBank();
    s.pc = state_.pc();
    s.csrs = state_.csrs;
    s.lastWasLoad = lastWasLoad_;
    s.lastLoadRd = lastLoadRd_;
    s.divOperandBits = divOperandBits_;
    return s;
}

const Cv32e40pCore::StrideSlot *
Cv32e40pCore::findSlot(Addr target) const
{
    for (const StrideSlot &slot : slots_) {
        if (slot.valid && slot.target == target)
            return &slot;
    }
    return nullptr;
}

Cv32e40pCore::StrideSlot *
Cv32e40pCore::findSlot(Addr target)
{
    for (StrideSlot &slot : slots_) {
        if (slot.valid && slot.target == target)
            return &slot;
    }
    return nullptr;
}

void
Cv32e40pCore::strideAnchor(Addr target, Cycle now)
{
    if (StrideSlot *slot = findSlot(target)) {
        slot->lastTouch = now;
        return;
    }
    StrideSlot *victim = &slots_[0];
    for (StrideSlot &slot : slots_) {
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (slot.lastTouch < victim->lastTouch)
            victim = &slot;
    }
    *victim = StrideSlot{};
    victim->valid = true;
    victim->target = target;
    victim->lastTouch = now;
}

void
Cv32e40pCore::strideVisit(Addr pc, Cycle now)
{
    StrideSlot *slot = findSlot(pc);
    if (!slot || slot->dead)
        return;
    slot->lastTouch = now;
    // Cheap pre-check: an iteration that bumped the purity epoch can
    // never confirm — count the miss without paying for a snapshot.
    if (slot->armed && slot->epoch != strideEpoch_ &&
        ++slot->misses >= kStrideMaxMisses) {
        slot->dead = true;
        return;
    }
    CoreSnapshot snap = captureSnapshot();
    if (slot->armed && slot->epoch == strideEpoch_ && snap == slot->snap) {
        // A full loop period replayed the exact machine state with only
        // pure instructions in between: execution from here is periodic
        // until the next impure op or external input.
        slot->confirmed = true;
        slot->period = now - slot->cycle;
        slot->delta = statsDelta(stats_, slot->statsAt);
        slot->misses = 0;
    } else {
        // Pure but non-recurring state (a counting loop) also misses:
        // one re-arm is expected (dirty bits stabilizing), endless
        // re-arming means the state is monotonic and never recurs.
        if (slot->armed && slot->epoch == strideEpoch_ &&
            ++slot->misses >= kStrideMaxMisses) {
            slot->dead = true;
            return;
        }
        slot->armed = true;
        slot->confirmed = false;
        slot->epoch = strideEpoch_;
        slot->snap = snap;
    }
    slot->cycle = now;
    slot->statsAt = stats_;
}

Cycle
Cv32e40pCore::stridePeriod(Cycle now) const
{
    (void)now;
    if (remaining_ > 0 || sleeping_ || exec_.interruptReady())
        return 0;
    const StrideSlot *slot = findSlot(state_.pc());
    if (!slot || !slot->confirmed || slot->epoch != strideEpoch_ ||
        slot->period == 0) {
        return 0;
    }
    // Re-verify the full state here rather than trusting the stale
    // confirmation: anything that mutated the register banks since
    // (e.g. an RTOSUnit restore FSM) voids the periodicity proof.
    if (!(captureSnapshot() == slot->snap))
        return 0;
    return slot->period;
}

void
Cv32e40pCore::applyStride(Cycle now, std::uint64_t periods)
{
    const StrideSlot *slot = findSlot(state_.pc());
    rtu_assert(slot && slot->confirmed, "stride apply without confirmation");
    statsAccumulate(stats_, slot->delta, periods);
    // The architectural state is unchanged by definition of the
    // period; only the visit bookkeeping moves forward.
    StrideSlot *mut = findSlot(state_.pc());
    mut->cycle = now + periods * mut->period;
    mut->lastTouch = mut->cycle;
    mut->statsAt = stats_;
}

Cycle
Cv32e40pCore::nextEventAt(Cycle now) const
{
    if (remaining_ > 0) {
        // An abortable stall collapses the moment an interrupt is
        // ready; otherwise the countdown is pure until the tick that
        // retires it (which may fire the mret listener).
        if (abortable_ && exec_.interruptReady())
            return now;
        return now + remaining_ - 1;
    }
    if (sleeping_)
        return exec_.pendingEnabledIrqs() != 0 ? now : kNoEvent;
    return now;
}

void
Cv32e40pCore::skipTo(Cycle now, Cycle target)
{
    const Cycle delta = target - now;
    if (remaining_ > 0) {
        rtu_assert(delta < remaining_, "skip across a stall boundary");
        remaining_ -= static_cast<unsigned>(delta);
        stats_.stallCycles += delta;
        return;
    }
    if (sleeping_)
        stats_.wfiCycles += delta;
}

void
Cv32e40pCore::tick(Cycle now)
{
    if (remaining_ > 0) {
        // CV32E40P kills in-flight multi-cycle ALU operations so the
        // interrupt is taken with constant latency.
        if (abortable_ && exec_.interruptReady()) {
            remaining_ = 0;
            abortable_ = false;
            strideImpure();
        } else {
            --remaining_;
            ++stats_.stallCycles;
            if (remaining_ == 0 && mretInFlight_) {
                mretInFlight_ = false;
                if (listener_)
                    listener_->mretCompleted(now);
            }
            return;
        }
    }

    if (sleeping_) {
        if (exec_.pendingEnabledIrqs() != 0) {
            sleeping_ = false;
            strideImpure();
        } else {
            ++stats_.wfiCycles;
            return;
        }
    }

    if (exec_.interruptReady()) {
        const Word cause = exec_.pendingCause();
        functionalTrap(cause, state_.pc(), now);
        remaining_ = params_.trapEntryCycles - 1;
        abortable_ = false;
        lastWasLoad_ = false;
        strideImpure();
        return;
    }

    const Addr pc = state_.pc();
    const DecodedInsn insn = fetch(pc);

    if (stalledByUnit(insn)) {
        ++stats_.stallCycles;
        strideImpure();
        return;
    }

    // This is an issue cycle: if pc is a known loop top, try to prove
    // (or extend) periodicity before the instruction executes.
    strideVisit(pc, now);

    const InsnClass cls = insn.cls;
    if (!stridePure(cls))
        strideImpure();

    // Load-use hazard: one bubble when the previous instruction was a
    // load whose destination this instruction consumes.
    unsigned extra = 0;
    if (lastWasLoad_ && lastLoadRd_ != 0) {
        const bool uses =
            (insn.useRs1 && insn.rs1 == lastLoadRd_) ||
            (insn.useRs2 && insn.rs2 == lastLoadRd_);
        if (uses)
            extra = params_.loadUseStall;
    }

    // Capture the dividend before execution mutates the register file
    // (rd may alias rs1).
    divOperandBits_ = 0;
    if (cls == InsnClass::kDiv) {
        const Word dividend = state_.reg(insn.rs1);
        divOperandBits_ = 32 - std::countl_zero(dividend | 1);
    }

    const ExecResult res = exec_.execute(insn, pc);

    if (res.trap) {
        functionalTrap(res.trapCause, pc, now);
        remaining_ = params_.trapEntryCycles - 1;
        strideImpure();
        return;
    }

    state_.setPc(res.nextPc);
    ++stats_.instret;

    if (res.memAccess) {
        dmemPort_.claim();
        ++stats_.memOps;
    }

    if (res.isWfi)
        sleeping_ = true;

    const unsigned cost = costOf(insn, res) + extra;
    remaining_ = cost - 1;
    abortable_ =
        remaining_ > 0 && (cls == InsnClass::kDiv || cls == InsnClass::kMul);

    if (insn.op == Op::kMret) {
        ++stats_.mrets;
        if (remaining_ == 0) {
            if (listener_)
                listener_->mretCompleted(now);
        } else {
            mretInFlight_ = true;
        }
    }

    // A retiring backward control transfer marks a loop top worth
    // watching for periodicity.
    if ((res.branchTaken || cls == InsnClass::kJump) && res.nextPc < pc)
        strideAnchor(res.nextPc, now);

    lastWasLoad_ = cls == InsnClass::kLoad;
    lastLoadRd_ = insn.rd;
}

bool
Cv32e40pCore::strideSlotLive(Addr pc) const
{
    for (const StrideSlot &slot : slots_) {
        if (slot.valid && !slot.dead && slot.target == pc)
            return true;
    }
    return false;
}

bool
Cv32e40pCore::strideSlotLiveInRange(Addr pc, std::uint32_t words) const
{
    for (const StrideSlot &slot : slots_) {
        if (slot.valid && !slot.dead && slot.target - pc < 4u * words)
            return true;
    }
    return false;
}

Cv32e40pCore::BlockStep
Cv32e40pCore::blockStep(Cycle &t, Cycle bound)
{
    const Addr pc = state_.pc();
    const DecodedInsn &insn = predecode_->at(pc);
    const InsnClass cls = insn.cls;

    // An address the per-instruction path would route to a device (or
    // fault on) carries semantics this loop does not model: bail with
    // nothing executed.
    if (cls == InsnClass::kLoad || cls == InsnClass::kStore) {
        if (!blockSafeAccess(effectiveAddr(insn), accessSize(insn.op)))
            return BlockStep::kBailMem;
    }

    ++stats_.fetchPredecoded;

    // Load-use hazard from the *dynamic* previous instruction — exact,
    // unlike the decode-time schedule, which is only a worst case.
    unsigned extra = 0;
    if (lastWasLoad_ && lastLoadRd_ != 0) {
        const bool uses = (insn.useRs1 && insn.rs1 == lastLoadRd_) ||
                          (insn.useRs2 && insn.rs2 == lastLoadRd_);
        if (uses)
            extra = params_.loadUseStall;
    }

    divOperandBits_ = 0;
    if (cls == InsnClass::kDiv) {
        const Word dividend = state_.reg(insn.rs1);
        divOperandBits_ = 32 - std::countl_zero(dividend | 1);
    }

    if (!stridePure(cls))
        strideImpure();

    // Stop classes were excluded up front, so this cannot trap, sleep
    // or touch the RTOSUnit; a wild jalr target is caught by the
    // coverage check before the next step.
    const ExecResult res = exec_.execute(insn, pc);
    state_.setPc(res.nextPc);
    ++stats_.instret;

    if (res.memAccess) {
        dmemPort_.beginCycle();
        dmemPort_.claim();
        ++stats_.memOps;
    }

    if ((res.branchTaken || cls == InsnClass::kJump) && res.nextPc < pc)
        strideAnchor(res.nextPc, t);

    lastWasLoad_ = cls == InsnClass::kLoad;
    lastLoadRd_ = insn.rd;

    const unsigned cost = costOf(insn, res) + extra;
    if (t + cost > bound) {
        // The issue cycle and bound-t-1 stall cycles land inside the
        // window; the in-flight remainder resumes per-cycle, exactly
        // the reference state at the bound.
        stats_.stallCycles += bound - t - 1;
        remaining_ = static_cast<unsigned>(cost - (bound - t));
        abortable_ = cls == InsnClass::kDiv || cls == InsnClass::kMul;
        t = bound;
        return BlockStep::kHorizon;
    }
    stats_.stallCycles += cost - 1;
    abortable_ =
        cost > 1 && (cls == InsnClass::kDiv || cls == InsnClass::kMul);
    t += cost;
    return (cls == InsnClass::kBranch || cls == InsnClass::kJump)
               ? BlockStep::kControl
               : BlockStep::kDone;
}

Cycle
Cv32e40pCore::blockRun(Cycle now, Cycle bound)
{
    if (blockindex_ == nullptr || remaining_ > 0 || sleeping_ ||
        exec_.interruptReady()) {
        return 0;
    }

    Cycle t = now;
    std::uint32_t sinceBoundary = 0;
    bool bailed = false;
    while (t < bound) {
        const Addr pc = state_.pc();
        if (!blockindex_->covers(pc)) {
            bailed = true;
            break;
        }
        const std::uint8_t flags = blockindex_->flagsAt(pc);
        if (flags & BlockIndex::kStop) {
            bailed = true;
            break;
        }
        if (strideSlotLive(pc)) {
            // The per-cycle path must visit the anchor or the loop can
            // never confirm (and stride skips would starve). Written-
            // off anchors flow through freely.
            bailed = true;
            break;
        }

        // Block-entry fast path: a store-free run whose worst-case
        // cost (plus one inherited load-use stall of margin) fits the
        // horizon needs no per-instruction re-validation — one bound
        // check for the whole block.
        const std::uint32_t run = blockindex_->runLenAt(pc);
        if (!(flags & BlockIndex::kSuffixStore) &&
            t + blockindex_->worstCyclesAt(pc) + params_.loadUseStall <=
                bound &&
            !strideSlotLiveInRange(pc, run)) {
            for (std::uint32_t i = 0; i < run; ++i) {
                const BlockStep s = blockStep(t, bound);
                if (s == BlockStep::kControl) {
                    ++stats_.blocksExecuted;
                    sinceBoundary = 0;
                } else if (s == BlockStep::kDone) {
                    ++sinceBoundary;
                } else {
                    // kBailMem (kHorizon cannot happen: the worst-case
                    // cost fit the window).
                    bailed = true;
                    break;
                }
            }
            if (bailed)
                break;
            continue;
        }

        // Checked stepping: store-carrying or horizon-limited runs
        // re-validate every word (a store may have re-formed the very
        // block being executed).
        const BlockStep s = blockStep(t, bound);
        if (s == BlockStep::kControl) {
            ++stats_.blocksExecuted;
            sinceBoundary = 0;
        } else if (s == BlockStep::kDone) {
            ++sinceBoundary;
        } else if (s == BlockStep::kHorizon) {
            ++sinceBoundary;
            break;
        } else {
            bailed = true;
            break;
        }
    }

    if (sinceBoundary > 0)
        ++stats_.blocksExecuted;  // partial run up to the exit point
    if (bailed)
        ++stats_.blockFallbacks;
    return t - now;
}

} // namespace rtu
