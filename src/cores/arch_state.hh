/**
 * @file
 * Architectural state shared by all core models: two register-file
 * banks (application + ISR, paper Fig 3 (a)/(d)), PC and machine CSRs.
 *
 * Bank 0 is the application register file (RF1 in the paper: the only
 * bank visible to the RTOSUnit); bank 1 is the ISR bank (RF2,
 * connected exclusively to the core). Cores without an RTOSUnit never
 * leave bank 0.
 */

#ifndef RTU_CORES_ARCH_STATE_HH
#define RTU_CORES_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "asm/insn.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace rtu {

/** Machine-mode CSR register block (RV32IM_Zicsr subset). */
struct Csrs
{
    Word mstatus = 0;
    Word mie = 0;
    Word mtvec = 0;
    Word mscratch = 0;
    Word mepc = 0;
    Word mcause = 0;
    Word mtval = 0;

    // Equality is used by the idle-stride detector to prove that a
    // loop iteration restored the full machine state.
    bool operator==(const Csrs &) const = default;
};

class ArchState
{
  public:
    static constexpr unsigned kAppBank = 0;
    static constexpr unsigned kIsrBank = 1;

    ArchState() { reset(); }

    void
    reset()
    {
        for (auto &bank : banks_)
            bank.fill(0);
        dirty_.fill(false);
        activeBank_ = kAppBank;
        pc_ = 0;
        csrs = Csrs{};
    }

    // ---- active-bank register access (core datapath) ----------------
    Word
    reg(RegIndex r) const
    {
        rtu_assert(r < 32, "register index %u", r);
        return r == 0 ? 0 : banks_[activeBank_][r];
    }

    void
    setReg(RegIndex r, Word v)
    {
        rtu_assert(r < 32, "register index %u", r);
        if (r == 0)
            return;
        banks_[activeBank_][r] = v;
        if (activeBank_ == kAppBank)
            dirty_[r] = true;
    }

    // ---- explicit-bank access (RTOSUnit store/restore FSMs) ---------
    Word
    bankReg(unsigned bank, RegIndex r) const
    {
        rtu_assert(bank < 2 && r < 32, "bank %u reg %u", bank, r);
        return r == 0 ? 0 : banks_[bank][r];
    }

    void
    setBankReg(unsigned bank, RegIndex r, Word v)
    {
        rtu_assert(bank < 2 && r < 32, "bank %u reg %u", bank, r);
        if (r != 0)
            banks_[bank][r] = v;
    }

    unsigned activeBank() const { return activeBank_; }
    void setActiveBank(unsigned bank)
    {
        rtu_assert(bank < 2, "bank %u", bank);
        activeBank_ = bank;
    }

    // ---- dirty bits (RTOSUnit (D) option, paper Section 4.5) --------
    bool regDirty(RegIndex r) const { return dirty_[r]; }
    void clearDirtyBits() { dirty_.fill(false); }
    void markAllDirty() { dirty_.fill(true); }

    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }

    Csrs csrs;

  private:
    std::array<std::array<Word, 32>, 2> banks_;
    std::array<bool, 32> dirty_;
    unsigned activeBank_ = kAppBank;
    Addr pc_ = 0;
};

} // namespace rtu

#endif // RTU_CORES_ARCH_STATE_HH
