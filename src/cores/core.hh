/**
 * @file
 * Abstract core timing model. Concrete models (CV32E40P, CVA6,
 * NaxRiscv) decide when instructions execute; the shared Executor
 * applies their semantics.
 */

#ifndef RTU_CORES_CORE_HH
#define RTU_CORES_CORE_HH

#include <cstdint>

#include "arch_state.hh"
#include "asm/decode.hh"
#include "executor.hh"
#include "sim/clint.hh"
#include "sim/irq.hh"
#include "sim/kernel.hh"
#include "sim/mem.hh"

namespace rtu {

/** Simulation-side observer of trap boundaries (latency recording). */
class CoreListener
{
  public:
    virtual ~CoreListener() = default;
    /** An interrupt/exception was taken at @p entry_cycle. */
    virtual void trapTaken(Word cause, Cycle entry_cycle) = 0;
    /** An mret completed (the paper's latency end point). */
    virtual void mretCompleted(Cycle cycle) = 0;
};

struct CoreStats
{
    std::uint64_t instret = 0;
    std::uint64_t traps = 0;
    std::uint64_t mrets = 0;
    std::uint64_t wfiCycles = 0;
    std::uint64_t memOps = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t cacheMisses = 0;
};

class Core : public Clocked
{
  public:
    struct Env
    {
        ArchState *state = nullptr;
        Executor *exec = nullptr;
        MemSystem *mem = nullptr;
        IrqLines *irq = nullptr;
        SharedPort *dmemPort = nullptr;
        Clint *clint = nullptr;
    };

    explicit Core(const Env &env)
        : state_(*env.state), exec_(*env.exec), mem_(*env.mem),
          irq_(*env.irq), dmemPort_(*env.dmemPort), clint_(*env.clint)
    {}
    virtual ~Core() = default;

    /** Advance one clock cycle. */
    void tick(Cycle now) override = 0;

    virtual const char *name() const = 0;

    void setListener(CoreListener *l) { listener_ = l; }

    const CoreStats &stats() const { return stats_; }

  protected:
    /** Fetch and decode the instruction at @p pc (Harvard I-side). */
    DecodedInsn
    fetch(Addr pc)
    {
        return decode(mem_.read32(pc));
    }

    /**
     * Apply trap semantics: timer auto-reset notification, CSR
     * updates, redirect, RTOSUnit entry hook, listener event.
     */
    void
    functionalTrap(Word cause, Addr epc, Cycle now)
    {
        if (cause == mcause::kMachineTimer)
            clint_.timerTaken();
        exec_.takeTrap(cause, epc);
        ++stats_.traps;
        if (listener_)
            listener_->trapTaken(cause, now);
    }

    ArchState &state_;
    Executor &exec_;
    MemSystem &mem_;
    IrqLines &irq_;
    SharedPort &dmemPort_;
    Clint &clint_;
    CoreListener *listener_ = nullptr;
    CoreStats stats_;
};

} // namespace rtu

#endif // RTU_CORES_CORE_HH
