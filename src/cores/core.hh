/**
 * @file
 * Abstract core timing model. Concrete models (CV32E40P, CVA6,
 * NaxRiscv) decide when instructions execute; the shared Executor
 * applies their semantics.
 */

#ifndef RTU_CORES_CORE_HH
#define RTU_CORES_CORE_HH

#include <cstdint>

#include "arch_state.hh"
#include "asm/decode.hh"
#include "executor.hh"
#include "sim/blockexec.hh"
#include "sim/clint.hh"
#include "sim/irq.hh"
#include "sim/kernel.hh"
#include "sim/mem.hh"
#include "sim/memmap.hh"
#include "sim/predecode.hh"

namespace rtu {

/** Simulation-side observer of trap boundaries (latency recording). */
class CoreListener
{
  public:
    virtual ~CoreListener() = default;
    /** An interrupt/exception was taken at @p entry_cycle. */
    virtual void trapTaken(Word cause, Cycle entry_cycle) = 0;
    /** An mret completed (the paper's latency end point). */
    virtual void mretCompleted(Cycle cycle) = 0;
};

struct CoreStats
{
    std::uint64_t instret = 0;
    std::uint64_t traps = 0;
    std::uint64_t mrets = 0;
    std::uint64_t wfiCycles = 0;
    std::uint64_t memOps = 0;
    std::uint64_t stallCycles = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t cacheMisses = 0;
    /** Front-end: fetches served from the predecoded image. */
    std::uint64_t fetchPredecoded = 0;
    /** Front-end: fetches through the memory system (image off, wild
     *  jump out of text, or misaligned pc). */
    std::uint64_t fetchSlowPath = 0;
    /** Text-range writes that re-decoded image words. Accounted at
     *  the simulation level (the image is shared, not per-core). */
    std::uint64_t textInvalidations = 0;
    /** Superblocks executed through the block fast path (straight-line
     *  runs completed inside blockRun()). */
    std::uint64_t blocksExecuted = 0;
    /** blockRun() entries or runs that bailed to the per-instruction
     *  path (stop instruction, unsafe memory access, live stride
     *  anchor, uncovered pc). */
    std::uint64_t blockFallbacks = 0;
    /** Block-summary words re-formed by text writes. Accounted at the
     *  simulation level (the index is shared, not per-core). */
    std::uint64_t blockInvalidations = 0;
};

class Core : public Clocked
{
  public:
    struct Env
    {
        ArchState *state = nullptr;
        Executor *exec = nullptr;
        MemSystem *mem = nullptr;
        IrqLines *irq = nullptr;
        SharedPort *dmemPort = nullptr;
        Clint *clint = nullptr;
        /** Decode-once text image; nullptr = always fetch via mem. */
        const PredecodedImage *predecode = nullptr;
        /** Superblock index over the image; nullptr disables the block
         *  fast path (cores fall back to per-cycle ticking only). */
        const BlockIndex *blockindex = nullptr;
    };

    explicit Core(const Env &env)
        : state_(*env.state), exec_(*env.exec), mem_(*env.mem),
          irq_(*env.irq), dmemPort_(*env.dmemPort), clint_(*env.clint),
          predecode_(env.predecode), blockindex_(env.blockindex)
    {}
    virtual ~Core() = default;

    /** Advance one clock cycle. */
    void tick(Cycle now) override = 0;

    virtual const char *name() const = 0;

    void setListener(CoreListener *l) { listener_ = l; }

    const CoreStats &stats() const { return stats_; }

  protected:
    /**
     * Fetch and decode the instruction at @p pc (Harvard I-side).
     * Text-segment fetches hit the predecoded image — one bounds
     * check and an array load instead of a MemSystem dispatch plus a
     * field decode per retired instruction. Anything else (image
     * disabled, wild jump out of text, misaligned pc) takes the
     * decode-from-memory slow path.
     */
    DecodedInsn
    fetch(Addr pc)
    {
        if (predecode_ && predecode_->covers(pc)) {
            ++stats_.fetchPredecoded;
            return predecode_->at(pc);
        }
        ++stats_.fetchSlowPath;
        // A wild jump (e.g. from a fault-corrupted context) is the
        // guest's architectural error, not a simulator bug: raise the
        // typed fault so Simulation::run ends the run as kGuestFault.
        if (!mem_.deviceAt(pc))
            guest_fault("fetch at unmapped address 0x%08x", pc);
        return decode(mem_.read32(pc));
    }

    /**
     * Apply trap semantics: timer auto-reset notification, CSR
     * updates, redirect, RTOSUnit entry hook, listener event.
     */
    void
    functionalTrap(Word cause, Addr epc, Cycle now)
    {
        if (cause == mcause::kMachineTimer)
            clint_.timerTaken();
        exec_.takeTrap(cause, epc);
        ++stats_.traps;
        if (listener_)
            listener_->trapTaken(cause, now);
    }

    /**
     * True if the in-block data access [@p ea, @p ea + @p size) is
     * contained in plain SRAM (imem or dmem). Anything else — CLINT,
     * host I/O, unmapped, device-straddling — must take the
     * per-instruction path, which owns the exact device and fault
     * semantics.
     */
    bool
    blockSafeAccess(Addr ea, unsigned size) const
    {
        return (ea >= memmap::kImemBase &&
                ea + size <= memmap::kImemBase + memmap::kImemSize) ||
               (ea >= memmap::kDmemBase &&
                ea + size <= memmap::kDmemBase + memmap::kDmemSize);
    }

    /** Effective address of a load/store, from the current registers
     *  (exact for in-order in-block execution: every older instruction
     *  has already executed). */
    Addr
    effectiveAddr(const DecodedInsn &insn) const
    {
        return state_.reg(insn.rs1) + static_cast<Word>(insn.imm);
    }

    static unsigned
    accessSize(Op op)
    {
        switch (op) {
          case Op::kLb:
          case Op::kLbu:
          case Op::kSb:
            return 1;
          case Op::kLh:
          case Op::kLhu:
          case Op::kSh:
            return 2;
          default:
            return 4;
        }
    }

    ArchState &state_;
    Executor &exec_;
    MemSystem &mem_;
    IrqLines &irq_;
    SharedPort &dmemPort_;
    Clint &clint_;
    const PredecodedImage *predecode_;
    const BlockIndex *blockindex_;
    CoreListener *listener_ = nullptr;
    CoreStats stats_;
};

} // namespace rtu

#endif // RTU_CORES_CORE_HH
