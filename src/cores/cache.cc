#include "cache.hh"

namespace rtu {

CacheModel::CacheModel(const CacheParams &params) : params_(params)
{
    rtu_assert(params_.lineBytes >= 4 &&
               (params_.lineBytes & (params_.lineBytes - 1)) == 0,
               "bad line size %u", params_.lineBytes);
    rtu_assert(params_.ways > 0, "cache needs at least one way");
    numSets_ = params_.sizeBytes / (params_.ways * params_.lineBytes);
    rtu_assert(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
               "set count %u must be a power of two", numSets_);
    lines_.resize(numSets_ * params_.ways);
}

unsigned
CacheModel::setIndex(Addr addr) const
{
    return (addr / params_.lineBytes) & (numSets_ - 1);
}

Addr
CacheModel::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / numSets_;
}

CacheModel::AccessResult
CacheModel::access(Addr addr, bool is_store)
{
    AccessResult res;
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * params_.ways];
    ++useCounter_;

    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useCounter_;
            if (is_store && params_.writeBack)
                line.dirty = true;
            ++stats_.hits;
            res.hit = true;
            return res;
        }
    }

    ++stats_.misses;
    if (is_store && !params_.writeBack)
        return res;  // write-through, no write-allocate

    // Allocate: evict the LRU way.
    Line *victim = &base[0];
    for (unsigned w = 1; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        ++stats_.writebacks;
    }
    victim->valid = true;
    victim->dirty = is_store && params_.writeBack;
    victim->tag = tag;
    victim->lastUse = useCounter_;
    return res;
}

void
CacheModel::invalidateRange(Addr base, unsigned bytes)
{
    for (Addr a = base & ~(params_.lineBytes - 1); a < base + bytes;
         a += params_.lineBytes) {
        const unsigned set = setIndex(a);
        const Addr tag = tagOf(a);
        Line *lines = &lines_[set * params_.ways];
        for (unsigned w = 0; w < params_.ways; ++w) {
            if (lines[w].valid && lines[w].tag == tag) {
                lines[w].valid = false;
                lines[w].dirty = false;
                ++stats_.invalidations;
            }
        }
    }
}

} // namespace rtu
