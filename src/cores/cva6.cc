#include "cva6.hh"

#include <bit>

#include "sim/memmap.hh"

namespace rtu {

Cva6Core::Cva6Core(const Env &env, SharedPort &bus_port,
                   const Cva6Params &params)
    : Core(env), params_(params), busPort_(bus_port),
      dcache_(params.cache)
{
    predictor_.assign(params_.predictorEntries, 1);  // weakly not-taken
}

unsigned
Cva6Core::predictorIndex(Addr pc) const
{
    return (pc >> 2) & (params_.predictorEntries - 1);
}

bool
Cva6Core::stalledByUnit(const DecodedInsn &insn) const
{
    RtosUnitPort *unit = exec_.unit();
    if (!unit)
        return false;
    switch (insn.op) {
      case Op::kSwitchRf: return unit->switchRfStall();
      case Op::kGetHwSched: return unit->getHwSchedStall();
      case Op::kMret: return unit->mretStall();
      case Op::kSemTake:
      case Op::kSemGive:
        return unit->semOpStall();
      default: return false;
    }
}

Cycle
Cva6Core::nextEventAt(Cycle now) const
{
    // The background store-buffer drain is pure: the bus claims are
    // unobservable while every other port user is quiescent (the
    // kernel's precondition for skipping) and the occupancy decrement
    // is replicated closed-form by skipTo().
    if (mretPending_)
        return std::max(now, mretDoneAt_);  // listener completion event
    if (sleeping_)
        return exec_.pendingEnabledIrqs() != 0 ? now : kNoEvent;
    if (now < issueReadyAt_)
        return issueReadyAt_;  // interrupts sampled at issue boundaries
    if (exec_.interruptReady())
        return now < drainAt_ ? drainAt_ : now;
    return now;
}

void
Cva6Core::skipTo(Cycle now, Cycle target)
{
    const Cycle delta = target - now;
    // Closed-form store-buffer drain: one entry per cycle the bus is
    // not held by a refill.
    const Cycle busyEnd = std::min(std::max(busBusyUntil_, now), target);
    const Cycle freeCycles = target - busyEnd;
    const unsigned drained =
        static_cast<unsigned>(std::min<Cycle>(storeBuf_, freeCycles));
    storeBuf_ -= drained;

    if (sleeping_)
        stats_.wfiCycles += delta;
    else
        stats_.stallCycles += delta;
}

void
Cva6Core::tick(Cycle now)
{
    // Bus occupancy: an in-flight refill owns the bus; otherwise the
    // write-through store buffer drains one entry per free cycle.
    if (now < busBusyUntil_) {
        busPort_.claim();
    } else if (storeBuf_ > 0) {
        busPort_.claim();
        --storeBuf_;
    }

    if (mretPending_ && now >= mretDoneAt_) {
        mretPending_ = false;
        if (listener_)
            listener_->mretCompleted(now);
    }

    if (sleeping_) {
        if (exec_.pendingEnabledIrqs() != 0) {
            sleeping_ = false;
        } else {
            ++stats_.wfiCycles;
            return;
        }
    }

    if (now < issueReadyAt_) {
        ++stats_.stallCycles;
        return;
    }

    if (exec_.interruptReady() && !mretPending_) {
        if (now < drainAt_) {
            // Variable-latency drain of in-flight operations: the
            // modelled source of CVA6's residual entry jitter.
            ++stats_.stallCycles;
            return;
        }
        const Word cause = exec_.pendingCause();
        functionalTrap(cause, state_.pc(), now);
        issueReadyAt_ = now + params_.trapEntryBase;
        regReadyAt_.fill(now);
        return;
    }

    issue(now);
}

void
Cva6Core::issue(Cycle now)
{
    const Addr pc = state_.pc();
    const DecodedInsn insn = fetch(pc);

    if (stalledByUnit(insn)) {
        ++stats_.stallCycles;
        issueReadyAt_ = now + 1;
        return;
    }

    // Scoreboard RAW check: sources must have completed.
    Cycle ops_ready = now;
    if (insn.useRs1)
        ops_ready = std::max(ops_ready, regReadyAt_[insn.rs1]);
    if (insn.useRs2)
        ops_ready = std::max(ops_ready, regReadyAt_[insn.rs2]);
    if (ops_ready > now) {
        issueReadyAt_ = ops_ready;
        stats_.stallCycles += ops_ready - now;
        return;
    }

    const InsnClass cls = insn.cls;

    // Structural: a full write-through buffer blocks further stores.
    if (cls == InsnClass::kStore && storeBuf_ >= params_.storeBufferDepth) {
        issueReadyAt_ = now + 1;
        ++stats_.stallCycles;
        return;
    }

    unsigned div_bits = 0;
    if (cls == InsnClass::kDiv) {
        const Word dividend = state_.reg(insn.rs1);
        div_bits = 32 - std::countl_zero(dividend | 1);
    }

    const ExecResult res = exec_.execute(insn, pc);
    if (res.trap) {
        functionalTrap(res.trapCause, pc, now);
        issueReadyAt_ = now + params_.trapEntryBase;
        regReadyAt_.fill(now);
        return;
    }
    state_.setPc(res.nextPc);
    ++stats_.instret;

    Cycle complete = now + 1;
    Cycle issue_next = now + 1;

    switch (cls) {
      case InsnClass::kMul:
        complete = now + params_.mulLatency;
        break;
      case InsnClass::kDiv:
        complete = now + params_.divBaseLatency + div_bits;
        break;
      case InsnClass::kLoad: {
        ++stats_.memOps;
        const bool cacheable = res.memAddr >= memmap::kDmemBase &&
                               res.memAddr <
                                   memmap::kDmemBase + memmap::kDmemSize;
        if (cacheable) {
            const auto acc = dcache_.access(res.memAddr, false);
            if (acc.hit) {
                complete = now + params_.loadHitLatency;
            } else {
                ++stats_.cacheMisses;
                complete = now + params_.loadHitLatency +
                           params_.missPenalty;
                busBusyUntil_ = std::max(busBusyUntil_, now) +
                                params_.missPenalty;
            }
        } else {
            // Uncached device access occupies the bus for one beat.
            complete = now + params_.loadHitLatency + 1;
            busBusyUntil_ = std::max(busBusyUntil_, now + 1);
        }
        break;
      }
      case InsnClass::kStore: {
        ++stats_.memOps;
        const bool cacheable = res.memAddr >= memmap::kDmemBase &&
                               res.memAddr <
                                   memmap::kDmemBase + memmap::kDmemSize;
        if (cacheable)
            dcache_.access(res.memAddr, true);
        ++storeBuf_;  // drains through the bus in the background
        break;
      }
      case InsnClass::kBranch: {
        const unsigned idx = predictorIndex(pc);
        std::uint8_t &ctr = predictor_[idx];
        const bool predicted_taken = ctr >= 2;
        if (predicted_taken != res.branchTaken) {
            ++stats_.branchMispredicts;
            issue_next = now + 1 + params_.mispredictPenalty;
        }
        if (res.branchTaken) {
            if (ctr < 3)
                ++ctr;
        } else if (ctr > 0) {
            --ctr;
        }
        break;
      }
      case InsnClass::kJump:
        issue_next = now + (insn.op == Op::kJal ? params_.jalCycles
                                                : params_.jalrCycles);
        break;
      case InsnClass::kSystem:
        if (insn.op == Op::kMret) {
            ++stats_.mrets;
            issue_next = now + params_.mretCycles;
            mretPending_ = true;
            mretDoneAt_ = now + params_.mretCycles - 1;
        } else if (res.isWfi) {
            sleeping_ = true;
        }
        break;
      default:
        break;
    }

    if (insn.hasRd && insn.rd != 0)
        regReadyAt_[insn.rd] = complete;
    drainAt_ = std::max(drainAt_, complete);
    issueReadyAt_ = std::max(issue_next, now + 1);
}

Cycle
Cva6Core::blockRun(Cycle now, Cycle bound)
{
    if (blockindex_ == nullptr || mretPending_ || sleeping_ ||
        exec_.interruptReady()) {
        return 0;
    }

    Cycle t = now;
    std::uint32_t sinceBoundary = 0;
    bool bailed = false;
    while (t < bound) {
        if (t < issueReadyAt_) {
            // Committed stall cycles up to the issue boundary: the
            // same closed-form store-buffer drain as skipTo().
            const Cycle adv = std::min(issueReadyAt_, bound);
            const Cycle busyEnd =
                std::min(std::max(busBusyUntil_, t), adv);
            const unsigned drained = static_cast<unsigned>(
                std::min<Cycle>(storeBuf_, adv - busyEnd));
            storeBuf_ -= drained;
            stats_.stallCycles += adv - t;
            t = adv;
            continue;
        }

        // Pre-validate before applying any cycle-t effect, so a bail
        // leaves cycle t wholly unconsumed for the per-cycle path.
        // Flags are re-read every word: an in-block store to text may
        // have re-formed the very run being executed.
        const Addr pc = state_.pc();
        if (!blockindex_->covers(pc)) {
            bailed = true;
            break;
        }
        const std::uint8_t flags = blockindex_->flagsAt(pc);
        if (flags & BlockIndex::kStop) {
            bailed = true;
            break;
        }
        const DecodedInsn &insn = predecode_->at(pc);
        if ((flags & BlockIndex::kMem) &&
            !blockSafeAccess(effectiveAddr(insn), accessSize(insn.op))) {
            bailed = true;
            break;
        }
        const InsnClass cls = insn.cls;

        // Cycle t is committed: bus-occupancy / store-buffer step,
        // exactly the top of tick(). beginCycle() substitutes for the
        // port-reset component, which is not ticking while we run.
        if (t < busBusyUntil_) {
            busPort_.beginCycle();
            busPort_.claim();
        } else if (storeBuf_ > 0) {
            busPort_.beginCycle();
            busPort_.claim();
            --storeBuf_;
        }

        // issue() applies RAW / store-buffer-full stalls by itself; a
        // stalled attempt retires nothing and is retried next cycle,
        // exactly as tick() would.
        const std::uint64_t before = stats_.instret;
        issue(t);
        if (stats_.instret != before) {
            if (cls == InsnClass::kBranch || cls == InsnClass::kJump) {
                ++stats_.blocksExecuted;
                sinceBoundary = 0;
            } else {
                ++sinceBoundary;
            }
        }
        t += 1;
    }

    if (sinceBoundary > 0)
        ++stats_.blocksExecuted;  // partial run up to the exit point
    if (bailed)
        ++stats_.blockFallbacks;
    return t - now;
}

} // namespace rtu
