/**
 * @file
 * The functional executor: the golden architectural model that applies
 * instruction semantics. Core timing models decide *when* to call it;
 * the executor decides *what* happens.
 */

#ifndef RTU_CORES_EXECUTOR_HH
#define RTU_CORES_EXECUTOR_HH

#include <array>

#include "arch_state.hh"
#include "asm/insn.hh"
#include "common/types.hh"
#include "rtosunit_port.hh"
#include "sim/irq.hh"
#include "sim/mem.hh"

namespace rtu {

/** Outcome of executing one instruction (consumed by timing models). */
struct ExecResult
{
    Addr nextPc = 0;
    bool branchTaken = false;  ///< conditional branch taken
    bool memAccess = false;
    bool memIsStore = false;
    Addr memAddr = 0;
    bool isMret = false;
    bool isWfi = false;
    bool trap = false;         ///< synchronous trap raised (ecall)
    Word trapCause = 0;
};

class Executor
{
  public:
    Executor(ArchState &state, MemSystem &mem, IrqLines &irq)
        : state_(state), mem_(mem), irq_(irq)
    {}

    /** Attach the RTOSUnit (null => custom instructions are illegal). */
    void setUnit(RtosUnitPort *unit) { unit_ = unit; }
    RtosUnitPort *unit() const { return unit_; }

    /** Clock source for the mcycle CSR. */
    void setClock(const Cycle *now) { now_ = now; }

    /**
     * Apply the semantics of @p insn located at @p pc. Stall conditions
     * (SWITCH_RF / GET_HW_SCHED / mret) must already be resolved by
     * the caller. Dispatch is a per-opcode handler-table load (one
     * handler per op family), so together with the predecoded image
     * the decode -> dispatch path is two indexed loads.
     */
    ExecResult
    execute(const DecodedInsn &insn, Addr pc)
    {
        ExecResult res;
        res.nextPc = pc + 4;
        handlers()[static_cast<std::size_t>(insn.op)](*this, insn, pc,
                                                      res);
        if (res.branchTaken)
            res.nextPc = pc + static_cast<Word>(insn.imm);
        return res;
    }

    /**
     * Take a trap: save pc into mepc, update mstatus/mcause, redirect
     * to mtvec, and notify the RTOSUnit (interrupt entries only).
     */
    void takeTrap(Word cause, Addr epc);

    Word readCsr(std::uint16_t addr) const;
    void writeCsr(std::uint16_t addr, Word value);

    /** Machine-level interrupts both pending and enabled. */
    Word
    pendingEnabledIrqs() const
    {
        return irq_.pending() & state_.csrs.mie;
    }

    /** True if an interrupt should be taken (MIE set + pending). */
    bool
    interruptReady() const
    {
        return (state_.csrs.mstatus & mstatus::kMie) &&
               pendingEnabledIrqs() != 0;
    }

    /**
     * Highest-priority pending interrupt cause (external > software >
     * timer, the RISC-V privileged order MEI > MSI > MTI).
     */
    Word pendingCause() const;

    /**
     * Conditional-branch direction for operand values @p rs1 / @p rs2.
     * The single source of branch semantics: execute() resolves taken
     * branches through it, and the cores' block fast paths use it to
     * pre-compute a branch target without executing the instruction.
     */
    static bool evalBranch(Op op, Word rs1, Word rs2);

  private:
    /** One entry per Op; applies the op family's semantics in place. */
    using Handler = void (*)(Executor &, const DecodedInsn &, Addr,
                             ExecResult &);
    using HandlerTable = std::array<Handler, kNumOps>;

    /** The dispatch table, populated once at startup. */
    static const HandlerTable &handlers();

    // Per-family handlers (static so they sit in a flat table; they
    // reach the executor's state through the explicit receiver).
    static void execUpper(Executor &, const DecodedInsn &, Addr,
                          ExecResult &);
    static void execJump(Executor &, const DecodedInsn &, Addr,
                         ExecResult &);
    static void execBranch(Executor &, const DecodedInsn &, Addr,
                           ExecResult &);
    static void execLoad(Executor &, const DecodedInsn &, Addr,
                         ExecResult &);
    static void execStore(Executor &, const DecodedInsn &, Addr,
                          ExecResult &);
    static void execAluImm(Executor &, const DecodedInsn &, Addr,
                           ExecResult &);
    static void execAluReg(Executor &, const DecodedInsn &, Addr,
                           ExecResult &);
    static void execMulDiv(Executor &, const DecodedInsn &, Addr,
                           ExecResult &);
    static void execSystem(Executor &, const DecodedInsn &, Addr,
                           ExecResult &);
    static void execCsr(Executor &, const DecodedInsn &, Addr,
                        ExecResult &);
    static void execCustom(Executor &, const DecodedInsn &, Addr,
                           ExecResult &);
    static void execInvalid(Executor &, const DecodedInsn &, Addr,
                            ExecResult &);

    ArchState &state_;
    MemSystem &mem_;
    IrqLines &irq_;
    RtosUnitPort *unit_ = nullptr;
    const Cycle *now_ = nullptr;
};

} // namespace rtu

#endif // RTU_CORES_EXECUTOR_HH
