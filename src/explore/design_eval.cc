#include "design_eval.hh"

#include <sstream>

namespace rtu {

std::string
DesignId::key() const
{
    std::ostringstream os;
    os << coreKindName(core) << '/' << unit.name() << "/slots"
       << unit.listSlots << "/cq" << ctxQueueEntries << "/tp"
       << timerPeriodCycles << "/it" << iterations;
    return os.str();
}

} // namespace rtu
