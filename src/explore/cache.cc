#include "cache.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace rtu {

namespace {

/** Latencies are integral cycle counts; print them as such so the
 *  stream is byte-stable (matching writeResultsJsonl's convention).
 *  Non-finite samples (which should never occur, but must not corrupt
 *  the cache file if they do) serialize as JSON null. */
std::string
formatSample(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
        return csprintf("%lld", static_cast<long long>(v));
    }
    return jsonNumber(v);
}

/** Find the value text following @p field ("\"name\":"), or npos. */
size_t
fieldPos(const std::string &line, const char *field)
{
    const size_t at = line.find(field);
    return at == std::string::npos ? std::string::npos
                                   : at + std::strlen(field);
}

bool
parseU64Field(const std::string &line, const char *field,
              std::uint64_t *out)
{
    const size_t at = fieldPos(line, field);
    if (at == std::string::npos)
        return false;
    char *end = nullptr;
    *out = std::strtoull(line.c_str() + at, &end, 10);
    return end != line.c_str() + at;
}

bool
parseBoolField(const std::string &line, const char *field, bool *out)
{
    const size_t at = fieldPos(line, field);
    if (at == std::string::npos)
        return false;
    *out = line.compare(at, 4, "true") == 0;
    return *out || line.compare(at, 5, "false") == 0;
}

/** Parse the escaped string value following @p field; false when the
 *  field is missing or the closing quote never comes (truncation). */
bool
parseStringField(const std::string &line, const char *field,
                 std::string *out)
{
    const size_t at = fieldPos(line, field);
    if (at == std::string::npos)
        return false;
    std::string raw;
    for (size_t i = at; i < line.size(); ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
            raw.push_back(line[i]);
            raw.push_back(line[++i]);
        } else if (line[i] == '"') {
            *out = jsonUnescape(raw);
            return true;
        } else {
            raw.push_back(line[i]);
        }
    }
    return false;
}

bool
parseSamplesField(const std::string &line, const char *field,
                  std::vector<double> *out)
{
    const size_t at = fieldPos(line, field);
    if (at == std::string::npos)
        return false;
    out->clear();
    const char *p = line.c_str() + at;
    if (*p == ']')
        return true;  // empty array (a run with no switches)
    for (;;) {
        if (std::strncmp(p, "null", 4) == 0) {
            // jsonNumber writes non-finite samples as null; read them
            // back as NaN so the entry round-trips instead of being
            // discarded as corrupt.
            out->push_back(std::nan(""));
            p += 4;
        } else {
            char *end = nullptr;
            const double v = std::strtod(p, &end);
            if (end == p)
                return false;
            out->push_back(v);
            p = end;
        }
        if (*p == ',') {
            ++p;
        } else {
            return *p == ']';
        }
    }
}

} // namespace

ResultCache::ResultCache(const std::string &dir) : dir_(dir)
{
    if (persistent())
        load();
}

std::string
ResultCache::filePath() const
{
    return dir_.empty() ? std::string() : dir_ + "/results.jsonl";
}

void
ResultCache::load()
{
    std::ifstream is(filePath());
    if (!is)
        return;  // first run: nothing cached yet
    std::string line;
    size_t lineno = 0, skipped = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.find("\"bench\":\"explore_cache\"") !=
            std::string::npos) {
            // Schema-stamped header (first line of files created by
            // this writer; absent from pre-header caches). A header
            // must be well-formed and must lead the file; a stamp from
            // another generation makes every following entry another
            // generation too — the per-line check below skips them.
            std::uint64_t schema = 0;
            rtu_assert(parseU64Field(line, "\"schema\":", &schema),
                       "result cache %s:%zu: malformed schema header",
                       filePath().c_str(), lineno);
            rtu_assert(lineno == 1,
                       "result cache %s:%zu: schema header not at the "
                       "top of the file",
                       filePath().c_str(), lineno);
            if (schema != kSchemaVersion)
                ++skipped;
            continue;
        }
        std::uint64_t v = 0;
        if (!parseU64Field(line, "\"v\":", &v) || v != kSchemaVersion) {
            ++skipped;  // other schema generation: not ours to read
            continue;
        }
        std::string key;
        CachedRun run;
        std::uint64_t exitCode = 0, cycles = 0;
        ActivityCounters &a = run.activity;
        const bool ok =
            parseStringField(line, "\"key\":\"", &key) &&
            parseBoolField(line, "\"ok\":", &run.ok) &&
            parseU64Field(line, "\"exit_code\":", &exitCode) &&
            parseU64Field(line, "\"cycles\":", &cycles) &&
            parseU64Field(line, "\"act_cycles\":", &a.cycles) &&
            parseU64Field(line, "\"act_instret\":", &a.instret) &&
            parseU64Field(line, "\"act_mem_ops\":", &a.memOps) &&
            parseU64Field(line, "\"act_unit_words\":", &a.unitMemWords) &&
            parseU64Field(line, "\"act_sort_phases\":", &a.sortPhases) &&
            parseU64Field(line, "\"act_busy\":", &a.unitBusyCycles) &&
            parseU64Field(line, "\"act_traps\":", &a.traps) &&
            parseSamplesField(line, "\"lat\":[", &run.switchSamples);
        if (!ok) {
            ++skipped;
            warn("result cache %s:%zu: corrupt entry skipped",
                 filePath().c_str(), lineno);
            continue;
        }
        run.exitCode = static_cast<Word>(exitCode);
        run.cycles = cycles;
        entries_[key] = std::move(run);
    }
    if (skipped > 0)
        warn("result cache %s: %zu of %zu lines unusable",
             filePath().c_str(), skipped, lineno);
}

bool
ResultCache::lookup(const SweepPoint &point, CachedRun *out) const
{
    const auto it = entries_.find(point.key());
    if (it == entries_.end())
        return false;
    *out = it->second;
    return true;
}

void
ResultCache::insert(const SweepPoint &point, const CachedRun &run)
{
    const std::string key = point.key();
    if (persistent() && entries_.find(key) == entries_.end())
        append(key, run);
    entries_[key] = run;
}

void
ResultCache::append(const std::string &key, const CachedRun &run)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create cache directory '%s': %s", dir_.c_str(),
              ec.message().c_str());
    const bool fresh = !std::filesystem::exists(filePath());
    std::ofstream os(filePath(), std::ios::app);
    if (!os)
        fatal("cannot append to result cache '%s'", filePath().c_str());
    if (fresh) {
        // Same header convention as the sweep benches' --out streams;
        // load() asserts its shape before trusting the entries.
        os << "{\"schema\":" << kSchemaVersion
           << ",\"bench\":\"explore_cache\"}\n";
    }

    const ActivityCounters &a = run.activity;
    std::ostringstream line;
    line << "{\"v\":" << kSchemaVersion
         << ",\"key\":\"" << jsonEscape(key)
         << "\",\"ok\":" << (run.ok ? "true" : "false")
         << ",\"exit_code\":" << run.exitCode
         << ",\"cycles\":" << run.cycles
         << ",\"act_cycles\":" << a.cycles
         << ",\"act_instret\":" << a.instret
         << ",\"act_mem_ops\":" << a.memOps
         << ",\"act_unit_words\":" << a.unitMemWords
         << ",\"act_sort_phases\":" << a.sortPhases
         << ",\"act_busy\":" << a.unitBusyCycles
         << ",\"act_traps\":" << a.traps
         << ",\"lat\":[";
    for (size_t i = 0; i < run.switchSamples.size(); ++i) {
        if (i > 0)
            line << ',';
        line << formatSample(run.switchSamples[i]);
    }
    line << "]}\n";
    os << line.str();
}

CachedRun
ResultCache::fromRunResult(const RunResult &run)
{
    CachedRun out;
    out.ok = run.ok;
    out.exitCode = run.exitCode;
    out.cycles = run.cycles;
    out.switchSamples = run.switchLatency.samples();
    out.activity = run.activity;
    return out;
}

} // namespace rtu
