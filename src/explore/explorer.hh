/**
 * @file
 * The co-exploration engine — the paper's titular contribution as a
 * reusable query layer. An ExploreSpec names a design grid
 * ({core} x {RTOSUnit config} x {ctxQueue depth}, each evaluated over
 * a workload list); Explorer::evaluate() produces one DesignEval per
 * design point, joining simulated latency/jitter (and static WCET
 * where available) with the analytical area/f_max/power models.
 *
 * Three things make repeated exploration cheap:
 *  - an analytical prefilter drops design points that already violate
 *    an area/f_max constraint before any simulation is spent;
 *  - a persistent result cache (cache.hh) keyed by sweep-point
 *    content means only never-seen points simulate;
 *  - the surviving misses run through the same SweepRunner thread
 *    pool the figure benches use — one evaluation path, shared.
 *
 * Determinism: evaluations come back in grid order, every simulation
 * is exact, and cache entries store the raw per-switch samples — a
 * warm-cache exploration reproduces a cold one byte for byte.
 */

#ifndef RTU_EXPLORE_EXPLORER_HH
#define RTU_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "cache.hh"
#include "design_eval.hh"
#include "pareto.hh"

namespace rtu {

struct ExploreSpec
{
    std::vector<CoreKind> cores;
    std::vector<RtosUnitConfig> units;
    /** Latency workloads; empty means the full standard suite. */
    std::vector<std::string> workloads;
    std::vector<unsigned> ctxQueueDepths{8};
    unsigned iterations = 20;
    Word timerPeriodCycles = 1000;

    /** Feasibility bounds. Analytic ones (area, f_max) also prune
     *  the grid before simulation. */
    std::vector<Constraint> constraints;

    unsigned threads = 1;
    /** Cache directory; empty runs without persistence. */
    std::string cacheDir;
    /**
     * When nonzero, run a fault-injection campaign of this many
     * faults per (design x workload) point and expose detection
     * coverage as the "detect" objective. Robustness runs are never
     * cached — they depend on the campaign seed, not just the point.
     */
    unsigned robustnessFaults = 0;
    std::uint64_t robustnessSeed = 1;
    /**
     * When nonzero, compute the "sched-util" objective: the mean RTA
     * breakdown utilization over this many seeded taskset shapes, the
     * overhead terms fed from the design's own measured switch path
     * (schedMargin x latMax per switch episode; the static WCET bound
     * as the tick cost where available). A ranking heuristic over the
     * grid — the simulator-validated, soundness-gated campaign lives
     * in bench_sched.
     */
    unsigned schedTasksets = 0;
    std::uint64_t schedSeed = 1;
    double schedMargin = 1.25;
    /** Compute the static WCET objective (CV32E40P points only). */
    bool computeWcet = true;
    /** Frequency for the power objective (paper: 500 MHz). */
    double powerFreqMhz = 500.0;
};

/** Work accounting of one evaluate() call (logged and tested). */
struct ExploreStats
{
    size_t designPoints = 0;  ///< grid size before pruning
    size_t prefiltered = 0;   ///< pruned by analytic constraints
    size_t sweepPoints = 0;   ///< (design x workload) results needed
    size_t cacheHits = 0;     ///< served from the result cache
    size_t simulated = 0;     ///< actually simulated this call
    /** One "<key>: status=<s>[: diagnostic]" line per freshly
     *  simulated point that failed (cache hits were vetted when
     *  first simulated; the cache only records ok). */
    std::vector<std::string> failures;
};

class Explorer
{
  public:
    explicit Explorer(const ExploreSpec &spec);

    /**
     * Evaluate every non-pruned design point (cache-aware), in grid
     * order (core > unit > depth). Analytically pruned points are
     * absent from the result.
     */
    std::vector<DesignEval> evaluate();

    const ExploreStats &stats() const { return stats_; }
    const ResultCache &cache() const { return cache_; }

  private:
    std::vector<DesignId> designGrid() const;
    DesignEval join(const DesignId &id,
                    const std::vector<CachedRun> &runs) const;
    double wcetFor(const DesignId &id) const;

    ExploreSpec spec_;
    ResultCache cache_;
    ExploreStats stats_;
    /** Memoized static analysis (pure function of the config). */
    mutable std::map<std::string, double> wcetMemo_;
};

/** Version of the writeExploreJson report format, stamped as its
 *  leading "schema" field (the sweep benches' header convention). */
constexpr unsigned kExploreReportSchema = 1;

/**
 * JSON report: explore stats, every evaluation, the Pareto frontier
 * over @p objs and (when @p best != SIZE_MAX) the constrained-query
 * selection. Deterministic byte-stable output, schema-stamped.
 */
void writeExploreJson(std::ostream &os, const ExploreSpec &spec,
                      const std::vector<DesignEval> &evals,
                      const std::vector<Objective> &objs,
                      const ExploreStats &stats, size_t best);

/** Markdown frontier table over @p objs (frontier rows only). */
void writeFrontierMarkdown(std::ostream &os,
                           const std::vector<DesignEval> &evals,
                           const std::vector<Objective> &objs);

} // namespace rtu

#endif // RTU_EXPLORE_EXPLORER_HH
