/**
 * @file
 * Persistent, content-addressed result cache for the co-exploration
 * engine. One JSONL line per simulated sweep point, keyed by
 * SweepPoint::key() (which encodes every axis that can change the
 * result: core, configuration, list slots, workload, iterations,
 * timer period, ctxQueue depth) plus a schema/version stamp. Repeat
 * explorations — different constraints, different objective subsets,
 * larger grids — only simulate points the cache has never seen; a
 * warm-cache exploration is pure file I/O.
 *
 * Entries whose schema stamp differs from the current writer are
 * skipped on load (never deleted): bumping kSchemaVersion invalidates
 * the cache without destroying files a newer binary may still read.
 * Corrupt or truncated lines are skipped with a warning.
 */

#ifndef RTU_EXPLORE_CACHE_HH
#define RTU_EXPLORE_CACHE_HH

#include <map>
#include <string>

#include "harness/experiment.hh"
#include "sweep/sweep.hh"

namespace rtu {

/** The cached outcome of one sweep point: everything the explorer's
 *  objective joining needs, nothing else (no traces, no core stats). */
struct CachedRun
{
    bool ok = false;
    Word exitCode = 0;
    Cycle cycles = 0;
    std::vector<double> switchSamples;  ///< per-switch latencies
    ActivityCounters activity;          ///< feeds the power model
};

class ResultCache
{
  public:
    /** Bump when CachedRun's serialized fields change meaning. */
    static constexpr unsigned kSchemaVersion = 1;

    /** @p dir empty disables persistence (pure in-memory run). The
     *  directory is created on demand; existing entries are loaded. */
    explicit ResultCache(const std::string &dir);

    bool persistent() const { return !dir_.empty(); }

    /** Number of loaded + inserted entries. */
    size_t size() const { return entries_.size(); }

    bool lookup(const SweepPoint &point, CachedRun *out) const;

    /** Record @p run under @p point's key, appending to disk when
     *  persistent. Overwrites an in-memory entry with the same key. */
    void insert(const SweepPoint &point, const CachedRun &run);

    /** Extract the cacheable subset of a fresh simulation result. */
    static CachedRun fromRunResult(const RunResult &run);

    /** The on-disk JSONL file backing this cache. */
    std::string filePath() const;

  private:
    void load();
    void append(const std::string &key, const CachedRun &run);

    std::string dir_;
    std::map<std::string, CachedRun> entries_;
};

} // namespace rtu

#endif // RTU_EXPLORE_CACHE_HH
