#include "pareto.hh"

#include <cstdlib>
#include <limits>

#include "asic/asic.hh"
#include "common/logging.hh"

namespace rtu {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::kLatMean: return "lat_mean";
      case Objective::kLatJitter: return "jitter";
      case Objective::kWcet: return "wcet";
      case Objective::kArea: return "area";
      case Objective::kFmax: return "fmax";
      case Objective::kPower: return "power";
      case Objective::kDetect: return "detect";
      case Objective::kSchedUtil: return "sched-util";
    }
    return "?";
}

Objective
objectiveFromName(const std::string &name)
{
    for (Objective o : {Objective::kLatMean, Objective::kLatJitter,
                        Objective::kWcet, Objective::kArea,
                        Objective::kFmax, Objective::kPower,
                        Objective::kDetect, Objective::kSchedUtil}) {
        if (name == objectiveName(o))
            return o;
    }
    fatal("unknown objective '%s' (expected lat_mean, jitter, wcet, "
          "area, fmax, power, detect or sched-util)", name.c_str());
}

bool
objectiveMaximized(Objective o)
{
    return o == Objective::kFmax || o == Objective::kDetect ||
           o == Objective::kSchedUtil;
}

double
objectiveValue(const DesignEval &e, Objective o)
{
    switch (o) {
      case Objective::kLatMean: return e.latMean;
      case Objective::kLatJitter: return e.latJitter;
      case Objective::kWcet: return e.wcetCycles;
      case Objective::kArea: return e.areaNorm;
      case Objective::kFmax: return e.fmaxGHz;
      case Objective::kPower: return e.powerMw;
      case Objective::kDetect: return e.detectCoverage;
      case Objective::kSchedUtil: return e.schedUtil;
    }
    panic("unknown objective");
}

double
canonicalValue(const DesignEval &e, Objective o)
{
    if (o == Objective::kWcet && !e.hasWcet)
        return std::numeric_limits<double>::infinity();
    // A point whose robustness was never campaigned scores worst on
    // the detect axis (coverage is maximized, so canonical +inf).
    if (o == Objective::kDetect && !e.hasDetect)
        return std::numeric_limits<double>::infinity();
    // Likewise for a point whose schedulability was never analyzed.
    if (o == Objective::kSchedUtil && !e.hasSchedUtil)
        return std::numeric_limits<double>::infinity();
    const double v = objectiveValue(e, o);
    return objectiveMaximized(o) ? -v : v;
}

bool
dominates(const DesignEval &a, const DesignEval &b,
          const std::vector<Objective> &objs)
{
    rtu_assert(!objs.empty(), "dominance needs at least one objective");
    bool strictly = false;
    for (Objective o : objs) {
        const double va = canonicalValue(a, o);
        const double vb = canonicalValue(b, o);
        if (va > vb)
            return false;
        if (va < vb)
            strictly = true;
    }
    return strictly;
}

std::vector<unsigned>
nonDominatedRank(const std::vector<DesignEval> &evals,
                 const std::vector<Objective> &objs)
{
    const size_t n = evals.size();
    std::vector<unsigned> rank(n, 0);
    std::vector<bool> assigned(n, false);
    size_t remaining = n;
    unsigned front = 0;
    while (remaining > 0) {
        std::vector<size_t> thisFront;
        for (size_t i = 0; i < n; ++i) {
            if (assigned[i])
                continue;
            bool dominated = false;
            for (size_t j = 0; j < n && !dominated; ++j) {
                if (j != i && !assigned[j] &&
                    dominates(evals[j], evals[i], objs))
                    dominated = true;
            }
            if (!dominated)
                thisFront.push_back(i);
        }
        rtu_assert(!thisFront.empty(),
                   "non-dominated sort made no progress");
        for (size_t i : thisFront) {
            rank[i] = front;
            assigned[i] = true;
        }
        remaining -= thisFront.size();
        ++front;
    }
    return rank;
}

std::vector<size_t>
paretoFrontier(const std::vector<DesignEval> &evals,
               const std::vector<Objective> &objs)
{
    // Rank-0 of the non-dominated sort, computed directly: a point is
    // on the frontier iff no point dominates it.
    std::vector<size_t> front;
    for (size_t i = 0; i < evals.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < evals.size() && !dominated; ++j) {
            if (j != i && dominates(evals[j], evals[i], objs))
                dominated = true;
        }
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

bool
Constraint::satisfiedBy(const DesignEval &e) const
{
    if (obj == Objective::kWcet && !e.hasWcet)
        return !isUpperBound;  // no static bound: can't promise "<="
    double v = objectiveValue(e, obj);
    if (relativeToVanilla) {
        rtu_assert(obj == Objective::kFmax,
                   "relative bounds are supported for fmax (area is "
                   "already normalized to vanilla)");
        v /= AsicModel::fmaxGHz(e.id.core, RtosUnitConfig::vanilla());
    }
    return isUpperBound ? v <= bound : v >= bound;
}

std::string
Constraint::str() const
{
    return csprintf("%s%s%g%s", objectiveName(obj),
                    isUpperBound ? "<=" : ">=", bound,
                    relativeToVanilla ? "x" : "");
}

Constraint
parseConstraint(const std::string &text)
{
    size_t op = text.find("<=");
    bool upper = true;
    if (op == std::string::npos) {
        op = text.find(">=");
        upper = false;
    }
    if (op == std::string::npos || op == 0 || op + 2 >= text.size())
        fatal("malformed constraint '%s' (expected obj<=value or "
              "obj>=value, e.g. area<=1.35 or fmax>=0.9x)",
              text.c_str());

    Constraint c;
    c.obj = objectiveFromName(text.substr(0, op));
    c.isUpperBound = upper;
    std::string value = text.substr(op + 2);
    if (!value.empty() && (value.back() == 'x' || value.back() == 'X')) {
        c.relativeToVanilla = true;
        value.pop_back();
    }
    char *end = nullptr;
    c.bound = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("malformed constraint bound in '%s'", text.c_str());
    if (c.relativeToVanilla && c.obj != Objective::kFmax)
        fatal("relative bound '%s': only fmax supports the 'x' suffix "
              "(area is already normalized to vanilla)", text.c_str());
    return c;
}

std::vector<size_t>
feasibleSet(const std::vector<DesignEval> &evals,
            const std::vector<Constraint> &constraints)
{
    std::vector<size_t> out;
    for (size_t i = 0; i < evals.size(); ++i) {
        if (!evals[i].ok)
            continue;
        bool ok = true;
        for (const Constraint &c : constraints)
            ok = ok && c.satisfiedBy(evals[i]);
        if (ok)
            out.push_back(i);
    }
    return out;
}

size_t
selectBest(const std::vector<DesignEval> &evals, Objective minimize,
           const std::vector<Constraint> &constraints)
{
    size_t best = SIZE_MAX;
    double bestV = std::numeric_limits<double>::infinity();
    for (size_t i : feasibleSet(evals, constraints)) {
        const double v = canonicalValue(evals[i], minimize);
        if (v < bestV) {
            bestV = v;
            best = i;
        }
    }
    return best;
}

} // namespace rtu
