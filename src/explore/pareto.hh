/**
 * @file
 * Pareto machinery over DesignEval objective vectors: objective
 * selection, dominance, non-dominated sorting (NSGA-style successive
 * fronts), and the constraint queries that turn frontiers into the
 * paper's per-core recommendations ("minimize mean latency subject to
 * area <= +35 % and f_max >= 0.9x vanilla").
 */

#ifndef RTU_EXPLORE_PARETO_HH
#define RTU_EXPLORE_PARETO_HH

#include <cstddef>
#include <string>
#include <vector>

#include "design_eval.hh"

namespace rtu {

/** The objectives a frontier or constraint can range over. */
enum class Objective
{
    kLatMean,    ///< mean switch latency [cycles] (minimize)
    kLatJitter,  ///< max - min switch latency [cycles] (minimize)
    kWcet,       ///< static worst case [cycles] (minimize; CV32E40P)
    kArea,       ///< normalized area vs same-core vanilla (minimize)
    kFmax,       ///< achievable frequency [GHz] (maximize)
    kPower,      ///< average power [mW] (minimize)
    kDetect,     ///< fault-detection coverage [0..1] (maximize)
    kSchedUtil,  ///< RTA breakdown utilization [0..1] (maximize)
};

const char *objectiveName(Objective o);

/** Parse "lat_mean", "jitter", "wcet", "area", "fmax", "power",
 *  "detect", "sched-util" (fatal on unknown names: user-facing
 *  input). */
Objective objectiveFromName(const std::string &name);

/** f_max, detection coverage and breakdown utilization are
 *  maximized; every other objective is a cost. */
bool objectiveMaximized(Objective o);

/** Raw objective value as reported (f_max in GHz, area as a ratio). */
double objectiveValue(const DesignEval &e, Objective o);

/**
 * Value in canonical minimize-space: f_max negated, a missing WCET
 * mapped to +infinity (a point without a static bound never beats one
 * that has it on that axis).
 */
double canonicalValue(const DesignEval &e, Objective o);

/** Strict Pareto dominance of @p a over @p b on @p objs:
 *  no-worse on every objective, strictly better on at least one. */
bool dominates(const DesignEval &a, const DesignEval &b,
               const std::vector<Objective> &objs);

/**
 * Non-dominated sorting: rank 0 is the Pareto frontier, rank 1 the
 * frontier after removing rank 0, and so on. Order-stable and
 * deterministic (pure function of the objective vectors).
 */
std::vector<unsigned> nonDominatedRank(const std::vector<DesignEval> &evals,
                                       const std::vector<Objective> &objs);

/** Indices of the Pareto frontier (rank 0), in input order. */
std::vector<size_t> paretoFrontier(const std::vector<DesignEval> &evals,
                                   const std::vector<Objective> &objs);

/**
 * One bound of a constrained co-design query. @c relativeToVanilla
 * rescales the observed value by the same core's vanilla baseline
 * before comparing (supported for f_max; area is already normalized).
 */
struct Constraint
{
    Objective obj = Objective::kArea;
    bool isUpperBound = true;  ///< true: value <= bound; false: >=
    double bound = 0;
    bool relativeToVanilla = false;

    bool satisfiedBy(const DesignEval &e) const;

    /** Can this bound be checked from the analytical models alone,
     *  before spending any simulation time? */
    bool analytic() const
    {
        return obj == Objective::kArea || obj == Objective::kFmax;
    }

    /** Round-trippable display form ("area<=1.35", "fmax>=0.9x"). */
    std::string str() const;
};

/**
 * Parse "obj<=value" / "obj>=value"; a trailing 'x' makes the bound
 * relative to the same core's vanilla baseline. Fatal on malformed
 * input (user-facing).
 */
Constraint parseConstraint(const std::string &text);

/** Indices of evaluated points satisfying every constraint (and
 *  whose runs were ok), in input order. */
std::vector<size_t> feasibleSet(const std::vector<DesignEval> &evals,
                                const std::vector<Constraint> &constraints);

/**
 * The constrained query: index of the feasible point minimizing
 * @p minimize (maximizing for f_max); SIZE_MAX when nothing is
 * feasible. Ties resolve to the earliest point in input order, which
 * is grid order for Explorer output — deterministic.
 */
size_t selectBest(const std::vector<DesignEval> &evals,
                  Objective minimize,
                  const std::vector<Constraint> &constraints);

} // namespace rtu

#endif // RTU_EXPLORE_PARETO_HH
