#include "explorer.hh"

#include <cstdio>

#include "asic/asic.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "inject/campaign.hh"
#include "kernel/kernel.hh"
#include "sched/rta.hh"
#include "sched/taskset.hh"
#include "wcet/wcet.hh"
#include "workloads/workloads.hh"

namespace rtu {

namespace {

/** The paper measures power on mutex_workload; fall back to the
 *  first workload when the spec doesn't include it. */
const std::string &
powerWorkload(const std::vector<std::string> &workloads)
{
    for (const std::string &w : workloads) {
        if (w == "mutex_workload")
            return w;
    }
    return workloads.front();
}

SampleStats
statsOf(const CachedRun &run)
{
    SampleStats s;
    for (double v : run.switchSamples)
        s.add(v);
    return s;
}

} // namespace

Explorer::Explorer(const ExploreSpec &spec)
    : spec_(spec), cache_(spec.cacheDir)
{
    rtu_assert(!spec_.cores.empty() && !spec_.units.empty(),
               "explore spec has an empty core or config axis");
    rtu_assert(!spec_.ctxQueueDepths.empty(),
               "explore spec has an empty ctxQueue axis");
    rtu_assert(spec_.iterations > 0,
               "explore spec needs at least one iteration");
    if (spec_.workloads.empty())
        spec_.workloads = standardWorkloadNames();
}

std::vector<DesignId>
Explorer::designGrid() const
{
    std::vector<DesignId> grid;
    for (CoreKind core : spec_.cores) {
        for (const RtosUnitConfig &unit : spec_.units) {
            // The ctxQueue is a NaxRiscv LSU structure; other cores
            // would evaluate identical duplicates per depth.
            const bool depthMatters = core == CoreKind::kNax;
            for (unsigned depth : spec_.ctxQueueDepths) {
                DesignId id;
                id.core = core;
                id.unit = unit;
                id.ctxQueueEntries = depth;
                id.timerPeriodCycles = spec_.timerPeriodCycles;
                id.iterations = spec_.iterations;
                grid.push_back(id);
                if (!depthMatters)
                    break;
            }
        }
    }
    return grid;
}

double
Explorer::wcetFor(const DesignId &id) const
{
    const std::string memoKey =
        id.unit.name() + "/" + std::to_string(id.unit.listSlots);
    const auto it = wcetMemo_.find(memoKey);
    if (it != wcetMemo_.end())
        return it->second;

    // Same maximally-loaded setup as bench_wcet_table: up to eight
    // TCBs moving through the lists, external path enabled.
    KernelParams kp;
    kp.unit = id.unit;
    kp.usesExternalIrq = true;
    KernelBuilder kb(kp);
    const auto w = makeDelayWake(1);
    w->addTasks(kb);
    const Program program = kb.build();

    WcetAnalyzer analyzer(program, id.unit);
    const double wcet =
        static_cast<double>(analyzer.analyzeIsr().totalCycles);
    wcetMemo_[memoKey] = wcet;
    return wcet;
}

DesignEval
Explorer::join(const DesignId &id,
               const std::vector<CachedRun> &runs) const
{
    DesignEval e;
    e.id = id;

    const AreaResult area = AsicModel::area(id.core, id.unit);
    e.areaNorm = area.normalized;
    e.areaMm2 = area.areaMm2;
    e.fmaxGHz = AsicModel::fmaxGHz(id.core, id.unit);

    bool ok = !runs.empty();
    SampleStats merged;
    for (const CachedRun &r : runs) {
        ok = ok && r.ok;
        merged.merge(statsOf(r));
    }
    e.ok = ok && !merged.empty();
    if (!merged.empty()) {
        e.latMean = merged.mean();
        e.latJitter = merged.jitter();
        e.latMin = merged.min();
        e.latMax = merged.max();
        e.latP99 = merged.percentile(0.99);
        e.switches = merged.count();
    }

    // Power from the measured activity of the paper's power workload.
    const size_t powerIdx =
        &powerWorkload(spec_.workloads) - spec_.workloads.data();
    if (powerIdx < runs.size() &&
        runs[powerIdx].activity.cycles > 0) {
        e.powerMw = AsicModel::power(id.core, id.unit,
                                     runs[powerIdx].activity,
                                     spec_.powerFreqMhz)
                        .totalMw();
    }

    if (spec_.computeWcet && id.core == CoreKind::kCv32e40p) {
        e.wcetCycles = wcetFor(id);
        e.hasWcet = true;
    }
    return e;
}

std::vector<DesignEval>
Explorer::evaluate()
{
    stats_ = ExploreStats();
    const std::vector<DesignId> grid = designGrid();
    stats_.designPoints = grid.size();

    // (4) Analytical prefilter: area/f_max bounds need no simulation;
    // points violating them never reach the runner.
    std::vector<Constraint> analytic;
    for (const Constraint &c : spec_.constraints) {
        if (c.analytic())
            analytic.push_back(c);
    }
    std::vector<DesignId> survivors;
    for (const DesignId &id : grid) {
        DesignEval shell;
        shell.id = id;
        const AreaResult area = AsicModel::area(id.core, id.unit);
        shell.areaNorm = area.normalized;
        shell.fmaxGHz = AsicModel::fmaxGHz(id.core, id.unit);
        bool keep = true;
        for (const Constraint &c : analytic)
            keep = keep && c.satisfiedBy(shell);
        if (keep)
            survivors.push_back(id);
        else
            ++stats_.prefiltered;
    }
    if (stats_.prefiltered > 0) {
        inform("explore: analytical prefilter pruned %zu of %zu design "
               "points before simulation",
               stats_.prefiltered, stats_.designPoints);
    }

    // (3) Cache-aware result gathering: only unseen points simulate.
    auto sweepPointFor = [&](const DesignId &id, const std::string &w) {
        SweepPoint p;
        p.core = id.core;
        p.unit = id.unit;
        p.workload = w;
        p.iterations = id.iterations;
        p.timerPeriodCycles = id.timerPeriodCycles;
        p.naxCtxQueueEntries = id.ctxQueueEntries;
        p.reseed();
        return p;
    };

    std::vector<SweepPoint> missing;
    for (const DesignId &id : survivors) {
        for (const std::string &w : spec_.workloads) {
            ++stats_.sweepPoints;
            const SweepPoint p = sweepPointFor(id, w);
            CachedRun cached;
            if (cache_.lookup(p, &cached))
                ++stats_.cacheHits;
            else
                missing.push_back(p);
        }
    }

    if (!missing.empty()) {
        const SweepRunner runner(spec_.threads);
        const std::vector<SweepResult> fresh = runner.runPoints(missing);
        stats_.simulated = fresh.size();
        for (const SweepResult &r : fresh) {
            if (!r.run.ok) {
                const std::string line = csprintf(
                    "%s: status=%s%s%s", r.point.key().c_str(),
                    runStatusName(r.run.status),
                    r.run.diagnostic.empty() ? "" : ": ",
                    r.run.diagnostic.c_str());
                warn("explore point %s failed", line.c_str());
                stats_.failures.push_back(line);
            }
            cache_.insert(r.point, ResultCache::fromRunResult(r.run));
        }
    }

    // (1) Join both sides into one objective vector per design point.
    std::vector<DesignEval> evals;
    evals.reserve(survivors.size());
    for (const DesignId &id : survivors) {
        std::vector<CachedRun> runs;
        runs.reserve(spec_.workloads.size());
        for (const std::string &w : spec_.workloads) {
            CachedRun cached;
            const bool hit = cache_.lookup(sweepPointFor(id, w), &cached);
            rtu_assert(hit, "sweep point vanished from the cache");
            runs.push_back(std::move(cached));
        }
        evals.push_back(join(id, runs));
    }

    // (2) Optional robustness objective: a deterministic fault
    // campaign over the surviving grid; per-design detection coverage
    // becomes the "detect" axis. Never cached — the coverage is a
    // function of the campaign seed, not just the sweep point.
    if (spec_.robustnessFaults > 0 && !survivors.empty()) {
        CampaignSpec cs;
        cs.faultsPerPoint = spec_.robustnessFaults;
        cs.seed = spec_.robustnessSeed;
        for (const DesignId &id : survivors) {
            for (const std::string &w : spec_.workloads)
                cs.points.push_back(sweepPointFor(id, w));
        }
        const SweepRunner runner(spec_.threads);
        const CampaignResult cres = runCampaign(cs, runner);
        const size_t perDesign = spec_.workloads.size();
        std::vector<unsigned> detected(survivors.size(), 0);
        std::vector<unsigned> escaped(survivors.size(), 0);
        for (const FaultRunRecord &f : cres.faults) {
            const size_t design = f.pointIndex / perDesign;
            if (f.outcome == FaultOutcome::kMasked)
                continue;
            if (f.outcome == FaultOutcome::kDetectedOracle ||
                f.outcome == FaultOutcome::kDetectedWatchdog) {
                ++detected[design];
            } else {
                ++escaped[design];
            }
        }
        for (size_t i = 0; i < evals.size(); ++i) {
            const unsigned effective = detected[i] + escaped[i];
            evals[i].hasDetect = true;
            evals[i].detectCoverage =
                effective == 0 ? 1.0
                               : static_cast<double>(detected[i]) /
                                     effective;
        }
    }

    // (5) Optional schedulability objective: per design, the mean RTA
    // breakdown utilization over seeded unit-utilization taskset
    // shapes. The same shapes score every design (the seed never
    // mixes in the configuration), so the axis ranks configurations
    // by how much schedulable load their measured switch path admits.
    // The overheads here are the margined observed maxima, not the
    // trace-phase decomposition bench_sched measures — this axis is a
    // ranking heuristic; soundness claims stay with bench_sched's
    // simulator-validated campaign.
    if (spec_.schedTasksets > 0) {
        TasksetParams shape;
        shape.totalUtil = 1.0;
        for (DesignEval &e : evals) {
            if (!e.ok)
                continue;
            RtaOverheads oh;
            oh.switchCost = spec_.schedMargin * e.latMax;
            oh.tickCost = e.hasWcet
                              ? e.wcetCycles
                              : spec_.schedMargin * e.latMax;
            oh.tickPeriodCycles =
                static_cast<double>(e.id.timerPeriodCycles);
            double sum = 0;
            for (unsigned t = 0; t < spec_.schedTasksets; ++t) {
                const Taskset ts = makeTaskset(
                    tasksetSeed(spec_.schedSeed, 0, t), shape);
                sum += breakdownUtilization(
                    ts, oh,
                    static_cast<double>(e.id.timerPeriodCycles));
            }
            e.schedUtil = sum / spec_.schedTasksets;
            e.hasSchedUtil = true;
        }
    }
    return evals;
}

namespace {

/** Byte-stable numeric formatting per objective (cycle quantities
 *  print integrally, model outputs with fixed precision). Non-finite
 *  values — a missing WCET's +inf, a NaN from an empty latency set —
 *  serialize as JSON null via jsonNumber, never as bare inf/nan. */
std::string
formatObjective(const DesignEval &e, Objective o)
{
    const double v = objectiveValue(e, o);
    switch (o) {
      case Objective::kLatMean:
        return jsonNumber(v, "%.3f");
      case Objective::kLatJitter:
        return jsonNumber(v, "%.0f");
      case Objective::kWcet:
        return e.hasWcet ? jsonNumber(v, "%.0f") : std::string("null");
      case Objective::kArea:
        return jsonNumber(v, "%.4f");
      case Objective::kFmax:
        return jsonNumber(v, "%.3f");
      case Objective::kPower:
        return jsonNumber(v, "%.3f");
      case Objective::kDetect:
        return e.hasDetect ? jsonNumber(v, "%.4f") : std::string("null");
      case Objective::kSchedUtil:
        return e.hasSchedUtil ? jsonNumber(v, "%.4f")
                              : std::string("null");
    }
    panic("unknown objective");
}

void
writeEvalJson(std::ostream &os, const DesignEval &e)
{
    os << "{\"key\":\"" << jsonEscape(e.id.key())
       << "\",\"core\":\"" << jsonEscape(coreKindName(e.id.core))
       << "\",\"config\":\"" << jsonEscape(e.id.unit.name())
       << "\",\"list_slots\":" << e.id.unit.listSlots
       << ",\"ctxqueue\":" << e.id.ctxQueueEntries
       << ",\"ok\":" << (e.ok ? "true" : "false")
       << ",\"lat_mean\":" << formatObjective(e, Objective::kLatMean)
       << ",\"jitter\":" << formatObjective(e, Objective::kLatJitter)
       << ",\"lat_min\":" << jsonNumber(e.latMin, "%.0f")
       << ",\"lat_max\":" << jsonNumber(e.latMax, "%.0f")
       << ",\"lat_p99\":" << jsonNumber(e.latP99, "%.0f")
       << ",\"switches\":" << e.switches
       << ",\"wcet\":" << formatObjective(e, Objective::kWcet)
       << ",\"area\":" << formatObjective(e, Objective::kArea)
       << ",\"area_mm2\":" << jsonNumber(e.areaMm2, "%.5f")
       << ",\"fmax\":" << formatObjective(e, Objective::kFmax)
       << ",\"power\":" << formatObjective(e, Objective::kPower)
       << ",\"detect\":" << formatObjective(e, Objective::kDetect)
       << ",\"sched_util\":"
       << formatObjective(e, Objective::kSchedUtil) << "}";
}

} // namespace

void
writeExploreJson(std::ostream &os, const ExploreSpec &spec,
                 const std::vector<DesignEval> &evals,
                 const std::vector<Objective> &objs,
                 const ExploreStats &stats, size_t best)
{
    os << "{\"schema\":" << kExploreReportSchema
       << ",\"bench\":\"explore\""
       << ",\"stats\":{\"design_points\":" << stats.designPoints
       << ",\"prefiltered\":" << stats.prefiltered
       << ",\"sweep_points\":" << stats.sweepPoints
       << ",\"cache_hits\":" << stats.cacheHits
       << ",\"simulated\":" << stats.simulated << "}";

    os << ",\"objectives\":[";
    for (size_t i = 0; i < objs.size(); ++i) {
        os << (i ? "," : "") << "\"" << objectiveName(objs[i]) << "\"";
    }
    os << "],\"constraints\":[";
    for (size_t i = 0; i < spec.constraints.size(); ++i) {
        os << (i ? "," : "") << "\""
           << jsonEscape(spec.constraints[i].str()) << "\"";
    }
    os << "],\"evals\":[";
    for (size_t i = 0; i < evals.size(); ++i) {
        os << (i ? "," : "");
        writeEvalJson(os, evals[i]);
    }
    os << "],\"frontier\":[";
    const std::vector<size_t> front = paretoFrontier(evals, objs);
    for (size_t i = 0; i < front.size(); ++i)
        os << (i ? "," : "") << front[i];
    os << "],\"best\":";
    if (best == SIZE_MAX) {
        os << "null";
    } else {
        rtu_assert(best < evals.size(), "selection index out of range");
        writeEvalJson(os, evals[best]);
    }
    os << "}\n";
}

void
writeFrontierMarkdown(std::ostream &os,
                      const std::vector<DesignEval> &evals,
                      const std::vector<Objective> &objs)
{
    os << "| core | config | slots |";
    for (Objective o : objs)
        os << ' ' << objectiveName(o) << " |";
    os << "\n|---|---|---|";
    for (size_t i = 0; i < objs.size(); ++i)
        os << "---|";
    os << "\n";
    for (size_t i : paretoFrontier(evals, objs)) {
        const DesignEval &e = evals[i];
        os << "| " << coreKindName(e.id.core) << " | "
           << e.id.unit.name() << " | " << e.id.unit.listSlots << " |";
        for (Objective o : objs)
            os << ' ' << formatObjective(e, o) << " |";
        os << "\n";
    }
}

} // namespace rtu
