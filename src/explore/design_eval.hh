/**
 * @file
 * One co-design candidate evaluated end-to-end: the latency/jitter
 * side from simulation (merged over the workload suite, WCET from
 * static analysis where available) joined with the implementation
 * side from the analytical 22 nm models — the objective vector the
 * paper's co-exploration trades over.
 */

#ifndef RTU_EXPLORE_DESIGN_EVAL_HH
#define RTU_EXPLORE_DESIGN_EVAL_HH

#include <cstdint>
#include <string>

#include "harness/simulation.hh"
#include "rtosunit/config.hh"

namespace rtu {

/**
 * Identity of one design point: the sweep axes minus the workload
 * (latency statistics merge across the whole workload list, as the
 * paper's per-configuration numbers do).
 */
struct DesignId
{
    CoreKind core = CoreKind::kCv32e40p;
    RtosUnitConfig unit;  ///< includes listSlots
    unsigned ctxQueueEntries = 8;
    Word timerPeriodCycles = 1000;
    unsigned iterations = 20;

    /** Stable human-readable key (grouping and report labels). */
    std::string key() const;

    bool
    operator==(const DesignId &o) const
    {
        return core == o.core && unit == o.unit &&
               ctxQueueEntries == o.ctxQueueEntries &&
               timerPeriodCycles == o.timerPeriodCycles &&
               iterations == o.iterations;
    }
};

/** The joined objective vector of one design point. */
struct DesignEval
{
    DesignId id;
    bool ok = false;  ///< every contributing simulation exited cleanly

    // Latency side (switch episodes merged over the workload list).
    double latMean = 0;
    double latJitter = 0;
    double latMin = 0;
    double latMax = 0;
    double latP99 = 0;
    std::uint64_t switches = 0;

    // Static worst case (CV32E40P only, as in the paper's §6.2).
    bool hasWcet = false;
    double wcetCycles = 0;

    // Robustness side (opt-in fault-injection campaign): fraction of
    // injected faults whose effect was caught by an oracle or the
    // watchdog, out of those that were not provably masked.
    bool hasDetect = false;
    double detectCoverage = 0;

    // Schedulability side (opt-in RTA co-analysis): mean breakdown
    // utilization over seeded taskset shapes, with overhead terms
    // taken from this design's own measured switch path.
    bool hasSchedUtil = false;
    double schedUtil = 0;

    // Implementation side (analytical 22 nm models).
    double areaNorm = 1.0;  ///< vs the same core's vanilla build
    double areaMm2 = 0;
    double fmaxGHz = 0;
    double powerMw = 0;  ///< on the paper's power workload @ 500 MHz
};

} // namespace rtu

#endif // RTU_EXPLORE_DESIGN_EVAL_HH
