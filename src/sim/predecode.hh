/**
 * @file
 * Decode-once instruction store for the simulator front-end.
 *
 * Every busy cycle of the interpreter used to pay a full data-side
 * MemSystem dispatch (device routing + straddle checks) plus a
 * from-scratch field decode for the instruction at pc. A
 * PredecodedImage decodes the whole text segment once at program
 * install into a dense DecodedInsn array indexed by
 * (pc - text_base) >> 2, so the cores' fetch path collapses to a
 * bounds check and an array load.
 *
 * Soundness under self-modification: the image registers itself as the
 * MemSystem's write observer over the text range, so any store landing
 * in text — a guest store, an RTOSUnit FSM write, or an injected
 * memory-fault bit flip — re-decodes the touched words after the write
 * completes. Fetches outside the image (wild jumps from corrupted
 * contexts) fall back to the memory system and fault like the
 * pre-decode-less front-end did.
 */

#ifndef RTU_SIM_PREDECODE_HH
#define RTU_SIM_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "asm/decode.hh"
#include "common/types.hh"
#include "mem.hh"

namespace rtu {

/**
 * Notified after a text word has been re-decoded in place (the image
 * already holds the new decode). The superblock index subscribes here
 * to re-form the blocks whose summaries covered the touched word.
 */
class PredecodeListener
{
  public:
    virtual ~PredecodeListener() = default;
    virtual void wordRedecoded(std::size_t index) = 0;
};

class PredecodedImage : public MemWriteObserver
{
  public:
    /**
     * Decode @p words instruction words starting at @p base out of
     * @p mem (which must already hold the program text) and watch the
     * range for writes. @p mem is retained for re-decodes.
     */
    void install(MemSystem &mem, Addr base, std::size_t words);

    bool installed() const { return !insns_.empty(); }

    /** True if @p pc hits the image (word-aligned and inside text). */
    bool
    covers(Addr pc) const
    {
        return pc - base_ < size_ && (pc & 3u) == 0;
    }

    /** The pre-decoded instruction at @p pc; covers(pc) must hold. */
    const DecodedInsn &
    at(Addr pc) const
    {
        return insns_[(pc - base_) >> 2];
    }

    /** Text base address / instruction-word count (index geometry). */
    Addr base() const { return base_; }
    std::size_t words() const { return insns_.size(); }

    /** The pre-decoded instruction at word @p index. */
    const DecodedInsn &atIndex(std::size_t index) const
    {
        return insns_[index];
    }

    /** Subscribe to per-word re-decodes; nullptr unsubscribes. */
    void setListener(PredecodeListener *listener) { listener_ = listener; }

    /** Re-decode the words touched by a completed write. */
    void memWritten(Addr addr, MemSize size) override;

    /** Text-range writes that forced a re-decode (front-end counter). */
    std::uint64_t invalidations() const { return invalidations_; }

  private:
    MemSystem *mem_ = nullptr;
    Addr base_ = 0;
    Addr size_ = 0;  ///< bytes covered; base_ + size_ = text end
    std::vector<DecodedInsn> insns_;
    PredecodeListener *listener_ = nullptr;
    std::uint64_t invalidations_ = 0;
};

} // namespace rtu

#endif // RTU_SIM_PREDECODE_HH
