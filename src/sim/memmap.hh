/**
 * @file
 * Guest physical memory map.
 *
 * Mirrors a typical small RISC-V SoC: tightly-coupled instruction and
 * data SRAM, a CLINT for timer/software interrupts, and a host-I/O
 * block the testbench uses for output and event signalling. The
 * RTOSUnit context region is a reserved slice of DMEM (paper
 * Section 4.2(3)): 32 words per task, addressed by task id.
 */

#ifndef RTU_SIM_MEMMAP_HH
#define RTU_SIM_MEMMAP_HH

#include "common/types.hh"

namespace rtu::memmap {

constexpr Addr kImemBase = 0x0000'0000;
constexpr Addr kImemSize = 256 * 1024;

constexpr Addr kDmemBase = 0x1000'0000;
constexpr Addr kDmemSize = 256 * 1024;

/** RTOSUnit context region: task id -> kCtxBase + (id << 7). */
constexpr Addr kCtxBase = 0x1003'0000;
constexpr unsigned kCtxShift = 7;          // 32 words = 128 bytes
constexpr unsigned kCtxWordsPerTask = 32;  // 31 used + 1 padding
constexpr unsigned kCtxMaxTasks = 32;
constexpr Addr kCtxSize = kCtxMaxTasks << kCtxShift;

static_assert(kCtxBase + kCtxSize <= kDmemBase + kDmemSize,
              "context region must sit inside DMEM");

constexpr Addr ctxAddr(TaskId id) { return kCtxBase + (Addr{id} << kCtxShift); }

/** CLINT (RISC-V platform standard offsets). */
constexpr Addr kClintBase = 0x0200'0000;
constexpr Addr kClintSize = 0x0001'0000;
constexpr Addr kClintMsip = kClintBase + 0x0000;
constexpr Addr kClintMtimecmp = kClintBase + 0x4000;
constexpr Addr kClintMtimecmpHi = kClintBase + 0x4004;
constexpr Addr kClintMtime = kClintBase + 0xBFF8;
constexpr Addr kClintMtimeHi = kClintBase + 0xBFFC;

/** Host I/O block (simulation testbench device). */
constexpr Addr kHostBase = 0x1100'0000;
constexpr Addr kHostSize = 0x100;
constexpr Addr kHostPutchar = kHostBase + 0x00;  ///< W: console byte
constexpr Addr kHostExit = kHostBase + 0x04;     ///< W: stop sim, code
constexpr Addr kHostTrace = kHostBase + 0x08;    ///< W: log (tag<<24|val)
constexpr Addr kHostCycleLo = kHostBase + 0x10;  ///< R: cycle counter
constexpr Addr kHostCycleHi = kHostBase + 0x14;
constexpr Addr kHostExtAck = kHostBase + 0x18;   ///< W: ack ext irq
constexpr Addr kHostRand = kHostBase + 0x1C;     ///< R: xorshift PRNG

} // namespace rtu::memmap

#endif // RTU_SIM_MEMMAP_HH
