#include "sim/kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtu {

void
SimKernel::add(Clocked *component)
{
    rtu_assert(component != nullptr, "SimKernel::add: null component");
    components_.push_back(component);
}

Cycle
SimKernel::nextEventCycle(Cycle limit) const
{
    Cycle earliest = kNoEvent;
    for (const Clocked *c : components_)
        earliest = std::min(earliest, c->nextEventAt(now_));
    return std::min(earliest, limit);
}

bool
SimKernel::fastForward(Cycle limit)
{
    if (now_ >= limit)
        return false;
    if (now_ < nextAttempt_)
        return false;

    // Min-reduction over the components' next events, tracking which
    // components are active *now* (event <= now) — those must tick
    // this cycle and veto any skip unless they offer a stride.
    Cycle bound = limit;
    Clocked *active = nullptr;
    int activeCount = 0;
    for (Clocked *c : components_) {
        Cycle e = c->nextEventAt(now_);
        if (e <= now_) {
            active = c;
            ++activeCount;
        } else {
            bound = std::min(bound, e);
        }
    }

    if (activeCount == 0) {
        // Everything is quiescent until `bound`: replicate the pure
        // ticks in [now_, bound) in bulk.
        Cycle delta = bound - now_;
        for (Clocked *c : components_)
            c->skipTo(now_, bound);
        now_ = bound;
        stats_.cyclesSkipped += delta;
        ++stats_.fastForwards;
        backoff_ = 1;
        return true;
    }

    if (activeCount == 1) {
        // A single active component may still be skippable if its
        // execution is provably periodic: advance by whole periods so
        // the loop phase at `now_` is preserved bit-exactly.
        Cycle period = active->stridePeriod(now_);
        if (period != 0 && bound > now_) {
            std::uint64_t k = (bound - now_) / period;
            if (k > 0) {
                Cycle target = now_ + k * period;
                for (Clocked *c : components_) {
                    if (c == active)
                        c->applyStride(now_, k);
                    else
                        c->skipTo(now_, target);
                }
                Cycle delta = target - now_;
                now_ = target;
                stats_.cyclesSkipped += delta;
                stats_.strideCyclesSkipped += delta;
                ++stats_.strideSkips;
                backoff_ = 1;
                return true;
            }
        }

        // Otherwise: execute superblocks up to the event horizon. The
        // active component runs itself forward; every other component
        // sees only pure cycles (their next events are >= bound), so
        // a bulk skipTo() replicates them exactly.
        if (bound > now_) {
            Cycle consumed = active->blockRun(now_, bound);
            if (consumed > 0) {
                rtu_assert(consumed <= bound - now_,
                           "blockRun overran the event horizon");
                Cycle target = now_ + consumed;
                for (Clocked *c : components_) {
                    if (c != active)
                        c->skipTo(now_, target);
                }
                now_ = target;
                stats_.cyclesBlockExecuted += consumed;
                ++stats_.blockRuns;
                backoff_ = 1;
                return true;
            }
        }
    }

    nextAttempt_ = now_ + backoff_;
    backoff_ = std::min<Cycle>(backoff_ * 2, 32);
    return false;
}

void
SimKernel::tickOne()
{
    for (Clocked *c : components_)
        c->tick(now_);
    ++now_;
    ++stats_.cyclesTicked;
}

} // namespace rtu
