#include "hostio.hh"

#include "common/logging.hh"

namespace rtu {

Word
HostIo::read(Addr addr, MemSize size)
{
    rtu_assert(size == MemSize::kWord, "host I/O requires word access");
    switch (addr) {
      case memmap::kHostCycleLo:
        return static_cast<Word>(cycleNow());
      case memmap::kHostCycleHi:
        return static_cast<Word>(cycleNow() >> 32);
      case memmap::kHostRand:
        // xorshift32: deterministic across runs, data-dependent enough
        // to vary workload compute phases.
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 17;
        rng_ ^= rng_ << 5;
        return rng_;
      default:
        panic("host I/O read at unsupported offset 0x%08x", addr);
    }
}

void
HostIo::write(Addr addr, Word value, MemSize size)
{
    rtu_assert(size == MemSize::kWord || addr == memmap::kHostPutchar,
               "host I/O requires word access");
    switch (addr) {
      case memmap::kHostPutchar:
        console_.push_back(static_cast<char>(value & 0xFF));
        break;
      case memmap::kHostExit:
        exited_ = true;
        exitCode_ = value;
        break;
      case memmap::kHostTrace:
        events_.push_back({cycleNow(), static_cast<std::uint8_t>(value >> 24),
                           value & 0x00FF'FFFF});
        break;
      case memmap::kHostExtAck:
        ext_.ack(lines_);
        break;
      default:
        panic("host I/O write at unsupported offset 0x%08x", addr);
    }
}

std::vector<GuestEvent>
HostIo::eventsWithTag(std::uint8_t t) const
{
    std::vector<GuestEvent> out;
    for (const GuestEvent &e : events_) {
        if (e.tag == t)
            out.push_back(e);
    }
    return out;
}

} // namespace rtu
