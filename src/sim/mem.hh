/**
 * @file
 * Functional memory system: devices, SRAM, the system map, and the
 * shared-port arbitration primitive (core has priority, the RTOSUnit
 * steals idle cycles — paper Section 4.2(2)).
 */

#ifndef RTU_SIM_MEM_HH
#define RTU_SIM_MEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace rtu {

/** Access width in bytes. */
enum class MemSize : std::uint8_t { kByte = 1, kHalf = 2, kWord = 4 };

/** A functional memory-mapped device. */
class MemDevice
{
  public:
    MemDevice(std::string name, Addr base, Addr size)
        : name_(std::move(name)), base_(base), size_(size)
    {}
    virtual ~MemDevice() = default;

    const std::string &name() const { return name_; }
    Addr base() const { return base_; }
    Addr size() const { return size_; }
    bool contains(Addr a) const { return a >= base_ && a < base_ + size_; }

    /** Read @p size bytes at @p addr (zero-extended into a word). */
    virtual Word read(Addr addr, MemSize size) = 0;

    /** Write the low bytes of @p value at @p addr. */
    virtual void write(Addr addr, Word value, MemSize size) = 0;

  private:
    std::string name_;
    Addr base_;
    Addr size_;
};

/** Flat on-chip SRAM. */
class Sram : public MemDevice
{
  public:
    Sram(std::string name, Addr base, Addr size);

    Word read(Addr addr, MemSize size) override;
    void write(Addr addr, Word value, MemSize size) override;

    /** Bulk load used when installing the program image. */
    void loadWords(Addr addr, const std::vector<Word> &words);

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Notified after a write into a watched address range completes (the
 * new bytes are already visible to reads). The predecoded instruction
 * store uses this to re-decode text words hit by guest stores or
 * injected memory faults.
 */
class MemWriteObserver
{
  public:
    virtual ~MemWriteObserver() = default;
    virtual void memWritten(Addr addr, MemSize size) = 0;
};

/**
 * The full system map: routes functional accesses to devices.
 * Timing is the responsibility of the core / RTOSUnit models.
 */
class MemSystem
{
  public:
    void addDevice(MemDevice *dev);

    Word read(Addr addr, MemSize size);
    void write(Addr addr, Word value, MemSize size);

    Word read32(Addr addr) { return read(addr, MemSize::kWord); }
    void write32(Addr addr, Word v) { write(addr, v, MemSize::kWord); }

    MemDevice *deviceAt(Addr addr);

    /**
     * Watch [@p base, @p base + @p size) for writes; every completed
     * write overlapping the range invokes @p observer. One watcher
     * per system (the text segment); nullptr clears it.
     */
    void
    setWriteObserver(Addr base, Addr size, MemWriteObserver *observer)
    {
        watchBase_ = base;
        watchEnd_ = base + size;
        observer_ = observer;
    }

  private:
    /** Route an access; panic on unmapped or device-straddling. */
    MemDevice *route(Addr addr, MemSize size, const char *what);

    std::vector<MemDevice *> devices_;
    Addr watchBase_ = 0;
    Addr watchEnd_ = 0;
    MemWriteObserver *observer_ = nullptr;
};

/**
 * One shared request port per cycle. The core claims it with priority;
 * the RTOSUnit's FSMs succeed only on cycles the core left idle.
 * The simulation calls beginCycle() first each cycle, then ticks the
 * core (which may claim()), then the RTOSUnit (which may tryUse()).
 */
class SharedPort
{
  public:
    explicit SharedPort(std::string name) : name_(std::move(name)) {}

    void
    beginCycle()
    {
        claimed_ = false;
        used_ = false;
    }

    /** Core-side: reserve the port for this cycle. */
    void
    claim()
    {
        rtu_assert(!claimed_, "double core claim on port '%s'",
                   name_.c_str());
        claimed_ = true;
    }

    bool claimed() const { return claimed_; }

    /** True if neither the core nor the RTOSUnit holds the port. */
    bool available() const { return !claimed_ && !used_; }

    /** RTOSUnit-side: take the port if the core left it idle. */
    bool
    tryUse()
    {
        if (claimed_ || used_)
            return false;
        used_ = true;
        return true;
    }

    /** Statistics: cycles the RTOSUnit actually used. */
    bool usedBySecondary() const { return used_; }

  private:
    std::string name_;
    bool claimed_ = false;
    bool used_ = false;
};

} // namespace rtu

#endif // RTU_SIM_MEM_HH
