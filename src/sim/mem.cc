#include "mem.hh"

#include "common/bitutil.hh"

namespace rtu {

Sram::Sram(std::string name, Addr base, Addr size)
    : MemDevice(std::move(name), base, size), bytes_(size, 0)
{
}

Word
Sram::read(Addr addr, MemSize size)
{
    const Addr off = addr - base();
    rtu_assert(off + static_cast<Addr>(size) <= bytes_.size(),
               "%s read at 0x%08x out of range", name().c_str(), addr);
    Word v = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(size); ++i)
        v |= static_cast<Word>(bytes_[off + i]) << (8 * i);
    return v;
}

void
Sram::write(Addr addr, Word value, MemSize size)
{
    const Addr off = addr - base();
    rtu_assert(off + static_cast<Addr>(size) <= bytes_.size(),
               "%s write at 0x%08x out of range", name().c_str(), addr);
    for (unsigned i = 0; i < static_cast<unsigned>(size); ++i)
        bytes_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void
Sram::loadWords(Addr addr, const std::vector<Word> &words)
{
    for (size_t i = 0; i < words.size(); ++i)
        write(addr + 4 * static_cast<Addr>(i), words[i], MemSize::kWord);
}

void
MemSystem::addDevice(MemDevice *dev)
{
    for (const MemDevice *d : devices_) {
        const bool overlap = dev->base() < d->base() + d->size() &&
                             d->base() < dev->base() + dev->size();
        rtu_assert(!overlap, "device '%s' overlaps '%s'",
                   dev->name().c_str(), d->name().c_str());
    }
    devices_.push_back(dev);
}

MemDevice *
MemSystem::deviceAt(Addr addr)
{
    for (MemDevice *d : devices_) {
        if (d->contains(addr))
            return d;
    }
    return nullptr;
}

MemDevice *
MemSystem::route(Addr addr, MemSize size, const char *what)
{
    MemDevice *d = deviceAt(addr);
    if (!d)
        guest_fault("%s at unmapped address 0x%08x", what, addr);
    // The bus has no straddle support: an access must lie entirely
    // within one device, else it would silently hit device-internal
    // range asserts (or worse, split) — fail as a clean bus error.
    const Addr last = addr + static_cast<Addr>(size) - 1;
    if (!d->contains(last)) {
        guest_fault("%s [0x%08x,0x%08x] straddles the end of device '%s'",
              what, addr, last, d->name().c_str());
    }
    return d;
}

Word
MemSystem::read(Addr addr, MemSize size)
{
    return route(addr, size, "read")->read(addr, size);
}

void
MemSystem::write(Addr addr, Word value, MemSize size)
{
    route(addr, size, "write")->write(addr, value, size);
    if (observer_ && addr < watchEnd_ &&
        addr + static_cast<Addr>(size) > watchBase_) {
        observer_->memWritten(addr, size);
    }
}

} // namespace rtu
