/**
 * @file
 * Context-switch latency recorder.
 *
 * Latency is measured exactly as the paper does (Section 6.1): from
 * the cycle the interrupt is triggered to the cycle the `mret`
 * instruction completes. Jitter is max - min over observed switches.
 *
 * Episodes whose interrupt was asserted while a previous ISR was
 * still executing ("queued") measure queueing delay on top of the
 * switching mechanism; they are excluded from latency statistics by
 * default (the paper's per-switch metric), but remain available.
 *
 * An episode cut short by a nested or back-to-back trap (a new trap
 * taken before the episode's `mret`) is recorded truncated with the
 * `preempted` flag set rather than silently dropped; preempted
 * episodes never enter latency statistics because they have no mret
 * end point.
 *
 * Each episode additionally carries the intermediate phase timestamps
 * (store-done, sched-done, load-done) delivered through notePhase()
 * by the hardware-unit hooks, and completed episodes are streamed to
 * an optional TraceSink for JSONL/CSV export.
 */

#ifndef RTU_SIM_SWITCHREC_HH
#define RTU_SIM_SWITCHREC_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace rtu {

struct SwitchRecord
{
    Word cause = 0;          ///< mcause of the triggering interrupt
    Cycle assertCycle = 0;   ///< interrupt line asserted
    Cycle entryCycle = 0;    ///< trap taken (handler starts)
    /// Hardware store FSM drained; kNoPhase when the phase never ran
    /// (0 is a legitimate completion cycle and must stay usable).
    Cycle storeDoneCycle = kNoPhase;
    Cycle schedDoneCycle = kNoPhase; ///< GET_HW_SCHED retired (or kNoPhase)
    Cycle loadDoneCycle = kNoPhase;  ///< restore complete (or kNoPhase)
    Cycle mretCycle = 0;     ///< mret completed
    Word fromTask = 0;
    Word toTask = 0;
    bool queued = false;     ///< asserted during a previous episode
    bool preempted = false;  ///< truncated by a nested trap (no mret)

    Cycle latency() const { return mretCycle - assertCycle; }
    bool switchedTask() const { return fromTask != toTask; }

    EpisodeTrace
    toTrace() const
    {
        EpisodeTrace t;
        t.cause = cause;
        t.fromTask = fromTask;
        t.toTask = toTask;
        t.queued = queued;
        t.preempted = preempted;
        t.irqAssert = assertCycle;
        t.trapTaken = entryCycle;
        t.storeDone = storeDoneCycle;
        t.schedDone = schedDoneCycle;
        t.loadDone = loadDoneCycle;
        t.mret = mretCycle;
        return t;
    }
};

class SwitchRecorder
{
  public:
    void
    beginEpisode(Word cause, Cycle assert_cycle, Cycle entry_cycle,
                 Word from_task)
    {
        if (inEpisode_) {
            // A nested/back-to-back trap arrived before the episode's
            // mret: keep the truncated record instead of losing it.
            // Its end point is the preempting trap's entry; it never
            // switched, so toTask mirrors fromTask.
            current_.preempted = true;
            current_.mretCycle = entry_cycle;
            current_.toTask = current_.fromTask;
            commit();
        }
        current_ = SwitchRecord{};
        current_.cause = cause;
        current_.assertCycle = assert_cycle;
        current_.entryCycle = entry_cycle;
        current_.fromTask = from_task;
        current_.queued = haveLastMret_ && assert_cycle <= lastMret_;
        inEpisode_ = true;
    }

    bool inEpisode() const { return inEpisode_; }

    /** Record an intermediate phase boundary of the running episode.
     *  Phases reported outside an episode (e.g. speculative preload
     *  traffic) are dropped. */
    void
    notePhase(SwitchPhase phase, Cycle cycle)
    {
        if (!inEpisode_)
            return;
        switch (phase) {
          case SwitchPhase::kIrqAssert:
            current_.assertCycle = cycle;
            break;
          case SwitchPhase::kTrapTaken:
            current_.entryCycle = cycle;
            break;
          case SwitchPhase::kStoreDone:
            current_.storeDoneCycle = cycle;
            break;
          case SwitchPhase::kSchedDone:
            current_.schedDoneCycle = cycle;
            break;
          case SwitchPhase::kLoadDone:
            current_.loadDoneCycle = cycle;
            break;
          case SwitchPhase::kMret:
            current_.mretCycle = cycle;
            break;
        }
    }

    void
    endEpisode(Cycle mret_cycle, Word to_task)
    {
        lastMret_ = mret_cycle;
        haveLastMret_ = true;
        if (!inEpisode_)
            return;  // mret outside a recorded episode (boot path)
        current_.mretCycle = mret_cycle;
        current_.toTask = to_task;
        commit();
    }

    /** Stream completed episodes to @p sink (may be nullptr). */
    void setSink(TraceSink *sink) { sink_ = sink; }

    const std::vector<SwitchRecord> &records() const { return records_; }

    /**
     * Latency statistics. @p switches_only drops same-task episodes;
     * @p include_queued admits episodes that waited behind another
     * ISR. Preempted episodes are always excluded: they have no mret
     * and therefore no complete switch latency.
     */
    SampleStats
    latencyStats(bool switches_only = true,
                 bool include_queued = false) const
    {
        SampleStats s;
        for (const SwitchRecord &r : records_) {
            if (r.preempted)
                continue;
            if (switches_only && !r.switchedTask())
                continue;
            if (!include_queued && r.queued)
                continue;
            s.add(static_cast<double>(r.latency()));
        }
        return s;
    }

  private:
    void
    commit()
    {
        records_.push_back(current_);
        inEpisode_ = false;
        if (sink_)
            sink_->episode(current_.toTrace());
    }

    std::vector<SwitchRecord> records_;
    SwitchRecord current_{};
    bool inEpisode_ = false;
    Cycle lastMret_ = 0;
    bool haveLastMret_ = false;
    TraceSink *sink_ = nullptr;
};

} // namespace rtu

#endif // RTU_SIM_SWITCHREC_HH
