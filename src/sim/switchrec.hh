/**
 * @file
 * Context-switch latency recorder.
 *
 * Latency is measured exactly as the paper does (Section 6.1): from
 * the cycle the interrupt is triggered to the cycle the `mret`
 * instruction completes. Jitter is max - min over observed switches.
 *
 * Episodes whose interrupt was asserted while a previous ISR was
 * still executing ("queued") measure queueing delay on top of the
 * switching mechanism; they are excluded from latency statistics by
 * default (the paper's per-switch metric), but remain available.
 */

#ifndef RTU_SIM_SWITCHREC_HH
#define RTU_SIM_SWITCHREC_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rtu {

struct SwitchRecord
{
    Word cause = 0;          ///< mcause of the triggering interrupt
    Cycle assertCycle = 0;   ///< interrupt line asserted
    Cycle entryCycle = 0;    ///< trap taken (handler starts)
    Cycle mretCycle = 0;     ///< mret completed
    Word fromTask = 0;
    Word toTask = 0;
    bool queued = false;     ///< asserted during a previous episode

    Cycle latency() const { return mretCycle - assertCycle; }
    bool switchedTask() const { return fromTask != toTask; }
};

class SwitchRecorder
{
  public:
    void
    beginEpisode(Word cause, Cycle assert_cycle, Cycle entry_cycle,
                 Word from_task)
    {
        current_ = SwitchRecord{};
        current_.cause = cause;
        current_.assertCycle = assert_cycle;
        current_.entryCycle = entry_cycle;
        current_.fromTask = from_task;
        current_.queued = haveLastMret_ && assert_cycle <= lastMret_;
        inEpisode_ = true;
    }

    bool inEpisode() const { return inEpisode_; }

    void
    endEpisode(Cycle mret_cycle, Word to_task)
    {
        lastMret_ = mret_cycle;
        haveLastMret_ = true;
        if (!inEpisode_)
            return;  // mret outside a recorded episode (boot path)
        current_.mretCycle = mret_cycle;
        current_.toTask = to_task;
        records_.push_back(current_);
        inEpisode_ = false;
    }

    const std::vector<SwitchRecord> &records() const { return records_; }

    /**
     * Latency statistics. @p switches_only drops same-task episodes;
     * @p include_queued admits episodes that waited behind another
     * ISR.
     */
    SampleStats
    latencyStats(bool switches_only = true,
                 bool include_queued = false) const
    {
        SampleStats s;
        for (const SwitchRecord &r : records_) {
            if (switches_only && !r.switchedTask())
                continue;
            if (!include_queued && r.queued)
                continue;
            s.add(static_cast<double>(r.latency()));
        }
        return s;
    }

  private:
    std::vector<SwitchRecord> records_;
    SwitchRecord current_{};
    bool inEpisode_ = false;
    Cycle lastMret_ = 0;
    bool haveLastMret_ = false;
};

} // namespace rtu

#endif // RTU_SIM_SWITCHREC_HH
