#include "blockexec.hh"

#include "common/logging.hh"

namespace rtu {

std::uint8_t
BlockIndex::classify(const DecodedInsn &insn) const
{
    if (!insn.valid())
        return kStop;
    switch (insn.cls) {
      case InsnClass::kCsr:
      case InsnClass::kSystem:
      case InsnClass::kCustom:
        return kStop;
      case InsnClass::kBranch:
      case InsnClass::kJump:
        return kControl;
      case InsnClass::kLoad:
        return kMem;
      case InsnClass::kStore:
        return kMem | kStoreOp;
      default:
        return 0;
    }
}

bool
BlockIndex::hazardPair(const DecodedInsn &prev, const DecodedInsn &cur) const
{
    if (prev.cls != InsnClass::kLoad || prev.rd == 0)
        return false;
    return (cur.useRs1 && cur.rs1 == prev.rd) ||
           (cur.useRs2 && cur.rs2 == prev.rd);
}

unsigned
BlockIndex::worstCostOf(const DecodedInsn &insn) const
{
    switch (insn.cls) {
      case InsnClass::kBranch:
        return cost_.takenBranchCycles;
      case InsnClass::kJump:
        return cost_.jumpCycles;
      case InsnClass::kDiv:
        return cost_.divBaseCycles + 32;  // full-width dividend
      default:
        return 1;
    }
}

bool
BlockIndex::recomputeSummary(std::size_t i)
{
    const std::uint8_t f = flags_[i];
    std::uint32_t run = 0;
    std::uint32_t worst = 0;
    bool suffixStore = false;
    if (!(f & kStop)) {
        const bool terminal =
            (f & kControl) != 0 || i + 1 == runLen_.size();
        run = 1;
        worst = worstCostOf(image_->atIndex(i));
        if (f & kHazPrev)
            worst += cost_.loadUseStall;
        suffixStore = (f & kStoreOp) != 0;
        if (!terminal) {
            run += runLen_[i + 1];
            worst += suffixWorst_[i + 1];
            suffixStore |= (flags_[i + 1] & kSuffixStore) != 0;
        }
    }
    const std::uint8_t newFlags =
        static_cast<std::uint8_t>((f & ~kSuffixStore) |
                                  (suffixStore ? kSuffixStore : 0));
    const bool changed = runLen_[i] != run || suffixWorst_[i] != worst ||
                         flags_[i] != newFlags;
    runLen_[i] = run;
    suffixWorst_[i] = worst;
    flags_[i] = newFlags;
    return changed;
}

void
BlockIndex::install(PredecodedImage &image, const Cv32e40pCostParams &cost)
{
    rtu_assert(image.installed(), "BlockIndex over an empty image");
    image_ = &image;
    cost_ = cost;
    base_ = image.base();
    const std::size_t words = image.words();
    size_ = static_cast<Addr>(4 * words);
    flags_.assign(words, 0);
    runLen_.assign(words, 0);
    suffixWorst_.assign(words, 0);

    for (std::size_t i = 0; i < words; ++i) {
        flags_[i] = classify(image.atIndex(i));
        if (i > 0 && hazardPair(image.atIndex(i - 1), image.atIndex(i)))
            flags_[i] |= kHazPrev;
    }
    for (std::size_t i = words; i-- > 0;)
        recomputeSummary(i);

    image.setListener(this);
}

void
BlockIndex::wordRedecoded(std::size_t index)
{
    // Re-classify the touched word; its hazard bit depends on the
    // unchanged predecessor, and the successor's hazard bit depends on
    // the new decode.
    const std::size_t words = flags_.size();
    std::uint8_t f = classify(image_->atIndex(index));
    if (index > 0 &&
        hazardPair(image_->atIndex(index - 1), image_->atIndex(index))) {
        f |= kHazPrev;
    }
    flags_[index] = f;
    if (index + 1 < words) {
        flags_[index + 1] &= static_cast<std::uint8_t>(~kHazPrev);
        if (hazardPair(image_->atIndex(index),
                       image_->atIndex(index + 1))) {
            flags_[index + 1] |= kHazPrev;
        }
    }

    // Re-form every block whose summary depended on the touched word:
    // start at the successor (its hazard bit may have moved) and walk
    // backward while the recomputed summaries change. The walk crosses
    // block boundaries exactly as far as the dependency reaches — a
    // straddling store that re-decodes the last word of one block and
    // the first word of the next re-forms both.
    std::size_t j = std::min(index + 1, words - 1);
    while (true) {
        const bool changed = recomputeSummary(j);
        ++invalidations_;
        if (j == 0 || (!changed && j <= index))
            break;
        --j;
    }
}

} // namespace rtu
