/**
 * @file
 * Host-I/O testbench device: console, exit, trace events, cycle
 * counter, external-interrupt acknowledge and a deterministic PRNG.
 */

#ifndef RTU_SIM_HOSTIO_HH
#define RTU_SIM_HOSTIO_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "irq.hh"
#include "mem.hh"
#include "memmap.hh"

namespace rtu {

/** One guest-emitted trace event (tag in the high byte). */
struct GuestEvent
{
    Cycle cycle;
    std::uint8_t tag;
    Word value;  ///< low 24 bits of the written word
};

class HostIo : public MemDevice
{
  public:
    HostIo(IrqLines &lines, ExtIrqDriver &ext)
        : MemDevice("hostio", memmap::kHostBase, memmap::kHostSize),
          lines_(lines), ext_(ext)
    {}

    Word read(Addr addr, MemSize size) override;
    void write(Addr addr, Word value, MemSize size) override;

    /** Legacy per-cycle timestamp push (tests, standalone use). */
    void setCycle(Cycle now) { now_ = now; }

    /** Bind directly to the kernel's cycle counter: the device reads
     *  the time on demand instead of being pushed a copy each cycle. */
    void bindClock(const Cycle *clock) { clock_ = clock; }

    bool exited() const { return exited_; }
    Word exitCode() const { return exitCode_; }
    const std::string &consoleOutput() const { return console_; }
    const std::vector<GuestEvent> &events() const { return events_; }

    /** Events with a specific tag, in emission order. */
    std::vector<GuestEvent> eventsWithTag(std::uint8_t tag) const;

  private:
    Cycle cycleNow() const { return clock_ ? *clock_ : now_; }

    IrqLines &lines_;
    ExtIrqDriver &ext_;
    const Cycle *clock_ = nullptr;
    Cycle now_ = 0;
    bool exited_ = false;
    Word exitCode_ = 0;
    std::string console_;
    std::vector<GuestEvent> events_;
    Word rng_ = 0x2545'F491;
};

/** Guest trace tags used by the kernel and workloads. */
namespace tag {
constexpr std::uint8_t kTaskRun = 1;     ///< value = task id now running
constexpr std::uint8_t kWorkItem = 2;    ///< value = workload progress
constexpr std::uint8_t kMutexAcq = 3;    ///< value = task id
constexpr std::uint8_t kMutexRel = 4;    ///< value = task id
constexpr std::uint8_t kIsrEnter = 5;    ///< value = mcause low bits
constexpr std::uint8_t kSwitch = 6;      ///< value = (from<<8)|to
constexpr std::uint8_t kSemGive = 7;
constexpr std::uint8_t kSemTake = 8;
constexpr std::uint8_t kCheck = 9;       ///< value = checksum fragment
constexpr std::uint8_t kJobStart = 10;   ///< value = (task<<16)|job
constexpr std::uint8_t kJobDone = 11;    ///< value = (task<<16)|job
} // namespace tag

} // namespace rtu

#endif // RTU_SIM_HOSTIO_HH
