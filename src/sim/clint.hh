/**
 * @file
 * Core-local interruptor: mtime, mtimecmp, msip — plus the paper's
 * RTOSUnit extension: auto-resetting the timer on taken timer
 * interrupts so the ISR needs no counter read / compare update
 * (Section 4.4).
 */

#ifndef RTU_SIM_CLINT_HH
#define RTU_SIM_CLINT_HH

#include "common/types.hh"
#include "irq.hh"
#include "kernel.hh"
#include "mem.hh"
#include "memmap.hh"

namespace rtu {

class Clint : public MemDevice, public Clocked
{
  public:
    explicit Clint(IrqLines &lines)
        : MemDevice("clint", memmap::kClintBase, memmap::kClintSize),
          lines_(lines)
    {}

    Word read(Addr addr, MemSize size) override;
    void write(Addr addr, Word value, MemSize size) override;

    /** Advance mtime by one cycle and update MTIP/MSIP levels. */
    void tick(Cycle now) override;

    /** Next tick at which the MTIP/MSIP line levels can change. */
    Cycle nextEventAt(Cycle now) const override;

    /** Bulk-advance mtime across a quiescent stretch. */
    void skipTo(Cycle now, Cycle target) override;

    /**
     * Enable hardware auto-reset (RTOSUnit (T) feature): when the core
     * reports a taken timer interrupt, mtimecmp advances by @p period.
     */
    void
    enableAutoReset(DWord period)
    {
        autoReset_ = true;
        period_ = period;
    }

    /** Core notification: a timer interrupt was taken. */
    void
    timerTaken()
    {
        if (autoReset_) {
            // Advance from the programmed deadline, not from "now", so
            // the tick train keeps its exact cadence. Saturate instead
            // of wrapping: a deadline past 2^64 - 1 would otherwise
            // alias a tiny compare value and storm MTIP; ~0 is the
            // architectural "timer disarmed" idiom.
            if (mtimecmp_ >= ~DWord{0} - period_)
                mtimecmp_ = ~DWord{0};
            else
                mtimecmp_ += period_;
        }
    }

    DWord mtime() const { return mtime_; }
    DWord mtimecmp() const { return mtimecmp_; }

  private:
    void updateLevels(Cycle now);

    IrqLines &lines_;
    DWord mtime_ = 0;
    DWord mtimecmp_ = ~DWord{0};
    Word msip_ = 0;
    bool autoReset_ = false;
    DWord period_ = 0;
    Cycle now_ = 0;
};

} // namespace rtu

#endif // RTU_SIM_CLINT_HH
