#include "predecode.hh"

#include "common/logging.hh"

namespace rtu {

void
PredecodedImage::install(MemSystem &mem, Addr base, std::size_t words)
{
    rtu_assert((base & 3u) == 0, "text base 0x%08x is not word-aligned",
               base);
    mem_ = &mem;
    base_ = base;
    size_ = static_cast<Addr>(4 * words);
    insns_.resize(words);
    for (std::size_t i = 0; i < words; ++i)
        insns_[i] = decode(mem.read32(base + 4 * static_cast<Addr>(i)));
    mem.setWriteObserver(base_, size_, this);
}

void
PredecodedImage::memWritten(Addr addr, MemSize size)
{
    // A sub-word store touches one word; an unaligned word store can
    // straddle two. Re-decode every word the byte range overlaps,
    // clamped to the image.
    const Addr first = addr & ~Addr{3};
    const Addr last = (addr + static_cast<Addr>(size) - 1) & ~Addr{3};
    for (Addr w = first; w <= last; w += 4) {
        if (w - base_ >= size_)
            continue;
        insns_[(w - base_) >> 2] = decode(mem_->read32(w));
        ++invalidations_;
        if (listener_)
            listener_->wordRedecoded((w - base_) >> 2);
    }
}

} // namespace rtu
