/**
 * @file
 * The discrete-event simulation kernel.
 *
 * Clocked components register with a SimKernel; each reports, via
 * nextEventAt(), the earliest cycle at which it may change observable
 * state (interact with another component, raise an interrupt line,
 * fire a listener, sample an external input). On cycles where every
 * component's next event lies in the future the kernel fast-forwards
 * `now_` to the global minimum in one step instead of ticking
 * cycle-by-cycle; each component's skipTo() replicates exactly the
 * bulk per-cycle effects (counter increments, mtime advance, ROB
 * retirement) that the skipped reference ticks would have performed,
 * so a fast-forwarded run is byte-identical to the per-cycle one.
 *
 * A second protocol covers cycle-exact *periodic* execution (an idle
 * or background spin loop): a component whose state provably recurs
 * with period P reports the stride via stridePeriod(); when it is the
 * only active component the kernel advances in whole multiples of P
 * bounded by the earliest foreign event, so the loop phase — and
 * therefore interrupt arrival phase and jitter — is preserved
 * bit-exactly.
 */

#ifndef RTU_SIM_KERNEL_HH
#define RTU_SIM_KERNEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rtu {

/** Sentinel for "no future event": the component is fully quiescent
 *  until some other component acts on it. */
constexpr Cycle kNoEvent = ~Cycle{0};

/**
 * A clocked component. The contract:
 *  - tick(now) advances one cycle (legacy per-cycle semantics);
 *  - nextEventAt(now) returns the earliest cycle >= now at which the
 *    component may change observable state. Returning `now` ("always
 *    active") is always safe; kNoEvent means quiescent forever.
 *    Every tick in [now, nextEventAt(now)) must be *pure*: free of
 *    interaction with other components and exactly replicated by
 *    skipTo();
 *  - skipTo(now, target) applies the bulk effect of the pure ticks in
 *    [now, target), target <= the cycle reported by nextEventAt(now).
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one clock cycle. */
    virtual void tick(Cycle now) = 0;

    /** Earliest cycle >= @p now at which observable state may change.
     *  Default: always active (conservative — never skipped). */
    virtual Cycle nextEventAt(Cycle now) const { return now; }

    /** Replicate the pure ticks in [@p now, @p target). */
    virtual void
    skipTo(Cycle now, Cycle target)
    {
        (void)now;
        (void)target;
    }

    /**
     * Cycle-exact periodicity: non-zero iff, starting from the state
     * at @p now, execution provably repeats with this period (same
     * state, same per-period counter deltas, no side effects outside
     * the component). 0 = no stride available.
     */
    virtual Cycle
    stridePeriod(Cycle now) const
    {
        (void)now;
        return 0;
    }

    /** Apply @p periods whole strides worth of counter deltas; the
     *  architectural state is unchanged by definition of the stride. */
    virtual void
    applyStride(Cycle now, std::uint64_t periods)
    {
        (void)now;
        (void)periods;
    }

    /**
     * Superblock execution: when this is the only active component and
     * every foreign event lies at or beyond @p bound, execute forward
     * from @p now and return the number of cycles consumed (0 = no
     * block path available; fall back to per-cycle ticking). The
     * consumed cycles must not exceed @p bound - @p now, and the
     * component must end in exactly the state the per-cycle path would
     * reach at now + consumed — the other components are then advanced
     * with skipTo(), which their nextEventAt() >= bound guarantees is
     * pure over the consumed range.
     */
    virtual Cycle
    blockRun(Cycle now, Cycle bound)
    {
        (void)now;
        (void)bound;
        return 0;
    }
};

/** Throughput accounting (all fields deterministic). */
struct SimKernelStats
{
    std::uint64_t cyclesTicked = 0;    ///< cycles executed per-cycle
    std::uint64_t cyclesSkipped = 0;   ///< cycles fast-forwarded
    std::uint64_t fastForwards = 0;    ///< quiescent-gap skips
    std::uint64_t strideSkips = 0;     ///< periodic-loop skips
    std::uint64_t strideCyclesSkipped = 0;  ///< subset of cyclesSkipped
    std::uint64_t blockRuns = 0;       ///< successful blockRun() calls
    /** Cycles consumed inside blockRun() — these are executed, not
     *  skipped: ticked + skipped + blockExecuted is mode-invariant. */
    std::uint64_t cyclesBlockExecuted = 0;
};

class SimKernel
{
  public:
    /** Register a component. Ticks run in registration order — the
     *  order therefore defines intra-cycle sequencing, exactly like
     *  the statement order of a hand-written tick loop. */
    void add(Clocked *component);

    Cycle now() const { return now_; }

    /** Stable address of the cycle counter (for mcycle, tracing). */
    const Cycle *clockPtr() const { return &now_; }

    /**
     * Earliest cycle in [now, limit] at which any component may
     * change state: the min-reduction over nextEventAt(), clamped to
     * @p limit. Registration order cannot affect the result.
     */
    Cycle nextEventCycle(Cycle limit) const;

    /**
     * Attempt one fast-forward bounded by @p limit: if no component
     * is active now, skip to the earliest future event; if the only
     * active component offers a stride, advance by whole periods.
     * @return true if `now` advanced (no ticks were executed).
     *
     * Failed attempts back off exponentially (up to 32 cycles): the
     * min-reduction itself costs a virtual call per component per
     * cycle, which on busy stretches outweighs what skipping buys.
     * Deferring an attempt only means those cycles are ticked instead
     * of skipped — results stay byte-identical by the Clocked
     * contract; only the ticked/skipped split in the stats moves.
     */
    bool fastForward(Cycle limit);

    /** Tick every component at `now` (registration order), then
     *  advance one cycle. */
    void tickOne();

    const SimKernelStats &stats() const { return stats_; }

  private:
    std::vector<Clocked *> components_;
    Cycle now_ = 0;
    /** Next cycle worth probing for a skip, and the current penalty. */
    Cycle nextAttempt_ = 0;
    Cycle backoff_ = 1;
    SimKernelStats stats_;
};

} // namespace rtu

#endif // RTU_SIM_KERNEL_HH
