#include "clint.hh"

#include "common/logging.hh"

namespace rtu {

Word
Clint::read(Addr addr, MemSize size)
{
    rtu_assert(size == MemSize::kWord, "CLINT requires word access");
    switch (addr) {
      case memmap::kClintMsip:
        return msip_;
      case memmap::kClintMtimecmp:
        return static_cast<Word>(mtimecmp_);
      case memmap::kClintMtimecmpHi:
        return static_cast<Word>(mtimecmp_ >> 32);
      case memmap::kClintMtime:
        return static_cast<Word>(mtime_);
      case memmap::kClintMtimeHi:
        return static_cast<Word>(mtime_ >> 32);
      default:
        panic("CLINT read at unsupported offset 0x%08x", addr);
    }
}

void
Clint::write(Addr addr, Word value, MemSize size)
{
    rtu_assert(size == MemSize::kWord, "CLINT requires word access");
    switch (addr) {
      case memmap::kClintMsip:
        msip_ = value & 1;
        break;
      case memmap::kClintMtimecmp:
        mtimecmp_ = (mtimecmp_ & 0xFFFF'FFFF'0000'0000ULL) | value;
        break;
      case memmap::kClintMtimecmpHi:
        mtimecmp_ = (mtimecmp_ & 0xFFFF'FFFFULL) |
                    (static_cast<DWord>(value) << 32);
        break;
      default:
        panic("CLINT write at unsupported offset 0x%08x", addr);
    }
    updateLevels(now_);
}

void
Clint::tick(Cycle now)
{
    now_ = now;
    ++mtime_;
    updateLevels(now);
}

void
Clint::updateLevels(Cycle now)
{
    if (mtime_ >= mtimecmp_)
        lines_.raise(irq::kMti, now);
    else
        lines_.clear(irq::kMti);

    if (msip_)
        lines_.raise(irq::kMsi, now);
    else
        lines_.clear(irq::kMsi);
}

} // namespace rtu
