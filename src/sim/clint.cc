#include "clint.hh"

#include "common/logging.hh"

namespace rtu {

Word
Clint::read(Addr addr, MemSize size)
{
    rtu_assert(size == MemSize::kWord, "CLINT requires word access");
    switch (addr) {
      case memmap::kClintMsip:
        return msip_;
      case memmap::kClintMtimecmp:
        return static_cast<Word>(mtimecmp_);
      case memmap::kClintMtimecmpHi:
        return static_cast<Word>(mtimecmp_ >> 32);
      case memmap::kClintMtime:
        return static_cast<Word>(mtime_);
      case memmap::kClintMtimeHi:
        return static_cast<Word>(mtime_ >> 32);
      default:
        panic("CLINT read at unsupported offset 0x%08x", addr);
    }
}

void
Clint::write(Addr addr, Word value, MemSize size)
{
    rtu_assert(size == MemSize::kWord, "CLINT requires word access");
    switch (addr) {
      case memmap::kClintMsip:
        msip_ = value & 1;
        break;
      case memmap::kClintMtimecmp:
        mtimecmp_ = (mtimecmp_ & 0xFFFF'FFFF'0000'0000ULL) | value;
        break;
      case memmap::kClintMtimecmpHi:
        mtimecmp_ = (mtimecmp_ & 0xFFFF'FFFFULL) |
                    (static_cast<DWord>(value) << 32);
        break;
      default:
        panic("CLINT write at unsupported offset 0x%08x", addr);
    }
    updateLevels(now_);
}

void
Clint::tick(Cycle now)
{
    now_ = now;
    ++mtime_;
    updateLevels(now);
}

Cycle
Clint::nextEventAt(Cycle now) const
{
    // MSI levels only move inside write() (which updates them
    // synchronously), so a tick never changes them — unless some
    // state drift left the line out of sync. Be conservative then.
    if ((msip_ != 0) != ((lines_.pending() & irq::kMsi) != 0))
        return now;

    bool mtiPending = (lines_.pending() & irq::kMti) != 0;
    if (mtiPending) {
        // timerTaken() may have advanced mtimecmp past mtime while
        // the line is still raised; the very next tick clears it.
        // (mtime_ + 1 is evaluated mod 2^64 on purpose: at
        // mtime == ~0 the next tick wraps mtime to 0, and the wrapped
        // value is exactly what the comparison must use.)
        if (mtime_ + 1 < mtimecmp_)
            return now;
        if (mtimecmp_ == 0)
            return kNoEvent;  // every mtime satisfies mtime >= 0
        // The line stays raised until mtime wraps below mtimecmp —
        // 2^64 - mtime ticks away (== 0 - mtime_ in DWord arithmetic).
        // Far beyond any realistic run, but kNoEvent here would let a
        // fast-forward skip straight past the wrap-induced clear.
        const DWord toWrap = DWord{0} - mtime_;
        if (toWrap - 1 >= kNoEvent - now)
            return kNoEvent;  // unreachable within the cycle space
        return now + (toWrap - 1);
    }
    // Not pending means mtime < mtimecmp (levels are re-derived every
    // tick), so this difference cannot underflow — even with both
    // values pressed against the uint64 ceiling.
    if (mtimecmp_ - mtime_ <= 1)
        return now;  // next tick raises MTIP
    // The tick at now + (mtimecmp - mtime - 1) brings mtime up to
    // mtimecmp and raises the line.
    DWord delta = mtimecmp_ - mtime_ - 1;
    if (delta >= kNoEvent - now)
        return kNoEvent;  // unreachable deadline (e.g. cmp = ~0)
    return now + delta;
}

void
Clint::skipTo(Cycle now, Cycle target)
{
    // Replicates `target - now` pure ticks: mtime advances, levels
    // provably don't move (guaranteed by nextEventAt), and now_ ends
    // up where the last replicated tick would have left it.
    mtime_ += target - now;
    now_ = target - 1;
}

void
Clint::updateLevels(Cycle now)
{
    if (mtime_ >= mtimecmp_)
        lines_.raise(irq::kMti, now);
    else
        lines_.clear(irq::kMti);

    if (msip_)
        lines_.raise(irq::kMsi, now);
    else
        lines_.clear(irq::kMsi);
}

} // namespace rtu
