/**
 * @file
 * Interrupt lines into the core and the external-interrupt stimulus
 * generator used by the workloads.
 */

#ifndef RTU_SIM_IRQ_HH
#define RTU_SIM_IRQ_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "asm/insn.hh"
#include "common/types.hh"
#include "kernel.hh"

namespace rtu {

/**
 * Level-sensitive machine interrupt lines (mip image). Devices set and
 * clear their bit; the core samples pending() each cycle. For latency
 * accounting, assertion cycles are timestamped per source.
 */
class IrqLines
{
  public:
    void
    raise(Word bit, Cycle now)
    {
        if (!(pending_ & bit)) {
            pending_ |= bit;
            if (bit == irq::kMsi)
                msiAssert_ = now;
            else if (bit == irq::kMti)
                mtiAssert_ = now;
            else if (bit == irq::kMei)
                meiAssert_ = now;
        }
    }

    void clear(Word bit) { pending_ &= ~bit; }

    Word pending() const { return pending_; }

    /** Cycle at which the given source was last asserted. */
    Cycle
    assertCycle(Word cause) const
    {
        switch (cause) {
          case mcause::kMachineSoftware: return msiAssert_;
          case mcause::kMachineTimer: return mtiAssert_;
          case mcause::kMachineExternal: return meiAssert_;
          default: return 0;
        }
    }

  private:
    Word pending_ = 0;
    Cycle msiAssert_ = 0;
    Cycle mtiAssert_ = 0;
    Cycle meiAssert_ = 0;
};

/**
 * Drives the external interrupt (MEIP) at scheduled cycles; the guest
 * acknowledges via the host-I/O ext-ack register. Events are kept
 * sorted with a consumed-prefix cursor, so both the per-cycle tick and
 * the next-event query are O(1) amortized.
 */
class ExtIrqDriver : public Clocked
{
  public:
    explicit ExtIrqDriver(IrqLines &lines) : lines_(lines) {}

    void
    schedule(Cycle at)
    {
        events_.insert(
            std::upper_bound(events_.begin() +
                                 static_cast<std::ptrdiff_t>(cursor_),
                             events_.end(), at),
            at);
    }

    void
    tick(Cycle now) override
    {
        while (cursor_ < events_.size() && events_[cursor_] <= now) {
            if (events_[cursor_] == now)
                lines_.raise(irq::kMei, now);
            ++cursor_;
        }
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        for (std::size_t i = cursor_; i < events_.size(); ++i) {
            if (events_[i] >= now)
                return events_[i];
        }
        return kNoEvent;
    }

    void
    skipTo(Cycle now, Cycle target) override
    {
        (void)now;
        // Quiescence guarantees no event in [now, target); anything
        // below the cursor's new floor is consumed.
        while (cursor_ < events_.size() && events_[cursor_] < target)
            ++cursor_;
    }

    void ack(IrqLines &lines) { lines.clear(irq::kMei); }

  private:
    IrqLines &lines_;
    std::vector<Cycle> events_;
    std::size_t cursor_ = 0;
};

} // namespace rtu

#endif // RTU_SIM_IRQ_HH
