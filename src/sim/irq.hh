/**
 * @file
 * Interrupt lines into the core and the external-interrupt stimulus
 * generator used by the workloads.
 */

#ifndef RTU_SIM_IRQ_HH
#define RTU_SIM_IRQ_HH

#include <vector>

#include "asm/insn.hh"
#include "common/types.hh"

namespace rtu {

/**
 * Level-sensitive machine interrupt lines (mip image). Devices set and
 * clear their bit; the core samples pending() each cycle. For latency
 * accounting, assertion cycles are timestamped per source.
 */
class IrqLines
{
  public:
    void
    raise(Word bit, Cycle now)
    {
        if (!(pending_ & bit)) {
            pending_ |= bit;
            if (bit == irq::kMsi)
                msiAssert_ = now;
            else if (bit == irq::kMti)
                mtiAssert_ = now;
            else if (bit == irq::kMei)
                meiAssert_ = now;
        }
    }

    void clear(Word bit) { pending_ &= ~bit; }

    Word pending() const { return pending_; }

    /** Cycle at which the given source was last asserted. */
    Cycle
    assertCycle(Word cause) const
    {
        switch (cause) {
          case mcause::kMachineSoftware: return msiAssert_;
          case mcause::kMachineTimer: return mtiAssert_;
          case mcause::kMachineExternal: return meiAssert_;
          default: return 0;
        }
    }

  private:
    Word pending_ = 0;
    Cycle msiAssert_ = 0;
    Cycle mtiAssert_ = 0;
    Cycle meiAssert_ = 0;
};

/**
 * Drives the external interrupt (MEIP) at scheduled cycles; the guest
 * acknowledges via the host-I/O ext-ack register.
 */
class ExtIrqDriver
{
  public:
    void
    schedule(Cycle at)
    {
        events_.push_back(at);
    }

    void
    tick(Cycle now, IrqLines &lines)
    {
        for (Cycle at : events_) {
            if (at == now)
                lines.raise(irq::kMei, now);
        }
    }

    void ack(IrqLines &lines) { lines.clear(irq::kMei); }

  private:
    std::vector<Cycle> events_;
};

} // namespace rtu

#endif // RTU_SIM_IRQ_HH
