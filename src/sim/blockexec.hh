/**
 * @file
 * Superblock index over the pre-decoded text segment.
 *
 * The pre-decoded image (predecode.hh) removed decode work from the
 * per-cycle path; the remaining interpreter cost on compute-bound
 * workloads is per-instruction dispatch and timing-model bookkeeping.
 * A BlockIndex partitions the text segment into superblocks —
 * straight-line runs ending at a control transfer — and precomputes,
 * per word, the summaries a core needs to execute a whole run inside
 * one kernel fast-forward window with a single horizon check:
 *
 *  - stop/control/memory classification flags (which instructions may
 *    never execute in-block and which terminate a run);
 *  - the run length to the block terminator;
 *  - a worst-case static cycle cost of the remaining run under the
 *    CV32E40P timing model, including the decode-time-resolvable
 *    load-use stall schedule (the in-order single-issue model is the
 *    only one whose block cost is a pure function of the instruction
 *    words; CVA6/Nax carry dynamic scoreboard and cache state, so
 *    their fast paths re-check the horizon per instruction instead);
 *  - whether the remaining run contains a store (a store may rewrite
 *    the very block being executed, so such runs must re-read their
 *    summaries per instruction).
 *
 * Soundness under self-modification: the index registers as the
 * pre-decoded image's invalidation listener. Every re-decoded word —
 * guest store, RTOSUnit FSM write, injected bit flip — recomputes that
 * word's flags and then re-forms every block whose summary depended on
 * it by walking backward while the recomputed summaries change. A
 * store straddling a block boundary therefore invalidates both blocks,
 * not just the two touched words.
 */

#ifndef RTU_SIM_BLOCKEXEC_HH
#define RTU_SIM_BLOCKEXEC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "predecode.hh"

namespace rtu {

struct Cv32e40pCostParams
{
    unsigned takenBranchCycles = 3;
    unsigned jumpCycles = 2;
    unsigned loadUseStall = 1;
    unsigned divBaseCycles = 3;  ///< plus up to 32 significant bits
};

class BlockIndex : public PredecodeListener
{
  public:
    /** Per-word classification flags. */
    enum : std::uint8_t {
        /** May trap, touch CSRs/devices via side channels, or stall on
         *  the RTOSUnit: never executed in-block (CSR, system, custom,
         *  invalid encodings). */
        kStop = 1u << 0,
        /** Branch or jump: executable in-block, terminates the run. */
        kControl = 1u << 1,
        /** Load or store: needs an address pre-check before in-block
         *  execution (MMIO/host-IO must fall back to single-step). */
        kMem = 1u << 2,
        /** Store (subset of kMem): may modify text. */
        kStoreOp = 1u << 3,
        /** The previous word is a load whose destination this word
         *  consumes (decode-time load-use stall schedule). */
        kHazPrev = 1u << 4,
        /** A store occurs somewhere in [word, block end]. */
        kSuffixStore = 1u << 5,
    };

    /**
     * Build the index over @p image (which must be installed) and
     * subscribe to its invalidations. @p cost parameterizes the static
     * CV32E40P worst-case block costs.
     */
    void install(PredecodedImage &image, const Cv32e40pCostParams &cost);

    bool installed() const { return !flags_.empty(); }

    /** True if @p pc has an index entry (word-aligned, inside text). */
    bool
    covers(Addr pc) const
    {
        return pc - base_ < size_ && (pc & 3u) == 0;
    }

    /** Classification flags of the word at @p pc; covers(pc) holds. */
    std::uint8_t
    flagsAt(Addr pc) const
    {
        return flags_[(pc - base_) >> 2];
    }

    /** Instructions from @p pc to the block terminator, terminator
     *  included; 0 for stop words (no in-block execution at all). */
    std::uint32_t
    runLenAt(Addr pc) const
    {
        return runLen_[(pc - base_) >> 2];
    }

    /** Worst-case CV32E40P cycles to execute runLenAt(pc) straight-
     *  line instructions starting at @p pc. Does not include a
     *  load-use stall inherited from before the block — callers add
     *  one loadUseStall of margin at block entry. */
    std::uint32_t
    worstCyclesAt(Addr pc) const
    {
        return suffixWorst_[(pc - base_) >> 2];
    }

    /** Block-summary words recomputed by text writes. Each re-decoded
     *  word re-forms every block whose summary depended on it, so this
     *  is at least the pre-decoded image's invalidation count. */
    std::uint64_t invalidations() const { return invalidations_; }

    /** PredecodeListener: word @p index was re-decoded in place. */
    void wordRedecoded(std::size_t index) override;

  private:
    std::uint8_t classify(const DecodedInsn &insn) const;
    bool hazardPair(const DecodedInsn &prev, const DecodedInsn &cur) const;
    unsigned worstCostOf(const DecodedInsn &insn) const;
    /** Recompute runLen/worst/suffix-store of word @p i from its flags
     *  and word i+1's summaries. @return true if anything changed. */
    bool recomputeSummary(std::size_t i);

    const PredecodedImage *image_ = nullptr;
    Cv32e40pCostParams cost_;
    Addr base_ = 0;
    Addr size_ = 0;  ///< bytes covered
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint32_t> runLen_;
    std::vector<std::uint32_t> suffixWorst_;
    std::uint64_t invalidations_ = 0;
};

} // namespace rtu

#endif // RTU_SIM_BLOCKEXEC_HH
