/**
 * @file
 * Binary layout contract of the generated microFreeRTOS kernel:
 * TCB field offsets, stack-frame and context-region slot assignment,
 * and kernel sizing constants. Shared between the kernel generator,
 * the RTOSUnit (context word order), tests and the WCET analyzer.
 */

#ifndef RTU_KERNEL_LAYOUT_HH
#define RTU_KERNEL_LAYOUT_HH

#include "common/types.hh"

namespace rtu::kernel {

/** Task control block field offsets (bytes). */
constexpr Word kTcbTop = 0;    ///< saved stack pointer (stack contexts)
constexpr Word kTcbId = 4;     ///< RTOSUnit task id
constexpr Word kTcbPrio = 8;
constexpr Word kTcbNext = 12;  ///< kernel-list linkage
constexpr Word kTcbPrev = 16;
constexpr Word kTcbWake = 20;  ///< wake tick while delayed
constexpr Word kTcbSize = 32;

/**
 * List sentinels are laid out like truncated TCBs so the linkage
 * offsets match: next at +12, prev at +16.
 */
constexpr Word kSentinelSize = 32;

/**
 * Software ISR stack frame (vanilla / CV32RT / T configurations):
 * 32 words below the interrupted stack pointer.
 *   slot 0  mepc
 *   slot 1  mstatus
 *   slots 2..13   x1, x5..x15   (software-saved half)
 *   slots 14..29  x16..x31      (CV32RT: hardware-drained half)
 * The stack pointer itself lives in the TCB (pxTopOfStack).
 */
constexpr Word kFrameBytes = 128;
constexpr Word kFrameMepc = 0;
constexpr Word kFrameMstatus = 4;
constexpr Word kFrameX1 = 8;
/** Frame slot byte offset of xN for N in [5, 31]. */
constexpr Word frameSlotOfReg(unsigned n) { return 12 + 4 * (n - 5); }

/**
 * RTOSUnit context-region slot assignment (fixed 32-word chunk per
 * task id): slot 0 mepc, slot 1 mstatus, slot 2 x1, slot 3 x2,
 * slots 4..30 x5..x31. Mirrors rtu::ctxReg().
 */
constexpr Word kCtxMepc = 0;
constexpr Word kCtxMstatus = 4;
constexpr Word kCtxX1 = 8;
constexpr Word kCtxX2 = 12;
constexpr Word ctxSlotOfReg(unsigned n) { return 16 + 4 * (n - 5); }

/** mstatus image for a freshly created task: MPIE | MPP = M. */
constexpr Word kInitialMstatus = 0x1880;

/** Kernel sizing. */
constexpr unsigned kNumPriorities = 8;
constexpr unsigned kMaxTasks = 8;       ///< matches 8-entry hw lists
constexpr unsigned kTaskStackBytes = 512;
constexpr unsigned kIsrStackBytes = 512;

/** Mutex object: word 0 = owner TCB (0 when free), sentinel at +4. */
constexpr Word kMutexOwner = 0;
constexpr Word kMutexSentinel = 4;
constexpr Word kMutexSize = 40;

/** Counting semaphore: word 0 = count, sentinel at +4. */
constexpr Word kSemCount = 0;
constexpr Word kSemSentinel = 4;
constexpr Word kSemSize = 40;

} // namespace rtu::kernel

#endif // RTU_KERNEL_LAYOUT_HH
