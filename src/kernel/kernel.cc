#include "kernel.hh"

#include <algorithm>

#include "analyze/absint/wcsu.hh"
#include "analyze/cfg.hh"
#include "common/logging.hh"
#include "sim/hostio.hh"
#include "sim/memmap.hh"

namespace rtu {

using namespace kernel;

namespace {

/** Registers saved in software ISR frames: x1, then x5..x15 (lower
 *  half) and x16..x31 (upper half). */
constexpr unsigned kLowerHalfFirst = 5;
constexpr unsigned kLowerHalfLast = 15;
constexpr unsigned kUpperHalfFirst = 16;
constexpr unsigned kUpperHalfLast = 31;

Reg
xreg(unsigned n)
{
    rtu_assert(n < 32, "register x%u", n);
    return static_cast<Reg>(n);
}

} // namespace

KernelBuilder::KernelBuilder(const KernelParams &params)
    : params_(params), asm_(memmap::kImemBase, memmap::kDmemBase)
{
    std::string why;
    if (!params_.unit.validate(&why))
        fatal("kernel generation with invalid RTOSUnit config: %s",
              why.c_str());
}

std::string
KernelBuilder::tcbSym(unsigned i) const
{
    return csprintf("k_tcb_%u", i);
}

std::string
KernelBuilder::stackTopSym(unsigned i) const
{
    return csprintf("k_stack_%u_top", i);
}

std::string
KernelBuilder::createMutex(const std::string &name)
{
    rtu_assert(!built_, "createMutex after build()");
    asm_.dataArray(name, kMutexSize / 4, 0);
    mutexes_.push_back(name);
    return name;
}

std::string
KernelBuilder::createSemaphore(const std::string &name, Word initial)
{
    rtu_assert(!built_, "createSemaphore after build()");
    const Addr base = asm_.dataArray(name, kSemSize / 4, 0);
    (void)base;
    // The count word is plain data; patch it by re-reserving is not
    // possible, so emit the initial count from boot instead.
    semaphores_.push_back(name);
    semInitials_.push_back(initial);
    return name;
}

unsigned
KernelBuilder::createHwSemaphore(Word initial)
{
    rtu_assert(!built_, "createHwSemaphore after build()");
    rtu_assert(params_.unit.hwsync,
               "hardware semaphores need a +HS configuration");
    rtu_assert(hwSemInitials_.size() < params_.unit.semSlots,
               "out of hardware semaphore slots (%u)",
               params_.unit.semSlots);
    hwSemInitials_.push_back(initial);
    return static_cast<unsigned>(hwSemInitials_.size() - 1);
}

void
KernelBuilder::addTask(const TaskSpec &spec)
{
    rtu_assert(!built_, "addTask after build()");
    rtu_assert(spec.priority >= 1 && spec.priority < kNumPriorities,
               "task '%s' priority %u outside [1, %u]",
               spec.name.c_str(), spec.priority, kNumPriorities - 1);
    rtu_assert(static_cast<bool>(spec.body), "task '%s' has no body",
               spec.name.c_str());
    tasks_.push_back(spec);
}

// ---- inline primitives --------------------------------------------------
//
// Register conventions: kernel code clobbers t0..t6 / a0..a7 / ra
// freely; task bodies follow the standard calling convention.

void
KernelBuilder::inlineListRemove(Reg node, Reg t_a, Reg t_b)
{
    Assembler &a = asm_;
    a.lw(t_a, kTcbNext, node);
    a.lw(t_b, kTcbPrev, node);
    a.sw(t_a, kTcbNext, t_b);
    a.sw(t_b, kTcbPrev, t_a);
}

void
KernelBuilder::inlineListInsertEnd(Reg sentinel, Reg node, Reg t_a)
{
    Assembler &a = asm_;
    a.lw(t_a, kTcbPrev, sentinel);
    a.sw(sentinel, kTcbNext, node);
    a.sw(t_a, kTcbPrev, node);
    a.sw(node, kTcbNext, t_a);
    a.sw(node, kTcbPrev, sentinel);
}

void
KernelBuilder::inlineReadyInsert(Reg node, Reg t_a, Reg t_b, Reg t_c,
                                 const std::string &unique)
{
    Assembler &a = asm_;
    // t_a = priority; t_b = ready-list sentinel for it.
    a.lw(t_a, kTcbPrio, node);
    a.la(t_b, "k_ready_lists");
    a.slli(t_c, t_a, 5);
    a.add(t_b, t_b, t_c);
    inlineListInsertEnd(t_b, node, t_c);
    // topReadyPriority = max(topReadyPriority, priority).
    a.la(t_b, "k_top_ready_prio");
    a.lw(t_c, 0, t_b);
    const std::string skip = "k_ri_skip_" + unique;
    a.bge(t_c, t_a, skip);
    a.sw(t_a, 0, t_b);
    a.label(skip);
}

void
KernelBuilder::inlineEventInsert(Reg sentinel_base, Reg node, Reg t_a,
                                 Reg t_b, Reg t_c,
                                 const std::string &unique)
{
    Assembler &a = asm_;
    const std::string loop = "k_ei_loop_" + unique;
    const std::string ins = "k_ei_ins_" + unique;
    // Priority-ordered event list (descending, FIFO within a class):
    // walk while walker.prio >= node.prio.
    a.lw(t_a, kTcbPrio, node);
    a.lw(t_b, kTcbNext, sentinel_base);
    a.label(loop);
    a.beq(t_b, sentinel_base, ins);
    a.lw(t_c, kTcbPrio, t_b);
    a.blt(t_c, t_a, ins);
    a.lw(t_b, kTcbNext, t_b);
    a.loopBound(kMaxTasks);
    a.j(loop);
    a.label(ins);
    // Insert node before walker t_b.
    a.lw(t_c, kTcbPrev, t_b);
    a.sw(t_b, kTcbNext, node);
    a.sw(t_c, kTcbPrev, node);
    a.sw(node, kTcbNext, t_c);
    a.sw(node, kTcbPrev, t_b);
}

void
KernelBuilder::inlineRaiseMsip(Reg t_a, Reg t_b)
{
    Assembler &a = asm_;
    a.li(t_a, static_cast<SWord>(memmap::kClintMsip));
    a.li(t_b, 1);
    a.sw(t_b, 0, t_a);
}

// ---- data section ---------------------------------------------------------

void
KernelBuilder::emitDataSection()
{
    Assembler &a = asm_;
    a.dataWord("k_current_tcb", 0);
    a.dataWord("currentTaskId", 0);
    a.dataWord("k_tick_count", 0);
    a.dataWord("k_top_ready_prio", 0);
    a.dataArray("k_ready_lists", kNumPriorities * kSentinelSize / 4, 0);
    a.dataArray("k_delay_sentinel", kSentinelSize / 4, 0);
    a.dataArray("k_task_table", kMaxTasks, 0);
    if (params_.usesExternalIrq)
        createSemaphore("k_ext_sem", 0);
    for (unsigned i = 0; i < tasks_.size(); ++i) {
        a.dataArray(tcbSym(i), kTcbSize / 4, 0);
        a.dataAlign(16);
        a.dataArray(csprintf("k_stack_%u", i), taskStackBytes(i) / 4, 0);
        a.dataWord(stackTopSym(i), 0);  // its own address == stack top
    }
    a.dataAlign(16);
    a.dataArray("k_isr_stack", kIsrStackBytes / 4, 0);
    a.dataWord("k_isr_stack_top", 0);
}

// ---- boot ------------------------------------------------------------------

void
KernelBuilder::emitBoot()
{
    Assembler &a = asm_;
    const RtosUnitConfig &u = params_.unit;
    a.fnBegin("_start");
    a.la(SP, "k_isr_stack_top");
    a.la(T0, "k_isr");
    a.csrw(csr::kMtvec, T0);

    // Ready-list and delay-list sentinels (software scheduler only;
    // the event lists below are always software).
    if (!u.sched) {
        for (unsigned p = 0; p < kNumPriorities; ++p) {
            a.la(T1, "k_ready_lists");
            if (p > 0)
                a.addi(T1, T1, static_cast<SWord>(p * kSentinelSize));
            a.sw(T1, kTcbNext, T1);
            a.sw(T1, kTcbPrev, T1);
        }
        a.la(T1, "k_delay_sentinel");
        a.sw(T1, kTcbNext, T1);
        a.sw(T1, kTcbPrev, T1);
    }

    // Mutex / semaphore wait-list sentinels and semaphore counts.
    for (const std::string &m : mutexes_) {
        a.la(T1, m);
        a.addi(T1, T1, kMutexSentinel);
        a.sw(T1, kTcbNext, T1);
        a.sw(T1, kTcbPrev, T1);
    }
    for (size_t i = 0; i < semaphores_.size(); ++i) {
        a.la(T1, semaphores_[i]);
        if (semInitials_[i] != 0) {
            a.li(T2, static_cast<SWord>(semInitials_[i]));
            a.sw(T2, kSemCount, T1);
        }
        a.addi(T1, T1, kSemSentinel);
        a.sw(T1, kTcbNext, T1);
        a.sw(T1, kTcbPrev, T1);
    }

    // Per-task initialization.
    Priority max_prio = 0;
    for (unsigned i = 0; i < tasks_.size(); ++i) {
        const TaskSpec &t = tasks_[i];
        max_prio = std::max(max_prio, t.priority);
        a.la(T1, tcbSym(i));
        a.li(T2, static_cast<SWord>(i));
        a.sw(T2, kTcbId, T1);
        a.li(T2, t.priority);
        a.sw(T2, kTcbPrio, T1);
        a.la(T3, "k_task_table");
        a.sw(T1, static_cast<SWord>(4 * i), T3);

        if (u.sched) {
            a.li(T2, static_cast<SWord>(i));
            a.li(T3, t.priority);
            a.rtuAddReady(T2, T3);
        } else {
            a.la(T3, "k_ready_lists");
            if (t.priority > 0)
                a.addi(T3, T3,
                       static_cast<SWord>(t.priority * kSentinelSize));
            inlineListInsertEnd(T3, T1, T4);
        }

        const std::string entry = "k_task_" + t.name;
        if (u.store) {
            // Initial context in the fixed RTOSUnit context region.
            a.li(T3, static_cast<SWord>(
                         memmap::ctxAddr(static_cast<TaskId>(i))));
            a.la(T4, entry);
            a.sw(T4, kCtxMepc, T3);
            a.li(T4, kInitialMstatus);
            a.sw(T4, kCtxMstatus, T3);
            a.la(T4, stackTopSym(i));
            a.sw(T4, kCtxX2, T3);
            if (t.arg != 0) {
                a.li(T4, static_cast<SWord>(t.arg));
                a.sw(T4, static_cast<SWord>(ctxSlotOfReg(10)), T3);
            }
        } else {
            // Initial stack frame at the top of the task stack.
            a.la(T3, stackTopSym(i));
            a.addi(T3, T3, -static_cast<SWord>(kFrameBytes));
            a.la(T4, entry);
            a.sw(T4, kFrameMepc, T3);
            a.li(T4, kInitialMstatus);
            a.sw(T4, kFrameMstatus, T3);
            if (t.arg != 0) {
                a.li(T4, static_cast<SWord>(t.arg));
                a.sw(T4, static_cast<SWord>(frameSlotOfReg(10)), T3);
            }
            a.sw(T3, kTcbTop, T1);
        }
    }

    if (!u.sched) {
        a.la(T1, "k_top_ready_prio");
        a.li(T2, max_prio);
        a.sw(T2, 0, T1);
    }

    // Seed hardware semaphore counts by giving tokens (no waiters can
    // exist yet, so each give increments the count).
    for (size_t id = 0; id < hwSemInitials_.size(); ++id) {
        if (hwSemInitials_[id] == 0)
            continue;
        a.li(A0, static_cast<SWord>(id));
        for (Word n = 0; n < hwSemInitials_[id]; ++n)
            a.rtuSemGive(T0, A0);
    }

    // Timer: clear the compare high word, then program the first tick.
    a.li(T0, static_cast<SWord>(memmap::kClintMtimecmp));
    a.li(T1, static_cast<SWord>(params_.timerPeriodCycles));
    a.sw(T1, 0, T0);
    a.li(T0, static_cast<SWord>(memmap::kClintMtimecmpHi));
    a.sw(Zero, 0, T0);

    // Enable machine software/timer/external interrupts.
    a.li(T0, static_cast<SWord>(irq::kMsi | irq::kMti | irq::kMei));
    a.csrw(csr::kMie, T0);

    // Start the first task.
    if (u.load) {
        // With hardware context loading, the restore FSM writes the
        // application register file while it runs — boot executes on
        // that same bank, so it must not trigger a restore directly.
        // Instead, enter the first task through a software-interrupt
        // trap: the ISR performs scheduling and restoring on the ISR
        // bank, exactly as for every later switch (this mirrors how
        // FreeRTOS ports start the first task via a trap). The store
        // FSM archives the boot state into the idle task's context
        // slot (currentCtxId defaults to 0 == idle), so the idle task
        // resumes at the jump below.
        a.la(T1, "k_current_tcb");
        a.la(T2, tcbSym(0));
        a.sw(T2, 0, T1);
        a.la(T1, "currentTaskId");
        a.sw(Zero, 0, T1);
        inlineRaiseMsip(T0, T1);
        a.csrrsi(Zero, csr::kMstatus, 8);  // trap fires here
        a.j("k_idle_loop");
        a.fnEnd();
        return;
    }
    if (u.sched) {
        a.rtuGetHwSched(T0);
        a.la(T1, "k_task_table");
        a.slli(T2, T0, 2);
        a.add(T1, T1, T2);
        a.lw(A0, 0, T1);
        a.mv(A2, T0);
    } else {
        a.call("k_select");
        a.lw(A2, kTcbId, A0);
        if (u.store)
            a.rtuSetContextId(A2);
    }
    a.la(T1, "k_current_tcb");
    a.sw(A0, 0, T1);
    a.la(T1, "currentTaskId");
    a.sw(A2, 0, T1);

    if (u.store) {
        a.slli(T3, A2, memmap::kCtxShift);
        a.li(T4, static_cast<SWord>(memmap::kCtxBase));
        a.add(T3, T3, T4);
        a.csrw(csr::kMscratch, T3);
        a.j("k_isr_restore_ctx");
    } else {
        a.lw(SP, kTcbTop, A0);
        a.j("k_isr_restore");
    }
    a.fnEnd();
}

// ---- ISR -------------------------------------------------------------------

void
KernelBuilder::emitCauseDispatch(const std::string &prefix)
{
    Assembler &a = asm_;
    a.csrr(T0, csr::kMcause);
    a.bge(T0, Zero, "k_fatal_sync");  // interrupt bit clear: bug
    a.andi(T0, T0, 63);
    a.li(T1, 7);
    a.beq(T0, T1, prefix + "_timer");
    a.li(T1, 3);
    a.beq(T0, T1, prefix + "_sw");
    a.li(T1, 11);
    a.beq(T0, T1, prefix + "_ext");
    a.j("k_fatal_sync");
}

void
KernelBuilder::emitSwSaveFrame(bool hw_saves_upper_half)
{
    Assembler &a = asm_;
    a.addi(SP, SP, -static_cast<SWord>(kFrameBytes));
    a.sw(RA, static_cast<SWord>(kFrameX1), SP);
    for (unsigned n = kLowerHalfFirst; n <= kLowerHalfLast; ++n)
        a.sw(xreg(n), static_cast<SWord>(frameSlotOfReg(n)), SP);
    if (!hw_saves_upper_half) {
        for (unsigned n = kUpperHalfFirst; n <= kUpperHalfLast; ++n)
            a.sw(xreg(n), static_cast<SWord>(frameSlotOfReg(n)), SP);
    }
    a.csrr(T0, csr::kMepc);
    a.sw(T0, static_cast<SWord>(kFrameMepc), SP);
    a.csrr(T0, csr::kMstatus);
    a.sw(T0, static_cast<SWord>(kFrameMstatus), SP);
}

void
KernelBuilder::emitSwRestoreFrameAndRet()
{
    Assembler &a = asm_;
    a.label("k_isr_restore");
    a.lw(T0, static_cast<SWord>(kFrameMepc), SP);
    a.csrw(csr::kMepc, T0);
    a.lw(T0, static_cast<SWord>(kFrameMstatus), SP);
    a.csrw(csr::kMstatus, T0);
    a.lw(RA, static_cast<SWord>(kFrameX1), SP);
    for (unsigned n = kLowerHalfFirst; n <= kUpperHalfLast; ++n)
        a.lw(xreg(n), static_cast<SWord>(frameSlotOfReg(n)), SP);
    a.addi(SP, SP, static_cast<SWord>(kFrameBytes));
    a.mret();
}

void
KernelBuilder::emitSwRestoreCtxAndRet()
{
    Assembler &a = asm_;
    // Expects mscratch = context-region address of the next task.
    a.label("k_isr_restore_ctx");
    a.rtuSwitchRf();  // stalls until the store FSM drained; now on RF1
    a.csrr(T6, csr::kMscratch);
    a.lw(T5, static_cast<SWord>(kCtxMepc), T6);
    a.csrw(csr::kMepc, T5);
    a.lw(T5, static_cast<SWord>(kCtxMstatus), T6);
    a.csrw(csr::kMstatus, T5);
    a.lw(RA, static_cast<SWord>(kCtxX1), T6);
    a.lw(SP, static_cast<SWord>(kCtxX2), T6);
    // x5..x30 in slot order; x31 (t6, the pointer itself) last.
    for (unsigned n = 5; n <= 30; ++n)
        a.lw(xreg(n), static_cast<SWord>(ctxSlotOfReg(n)), T6);
    a.lw(T6, static_cast<SWord>(ctxSlotOfReg(31)), T6);
    a.mret();
}

void
KernelBuilder::emitIsrVanillaFamily()
{
    Assembler &a = asm_;
    const RtosUnitConfig &u = params_.unit;
    a.fnBegin("k_isr");
    emitSwSaveFrame(/*hw_saves_upper_half=*/u.cv32rt);
    // Save the interrupted stack pointer into the outgoing TCB.
    a.la(T0, "k_current_tcb");
    a.lw(T1, 0, T0);
    a.sw(SP, kTcbTop, T1);

    emitCauseDispatch("k_isrv");

    a.label("k_isrv_timer");
    if (!u.sched) {
        // Reprogram the compare register and process the delay list.
        a.li(T0, static_cast<SWord>(memmap::kClintMtimecmp));
        a.lw(T1, 0, T0);
        a.li(T2, static_cast<SWord>(params_.timerPeriodCycles));
        a.add(T1, T1, T2);
        a.sw(T1, 0, T0);
        a.call("k_tick");
    }
    // With (T), the auto-resetting timer and the hardware delay list
    // leave nothing to do (paper Section 4.4) — unless k_delay_until
    // needs a live tick count to convert absolute wake ticks into the
    // relative counts the hardware delay list consumes.
    if (u.sched && params_.usesDelayUntil) {
        a.la(T0, "k_tick_count");
        a.lw(T1, 0, T0);
        a.addi(T1, T1, 1);
        a.sw(T1, 0, T0);
    }
    a.j("k_isrv_select");

    a.label("k_isrv_sw");
    a.li(T0, static_cast<SWord>(memmap::kClintMsip));
    a.sw(Zero, 0, T0);
    a.j("k_isrv_select");

    a.label("k_isrv_ext");
    a.li(T0, static_cast<SWord>(memmap::kHostExtAck));
    a.sw(Zero, 0, T0);
    if (params_.usesExternalIrq) {
        a.la(A0, "k_ext_sem");
        a.call("k_sem_give_isr");
    }
    a.j("k_isrv_select");

    a.label("k_isrv_select");
    if (u.sched) {
        a.rtuGetHwSched(T0);
        a.la(T1, "k_task_table");
        a.slli(T2, T0, 2);
        a.add(T1, T1, T2);
        a.lw(A0, 0, T1);
        a.mv(A2, T0);
    } else {
        a.call("k_select");
        a.lw(A2, kTcbId, A0);
    }
    a.la(T1, "k_current_tcb");
    a.sw(A0, 0, T1);
    a.la(T1, "currentTaskId");
    a.sw(A2, 0, T1);
    a.lw(SP, kTcbTop, A0);
    if (u.cv32rt) {
        // Barrier: the dedicated-port drain of the snapshot half must
        // be in memory before software reloads the frame.
        a.rtuSwitchRf();
    }
    emitSwRestoreFrameAndRet();
    a.fnEnd();
}

void
KernelBuilder::emitIsrStoreFamily()
{
    Assembler &a = asm_;
    const RtosUnitConfig &u = params_.unit;
    a.fnBegin("k_isr");
    // The store FSM freed the whole register file; only a stack for
    // possible calls is needed.
    a.la(SP, "k_isr_stack_top");

    emitCauseDispatch("k_isrs");

    a.label("k_isrs_timer");
    if (!u.sched) {
        a.li(T0, static_cast<SWord>(memmap::kClintMtimecmp));
        a.lw(T1, 0, T0);
        a.li(T2, static_cast<SWord>(params_.timerPeriodCycles));
        a.add(T1, T1, T2);
        a.sw(T1, 0, T0);
        a.call("k_tick");
    }
    // See emitIsrVanillaFamily: k_delay_until keeps the tick count
    // live even when the hardware scheduler owns the delay list.
    if (u.sched && params_.usesDelayUntil) {
        a.la(T0, "k_tick_count");
        a.lw(T1, 0, T0);
        a.addi(T1, T1, 1);
        a.sw(T1, 0, T0);
    }
    a.j("k_isrs_select");

    a.label("k_isrs_sw");
    a.li(T0, static_cast<SWord>(memmap::kClintMsip));
    a.sw(Zero, 0, T0);
    a.j("k_isrs_select");

    a.label("k_isrs_ext");
    a.li(T0, static_cast<SWord>(memmap::kHostExtAck));
    a.sw(Zero, 0, T0);
    if (params_.usesExternalIrq) {
        a.la(A0, "k_ext_sem");
        a.call("k_sem_give_isr");
    }
    a.j("k_isrs_select");

    a.label("k_isrs_select");
    if (u.sched) {
        a.rtuGetHwSched(T0);
        a.la(T1, "k_task_table");
        a.slli(T2, T0, 2);
        a.add(T1, T1, T2);
        a.lw(A0, 0, T1);
        a.mv(A2, T0);
    } else {
        a.call("k_select");
        a.lw(A2, kTcbId, A0);
        a.rtuSetContextId(A2);
    }
    a.la(T1, "k_current_tcb");
    a.sw(A0, 0, T1);
    a.la(T1, "currentTaskId");
    a.sw(A2, 0, T1);

    if (u.load) {
        // Restore runs in hardware; mret stalls until it completes and
        // switches back to the application register file.
        a.mret();
    } else {
        a.slli(T3, A2, memmap::kCtxShift);
        a.li(T4, static_cast<SWord>(memmap::kCtxBase));
        a.add(T3, T3, T4);
        a.csrw(csr::kMscratch, T3);
        emitSwRestoreCtxAndRet();
    }
    a.fnEnd();
}

void
KernelBuilder::emitIsr()
{
    if (params_.unit.store)
        emitIsrStoreFamily();
    else
        emitIsrVanillaFamily();

    // Synchronous traps indicate a kernel bug: stop loudly.
    Assembler &a = asm_;
    a.fnBegin("k_fatal_sync");
    a.li(T0, static_cast<SWord>(memmap::kHostExit));
    a.li(T1, 0xDEAD);
    a.sw(T1, 0, T0);
    a.j("k_fatal_sync");
    a.fnEnd();
}

// ---- software scheduler ------------------------------------------------------

void
KernelBuilder::emitSelect()
{
    Assembler &a = asm_;
    // Returns a0 = next TCB; rotates its ready list (round robin).
    a.fnBegin("k_select");
    a.la(T0, "k_top_ready_prio");
    a.lw(T1, 0, T0);
    a.label("k_select_scan");
    a.la(T2, "k_ready_lists");
    a.slli(T3, T1, 5);
    a.add(T2, T2, T3);
    a.lw(T4, kTcbNext, T2);
    a.bne(T4, T2, "k_select_found");
    a.addi(T1, T1, -1);
    a.loopBound(kNumPriorities);
    a.j("k_select_scan");
    a.label("k_select_found");
    a.sw(T1, 0, T0);
    a.mv(A0, T4);
    inlineListRemove(A0, T5, T6);
    inlineListInsertEnd(T2, A0, T5);
    a.ret();
    a.fnEnd();
}

void
KernelBuilder::emitTickHandler()
{
    Assembler &a = asm_;
    // Timer tick: advance the tick count, move expired delayed tasks
    // to their ready lists (paper Fig 2 (g)).
    a.fnBegin("k_tick");
    a.la(T0, "k_tick_count");
    a.lw(T1, 0, T0);
    a.addi(T1, T1, 1);
    a.sw(T1, 0, T0);
    a.label("k_tick_wake");
    a.la(T2, "k_delay_sentinel");
    a.lw(T3, kTcbNext, T2);
    a.beq(T3, T2, "k_tick_done");
    a.lw(T4, kTcbWake, T3);
    a.bltu(T1, T4, "k_tick_done");  // head wakes in the future
    inlineListRemove(T3, T5, T6);
    inlineReadyInsert(T3, T4, T5, T6, "tick");
    a.loopBound(kMaxTasks);
    a.j("k_tick_wake");
    a.label("k_tick_done");
    a.ret();
    a.fnEnd();
}

// ---- task API -------------------------------------------------------------

void
KernelBuilder::emitTaskApi()
{
    Assembler &a = asm_;
    const bool hw = params_.unit.sched;

    // -- k_yield ---------------------------------------------------------
    a.fnBegin("k_yield");
    inlineRaiseMsip(T0, T1);
    a.ret();
    a.fnEnd();

    // -- k_delay(a0 = ticks) ----------------------------------------------
    a.fnBegin("k_delay");
    a.csrrci(Zero, csr::kMstatus, 8);
    a.la(T0, "k_current_tcb");
    a.lw(T1, 0, T0);
    if (hw) {
        a.lw(T2, kTcbId, T1);
        a.lw(T3, kTcbPrio, T1);
        a.rtuRmTask(T2);
        a.mv(T4, A0);
        a.rtuAddDelay(T3, T4);
    } else {
        a.la(T2, "k_tick_count");
        a.lw(T3, 0, T2);
        a.add(T3, T3, A0);
        a.sw(T3, kTcbWake, T1);
        inlineListRemove(T1, T4, T5);
        // Wake-time-sorted insert into the delay list.
        a.la(T4, "k_delay_sentinel");
        a.lw(T5, kTcbNext, T4);
        a.label("k_delay_loop");
        a.beq(T5, T4, "k_delay_ins");
        a.lw(T6, kTcbWake, T5);
        a.bltu(T3, T6, "k_delay_ins");
        a.lw(T5, kTcbNext, T5);
        a.loopBound(kMaxTasks);
        a.j("k_delay_loop");
        a.label("k_delay_ins");
        a.lw(T6, kTcbPrev, T5);
        a.sw(T5, kTcbNext, T1);
        a.sw(T6, kTcbPrev, T1);
        a.sw(T1, kTcbNext, T6);
        a.sw(T1, kTcbPrev, T5);
    }
    inlineRaiseMsip(T4, T5);
    a.csrrsi(Zero, csr::kMstatus, 8);  // interrupt fires here
    a.ret();
    a.fnEnd();

    // -- k_delay_until(a0 = absolute wake tick) ---------------------------
    // Periodic-release primitive: the whole read-compare-insert runs
    // inside one interrupt-disabled window, so the relative count
    // handed to the hardware delay list cannot be stale by a tick.
    if (params_.usesDelayUntil) {
        a.fnBegin("k_delay_until");
        a.csrrci(Zero, csr::kMstatus, 8);
        a.la(T0, "k_tick_count");
        a.lw(T1, 0, T0);
        a.sub(T2, A0, T1);
        // Tardy release (wake tick already passed): run immediately.
        a.bge(Zero, T2, "k_duntil_now");
        a.la(T0, "k_current_tcb");
        a.lw(T1, 0, T0);
        if (hw) {
            a.lw(T3, kTcbId, T1);
            a.lw(T4, kTcbPrio, T1);
            a.rtuRmTask(T3);
            a.rtuAddDelay(T4, T2);
        } else {
            a.sw(A0, kTcbWake, T1);
            a.mv(T3, A0);
            inlineListRemove(T1, T4, T5);
            // Wake-time-sorted insert, same shape as k_delay.
            a.la(T4, "k_delay_sentinel");
            a.lw(T5, kTcbNext, T4);
            a.label("k_duntil_loop");
            a.beq(T5, T4, "k_duntil_ins");
            a.lw(T6, kTcbWake, T5);
            a.bltu(T3, T6, "k_duntil_ins");
            a.lw(T5, kTcbNext, T5);
            a.loopBound(kMaxTasks);
            a.j("k_duntil_loop");
            a.label("k_duntil_ins");
            a.lw(T6, kTcbPrev, T5);
            a.sw(T5, kTcbNext, T1);
            a.sw(T6, kTcbPrev, T1);
            a.sw(T1, kTcbNext, T6);
            a.sw(T1, kTcbPrev, T5);
        }
        inlineRaiseMsip(T4, T5);
        a.label("k_duntil_now");
        a.csrrsi(Zero, csr::kMstatus, 8);  // interrupt fires here
        a.ret();
        a.fnEnd();
    }

    // -- k_mutex_take(a0 = mutex) -------------------------------------------
    a.fnBegin("k_mutex_take");
    a.csrrci(Zero, csr::kMstatus, 8);
    a.lw(T0, kMutexOwner, A0);
    a.bnez(T0, "k_mtx_block");
    a.la(T1, "k_current_tcb");
    a.lw(T2, 0, T1);
    a.sw(T2, kMutexOwner, A0);
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.label("k_mtx_block");
    a.la(T1, "k_current_tcb");
    a.lw(T2, 0, T1);
    if (hw) {
        a.lw(T3, kTcbId, T2);
        a.rtuRmTask(T3);
    } else {
        inlineListRemove(T2, T3, T4);
    }
    a.addi(T3, A0, kMutexSentinel);
    inlineEventInsert(T3, T2, T4, T5, T6, "mtx");
    inlineRaiseMsip(T4, T5);
    a.csrrsi(Zero, csr::kMstatus, 8);
    // Resumed here as the owner (ownership handed over by the giver).
    a.ret();
    a.fnEnd();

    // -- k_mutex_give(a0 = mutex) ---------------------------------------------
    a.fnBegin("k_mutex_give");
    a.csrrci(Zero, csr::kMstatus, 8);
    a.addi(T0, A0, kMutexSentinel);
    a.lw(T1, kTcbNext, T0);
    a.bne(T1, T0, "k_mtx_wake");
    a.sw(Zero, kMutexOwner, A0);
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.label("k_mtx_wake");
    inlineListRemove(T1, T2, T3);
    a.sw(T1, kMutexOwner, A0);
    if (hw) {
        a.lw(T2, kTcbId, T1);
        a.lw(T3, kTcbPrio, T1);
        a.rtuAddReady(T2, T3);
    } else {
        inlineReadyInsert(T1, T2, T3, T4, "mg");
    }
    // Preempt if the woken waiter outranks us.
    a.la(T2, "k_current_tcb");
    a.lw(T3, 0, T2);
    a.lw(T4, kTcbPrio, T3);
    a.lw(T5, kTcbPrio, T1);
    a.bge(T4, T5, "k_mtx_nopre");
    inlineRaiseMsip(T2, T6);
    a.label("k_mtx_nopre");
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.fnEnd();

    // -- k_sem_take(a0 = sem) ----------------------------------------------------
    a.fnBegin("k_sem_take");
    a.csrrci(Zero, csr::kMstatus, 8);
    a.lw(T0, kSemCount, A0);
    a.beqz(T0, "k_sem_block");
    a.addi(T0, T0, -1);
    a.sw(T0, kSemCount, A0);
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.label("k_sem_block");
    a.la(T1, "k_current_tcb");
    a.lw(T2, 0, T1);
    if (hw) {
        a.lw(T3, kTcbId, T2);
        a.rtuRmTask(T3);
    } else {
        inlineListRemove(T2, T3, T4);
    }
    a.addi(T3, A0, kSemSentinel);
    inlineEventInsert(T3, T2, T4, T5, T6, "sem");
    inlineRaiseMsip(T4, T5);
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.fnEnd();

    // -- k_sem_give(a0 = sem), task context ------------------------------------
    a.fnBegin("k_sem_give");
    a.csrrci(Zero, csr::kMstatus, 8);
    a.addi(T0, A0, kSemSentinel);
    a.lw(T1, kTcbNext, T0);
    a.bne(T1, T0, "k_sem_wake");
    a.lw(T2, kSemCount, A0);
    a.addi(T2, T2, 1);
    a.sw(T2, kSemCount, A0);
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.label("k_sem_wake");
    inlineListRemove(T1, T2, T3);
    if (hw) {
        a.lw(T2, kTcbId, T1);
        a.lw(T3, kTcbPrio, T1);
        a.rtuAddReady(T2, T3);
    } else {
        inlineReadyInsert(T1, T2, T3, T4, "sg");
    }
    a.la(T2, "k_current_tcb");
    a.lw(T3, 0, T2);
    a.lw(T4, kTcbPrio, T3);
    a.lw(T5, kTcbPrio, T1);
    a.bge(T4, T5, "k_sem_nopre");
    inlineRaiseMsip(T2, T6);
    a.label("k_sem_nopre");
    a.csrrsi(Zero, csr::kMstatus, 8);
    a.ret();
    a.fnEnd();
}

void
KernelBuilder::emitSemGiveIsr()
{
    Assembler &a = asm_;
    const bool hw = params_.unit.sched;
    // ISR-context give: no critical section (MIE is already 0), no
    // self-preemption (the ISR reschedules right after).
    a.fnBegin("k_sem_give_isr");
    a.addi(T0, A0, kSemSentinel);
    a.lw(T1, kTcbNext, T0);
    a.bne(T1, T0, "k_sgi_wake");
    a.lw(T2, kSemCount, A0);
    a.addi(T2, T2, 1);
    a.sw(T2, kSemCount, A0);
    a.ret();
    a.label("k_sgi_wake");
    inlineListRemove(T1, T2, T3);
    if (hw) {
        a.lw(T2, kTcbId, T1);
        a.lw(T3, kTcbPrio, T1);
        a.rtuAddReady(T2, T3);
    } else {
        inlineReadyInsert(T1, T2, T3, T4, "sgi");
    }
    a.ret();
    a.fnEnd();
}

// ---- tasks -----------------------------------------------------------------

void
KernelBuilder::emitIdleTask()
{
    Assembler &a = asm_;
    a.fnBegin("k_task_idle");
    a.label("k_idle_loop");
    a.wfi();
    a.j("k_idle_loop");
    a.fnEnd();
}

void
KernelBuilder::emitTaskBodies()
{
    for (unsigned i = 1; i < tasks_.size(); ++i) {
        Assembler &a = asm_;
        const TaskSpec &t = tasks_[i];
        a.fnBegin("k_task_" + t.name);
        t.body(*this);
        // A task body must never fall through; trap loudly if it does.
        const std::string trap = csprintf("k_task_end_%u", i);
        a.label(trap);
        a.li(T0, static_cast<SWord>(memmap::kHostExit));
        a.li(T1, 0xDEAD);
        a.sw(T1, 0, T0);
        a.j(trap);
        a.fnEnd();
    }
}

// ---- body emission helpers ------------------------------------------------

void
KernelBuilder::callYield()
{
    asm_.call("k_yield");
}

void
KernelBuilder::callDelay(Word ticks)
{
    asm_.li(A0, static_cast<SWord>(ticks));
    asm_.call("k_delay");
}

void
KernelBuilder::callDelayUntil(Reg tick_reg)
{
    rtu_assert(params_.usesDelayUntil,
               "callDelayUntil requires KernelParams::usesDelayUntil");
    if (tick_reg != A0)
        asm_.mv(A0, tick_reg);
    asm_.call("k_delay_until");
}

void
KernelBuilder::callMutexTake(const std::string &m)
{
    asm_.la(A0, m);
    asm_.call("k_mutex_take");
}

void
KernelBuilder::callMutexGive(const std::string &m)
{
    asm_.la(A0, m);
    asm_.call("k_mutex_give");
}

void
KernelBuilder::callSemTake(const std::string &s)
{
    asm_.la(A0, s);
    asm_.call("k_sem_take");
}

void
KernelBuilder::callSemGive(const std::string &s)
{
    asm_.la(A0, s);
    asm_.call("k_sem_give");
}

void
KernelBuilder::callHwSemTake(unsigned sem_id)
{
    rtu_assert(params_.unit.hwsync,
               "callHwSemTake needs a +HS configuration");
    Assembler &a = asm_;
    a.li(A0, static_cast<SWord>(sem_id));
    a.rtuSemTake(T0, A0);
    const std::string done = csprintf("k_hst_done_%u", uniqueCounter_++);
    a.bnez(T0, done);
    // Blocked: the unit already parked us in the wait queue; yield.
    // If a wake races the yield we merely reschedule once — the token
    // stays ours.
    inlineRaiseMsip(T1, T2);
    a.nop();
    a.label(done);
}

void
KernelBuilder::callHwSemGive(unsigned sem_id)
{
    rtu_assert(params_.unit.hwsync,
               "callHwSemGive needs a +HS configuration");
    Assembler &a = asm_;
    a.li(A0, static_cast<SWord>(sem_id));
    a.rtuSemGive(T0, A0);
    const std::string done = csprintf("k_hsg_done_%u", uniqueCounter_++);
    a.beqz(T0, done);
    // A higher-priority waiter woke: yield to it immediately.
    inlineRaiseMsip(T1, T2);
    a.nop();
    a.label(done);
}

void
KernelBuilder::emitTrace(std::uint8_t tag, Word value24)
{
    asm_.li(T0, static_cast<SWord>(memmap::kHostTrace));
    asm_.li(T1, static_cast<SWord>((static_cast<Word>(tag) << 24) |
                                   (value24 & 0x00FF'FFFF)));
    asm_.sw(T1, 0, T0);
}

void
KernelBuilder::emitTraceReg(std::uint8_t tag, Reg value_reg)
{
    rtu_assert(value_reg != T0 && value_reg != T1 && value_reg != T2,
               "emitTraceReg clobbers t0..t2");
    Assembler &a = asm_;
    a.li(T0, static_cast<SWord>(memmap::kHostTrace));
    a.slli(T2, value_reg, 8);
    a.srli(T2, T2, 8);
    a.li(T1, static_cast<SWord>(static_cast<Word>(tag) << 24));
    a.or_(T1, T1, T2);
    a.sw(T1, 0, T0);
}

void
KernelBuilder::emitExit(Word code)
{
    asm_.li(T0, static_cast<SWord>(memmap::kHostExit));
    asm_.li(T1, static_cast<SWord>(code));
    asm_.sw(T1, 0, T0);
}

void
KernelBuilder::emitBusyLoop(Word iterations)
{
    Assembler &a = asm_;
    const std::string loop = csprintf("k_busy_%u", uniqueCounter_++);
    a.li(T0, static_cast<SWord>(iterations));
    a.li(T1, 0x9E37);
    a.label(loop);
    a.add(T1, T1, T0);
    a.xori(T1, T1, 0x2F);
    a.addi(T0, T0, -1);
    a.bnez(T0, loop);
}

void
KernelBuilder::emitBusyDivLoop(Word iterations)
{
    Assembler &a = asm_;
    const std::string loop = csprintf("k_busydiv_%u", uniqueCounter_++);
    a.li(T0, static_cast<SWord>(iterations));
    a.li(T1, 0x7FFF'1234);
    a.label(loop);
    // Long-latency divides keep the iterative divider busy so that
    // interrupt arrival samples many in-flight states.
    a.divu(T2, T1, T0);
    a.add(T1, T1, T2);
    a.addi(T0, T0, -1);
    a.bnez(T0, loop);
}

// ---- derived stack sizing ---------------------------------------------------

void
KernelBuilder::deriveStackSizes()
{
    // Generate a throwaway copy of this exact kernel with the fixed
    // stack layout and measure it. The probe shares every parameter
    // except the derived-sizing flag, so the measured depths apply to
    // the final image verbatim (stack capacity does not change code).
    KernelBuilder probe(*this);
    probe.params_.useDerivedStackSize = false;
    const Program program = probe.build();

    const Cfg cfg(program);
    WcsuAnalyzer wcsu(cfg);
    wcsu.run();

    const unsigned add_on = wcsu.isrAddOn();
    auto sizeFor = [&](const std::string &task_name) -> unsigned {
        unsigned bytes = wcsu.entryDepth("k_task_" + task_name) +
                         add_on + params_.stackMarginBytes;
        // The boot-time initial frame must always fit.
        bytes = std::max(bytes, static_cast<unsigned>(kFrameBytes));
        return (bytes + 15u) & ~15u;
    };

    derivedStackBytes_.clear();
    derivedStackBytes_.push_back(sizeFor("idle"));
    for (const TaskSpec &t : tasks_)
        derivedStackBytes_.push_back(sizeFor(t.name));

    // If the walk hit its state budget the depths are lower bounds,
    // not worst cases: fall back to the fixed layout.
    if (!wcsu.converged())
        derivedStackBytes_.assign(derivedStackBytes_.size(),
                                  kTaskStackBytes);
}

unsigned
KernelBuilder::taskStackBytes(unsigned task_index) const
{
    if (task_index < derivedStackBytes_.size())
        return derivedStackBytes_[task_index];
    return kTaskStackBytes;
}

// ---- build ------------------------------------------------------------------

Program
KernelBuilder::build()
{
    rtu_assert(!built_, "build() called twice");

    // Probe pass for derived stack sizing: measure the worst-case
    // stack depths on a fixed-size build of this exact kernel before
    // the idle task is inserted (the probe re-inserts its own copy).
    if (params_.useDerivedStackSize && derivedStackBytes_.empty())
        deriveStackSizes();

    TaskSpec idle;
    idle.name = "idle";
    idle.priority = 0;
    idle.body = [](KernelBuilder &) {};
    tasks_.insert(tasks_.begin(), idle);
    rtu_assert(tasks_.size() >= 2, "no user tasks");
    rtu_assert(tasks_.size() <= kMaxTasks,
               "too many tasks (%zu > %u)", tasks_.size(), kMaxTasks);

    emitDataSection();
    emitBoot();
    emitIsr();
    if (!params_.unit.sched) {
        emitSelect();
        emitTickHandler();
    }
    emitTaskApi();
    emitSemGiveIsr();
    emitIdleTask();
    emitTaskBodies();

    built_ = true;
    return asm_.finish();
}

} // namespace rtu
