/**
 * @file
 * microFreeRTOS: a FreeRTOS-workalike kernel emitted as RV32IM machine
 * code, specialized at generation time for one RTOSUnit configuration.
 *
 * The generated image contains:
 *  - boot code: list/TCB/context initialization, timer setup, start of
 *    the first task;
 *  - the interrupt service routine matching the configuration
 *    (paper Fig 4): full software save/schedule/restore for (vanilla),
 *    hardware-assisted variants for the S- and T-family
 *    configurations, and the CV32RT baseline frame convention;
 *  - the software scheduler: per-priority circular ready lists, a
 *    wake-time-sorted delay list, priority-ordered event lists
 *    (paper Fig 2);
 *  - the task API: yield, delay, mutex take/give, counting semaphore
 *    take/give (with an ISR-safe give for deferred interrupts);
 *  - the idle task and all user task bodies supplied by a workload.
 *
 * Only the (store, load, sched, cv32rt) axes change the generated
 * code; dirty bits, load omission and preloading are internal to the
 * RTOSUnit and need no kernel support (paper Sections 4.5-4.7).
 */

#ifndef RTU_KERNEL_KERNEL_HH
#define RTU_KERNEL_KERNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "asm/program.hh"
#include "common/types.hh"
#include "layout.hh"
#include "rtosunit/config.hh"

namespace rtu {

class KernelBuilder;

/** One task to create at boot. */
struct TaskSpec
{
    std::string name;
    Priority priority = 1;  ///< 1..7; 0 is reserved for the idle task
    Word arg = 0;           ///< initial a0
    /** Emits the task body (an infinite loop or an exit). */
    std::function<void(KernelBuilder &)> body;
};

struct KernelParams
{
    RtosUnitConfig unit;
    Word timerPeriodCycles = 1000;
    bool usesExternalIrq = false;  ///< emit the deferred-handler path
    /**
     * Emit k_delay_until (absolute-tick sleep for periodic tasks).
     * On hardware-scheduler configurations this also adds a
     * k_tick_count increment to the otherwise-empty timer ISR path so
     * absolute wake ticks can be converted to the relative counts the
     * hardware delay list consumes. Default off: every kernel the
     * existing benches/tests generate stays byte-identical.
     */
    bool usesDelayUntil = false;
    /**
     * Size each task stack from the worst-case stack-usage analysis
     * (src/analyze/absint/wcsu.hh) instead of the fixed
     * kTaskStackBytes: build() first generates a probe image with
     * fixed stacks, measures every task's depth plus the ISR add-on,
     * and re-emits with per-task capacities of
     * depth + add-on + stackMarginBytes (16-byte aligned, floored at
     * kFrameBytes so the boot-time initial frame always fits). The
     * overflow-canary oracle keys off the k_stack_%u symbols and
     * follows the resized regions automatically. Default off: images
     * stay byte-identical to the fixed-size layout.
     */
    bool useDerivedStackSize = false;
    /** Safety margin added to every derived stack size. */
    unsigned stackMarginBytes = 64;
};

class KernelBuilder
{
  public:
    explicit KernelBuilder(const KernelParams &params);

    /** Create kernel objects (before build()). Returns the symbol. */
    std::string createMutex(const std::string &name);
    std::string createSemaphore(const std::string &name, Word initial);

    /**
     * Create a hardware semaphore (requires a +HS configuration).
     * Returns the hardware slot id used by callHwSemTake/Give.
     */
    unsigned createHwSemaphore(Word initial = 0);

    void addTask(const TaskSpec &spec);

    /** Generate the complete image. Call once. */
    Program build();

    // ---- emission helpers for task bodies -----------------------------
    Assembler &a() { return asm_; }

    void callYield();
    void callDelay(Word ticks);
    /**
     * Sleep until the absolute tick in @p tick_reg (requires
     * KernelParams::usesDelayUntil). Tardy releases (tick already
     * passed) return immediately instead of sleeping a full epoch.
     */
    void callDelayUntil(Reg tick_reg);
    void callMutexTake(const std::string &mutex_sym);
    void callMutexGive(const std::string &mutex_sym);
    void callSemTake(const std::string &sem_sym);
    void callSemGive(const std::string &sem_sym);

    /** Hardware semaphore operations (single-instruction, no
     *  interrupt-disable window — the extension's selling point). */
    void callHwSemTake(unsigned sem_id);
    void callHwSemGive(unsigned sem_id);

    /** Emit a host-I/O trace event: tag in high byte, value in low. */
    void emitTrace(std::uint8_t tag, Word value24);
    /** Trace with a runtime value from @p value_reg (low 24 bits). */
    void emitTraceReg(std::uint8_t tag, Reg value_reg);

    /** Stop the simulation with @p code. */
    void emitExit(Word code);

    /** Busy work: @p iterations of a short ALU loop. */
    void emitBusyLoop(Word iterations);

    /**
     * Busy work with data-dependent divide latency (drives interrupt
     * entry jitter on cores that drain in-flight ops).
     */
    void emitBusyDivLoop(Word iterations);

    /** The semaphore given by the external-interrupt ISR path. */
    std::string extSemaphore() const { return "k_ext_sem"; }

    const KernelParams &params() const { return params_; }
    unsigned taskCount() const { return static_cast<unsigned>(tasks_.size()); }

  private:
    // Code-generation stages.
    void emitDataSection();
    void emitBoot();
    void emitIsr();
    void emitIsrVanillaFamily();
    void emitIsrStoreFamily();
    void emitSwSaveFrame(bool hw_saves_upper_half);
    void emitSwRestoreFrameAndRet();
    void emitSwRestoreCtxAndRet();
    void emitCauseDispatch(const std::string &prefix);
    void emitSelect();
    void emitTickHandler();
    void emitTaskApi();
    void emitSemGiveIsr();
    void emitIdleTask();
    void emitTaskBodies();

    // Inline primitives (register conventions documented in kernel.cc).
    void inlineListRemove(Reg node, Reg t_a, Reg t_b);
    void inlineListInsertEnd(Reg sentinel, Reg node, Reg t_a);
    void inlineReadyInsert(Reg node, Reg t_a, Reg t_b, Reg t_c,
                           const std::string &unique);
    void inlineEventInsert(Reg sentinel_base, Reg node, Reg t_a, Reg t_b,
                           Reg t_c, const std::string &unique);
    void inlineRaiseMsip(Reg t_a, Reg t_b);

    std::string tcbSym(unsigned task_index) const;
    std::string stackTopSym(unsigned task_index) const;

    /** Probe-build + WCSU pass filling derivedStackBytes_. */
    void deriveStackSizes();
    /** Stack capacity of task @p task_index in bytes. */
    unsigned taskStackBytes(unsigned task_index) const;

    KernelParams params_;
    Assembler asm_;
    std::vector<TaskSpec> tasks_;
    std::vector<std::string> mutexes_;
    std::vector<std::string> semaphores_;
    std::vector<Word> semInitials_;
    std::vector<Word> hwSemInitials_;
    std::vector<unsigned> derivedStackBytes_;  ///< by final task index
    bool built_ = false;
    unsigned uniqueCounter_ = 0;
};

} // namespace rtu

#endif // RTU_KERNEL_KERNEL_HH
