#include "linter.hh"

#include <utility>

#include "analyze/absint/engine.hh"
#include "analyze/absint/loopbound.hh"
#include "analyze/absint/wcsu.hh"
#include "kernel/kernel.hh"
#include "workloads/workloads.hh"

namespace rtu {

LintResult
lintProgram(const Program &program, const RtosUnitConfig &unit,
            const LintOptions &options)
{
    LintResult result;
    const Cfg cfg(program);
    checkContextIntegrity(cfg, unit, options, result.diags);
    checkCalleeSaved(cfg, options, result.diags);
    checkStackDiscipline(cfg, options, result.diags);
    checkCfgSoundness(cfg, options, result.diags);
    if (options.absint)
        checkAbsint(program, options, result.diags);
    return result;
}

void
checkAbsint(const Program &program, const LintOptions &options,
            std::vector<Diagnostic> &out)
{
    AbsintEngine engine(program);
    engine.run();

    LoopBoundOptions lbo;
    lbo.pedantic = options.absintPedanticBounds;
    LoopBoundResult bounds = inferLoopBounds(engine, lbo);
    out.insert(out.end(), bounds.diags.begin(), bounds.diags.end());

    WcsuAnalyzer wcsu(engine.cfg());
    wcsu.run();
    out.insert(out.end(), wcsu.diags().begin(), wcsu.diags().end());
    wcsu.checkOverflow(out);
}

void
forEachGeneratedProgram(
    const std::function<void(const LintPoint &)> &fn,
    bool include_hwsync)
{
    std::vector<RtosUnitConfig> units = RtosUnitConfig::paperConfigs();
    if (include_hwsync) {
        // The hardware-synchronization extension points (Section 7):
        // +HS composes on top of any (T) configuration.
        for (const char *name : {"ST", "SDLOT", "SPLIT"}) {
            RtosUnitConfig u = RtosUnitConfig::fromName(name);
            u.hwsync = true;
            units.push_back(u);
        }
    }
    for (const RtosUnitConfig &unit : units) {
        // Build exactly as the sweep harness does (src/sweep): the
        // iteration count shapes loop bodies, not kernel structure,
        // so the paper's 20 iterations stand in for all counts.
        for (const auto &workload : standardSuite(20)) {
            const WorkloadInfo winfo = workload->info();
            KernelParams kp;
            kp.unit = unit;
            kp.usesExternalIrq = winfo.usesExternalIrq;
            KernelBuilder kb(kp);
            workload->addTasks(kb);
            LintPoint point{unit, winfo.name, kb.build()};
            fn(point);
        }
    }
}

} // namespace rtu
