/**
 * @file
 * Pass 1: trap-path context integrity.
 *
 * Symbolic walk of every path from trap entry ("k_isr") to `mret`,
 * tracking per-register save/clobber/restore state against what the
 * active RtosUnitConfig's hardware does:
 *
 *  - !store, !cv32rt (vanilla/T): software must save a register to its
 *    stack-frame slot before clobbering it and reload every context
 *    register from the frame before `mret`;
 *  - cv32rt: the upper half (x16..x31) is hardware-snapshotted at trap
 *    entry; its frame slots may only be reloaded after the SWITCH_RF
 *    drain barrier;
 *  - store (S): the store FSM archives the whole context, so software
 *    may clobber freely but must reload every context register from
 *    the context region (after SWITCH_RF — before it, loads land on
 *    the ISR bank and are lost) unless load (L) restores in hardware;
 *  - omit (O): the skipped restore is only sound when the omitted
 *    loads are statically dead, i.e. the ISR never switches to the
 *    application register bank before `mret` — an explicit SWITCH_RF
 *    under (O) is reported;
 *  - store family: the ISR bank's content is stale at entry, so any
 *    read of a register the path has not yet written is reported.
 *
 * mepc/mstatus are tracked as pseudo-registers: a csrr into a tagged
 * temporary stored to the matching frame slot counts as the save, a
 * csrw counts as the restore. sp is exempt here (the stack-discipline
 * pass owns it); gp/tp are static in FreeRTOS and must never be
 * written on a trap path.
 */

#include <array>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asm/disasm.hh"
#include "common/logging.hh"
#include "kernel/layout.hh"
#include "linter.hh"

namespace rtu {

namespace {

using kernel::frameSlotOfReg;
using kernel::ctxSlotOfReg;

constexpr unsigned kMepcBit = 32;
constexpr unsigned kMstatusBit = 33;

constexpr std::uint64_t
bitOf(unsigned idx)
{
    return std::uint64_t{1} << idx;
}

/** Registers that carry task context: x1, x5..x31 (+ csr bits). */
std::uint64_t
ctxGprMask()
{
    std::uint64_t m = bitOf(RA);
    for (unsigned r = 5; r <= 31; ++r)
        m |= bitOf(r);
    return m;
}

/** Stack-frame byte offset of @p r, or -1 if it has no frame slot. */
SWord
frameSlotFor(RegIndex r)
{
    if (r == RA)
        return kernel::kFrameX1;
    if (r >= 5 && r <= 31)
        return static_cast<SWord>(frameSlotOfReg(r));
    return -1;
}

/** Context-region byte offset of @p r, or -1. */
SWord
ctxSlotFor(RegIndex r)
{
    if (r == RA)
        return kernel::kCtxX1;
    if (r == SP)
        return kernel::kCtxX2;
    if (r >= 5 && r <= 31)
        return static_cast<SWord>(ctxSlotOfReg(r));
    return -1;
}

/** Value provenance tag for the csr save patterns. */
enum CsrTag : std::uint8_t { kTagNone = 0, kTagMepc = 1, kTagMstatus = 2 };

struct CtxState
{
    std::uint64_t saved = 0;     ///< reg archived (sw or hardware)
    std::uint64_t restored = 0;  ///< reg reinstated for the next task
    std::uint64_t written = 0;   ///< GPR written since trap entry
    std::array<std::uint8_t, 32> tag{};
    bool switchedRf = false;
    /** Path rebased the frame (non-addi sp write) or latched a next
     *  task (SET_CONTEXT_ID / SWITCH_RF): the exit is a task switch
     *  and every context register must be reinstated before mret. */
    bool frameSwitched = false;
    std::vector<Addr> retStack;

    std::string
    key() const
    {
        std::string k;
        k.reserve(64 + 4 * retStack.size());
        auto put = [&k](std::uint64_t v, unsigned bytes) {
            for (unsigned i = 0; i < bytes; ++i)
                k.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
        };
        put(saved, 8);
        put(restored, 8);
        put(written, 8);
        put((switchedRf ? 1 : 0) | (frameSwitched ? 2 : 0), 1);
        for (std::uint8_t t : tag)
            k.push_back(static_cast<char>(t));
        for (Addr a : retStack)
            put(a, 4);
        return k;
    }
};

class ContextWalker
{
  public:
    ContextWalker(const Cfg &cfg, const RtosUnitConfig &unit,
                  const LintOptions &options,
                  std::vector<Diagnostic> &out)
        : cfg_(cfg), unit_(unit), options_(options), out_(out)
    {
        if (unit_.store) {
            hwSaved_ = ctxGprMask() | bitOf(SP) | bitOf(kMepcBit) |
                       bitOf(kMstatusBit);
        } else if (unit_.cv32rt) {
            for (unsigned r = 16; r <= 31; ++r)
                hwSaved_ |= bitOf(r);
        }
        if (unit_.load) {
            hwRestored_ = ctxGprMask() | bitOf(kMepcBit) |
                          bitOf(kMstatusBit);
        }
    }

    void
    run(Addr isr_entry)
    {
        CtxState init;
        init.saved = hwSaved_;
        work_.emplace_back(isr_entry, std::move(init));
        while (!work_.empty()) {
            auto [pc, state] = std::move(work_.back());
            work_.pop_back();
            walk(pc, std::move(state));
        }
    }

  private:
    void
    report(Severity sev, const std::string &code, Addr pc,
           const std::string &message)
    {
        if (!reported_.insert(code + "@" + std::to_string(pc)).second)
            return;
        Diagnostic d;
        d.severity = sev;
        d.code = code;
        d.pc = pc;
        d.hasPc = true;
        d.function = cfg_.program().functionAt(pc);
        d.insn = cfg_.contains(pc) ? disassemble(cfg_.insnAt(pc).raw)
                                   : std::string();
        d.message = message;
        out_.push_back(std::move(d));
    }

    /** Memoize at block leaders; false = state already explored. */
    bool
    enter(Addr pc, const CtxState &state)
    {
        if (cfg_.blocks().count(pc) == 0)
            return true;  // mid-block continuation
        if (statesSeen_ >= options_.stateBudget) {
            report(Severity::kWarning, "lint-budget-exceeded", pc,
                   "context-integrity exploration exceeded the state "
                   "budget; results are partial");
            return false;
        }
        if (!visited_[pc].insert(state.key()).second)
            return false;
        ++statesSeen_;
        return true;
    }

    void
    walk(Addr pc, CtxState st)
    {
        while (true) {
            if (!cfg_.contains(pc))
                return;  // fell off text; the soundness pass reports it
            if (!enter(pc, st))
                return;
            const DecodedInsn &d = cfg_.insnAt(pc);

            checkReads(pc, d, st);

            switch (d.op) {
              case Op::kMret:
                finishAtMret(pc, st);
                return;
              case Op::kJal:
                applyWrite(pc, d, st, /*is_restore=*/false);
                if (d.rd == RA) {
                    if (st.retStack.size() >= 16) {
                        report(Severity::kError, "lint-call-depth", pc,
                               "call depth exceeded on trap path");
                        return;
                    }
                    st.retStack.push_back(pc + 4);
                }
                pc += static_cast<Word>(d.imm);
                continue;
              case Op::kJalr:
                if (d.rd == Zero && d.rs1 == RA && d.imm == 0) {
                    if (st.retStack.empty())
                        return;  // "ret" out of the trap path
                    pc = st.retStack.back();
                    st.retStack.pop_back();
                    continue;
                }
                return;  // indirect; the soundness pass reports it
              case Op::kSwitchRf:
                if (unit_.omit) {
                    report(Severity::kError, "omit-live-load", pc,
                           "SWITCH_RF on the trap path makes omitted "
                           "restore loads live: software touches the "
                           "application register bank under (O)");
                }
                st.switchedRf = true;
                st.frameSwitched = true;
                pc += 4;
                continue;
              case Op::kInvalid:
                return;  // the soundness pass reports it
              default:
                break;
            }

            if (classOf(d.op) == InsnClass::kBranch) {
                CtxState taken = st;
                work_.emplace_back(pc + static_cast<Word>(d.imm),
                                   std::move(taken));
                pc += 4;
                continue;
            }

            applySave(d, st);
            const bool restore = isRestoreLoad(pc, d, st);
            applyWrite(pc, d, st, restore);
            applyCsr(pc, d, st);
            if (d.op == Op::kSetContextId)
                st.frameSwitched = true;  // a next task is latched
            pc += 4;
        }
    }

    /** Store-family ISR banks hold stale values at trap entry. */
    void
    checkReads(Addr pc, const DecodedInsn &d, const CtxState &st)
    {
        if (!unit_.store)
            return;
        auto check = [&](RegIndex r) {
            if (r != Zero && (st.written & bitOf(r)) == 0) {
                report(Severity::kError, "isr-uninit-read", pc,
                       csprintf("read of %s before any write on the "
                                "trap path: the ISR register bank is "
                                "stale at entry", regName(r)));
            }
        };
        if (readsRs1(d.op))
            check(d.rs1);
        if (readsRs2(d.op))
            check(d.rs2);
    }

    /** Frame/context-region store that archives a register or csr. */
    void
    applySave(const DecodedInsn &d, CtxState &st)
    {
        if (d.op != Op::kSw || unit_.store || d.rs1 != SP)
            return;
        if (frameSlotFor(d.rs2) == d.imm)
            st.saved |= bitOf(d.rs2);
        if (d.imm == static_cast<SWord>(kernel::kFrameMepc) &&
            st.tag[d.rs2] == kTagMepc)
            st.saved |= bitOf(kMepcBit);
        if (d.imm == static_cast<SWord>(kernel::kFrameMstatus) &&
            st.tag[d.rs2] == kTagMstatus)
            st.saved |= bitOf(kMstatusBit);
    }

    /** Does this load reinstate its destination's task value? */
    bool
    isRestoreLoad(Addr pc, const DecodedInsn &d, const CtxState &st)
    {
        if (d.op != Op::kLw)
            return false;
        if (!unit_.store) {
            // Frame reload relative to sp (vanilla/T/CV32RT).
            if (d.rs1 != SP || frameSlotFor(d.rd) != d.imm)
                return false;
            if (unit_.cv32rt && (hwSaved_ & bitOf(d.rd)) != 0 &&
                !st.switchedRf) {
                report(Severity::kError, "ctx-restore-before-barrier",
                       pc,
                       csprintf("frame slot of %s is drained by "
                                "hardware; reloading it before the "
                                "SWITCH_RF barrier races the drain",
                                regName(d.rd)));
            }
            return true;
        }
        if (unit_.load)
            return false;  // restore is hardware's job
        // Context-region reload (store-only family).
        if (ctxSlotFor(d.rd) != d.imm)
            return false;
        if (!st.switchedRf) {
            report(Severity::kError, "ctx-restore-before-barrier", pc,
                   csprintf("context reload of %s before SWITCH_RF "
                            "lands on the ISR bank and is lost at the "
                            "bank switch", regName(d.rd)));
        }
        return true;
    }

    void
    applyWrite(Addr pc, const DecodedInsn &d, CtxState &st,
               bool is_restore)
    {
        if (!writesRd(d.op) || d.rd == Zero)
            return;
        const RegIndex r = d.rd;
        st.tag[r] = kTagNone;
        st.written |= bitOf(r);
        if (r == SP) {
            // Balance is the stack-discipline pass's job, but a
            // non-incremental sp write is the frame switch (vanilla
            // family: `lw sp, kTcbTop(tcb)`; store family: the ISR
            // stack rebase preceding the context-region reload).
            if (!(d.op == Op::kAddi && d.rs1 == SP))
                st.frameSwitched = true;
            return;
        }
        if (r == GP || r == TP) {
            report(Severity::kError, "ctx-clobbered-before-save", pc,
                   csprintf("%s is static in FreeRTOS and must never "
                            "be written on a trap path", regName(r)));
            return;
        }
        if (is_restore) {
            st.restored |= bitOf(r);
            return;
        }
        st.restored &= ~bitOf(r);
        if ((st.saved & bitOf(r)) == 0) {
            report(Severity::kError, "ctx-clobbered-before-save", pc,
                   csprintf("%s written on the trap path before being "
                            "saved (config %s does not save it in "
                            "hardware)", regName(r),
                            unit_.name().c_str()));
        }
    }

    void
    applyCsr(Addr pc, const DecodedInsn &d, CtxState &st)
    {
        if (classOf(d.op) != InsnClass::kCsr)
            return;
        if (d.rd != Zero) {
            st.tag[d.rd] = d.csr == csr::kMepc      ? kTagMepc
                           : d.csr == csr::kMstatus ? kTagMstatus
                                                    : kTagNone;
        }
        const bool writes_csr =
            d.op == Op::kCsrrw || d.op == Op::kCsrrwi ||
            ((d.op == Op::kCsrrs || d.op == Op::kCsrrc) &&
             d.rs1 != Zero) ||
            ((d.op == Op::kCsrrsi || d.op == Op::kCsrrci) &&
             d.imm != 0);
        if (!writes_csr)
            return;
        const unsigned b = d.csr == csr::kMepc      ? kMepcBit
                           : d.csr == csr::kMstatus ? kMstatusBit
                                                    : 0;
        if (b == 0)
            return;
        if ((st.saved & bitOf(b)) == 0) {
            report(Severity::kError, "ctx-clobbered-before-save", pc,
                   csprintf("%s overwritten on the trap path before "
                            "being saved",
                            b == kMepcBit ? "mepc" : "mstatus"));
        }
        st.restored |= bitOf(b);
    }

    void
    finishAtMret(Addr pc, const CtxState &st)
    {
        // A task-switch exit (frame rebase or latched next task) must
        // reinstate every context register, or the outgoing task's
        // values leak into the incoming one. A non-switch exit resumes
        // the interrupted task: only registers the path clobbered need
        // reinstating.
        const std::uint64_t required =
            ctxGprMask() | bitOf(kMepcBit) | bitOf(kMstatusBit);
        const bool switch_exit = st.frameSwitched;
        std::string missing;
        for (unsigned b = 0; b <= kMstatusBit; ++b) {
            if ((required & bitOf(b)) == 0)
                continue;
            if ((st.restored | hwRestored_) & bitOf(b))
                continue;
            const bool touched =
                b < 32 ? (st.written & bitOf(b)) != 0 : false;
            if (!switch_exit && !touched)
                continue;
            if (!missing.empty())
                missing += ", ";
            missing += b == kMepcBit      ? "mepc"
                       : b == kMstatusBit ? "mstatus"
                                          : regName(b);
        }
        if (!missing.empty()) {
            report(Severity::kError, "ctx-not-restored", pc,
                   csprintf("mret reached with context registers not "
                            "reinstated under config %s: %s",
                            unit_.name().c_str(), missing.c_str()));
        }
    }

    const Cfg &cfg_;
    const RtosUnitConfig &unit_;
    const LintOptions &options_;
    std::vector<Diagnostic> &out_;
    std::uint64_t hwSaved_ = 0;
    std::uint64_t hwRestored_ = 0;
    std::vector<std::pair<Addr, CtxState>> work_;
    std::unordered_map<Addr, std::unordered_set<std::string>> visited_;
    std::set<std::string> reported_;
    unsigned statesSeen_ = 0;
};

} // namespace

void
checkContextIntegrity(const Cfg &cfg, const RtosUnitConfig &unit,
                      const LintOptions &options,
                      std::vector<Diagnostic> &out)
{
    const auto it = cfg.program().symbols.find("k_isr");
    if (it == cfg.program().symbols.end() || !cfg.contains(it->second))
        return;  // no trap entry: nothing to verify
    ContextWalker walker(cfg, unit, options, out);
    walker.run(it->second);
}

} // namespace rtu
