/**
 * @file
 * Pass 4: CFG soundness and WCET-annotation coverage.
 *
 *  - invalid encodings inside the text section;
 *  - blocks unreachable from any function entry or the trap vector;
 *  - control falling off textEnd();
 *  - fall-through edges that silently cross a function boundary;
 *  - on the ISR-reachable subgraph (what the WCET analyzer walks):
 *    backward edges without a loopBounds annotation (these make the
 *    WCET computation unsound), indirect jumps (no static successor),
 *    and trap handlers that can never reach `mret`.
 */

#include <set>
#include <string>

#include "asm/disasm.hh"
#include "common/logging.hh"
#include "linter.hh"

namespace rtu {

namespace {

void
report(std::vector<Diagnostic> &out, const Cfg &cfg, Severity sev,
       const std::string &code, Addr pc, const std::string &message)
{
    Diagnostic d;
    d.severity = sev;
    d.code = code;
    d.pc = pc;
    d.hasPc = true;
    d.function = cfg.program().functionAt(pc);
    if (cfg.contains(pc))
        d.insn = disassemble(cfg.insnAt(pc).raw);
    d.message = message;
    out.push_back(std::move(d));
}

/** Fall-through-style successor (not a taken branch/jump target). */
bool
hasFallEdge(const BasicBlock &bb)
{
    return bb.term == TermKind::kFallThrough ||
           bb.term == TermKind::kBranch || bb.term == TermKind::kCall;
}

} // namespace

void
checkCfgSoundness(const Cfg &cfg, const LintOptions &options,
                  std::vector<Diagnostic> &out)
{
    const Program &program = cfg.program();

    // Invalid encodings in text.
    for (Addr pc = program.textBase; pc < program.textEnd(); pc += 4) {
        if (cfg.insnAt(pc).op == Op::kInvalid) {
            report(out, cfg, Severity::kError, "invalid-insn", pc,
                   csprintf("text word 0x%08x does not decode",
                            cfg.insnAt(pc).raw));
        }
    }

    // Reachability from every entry the harness can use.
    std::set<Addr> reachable;
    auto addRoots = [&](Addr entry) {
        for (Addr leader : cfg.reachableFrom(entry, true))
            reachable.insert(leader);
    };
    if (!program.text.empty())
        addRoots(program.textBase);
    for (const auto &[name, range] : program.functions) {
        if (cfg.contains(range.first))
            addRoots(range.first);
    }
    const auto isr = program.symbols.find("k_isr");
    if (isr != program.symbols.end() && cfg.contains(isr->second))
        addRoots(isr->second);
    for (const auto &[leader, bb] : cfg.blocks()) {
        if (reachable.count(leader) == 0) {
            // Unreachable closed terminal loops are the generator's
            // intentional guard stubs (`k_task_end_N`: trap loudly if
            // a task body ever falls through). Anything else is dead
            // code worth flagging.
            if (cfg.isClosedLoop(leader))
                continue;
            report(out, cfg, Severity::kWarning, "cfg-unreachable",
                   leader,
                   "block is unreachable from every function entry "
                   "and the trap vector");
        }
    }

    for (const auto &[leader, bb] : cfg.blocks()) {
        // Running off the end of the text section.
        if (bb.term == TermKind::kFallOffText) {
            report(out, cfg, Severity::kError, "cfg-fall-off-text",
                   bb.termPc(),
                   "control can run past textEnd(): the block's last "
                   "instruction is not a terminator");
            continue;
        }
        // Fall-through silently entering the next function.
        if (hasFallEdge(bb) && cfg.contains(bb.end)) {
            const std::string from = program.functionAt(bb.termPc());
            const std::string to = program.functionAt(bb.end);
            if (from != to) {
                report(out, cfg, Severity::kError,
                       "cfg-fall-through-function", bb.termPc(),
                       csprintf("fall-through crosses a function "
                                "boundary (%s -> %s)",
                                from.empty() ? "<none>" : from.c_str(),
                                to.empty() ? "<none>" : to.c_str()));
            }
        }
    }

    // WCET-soundness lints over the subgraph the analyzer walks.
    if (!options.wcetChecks || isr == program.symbols.end() ||
        !cfg.contains(isr->second))
        return;
    const std::set<Addr> scope = cfg.reachableFrom(isr->second, true);
    bool sawMret = false;
    for (Addr leader : scope) {
        const BasicBlock &bb = cfg.blockAt(leader);
        const Addr tpc = bb.termPc();
        switch (bb.term) {
          case TermKind::kTrapReturn:
            sawMret = true;
            break;
          case TermKind::kBranch:
            if (bb.takenTarget <= tpc && !cfg.hasLoopBound(tpc)) {
                report(out, cfg, Severity::kError,
                       "wcet-unannotated-back-edge", tpc,
                       "ISR-reachable backward branch without a "
                       "loopBounds annotation: WCET is unbounded");
            }
            break;
          case TermKind::kJump:
            if (bb.takenTarget <= tpc && !cfg.hasLoopBound(tpc) &&
                !cfg.isClosedLoop(bb.takenTarget)) {
                report(out, cfg, Severity::kError,
                       "wcet-unannotated-back-edge", tpc,
                       "ISR-reachable backward jump without a "
                       "loopBounds annotation: WCET is unbounded");
            }
            break;
          case TermKind::kIndirect:
            report(out, cfg, Severity::kError, "cfg-indirect-jump",
                   tpc,
                   "indirect jump on the ISR path has no static "
                   "successor; neither the linter nor the WCET "
                   "analyzer can follow it");
            break;
          default:
            break;
        }
    }
    if (!sawMret) {
        report(out, cfg, Severity::kError, "isr-no-mret", isr->second,
               "no mret is reachable from the trap vector: the "
               "handler cannot return to a task");
    }
}

} // namespace rtu
