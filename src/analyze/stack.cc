/**
 * @file
 * Pass 3: stack-pointer discipline, per function.
 *
 * Tracks the SP delta relative to function entry along every path:
 *
 *  - joining paths must agree on the delta ("stack-imbalance"): a
 *    block entered with two different known deltas means some path
 *    leaked or double-popped frame bytes;
 *  - `ret` must see delta 0 ("stack-ret-imbalance");
 *  - loads/stores must not address below SP ("stack-below-sp") — the
 *    region below the stack pointer is dead and an interrupt may
 *    clobber it at any instruction boundary.
 *
 * A non-`addi sp, sp, imm` write to SP (frame switch via `lw sp`,
 * ISR-stack rebase via `la sp`) makes the delta unknown; unknown
 * deltas carry no balance obligation (trap paths rebase legitimately
 * and end in `mret`, which pass 1 owns).
 */

#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "asm/disasm.hh"
#include "common/logging.hh"
#include "linter.hh"

namespace rtu {

namespace {

class StackWalker
{
  public:
    StackWalker(const Cfg &cfg, const LintOptions &options,
                std::vector<Diagnostic> &out)
        : cfg_(cfg), options_(options), out_(out)
    {
    }

    void
    runFunction(const std::string &name, Addr begin, Addr end)
    {
        fnName_ = name;
        fnBegin_ = begin;
        fnEnd_ = end;
        visited_.clear();
        leaderDeltas_.clear();
        work_.clear();
        work_.emplace_back(begin, State{0, true});
        while (!work_.empty()) {
            auto [pc, state] = work_.back();
            work_.pop_back();
            walk(pc, state);
        }
    }

  private:
    struct State
    {
        int delta = 0;
        bool known = true;
    };

    bool
    inFunction(Addr pc) const
    {
        return pc >= fnBegin_ && pc < fnEnd_ && cfg_.contains(pc);
    }

    void
    report(const std::string &code, Addr pc, const std::string &message)
    {
        if (!reported_.insert(code + "@" + std::to_string(pc)).second)
            return;
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = code;
        d.pc = pc;
        d.hasPc = true;
        d.function = fnName_;
        d.insn = disassemble(cfg_.insnAt(pc).raw);
        d.message = message;
        out_.push_back(std::move(d));
    }

    bool
    enter(Addr pc, const State &st)
    {
        if (cfg_.blocks().count(pc) == 0)
            return true;
        if (st.known) {
            auto &deltas = leaderDeltas_[pc];
            deltas.insert(st.delta);
            if (deltas.size() == 2) {
                report("stack-imbalance", pc,
                       csprintf("block entered with conflicting sp "
                                "deltas (%d vs %d): paths disagree on "
                                "the frame size", *deltas.begin(),
                                *deltas.rbegin()));
            }
        }
        if (statesSeen_ >= options_.stateBudget)
            return false;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                 st.delta))
             << 1) |
            (st.known ? 1u : 0u);
        if (!visited_.insert({pc, key}).second)
            return false;
        ++statesSeen_;
        return true;
    }

    void
    walk(Addr pc, State st)
    {
        while (inFunction(pc)) {
            if (!enter(pc, st))
                return;
            const DecodedInsn &d = cfg_.insnAt(pc);

            switch (d.op) {
              case Op::kJal:
                if (d.rd == RA) {
                    pc += 4;  // callee assumed balanced
                    continue;
                }
                pc += static_cast<Word>(d.imm);
                continue;
              case Op::kJalr:
                if (d.rd == Zero && d.rs1 == RA && d.imm == 0 &&
                    st.known && st.delta != 0) {
                    report("stack-ret-imbalance", pc,
                           csprintf("ret with sp offset %d from the "
                                    "entry value: frame not fully "
                                    "popped", st.delta));
                }
                return;
              case Op::kMret:
              case Op::kInvalid:
                return;
              default:
                break;
            }

            if (classOf(d.op) == InsnClass::kBranch) {
                const Addr taken = pc + static_cast<Word>(d.imm);
                if (inFunction(taken))
                    work_.emplace_back(taken, st);
                pc += 4;
                continue;
            }

            const InsnClass cls = classOf(d.op);
            if ((cls == InsnClass::kLoad || cls == InsnClass::kStore) &&
                d.rs1 == SP && d.imm < 0) {
                report("stack-below-sp", pc,
                       csprintf("memory access at %d below sp: the "
                                "region below the stack pointer is "
                                "dead and interrupts may overwrite it",
                                d.imm));
            }

            if (writesRd(d.op) && d.rd == SP) {
                if (d.op == Op::kAddi && d.rs1 == SP) {
                    if (st.known)
                        st.delta += d.imm;
                } else {
                    st.known = false;  // rebase / frame switch
                }
            }
            pc += 4;
        }
    }

    const Cfg &cfg_;
    const LintOptions &options_;
    std::vector<Diagnostic> &out_;
    std::string fnName_;
    Addr fnBegin_ = 0;
    Addr fnEnd_ = 0;
    std::vector<std::pair<Addr, State>> work_;
    std::set<std::pair<Addr, std::uint64_t>> visited_;
    std::map<Addr, std::set<int>> leaderDeltas_;
    std::unordered_set<std::string> reported_;
    unsigned statesSeen_ = 0;
};

} // namespace

void
checkStackDiscipline(const Cfg &cfg, const LintOptions &options,
                     std::vector<Diagnostic> &out)
{
    StackWalker walker(cfg, options, out);
    for (const auto &[name, range] : cfg.program().functions) {
        if (range.second > range.first && cfg.contains(range.first))
            walker.runFunction(name, range.first, range.second);
    }
}

} // namespace rtu
