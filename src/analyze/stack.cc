/**
 * @file
 * Pass 3: stack-pointer discipline, per function.
 *
 * Tracks the SP value along every path in one of three modes:
 *
 *  - entry-relative: a known delta from the function's entry SP
 *    (the common case — `addi sp, sp, imm` frame pushes and pops);
 *  - absolute: a known machine address, entered through a
 *    `lui sp` / `auipc sp` rebase (the ISR-stack rebase `la sp,
 *    k_isr_stack_top` expands to `lui` + `addi`, both of which stay
 *    precise in this mode);
 *  - unknown: a frame switch through memory (`lw sp, ...`) or a
 *    computed rebase; unknown values carry no balance obligation
 *    (context-restore paths load the next task's SP legitimately and
 *    end in `mret`, which pass 1 owns).
 *
 * Checks:
 *
 *  - joining paths must agree on the SP value ("stack-imbalance"): a
 *    block entered with two different values in the same mode means
 *    some path leaked or double-popped frame bytes — this now also
 *    catches disagreeing absolute rebases, which the old delta-only
 *    tracker lumped into "unknown" and silently accepted;
 *  - `ret` must see the entry SP ("stack-ret-imbalance") — returning
 *    with a rebased (absolute-mode) SP abandons the caller's frame
 *    and is reported under the same code;
 *  - loads/stores must not address below SP ("stack-below-sp") — the
 *    region below the stack pointer is dead and an interrupt may
 *    clobber it at any instruction boundary.
 */

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "asm/disasm.hh"
#include "common/logging.hh"
#include "linter.hh"

namespace rtu {

namespace {

class StackWalker
{
  public:
    StackWalker(const Cfg &cfg, const LintOptions &options,
                std::vector<Diagnostic> &out)
        : cfg_(cfg), options_(options), out_(out)
    {
    }

    void
    runFunction(const std::string &name, Addr begin, Addr end)
    {
        fnName_ = name;
        fnBegin_ = begin;
        fnEnd_ = end;
        visited_.clear();
        leaderStates_.clear();
        work_.clear();
        work_.emplace_back(begin, State{});
        while (!work_.empty()) {
            auto [pc, state] = work_.back();
            work_.pop_back();
            walk(pc, state);
        }
    }

  private:
    struct State
    {
        enum Mode { kEntryRel, kAbsolute, kUnknown };
        Mode mode = kEntryRel;
        /** Delta from entry SP (kEntryRel) or address (kAbsolute). */
        std::int64_t value = 0;
    };

    bool
    inFunction(Addr pc) const
    {
        return pc >= fnBegin_ && pc < fnEnd_ && cfg_.contains(pc);
    }

    void
    report(const std::string &code, Addr pc, const std::string &message)
    {
        if (!reported_.insert(code + "@" + std::to_string(pc)).second)
            return;
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = code;
        d.pc = pc;
        d.hasPc = true;
        d.function = fnName_;
        d.insn = disassemble(cfg_.insnAt(pc).raw);
        d.message = message;
        out_.push_back(std::move(d));
    }

    static std::string
    describe(const State &st)
    {
        switch (st.mode) {
          case State::kEntryRel:
            return csprintf("entry%+d", static_cast<int>(st.value));
          case State::kAbsolute:
            return csprintf("0x%08x",
                            static_cast<Word>(st.value));
          default:
            return "unknown";
        }
    }

    bool
    enter(Addr pc, const State &st)
    {
        if (cfg_.blocks().count(pc) == 0)
            return true;
        if (st.mode != State::kUnknown) {
            auto &states = leaderStates_[pc];
            states.insert({st.mode, st.value});
            // Two values in the same mode disagree outright. Mixed
            // modes (entry-relative vs absolute) are incomparable
            // statically and join like the old known-vs-unknown case.
            std::map<int, std::int64_t> by_mode;
            for (const auto &[mode, value] : states) {
                auto [it, inserted] = by_mode.emplace(mode, value);
                if (!inserted && it->second != value) {
                    report("stack-imbalance", pc,
                           csprintf("block entered with conflicting "
                                    "sp values (%s vs %s): paths "
                                    "disagree on the frame size",
                                    describe(State{
                                        static_cast<State::Mode>(mode),
                                        it->second}).c_str(),
                                    describe(st).c_str()));
                }
            }
        }
        if (statesSeen_ >= options_.stateBudget)
            return false;
        if (!visited_.insert({pc, st.mode, st.value}).second)
            return false;
        ++statesSeen_;
        return true;
    }

    void
    walk(Addr pc, State st)
    {
        while (inFunction(pc)) {
            if (!enter(pc, st))
                return;
            const DecodedInsn &d = cfg_.insnAt(pc);

            switch (d.op) {
              case Op::kJal:
                if (d.rd == RA) {
                    pc += 4;  // callee assumed balanced
                    continue;
                }
                pc += static_cast<Word>(d.imm);
                continue;
              case Op::kJalr:
                if (d.rd == Zero && d.rs1 == RA && d.imm == 0) {
                    if (st.mode == State::kEntryRel && st.value != 0) {
                        report("stack-ret-imbalance", pc,
                               csprintf("ret with sp offset %d from "
                                        "the entry value: frame not "
                                        "fully popped",
                                        static_cast<int>(st.value)));
                    } else if (st.mode == State::kAbsolute) {
                        report("stack-ret-imbalance", pc,
                               csprintf("ret with sp rebased to %s: "
                                        "the caller's frame is "
                                        "abandoned",
                                        describe(st).c_str()));
                    }
                }
                return;
              case Op::kMret:
              case Op::kInvalid:
                return;
              default:
                break;
            }

            if (classOf(d.op) == InsnClass::kBranch) {
                const Addr taken = pc + static_cast<Word>(d.imm);
                if (inFunction(taken))
                    work_.emplace_back(taken, st);
                pc += 4;
                continue;
            }

            const InsnClass cls = classOf(d.op);
            if ((cls == InsnClass::kLoad || cls == InsnClass::kStore) &&
                d.rs1 == SP && d.imm < 0) {
                report("stack-below-sp", pc,
                       csprintf("memory access at %d below sp: the "
                                "region below the stack pointer is "
                                "dead and interrupts may overwrite it",
                                d.imm));
            }

            if (writesRd(d.op) && d.rd == SP) {
                if (d.op == Op::kAddi && d.rs1 == SP) {
                    if (st.mode != State::kUnknown)
                        st.value += d.imm;
                } else if (d.op == Op::kLui) {
                    st.mode = State::kAbsolute;
                    st.value = static_cast<std::int32_t>(
                        static_cast<Word>(d.imm) << 12);
                } else if (d.op == Op::kAuipc) {
                    st.mode = State::kAbsolute;
                    st.value = static_cast<std::int32_t>(
                        pc + (static_cast<Word>(d.imm) << 12));
                } else {
                    st.mode = State::kUnknown;  // frame switch
                    st.value = 0;
                }
            }
            pc += 4;
        }
    }

    const Cfg &cfg_;
    const LintOptions &options_;
    std::vector<Diagnostic> &out_;
    std::string fnName_;
    Addr fnBegin_ = 0;
    Addr fnEnd_ = 0;
    std::vector<std::pair<Addr, State>> work_;
    std::set<std::tuple<Addr, int, std::int64_t>> visited_;
    std::map<Addr, std::set<std::pair<int, std::int64_t>>>
        leaderStates_;
    std::unordered_set<std::string> reported_;
    unsigned statesSeen_ = 0;
};

} // namespace

void
checkStackDiscipline(const Cfg &cfg, const LintOptions &options,
                     std::vector<Diagnostic> &out)
{
    StackWalker walker(cfg, options, out);
    for (const auto &[name, range] : cfg.program().functions) {
        if (range.second > range.first && cfg.contains(range.first))
            walker.runFunction(name, range.first, range.second);
    }
}

} // namespace rtu
