/**
 * @file
 * Worst-case stack usage: call-graph-composed symbolic sp tracking.
 */

#include <algorithm>
#include <tuple>

#include "analyze/absint/wcsu.hh"
#include "common/logging.hh"

namespace rtu {

namespace {

constexpr unsigned kSpReg = 2;

} // namespace

WcsuAnalyzer::WcsuAnalyzer(const Cfg &cfg, const WcsuOptions &options)
    : cfg_(cfg), program_(cfg.program()), options_(options)
{
    for (const auto &[name, addr] : program_.symbols) {
        const bool task_stack =
            name.rfind("k_stack_", 0) == 0 &&
            name.size() >= 4 && name.substr(name.size() - 4) != "_top";
        if (!task_stack && name != "k_isr_stack")
            continue;
        auto top = program_.symbols.find(name + "_top");
        if (top == program_.symbols.end() || top->second <= addr)
            continue;
        regions_.push_back({name, addr, top->second});
    }
}

void
WcsuAnalyzer::run()
{
    for (const auto &[name, range] : program_.functions)
        if (range.second > range.first && cfg_.contains(range.first))
            depthOf(range.first);
}

unsigned
WcsuAnalyzer::entryDepth(const std::string &fn) const
{
    auto it = program_.functions.find(fn);
    if (it == program_.functions.end())
        return 0;
    auto sit = summaries_.find(it->second.first);
    return sit != summaries_.end() ? sit->second.depth : 0;
}

unsigned
WcsuAnalyzer::isrAddOn() const
{
    return entryDepth("k_isr") + unknownExtra_;
}

unsigned
WcsuAnalyzer::depthOf(Addr entry)
{
    auto it = summaries_.find(entry);
    if (it != summaries_.end() && it->second.done)
        return it->second.depth;
    if (!inProgress_.insert(entry).second) {
        // Recursion: the depth is unbounded. Report once per cycle
        // entry and continue with 0 so the rest of the program still
        // gets analyzed (the error already fails the gate).
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = "wcsu-recursion";
        d.pc = entry;
        d.hasPc = true;
        d.function = program_.functionAt(entry);
        d.message = "recursive call cycle: worst-case stack usage "
                    "is unbounded";
        diags_.push_back(std::move(d));
        return 0;
    }

    Addr begin = entry;
    Addr end = 0;
    const std::string name = program_.functionAt(entry);
    auto fit = program_.functions.find(name);
    if (fit != program_.functions.end()) {
        end = fit->second.second;
    } else {
        const BasicBlock *bb = cfg_.blockContaining(entry);
        end = bb ? bb->end : entry;
    }

    const unsigned depth = walkFunction(entry, begin, end);
    inProgress_.erase(entry);
    summaries_[entry] = {depth, true};
    return depth;
}

void
WcsuAnalyzer::touch(const SpState &st, std::int64_t extra,
                    unsigned &depth)
{
    switch (st.mode) {
      case SpState::kEntryRel: {
        const std::int64_t cur = -st.value + extra;
        if (cur > 0)
            depth = std::max(depth, static_cast<unsigned>(cur));
        return;
      }
      case SpState::kAbsolute:
        for (const StackRegion &r : regions_) {
            if (st.value < static_cast<std::int64_t>(r.base) ||
                st.value > static_cast<std::int64_t>(r.top))
                continue;
            const std::int64_t used =
                static_cast<std::int64_t>(r.top) - st.value + extra;
            if (used > 0) {
                unsigned &u = regionUsage_[r.name];
                u = std::max(u, static_cast<unsigned>(used));
            }
            return;
        }
        return;
      case SpState::kUnknown: {
        const std::int64_t cur = -st.value + extra;
        if (cur > 0)
            unknownExtra_ =
                std::max(unknownExtra_, static_cast<unsigned>(cur));
        return;
      }
    }
}

unsigned
WcsuAnalyzer::walkFunction(Addr entry, Addr begin, Addr end)
{
    unsigned depth = 0;
    std::set<std::tuple<Addr, int, std::int64_t>> visited;
    std::vector<std::pair<Addr, SpState>> work;
    work.emplace_back(entry, SpState{});

    auto inRange = [&](Addr pc) {
        return pc >= begin && pc < end && cfg_.contains(pc);
    };

    while (!work.empty()) {
        auto [pc, st] = work.back();
        work.pop_back();
        while (inRange(pc)) {
            if (statesSeen_ >= options_.stateBudget) {
                converged_ = false;
                return depth;
            }
            if (!visited.insert({pc, st.mode, st.value}).second)
                break;
            ++statesSeen_;

            const DecodedInsn &d = cfg_.insnAt(pc);
            switch (d.op) {
              case Op::kJal:
                if (d.rd == 1) {
                    // Call: charge the callee below the current sp,
                    // then continue balanced (pass 2 verifies the
                    // callee preserves sp).
                    touch(st, depthOf(pc + static_cast<Word>(d.imm)),
                          depth);
                    pc += 4;
                    continue;
                }
                {
                    const Addr target = pc + static_cast<Word>(d.imm);
                    if (inRange(target)) {
                        pc = target;
                        continue;
                    }
                    // Tail jump out of the function: charge the
                    // target like a call and stop this path.
                    if (cfg_.contains(target))
                        touch(st, depthOf(target), depth);
                    break;
                }
              case Op::kJalr:
              case Op::kMret:
              case Op::kInvalid:
                pc = end;  // path ends
                continue;
              case Op::kSwitchRf:
                // Hardware register-file swap: sp now belongs to the
                // other context.
                st = SpState{SpState::kUnknown, 0};
                pc += 4;
                continue;
              default:
                break;
            }
            if (!inRange(pc))
                break;

            if (classOf(d.op) == InsnClass::kBranch) {
                const Addr taken = pc + static_cast<Word>(d.imm);
                if (inRange(taken))
                    work.emplace_back(taken, st);
                pc += 4;
                continue;
            }

            if (writesRd(d.op) && d.rd == kSpReg) {
                if (d.op == Op::kAddi && d.rs1 == kSpReg) {
                    st.value += d.imm;
                } else if (d.op == Op::kLui) {
                    st = SpState{SpState::kAbsolute,
                                 static_cast<std::int64_t>(
                                     static_cast<std::int32_t>(
                                         static_cast<Word>(d.imm)
                                         << 12))};
                } else if (d.op == Op::kAuipc) {
                    st = SpState{SpState::kAbsolute,
                                 static_cast<std::int64_t>(
                                     static_cast<std::int32_t>(
                                         pc + (static_cast<Word>(d.imm)
                                               << 12)))};
                } else {
                    // Frame switch (`lw sp, ...`) or computed rebase.
                    st = SpState{SpState::kUnknown, 0};
                }
                touch(st, 0, depth);
            }
            pc += 4;
        }
    }
    return depth;
}

void
WcsuAnalyzer::checkOverflow(std::vector<Diagnostic> &out) const
{
    if (!converged_) {
        Diagnostic d;
        d.severity = Severity::kWarning;
        d.code = "wcsu-unanalyzable";
        d.message = "stack-usage walk exhausted its state budget; "
                    "overflow checking skipped";
        out.push_back(std::move(d));
        return;
    }

    // Worst task depth vs the smallest task-stack capacity. Every
    // task must additionally absorb the ISR add-on.
    unsigned worst = 0;
    std::string worstFn;
    for (const auto &[name, range] : program_.functions) {
        if (name.rfind("k_task_", 0) != 0)
            continue;
        const unsigned dep = entryDepth(name);
        if (dep >= worst) {
            worst = dep;
            worstFn = name;
        }
    }
    unsigned minCap = 0;
    std::string minRegion;
    for (const StackRegion &r : regions_) {
        if (r.name == "k_isr_stack")
            continue;
        if (minRegion.empty() || r.capacity() < minCap) {
            minCap = r.capacity();
            minRegion = r.name;
        }
    }
    if (!worstFn.empty() && !minRegion.empty() &&
        worst + isrAddOn() > minCap) {
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = "stack-overflow-risk";
        d.function = worstFn;
        d.message = csprintf(
            "worst-case stack usage %u bytes (task depth %u + isr "
            "add-on %u) exceeds the %u-byte capacity of %s",
            worst + isrAddOn(), worst, isrAddOn(), minCap,
            minRegion.c_str());
        out.push_back(std::move(d));
    }

    for (const StackRegion &r : regions_) {
        auto it = regionUsage_.find(r.name);
        if (it == regionUsage_.end() || it->second <= r.capacity())
            continue;
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = "stack-overflow-risk";
        d.message = csprintf(
            "rebased stack usage %u bytes exceeds the %u-byte "
            "capacity of %s", it->second, r.capacity(),
            r.name.c_str());
        out.push_back(std::move(d));
    }
}

} // namespace rtu
