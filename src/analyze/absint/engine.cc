#include "engine.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace rtu {

namespace {

// Caller-saved registers under the kernel convention verified by lint
// pass 2: t0-t2, t3-t6, a0-a7. ra is handled explicitly at calls.
constexpr unsigned kCallerSaved[] = {5, 6, 7, 10, 11, 12, 13, 14,
                                     15, 16, 17, 28, 29, 30, 31};

constexpr unsigned kSpReg = 2;
constexpr unsigned kRaReg = 1;
constexpr unsigned kA0Reg = 10;


/** Exact predicate on two concrete words. */
bool
concretePred(Op op, std::int64_t x, std::int64_t y)
{
    const auto a = static_cast<std::uint32_t>(x);
    const auto b = static_cast<std::uint32_t>(y);
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case Op::kBeq: return a == b;
      case Op::kBne: return a != b;
      case Op::kBlt: return sa < sb;
      case Op::kBge: return sa >= sb;
      case Op::kBltu: return a < b;
      case Op::kBgeu: return a >= b;
      default:
        panic("not a branch predicate: %s", opName(op));
    }
}

/** Predicate outcome when both operands are the same register. */
bool
predOnEqualOperands(Op op)
{
    switch (op) {
      case Op::kBeq: case Op::kBge: case Op::kBgeu: return true;
      case Op::kBne: case Op::kBlt: case Op::kBltu: return false;
      default:
        panic("not a branch predicate: %s", opName(op));
    }
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

} // namespace

// ---- RegState --------------------------------------------------------------

bool
RegState::operator==(const RegState &o) const
{
    if (live != o.live)
        return false;
    if (!live)
        return true;
    return v == o.v;
}

RegState
RegState::join(const RegState &a, const RegState &b)
{
    if (!a.live)
        return b;
    if (!b.live)
        return a;
    RegState out;
    out.live = true;
    for (unsigned i = 0; i < kNumSlots; ++i)
        out.v[i] = AbsVal::join(a.v[i], b.v[i]);
    return out;
}

RegState
RegState::widen(const RegState &prev, const RegState &next)
{
    if (!prev.live)
        return next;
    if (!next.live)
        return prev;
    RegState out;
    out.live = true;
    for (unsigned i = 0; i < kNumSlots; ++i)
        out.v[i] = AbsVal::widen(prev.v[i], next.v[i]);
    return out;
}

// ---- decisions -------------------------------------------------------------

std::optional<bool>
absDecide(Op op, const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return std::nullopt;
    if (a.hasSet && b.hasSet &&
        a.consts.size() * b.consts.size() <= 4 * AbsVal::kMaxConsts) {
        bool sawTrue = false, sawFalse = false;
        for (std::int64_t x : a.consts) {
            for (std::int64_t y : b.consts) {
                (concretePred(op, x, y) ? sawTrue : sawFalse) = true;
                if (sawTrue && sawFalse)
                    return std::nullopt;
            }
        }
        return sawTrue;
    }
    return Interval::decide(op, a.iv, b.iv);
}

// ---- engine ----------------------------------------------------------------

AbsintEngine::AbsintEngine(const Program &program,
                           const AbsintOptions &options)
    : program_(program), options_(options), cfg_(program)
{
    dataBase_ = program.dataBase;
    dataEnd_ = program.dataBase +
               static_cast<Addr>(program.data.size()) * 4;
    buildStackRanges();
    buildDataObjects();
    buildRegions();
}

void
AbsintEngine::buildDataObjects()
{
    std::vector<Addr> starts;
    for (const auto &[name, addr] : program_.symbols)
        if (addr >= dataBase_ && addr < dataEnd_)
            starts.push_back(addr);
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()),
                 starts.end());
    for (size_t i = 0; i < starts.size(); ++i) {
        const Addr begin = starts[i];
        const Addr end =
            i + 1 < starts.size() ? starts[i + 1] : dataEnd_;
        dataObjects_.emplace_back(begin, end);
        // One-word objects are scalars: the generators only ever
        // address them through a direct `la` (assumption list).
        if (end - begin <= 4)
            scalarCells_.insert(begin);
    }
    // Kernel-invariant clamp: the ready-priority index scalar stays a
    // valid k_ready_lists index (idle keeps priority 0 occupied, and
    // the runtime oracles check every list access in range), so the
    // select scan's abstract underflow cannot accumulate in the cell
    // and diverge the whole priority domain. List heads are 32-byte
    // nodes, the same generator layout contract that names them.
    const auto prio = program_.symbols.find("k_top_ready_prio");
    if (prio != program_.symbols.end()) {
        std::int64_t maxPrio = 31;
        const auto lists = program_.symbols.find("k_ready_lists");
        if (lists != program_.symbols.end()) {
            const Interval ext = objectExtent(lists->second);
            if (!ext.isBottom())
                maxPrio = (ext.hi + 1 - ext.lo) / 32 - 1;
        }
        invariantCells_[prio->second] = Interval::range(0, maxPrio);
    }
}

Interval
AbsintEngine::objectExtent(Addr a) const
{
    auto it = std::upper_bound(
        dataObjects_.begin(), dataObjects_.end(), a,
        [](Addr v, const std::pair<Addr, Addr> &o) {
            return v < o.first;
        });
    if (it == dataObjects_.begin())
        return Interval::bottom();
    --it;
    if (a >= it->second)
        return Interval::bottom();
    return Interval::range(it->first,
                           static_cast<std::int64_t>(it->second) - 1);
}

void
AbsintEngine::buildStackRanges()
{
    // Stack regions by the generator's naming contract: an array
    // symbol "X" paired with a top-marker symbol "X_top" immediately
    // after it, for X in {k_stack_<i>, k_isr_stack}. Programs without
    // these symbols (unit fixtures) simply have no stack window.
    for (const auto &[name, addr] : program_.symbols) {
        if (name != "k_isr_stack" && !(startsWith(name, "k_stack_") &&
                                       name.find("_top") == std::string::npos))
            continue;
        const auto top = program_.symbols.find(name + "_top");
        if (top == program_.symbols.end() || top->second <= addr)
            continue;
        stackRanges_.emplace_back(addr, top->second);
    }
    std::sort(stackRanges_.begin(), stackRanges_.end());
    for (const auto &[lo, hi] : stackRanges_)
        stackWindow_ = Interval::join(stackWindow_,
                                      Interval::range(lo, hi));
}

void
AbsintEngine::buildRegions()
{
    const Addr textEnd =
        program_.textBase + static_cast<Addr>(program_.text.size()) * 4;
    std::vector<Region> fns;
    for (const auto &[name, range] : program_.functions)
        fns.push_back({name, range.first, range.second, false});
    std::sort(fns.begin(), fns.end(),
              [](const Region &a, const Region &b) {
                  return a.begin < b.begin;
              });
    // Synthesize gap regions so fixture code outside any fnBegin()
    // still gets analyzed (rooted at the gap start).
    Addr cursor = program_.textBase;
    for (const Region &f : fns) {
        if (f.begin > cursor)
            regions_.push_back({"", cursor, f.begin, false});
        regions_.push_back(f);
        cursor = std::max(cursor, f.end);
    }
    if (cursor < textEnd)
        regions_.push_back({"", cursor, textEnd, false});

    for (const auto &[leader, bb] : cfg_.blocks())
        if (bb.term == TermKind::kCall)
            callTargets_.insert(bb.takenTarget);
    // A named region that is never called and is not a generator
    // entry point is dead code: skip it instead of analyzing it from
    // an unconstrained entry, which would poison the shared memory
    // with stores no execution performs. Nameless gap regions (unit
    // fixtures without fnBegin) always stay live.
    const auto entryPoint = [](const std::string &name) {
        return name == "_start" || name == "k_isr" ||
               name == "k_fatal_sync" || startsWith(name, "k_task_");
    };
    // Cross-region jumps (trap dispatch, shared tails) keep their
    // target live even without a call site.
    std::set<Addr> jumpEntries;
    for (const auto &[leader, bb] : cfg_.blocks()) {
        if (bb.term != TermKind::kJump && bb.term != TermKind::kBranch)
            continue;
        const Region *src = regionContaining(leader);
        const Region *dst = regionContaining(bb.takenTarget);
        if (src && dst && src != dst)
            jumpEntries.insert(dst->begin);
    }
    for (Region &r : regions_) {
        r.root = !callTargets_.count(r.begin);
        if (r.root && !r.name.empty() && !entryPoint(r.name) &&
            !jumpEntries.count(r.begin))
            r.analyzed = false;
    }
}

RegState
AbsintEngine::rootEntry() const
{
    RegState st;
    st.live = true;
    st.v[0] = AbsVal::constant(0);
    // Root code (boot, trap entry, task bodies) runs with sp inside
    // some generated stack region; see the header's assumption list.
    if (!stackWindow_.isBottom())
        st.v[kSpReg] = AbsVal::fromInterval(stackWindow_);
    return st;
}

const AbsintEngine::Region *
AbsintEngine::regionContaining(Addr pc) const
{
    for (const Region &r : regions_)
        if (pc >= r.begin && pc < r.end)
            return &r;
    return nullptr;
}

bool
AbsintEngine::inData(Addr a) const
{
    return a >= dataBase_ && a < dataEnd_;
}

bool
AbsintEngine::inStack(Addr a) const
{
    for (const auto &[lo, hi] : stackRanges_) {
        if (a < lo)
            return false;
        if (a < hi)
            return true;
    }
    return false;
}

AbsVal
AbsintEngine::cellValue(Addr addr) const
{
    const Addr a = addr & ~Addr{3};
    if (!inData(a) || inStack(a))
        return AbsVal::top();
    for (const auto &[lo, hi] : havocRanges_)
        if (a >= lo && a <= hi)
            return AbsVal::top();
    const auto it = cells_.find(a);
    if (it != cells_.end())
        return it->second;
    const Word init = program_.data[(a - dataBase_) / 4];
    return AbsVal::constant(static_cast<std::int32_t>(init));
}

void
AbsintEngine::joinCell(Addr cell, const AbsVal &val)
{
    AbsVal v = val;
    // Kernel-invariant clamp (assumption list): values outside the
    // documented invariant cannot be committed to the cell at runtime.
    const auto inv = invariantCells_.find(cell);
    if (inv != invariantCells_.end()) {
        v = v.refined(inv->second);
        if (v.isBottom())
            return;
    }
    const AbsVal cur = cellValue(cell);
    AbsVal next = AbsVal::join(cur, v);
    if (round_ >= options_.widenRound)
        next = AbsVal::widen(cur, next);
    if (!(next == cur)) {
        cells_[cell] = next;
        changed_ = true;
    }
}

AbsVal
AbsintEngine::loadWord(const AbsVal &addr) const
{
    if (addr.isBottom())
        return AbsVal::bottom();
    if (addr.hasSet) {
        const bool computed = addr.consts.size() > 1;
        AbsVal acc = AbsVal::bottom();
        for (std::int64_t c : addr.consts) {
            if (c == 0)
                continue;  // null is never dereferenced (assumption)
            const Addr a = static_cast<Addr>(c);
            if (computed &&
                (!inData(a) || (a & 3) || scalarCells_.count(a))) {
                // Computed pointer sets only address multi-word data
                // objects (assumption list): a scalar, misaligned, or
                // out-of-image member is an index-underflow artifact
                // of the abstraction and cannot be the runtime
                // address -- drop it instead of degrading to top.
                continue;
            }
            if (!inData(a) || inStack(a) || (a & 3)) {
                acc = AbsVal::join(acc, AbsVal::top());
                continue;
            }
            acc = AbsVal::join(acc, cellValue(a));
        }
        return acc.isBottom() ? AbsVal::top() : acc;
    }
    const Interval &iv = addr.iv;
    const Interval data = Interval::range(dataBase_,
                                          static_cast<std::int64_t>(dataEnd_) - 1);
    const Interval m = Interval::meet(iv, data);
    if (m.isBottom())
        return AbsVal::top();  // device / csr-mapped read
    if (!(iv.lo >= data.lo && iv.hi <= data.hi))
        return AbsVal::top();  // partially outside the data image
    for (const auto &[lo, hi] : stackRanges_)
        if (!(iv.hi < static_cast<std::int64_t>(lo) ||
              iv.lo >= static_cast<std::int64_t>(hi)))
            return AbsVal::top();  // may read the stack
    const Addr first = static_cast<Addr>(m.lo) & ~Addr{3};
    const Addr last = static_cast<Addr>(m.hi) & ~Addr{3};
    // A word-multiple congruence on the address skips the cells the
    // access provably cannot touch (e.g. one struct field per array
    // element instead of every word of the array).
    const Addr step = addr.stride > 4 && addr.stride % 4 == 0
                          ? static_cast<Addr>(addr.stride)
                          : 4;
    if ((last - first) / step + 1 > 64)
        return AbsVal::top();
    AbsVal acc = AbsVal::bottom();
    for (Addr a = first; a <= last; a += step)
        acc = AbsVal::join(acc, cellValue(a));
    return acc.isBottom() ? AbsVal::top() : acc;
}

AbsVal
AbsintEngine::loadSized(const AbsVal &addr, Op op) const
{
    switch (op) {
      case Op::kLw:
        return loadWord(addr);
      case Op::kLb:
        return AbsVal::fromInterval(Interval::range(-128, 127));
      case Op::kLbu:
        return AbsVal::fromInterval(Interval::range(0, 255));
      case Op::kLh:
        return AbsVal::fromInterval(Interval::range(-32768, 32767));
      case Op::kLhu:
        return AbsVal::fromInterval(Interval::range(0, 65535));
      default:
        return AbsVal::top();
    }
}

void
AbsintEngine::storeWord(const AbsVal &addr, const AbsVal &val)
{
    if (addr.isBottom() || val.isBottom())
        return;  // unreachable store
    if (addr.hasSet) {
        const bool computed = addr.consts.size() > 1;
        for (std::int64_t c : addr.consts) {
            if (c == 0)
                continue;
            const Addr a = static_cast<Addr>(c);
            if (!inData(a) || inStack(a))
                continue;  // device write or stack summary
            if (computed && scalarCells_.count(a))
                continue;  // underflow artifact (assumption list)
            joinCell(a, val);
        }
        return;
    }
    const Interval &iv = addr.iv;
    // A non-singleton interval address that may point into a stack
    // region is a stack pointer by the engine's environment
    // assumptions; kernel data cells are addressed exactly.
    for (const auto &[lo, hi] : stackRanges_)
        if (!(iv.hi < static_cast<std::int64_t>(lo) ||
              iv.lo >= static_cast<std::int64_t>(hi)))
            return;
    const Interval data = Interval::range(dataBase_,
                                          static_cast<std::int64_t>(dataEnd_) - 1);
    const Interval m = Interval::meet(iv, data);
    if (m.isBottom())
        return;
    std::int64_t lo = m.lo;
    Addr step = 4;
    if (addr.stride > 4 && addr.stride % 4 == 0) {
        // Re-align the clipped bound to the address congruence so the
        // stride walk below starts on a reachable cell.
        step = static_cast<Addr>(addr.stride);
        const std::int64_t off = (iv.lo - lo) % addr.stride;
        lo += (off + addr.stride) % addr.stride;
        if (lo > m.hi)
            return;
    }
    const Addr first = static_cast<Addr>(lo) & ~Addr{3};
    const Addr last = static_cast<Addr>(m.hi) & ~Addr{3};
    if ((last - first) / step + 1 <= 64) {
        for (Addr a = first; a <= last; a += step)
            joinCell(a, val);
        return;
    }
    // Wide unresolved store: havoc the whole range once.
    for (const auto &[lo, hi] : havocRanges_)
        if (first >= lo && last <= hi)
            return;
    havocRanges_.emplace_back(first, last);
    changed_ = true;
}

AbsVal
AbsintEngine::value(const RegState &st, unsigned reg) const
{
    if (reg == 0)
        return AbsVal::constant(0);
    return st.v[reg];
}

void
AbsintEngine::applyInsn(Addr pc, const DecodedInsn &d, RegState &st)
{
    const auto setRd = [&](const AbsVal &v) {
        if (d.rd != 0)
            st.v[d.rd] = v;
    };
    switch (d.op) {
      case Op::kLui:
        setRd(AbsVal::constant(static_cast<std::int32_t>(
            static_cast<Word>(d.imm) << 12)));
        return;
      case Op::kAuipc:
        setRd(AbsVal::constant(static_cast<std::int32_t>(
            pc + (static_cast<Word>(d.imm) << 12))));
        return;
      case Op::kLb: case Op::kLh: case Op::kLw:
      case Op::kLbu: case Op::kLhu: {
        const AbsVal addr = absEval(Op::kAdd, value(st, d.rs1),
                                    AbsVal::constant(d.imm));
        setRd(loadSized(addr, d.op));
        return;
      }
      case Op::kSb: case Op::kSh: case Op::kSw: {
        const AbsVal addr = absEval(Op::kAdd, value(st, d.rs1),
                                    AbsVal::constant(d.imm));
        // Sub-word stores degrade the containing cell.
        storeWord(addr, d.op == Op::kSw ? value(st, d.rs2)
                                        : AbsVal::top());
        return;
      }
      case Op::kAddi: case Op::kSlti: case Op::kSltiu:
      case Op::kXori: case Op::kOri: case Op::kAndi:
      case Op::kSlli: case Op::kSrli: case Op::kSrai:
        setRd(absEval(d.op, value(st, d.rs1), AbsVal::constant(d.imm)));
        return;
      case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
      case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
      case Op::kOr: case Op::kAnd:
      case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
      case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu: {
        const AbsVal a = value(st, d.rs1);
        const AbsVal b = value(st, d.rs2);
        AbsVal r = absEval(d.op, a, b);
        // Indexed addressing stays inside the addressed object
        // (assumption list): when exactly one operand of an `add` is
        // a data-symbol base, clamp the result to that symbol's
        // extent -- interval results are met with the extent, set
        // results have their underflowed members filtered -- so a
        // diverged index cannot alias the neighbouring objects.
        if (d.op == Op::kAdd && !r.isBottom()) {
            const AbsVal *base = nullptr;
            if (a.isConst() && !b.isConst() &&
                inData(static_cast<Addr>(a.constValue())))
                base = &a;
            else if (b.isConst() && !a.isConst() &&
                     inData(static_cast<Addr>(b.constValue())))
                base = &b;
            if (base) {
                const Interval ext =
                    objectExtent(static_cast<Addr>(base->constValue()));
                const AbsVal clamped =
                    ext.isBottom() ? AbsVal::bottom() : r.refined(ext);
                if (!clamped.isBottom())
                    r = clamped;
            }
        }
        setRd(r);
        return;
      }
      case Op::kCsrrw: {
        const AbsVal old = d.csr == csr::kMscratch
                               ? st.v[RegState::kMscratchSlot]
                               : AbsVal::top();
        if (d.csr == csr::kMscratch)
            st.v[RegState::kMscratchSlot] = value(st, d.rs1);
        setRd(old);
        return;
      }
      case Op::kCsrrs: case Op::kCsrrc: {
        const AbsVal old = d.csr == csr::kMscratch
                               ? st.v[RegState::kMscratchSlot]
                               : AbsVal::top();
        if (d.csr == csr::kMscratch && d.rs1 != 0)
            st.v[RegState::kMscratchSlot] = AbsVal::top();
        setRd(old);
        return;
      }
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
        if (d.csr == csr::kMscratch)
            st.v[RegState::kMscratchSlot] = AbsVal::top();
        setRd(AbsVal::top());
        return;
      case Op::kGetHwSched:
        // Only ids previously inserted into the hardware lists can
        // come back out (assumption list in the header).
        setRd(hwListIds_);
        return;
      case Op::kSetContextId:
      case Op::kAddReady: {
        const AbsVal next = AbsVal::join(hwListIds_, value(st, d.rs1));
        if (!(next == hwListIds_)) {
            hwListIds_ = round_ >= options_.widenRound
                             ? AbsVal::widen(hwListIds_, next)
                             : next;
            changed_ = true;
        }
        return;
      }
      case Op::kSemTake: case Op::kSemGive:
        setRd(AbsVal::fromInterval(Interval::range(0, 1)));
        return;
      case Op::kSwitchRf: {
        // The hardware swaps in another task's register file.
        RegState fresh = rootEntry();
        fresh.v[RegState::kMscratchSlot] = st.v[RegState::kMscratchSlot];
        st = fresh;
        return;
      }
      case Op::kAddDelay: case Op::kRmTask:
      case Op::kFence: case Op::kEcall: case Op::kEbreak:
      case Op::kWfi: case Op::kMret:
        return;
      default:
        // jal/jalr are block terminators, handled by transferBlock.
        return;
    }
}

void
AbsintEngine::recordCallEntry(Addr target, const RegState &st)
{
    const Region *r = regionContaining(target);
    if (!r || r->begin != target)
        return;  // call into a region interior: no model
    auto &cur = entryStates_[target];
    RegState next = RegState::join(cur, st);
    if (round_ >= options_.widenRound)
        next = RegState::widen(cur, next);
    if (!(next == cur)) {
        cur = next;
        changed_ = true;
    }
}

void
AbsintEngine::recordJumpEntry(Addr target, const RegState &st)
{
    recordCallEntry(target, st);
}

void
AbsintEngine::analyzeRegion(const Region &region, bool record)
{
    const auto eit = entryStates_.find(region.begin);
    if (eit == entryStates_.end() || !eit->second.live)
        return;
    const RegState entry = eit->second;

    // Region blocks and loop heads (targets of intra-region back
    // edges), for widening placement.
    std::vector<Addr> leaders;
    std::set<Addr> heads;
    for (auto it = cfg_.blocks().lower_bound(region.begin);
         it != cfg_.blocks().end() && it->first < region.end; ++it) {
        leaders.push_back(it->first);
        for (Addr s : it->second.succs)
            if (s <= it->first && s >= region.begin)
                heads.insert(s);
    }

    std::map<Addr, RegState> in;
    std::map<std::pair<Addr, Addr>, RegState> edgeOut;
    std::map<Addr, RegState> term;
    std::map<Addr, unsigned> visits;

    in[region.begin] = entry;

    // One block transfer: returns successor edge states; applies
    // global side effects (stores, call entries, return values).
    const auto transfer =
        [&](Addr leader, const RegState &inState,
            std::vector<std::pair<Addr, RegState>> &outs) {
        const BasicBlock &bb = cfg_.blockAt(leader);
        RegState st = inState;
        const bool bodyIncludesLast = bb.term == TermKind::kFallThrough ||
                                      bb.term == TermKind::kFallOffText;
        const Addr bodyEnd = bodyIncludesLast ? bb.end : bb.termPc();
        for (Addr pc = bb.begin; pc < bodyEnd; pc += 4)
            applyInsn(pc, cfg_.insnAt(pc), st);
        term[leader] = st;

        const auto emit = [&](Addr target, const RegState &out) {
            if (target >= region.begin && target < region.end &&
                cfg_.blockContaining(target))
                outs.emplace_back(target, out);
            else
                recordJumpEntry(target, out);
        };

        switch (bb.term) {
          case TermKind::kFallThrough:
            emit(bb.end, st);
            break;
          case TermKind::kBranch: {
            const Addr tpc = bb.termPc();
            const DecodedInsn &d = cfg_.insnAt(tpc);
            std::optional<bool> dec;
            if (d.rs1 == d.rs2)
                dec = predOnEqualOperands(d.op);
            else
                dec = absDecide(d.op, value(st, d.rs1), value(st, d.rs2));
            if (dec.value_or(true)) {  // taken edge not refuted
                RegState ts = st;
                if (d.rs1 != d.rs2) {
                    AbsVal a = value(ts, d.rs1), b = value(ts, d.rs2);
                    refineByBranch(d.op, true, a, b);
                    if (a.isBottom() || b.isBottom()) {
                        dec = false;
                    } else {
                        if (d.rs1 != 0)
                            ts.v[d.rs1] = a;
                        if (d.rs2 != 0)
                            ts.v[d.rs2] = b;
                    }
                }
                if (dec.value_or(true))
                    emit(bb.takenTarget, ts);
            }
            if (!dec.value_or(false)) {  // fall-through not refuted
                RegState fs = st;
                if (d.rs1 != d.rs2) {
                    AbsVal a = value(fs, d.rs1), b = value(fs, d.rs2);
                    refineByBranch(d.op, false, a, b);
                    if (a.isBottom() || b.isBottom()) {
                        dec = true;
                    } else {
                        if (d.rs1 != 0)
                            fs.v[d.rs1] = a;
                        if (d.rs2 != 0)
                            fs.v[d.rs2] = b;
                    }
                }
                if (!dec.value_or(false))
                    emit(bb.end, fs);
            }
            if (record) {
                // Overwrite, never accumulate: early worklist visits
                // see pre-fixpoint states (a loop's first iterate can
                // "refute" its own exit); only the verdict of the
                // final visit — the converged input — is a fact.
                infeasibleFall_.erase(tpc);
                infeasibleTaken_.erase(tpc);
                if (dec && *dec)
                    infeasibleFall_.insert(tpc);
                else if (dec && !*dec)
                    infeasibleTaken_.insert(tpc);
            }
            break;
          }
          case TermKind::kJump:
            emit(bb.takenTarget, st);
            break;
          case TermKind::kCall: {
            const Addr tpc = bb.termPc();
            RegState callee = st;
            callee.v[kRaReg] = AbsVal::constant(tpc + 4);
            recordCallEntry(bb.takenTarget, callee);

            RegState cont = st;
            for (unsigned r : kCallerSaved)
                cont.v[r] = AbsVal::top();
            cont.v[RegState::kMscratchSlot] = AbsVal::top();
            cont.v[kRaReg] = AbsVal::constant(tpc + 4);
            const Region *cr = regionContaining(bb.takenTarget);
            const auto rv = cr ? returnValues_.find(cr->begin)
                               : returnValues_.end();
            // No recorded `ret` yet means the callee (so far) never
            // returns; the continuation stays unreachable until a
            // later round proves otherwise.
            cont.v[kA0Reg] = rv != returnValues_.end()
                                 ? rv->second
                                 : AbsVal::bottom();
            if (!cont.v[kA0Reg].isBottom())
                emit(bb.end, cont);
            break;
          }
          case TermKind::kReturn: {
            // First `ret` seen for the region: start the summary from
            // bottom (a default AbsVal is top, which would pin the
            // monotone summary there forever).
            auto ins = returnValues_.try_emplace(region.begin,
                                                 AbsVal::bottom());
            AbsVal &rv = ins.first->second;
            const AbsVal next = AbsVal::join(rv, value(st, kA0Reg));
            if (!(next == rv)) {
                rv = round_ >= options_.widenRound
                         ? AbsVal::widen(rv, next)
                         : next;
                changed_ = true;
            }
            break;
          }
          case TermKind::kTrapReturn:
          case TermKind::kIndirect:
          case TermKind::kFallOffText:
            break;
        }
    };

    // Phase 1: ascending worklist iteration with widening at heads.
    std::deque<Addr> work{region.begin};
    std::set<Addr> queued{region.begin};
    unsigned budget = options_.blockVisitBudget;
    while (!work.empty()) {
        if (budget-- == 0) {
            converged_ = false;
            break;
        }
        const Addr leader = work.front();
        work.pop_front();
        queued.erase(leader);
        std::vector<std::pair<Addr, RegState>> outs;
        transfer(leader, in[leader], outs);
        for (auto &[succ, os] : outs) {
            edgeOut[{leader, succ}] = os;
            auto prevIt = in.find(succ);
            const RegState prev =
                prevIt != in.end() ? prevIt->second : RegState{};
            RegState next = RegState::join(prev, os);
            if (heads.count(succ) &&
                ++visits[succ] > options_.wideningDelay)
                next = RegState::widen(prev, next);
            if (!(next == prev)) {
                in[succ] = next;
                if (queued.insert(succ).second)
                    work.push_back(succ);
            }
        }
    }

    // Phase 2: bounded descending sweeps (narrowing) recomputing each
    // reachable block's entry from its predecessor edges.
    for (unsigned sweep = 0; sweep < options_.narrowSweeps; ++sweep) {
        for (Addr leader : leaders) {
            RegState newIn =
                leader == region.begin ? entry : RegState{};
            for (const auto &[edge, os] : edgeOut)
                if (edge.second == leader)
                    newIn = RegState::join(newIn, os);
            if (!newIn.live)
                continue;
            in[leader] = newIn;
            std::vector<std::pair<Addr, RegState>> outs;
            // Drop stale edges from this block before re-emitting.
            for (auto it = edgeOut.lower_bound({leader, 0});
                 it != edgeOut.end() && it->first.first == leader;)
                it = edgeOut.erase(it);
            transfer(leader, newIn, outs);
            for (auto &[succ, os] : outs)
                edgeOut[{leader, succ}] = os;
        }
    }

    if (record) {
        for (auto &[leader, st] : in)
            if (st.live)
                blockEntries_[leader] = st;
        for (auto &[leader, st] : term)
            termStates_[leader] = st;
        for (auto &[edge, st] : edgeOut)
            edgeStates_[edge] = st;
    }
}

void
AbsintEngine::run()
{
    converged_ = true;
    for (const Region &r : regions_)
        if (r.root && r.analyzed)
            entryStates_[r.begin] = rootEntry();

    unsigned round = 0;
    for (; round < options_.maxOuterRounds; ++round) {
        round_ = round;
        changed_ = false;
        for (const Region &r : regions_)
            if (r.analyzed)
                analyzeRegion(r, false);
        if (!changed_)
            break;
    }
    if (round == options_.maxOuterRounds)
        converged_ = false;

    // Final recording pass over the converged global state. Branch
    // infeasibility is only trusted from this pass (and only when the
    // outer fixpoint converged).
    for (const Region &r : regions_)
        if (r.analyzed)
            analyzeRegion(r, true);
    if (!converged_) {
        infeasibleTaken_.clear();
        infeasibleFall_.clear();
    }
}

const RegState *
AbsintEngine::blockEntry(Addr leader) const
{
    const auto it = blockEntries_.find(leader);
    return it != blockEntries_.end() ? &it->second : nullptr;
}

const RegState *
AbsintEngine::termState(Addr leader) const
{
    const auto it = termStates_.find(leader);
    return it != termStates_.end() ? &it->second : nullptr;
}

const RegState *
AbsintEngine::edgeState(Addr from, Addr to) const
{
    const auto it = edgeStates_.find({from, to});
    return it != edgeStates_.end() ? &it->second : nullptr;
}

} // namespace rtu
