/**
 * @file
 * Whole-program worst-case stack usage (WCSU).
 *
 * Composes per-function stack depths over the call graph: each
 * function's walk tracks the stack pointer symbolically (entry-
 * relative delta, absolute after an `la sp, <region>_top` rebase, or
 * unknown after a frame switch) and charges callee depths at every
 * call site. The result is, per task entry function, the worst number
 * of bytes ever live below its entry stack pointer -- including the
 * ISR add-on (the trap handler's own entry-relative depth, which
 * lands on whatever stack the interrupted task was running on) -- and
 * per stack region, the worst absolute usage reached through rebases
 * (the ISR stack under the store-to-context configurations, plus
 * boot).
 *
 * Consumers:
 *  - the linter compares usage against the generated region
 *    capacities ("stack-overflow-risk");
 *  - the kernel generator sizes task stacks from these bounds when
 *    KernelParams::useDerivedStackSize is set;
 *  - recursion makes depths unbounded and is reported as
 *    "wcsu-recursion".
 */

#ifndef RTU_ANALYZE_ABSINT_WCSU_HH
#define RTU_ANALYZE_ABSINT_WCSU_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/cfg.hh"
#include "analyze/diag.hh"

namespace rtu {

struct WcsuOptions
{
    /** Per-program (pc, sp-state) visit budget (safety valve). */
    unsigned stateBudget = 50'000;
};

class WcsuAnalyzer
{
  public:
    explicit WcsuAnalyzer(const Cfg &cfg, const WcsuOptions &options = {});

    /** Analyze every declared function. Call once. */
    void run();

    /** False when the visit budget was exhausted; results are then
     *  partial and the overflow check degrades to a warning. */
    bool converged() const { return converged_; }

    /**
     * Worst bytes live below the entry stack pointer of @p fn,
     * including everything it calls. 0 for unknown functions.
     */
    unsigned entryDepth(const std::string &fn) const;

    /**
     * Bytes every task stack must reserve on top of the task's own
     * depth: the trap handler's entry-relative depth (its frame lands
     * on the interrupted stack) plus any depth consumed below an
     * unresolvable stack-pointer rebase.
     */
    unsigned isrAddOn() const;

    /** A generated stack region ("k_stack_3", "k_isr_stack"). */
    struct StackRegion
    {
        std::string name;
        Addr base = 0;
        Addr top = 0;  ///< address of the <name>_top word

        unsigned capacity() const
        {
            return static_cast<unsigned>(top - base);
        }
    };
    const std::vector<StackRegion> &stackRegions() const
    {
        return regions_;
    }

    /** Worst absolute usage per region reached through `la sp`
     *  rebases (bytes below the region top). */
    const std::map<std::string, unsigned> &regionUsage() const
    {
        return regionUsage_;
    }

    /** Structural findings from the walk (recursion, budget). */
    const std::vector<Diagnostic> &diags() const { return diags_; }

    /**
     * Compare every task's worst depth (entry depth of its
     * k_task_* function plus the ISR add-on) against the smallest
     * task-stack capacity, and rebase usage against each region's
     * capacity; append "stack-overflow-risk" errors to @p out.
     */
    void checkOverflow(std::vector<Diagnostic> &out) const;

  private:
    struct FnSummary
    {
        unsigned depth = 0;  ///< entry-relative worst depth
        bool done = false;
    };

    struct SpState
    {
        enum Mode : std::uint8_t { kEntryRel, kAbsolute, kUnknown };
        Mode mode = kEntryRel;
        std::int64_t value = 0;

        bool operator<(const SpState &o) const
        {
            return mode != o.mode ? mode < o.mode : value < o.value;
        }
    };

    unsigned depthOf(Addr entry);
    unsigned walkFunction(Addr entry, Addr begin, Addr end);
    void touch(const SpState &st, std::int64_t extra, unsigned &depth);

    const Cfg &cfg_;
    const Program &program_;
    WcsuOptions options_;

    std::vector<StackRegion> regions_;
    std::map<Addr, FnSummary> summaries_;
    std::set<Addr> inProgress_;
    std::map<std::string, unsigned> regionUsage_;
    unsigned unknownExtra_ = 0;
    unsigned statesSeen_ = 0;
    bool converged_ = true;
    std::vector<Diagnostic> diags_;
};

} // namespace rtu

#endif // RTU_ANALYZE_ABSINT_WCSU_HH
