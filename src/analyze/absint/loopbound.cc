/**
 * @file
 * Loop-bound inference: natural-loop enumeration plus three bound
 * recognizers evaluated over the engine's final abstract states.
 *
 *  R1 (guarded counting loop): a register with exactly one in-loop
 *     definition `addi r, r, c` and an exit guard comparing r against
 *     an abstract operand. The trip count follows from the entry
 *     interval of r, the step c and the guard's continue region. Both
 *     the stepping block and the guard block must dominate the latch
 *     (every iteration steps and is tested), or the arithmetic says
 *     nothing about the back edge.
 *
 *  R3 (sentinel list walk): an exit guard `w == s` (exit on equality)
 *     against a fixed list sentinel, where every non-call definition
 *     of w inside the loop is a load. The sentinel operand must be
 *     constant at the guard or a loop-invariant in-data pointer set
 *     (a wait-list head reached through an object argument). The
 *     walker must either provably stay inside the data section, or
 *     the loop must have one of the two list-walk shapes:
 *       - advance: every load defining w is `lw w, off(w)` -- each
 *         continue follows one link;
 *       - drain: every load defining w is `lw w, off(s)` in the guard
 *         block (the head is re-read each iteration) and the body
 *         re-points an `off` link through another register (the head
 *         unlink) -- each continue removes one node.
 *     In both shapes the runtime list oracles (no cycles, a node is
 *     on at most one list) bound the walk by the number of registered
 *     tasks -- counted as the distinct non-null TCB pointers the
 *     abstract memory records in k_task_table.
 *
 *  R2 (unguarded countdown, fallback): a single `addi r, r, c` with
 *     c < 0 stepping a register whose entry interval is non-negative.
 *     Assumes the loop's consumer exits at or before zero (kernel
 *     invariant: priorities and indices are non-negative, enforced by
 *     the scheduler-state runtime oracles), giving ceil(E.hi / |c|).
 *
 * R1/R3 are sound under the engine's environment assumptions alone;
 * R2 additionally leans on the non-negative-counter invariant and is
 * only used when neither R1 nor R3 matches.
 */

#include <algorithm>
#include <array>
#include <set>

#include "analyze/absint/loopbound.hh"
#include "asm/disasm.hh"
#include "common/logging.hh"

namespace rtu {

namespace {

using I64 = std::int64_t;

constexpr unsigned kCallerSaved[] = {1,  5,  6,  7,  10, 11, 12, 13,
                                     14, 15, 16, 17, 28, 29, 30, 31};

/** Per-register definition census over one loop body. */
struct DefInfo
{
    std::array<unsigned, 32> loadDefs{};
    std::array<unsigned, 32> stepDefs{};  ///< addi r, r, c
    std::array<unsigned, 32> otherDefs{};
    std::array<unsigned, 32> clobbers{};  ///< via in-loop calls
    std::array<I64, 32> stepC{};
    std::array<Addr, 32> stepBlock{};  ///< leader of the stepping block
    bool analyzable = true;
};

struct Guard
{
    Addr leader = 0;
    Addr termPc = 0;
    DecodedInsn d{};
    bool exitOnTaken = false;
};

struct Loop
{
    Addr head = 0;
    Addr latch = 0;  ///< latch block leader
    Addr backPc = 0;
    std::set<Addr> blocks;  ///< member leaders
};

class BoundInferrer
{
  public:
    BoundInferrer(const AbsintEngine &engine,
                  const LoopBoundOptions &options, LoopBoundResult &out)
        : engine_(engine), cfg_(engine.cfg()),
          program_(engine.program()), options_(options), out_(out)
    {
        for (const auto &[leader, bb] : cfg_.blocks())
            for (Addr s : bb.succs)
                preds_[s].push_back(leader);
    }

    void
    run()
    {
        if (!engine_.converged()) {
            for (const auto &[pc, bound] : program_.loopBounds)
                diag(Severity::kWarning, "loop-bound-unverified", pc,
                     csprintf("abstract interpretation did not "
                              "converge; annotated bound %u is "
                              "unchecked", bound));
            return;
        }

        std::set<Addr> backEdges;
        for (const auto &[leader, bb] : cfg_.blocks()) {
            if (bb.term != TermKind::kJump && bb.term != TermKind::kBranch)
                continue;
            if (bb.takenTarget == 0 || bb.takenTarget > bb.termPc())
                continue;
            backEdges.insert(bb.termPc());
            processBackEdge(leader, bb);
        }

        // Annotations that do not sit on any backward edge cannot be
        // checked against a loop trip count.
        for (const auto &[pc, bound] : program_.loopBounds) {
            if (backEdges.count(pc))
                continue;
            diag(Severity::kWarning, "loop-bound-unverified", pc,
                 csprintf("annotated bound %u is not attached to a "
                          "backward edge; nothing to verify", bound));
        }
    }

  private:
    void
    diag(Severity severity, const std::string &code, Addr pc,
         const std::string &message)
    {
        Diagnostic d;
        d.severity = severity;
        d.code = code;
        d.pc = pc;
        d.hasPc = true;
        d.function = program_.functionAt(pc);
        d.insn = cfg_.contains(pc) ? disassemble(cfg_.insnAt(pc).raw) : "";
        d.message = message;
        out_.diags.push_back(std::move(d));
    }

    void
    processBackEdge(Addr leader, const BasicBlock &bb)
    {
        const Addr head = bb.takenTarget;
        const Addr backPc = bb.termPc();
        if (cfg_.isClosedLoop(head))
            return;  // terminal idle/fatal parks need no bound

        const AbsintEngine::Region *region = regionOf(head);
        // Dead code (never-called, non-entry-point regions) has no
        // abstract states and never executes: nothing to verify.
        if (region && !region->analyzed)
            return;

        const bool annotated = cfg_.hasLoopBound(backPc);
        const unsigned ann = annotated ? cfg_.loopBound(backPc) : 0;
        std::optional<I64> inferred;
        if (region && leader >= region->begin && leader < region->end) {
            Loop loop = naturalLoop(head, leader, *region);
            loop.backPc = backPc;
            inferred = inferOne(loop);
        }
        if (inferred && *inferred >= 0 &&
            *inferred <= static_cast<I64>(options_.maxUsefulBound)) {
            out_.inferred[backPc] = static_cast<unsigned>(*inferred);
        } else {
            inferred.reset();
        }

        if (!annotated)
            return;
        if (!inferred) {
            diag(Severity::kWarning, "loop-bound-unverified", backPc,
                 csprintf("annotated bound %u could not be verified: "
                          "no bound recognizer matched this loop", ann));
        } else if (*inferred > static_cast<I64>(ann)) {
            diag(Severity::kError, "loop-bound-too-tight", backPc,
                 csprintf("annotated bound %u is below the inferred "
                          "worst case %lld: WCET budgets derived from "
                          "this annotation are unsound", ann,
                          static_cast<long long>(*inferred)));
        } else if (*inferred < static_cast<I64>(ann) && options_.pedantic) {
            diag(Severity::kWarning, "loop-bound-loose", backPc,
                 csprintf("annotated bound %u exceeds the inferred "
                          "worst case %lld; the WCET is sound but "
                          "pessimistic", ann,
                          static_cast<long long>(*inferred)));
        }
    }

    const AbsintEngine::Region *
    regionOf(Addr pc) const
    {
        for (const auto &r : engine_.regions())
            if (pc >= r.begin && pc < r.end)
                return &r;
        return nullptr;
    }

    Loop
    naturalLoop(Addr head, Addr latch, const AbsintEngine::Region &region)
    {
        Loop loop;
        loop.head = head;
        loop.latch = latch;
        loop.blocks = {head, latch};
        std::vector<Addr> stack{latch};
        while (!stack.empty()) {
            const Addr b = stack.back();
            stack.pop_back();
            if (b == head)
                continue;
            auto it = preds_.find(b);
            if (it == preds_.end())
                continue;
            for (Addr p : it->second) {
                if (p < region.begin || p >= region.end)
                    continue;
                if (loop.blocks.insert(p).second)
                    stack.push_back(p);
            }
        }
        return loop;
    }

    /** Every head-to-latch path inside the loop passes through @p blk. */
    bool
    dominatesLatch(const Loop &loop, Addr blk) const
    {
        if (blk == loop.head || blk == loop.latch)
            return true;
        std::vector<Addr> stack{loop.head};
        std::set<Addr> seen{loop.head, blk};
        while (!stack.empty()) {
            const Addr b = stack.back();
            stack.pop_back();
            if (b == loop.latch)
                return false;
            for (Addr s : cfg_.blockAt(b).succs)
                if (loop.blocks.count(s) && seen.insert(s).second)
                    stack.push_back(s);
        }
        return true;
    }

    DefInfo
    scanDefs(const Loop &loop) const
    {
        DefInfo di;
        for (Addr leader : loop.blocks) {
            const BasicBlock &bb = cfg_.blockAt(leader);
            switch (bb.term) {
              case TermKind::kReturn:
              case TermKind::kTrapReturn:
              case TermKind::kIndirect:
              case TermKind::kFallOffText:
                di.analyzable = false;
                return di;
              case TermKind::kCall:
                for (unsigned r : kCallerSaved)
                    ++di.clobbers[r];
                break;
              default:
                break;
            }
            for (Addr pc = bb.begin; pc < bb.end; pc += 4) {
                const DecodedInsn &d = cfg_.insnAt(pc);
                if (!writesRd(d.op) || d.rd == 0)
                    continue;
                if (d.op == Op::kJal)
                    continue;  // call terminator counted as clobber
                if (classOf(d.op) == InsnClass::kLoad) {
                    ++di.loadDefs[d.rd];
                } else if (d.op == Op::kAddi && d.rs1 == d.rd &&
                           d.imm != 0) {
                    ++di.stepDefs[d.rd];
                    di.stepC[d.rd] = d.imm;
                    di.stepBlock[d.rd] = leader;
                } else {
                    ++di.otherDefs[d.rd];
                }
            }
        }
        return di;
    }

    std::vector<Guard>
    collectGuards(const Loop &loop) const
    {
        std::vector<Guard> guards;
        for (Addr leader : loop.blocks) {
            const BasicBlock &bb = cfg_.blockAt(leader);
            if (bb.term != TermKind::kBranch)
                continue;
            const bool takenIn = loop.blocks.count(bb.takenTarget) != 0;
            const bool fallIn = loop.blocks.count(bb.end) != 0;
            if (takenIn == fallIn)
                continue;  // both stay or both leave: not an exit guard
            Guard g;
            g.leader = leader;
            g.termPc = bb.termPc();
            g.d = cfg_.insnAt(bb.termPc());
            g.exitOnTaken = !takenIn;
            guards.push_back(g);
        }
        return guards;
    }

    /** Join of r's value along every loop-entry edge (preds of the
     *  head that are outside the loop). */
    std::optional<Interval>
    entryValue(const Loop &loop, unsigned r) const
    {
        AbsVal e = AbsVal::bottom();
        bool any = false;
        auto it = preds_.find(loop.head);
        if (it == preds_.end())
            return std::nullopt;
        for (Addr p : it->second) {
            if (loop.blocks.count(p))
                continue;
            const RegState *st = engine_.edgeState(p, loop.head);
            if (!st || !st->live)
                continue;
            e = AbsVal::join(e, st->reg(r));
            any = true;
        }
        if (!any || e.isBottom())
            return std::nullopt;
        return e.iv;
    }

    /**
     * Bound contribution of one exit guard for the counting register
     * @p r stepping by @p c: how many times can the guard see a value
     * in its continue region, starting from the entry interval E?
     */
    std::optional<I64>
    guardBound(const Loop &loop, const Guard &g, unsigned r, I64 c,
               const Interval &E) const
    {
        const DecodedInsn &d = g.d;
        if (d.rs1 == d.rs2)
            return std::nullopt;
        if (d.rs1 != r && d.rs2 != r)
            return std::nullopt;
        const RegState *ts = engine_.termState(g.leader);
        if (!ts || !ts->live)
            return std::nullopt;
        const unsigned other = (d.rs1 == r) ? d.rs2 : d.rs1;
        const AbsVal &F = ts->reg(other);

        const bool eqExit =
            (d.op == Op::kBeq && g.exitOnTaken) ||
            (d.op == Op::kBne && !g.exitOnTaken);
        const bool neqExit =
            (d.op == Op::kBne && g.exitOnTaken) ||
            (d.op == Op::kBeq && !g.exitOnTaken);
        if (neqExit)
            return std::nullopt;  // continues only while equal

        if (eqExit) {
            // Exit by hitting F exactly; the trajectory must approach
            // it from the correct side (and land on it when |c| > 1).
            if (!F.isConst())
                return std::nullopt;
            const I64 f = F.constValue();
            I64 steps = 0;
            if (c < 0) {
                if (E.lo < f)
                    return std::nullopt;
                const I64 diff = E.hi - f;
                if (c != -1 && (!E.isConst() || diff % (-c) != 0))
                    return std::nullopt;
                steps = diff / (-c);
            } else {
                if (E.hi > f)
                    return std::nullopt;
                const I64 diff = f - E.lo;
                if (c != 1 && (!E.isConst() || diff % c != 0))
                    return std::nullopt;
                steps = diff / c;
            }
            // A bottom-tested loop (the guard is the back edge itself)
            // evaluates the guard only after the first step, so the
            // equality exit eats one fewer back edge.
            const bool guardIsLatch = g.termPc == loop.backPc;
            return std::max<I64>(steps - (guardIsLatch ? 1 : 0), 0);
        }

        // Ordered predicate: derive the continue region of r by
        // refining top under "the guard did not exit".
        AbsVal av = (d.rs1 == r) ? AbsVal::top() : F;
        AbsVal bv = (d.rs1 == r) ? F : AbsVal::top();
        refineByBranch(d.op, !g.exitOnTaken, av, bv);
        const Interval C = (d.rs1 == r) ? av.iv : bv.iv;
        if (C.isBottom())
            return 0;  // the loop can never continue past this guard
        if (c < 0) {
            if (C.lo <= Interval::kMin)
                return std::nullopt;
            if (E.hi < C.lo)
                return 0;
            return (E.hi - C.lo) / (-c) + 1;
        }
        if (C.hi >= Interval::kMax)
            return std::nullopt;
        if (E.lo > C.hi)
            return 0;
        return (C.hi - E.lo) / c + 1;
    }

    /** Distinct non-null TCB pointers registered in k_task_table. */
    std::optional<I64>
    taskCount() const
    {
        if (taskCountDone_)
            return taskCount_;
        taskCountDone_ = true;
        auto it = program_.symbols.find("k_task_table");
        if (it == program_.symbols.end())
            return taskCount_;
        const Addr tbl = it->second;
        Addr end = program_.dataEnd();
        for (const auto &[name, a] : program_.symbols)
            if (a > tbl && a < end)
                end = a;
        std::set<I64> ids;
        for (Addr a = tbl; a < end; a += 4) {
            const AbsVal cv = engine_.cellValue(a);
            if (cv.hasSet) {
                for (I64 v : cv.consts)
                    if (v != 0)
                        ids.insert(v);
            } else if (cv.isConst()) {
                if (cv.constValue() != 0)
                    ids.insert(cv.constValue());
            } else {
                return taskCount_;  // table contents unresolved
            }
        }
        if (!ids.empty())
            taskCount_ = static_cast<I64>(ids.size());
        return taskCount_;
    }

    bool
    walkerStaysInData(const AbsVal &wv) const
    {
        if (wv.isBottom())
            return false;
        if (wv.hasSet) {
            for (I64 v : wv.consts)
                if (v != 0 && !engine_.inData(static_cast<Addr>(v)))
                    return false;
            return true;
        }
        const Addr lo = static_cast<Addr>(wv.iv.lo);
        const Addr hi = static_cast<Addr>(wv.iv.hi);
        if (wv.iv.lo < 0 || wv.iv.hi < wv.iv.lo)
            return false;
        if (!engine_.inData(hi))
            return false;
        return wv.iv.lo == 0 || engine_.inData(lo);
    }

    /** True when @p v is a pointer (set) whose non-null members all
     *  lie in the data section. */
    bool
    inDataPointer(const AbsVal &v) const
    {
        if (v.isConst())
            return v.constValue() > 0 &&
                   engine_.inData(static_cast<Addr>(v.constValue()));
        if (!v.hasSet)
            return false;
        bool any = false;
        for (I64 c : v.consts) {
            if (c == 0)
                continue;
            if (c < 0 || !engine_.inData(static_cast<Addr>(c)))
                return false;
            any = true;
        }
        return any;
    }

    /**
     * Structural list-walk check for walker @p w against sentinel
     * register @p s: every in-loop load defining w chases a fixed
     * offset either from w itself (advance shape) or from s in the
     * guard block (drain shape, which additionally needs an in-loop
     * store re-pointing an `off` link so the walk actually shrinks
     * the list).
     */
    bool
    chaseStructure(const Loop &loop, const Guard &g, unsigned w,
                   unsigned s) const
    {
        bool sawLoad = false, fromSelf = false, fromSentinel = false;
        I64 off = 0;
        for (Addr leader : loop.blocks) {
            const BasicBlock &bb = cfg_.blockAt(leader);
            for (Addr pc = bb.begin; pc < bb.end; pc += 4) {
                const DecodedInsn &d = cfg_.insnAt(pc);
                if (classOf(d.op) != InsnClass::kLoad || d.rd != w)
                    continue;
                if (sawLoad && d.imm != off)
                    return false;  // mixed fields: not one list's links
                off = d.imm;
                sawLoad = true;
                if (d.rs1 == w) {
                    fromSelf = true;
                } else if (d.rs1 == s && leader == g.leader) {
                    fromSentinel = true;
                } else {
                    return false;
                }
            }
        }
        if (!sawLoad || (fromSelf && fromSentinel))
            return false;
        if (fromSelf)
            return true;
        // Drain shape: some store inside the loop must re-point an
        // `off` link through a register other than the sentinel (the
        // head-unlink write), or the re-read head never changes.
        for (Addr leader : loop.blocks) {
            const BasicBlock &bb = cfg_.blockAt(leader);
            for (Addr pc = bb.begin; pc < bb.end; pc += 4) {
                const DecodedInsn &d = cfg_.insnAt(pc);
                if (classOf(d.op) == InsnClass::kStore && d.imm == off &&
                    d.rs1 != s)
                    return true;
            }
        }
        return false;
    }

    /** R3: sentinel-terminated list walk through one exit guard. */
    std::optional<I64>
    listWalkBound(const Loop &loop, const Guard &g,
                  const DefInfo &di) const
    {
        const DecodedInsn &d = g.d;
        const bool eqExit =
            (d.op == Op::kBeq && g.exitOnTaken) ||
            (d.op == Op::kBne && !g.exitOnTaken);
        if (!eqExit || d.rs1 == d.rs2)
            return std::nullopt;
        const RegState *ts = engine_.termState(g.leader);
        if (!ts || !ts->live)
            return std::nullopt;
        if (!dominatesLatch(loop, g.leader))
            return std::nullopt;
        for (const auto &[w, s] :
             {std::pair<unsigned, unsigned>{d.rs1, d.rs2},
              std::pair<unsigned, unsigned>{d.rs2, d.rs1}}) {
            if (w == 0 || s == 0)
                continue;
            // The sentinel stays fixed across the walk: constant at
            // the guard, or never written in the loop and known to be
            // an in-data pointer (wait-list heads reached through an
            // object argument).
            const AbsVal &sv = ts->reg(s);
            const bool sentinelConst =
                sv.isConst() && sv.constValue() > 0 &&
                engine_.inData(static_cast<Addr>(sv.constValue()));
            const bool sentinelInvariant =
                di.loadDefs[s] == 0 && di.stepDefs[s] == 0 &&
                di.otherDefs[s] == 0 && di.clobbers[s] == 0 &&
                inDataPointer(sv);
            if (!sentinelConst && !sentinelInvariant)
                continue;
            if (di.loadDefs[w] == 0 || di.stepDefs[w] != 0 ||
                di.otherDefs[w] != 0 || di.clobbers[w] != 0)
                continue;
            if (!walkerStaysInData(ts->reg(w)) &&
                !chaseStructure(loop, g, w, s))
                continue;
            return taskCount();
        }
        return std::nullopt;
    }

    std::optional<I64>
    inferOne(const Loop &loop) const
    {
        const DefInfo di = scanDefs(loop);
        if (!di.analyzable)
            return std::nullopt;
        const std::vector<Guard> guards = collectGuards(loop);

        auto keepMin = [](std::optional<I64> &best, std::optional<I64> b) {
            if (b && (!best || *b < *best))
                best = b;
        };

        std::optional<I64> best;
        // R1: guarded counting registers.
        for (unsigned r = 1; r < 32; ++r) {
            if (di.stepDefs[r] != 1 || di.loadDefs[r] != 0 ||
                di.otherDefs[r] != 0 || di.clobbers[r] != 0)
                continue;
            if (!dominatesLatch(loop, di.stepBlock[r]))
                continue;
            const auto E = entryValue(loop, r);
            if (!E)
                continue;
            for (const Guard &g : guards) {
                if (!dominatesLatch(loop, g.leader))
                    continue;
                keepMin(best, guardBound(loop, g, r, di.stepC[r], *E));
            }
        }
        // R3: sentinel list walks.
        for (const Guard &g : guards)
            keepMin(best, listWalkBound(loop, g, di));
        if (best)
            return best;

        // R2: unguarded countdown fallback.
        for (unsigned r = 1; r < 32; ++r) {
            if (di.stepDefs[r] != 1 || di.loadDefs[r] != 0 ||
                di.otherDefs[r] != 0 || di.clobbers[r] != 0)
                continue;
            const I64 c = di.stepC[r];
            if (c >= 0)
                continue;
            if (!dominatesLatch(loop, di.stepBlock[r]))
                continue;
            const auto E = entryValue(loop, r);
            if (!E || E->lo < 0 || E->hi >= Interval::kMax)
                continue;
            keepMin(best, (E->hi + (-c) - 1) / (-c));
        }
        return best;
    }

    const AbsintEngine &engine_;
    const Cfg &cfg_;
    const Program &program_;
    const LoopBoundOptions &options_;
    LoopBoundResult &out_;
    std::map<Addr, std::vector<Addr>> preds_;
    mutable bool taskCountDone_ = false;
    mutable std::optional<I64> taskCount_;
};

} // namespace

LoopBoundResult
inferLoopBounds(const AbsintEngine &engine, const LoopBoundOptions &options)
{
    LoopBoundResult result;
    BoundInferrer inferrer(engine, options, result);
    inferrer.run();
    return result;
}

AbsintFacts
deriveAbsintFacts(const Program &program)
{
    AbsintEngine engine(program);
    engine.run();
    AbsintFacts facts;
    if (!engine.converged())
        return facts;
    LoopBoundResult bounds = inferLoopBounds(engine);
    facts.inferredBounds = std::move(bounds.inferred);
    facts.infeasibleTaken = engine.infeasibleTaken();
    facts.infeasibleFall = engine.infeasibleFall();
    return facts;
}

} // namespace rtu
