/**
 * @file
 * Facts exported by the abstract-interpretation engine to other
 * layers (the WCET analyzer, the kernel generator). Kept in a
 * standalone header so consumers do not pull in the whole engine.
 */

#ifndef RTU_ANALYZE_ABSINT_FACTS_HH
#define RTU_ANALYZE_ABSINT_FACTS_HH

#include <map>
#include <set>

#include "common/types.hh"

namespace rtu {

/**
 * Derived control-flow facts over one Program.
 *
 * `inferredBounds` maps a loop back edge (the terminator pc of the
 * latch block) to the maximum number of times the back edge can
 * execute per entry of the loop — the same convention as the manual
 * `Assembler::loopBound()` annotations, so the two are directly
 * comparable and the WCET analyzer can budget either.
 *
 * `infeasibleTaken` / `infeasibleFall` hold conditional-branch pcs
 * whose taken (resp. fall-through) edge the interval analysis proved
 * can never execute; the WCET longest-path search excludes them.
 */
struct AbsintFacts
{
    std::map<Addr, unsigned> inferredBounds;
    std::set<Addr> infeasibleTaken;
    std::set<Addr> infeasibleFall;

    bool empty() const
    {
        return inferredBounds.empty() && infeasibleTaken.empty() &&
               infeasibleFall.empty();
    }
};

} // namespace rtu

#endif // RTU_ANALYZE_ABSINT_FACTS_HH
