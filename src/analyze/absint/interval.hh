/**
 * @file
 * Interval / value-set abstract domain for RV32 words.
 *
 * The domain element (AbsVal) is a signed 32-bit interval tracked in
 * 64-bit arithmetic (so transfer functions never overflow the host
 * type) plus an optional small exact value set. The set member is what
 * keeps pointer analysis useful: joining two distinct TCB addresses as
 * an interval would span every stack array allocated between them,
 * while the set keeps them as two exact cells. Every set member is
 * contained in the interval; when a set would grow past kMaxConsts the
 * value degrades to its interval hull, which is always sound.
 *
 * Interval values additionally carry a congruence (stride): every
 * concrete value is congruent to the interval's low bound modulo the
 * stride (stride 1 = no information). This is a reduced product with
 * Granger's arithmetical congruence domain, and it is what keeps a
 * scaled array index useful after the value set degrades: the address
 * `base + (i << 5)` stays "multiple-of-32 offsets into the array"
 * instead of smearing over every word of it, so an abstract store
 * through it touches one struct field per element instead of all of
 * them. Strides propagate through add/sub (gcd), constant shifts and
 * multiplies (scaling), join and widening (gcd with the anchor
 * distance), and refinement (bounds re-aligned inward); every other
 * transfer conservatively drops to stride 1.
 *
 * Widening jumps interval bounds to a small threshold ladder
 * (-1/0/1/min/max) so diverging loop iterates stabilize in a handful
 * of steps; narrowing is performed by the solver as a bounded number
 * of plain descending re-iterations after the widened fixpoint.
 */

#ifndef RTU_ANALYZE_ABSINT_INTERVAL_HH
#define RTU_ANALYZE_ABSINT_INTERVAL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asm/insn.hh"

namespace rtu {

/** Signed 32-bit interval; empty (bottom) iff lo > hi. */
struct Interval
{
    static constexpr std::int64_t kMin = INT32_MIN;
    static constexpr std::int64_t kMax = INT32_MAX;

    std::int64_t lo = kMin;
    std::int64_t hi = kMax;

    static Interval top() { return {kMin, kMax}; }
    static Interval bottom() { return {kMax, kMin}; }
    static Interval constant(std::int64_t v) { return {v, v}; }
    /** [lo, hi] clipped to the 32-bit range; empty input stays empty. */
    static Interval range(std::int64_t lo, std::int64_t hi);

    bool isBottom() const { return lo > hi; }
    bool isTop() const { return lo <= kMin && hi >= kMax; }
    bool isConst() const { return lo == hi; }
    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
    /** Number of values, or nullopt for bottom. */
    std::optional<std::uint64_t> size() const;

    bool operator==(const Interval &o) const = default;

    static Interval join(const Interval &a, const Interval &b);
    static Interval meet(const Interval &a, const Interval &b);
    /** Classic threshold widening of @p next against @p prev. */
    static Interval widen(const Interval &prev, const Interval &next);

    // Transfer functions. All model RV32 semantics: any result bound
    // escaping the 32-bit range means the concrete op may wrap, so the
    // result degrades to top rather than a wrong tight range.
    static Interval add(const Interval &a, const Interval &b);
    static Interval sub(const Interval &a, const Interval &b);
    static Interval mul(const Interval &a, const Interval &b);
    static Interval div(const Interval &a, const Interval &b);
    static Interval rem(const Interval &a, const Interval &b);
    static Interval shiftLeft(const Interval &a, unsigned k);
    static Interval shiftRightLogical(const Interval &a, unsigned k);
    static Interval shiftRightArith(const Interval &a, unsigned k);
    static Interval bitAnd(const Interval &a, const Interval &b);
    static Interval bitOr(const Interval &a, const Interval &b);
    static Interval bitXor(const Interval &a, const Interval &b);

    /**
     * Three-way comparison under the branch predicate @p op (one of
     * kBeq/kBne/kBlt/kBge/kBltu/kBgeu): returns true/false when every
     * pair in a x b decides the predicate the same way, nullopt when
     * undecided. Bottom operands return nullopt.
     */
    static std::optional<bool> decide(Op op, const Interval &a,
                                      const Interval &b);

    std::string str() const;
};

/**
 * Abstract RV32 word: interval plus optional exact value set, plus a
 * congruence stride on the interval.
 * Invariants: hasSet implies consts is non-empty, sorted, unique, and
 * every member is inside iv (the set is the exact concretization, so
 * stride is 1). Without a set, every concrete value is congruent to
 * iv.lo modulo stride, and iv.hi is aligned to that congruence.
 */
struct AbsVal
{
    /** Largest exact set carried before degrading to the interval.
     *  Sized so the pointer sets of a full 8-task kernel (8 TCBs,
     *  8 ready sentinels, delay/event sentinels, null) never degrade:
     *  a degraded store address falls back to the stack-store
     *  assumption and would silently drop kernel-data updates. */
    static constexpr size_t kMaxConsts = 32;

    Interval iv = Interval::top();
    bool hasSet = false;
    std::vector<std::int64_t> consts;
    /** Congruence: concrete values are == iv.lo (mod stride). */
    std::int64_t stride = 1;

    static AbsVal top() { return {}; }
    static AbsVal bottom();
    static AbsVal constant(std::int64_t v);
    static AbsVal fromInterval(const Interval &iv);
    static AbsVal fromSet(std::vector<std::int64_t> values);
    /** Interval @p iv restricted to values == @p anchor (mod
     *  @p stride); bounds are aligned inward, degenerate results
     *  collapse to constant/bottom. */
    static AbsVal strided(const Interval &iv, std::int64_t stride,
                          std::int64_t anchor);

    bool isBottom() const { return iv.isBottom(); }
    bool isTop() const { return iv.isTop() && !hasSet && stride == 1; }
    bool isConst() const { return iv.isConst(); }
    /** The single value when isConst(). */
    std::int64_t constValue() const { return iv.lo; }
    /** Distance between adjacent concrete values: the stride for
     *  intervals, the gcd of member gaps for sets, 0 for constants
     *  (compatible with any congruence). */
    std::int64_t valueGap() const;

    bool operator==(const AbsVal &o) const;

    static AbsVal join(const AbsVal &a, const AbsVal &b);
    static AbsVal widen(const AbsVal &prev, const AbsVal &next);
    /** Interval-meet refinement (keeps set members inside @p bounds). */
    AbsVal refined(const Interval &bounds) const;
    /** Copy without the set member @p v (used to strip null derefs). */
    AbsVal without(std::int64_t v) const;

    std::string str() const;
};

/**
 * Abstract transfer for a two-operand ALU op (immediates are passed
 * as constant AbsVals). Understands every Op the register transfer
 * needs: add/sub/logic/shift/set-less-than/mul/div families. Ops it
 * does not model return top.
 */
AbsVal absEval(Op op, const AbsVal &a, const AbsVal &b);

/**
 * Refine @p a and @p b under the assumption that branch predicate
 * @p op evaluated to @p taken. Returns refined copies; a refinement
 * to bottom proves the edge infeasible under the current states.
 */
void refineByBranch(Op op, bool taken, AbsVal &a, AbsVal &b);

} // namespace rtu

#endif // RTU_ANALYZE_ABSINT_INTERVAL_HH
