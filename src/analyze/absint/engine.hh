/**
 * @file
 * Abstract-interpretation engine over the shared Cfg.
 *
 * Per-function flow-sensitive interval/value-set analysis of the RV32
 * register file, composed with a flow-insensitive abstract data
 * memory: every data-section word is a cell whose abstract value is
 * the join of its image initializer and everything ever stored to it.
 * The engine iterates (register analysis -> recorded stores -> wider
 * memory -> register analysis ...) to a global fixpoint, with
 * threshold widening on both layers so divergent counters stabilize.
 *
 * Interprocedural precision comes from three channels:
 *  - call-site entry joins: a callee's entry state is the join of the
 *    caller states at every discovered call site (root functions --
 *    boot, trap handler, task bodies -- start from an unconstrained
 *    state);
 *  - a0 return-value summaries joined over every `ret` of the callee;
 *  - the verified kernel ABI (lint pass 2): callee-saved registers
 *    and sp survive calls, everything else is clobbered to top.
 *
 * Environment assumptions, each backed by a runtime oracle or a
 * companion lint pass and enforced by the lint gate over the whole
 * generated matrix (see DESIGN.md):
 *  - address 0 is never dereferenced (null members are stripped from
 *    dereferenced pointer sets);
 *  - stores whose address is a non-singleton interval intersecting a
 *    stack region target the stack (kernel data cells are only ever
 *    addressed exactly or through small pointer sets);
 *  - sp at a root entry points into some generated stack region;
 *  - the hardware scheduler only returns task ids previously inserted
 *    via rtu.addready / rtu.setctxid;
 *  - computed (multi-member) pointer sets only address multi-word
 *    data objects (list nodes, TCBs, arrays, stacks). Scalar header
 *    cells -- one-word symbols like k_current_tcb -- are only ever
 *    addressed through a direct `la`; a scalar or out-of-image member
 *    inside a computed set is an index-underflow artifact of the
 *    abstraction (the select scan's prio-below-zero member) and is
 *    dropped at the dereference;
 *  - indexed addressing stays inside the addressed object: the
 *    result of `add base, index` with a symbol-exact base lands in
 *    that symbol's extent (array bounds; the generated scheduler
 *    indexes k_ready_lists and k_task_table only with in-range
 *    priorities/ids, checked by the kernel-invariant runtime oracles);
 *  - the ready-priority scalar k_top_ready_prio holds a small
 *    non-negative index (the idle task keeps priority 0 occupied, so
 *    the select scan never commits an underflowed priority).
 *
 * Functions that are never called and are not generator entry points
 * (_start, the trap handlers, task bodies) are dead code in the
 * image: their regions are skipped entirely rather than analyzed from
 * an unconstrained entry state, which would poison the
 * flow-insensitive memory with stores that cannot execute.
 */

#ifndef RTU_ANALYZE_ABSINT_ENGINE_HH
#define RTU_ANALYZE_ABSINT_ENGINE_HH

#include <array>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyze/cfg.hh"
#include "asm/program.hh"
#include "common/types.hh"
#include "interval.hh"

namespace rtu {

struct AbsintOptions
{
    /** Outer (memory / entry-state) fixpoint round cap. */
    unsigned maxOuterRounds = 24;
    /** Round at which memory/entry joins switch to widening. */
    unsigned widenRound = 4;
    /** Loop-head visits before register widening kicks in. */
    unsigned wideningDelay = 2;
    /** Descending (narrowing) sweeps after the widened fixpoint. */
    unsigned narrowSweeps = 2;
    /** Block-transfer budget per function fixpoint (safety valve). */
    unsigned blockVisitBudget = 20'000;
};

/** Register-file state: x0..x31 plus mscratch (the only CSR the
 *  generated kernels use to carry a value). */
struct RegState
{
    static constexpr unsigned kNumSlots = 33;
    static constexpr unsigned kMscratchSlot = 32;

    bool live = false;  ///< false = unreachable (bottom state)
    std::array<AbsVal, kNumSlots> v;

    AbsVal &reg(unsigned i) { return v[i]; }
    const AbsVal &reg(unsigned i) const { return v[i]; }

    bool operator==(const RegState &o) const;

    static RegState join(const RegState &a, const RegState &b);
    static RegState widen(const RegState &prev, const RegState &next);
};

/**
 * Branch decision over full abstract values: set-pointwise when both
 * operands carry small sets (disjoint pointer sets decide equality
 * where the interval hulls cannot), interval decision otherwise.
 */
std::optional<bool> absDecide(Op op, const AbsVal &a, const AbsVal &b);

class AbsintEngine
{
  public:
    explicit AbsintEngine(const Program &program,
                          const AbsintOptions &options = {});

    /** Run to fixpoint. Call once; queries below are valid after. */
    void run();

    const Cfg &cfg() const { return cfg_; }
    const Program &program() const { return program_; }
    const AbsintOptions &options() const { return options_; }

    /** False when a budget/round cap was hit; derived facts are then
     *  discarded by the clients (conservative, never wrong). */
    bool converged() const { return converged_; }

    /** A maximal single-entry code region: a declared function, or a
     *  synthesized gap region for code outside any declared one. */
    struct Region
    {
        std::string name;
        Addr begin = 0;
        Addr end = 0;
        bool root = false;      ///< never called: entered unconstrained
        bool analyzed = true;   ///< false: dead code, no states exist
    };
    const std::vector<Region> &regions() const { return regions_; }

    // ---- final-pass state queries (loop-bound inference etc.) ------

    /** Register state on entry to the block at @p leader, or nullptr
     *  if the block was never reached. */
    const RegState *blockEntry(Addr leader) const;

    /** State at the block's terminator (operands of a branch). */
    const RegState *termState(Addr leader) const;

    /** Post-refinement state along the edge @p from -> @p to. */
    const RegState *edgeState(Addr from, Addr to) const;

    /** Abstract value of the data cell at word address @p addr. */
    AbsVal cellValue(Addr addr) const;

    /** Abstract load through an abstract word address. */
    AbsVal loadWord(const AbsVal &addr) const;

    /** Branch pcs with a statically refuted edge. */
    const std::set<Addr> &infeasibleTaken() const
    {
        return infeasibleTaken_;
    }
    const std::set<Addr> &infeasibleFall() const { return infeasibleFall_; }

    bool inData(Addr a) const;
    bool inStack(Addr a) const;

  private:
    struct FnState;  // per-region intra-procedural scratch

    void buildRegions();
    void buildStackRanges();
    void buildDataObjects();
    RegState rootEntry() const;

    /** Extent of the data symbol containing @p a, or bottom. */
    Interval objectExtent(Addr a) const;

    void analyzeRegion(const Region &region, bool record);
    void transferBlock(const BasicBlock &bb, RegState &st,
                       const Region &region, bool record);
    void applyInsn(Addr pc, const DecodedInsn &d, RegState &st);
    AbsVal value(const RegState &st, unsigned reg) const;

    AbsVal loadSized(const AbsVal &addr, Op op) const;
    void storeWord(const AbsVal &addr, const AbsVal &val);
    void joinCell(Addr cell, const AbsVal &val);
    void recordCallEntry(Addr target, const RegState &st);
    void recordJumpEntry(Addr target, const RegState &st);

    const Region *regionContaining(Addr pc) const;

    const Program &program_;
    AbsintOptions options_;
    Cfg cfg_;

    Addr dataBase_ = 0;
    Addr dataEnd_ = 0;
    std::vector<std::pair<Addr, Addr>> stackRanges_;
    Interval stackWindow_ = Interval::bottom();
    /** Sorted [begin, end) extents of the named data objects. */
    std::vector<std::pair<Addr, Addr>> dataObjects_;
    /** Cells of one-word symbols: never computed-addressed. */
    std::set<Addr> scalarCells_;
    /** Kernel-invariant value clamps, by cell (assumption list). */
    std::map<Addr, Interval> invariantCells_;

    std::vector<Region> regions_;
    std::set<Addr> callTargets_;

    // Outer-fixpoint state.
    unsigned round_ = 0;
    bool changed_ = false;
    bool converged_ = false;
    std::unordered_map<Addr, AbsVal> cells_;
    std::vector<std::pair<Addr, Addr>> havocRanges_;
    std::map<Addr, RegState> entryStates_;
    std::map<Addr, AbsVal> returnValues_;  ///< region begin -> a0
    AbsVal hwListIds_ = AbsVal::bottom();

    // Final recorded pass.
    std::map<Addr, RegState> blockEntries_;
    std::map<Addr, RegState> termStates_;
    std::map<std::pair<Addr, Addr>, RegState> edgeStates_;
    std::set<Addr> infeasibleTaken_;
    std::set<Addr> infeasibleFall_;
};

} // namespace rtu

#endif // RTU_ANALYZE_ABSINT_ENGINE_HH
