#include "interval.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"

namespace rtu {

namespace {

using U32 = std::uint32_t;
using I64 = std::int64_t;

I64
wrap32(U32 v)
{
    return static_cast<std::int32_t>(v);
}

/**
 * Exact RV32 evaluation for the ops the set-pointwise path handles;
 * nullopt for ops with no single-word concrete model here.
 */
std::optional<I64>
concreteEval(Op op, I64 x, I64 y)
{
    const U32 a = static_cast<U32>(x);
    const U32 b = static_cast<U32>(y);
    const std::int32_t sa = static_cast<std::int32_t>(a);
    const std::int32_t sb = static_cast<std::int32_t>(b);
    switch (op) {
      case Op::kAdd: case Op::kAddi: return wrap32(a + b);
      case Op::kSub: return wrap32(a - b);
      case Op::kAnd: case Op::kAndi: return wrap32(a & b);
      case Op::kOr: case Op::kOri: return wrap32(a | b);
      case Op::kXor: case Op::kXori: return wrap32(a ^ b);
      case Op::kSll: case Op::kSlli: return wrap32(a << (b & 31));
      case Op::kSrl: case Op::kSrli: return wrap32(a >> (b & 31));
      case Op::kSra: case Op::kSrai: return wrap32(sa >> (b & 31));
      case Op::kSlt: case Op::kSlti: return sa < sb ? 1 : 0;
      case Op::kSltu: case Op::kSltiu: return a < b ? 1 : 0;
      case Op::kMul: return wrap32(a * b);
      case Op::kDiv:
        if (sb == 0)
            return -1;
        if (sa == INT32_MIN && sb == -1)
            return INT32_MIN;
        return sa / sb;
      case Op::kDivu:
        return b == 0 ? wrap32(UINT32_MAX) : wrap32(a / b);
      case Op::kRem:
        if (sb == 0)
            return sa;
        if (sa == INT32_MIN && sb == -1)
            return 0;
        return sa % sb;
      case Op::kRemu:
        return b == 0 ? sa : wrap32(a % b);
      default:
        return std::nullopt;
    }
}

/** Unsigned image of a signed interval when it does not straddle the
 *  sign boundary; nullopt when it does. */
std::optional<std::pair<std::uint64_t, std::uint64_t>>
toUnsigned(const Interval &a)
{
    if (a.lo >= 0)
        return std::pair{static_cast<std::uint64_t>(a.lo),
                         static_cast<std::uint64_t>(a.hi)};
    if (a.hi < 0)
        return std::pair{static_cast<std::uint64_t>(a.lo + (1LL << 32)),
                         static_cast<std::uint64_t>(a.hi + (1LL << 32))};
    return std::nullopt;
}

/** Smallest all-ones mask covering @p v (v >= 0). */
I64
maskAbove(I64 v)
{
    I64 m = 0;
    while (m < v)
        m = (m << 1) | 1;
    return m;
}

I64
gcd64(I64 a, I64 b)
{
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b != 0) {
        const I64 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Euclidean (always non-negative) remainder. */
I64
posMod(I64 a, I64 m)
{
    const I64 r = a % m;
    return r < 0 ? r + m : r;
}

Op
negatePredicate(Op op)
{
    switch (op) {
      case Op::kBeq: return Op::kBne;
      case Op::kBne: return Op::kBeq;
      case Op::kBlt: return Op::kBge;
      case Op::kBge: return Op::kBlt;
      case Op::kBltu: return Op::kBgeu;
      case Op::kBgeu: return Op::kBltu;
      default:
        panic("not a branch predicate: %s", opName(op));
    }
}

} // namespace

// ---- Interval --------------------------------------------------------------

Interval
Interval::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        return bottom();
    if (lo < kMin || hi > kMax)
        return top();
    return {lo, hi};
}

std::optional<std::uint64_t>
Interval::size() const
{
    if (isBottom())
        return std::nullopt;
    return static_cast<std::uint64_t>(hi - lo) + 1;
}

Interval
Interval::join(const Interval &a, const Interval &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval
Interval::meet(const Interval &a, const Interval &b)
{
    const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
    return m.lo > m.hi ? bottom() : m;
}

Interval
Interval::widen(const Interval &prev, const Interval &next)
{
    if (prev.isBottom())
        return next;
    if (next.isBottom())
        return prev;
    Interval w = prev;
    if (next.lo < prev.lo) {
        w.lo = kMin;
        for (I64 t : {1, 0, -1})
            if (t <= next.lo && t < prev.lo) { w.lo = t; break; }
    }
    if (next.hi > prev.hi) {
        w.hi = kMax;
        for (I64 t : {-1, 0, 1})
            if (t >= next.hi && t > prev.hi) { w.hi = t; break; }
    }
    return w;
}

Interval
Interval::add(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    return range(a.lo + b.lo, a.hi + b.hi);
}

Interval
Interval::sub(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    return range(a.lo - b.hi, a.hi - b.lo);
}

Interval
Interval::mul(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    const I64 c[] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
    return range(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

Interval
Interval::div(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    if (b.contains(0))
        return top();  // RV32 div-by-zero yields -1; keep it simple
    const I64 c[] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
    return range(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

Interval
Interval::rem(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    if (b.contains(0))
        return top();
    const I64 m = std::max(std::abs(b.lo), std::abs(b.hi));
    const I64 lo = a.lo >= 0 ? 0 : std::max(a.lo, -(m - 1));
    const I64 hi = a.hi <= 0 ? 0 : std::min(a.hi, m - 1);
    return range(lo, hi);
}

Interval
Interval::shiftLeft(const Interval &a, unsigned k)
{
    if (a.isBottom())
        return bottom();
    const I64 f = I64{1} << (k & 31);
    return range(a.lo * f, a.hi * f);
}

Interval
Interval::shiftRightLogical(const Interval &a, unsigned k)
{
    if (a.isBottom())
        return bottom();
    k &= 31;
    if (k == 0)
        return a;
    if (a.lo >= 0)
        return range(a.lo >> k, a.hi >> k);
    // A negative word shifts to a large non-negative value; all that
    // survives is the output width.
    return range(0, (I64{1} << (32 - k)) - 1);
}

Interval
Interval::shiftRightArith(const Interval &a, unsigned k)
{
    if (a.isBottom())
        return bottom();
    k &= 31;
    // C++20 defines signed right shift as arithmetic.
    return range(a.lo >> k, a.hi >> k);
}

Interval
Interval::bitAnd(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    // Masking with a non-negative value bounds the result by the mask
    // (and by the other operand when it is non-negative too).
    if (a.lo >= 0 && b.lo >= 0)
        return range(0, std::min(a.hi, b.hi));
    if (b.lo >= 0)
        return range(0, b.hi);
    if (a.lo >= 0)
        return range(0, a.hi);
    return top();
}

Interval
Interval::bitOr(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    if (a.lo >= 0 && b.lo >= 0)
        return range(std::max(a.lo, b.lo), maskAbove(std::max(a.hi, b.hi)));
    return top();
}

Interval
Interval::bitXor(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return bottom();
    if (a.lo >= 0 && b.lo >= 0)
        return range(0, maskAbove(std::max(a.hi, b.hi)));
    return top();
}

std::optional<bool>
Interval::decide(Op op, const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return std::nullopt;
    switch (op) {
      case Op::kBeq:
        if (a.isConst() && b.isConst() && a.lo == b.lo)
            return true;
        if (meet(a, b).isBottom())
            return false;
        return std::nullopt;
      case Op::kBne: {
        const auto eq = decide(Op::kBeq, a, b);
        return eq ? std::optional<bool>(!*eq) : std::nullopt;
      }
      case Op::kBlt:
        if (a.hi < b.lo)
            return true;
        if (a.lo >= b.hi)
            return false;
        return std::nullopt;
      case Op::kBge: {
        const auto lt = decide(Op::kBlt, a, b);
        return lt ? std::optional<bool>(!*lt) : std::nullopt;
      }
      case Op::kBltu: {
        const auto ua = toUnsigned(a), ub = toUnsigned(b);
        if (!ua || !ub)
            return std::nullopt;
        if (ua->second < ub->first)
            return true;
        if (ua->first >= ub->second)
            return false;
        return std::nullopt;
      }
      case Op::kBgeu: {
        const auto lt = decide(Op::kBltu, a, b);
        return lt ? std::optional<bool>(!*lt) : std::nullopt;
      }
      default:
        panic("not a branch predicate: %s", opName(op));
    }
}

std::string
Interval::str() const
{
    if (isBottom())
        return "[bot]";
    const auto bound = [](I64 v) {
        if (v <= kMin)
            return std::string("-inf");
        if (v >= kMax)
            return std::string("+inf");
        return std::to_string(v);
    };
    return "[" + bound(lo) + "," + bound(hi) + "]";
}

// ---- AbsVal ----------------------------------------------------------------

AbsVal
AbsVal::bottom()
{
    AbsVal v;
    v.iv = Interval::bottom();
    return v;
}

AbsVal
AbsVal::constant(std::int64_t c)
{
    AbsVal v;
    v.iv = Interval::constant(c);
    v.hasSet = true;
    v.consts = {c};
    return v;
}

AbsVal
AbsVal::fromInterval(const Interval &iv)
{
    AbsVal v;
    v.iv = iv;
    if (iv.isConst()) {
        v.hasSet = true;
        v.consts = {iv.lo};
    }
    return v;
}

AbsVal
AbsVal::fromSet(std::vector<std::int64_t> values)
{
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.empty())
        return bottom();
    AbsVal v;
    v.iv = {values.front(), values.back()};
    if (values.size() <= kMaxConsts) {
        v.hasSet = true;
        v.consts = std::move(values);
    }
    return v;
}

AbsVal
AbsVal::strided(const Interval &iv, std::int64_t stride,
                std::int64_t anchor)
{
    if (iv.isBottom())
        return bottom();
    if (stride <= 1)
        return fromInterval(iv);
    const I64 lo = iv.lo + posMod(anchor - iv.lo, stride);
    const I64 hi = iv.hi - posMod(iv.hi - anchor, stride);
    if (lo > hi)
        return bottom();
    const I64 count = (hi - lo) / stride + 1;
    if (count <= static_cast<I64>(kMaxConsts)) {
        // Few enough congruent values to enumerate exactly: reduce to
        // the value set, which downstream pointer reasoning prefers.
        std::vector<I64> values;
        values.reserve(static_cast<size_t>(count));
        for (I64 v = lo; v <= hi; v += stride)
            values.push_back(v);
        return fromSet(std::move(values));
    }
    AbsVal v;
    v.iv = {lo, hi};
    v.stride = stride;
    return v;
}

std::int64_t
AbsVal::valueGap() const
{
    if (isConst())
        return 0;
    if (hasSet) {
        I64 g = 0;
        for (size_t i = 1; i < consts.size(); ++i)
            g = gcd64(g, consts[i] - consts[0]);
        return g;
    }
    return stride;
}

bool
AbsVal::operator==(const AbsVal &o) const
{
    return iv == o.iv && hasSet == o.hasSet && consts == o.consts &&
           stride == o.stride;
}

AbsVal
AbsVal::join(const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    if (a.hasSet && b.hasSet) {
        std::vector<std::int64_t> u = a.consts;
        u.insert(u.end(), b.consts.begin(), b.consts.end());
        std::sort(u.begin(), u.end());
        u.erase(std::unique(u.begin(), u.end()), u.end());
        if (u.size() <= kMaxConsts)
            return fromSet(std::move(u));
    }
    // The joined congruence must hold for both operands' values and
    // make their anchors congruent to each other.
    const I64 g = gcd64(gcd64(a.valueGap(), b.valueGap()),
                        a.iv.lo - b.iv.lo);
    return strided(Interval::join(a.iv, b.iv), g, a.iv.lo);
}

AbsVal
AbsVal::widen(const AbsVal &prev, const AbsVal &next)
{
    if (prev.isBottom())
        return next;
    if (next.isBottom())
        return prev;
    // Sets grow monotonically up to kMaxConsts, so unioning here still
    // terminates; past the cap the interval ladder takes over.
    if (prev.hasSet && next.hasSet) {
        const AbsVal u = join(prev, next);
        if (u.hasSet)
            return u;
    }
    // Strides only shrink under gcd, so this terminates alongside the
    // interval ladder; the inward re-alignment in strided() keeps the
    // result exact for the surviving congruence.
    const I64 g = gcd64(gcd64(prev.valueGap(), next.valueGap()),
                        prev.iv.lo - next.iv.lo);
    return strided(Interval::widen(prev.iv, next.iv), g, prev.iv.lo);
}

AbsVal
AbsVal::refined(const Interval &bounds) const
{
    const Interval m = Interval::meet(iv, bounds);
    if (m.isBottom())
        return bottom();
    if (hasSet) {
        std::vector<std::int64_t> kept;
        for (std::int64_t c : consts)
            if (m.contains(c))
                kept.push_back(c);
        return fromSet(std::move(kept));
    }
    return strided(m, stride, iv.lo);
}

AbsVal
AbsVal::without(std::int64_t v) const
{
    if (isBottom())
        return *this;
    if (hasSet) {
        std::vector<std::int64_t> kept;
        for (std::int64_t c : consts)
            if (c != v)
                kept.push_back(c);
        return fromSet(std::move(kept));
    }
    AbsVal out = *this;
    const I64 step = out.stride > 1 ? out.stride : 1;
    if (out.iv.lo == v)
        out.iv.lo += step;
    if (out.iv.hi == v)
        out.iv.hi -= step;
    if (out.iv.isBottom())
        return bottom();
    return strided(out.iv, out.stride, out.iv.lo);
}

std::string
AbsVal::str() const
{
    if (hasSet) {
        std::string s = "{";
        for (size_t i = 0; i < consts.size(); ++i)
            s += (i ? "," : "") + std::to_string(consts[i]);
        return s + "}";
    }
    if (stride > 1)
        return iv.str() + "/" + std::to_string(stride);
    return iv.str();
}

// ---- op-level transfer -----------------------------------------------------

AbsVal
absEval(Op op, const AbsVal &a, const AbsVal &b)
{
    if (a.isBottom() || b.isBottom())
        return AbsVal::bottom();

    // Exact set-pointwise evaluation when both operand sets are small.
    if (a.hasSet && b.hasSet &&
        a.consts.size() * b.consts.size() <= 4 * AbsVal::kMaxConsts) {
        std::vector<std::int64_t> results;
        bool exact = true;
        for (std::int64_t x : a.consts) {
            for (std::int64_t y : b.consts) {
                const auto r = concreteEval(op, x, y);
                if (!r) {
                    exact = false;
                    break;
                }
                results.push_back(*r);
            }
            if (!exact)
                break;
        }
        if (exact)
            return AbsVal::fromSet(std::move(results));
    }

    const Interval &x = a.iv;
    const Interval &y = b.iv;
    // Congruence propagation: exact only while the 64-bit bound
    // arithmetic stays inside the 32-bit word (no wraparound), so the
    // anchor value is the concrete image of the operand anchors.
    const auto inWord = [](I64 v) {
        return v >= Interval::kMin && v <= Interval::kMax;
    };
    // A power-of-two congruence divides the word modulus 2^32, so it
    // survives wraparound: ((u + v) mod 2^32) == u + v  (mod g) for
    // any g | 2^32. Only the anchor-exactness argument above needs
    // the no-overflow guard; for these strides we keep the congruence
    // even when the interval bounds degrade.
    const auto pow2 = [](I64 g) { return g > 0 && (g & (g - 1)) == 0; };
    switch (op) {
      case Op::kAdd: case Op::kAddi: {
        const I64 g = gcd64(a.valueGap(), b.valueGap());
        if (g > 1 && inWord(x.lo + y.lo) && inWord(x.hi + y.hi))
            return AbsVal::strided(Interval::add(x, y), g, x.lo + y.lo);
        if (g > 1 && pow2(g))
            return AbsVal::strided(Interval::add(x, y), g,
                                   posMod(x.lo + y.lo, g));
        return AbsVal::fromInterval(Interval::add(x, y));
      }
      case Op::kSub: {
        const I64 g = gcd64(a.valueGap(), b.valueGap());
        if (g > 1 && inWord(x.lo - y.hi) && inWord(x.hi - y.lo))
            return AbsVal::strided(Interval::sub(x, y), g, x.lo - y.hi);
        if (g > 1 && pow2(g))
            return AbsVal::strided(Interval::sub(x, y), g,
                                   posMod(x.lo - y.lo, g));
        return AbsVal::fromInterval(Interval::sub(x, y));
      }
      case Op::kAnd: case Op::kAndi:
        return AbsVal::fromInterval(Interval::bitAnd(x, y));
      case Op::kOr: case Op::kOri:
        return AbsVal::fromInterval(Interval::bitOr(x, y));
      case Op::kXor: case Op::kXori:
        return AbsVal::fromInterval(Interval::bitXor(x, y));
      case Op::kSll: case Op::kSlli:
        if (y.isConst() && y.lo >= 0 && y.lo <= 31) {
            const unsigned k = static_cast<unsigned>(y.lo);
            const Interval s = Interval::shiftLeft(x, k);
            if (inWord(x.lo << k) && inWord(x.hi << k)) {
                const I64 g = std::max<I64>(a.valueGap(), 1) << k;
                return AbsVal::strided(s, g, x.lo << k);
            }
            // Bounds wrapped: magnitude information is gone, but a
            // left shift by k still zeroes the low k bits modulo the
            // word size, so the power-of-two congruence survives.
            return AbsVal::strided(s, I64{1} << k, 0);
        }
        return AbsVal::top();
      case Op::kSrl: case Op::kSrli:
        if (y.isConst() && y.lo >= 0 && y.lo <= 31)
            return AbsVal::fromInterval(
                Interval::shiftRightLogical(x, static_cast<unsigned>(y.lo)));
        return AbsVal::top();
      case Op::kSra: case Op::kSrai:
        if (y.isConst() && y.lo >= 0 && y.lo <= 31)
            return AbsVal::fromInterval(
                Interval::shiftRightArith(x, static_cast<unsigned>(y.lo)));
        return AbsVal::top();
      case Op::kSlt: case Op::kSlti: {
        const auto d = Interval::decide(Op::kBlt, x, y);
        return d ? AbsVal::constant(*d ? 1 : 0)
                 : AbsVal::fromInterval(Interval::range(0, 1));
      }
      case Op::kSltu: case Op::kSltiu: {
        const auto d = Interval::decide(Op::kBltu, x, y);
        return d ? AbsVal::constant(*d ? 1 : 0)
                 : AbsVal::fromInterval(Interval::range(0, 1));
      }
      case Op::kMul: {
        const Interval m = Interval::mul(x, y);
        if (y.isConst() && y.lo != 0 && inWord(x.lo * y.lo) &&
            inWord(x.hi * y.lo)) {
            const I64 g = std::max<I64>(a.valueGap(), 1) * y.lo;
            return AbsVal::strided(m, g < 0 ? -g : g, x.lo * y.lo);
        }
        if (x.isConst() && x.lo != 0 && inWord(x.lo * y.lo) &&
            inWord(x.lo * y.hi)) {
            const I64 g = std::max<I64>(b.valueGap(), 1) * x.lo;
            return AbsVal::strided(m, g < 0 ? -g : g, x.lo * y.lo);
        }
        return AbsVal::fromInterval(m);
      }
      case Op::kDiv:
        return AbsVal::fromInterval(Interval::div(x, y));
      case Op::kRem:
        return AbsVal::fromInterval(Interval::rem(x, y));
      case Op::kDivu:
        if (x.lo >= 0 && y.lo >= 0)
            return AbsVal::fromInterval(Interval::div(x, y));
        return AbsVal::top();
      case Op::kRemu:
        if (x.lo >= 0 && y.lo >= 0)
            return AbsVal::fromInterval(Interval::rem(x, y));
        return AbsVal::top();
      default:
        return AbsVal::top();
    }
}

void
refineByBranch(Op op, bool taken, AbsVal &a, AbsVal &b)
{
    const Op p = taken ? op : negatePredicate(op);
    switch (p) {
      case Op::kBeq: {
        const Interval m = Interval::meet(a.iv, b.iv);
        AbsVal ra = a.refined(m), rb = b.refined(m);
        if (a.hasSet && b.hasSet) {
            std::vector<std::int64_t> both;
            for (std::int64_t c : a.consts)
                if (std::binary_search(b.consts.begin(), b.consts.end(), c))
                    both.push_back(c);
            ra = rb = AbsVal::fromSet(std::move(both));
        }
        a = ra;
        b = rb;
        return;
      }
      case Op::kBne:
        if (b.isConst()) {
            a = a.without(b.constValue());
        } else if (a.isConst()) {
            b = b.without(a.constValue());
        }
        return;
      case Op::kBlt: {
        const AbsVal ra = a.refined(Interval::range(Interval::kMin,
                                                    b.iv.hi - 1));
        const AbsVal rb = b.refined(Interval::range(a.iv.lo + 1,
                                                    Interval::kMax));
        a = ra;
        b = rb;
        return;
      }
      case Op::kBge: {
        const AbsVal ra = a.refined(Interval::range(b.iv.lo, Interval::kMax));
        const AbsVal rb = b.refined(Interval::range(Interval::kMin, a.iv.hi));
        a = ra;
        b = rb;
        return;
      }
      case Op::kBltu:
        // Refine only in the quadrant where unsigned order matches
        // signed order.
        if (a.iv.lo >= 0 && b.iv.lo >= 0) {
            const AbsVal ra = a.refined(Interval::range(Interval::kMin,
                                                        b.iv.hi - 1));
            const AbsVal rb = b.refined(Interval::range(a.iv.lo + 1,
                                                        Interval::kMax));
            a = ra;
            b = rb;
        }
        return;
      case Op::kBgeu:
        if (b.iv.lo >= 0) {
            // a >=u b with b non-negative: either a is negative (huge
            // unsigned) or a >= b.lo; only the non-negative side of a
            // can be tightened.
            if (a.iv.lo >= 0)
                a = a.refined(Interval::range(b.iv.lo, Interval::kMax));
            if (a.iv.lo >= 0 && a.iv.hi <= Interval::kMax)
                b = b.refined(Interval::range(Interval::kMin, a.iv.hi));
        }
        return;
      default:
        panic("not a branch predicate: %s", opName(p));
    }
}

} // namespace rtu
