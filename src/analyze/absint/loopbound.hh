/**
 * @file
 * Loop-bound inference over the abstract-interpretation results.
 *
 * Enumerates natural loops (back edges whose target dominates the
 * latch within one region), derives a trip-count bound for each from
 * the engine's final states, and cross-checks every manual
 * `Assembler::loopBound()` annotation against the inferred bound:
 *
 *  - "loop-bound-unverified" (warning): the annotation could not be
 *    confirmed — no recognizer matched, or the engine did not
 *    converge;
 *  - "loop-bound-too-tight" (error): the annotation is below the
 *    inferred worst case, so WCET budgets derived from it are
 *    unsound;
 *  - "loop-bound-loose" (pedantic warning): the annotation exceeds
 *    the inferred worst case — sound, but the WCET is pessimistic.
 *
 * Inferred bounds use the same convention as the annotations (maximum
 * back-edge executions per loop entry), so the WCET analyzer can
 * budget whichever is tighter.
 */

#ifndef RTU_ANALYZE_ABSINT_LOOPBOUND_HH
#define RTU_ANALYZE_ABSINT_LOOPBOUND_HH

#include <vector>

#include "analyze/absint/engine.hh"
#include "analyze/absint/facts.hh"
#include "analyze/diag.hh"

namespace rtu {

struct LoopBoundOptions
{
    /** Emit "loop-bound-loose" for annotations above the inferred
     *  worst case (off by default: capacity-style annotations such as
     *  "at most kMaxTasks list nodes" are intentionally loose for any
     *  particular workload). */
    bool pedantic = false;
    /** Bounds above this are discarded as useless for WCET budgeting
     *  (and would make the longest-path search explode). */
    unsigned maxUsefulBound = 1u << 20;
};

struct LoopBoundResult
{
    /** Back-edge pc -> inferred maximum back-edge executions. */
    std::map<Addr, unsigned> inferred;
    std::vector<Diagnostic> diags;
};

/** Infer bounds and cross-check annotations. The engine must have
 *  been run(). */
LoopBoundResult inferLoopBounds(const AbsintEngine &engine,
                                const LoopBoundOptions &options = {});

/**
 * One-call convenience for WCET/RTA consumers: run the engine over
 * @p program and package the facts it proved (inferred bounds plus
 * infeasible branch edges). Everything is dropped when the fixpoint
 * did not converge, so the result is always safe to apply.
 */
AbsintFacts deriveAbsintFacts(const Program &program);

} // namespace rtu

#endif // RTU_ANALYZE_ABSINT_LOOPBOUND_HH
