/**
 * @file
 * Control-flow graph over an assembled Program image.
 *
 * Reconstructed from decode() output: basic blocks split at branch
 * targets, post-control fall-throughs, function starts
 * (Program::functions) and text labels (Program::symbols), with
 * classified terminators (branch / jump / call / return / mret /
 * indirect / fall-through). Shared by the lint passes (src/analyze)
 * and the WCET analyzer (src/wcet), so both rest on one verified edge
 * construction instead of private instruction walks.
 */

#ifndef RTU_ANALYZE_CFG_HH
#define RTU_ANALYZE_CFG_HH

#include <map>
#include <set>
#include <vector>

#include "asm/insn.hh"
#include "asm/program.hh"
#include "common/types.hh"

namespace rtu {

/** How a basic block ends (classification of its last instruction). */
enum class TermKind : std::uint8_t {
    kFallThrough,  ///< next address is a leader; execution falls in
    kBranch,       ///< conditional: taken target + fall-through
    kJump,         ///< jal with rd = zero
    kCall,         ///< jal with rd = ra; continues at pc + 4
    kReturn,       ///< jalr zero, ra, 0
    kIndirect,     ///< any other jalr (no static successor)
    kTrapReturn,   ///< mret
    kFallOffText,  ///< last text word without a terminator
};

struct BasicBlock
{
    Addr begin = 0;  ///< first instruction address
    Addr end = 0;    ///< one past the last instruction ([begin, end))
    TermKind term = TermKind::kFallThrough;
    /** Branch/jump/call target (0 when terminator has none). */
    Addr takenTarget = 0;
    /** Successor block leaders (call edges are NOT successors; the
     *  call continuation pc + 4 is). */
    std::vector<Addr> succs;

    /** Address of the terminating instruction. */
    Addr termPc() const { return end - 4; }
};

class Cfg
{
  public:
    explicit Cfg(const Program &program);

    const Program &program() const { return program_; }

    bool contains(Addr pc) const;

    /** Decoded instruction at @p pc; panics outside the text section. */
    const DecodedInsn &insnAt(Addr pc) const;

    /** Block whose leader is exactly @p leader; panics otherwise. */
    const BasicBlock &blockAt(Addr leader) const;

    /** Block containing @p pc, or nullptr when pc is outside text. */
    const BasicBlock *blockContaining(Addr pc) const;

    /** All blocks, keyed by leader, in address order. */
    const std::map<Addr, BasicBlock> &blocks() const { return blocks_; }

    /** Max-iteration annotation on the control insn at @p pc. */
    bool hasLoopBound(Addr pc) const;
    unsigned loopBound(Addr pc) const;

    /**
     * Leaders of all blocks reachable from @p entry via successor
     * edges; @p follow_calls additionally descends through call
     * targets (interprocedural reachability).
     */
    std::set<Addr> reachableFrom(Addr entry, bool follow_calls) const;

    /**
     * True if control entering @p leader can never reach a return,
     * trap return, indirect jump or text fall-off: the intentional
     * terminal-loop pattern (idle `wfi; j`, the k_fatal_sync
     * self-loop). Such loops end execution and need no WCET bound.
     */
    bool isClosedLoop(Addr leader) const;

  private:
    const Program &program_;
    std::vector<DecodedInsn> insns_;   ///< one per text word
    std::map<Addr, BasicBlock> blocks_;
};

} // namespace rtu

#endif // RTU_ANALYZE_CFG_HH
