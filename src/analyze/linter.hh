/**
 * @file
 * Static context-integrity verifier over generated guest programs.
 *
 * Four pass families over the shared CFG (cfg.hh):
 *
 *  1. context integrity — on every path from trap entry ("k_isr") to
 *     `mret`, every architectural register the path clobbers is saved
 *     first (by software to the frame, or by the configuration's
 *     hardware store) and every context register is reinstated before
 *     `mret` (software reload or hardware restore). Cross-checked
 *     against the active RtosUnitConfig: load omission (O) is only
 *     accepted when the omitted loads are statically dead, i.e. the
 *     ISR software never touches the application register bank.
 *  2. ABI / callee-saved — per function: s0..s11 and ra preserved on
 *     every path reaching a `ret` (kernel convention: t/a registers
 *     and ra are caller-saved, see src/kernel/kernel.cc).
 *  3. stack discipline — SP balanced across joining paths and zero at
 *     `ret`; no access below SP.
 *  4. CFG soundness — invalid encodings, unreachable blocks,
 *     fall-through off textEnd() or across a function boundary,
 *     ISR-reachable backward edges lacking a loopBounds annotation
 *     (which would make the WCET analysis unsound), trap handlers
 *     that cannot reach `mret`, indirect jumps on the ISR path.
 *
 * The passes never abort on a broken program: every violation is a
 * Diagnostic (diag.hh). `rtu_lint` runs them over the full generated
 * kernel x workload x RtosUnitConfig matrix as a lint gate.
 */

#ifndef RTU_ANALYZE_LINTER_HH
#define RTU_ANALYZE_LINTER_HH

#include <functional>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "cfg.hh"
#include "diag.hh"
#include "rtosunit/config.hh"

namespace rtu {

struct LintOptions
{
    /** Run the WCET-soundness lints (annotation coverage). */
    bool wcetChecks = true;
    /** State-exploration budget per dataflow pass (visited states). */
    unsigned stateBudget = 200'000;
    /**
     * Run the abstract-interpretation pass family (pass 5): inferred
     * loop bounds cross-checked against annotations, whole-program
     * worst-case stack usage vs. the generated region capacities, and
     * infeasible-branch detection. Off by default: it costs a full
     * fixpoint per program.
     */
    bool absint = false;
    /** With absint: also flag annotations that are sound but looser
     *  than the inferred bound ("loop-bound-loose"). */
    bool absintPedanticBounds = false;
};

struct LintResult
{
    std::vector<Diagnostic> diags;

    bool clean() const { return diags.empty(); }
    unsigned errors() const { return countErrors(diags); }
    unsigned warnings() const { return countWarnings(diags); }
};

/** Run every pass over one assembled program. */
LintResult lintProgram(const Program &program,
                       const RtosUnitConfig &unit,
                       const LintOptions &options = {});

// ---- individual passes (exposed for targeted tests) -----------------

/** Pass 1: trap-path save/restore integrity vs. the configuration. */
void checkContextIntegrity(const Cfg &cfg, const RtosUnitConfig &unit,
                           const LintOptions &options,
                           std::vector<Diagnostic> &out);

/** Pass 2: callee-saved registers and ra preserved per function. */
void checkCalleeSaved(const Cfg &cfg, const LintOptions &options,
                      std::vector<Diagnostic> &out);

/** Pass 3: SP balance and no access below SP, per function. */
void checkStackDiscipline(const Cfg &cfg, const LintOptions &options,
                          std::vector<Diagnostic> &out);

/** Pass 4: reachability, terminators, annotation coverage. */
void checkCfgSoundness(const Cfg &cfg, const LintOptions &options,
                       std::vector<Diagnostic> &out);

/** Pass 5: abstract interpretation — loop-bound cross-check and
 *  worst-case stack usage (see src/analyze/absint). */
void checkAbsint(const Program &program, const LintOptions &options,
                 std::vector<Diagnostic> &out);

// ---- generated-program matrix ---------------------------------------

/** One kernel image of the generated matrix. */
struct LintPoint
{
    RtosUnitConfig unit;
    std::string workload;
    Program program;
};

/**
 * Enumerate every generated program the simulator can run: all twelve
 * paper configurations (plus the +HS points when @p include_hwsync)
 * crossed with the standard workload suite, built exactly as the
 * harness builds them (workload-declared external-IRQ path included).
 */
void forEachGeneratedProgram(
    const std::function<void(const LintPoint &)> &fn,
    bool include_hwsync = true);

} // namespace rtu

#endif // RTU_ANALYZE_LINTER_HH
