/**
 * @file
 * Pass 2: per-function callee-saved register discipline.
 *
 * Kernel convention (src/kernel/kernel.cc): t0..t6, a0..a7 and ra are
 * clobbered freely inside the kernel; task bodies follow the standard
 * calling convention. This pass verifies the standard-convention side:
 * every path of a function that reaches `ret` must leave s0..s11 with
 * their entry values and `ra` with the return address — either never
 * written, or spilled to a stack slot and reloaded from the same slot.
 *
 * Calls are not followed: callees are assumed s-preserving (each is
 * checked on its own) but clobber `ra`. Paths that leave the function
 * by a jump or end in `mret` / an indirect jump carry no obligation
 * here (the trap path is pass 1's job, cross-function jumps in the
 * generated kernel only reach non-returning code).
 */

#include <array>
#include <climits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "asm/disasm.hh"
#include "common/logging.hh"
#include "linter.hh"

namespace rtu {

namespace {

constexpr int kNumTracked = 13;  ///< s0..s11 = 0..11, ra = 12
constexpr int kRaIndex = 12;
constexpr int kWildSlot = INT_MIN;  ///< saved at unknown sp offset

/** Tracked-register index of @p r, or -1. */
int
csIndexOf(RegIndex r)
{
    if (r == S0 || r == S1)
        return r - S0;  // x8, x9 -> 0, 1
    if (r >= S2 && r <= S11)
        return 2 + (r - S2);  // x18..x27 -> 2..11
    if (r == RA)
        return kRaIndex;
    return -1;
}

const char *
csName(int idx)
{
    static const char *names[kNumTracked] = {
        "s0", "s1", "s2", "s3", "s4",  "s5",  "s6",
        "s7", "s8", "s9", "s10", "s11", "ra",
    };
    return names[idx];
}

struct AbiState
{
    std::uint16_t clobbered = 0;
    std::uint16_t saved = 0;
    std::array<int, kNumTracked> slot{};
    int spDelta = 0;
    bool spKnown = true;

    std::string
    key() const
    {
        std::string k;
        k.reserve(8 + 4 * kNumTracked);
        auto put = [&k](std::uint32_t v) {
            for (unsigned i = 0; i < 4; ++i)
                k.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
        };
        put((std::uint32_t{clobbered} << 16) | saved);
        put(static_cast<std::uint32_t>(spDelta));
        k.push_back(spKnown ? 1 : 0);
        for (int s : slot)
            put(static_cast<std::uint32_t>(s));
        return k;
    }
};

class AbiWalker
{
  public:
    AbiWalker(const Cfg &cfg, const LintOptions &options,
              std::vector<Diagnostic> &out)
        : cfg_(cfg), options_(options), out_(out)
    {
    }

    void
    runFunction(const std::string &name, Addr begin, Addr end)
    {
        fnName_ = name;
        fnBegin_ = begin;
        fnEnd_ = end;
        visited_.clear();
        work_.clear();
        work_.emplace_back(begin, AbiState{});
        while (!work_.empty()) {
            auto [pc, state] = std::move(work_.back());
            work_.pop_back();
            walk(pc, std::move(state));
        }
    }

  private:
    bool
    inFunction(Addr pc) const
    {
        return pc >= fnBegin_ && pc < fnEnd_ && cfg_.contains(pc);
    }

    void
    report(const std::string &code, Addr pc, const std::string &message)
    {
        if (!reported_.insert(code + "@" + std::to_string(pc)).second)
            return;
        Diagnostic d;
        d.severity = Severity::kError;
        d.code = code;
        d.pc = pc;
        d.hasPc = true;
        d.function = fnName_;
        d.insn = disassemble(cfg_.insnAt(pc).raw);
        d.message = message;
        out_.push_back(std::move(d));
    }

    bool
    enter(Addr pc, const AbiState &state)
    {
        if (cfg_.blocks().count(pc) == 0)
            return true;
        if (statesSeen_ >= options_.stateBudget)
            return false;
        if (!visited_[pc].insert(state.key()).second)
            return false;
        ++statesSeen_;
        return true;
    }

    void
    walk(Addr pc, AbiState st)
    {
        while (inFunction(pc)) {
            if (!enter(pc, st))
                return;
            const DecodedInsn &d = cfg_.insnAt(pc);

            switch (d.op) {
              case Op::kJal:
                if (d.rd == RA) {
                    st.clobbered |= 1u << kRaIndex;
                    pc += 4;  // callee assumed balanced + s-preserving
                    continue;
                }
                pc += static_cast<Word>(d.imm);
                continue;  // loop check via inFunction()
              case Op::kJalr:
                if (d.rd == Zero && d.rs1 == RA && d.imm == 0)
                    checkAtReturn(pc, st);
                return;
              case Op::kMret:
              case Op::kInvalid:
                return;
              default:
                break;
            }

            if (classOf(d.op) == InsnClass::kBranch) {
                const Addr taken = pc + static_cast<Word>(d.imm);
                if (inFunction(taken))
                    work_.emplace_back(taken, st);
                pc += 4;
                continue;
            }

            step(d, st);
            pc += 4;
        }
    }

    void
    step(const DecodedInsn &d, AbiState &st)
    {
        // Spill to a stack slot.
        if (d.op == Op::kSw && d.rs1 == SP) {
            const int idx = csIndexOf(d.rs2);
            if (idx >= 0) {
                st.saved |= 1u << idx;
                st.slot[idx] =
                    st.spKnown ? st.spDelta + d.imm : kWildSlot;
            }
        }

        // Reload from the matching slot restores the entry value.
        if (writesRd(d.op) && d.rd != Zero) {
            const int idx = csIndexOf(d.rd);
            if (idx >= 0) {
                const bool slotMatches =
                    (st.saved & (1u << idx)) != 0 &&
                    (st.slot[idx] == kWildSlot || !st.spKnown ||
                     st.slot[idx] == st.spDelta + d.imm);
                if (d.op == Op::kLw && d.rs1 == SP && slotMatches)
                    st.clobbered &= ~(1u << idx);
                else
                    st.clobbered |= 1u << idx;
            }
            if (d.rd == SP) {
                if (d.op == Op::kAddi && d.rs1 == SP) {
                    if (st.spKnown)
                        st.spDelta += d.imm;
                } else {
                    st.spKnown = false;
                }
            }
        }
    }

    void
    checkAtReturn(Addr pc, const AbiState &st)
    {
        std::string bad;
        for (int i = 0; i < kRaIndex; ++i) {
            if (st.clobbered & (1u << i)) {
                if (!bad.empty())
                    bad += ", ";
                bad += csName(i);
            }
        }
        if (!bad.empty()) {
            report("abi-callee-saved", pc,
                   csprintf("callee-saved registers clobbered and not "
                            "restored on a path reaching ret: %s",
                            bad.c_str()));
        }
        if (st.clobbered & (1u << kRaIndex)) {
            report("abi-ra-clobbered", pc,
                   "ra overwritten (by a call or plain write) and not "
                   "restored before ret: returns to the wrong address");
        }
    }

    const Cfg &cfg_;
    const LintOptions &options_;
    std::vector<Diagnostic> &out_;
    std::string fnName_;
    Addr fnBegin_ = 0;
    Addr fnEnd_ = 0;
    std::vector<std::pair<Addr, AbiState>> work_;
    std::unordered_map<Addr, std::unordered_set<std::string>> visited_;
    std::unordered_set<std::string> reported_;
    unsigned statesSeen_ = 0;
};

} // namespace

void
checkCalleeSaved(const Cfg &cfg, const LintOptions &options,
                 std::vector<Diagnostic> &out)
{
    AbiWalker walker(cfg, options, out);
    for (const auto &[name, range] : cfg.program().functions) {
        if (range.second > range.first && cfg.contains(range.first))
            walker.runFunction(name, range.first, range.second);
    }
}

} // namespace rtu
