/**
 * @file
 * Structured static-analysis diagnostics.
 *
 * Every analysis pass (src/analyze, src/wcet) reports findings as
 * Diagnostic values instead of aborting, so one broken program point
 * produces one machine-readable finding rather than killing the whole
 * lint run. `rtu_lint` serializes them as JSONL (one object per line,
 * reusing the audited escaping in src/common/json).
 */

#ifndef RTU_ANALYZE_DIAG_HH
#define RTU_ANALYZE_DIAG_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace rtu {

enum class Severity : std::uint8_t {
    kWarning,  ///< suspicious but not soundness-breaking
    kError,    ///< violates a correctness contract; fails the lint gate
};

/** "warning" / "error". */
const char *severityName(Severity severity);

/**
 * One finding, anchored to a program point when there is one.
 * `code` is a stable kebab-case identifier (e.g.
 * "ctx-clobbered-before-save") that tests and CI match on.
 */
struct Diagnostic
{
    Severity severity = Severity::kError;
    std::string code;
    Addr pc = 0;
    bool hasPc = false;
    std::string function;  ///< enclosing function, "" if unknown
    std::string insn;      ///< disassembly at pc, "" if no pc
    std::string message;
};

/** Human-readable one-liner: "error[code] fn+0x12: message (insn)". */
std::string diagToString(const Diagnostic &d);

/**
 * One JSONL object with the diagnostic's own fields; @p extra is
 * spliced in verbatim (already-escaped "key":"value" pairs giving the
 * run context, e.g. config and workload names). Pass "" for none.
 */
std::string diagToJson(const Diagnostic &d, const std::string &extra = "");

/** Count by severity. */
unsigned countErrors(const std::vector<Diagnostic> &diags);
unsigned countWarnings(const std::vector<Diagnostic> &diags);

/** True if any diagnostic carries @p code. */
bool hasCode(const std::vector<Diagnostic> &diags, const std::string &code);

} // namespace rtu

#endif // RTU_ANALYZE_DIAG_HH
