#include "cfg.hh"

#include <algorithm>

#include "asm/decode.hh"
#include "common/logging.hh"

namespace rtu {

namespace {

/** Classify a control-transfer instruction; kFallThrough if plain. */
TermKind
termKindOf(const DecodedInsn &d)
{
    switch (d.op) {
      case Op::kJal:
        return d.rd == RA ? TermKind::kCall : TermKind::kJump;
      case Op::kJalr:
        if (d.rd == Zero && d.rs1 == RA && d.imm == 0)
            return TermKind::kReturn;
        return TermKind::kIndirect;
      case Op::kMret:
        return TermKind::kTrapReturn;
      default:
        if (classOf(d.op) == InsnClass::kBranch)
            return TermKind::kBranch;
        return TermKind::kFallThrough;
    }
}

} // namespace

Cfg::Cfg(const Program &program) : program_(program)
{
    const Addr base = program_.textBase;
    const size_t words = program_.text.size();
    insns_.reserve(words);
    for (size_t i = 0; i < words; ++i)
        insns_.push_back(decode(program_.text[i]));

    // Leaders: text start, function starts, text labels, control-flow
    // targets and every post-control address.
    std::set<Addr> leaders;
    if (words > 0)
        leaders.insert(base);
    for (const auto &[name, range] : program_.functions) {
        if (contains(range.first))
            leaders.insert(range.first);
    }
    for (const auto &[name, addr] : program_.symbols) {
        if (contains(addr))
            leaders.insert(addr);
    }
    for (size_t i = 0; i < words; ++i) {
        const Addr pc = base + 4 * static_cast<Addr>(i);
        const DecodedInsn &d = insns_[i];
        const TermKind term = termKindOf(d);
        if (term == TermKind::kFallThrough)
            continue;
        if (term == TermKind::kBranch || term == TermKind::kJump ||
            term == TermKind::kCall) {
            const Addr target = pc + static_cast<Word>(d.imm);
            rtu_assert(contains(target),
                       "control target 0x%08x outside text (insn at "
                       "0x%08x)", target, pc);
            leaders.insert(target);
        }
        if (contains(pc + 4))
            leaders.insert(pc + 4);
    }

    // Cut blocks between consecutive leaders and classify terminators.
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        BasicBlock bb;
        bb.begin = *it;
        const auto next = std::next(it);
        bb.end = next != leaders.end() ? *next : program_.textEnd();
        rtu_assert(bb.end > bb.begin, "empty basic block at 0x%08x",
                   bb.begin);

        const DecodedInsn &last = insnAt(bb.termPc());
        bb.term = termKindOf(last);
        const bool atTextEnd = bb.end >= program_.textEnd();
        switch (bb.term) {
          case TermKind::kFallThrough:
            if (atTextEnd)
                bb.term = TermKind::kFallOffText;
            else
                bb.succs.push_back(bb.end);
            break;
          case TermKind::kBranch:
            bb.takenTarget = bb.termPc() + static_cast<Word>(last.imm);
            bb.succs.push_back(bb.takenTarget);
            if (atTextEnd)
                bb.term = TermKind::kFallOffText;  // false edge exits
            else
                bb.succs.push_back(bb.end);
            break;
          case TermKind::kJump:
            bb.takenTarget = bb.termPc() + static_cast<Word>(last.imm);
            bb.succs.push_back(bb.takenTarget);
            break;
          case TermKind::kCall:
            bb.takenTarget = bb.termPc() + static_cast<Word>(last.imm);
            if (atTextEnd)
                bb.term = TermKind::kFallOffText;  // nowhere to return
            else
                bb.succs.push_back(bb.end);
            break;
          case TermKind::kReturn:
          case TermKind::kIndirect:
          case TermKind::kTrapReturn:
          case TermKind::kFallOffText:
            break;
        }
        blocks_.emplace(bb.begin, std::move(bb));
    }
}

bool
Cfg::contains(Addr pc) const
{
    return pc >= program_.textBase && pc < program_.textEnd() &&
           (pc - program_.textBase) % 4 == 0;
}

const DecodedInsn &
Cfg::insnAt(Addr pc) const
{
    rtu_assert(contains(pc), "CFG lookup outside text at 0x%08x", pc);
    return insns_[(pc - program_.textBase) / 4];
}

const BasicBlock &
Cfg::blockAt(Addr leader) const
{
    const auto it = blocks_.find(leader);
    rtu_assert(it != blocks_.end(), "no basic block starts at 0x%08x",
               leader);
    return it->second;
}

const BasicBlock *
Cfg::blockContaining(Addr pc) const
{
    if (!contains(pc))
        return nullptr;
    auto it = blocks_.upper_bound(pc);
    rtu_assert(it != blocks_.begin(), "block map misses 0x%08x", pc);
    --it;
    return &it->second;
}

bool
Cfg::hasLoopBound(Addr pc) const
{
    return program_.loopBounds.count(pc) > 0;
}

unsigned
Cfg::loopBound(Addr pc) const
{
    const auto it = program_.loopBounds.find(pc);
    rtu_assert(it != program_.loopBounds.end(),
               "no loop bound at 0x%08x", pc);
    return it->second;
}

std::set<Addr>
Cfg::reachableFrom(Addr entry, bool follow_calls) const
{
    std::set<Addr> seen;
    std::vector<Addr> work;
    const BasicBlock *start = blockContaining(entry);
    if (start == nullptr)
        return seen;
    work.push_back(start->begin);
    while (!work.empty()) {
        const Addr leader = work.back();
        work.pop_back();
        if (!seen.insert(leader).second)
            continue;
        const BasicBlock &bb = blockAt(leader);
        for (Addr succ : bb.succs)
            work.push_back(succ);
        if (follow_calls && bb.term == TermKind::kCall)
            work.push_back(bb.takenTarget);
    }
    return seen;
}

bool
Cfg::isClosedLoop(Addr leader) const
{
    if (blocks_.count(leader) == 0)
        return false;
    for (Addr addr : reachableFrom(leader, /*follow_calls=*/false)) {
        switch (blockAt(addr).term) {
          case TermKind::kReturn:
          case TermKind::kTrapReturn:
          case TermKind::kIndirect:
          case TermKind::kFallOffText:
            return false;
          default:
            break;
        }
    }
    return true;
}

} // namespace rtu
