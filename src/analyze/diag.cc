#include "diag.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace rtu {

const char *
severityName(Severity severity)
{
    return severity == Severity::kError ? "error" : "warning";
}

std::string
diagToString(const Diagnostic &d)
{
    std::string where;
    if (d.hasPc) {
        where = d.function.empty()
                    ? csprintf("0x%08x", d.pc)
                    : csprintf("%s @ 0x%08x", d.function.c_str(), d.pc);
    } else if (!d.function.empty()) {
        where = d.function;
    }
    std::string out = csprintf("%s[%s]", severityName(d.severity),
                               d.code.c_str());
    if (!where.empty())
        out += " " + where;
    out += ": " + d.message;
    if (!d.insn.empty())
        out += "  <" + d.insn + ">";
    return out;
}

std::string
diagToJson(const Diagnostic &d, const std::string &extra)
{
    std::string out = "{";
    if (!extra.empty())
        out += extra + ",";
    out += csprintf("\"severity\":\"%s\",\"code\":\"%s\"",
                    severityName(d.severity),
                    jsonEscape(d.code).c_str());
    if (d.hasPc)
        out += csprintf(",\"pc\":\"0x%08x\"", d.pc);
    if (!d.function.empty())
        out += csprintf(",\"function\":\"%s\"",
                        jsonEscape(d.function).c_str());
    if (!d.insn.empty())
        out += csprintf(",\"insn\":\"%s\"", jsonEscape(d.insn).c_str());
    out += csprintf(",\"message\":\"%s\"}",
                    jsonEscape(d.message).c_str());
    return out;
}

unsigned
countErrors(const std::vector<Diagnostic> &diags)
{
    unsigned n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == Severity::kError;
    return n;
}

unsigned
countWarnings(const std::vector<Diagnostic> &diags)
{
    unsigned n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == Severity::kWarning;
    return n;
}

bool
hasCode(const std::vector<Diagnostic> &diags, const std::string &code)
{
    for (const Diagnostic &d : diags) {
        if (d.code == code)
            return true;
    }
    return false;
}

} // namespace rtu
