/**
 * @file
 * Per-episode switch tracing: structured events that decompose one
 * context-switch episode into the phases the paper's Section 6
 * narrative attributes latency to (CV32RT and CVA6-RT do the same
 * attribution on real RTL):
 *
 *   irq-assert -> trap-taken -> store-done -> sched-done -> load-done
 *              -> mret
 *
 * The recorder (sim/switchrec.hh) collects the timestamps via
 * PhaseObserver hooks in the core and RTOSUnit models and emits one
 * EpisodeTrace per episode to an optional TraceSink. Sinks serialize
 * to JSONL (one object per line, machine-readable) or CSV. Phases a
 * configuration performs in software (e.g. store-done under vanilla)
 * carry the explicit kNoPhase sentinel — never 0, which is a
 * legitimate completion cycle — and serialize as JSON `null` / an
 * empty CSV field: every record always has all six fields.
 */

#ifndef RTU_TRACE_TRACE_HH
#define RTU_TRACE_TRACE_HH

#include <ostream>
#include <string>

#include "common/types.hh"

namespace rtu {

/** The six per-episode phase boundaries, in pipeline order. */
enum class SwitchPhase
{
    kIrqAssert,   ///< interrupt line asserted
    kTrapTaken,   ///< trap entry (handler starts)
    kStoreDone,   ///< hardware context store FSM drained
    kSchedDone,   ///< hardware scheduler pop (GET_HW_SCHED) retired
    kLoadDone,    ///< context restore complete (or omitted/preloaded)
    kMret,        ///< mret completed (latency end point)
};

const char *switchPhaseName(SwitchPhase phase);

/**
 * "Phase not reached" timestamp sentinel. An invalid cycle (the
 * simulator would have to run 2^64 - 1 cycles to stamp it) rather
 * than 0, which collides with a phase legitimately completing at
 * cycle 0 (e.g. an interrupt asserted at reset).
 */
constexpr Cycle kNoPhase = ~Cycle{0};

/** Receiver of phase-boundary timestamps (implemented by Simulation,
 *  forwarded into the SwitchRecorder's in-flight episode). */
class PhaseObserver
{
  public:
    virtual ~PhaseObserver() = default;
    virtual void phaseReached(SwitchPhase phase, Cycle cycle) = 0;
};

/** One completed (or preempted) switch episode with its six phase
 *  timestamps. Unreached phases carry kNoPhase. */
struct EpisodeTrace
{
    Word cause = 0;
    Word fromTask = 0;
    Word toTask = 0;
    bool queued = false;
    bool preempted = false;  ///< truncated by a nested/back-to-back trap
    Cycle irqAssert = 0;
    Cycle trapTaken = 0;
    Cycle storeDone = kNoPhase;
    Cycle schedDone = kNoPhase;
    Cycle loadDone = kNoPhase;
    Cycle mret = 0;

    Cycle latency() const { return mret - irqAssert; }
};

/** Labels identifying the run a batch of episodes belongs to. */
struct TraceRunLabel
{
    std::string core;
    std::string config;
    std::string workload;
    std::uint64_t seed = 0;
};

/** Consumer of episode traces. Emission order is simulation order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** A new simulation run starts; subsequent episodes belong to it. */
    virtual void beginRun(const TraceRunLabel &label) = 0;
    virtual void episode(const EpisodeTrace &episode) = 0;
    virtual void endRun() {}
};

/**
 * JSON-lines sink: one self-contained object per episode, carrying
 * both the run label and the six phase timestamps. Output is fully
 * deterministic (no wall-clock, no float formatting), so identical
 * runs produce byte-identical streams.
 */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : os_(os) {}

    void beginRun(const TraceRunLabel &label) override;
    void episode(const EpisodeTrace &e) override;

  private:
    std::ostream &os_;
    TraceRunLabel label_;
    std::uint64_t index_ = 0;  ///< episode index within the run
};

/** CSV sink: header row + one row per episode. */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(std::ostream &os) : os_(os) {}

    void beginRun(const TraceRunLabel &label) override;
    void episode(const EpisodeTrace &e) override;

  private:
    std::ostream &os_;
    TraceRunLabel label_;
    std::uint64_t index_ = 0;
    bool headerWritten_ = false;
};

} // namespace rtu

#endif // RTU_TRACE_TRACE_HH
