#include "trace.hh"

#include "common/json.hh"

namespace rtu {

const char *
switchPhaseName(SwitchPhase phase)
{
    switch (phase) {
      case SwitchPhase::kIrqAssert: return "irq_assert";
      case SwitchPhase::kTrapTaken: return "trap_taken";
      case SwitchPhase::kStoreDone: return "store_done";
      case SwitchPhase::kSchedDone: return "sched_done";
      case SwitchPhase::kLoadDone: return "load_done";
      case SwitchPhase::kMret: return "mret";
    }
    return "?";
}

namespace {

/** JSONL phase timestamp: the cycle, or `null` when never reached. */
std::string
jsonPhase(Cycle c)
{
    return c == kNoPhase ? "null" : std::to_string(c);
}

/** CSV phase timestamp: the cycle, or an empty field. */
std::string
csvPhase(Cycle c)
{
    return c == kNoPhase ? "" : std::to_string(c);
}

} // namespace

void
JsonlTraceSink::beginRun(const TraceRunLabel &label)
{
    label_ = label;
    index_ = 0;
}

void
JsonlTraceSink::episode(const EpisodeTrace &e)
{
    os_ << "{\"core\":\"" << jsonEscape(label_.core)
        << "\",\"config\":\"" << jsonEscape(label_.config)
        << "\",\"workload\":\"" << jsonEscape(label_.workload)
        << "\",\"seed\":" << label_.seed
        << ",\"episode\":" << index_++
        << ",\"cause\":" << e.cause
        << ",\"from\":" << e.fromTask
        << ",\"to\":" << e.toTask
        << ",\"queued\":" << (e.queued ? "true" : "false")
        << ",\"preempted\":" << (e.preempted ? "true" : "false")
        << ",\"irq_assert\":" << e.irqAssert
        << ",\"trap_taken\":" << e.trapTaken
        << ",\"store_done\":" << jsonPhase(e.storeDone)
        << ",\"sched_done\":" << jsonPhase(e.schedDone)
        << ",\"load_done\":" << jsonPhase(e.loadDone)
        << ",\"mret\":" << e.mret
        << "}\n";
}

void
CsvTraceSink::beginRun(const TraceRunLabel &label)
{
    label_ = label;
    index_ = 0;
    if (!headerWritten_) {
        os_ << "core,config,workload,seed,episode,cause,from,to,queued,"
               "preempted,irq_assert,trap_taken,store_done,sched_done,"
               "load_done,mret\n";
        headerWritten_ = true;
    }
}

void
CsvTraceSink::episode(const EpisodeTrace &e)
{
    os_ << label_.core << ',' << label_.config << ',' << label_.workload
        << ',' << label_.seed << ',' << index_++ << ',' << e.cause << ','
        << e.fromTask << ',' << e.toTask << ',' << (e.queued ? 1 : 0)
        << ',' << (e.preempted ? 1 : 0) << ',' << e.irqAssert << ','
        << e.trapTaken << ',' << csvPhase(e.storeDone) << ','
        << csvPhase(e.schedDone) << ',' << csvPhase(e.loadDone) << ','
        << e.mret << '\n';
}

} // namespace rtu
