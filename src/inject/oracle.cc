#include "oracle.hh"

#include "common/logging.hh"
#include "cores/arch_state.hh"
#include "rtosunit/hw_lists.hh"

namespace rtu {

using namespace kernel;

namespace {

/** Registers a context switch must preserve: x1, x2, x5..x31 (x3/x4
 *  are never saved — the generated kernel and tasks don't use gp/tp,
 *  matching the paper's 29-word context). */
bool
savedReg(unsigned r)
{
    return r == 1 || r == 2 || (r >= 5 && r <= 31);
}

/** Cap on stored hit details; hitCount() keeps the full tally. */
constexpr unsigned kMaxStoredHits = 32;

} // namespace

KernelOracle::KernelOracle(Simulation &sim, const RtosUnitConfig &unit)
    : sim_(sim), unit_(unit)
{
    taskTableAddr_ = sim_.symbolAddr("k_task_table");
    currentTcbAddr_ = sim_.symbolAddr("k_current_tcb");
    if (!unit_.sched) {
        readyListsAddr_ = sim_.symbolAddr("k_ready_lists");
        delaySentinelAddr_ = sim_.symbolAddr("k_delay_sentinel");
        topReadyPrioAddr_ = sim_.symbolAddr("k_top_ready_prio");
    }
    // One stack symbol exists per created task; probe to find them.
    for (unsigned i = 0; i < kMaxTasks; ++i)
        stackBase_[i] = sim_.findSymbolAddr(csprintf("k_stack_%u", i));
    isrStackBase_ = sim_.symbolAddr("k_isr_stack");
}

void
KernelOracle::plantCanaries()
{
    for (unsigned i = 0; i < kMaxTasks; ++i) {
        if (stackBase_[i] != 0)
            sim_.mem().write32(stackBase_[i], kCanary);
    }
    sim_.mem().write32(isrStackBase_, kCanary);
}

Word
KernelOracle::read(Addr addr) const
{
    return sim_.mem().read32(addr);
}

Word
KernelOracle::taskTcb(unsigned id) const
{
    return read(taskTableAddr_ + 4 * id);
}

void
KernelOracle::report(const char *oracle, Cycle cycle, std::string detail)
{
    ++hitCount_;
    if (hits_.size() >= kMaxStoredHits)
        return;
    OracleHit hit;
    hit.oracle = oracle;
    hit.cycle = cycle;
    hit.episode = mretCount_;
    hit.detail = std::move(detail);
    hits_.push_back(std::move(hit));
}

void
KernelOracle::trapTaken(Word cause, Cycle entry_cycle, Word from_task)
{
    (void)cause;
    ++trapCount_;
    if (from_task >= kMaxTasks) {
        report("list", entry_cycle,
               csprintf("currentTaskId %u out of range at trap entry",
                        from_task));
        return;
    }
    // Snapshot the interrupted task's application-bank context. The
    // listener runs before any same-cycle unit tick, so lockstep
    // preload overwrites cannot have touched the bank yet.
    const ArchState &st = sim_.archState();
    CtxSnapshot &s = snaps_[from_task];
    for (unsigned r = 0; r < 32; ++r)
        s.regs[r] = st.bankReg(ArchState::kAppBank, r);
    s.mepc = st.csrs.mepc;
    s.valid = true;
}

void
KernelOracle::checkContext(Cycle cycle, Word to_task)
{
    if (to_task >= kMaxTasks) {
        report("list", cycle,
               csprintf("currentTaskId %u out of range at mret",
                        to_task));
        return;
    }
    CtxSnapshot &s = snaps_[to_task];
    if (!s.valid)
        return;  // first dispatch of this task: nothing to compare
    s.valid = false;
    const ArchState &st = sim_.archState();
    for (unsigned r = 1; r < 32; ++r) {
        if (!savedReg(r))
            continue;
        const Word got = st.bankReg(ArchState::kAppBank, r);
        if (got != s.regs[r]) {
            report("context", cycle,
                   csprintf("task %u resumed with x%u=0x%08x, switched "
                            "out with 0x%08x",
                            to_task, r, got, s.regs[r]));
            return;
        }
    }
    if (st.pc() != s.mepc) {
        report("context", cycle,
               csprintf("task %u resumed at pc 0x%08x, switched out at "
                        "0x%08x",
                        to_task, st.pc(), s.mepc));
    }
}

void
KernelOracle::checkSoftLists(Cycle cycle)
{
    // Map TCB address -> id for the linkage walk.
    std::array<Word, kMaxTasks> tcbOf{};
    for (unsigned i = 0; i < kMaxTasks; ++i) {
        tcbOf[i] = taskTcb(i);
        if (tcbOf[i] != 0 && read(tcbOf[i] + kTcbId) != i) {
            report("list", cycle,
                   csprintf("task table slot %u holds TCB with id %u", i,
                            read(tcbOf[i] + kTcbId)));
        }
    }
    const auto idOfTcb = [&](Word tcb) -> int {
        for (unsigned i = 0; i < kMaxTasks; ++i) {
            if (tcbOf[i] != 0 && tcbOf[i] == tcb)
                return static_cast<int>(i);
        }
        return -1;
    };

    // membership[id]: 0 = unseen, 1 + list ordinal otherwise
    // (ready lists are ordinals 0..7, the delay list is 8).
    std::array<int, kMaxTasks> membership{};
    membership.fill(-1);
    int maxReadyPrio = -1;

    const auto walk = [&](Addr sentinel, int listOrdinal,
                          const char *what) {
        Word prev = sentinel;
        Word node = read(sentinel + kTcbNext);
        unsigned hops = 0;
        Word lastWake = 0;
        while (node != sentinel) {
            if (++hops > kMaxTasks) {
                report("list", cycle,
                       csprintf("%s not sentinel-terminated after %u "
                                "hops",
                                what, hops));
                return;
            }
            const int id = idOfTcb(node);
            if (id < 0) {
                report("list", cycle,
                       csprintf("%s links unknown node 0x%08x", what,
                                node));
                return;
            }
            if (read(node + kTcbPrev) != prev) {
                report("list", cycle,
                       csprintf("%s: task %u prev link broken", what,
                                id));
                return;
            }
            if (membership[id] != -1) {
                report("list", cycle,
                       csprintf("task %u on two kernel lists", id));
                return;
            }
            membership[id] = listOrdinal;
            if (listOrdinal < static_cast<int>(kNumPriorities)) {
                const Word prio = read(node + kTcbPrio);
                if (prio != static_cast<Word>(listOrdinal)) {
                    report("list", cycle,
                           csprintf("%s holds task %u with priority %u",
                                    what, id, prio));
                    return;
                }
                maxReadyPrio = std::max(maxReadyPrio, listOrdinal);
            } else {
                const Word wake = read(node + kTcbWake);
                if (hops > 1 && wake < lastWake) {
                    report("list", cycle,
                           csprintf("delay list unsorted: task %u wakes "
                                    "at %u after %u",
                                    id, wake, lastWake));
                    return;
                }
                lastWake = wake;
            }
            prev = node;
            node = read(node + kTcbNext);
        }
        if (read(sentinel + kTcbPrev) != prev) {
            report("list", cycle,
                   csprintf("%s sentinel prev link broken", what));
        }
    };

    for (unsigned p = 0; p < kNumPriorities; ++p) {
        walk(readyListsAddr_ + p * kSentinelSize, static_cast<int>(p),
             csprintf("ready list %u", p).c_str());
    }
    walk(delaySentinelAddr_, static_cast<int>(kNumPriorities),
         "delay list");

    // Scheduler cross-check against the reference fixed-priority
    // policy: the running task sits on its ready list and no ready
    // task outranks it; the top-priority hint never understates.
    const Word cur = read(currentTcbAddr_);
    const int curId = idOfTcb(cur);
    if (curId < 0) {
        report("sched", cycle,
               csprintf("current TCB 0x%08x not in the task table",
                        cur));
        return;
    }
    const Word curPrio = read(cur + kTcbPrio);
    if (membership[curId] != static_cast<int>(curPrio)) {
        report("sched", cycle,
               csprintf("running task %u (priority %u) not on its "
                        "ready list",
                        curId, curPrio));
    }
    if (maxReadyPrio >= 0 && static_cast<Word>(maxReadyPrio) > curPrio) {
        report("sched", cycle,
               csprintf("running task %u has priority %u but a ready "
                        "task has %d",
                        curId, curPrio, maxReadyPrio));
    }
    const Word topHint = read(topReadyPrioAddr_);
    if (maxReadyPrio >= 0 && topHint < static_cast<Word>(maxReadyPrio)) {
        report("sched", cycle,
               csprintf("top-ready-priority hint %u below actual %d",
                        topHint, maxReadyPrio));
    }
}

void
KernelOracle::checkHwLists(Cycle cycle)
{
    RtosUnit *unit = sim_.unit();
    rtu_assert(unit != nullptr, "hw list oracle without an RTOSUnit");
    for (unsigned i = 0; i < kMaxTasks; ++i) {
        const Word tcb = taskTcb(i);
        if (tcb != 0 && read(tcb + kTcbId) != i) {
            report("list", cycle,
                   csprintf("task table slot %u holds TCB with id %u", i,
                            read(tcb + kTcbId)));
        }
    }
    std::array<int, kMaxTasks> membership{};
    membership.fill(-1);

    const auto scan = [&](const std::vector<HwSlot> &slots, int ordinal,
                          const char *what) {
        for (const HwSlot &s : slots) {
            if (!s.valid)
                continue;
            if (s.id >= kMaxTasks) {
                report("list", cycle,
                       csprintf("%s slot holds out-of-range id %u",
                                what, s.id));
                continue;
            }
            if (membership[s.id] != -1) {
                report("list", cycle,
                       csprintf("task %u duplicated across hardware "
                                "lists",
                                s.id));
                continue;
            }
            membership[s.id] = ordinal;
        }
    };
    scan(unit->readyList().slots(), 0, "hw ready list");
    scan(unit->delayList().slots(), 1, "hw delay list");

    const Word cur = read(currentTcbAddr_);
    Word curId = kMaxTasks;
    for (unsigned i = 0; i < kMaxTasks; ++i) {
        if (taskTcb(i) != 0 && taskTcb(i) == cur)
            curId = i;
    }
    if (curId >= kMaxTasks) {
        report("sched", cycle,
               csprintf("current TCB 0x%08x not in the task table",
                        cur));
        return;
    }
    const Word curPrio = read(cur + kTcbPrio);
    if (membership[curId] != 0) {
        report("sched", cycle,
               csprintf("running task %u not on the hw ready list",
                        curId));
    }
    // Priority comparison is order-independent, so an in-flight sort
    // phase doesn't matter; membership above likewise.
    for (const HwSlot &s : unit->readyList().slots()) {
        if (s.valid && s.prio > curPrio) {
            report("sched", cycle,
                   csprintf("running task %u has priority %u but ready "
                            "task %u has %u",
                            curId, curPrio, s.id, s.prio));
            break;
        }
    }
}

void
KernelOracle::checkStructure(Cycle cycle)
{
    if (unit_.sched)
        checkHwLists(cycle);
    else
        checkSoftLists(cycle);
}

void
KernelOracle::checkCanaries(Cycle cycle)
{
    for (unsigned i = 0; i < kMaxTasks; ++i) {
        if (stackBase_[i] == 0)
            continue;
        const Word got = read(stackBase_[i]);
        if (got != kCanary) {
            report("canary", cycle,
                   csprintf("task %u stack canary smashed (0x%08x)", i,
                            got));
        }
    }
    if (read(isrStackBase_) != kCanary) {
        report("canary", cycle,
               csprintf("ISR stack canary smashed (0x%08x)",
                        read(isrStackBase_)));
    }
}

void
KernelOracle::mretCompleted(Cycle cycle, Word to_task)
{
    ++mretCount_;
    checkContext(cycle, to_task);
    checkStructure(cycle);
    checkCanaries(cycle);
}

void
KernelOracle::finalCheck()
{
    const Cycle cycle = sim_.now();
    checkCanaries(cycle);
    if (mretCount_ > 0)
        checkStructure(cycle);
}

} // namespace rtu
