/**
 * @file
 * Runtime kernel-invariant oracles (the detection half of the fault
 * campaign). One KernelOracle rides a run as a RunObserver and checks,
 * at every trap/mret boundary:
 *
 *  - context integrity: the register context a task resumes with
 *    (x1, x2, x5..x31 + pc) equals what it was switched out with —
 *    exactly the property every S/L/D/O/P mechanism must preserve;
 *  - list structure (software scheduler): ready/delay lists are
 *    well-formed circular doubly-linked lists of known TCBs, with
 *    per-list priority fields, sorted delay wake times, and exclusive
 *    membership; (hardware scheduler): slot arrays hold in-range,
 *    duplicate-free task ids with exclusive ready/delay membership;
 *  - scheduler decision: the resumed task's priority is >= every
 *    ready task's priority (the fixed-priority reference policy);
 *  - stack canaries: a magic word planted at the base of every task
 *    stack and the ISR stack is intact.
 *
 * A clean run must never fire an oracle (CI asserts this across the
 * full configuration matrix); any firing under injection classifies
 * the fault as detected-oracle.
 */

#ifndef RTU_INJECT_ORACLE_HH
#define RTU_INJECT_ORACLE_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "harness/simulation.hh"
#include "kernel/layout.hh"
#include "rtosunit/config.hh"

namespace rtu {

/** One oracle firing (only the first few keep their detail text). */
struct OracleHit
{
    std::string oracle;  ///< "context", "list", "sched", "canary"
    Cycle cycle = 0;
    unsigned episode = 0;  ///< mret ordinal at detection time
    std::string detail;
};

class KernelOracle : public RunObserver
{
  public:
    /** Magic planted at every stack base. */
    static constexpr Word kCanary = 0x5AFECA7E;

    KernelOracle(Simulation &sim, const RtosUnitConfig &unit);

    /** Plant stack canaries; call before Simulation::run(). */
    void plantCanaries();

    /** End-of-run sweep (canaries + structure); call after run(). */
    void finalCheck();

    void trapTaken(Word cause, Cycle entry_cycle,
                   Word from_task) override;
    void mretCompleted(Cycle cycle, Word to_task) override;

    bool detected() const { return hitCount_ > 0; }
    unsigned hitCount() const { return hitCount_; }
    /** First firings (capped; hitCount() keeps the full tally). */
    const std::vector<OracleHit> &hits() const { return hits_; }
    /** Completed mret episodes observed so far. */
    unsigned episodes() const { return mretCount_; }

  private:
    struct CtxSnapshot
    {
        bool valid = false;
        std::array<Word, 32> regs{};
        Word mepc = 0;
    };

    void report(const char *oracle, Cycle cycle, std::string detail);
    Word taskTcb(unsigned id) const;
    Word read(Addr addr) const;

    void checkContext(Cycle cycle, Word to_task);
    void checkStructure(Cycle cycle);
    void checkSoftLists(Cycle cycle);
    void checkHwLists(Cycle cycle);
    void checkCanaries(Cycle cycle);

    Simulation &sim_;
    RtosUnitConfig unit_;

    Addr taskTableAddr_ = 0;
    Addr readyListsAddr_ = 0;
    Addr delaySentinelAddr_ = 0;
    Addr currentTcbAddr_ = 0;
    Addr topReadyPrioAddr_ = 0;
    std::array<Addr, kernel::kMaxTasks> stackBase_{};
    Addr isrStackBase_ = 0;

    std::array<CtxSnapshot, kernel::kMaxTasks> snaps_{};
    unsigned trapCount_ = 0;
    unsigned mretCount_ = 0;
    unsigned hitCount_ = 0;
    std::vector<OracleHit> hits_;
};

} // namespace rtu

#endif // RTU_INJECT_ORACLE_HH
