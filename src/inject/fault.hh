/**
 * @file
 * Fault models for the injection campaign (the "what can go wrong"
 * half of the robustness engine; the oracles in oracle.hh are the
 * "how would we notice" half).
 *
 * A FaultSpec is a small, fully deterministic description of one
 * perturbation. Faults trigger on *episode ordinals* (the n-th
 * trap/mret boundary), not raw cycles, so the same plan stresses the
 * same kernel activity across configurations with very different
 * switch latencies. Plans are derived from (campaign seed, sweep
 * point key, fault index) through SplitMix64, so a campaign is
 * reproducible from its seed alone at any thread count.
 */

#ifndef RTU_INJECT_FAULT_HH
#define RTU_INJECT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "rtosunit/config.hh"
#include "sweep/sweep.hh"
#include "workloads/workloads.hh"

namespace rtu {

enum class FaultKind
{
    kCtxFlip,       ///< bit flips in a saved context/frame word
    kTcbField,      ///< bit flips in a TCB field of a live task
    kIrqSpurious,   ///< extra external interrupt at an arbitrary cycle
    kIrqDropped,    ///< one scheduled external interrupt never fires
    kIrqCoalesced,  ///< two adjacent external interrupts merge into one
    kMemStall,      ///< RTOSUnit memory port blocked for N cycles
    kFsmStall,      ///< RTOSUnit FSM frozen for N cycles mid-episode
    kFsmAbort,      ///< RTOSUnit store/restore FSM killed mid-drain
};

/** Stable kebab-case name ("ctx-flip", "irq-spurious", ...). */
const char *faultKindName(FaultKind kind);

/**
 * One injected fault. Field meaning depends on kind; unused fields
 * stay at their defaults and are still serialized (byte-stable JSONL
 * schema). `episode` counts mret completions for state corruption
 * (the saved image exists only after the switch) and trap entries for
 * the FSM/port perturbations (which must hit a drain in flight).
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::kCtxFlip;
    unsigned episode = 1;   ///< 1-based trigger ordinal
    unsigned word = 0;      ///< saved-image word index [0, 30)
    Word bitMask = 1;       ///< bits flipped (1-3 bits set)
    Word tcbField = 0;      ///< byte offset of the corrupted TCB field
    unsigned taskSel = 0;   ///< victim selector among live tasks
    Cycle cycles = 0;       ///< stall length / spurious-IRQ cycle
    unsigned irqIndex = 0;  ///< schedule entry dropped/coalesced

    /** Human-readable one-liner for logs and test failures. */
    std::string describe() const;
};

/**
 * Fault kinds that make sense for one (configuration, workload)
 * pair: IRQ-schedule faults need scheduled external interrupts, and
 * the FSM/port perturbations need an RTOSUnit to perturb (CV32RT's
 * drain engine has no externally stallable FSM in this model).
 */
std::vector<FaultKind> applicableFaultKinds(const RtosUnitConfig &unit,
                                            const WorkloadInfo &winfo);

/**
 * Derive @p count fault specs for @p point. Deterministic in
 * (campaign_seed, point.key(), index); independent of thread count
 * and of every other point.
 */
std::vector<FaultSpec> makeFaultPlan(std::uint64_t campaign_seed,
                                     const SweepPoint &point,
                                     const WorkloadInfo &winfo,
                                     unsigned count);

} // namespace rtu

#endif // RTU_INJECT_FAULT_HH
