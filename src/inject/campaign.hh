/**
 * @file
 * Fault-injection campaign engine: for every sweep point, run one
 * golden (fault-free) reference with the oracles attached, then one
 * run per planned fault, and classify each outcome:
 *
 *   masked             fault fired (or never triggered) and the run
 *                      matched the golden exit code + checksum stream
 *   detected-oracle    a kernel-invariant oracle fired
 *   detected-watchdog  the no-retire watchdog aborted the run
 *   hang               the run hit the cycle limit still making
 *                      progress (e.g. a livelocked scheduler)
 *   silent-corruption  the run exited "cleanly" with a wrong exit
 *                      code or checksum stream — the dangerous class
 *
 * Campaigns reuse the sweep's determinism contract: outcomes land in
 * pre-sized index-addressed slots via SweepRunner::forEachIndex, so
 * identical (--seed, grid) produce byte-identical JSONL at any
 * --threads. Detection coverage (detected / non-masked) feeds the
 * explorer's robustness objective.
 */

#ifndef RTU_INJECT_CAMPAIGN_HH
#define RTU_INJECT_CAMPAIGN_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "fault.hh"
#include "sweep/sweep.hh"

namespace rtu {

enum class FaultOutcome
{
    kMasked,
    kDetectedOracle,
    kDetectedWatchdog,
    kSilentCorruption,
    kHang,
};

constexpr unsigned kNumFaultOutcomes = 5;

const char *faultOutcomeName(FaultOutcome outcome);

struct CampaignSpec
{
    /** Base grid; faults fan out per point. Points must be seeded
     *  (SweepSpec::points() or reseed()). */
    std::vector<SweepPoint> points;
    unsigned faultsPerPoint = 8;
    /** Campaign seed: the only input of the fault plans. */
    std::uint64_t seed = 1;
    bool fastForward = true;
    /** Superblock execution (default on). Classification must be
     *  invariant under this knob — CI runs the selftest both ways. */
    bool blockExec = true;
};

/**
 * The workload-semantic guest events of one run as a sorted multiset
 * of (tag, value) pairs: work items, mutex/semaphore operations and
 * checksums — but not the scheduling trace (task dispatches, ISR
 * entries), whose counts legitimately vary under benign timing
 * perturbation. Two runs with equal exit codes and equal semantic
 * multisets computed the same results.
 */
using SemanticEvents = std::vector<std::pair<Word, Word>>;

/** Golden reference of one point (fault-free, oracles attached). */
struct GoldenRecord
{
    SweepPoint point;
    RunResult run;
    SemanticEvents events;
    unsigned episodes = 0;
    /** Oracle firings on the clean run: any nonzero value is an
     *  oracle soundness bug (CI asserts zero). */
    unsigned oracleHits = 0;
    std::string oracleDetail;
};

/** One injected run, classified against its point's golden. */
struct FaultRunRecord
{
    std::size_t pointIndex = 0;
    FaultSpec fault;
    /** False when the trigger episode was never reached. */
    bool fired = false;
    FaultOutcome outcome = FaultOutcome::kMasked;
    unsigned oracleHits = 0;
    std::string oracleName;
    Cycle oracleCycle = 0;
    unsigned oracleEpisode = 0;
    std::string oracleDetail;
    RunStatus status = RunStatus::kExited;
    Word exitCode = 0;
    Cycle cycles = 0;
};

struct CampaignResult
{
    std::vector<GoldenRecord> goldens;  ///< one per spec point
    std::vector<FaultRunRecord> faults; ///< point-major plan order

    unsigned countOf(FaultOutcome outcome) const;
    /** Total clean-run oracle firings (soundness: must be zero). */
    unsigned cleanOracleHits() const;
    /**
     * detected / (injected - masked); 1.0 when every fault was
     * masked (nothing escaped because nothing took effect).
     */
    double detectionCoverage() const;
};

CampaignResult runCampaign(const CampaignSpec &spec,
                           const SweepRunner &runner);

/**
 * Pure outcome classifier (exposed for direct testing). Precedence:
 * oracle > watchdog > hang > golden comparison.
 */
FaultOutcome classifyOutcome(unsigned oracle_hits, RunStatus status,
                             Word exit_code,
                             const SemanticEvents &events,
                             const GoldenRecord &golden);

/**
 * Run one hand-picked fault against @p point: golden run, injected
 * run, classification — the seeded-defect fixture path (tests,
 * bench_inject --selftest). @p golden_out optionally receives the
 * golden record (clean-run oracle soundness checks).
 */
FaultRunRecord runSingleFault(const SweepPoint &point,
                              const FaultSpec &fault,
                              bool fast_forward = true,
                              GoldenRecord *golden_out = nullptr,
                              bool block_exec = true);

/** One byte-stable JSONL line per injected run. */
void writeCampaignJsonl(std::ostream &os, const CampaignSpec &spec,
                        const CampaignResult &result);

} // namespace rtu

#endif // RTU_INJECT_CAMPAIGN_HH
