#include "fault.hh"

#include "common/logging.hh"
#include "kernel/layout.hh"

namespace rtu {

namespace {

/** TCB fields worth corrupting (linkage, identity, timing, stack). */
constexpr Word kTcbFields[] = {
    kernel::kTcbTop,  kernel::kTcbId,   kernel::kTcbPrio,
    kernel::kTcbNext, kernel::kTcbPrev, kernel::kTcbWake,
};

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kCtxFlip: return "ctx-flip";
      case FaultKind::kTcbField: return "tcb-field";
      case FaultKind::kIrqSpurious: return "irq-spurious";
      case FaultKind::kIrqDropped: return "irq-dropped";
      case FaultKind::kIrqCoalesced: return "irq-coalesced";
      case FaultKind::kMemStall: return "mem-stall";
      case FaultKind::kFsmStall: return "fsm-stall";
      case FaultKind::kFsmAbort: return "fsm-abort";
    }
    return "?";
}

std::string
FaultSpec::describe() const
{
    switch (kind) {
      case FaultKind::kCtxFlip:
        return csprintf("ctx-flip ep%u word %u mask 0x%x", episode, word,
                        bitMask);
      case FaultKind::kTcbField:
        return csprintf("tcb-field ep%u sel %u offset %u mask 0x%x",
                        episode, taskSel, tcbField, bitMask);
      case FaultKind::kIrqSpurious:
        return csprintf("irq-spurious at cycle %llu",
                        static_cast<unsigned long long>(cycles));
      case FaultKind::kIrqDropped:
        return csprintf("irq-dropped index %u", irqIndex);
      case FaultKind::kIrqCoalesced:
        return csprintf("irq-coalesced index %u", irqIndex);
      case FaultKind::kMemStall:
        return csprintf("mem-stall ep%u for %llu cycles", episode,
                        static_cast<unsigned long long>(cycles));
      case FaultKind::kFsmStall:
        return csprintf("fsm-stall ep%u for %llu cycles", episode,
                        static_cast<unsigned long long>(cycles));
      case FaultKind::kFsmAbort:
        return csprintf("fsm-abort ep%u after %llu cycles", episode,
                        static_cast<unsigned long long>(cycles));
    }
    return "?";
}

std::vector<FaultKind>
applicableFaultKinds(const RtosUnitConfig &unit, const WorkloadInfo &winfo)
{
    std::vector<FaultKind> kinds{FaultKind::kCtxFlip,
                                 FaultKind::kTcbField,
                                 FaultKind::kIrqSpurious};
    if (!winfo.extIrqSchedule.empty())
        kinds.push_back(FaultKind::kIrqDropped);
    if (winfo.extIrqSchedule.size() >= 2)
        kinds.push_back(FaultKind::kIrqCoalesced);
    if (unit.anyHardware() && !unit.cv32rt) {
        kinds.push_back(FaultKind::kMemStall);
        kinds.push_back(FaultKind::kFsmStall);
        if (unit.store)
            kinds.push_back(FaultKind::kFsmAbort);
    }
    return kinds;
}

std::vector<FaultSpec>
makeFaultPlan(std::uint64_t campaign_seed, const SweepPoint &point,
              const WorkloadInfo &winfo, unsigned count)
{
    const std::vector<FaultKind> kinds =
        applicableFaultKinds(point.unit, winfo);
    rtu_assert(!kinds.empty(), "no applicable fault kinds");

    std::vector<FaultSpec> plan;
    plan.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        // Re-seeding per fault index keeps every spec independent of
        // how many draws earlier specs consumed.
        SplitMix64 rng(campaign_seed ^ fnv1a(point.key()) ^
                       (0x1000193ull * (i + 1)));
        FaultSpec f;
        f.kind = kinds[rng.below(kinds.size())];
        f.episode = 1 + static_cast<unsigned>(rng.below(12));
        f.word = static_cast<unsigned>(rng.below(30));

        // 1-3 distinct bits; OR keeps the count if positions collide.
        const unsigned bits = 1 + static_cast<unsigned>(rng.below(3));
        f.bitMask = 0;
        for (unsigned b = 0; b < bits; ++b)
            f.bitMask |= Word{1} << rng.below(32);

        f.tcbField = kTcbFields[rng.below(std::size(kTcbFields))];
        f.taskSel = static_cast<unsigned>(rng.below(kernel::kMaxTasks));
        switch (f.kind) {
          case FaultKind::kMemStall:
          case FaultKind::kFsmStall:
            f.cycles = 1 + rng.below(64);
            break;
          case FaultKind::kFsmAbort:
            // Offset from trap entry; store drains run ~30+ cycles.
            f.cycles = rng.below(16);
            break;
          case FaultKind::kIrqSpurious:
            f.cycles = 1000 + rng.below(120000);
            break;
          default:
            f.cycles = 0;
            break;
        }
        if (!winfo.extIrqSchedule.empty()) {
            f.irqIndex = static_cast<unsigned>(
                rng.below(winfo.extIrqSchedule.size()));
        }
        plan.push_back(f);
    }
    return plan;
}

} // namespace rtu
