#include "campaign.hh"

#include <algorithm>
#include <memory>

#include "common/json.hh"
#include "common/logging.hh"
#include "kernel/layout.hh"
#include "oracle.hh"
#include "sim/hostio.hh"
#include "sim/memmap.hh"

namespace rtu {

namespace {

/**
 * Episode-triggered injector. State corruption (ctx/TCB bit flips)
 * fires at the mret completing the trigger episode — the saved image
 * of the switched-out task exists by then and will be consumed at its
 * next resume. Unit perturbations (stalls, aborts) fire at trap entry
 * of the trigger episode, while a drain is (or is about to be) in
 * flight. IRQ-schedule faults are applied before the run starts and
 * never reach this class.
 */
class FaultInjector : public RunObserver, public Clocked
{
  public:
    FaultInjector(Simulation &sim, const FaultSpec &fault,
                  const RtosUnitConfig &unit)
        : sim_(sim), fault_(fault), unit_(unit),
          taskTableAddr_(sim.symbolAddr("k_task_table"))
    {}

    bool fired() const { return fired_; }

    void
    trapTaken(Word cause, Cycle entry_cycle, Word from_task) override
    {
        (void)cause;
        ++trapCount_;
        lastFrom_ = from_task;
        if (trapCount_ != fault_.episode)
            return;
        RtosUnit *unit = sim_.unit();
        switch (fault_.kind) {
          case FaultKind::kMemStall:
            if (unit) {
                unit->injectPortBlock(fault_.cycles);
                fired_ = true;
            }
            break;
          case FaultKind::kFsmStall:
            if (unit) {
                unit->injectStall(fault_.cycles);
                fired_ = true;
            }
            break;
          case FaultKind::kFsmAbort:
            abortAt_ = entry_cycle + fault_.cycles;
            break;
          default:
            break;
        }
    }

    void
    mretCompleted(Cycle cycle, Word to_task) override
    {
        (void)cycle;
        (void)to_task;
        ++mretCount_;
        if (mretCount_ != fault_.episode)
            return;
        if (fault_.kind == FaultKind::kCtxFlip)
            applyCtxFlip();
        else if (fault_.kind == FaultKind::kTcbField)
            applyTcbFlip();
    }

    void
    tick(Cycle now) override
    {
        if (abortAt_ == kNoEvent || now < abortAt_)
            return;
        abortAt_ = kNoEvent;
        if (RtosUnit *unit = sim_.unit()) {
            const char *aborted = unit->injectAbortFsm();
            fired_ = aborted[0] != '\0';
        }
    }

    Cycle
    nextEventAt(Cycle now) const override
    {
        if (abortAt_ == kNoEvent)
            return kNoEvent;
        return abortAt_ <= now ? now : abortAt_;
    }

  private:
    void
    flipWord(Addr addr)
    {
        MemSystem &mem = sim_.mem();
        mem.write32(addr, mem.read32(addr) ^ fault_.bitMask);
        fired_ = true;
    }

    /** Flip a word in the saved image of the just-switched-out task:
     *  its fixed context region (store configurations) or the stack
     *  frame its TCB points at (frame configurations). */
    void
    applyCtxFlip()
    {
        if (lastFrom_ >= kernel::kMaxTasks)
            return;
        if (unit_.store) {
            flipWord(memmap::ctxAddr(static_cast<TaskId>(lastFrom_)) +
                     4 * fault_.word);
            return;
        }
        const Word tcb =
            sim_.mem().read32(taskTableAddr_ + 4 * lastFrom_);
        if (tcb == 0)
            return;
        const Word top = sim_.mem().read32(tcb + kernel::kTcbTop);
        if (top == 0)
            return;
        flipWord(top + 4 * fault_.word);
    }

    void
    applyTcbFlip()
    {
        std::vector<Word> live;
        for (unsigned i = 0; i < kernel::kMaxTasks; ++i) {
            const Word tcb = sim_.mem().read32(taskTableAddr_ + 4 * i);
            if (tcb != 0)
                live.push_back(tcb);
        }
        if (live.empty())
            return;
        flipWord(live[fault_.taskSel % live.size()] + fault_.tcbField);
    }

    Simulation &sim_;
    FaultSpec fault_;
    RtosUnitConfig unit_;
    Addr taskTableAddr_;
    unsigned trapCount_ = 0;
    unsigned mretCount_ = 0;
    Word lastFrom_ = 0;
    Cycle abortAt_ = kNoEvent;
    bool fired_ = false;
};

/** Fan one RunObserver stream out to the oracle and the injector.
 *  Oracle first: a boundary's checks see pre-injection state, so a
 *  fault at episode n is detectable from episode n+1 onward. */
class ObserverChain : public RunObserver
{
  public:
    ObserverChain(RunObserver *first, RunObserver *second)
        : first_(first), second_(second)
    {}

    void
    trapTaken(Word cause, Cycle entry_cycle, Word from_task) override
    {
        if (first_)
            first_->trapTaken(cause, entry_cycle, from_task);
        if (second_)
            second_->trapTaken(cause, entry_cycle, from_task);
    }

    void
    mretCompleted(Cycle cycle, Word to_task) override
    {
        if (first_)
            first_->mretCompleted(cycle, to_task);
        if (second_)
            second_->mretCompleted(cycle, to_task);
    }

  private:
    RunObserver *first_;
    RunObserver *second_;
};

bool
isIrqFault(FaultKind kind)
{
    return kind == FaultKind::kIrqSpurious ||
           kind == FaultKind::kIrqDropped ||
           kind == FaultKind::kIrqCoalesced;
}

std::vector<Cycle>
perturbIrqSchedule(const FaultSpec &fault,
                   const std::vector<Cycle> &schedule)
{
    std::vector<Cycle> out = schedule;
    switch (fault.kind) {
      case FaultKind::kIrqSpurious:
        out.push_back(fault.cycles);
        std::sort(out.begin(), out.end());
        break;
      case FaultKind::kIrqDropped:
        rtu_assert(!out.empty(), "irq-dropped without a schedule");
        out.erase(out.begin() +
                  static_cast<std::ptrdiff_t>(fault.irqIndex %
                                              out.size()));
        break;
      case FaultKind::kIrqCoalesced: {
        rtu_assert(out.size() >= 2, "irq-coalesced needs two irqs");
        const std::size_t i = fault.irqIndex % (out.size() - 1);
        // Move the earlier assert onto the later one; the driver
        // raises one line for both, the guest acks once.
        out[i] = out[i + 1];
        break;
      }
      default:
        panic("perturbIrqSchedule on %s", faultKindName(fault.kind));
    }
    return out;
}

bool
semanticTag(std::uint8_t t)
{
    return t == tag::kWorkItem || t == tag::kMutexAcq ||
           t == tag::kMutexRel || t == tag::kSemGive ||
           t == tag::kSemTake || t == tag::kCheck;
}

/** Everything one instrumented run produces. */
struct InstrumentedRun
{
    RunResult run;
    SemanticEvents events;
    unsigned episodes = 0;
    bool injectorFired = false;
    unsigned oracleHits = 0;
    std::vector<OracleHit> hits;
};

InstrumentedRun
runInstrumented(const SweepPoint &point, bool fast_forward,
                const FaultSpec *fault, bool block_exec = true)
{
    const auto workload = makeWorkload(point.workload, point.iterations);
    const WorkloadInfo winfo = workload->info();

    RunOptions opts;
    opts.timerPeriodCycles = point.timerPeriodCycles;
    opts.naxCtxQueueEntries = point.naxCtxQueueEntries;
    opts.seed = point.seed;
    opts.fastForward = fast_forward;
    opts.blockExec = block_exec;

    InstrumentedRun out;
    std::vector<Cycle> irqOverride;
    if (fault && isIrqFault(fault->kind)) {
        irqOverride = perturbIrqSchedule(*fault, winfo.extIrqSchedule);
        opts.extIrqOverride = &irqOverride;
        out.injectorFired = true;  // the schedule itself is the fault
    }

    std::unique_ptr<KernelOracle> oracle;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ObserverChain> chain;
    opts.preRun = [&](Simulation &sim) {
        oracle = std::make_unique<KernelOracle>(sim, point.unit);
        oracle->plantCanaries();
        if (fault && !isIrqFault(fault->kind)) {
            injector =
                std::make_unique<FaultInjector>(sim, *fault, point.unit);
            sim.addClocked(injector.get());
        }
        chain = std::make_unique<ObserverChain>(oracle.get(),
                                                injector.get());
        sim.setRunObserver(chain.get());
    };
    opts.postRun = [&](Simulation &sim) {
        oracle->finalCheck();
        for (const GuestEvent &e : sim.hostIo().events()) {
            if (semanticTag(e.tag))
                out.events.emplace_back(e.tag, e.value);
        }
        std::sort(out.events.begin(), out.events.end());
    };

    out.run = runWorkload(point.core, point.unit, *workload, opts);
    out.episodes = oracle->episodes();
    out.oracleHits = oracle->hitCount();
    out.hits = oracle->hits();
    if (injector)
        out.injectorFired = injector->fired();
    return out;
}

} // namespace

FaultOutcome
classifyOutcome(unsigned oracle_hits, RunStatus status, Word exit_code,
                const SemanticEvents &events, const GoldenRecord &golden)
{
    if (oracle_hits > 0)
        return FaultOutcome::kDetectedOracle;
    if (status == RunStatus::kNoRetire ||
        status == RunStatus::kGuestFault) {
        // A crash (illegal instruction, bus error) is caught by the
        // platform's exception path in a real deployment — grouped
        // with the watchdog as hardware-level detection.
        return FaultOutcome::kDetectedWatchdog;
    }
    if (status == RunStatus::kCycleLimit)
        return FaultOutcome::kHang;
    // Clean exit: compare the observable result (exit code + semantic
    // event multiset), not cycle counts or interleavings — timing
    // faults legitimately shift schedules without corrupting anything.
    if (exit_code == golden.run.exitCode && events == golden.events)
        return FaultOutcome::kMasked;
    return FaultOutcome::kSilentCorruption;
}

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::kMasked: return "masked";
      case FaultOutcome::kDetectedOracle: return "detected-oracle";
      case FaultOutcome::kDetectedWatchdog: return "detected-watchdog";
      case FaultOutcome::kSilentCorruption: return "silent-corruption";
      case FaultOutcome::kHang: return "hang";
    }
    return "?";
}

unsigned
CampaignResult::countOf(FaultOutcome outcome) const
{
    unsigned n = 0;
    for (const FaultRunRecord &f : faults) {
        if (f.outcome == outcome)
            ++n;
    }
    return n;
}

unsigned
CampaignResult::cleanOracleHits() const
{
    unsigned n = 0;
    for (const GoldenRecord &g : goldens)
        n += g.oracleHits;
    return n;
}

double
CampaignResult::detectionCoverage() const
{
    const unsigned detected = countOf(FaultOutcome::kDetectedOracle) +
                              countOf(FaultOutcome::kDetectedWatchdog);
    const unsigned masked = countOf(FaultOutcome::kMasked);
    const auto total = static_cast<unsigned>(faults.size());
    if (total == masked)
        return 1.0;
    return static_cast<double>(detected) /
           static_cast<double>(total - masked);
}

FaultRunRecord
runSingleFault(const SweepPoint &point, const FaultSpec &fault,
               bool fast_forward, GoldenRecord *golden_out,
               bool block_exec)
{
    GoldenRecord golden;
    {
        const InstrumentedRun g =
            runInstrumented(point, fast_forward, nullptr, block_exec);
        golden.point = point;
        golden.run = g.run;
        golden.events = g.events;
        golden.episodes = g.episodes;
        golden.oracleHits = g.oracleHits;
        if (!g.hits.empty())
            golden.oracleDetail = g.hits.front().detail;
    }

    const InstrumentedRun r =
        runInstrumented(point, fast_forward, &fault, block_exec);
    FaultRunRecord rec;
    rec.fault = fault;
    rec.fired = r.injectorFired;
    rec.oracleHits = r.oracleHits;
    if (!r.hits.empty()) {
        const OracleHit &h = r.hits.front();
        rec.oracleName = h.oracle;
        rec.oracleCycle = h.cycle;
        rec.oracleEpisode = h.episode;
        rec.oracleDetail = h.detail;
    }
    rec.status = r.run.status;
    rec.exitCode = r.run.exitCode;
    rec.cycles = r.run.cycles;
    rec.outcome = classifyOutcome(r.oracleHits, r.run.status,
                                  r.run.exitCode, r.events, golden);
    if (golden_out)
        *golden_out = golden;
    return rec;
}

CampaignResult
runCampaign(const CampaignSpec &spec, const SweepRunner &runner)
{
    rtu_assert(!spec.points.empty(), "campaign without points");
    rtu_assert(spec.faultsPerPoint > 0, "campaign without faults");

    CampaignResult res;
    res.goldens.resize(spec.points.size());

    // Stage 1: golden references, sharded across the pool.
    runner.forEachIndex(spec.points.size(), [&](std::size_t i) {
        const SweepPoint &pt = spec.points[i];
        const InstrumentedRun r =
            runInstrumented(pt, spec.fastForward, nullptr, spec.blockExec);
        GoldenRecord &g = res.goldens[i];
        g.point = pt;
        g.run = r.run;
        g.events = r.events;
        g.episodes = r.episodes;
        g.oracleHits = r.oracleHits;
        if (!r.hits.empty()) {
            const OracleHit &h = r.hits.front();
            g.oracleDetail = csprintf("%s@%llu: %s", h.oracle.c_str(),
                                      static_cast<unsigned long long>(
                                          h.cycle),
                                      h.detail.c_str());
        }
    });

    // Fault plans are pure functions of (seed, point); generate them
    // serially so the flattened order is the plan order.
    struct PlannedFault
    {
        std::size_t pointIndex;
        FaultSpec fault;
    };
    std::vector<PlannedFault> plan;
    plan.reserve(spec.points.size() * spec.faultsPerPoint);
    for (std::size_t i = 0; i < spec.points.size(); ++i) {
        const SweepPoint &pt = spec.points[i];
        const WorkloadInfo winfo =
            makeWorkload(pt.workload, pt.iterations)->info();
        for (const FaultSpec &f :
             makeFaultPlan(spec.seed, pt, winfo, spec.faultsPerPoint))
            plan.push_back({i, f});
    }

    // Stage 2: injected runs, classified against their goldens.
    res.faults.resize(plan.size());
    runner.forEachIndex(plan.size(), [&](std::size_t j) {
        const PlannedFault &pf = plan[j];
        const SweepPoint &pt = spec.points[pf.pointIndex];
        const InstrumentedRun r =
            runInstrumented(pt, spec.fastForward, &pf.fault,
                            spec.blockExec);
        FaultRunRecord &rec = res.faults[j];
        rec.pointIndex = pf.pointIndex;
        rec.fault = pf.fault;
        rec.fired = r.injectorFired;
        rec.oracleHits = r.oracleHits;
        if (!r.hits.empty()) {
            const OracleHit &h = r.hits.front();
            rec.oracleName = h.oracle;
            rec.oracleCycle = h.cycle;
            rec.oracleEpisode = h.episode;
            rec.oracleDetail = h.detail;
        }
        rec.status = r.run.status;
        rec.exitCode = r.run.exitCode;
        rec.cycles = r.run.cycles;
        rec.outcome =
            classifyOutcome(r.oracleHits, r.run.status, r.run.exitCode,
                            r.events, res.goldens[pf.pointIndex]);
    });
    return res;
}

void
writeCampaignJsonl(std::ostream &os, const CampaignSpec &spec,
                   const CampaignResult &result)
{
    for (const FaultRunRecord &f : result.faults) {
        const SweepPoint &pt = spec.points[f.pointIndex];
        os << "{\"core\":\"" << jsonEscape(coreKindName(pt.core))
           << "\",\"config\":\"" << jsonEscape(pt.unit.name())
           << "\",\"workload\":\"" << jsonEscape(pt.workload)
           << "\",\"iterations\":" << pt.iterations
           << ",\"timer_period\":" << pt.timerPeriodCycles
           << ",\"ctxqueue\":" << pt.naxCtxQueueEntries
           << ",\"campaign_seed\":" << spec.seed
           << ",\"fault\":\"" << faultKindName(f.fault.kind)
           << "\",\"episode\":" << f.fault.episode
           << ",\"word\":" << f.fault.word
           << ",\"bit_mask\":" << f.fault.bitMask
           << ",\"tcb_field\":" << f.fault.tcbField
           << ",\"task_sel\":" << f.fault.taskSel
           << ",\"cycles_param\":" << f.fault.cycles
           << ",\"irq_index\":" << f.fault.irqIndex
           << ",\"fired\":" << (f.fired ? "true" : "false")
           << ",\"outcome\":\"" << faultOutcomeName(f.outcome)
           << "\",\"oracle_hits\":" << f.oracleHits
           << ",\"oracle\":\"" << jsonEscape(f.oracleName)
           << "\",\"oracle_cycle\":" << f.oracleCycle
           << ",\"oracle_episode\":" << f.oracleEpisode
           << ",\"oracle_detail\":\"" << jsonEscape(f.oracleDetail)
           << "\",\"status\":\"" << runStatusName(f.status)
           << "\",\"exit_code\":" << f.exitCode
           << ",\"cycles\":" << f.cycles << "}\n";
    }
}

} // namespace rtu
