#include "lower.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "kernel/kernel.hh"

namespace rtu {

namespace {

using kernel::kMaxTasks;

/** Calibration shape: one task, alternating short/long busy jobs. */
constexpr unsigned kCalJobs = 8;
constexpr unsigned kCalShortIters = 16;
constexpr unsigned kCalLongIters = 96;
constexpr unsigned kCalPeriodTicks = 50;
constexpr unsigned kCalPhaseTicks = 2;

unsigned
calIters(unsigned job)
{
    return (job % 2) ? kCalLongIters : kCalShortIters;
}

/** A taskset lowered onto the kernel generator. */
class SchedWorkload : public Workload
{
  public:
    SchedWorkload(Taskset ts, LowerParams p, std::vector<unsigned> iters,
                  unsigned horizon_ticks, std::string name)
        : ts_(std::move(ts)), p_(p), iters_(std::move(iters)),
          horizon_(horizon_ticks), name_(std::move(name))
    {}

    WorkloadInfo
    info() const override
    {
        WorkloadInfo info;
        info.name = name_;
        info.usesDelayUntil = true;
        // Quiescent tail after the horizon: the last jobs (released
        // just under the horizon) must still finish, then the losers
        // park. Four extra max-periods is comfortably past any
        // deadline that was met.
        const unsigned maxT = maxPeriod();
        info.maxCycles = static_cast<std::uint64_t>(
                             horizon_ + 4 * maxT + 64) *
                         p_.timerPeriodCycles;
        return info;
    }

    void
    addTasks(KernelBuilder &kb) const override
    {
        kb.a().dataWord("w_done", 0);
        const unsigned total = static_cast<unsigned>(ts_.tasks.size());
        for (unsigned i = 0; i < total; ++i) {
            const SchedTask &t = ts_.tasks[i];
            TaskSpec spec;
            spec.name = csprintf("sched%u", i);
            spec.priority = static_cast<Priority>(t.priority);
            const unsigned iters = iters_[i];
            spec.body = [this, i, t, iters, total](KernelBuilder &k) {
                emitTaskBody(k, i, t, iters, total);
            };
            kb.addTask(spec);
        }
    }

  private:
    unsigned
    maxPeriod() const
    {
        unsigned maxT = 1;
        for (const SchedTask &t : ts_.tasks)
            maxT = std::max(maxT, t.periodTicks);
        return maxT;
    }

    void
    emitTaskBody(KernelBuilder &k, unsigned i, const SchedTask &t,
                 unsigned iters, unsigned total) const
    {
        Assembler &a = k.a();
        // S0 = next absolute release tick, S1 = job index (preserved
        // across preemption like every register).
        a.li(S0, static_cast<SWord>(p_.phaseTicks));
        a.li(S1, 0);
        const std::string loop = csprintf("w_sched_loop_%u", i);
        a.label(loop);
        k.callDelayUntil(S0);
        a.li(T3, static_cast<SWord>(i << 16));
        a.or_(T3, T3, S1);
        k.emitTraceReg(tag::kJobStart, T3);
        k.emitBusyLoop(iters);
        a.li(T3, static_cast<SWord>(i << 16));
        a.or_(T3, T3, S1);
        k.emitTraceReg(tag::kJobDone, T3);
        a.addi(S1, S1, 1);
        if (t.periodTicks < 2048) {
            a.addi(S0, S0, static_cast<SWord>(t.periodTicks));
        } else {
            a.li(T4, static_cast<SWord>(t.periodTicks));
            a.add(S0, S0, T4);
        }
        a.li(T4, static_cast<SWord>(horizon_));
        a.blt(S0, T4, loop);

        // Suite finish convention: count into w_done, the last task
        // exits 0, the others park on a quasi-infinite delay.
        a.csrrci(Zero, csr::kMstatus, 8);
        a.la(T0, "w_done");
        a.lw(T1, 0, T0);
        a.addi(T1, T1, 1);
        a.sw(T1, 0, T0);
        a.csrrsi(Zero, csr::kMstatus, 8);
        a.li(T2, static_cast<SWord>(total));
        const std::string park = csprintf("w_sched_park_%u", i);
        a.bne(T1, T2, park);
        k.emitExit(0);
        a.label(park);
        const std::string parkloop = csprintf("w_sched_parkloop_%u", i);
        a.label(parkloop);
        a.li(A0, 1'000'000);
        a.call("k_delay");
        a.j(parkloop);
    }

    Taskset ts_;
    LowerParams p_;
    std::vector<unsigned> iters_;
    unsigned horizon_;
    std::string name_;
};

/** Single-task two-level busy probe driving calibrateBusy(). */
class CalibrationWorkload : public Workload
{
  public:
    explicit CalibrationWorkload(Word timer_period_cycles)
        : clk_(timer_period_cycles)
    {}

    WorkloadInfo
    info() const override
    {
        WorkloadInfo info;
        info.name = "sched_calibration";
        info.usesDelayUntil = true;
        info.maxCycles = static_cast<std::uint64_t>(
                             kCalPhaseTicks +
                             kCalJobs * kCalPeriodTicks + 100) *
                         clk_;
        return info;
    }

    void
    addTasks(KernelBuilder &kb) const override
    {
        TaskSpec spec;
        spec.name = "cal";
        spec.priority = 1;
        spec.body = [](KernelBuilder &k) {
            Assembler &a = k.a();
            for (unsigned j = 0; j < kCalJobs; ++j) {
                const unsigned wake =
                    kCalPhaseTicks + j * kCalPeriodTicks;
                a.li(S0, static_cast<SWord>(wake));
                k.callDelayUntil(S0);
                a.li(T3, static_cast<SWord>(j));
                k.emitTraceReg(tag::kJobStart, T3);
                k.emitBusyLoop(calIters(j));
                a.li(T3, static_cast<SWord>(j));
                k.emitTraceReg(tag::kJobDone, T3);
            }
            k.emitExit(0);
        };
        kb.addTask(spec);
    }

  private:
    Word clk_;
};

} // namespace

unsigned
horizonTicksFor(const Taskset &ts, const LowerParams &p)
{
    if (p.horizonTicks)
        return p.horizonTicks;
    unsigned maxT = 1;
    for (const SchedTask &t : ts.tasks)
        maxT = std::max(maxT, t.periodTicks);
    return p.phaseTicks + 4 * maxT;
}

unsigned
expectedJobs(const SchedTask &t, const LowerParams &p,
             unsigned horizon_ticks)
{
    if (horizon_ticks <= p.phaseTicks)
        return 0;
    // Releases at phase, phase+T, ... strictly below the horizon.
    return (horizon_ticks - p.phaseTicks + t.periodTicks - 1) /
           t.periodTicks;
}

BusyCalibration
calibrateBusy(CoreKind core, const RtosUnitConfig &unit,
              Word timer_period_cycles)
{
    const CalibrationWorkload w(timer_period_cycles);
    RunOptions opts;
    opts.timerPeriodCycles = timer_period_cycles;
    std::vector<GuestEvent> events;
    opts.postRun = [&events](Simulation &sim) {
        events = sim.hostIo().events();
    };
    const RunResult rr = runWorkload(core, unit, w, opts);
    rtu_assert(rr.ok, "busy calibration failed on %s/%s: %s",
               coreKindName(core), unit.name().c_str(),
               rr.diagnostic.c_str());

    std::map<unsigned, Cycle> start, done;
    for (const GuestEvent &e : events) {
        if (e.tag == tag::kJobStart)
            start[e.value] = e.cycle;
        else if (e.tag == tag::kJobDone)
            done[e.value] = e.cycle;
    }

    double spanShortMin = 0, spanShortMax = 0, spanLongMax = 0;
    double relLatMax = 0;
    bool haveShort = false, haveLong = false;
    for (unsigned j = 0; j < kCalJobs; ++j) {
        const auto s = start.find(j);
        const auto d = done.find(j);
        rtu_assert(s != start.end() && d != done.end(),
                   "calibration job %u left no trace events", j);
        const double span =
            static_cast<double>(d->second) - static_cast<double>(s->second);
        const double release =
            static_cast<double>(kCalPhaseTicks + j * kCalPeriodTicks) *
            timer_period_cycles;
        relLatMax = std::max(
            relLatMax, static_cast<double>(s->second) - release);
        if (calIters(j) == kCalShortIters) {
            spanShortMin = haveShort ? std::min(spanShortMin, span) : span;
            spanShortMax = std::max(spanShortMax, span);
            haveShort = true;
        } else {
            spanLongMax = std::max(spanLongMax, span);
            haveLong = true;
        }
    }
    rtu_assert(haveShort && haveLong, "calibration saw no jobs");

    BusyCalibration cal;
    const double dIters = kCalLongIters - kCalShortIters;
    // Worst long span against best short span: an upper bound on the
    // marginal cost (tick ISRs landing inside a span only inflate it,
    // which keeps the RTA side conservative).
    cal.cyclesPerIter = (spanLongMax - spanShortMin) / dIters;
    if (cal.cyclesPerIter <= 0.0)
        cal.cyclesPerIter = spanLongMax / kCalLongIters;
    const double base =
        std::max(0.0, spanShortMax - kCalShortIters * cal.cyclesPerIter);
    cal.perJobOverheadCycles = relLatMax + base;
    return cal;
}

unsigned
busyItersFor(const BusyCalibration &cal, double exec_cycles)
{
    const double iters =
        (exec_cycles - cal.perJobOverheadCycles) / cal.cyclesPerIter;
    if (iters < 1.0)
        return 1;
    return static_cast<unsigned>(std::lround(iters));
}

double
effectiveExecCycles(const BusyCalibration &cal, unsigned iters)
{
    return cal.perJobOverheadCycles + iters * cal.cyclesPerIter;
}

std::unique_ptr<Workload>
lowerTaskset(const Taskset &ts, const LowerParams &p,
             const BusyCalibration &cal, const std::string &name)
{
    rtu_assert(!ts.tasks.empty() && ts.tasks.size() < kernel::kMaxTasks,
               "taskset with %zu tasks cannot be lowered",
               ts.tasks.size());
    const unsigned horizon = horizonTicksFor(ts, p);
    std::vector<unsigned> iters;
    for (const SchedTask &t : ts.tasks) {
        const double nominal =
            t.util * t.periodTicks * p.timerPeriodCycles;
        iters.push_back(busyItersFor(cal, nominal));
    }
    for (const SchedTask &t : ts.tasks) {
        const unsigned jobs = expectedJobs(t, p, horizon);
        rtu_assert(jobs < (1u << 16),
                   "job index would overflow the 16-bit trace field");
    }
    return std::make_unique<SchedWorkload>(ts, p, std::move(iters),
                                           horizon, name);
}

DeadlineReport
checkDeadlines(const std::vector<GuestEvent> &events, const Taskset &ts,
               const LowerParams &p, unsigned horizon_ticks)
{
    const double clk = static_cast<double>(p.timerPeriodCycles);
    // done[(task << 16) | job] = completion cycle (first write wins;
    // a job completes once).
    std::map<Word, Cycle> done;
    for (const GuestEvent &e : events) {
        if (e.tag != tag::kJobDone)
            continue;
        done.emplace(e.value, e.cycle);
    }

    DeadlineReport report;
    for (unsigned i = 0; i < ts.tasks.size(); ++i) {
        const SchedTask &t = ts.tasks[i];
        TaskObservation obs;
        obs.jobsExpected = expectedJobs(t, p, horizon_ticks);
        const double deadlineCycles = t.deadlineTicks * clk;
        for (unsigned j = 0; j < obs.jobsExpected; ++j) {
            const double release =
                (p.phaseTicks + static_cast<double>(j) * t.periodTicks) *
                clk;
            const auto it = done.find((i << 16) | j);
            if (it == done.end()) {
                // Never completed inside the run: count it as missed.
                ++obs.misses;
                obs.maxResponseCycles =
                    std::max(obs.maxResponseCycles, deadlineCycles + 1);
                continue;
            }
            ++obs.jobsDone;
            const double resp =
                static_cast<double>(it->second) - release;
            obs.maxResponseCycles = std::max(obs.maxResponseCycles, resp);
            if (resp > deadlineCycles)
                ++obs.misses;
        }
        report.jobsExpected += obs.jobsExpected;
        report.jobsDone += obs.jobsDone;
        report.misses += obs.misses;
        if (deadlineCycles > 0.0)
            report.maxNormResponse =
                std::max(report.maxNormResponse,
                         obs.maxResponseCycles / deadlineCycles);
        report.tasks.push_back(obs);
    }
    return report;
}

} // namespace rtu
