#include "taskset.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "kernel/layout.hh"

namespace rtu {

double
Taskset::totalUtil() const
{
    double sum = 0.0;
    for (const SchedTask &t : tasks)
        sum += t.util;
    return sum;
}

std::vector<double>
uunifastDiscard(SplitMix64 &rng, unsigned n, double total)
{
    rtu_assert(n > 0, "uunifastDiscard needs at least one task");
    rtu_assert(total > 0.0 && total <= static_cast<double>(n),
               "total utilization %f infeasible for %u tasks", total, n);
    std::vector<double> utils;
    for (;;) {
        utils.clear();
        double sum = total;
        bool ok = true;
        for (unsigned i = 1; i < n; ++i) {
            const double next =
                sum * std::pow(rng.unit(),
                               1.0 / static_cast<double>(n - i));
            const double u = sum - next;
            if (u > 1.0) {
                ok = false;
                break;
            }
            utils.push_back(u);
            sum = next;
        }
        if (ok && sum <= 1.0) {
            utils.push_back(sum);
            return utils;
        }
    }
}

std::uint64_t
tasksetSeed(std::uint64_t campaign_seed, unsigned util_index,
            unsigned taskset_index)
{
    // One draw per coordinate keeps neighbouring tasksets decorrelated
    // even for small campaign seeds.
    SplitMix64 mix(campaign_seed ^ 0x5c3ed5ab111e0d01ull);
    const std::uint64_t a = mix.next();
    const std::uint64_t b = mix.next();
    return a ^ (b * (2 * static_cast<std::uint64_t>(util_index) + 1)) ^
           ((static_cast<std::uint64_t>(taskset_index) + 1) *
            0x9e3779b97f4a7c15ull);
}

Taskset
makeTaskset(std::uint64_t seed, const TasksetParams &params)
{
    rtu_assert(params.tasks >= 1 && params.tasks < kernel::kMaxTasks,
               "taskset size %u outside [1, %u] (idle task + distinct "
               "priorities 1..%u)",
               params.tasks, kernel::kMaxTasks - 1,
               kernel::kMaxTasks - 1);
    rtu_assert(params.periodMinTicks >= 2 &&
                   params.periodMaxTicks >= params.periodMinTicks,
               "period range [%u, %u] ticks is invalid",
               params.periodMinTicks, params.periodMaxTicks);

    SplitMix64 rng(seed);
    const std::vector<double> utils =
        uunifastDiscard(rng, params.tasks, params.totalUtil);

    Taskset ts;
    const double lnMin = std::log(static_cast<double>(params.periodMinTicks));
    const double lnMax = std::log(static_cast<double>(params.periodMaxTicks));
    for (unsigned i = 0; i < params.tasks; ++i) {
        SchedTask t;
        t.util = utils[i];
        const double lnT = lnMin + rng.unit() * (lnMax - lnMin);
        t.periodTicks = static_cast<unsigned>(std::lround(std::exp(lnT)));
        t.periodTicks = std::max(params.periodMinTicks,
                                 std::min(params.periodMaxTicks,
                                          t.periodTicks));
        t.deadlineTicks = t.periodTicks;
        ts.tasks.push_back(t);
    }

    // Rate-monotonic priorities: sort by period ascending (stable, so
    // ties resolve by draw order) and hand out distinct priorities
    // 7, 6, ... downwards; the result is highest-priority-first.
    std::stable_sort(ts.tasks.begin(), ts.tasks.end(),
                     [](const SchedTask &a, const SchedTask &b) {
                         return a.periodTicks < b.periodTicks;
                     });
    for (unsigned i = 0; i < ts.tasks.size(); ++i)
        ts.tasks[i].priority = kernel::kMaxTasks - 1 - i;
    return ts;
}

} // namespace rtu
