/**
 * @file
 * Fixed-priority preemptive response-time analysis with explicit
 * context-switch and tick-interrupt overhead accounting.
 *
 * The classic recurrence (Joseph & Pandya; Audsley et al.) extended
 * with the overhead model of Burns & Wellings' tick-driven analysis:
 *
 *   R_i = C_i + 2S + sum_{j in hp(i)} ceil(R_i / T_j) (C_j + 2S)
 *             + ceil(R_i / P_clk) C_clk
 *
 * where S is one context-switch episode (irq-assert to mret), charged
 * twice per job (switch in + switch away), C_clk is one tick-only
 * timer ISR episode and P_clk the timer period. The overhead terms
 * are *not* constants: callers feed them from measured per-config
 * trace phases and the static WCET bound (see campaign.hh), which is
 * the whole point of the co-analysis — a faster switch path directly
 * widens the schedulable region. All quantities are in cycles.
 */

#ifndef RTU_SCHED_RTA_HH
#define RTU_SCHED_RTA_HH

#include <vector>

#include "sched/taskset.hh"

namespace rtu {

/** Overhead terms of the recurrence, in cycles. */
struct RtaOverheads
{
    double switchCost = 0.0;       ///< S: one switch episode
    double tickCost = 0.0;         ///< C_clk: one tick-only ISR episode
    double tickPeriodCycles = 0.0; ///< P_clk; <= 0 disables the term
};

/** One task as the solver sees it (cycles, priority order implied). */
struct RtaTask
{
    double execCycles = 0.0;      ///< effective WCET incl. job overhead
    double periodCycles = 0.0;
    double deadlineCycles = 0.0;
};

struct RtaTaskResult
{
    bool schedulable = false;
    double responseCycles = 0.0;  ///< fixpoint; > deadline when not
};

struct RtaResult
{
    bool schedulable = false;     ///< every task converged within D
    std::vector<RtaTaskResult> tasks;
};

/**
 * Solve the recurrence for @p tasks, which must be sorted highest
 * priority first. Iteration stops at the fixpoint or as soon as R
 * exceeds the deadline (the recurrence is monotone).
 */
RtaResult responseTimeAnalysis(const std::vector<RtaTask> &tasks,
                               const RtaOverheads &overheads);

/** Convert a taskset (ticks) into solver tasks using nominal WCETs
 *  C_i = util_i * T_i, with @p cycles_per_tick cycles per tick. */
std::vector<RtaTask> rtaTasksFromTaskset(const Taskset &ts,
                                         double cycles_per_tick);

/**
 * Breakdown utilization: the largest total utilization U such that
 * the taskset *shape* (per-task utilization shares and periods),
 * scaled to total U, stays RTA-schedulable under @p overheads.
 * Binary search over the exec-time scale factor; monotone because
 * response times are monotone in every C_i. Returns 0 when even an
 * infinitesimal load misses (overheads alone saturate a deadline).
 */
double breakdownUtilization(const Taskset &shape,
                            const RtaOverheads &overheads,
                            double cycles_per_tick,
                            double tolerance = 1e-3);

} // namespace rtu

#endif // RTU_SCHED_RTA_HH
