/**
 * @file
 * Schedulability campaign: measured overheads -> RTA verdicts ->
 * simulated deadline validation, over a (core x config x utilization
 * x taskset) grid.
 *
 * For every (core, configuration) the campaign first *measures* the
 * RTA overhead terms — no constants:
 *
 *   S      = margin * max switch-episode latency (irq-assert -> mret,
 *            from trace phases of probe runs incl. a lowered taskset);
 *            on CV32E40P additionally raised to the static ISR WCET
 *            bound (the lint-verified analyzer) plus margin * the
 *            measured worst interrupt-entry latency,
 *   C_clk  = margin * max tick-only episode latency (timer episodes
 *            that switched no task),
 *
 * then solves the RTA recurrence per taskset with per-job costs from
 * the busy calibration (effective, not nominal, so the bound covers
 * what actually runs), and finally replays each taskset on the
 * simulator counting deadline misses. Soundness invariant checked
 * per point: RTA-schedulable implies a clean run with zero misses;
 * the pessimism of the analysis is quantified on points where both
 * sides are schedulable.
 *
 * Determinism: overheads and calibrations are computed once per
 * (core, config) up front; the point grid fans out through
 * SweepRunner::forEachIndex into index-addressed slots, so JSONL
 * output is byte-identical at any thread count.
 */

#ifndef RTU_SCHED_CAMPAIGN_HH
#define RTU_SCHED_CAMPAIGN_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sched/lower.hh"
#include "sched/rta.hh"
#include "sched/taskset.hh"

namespace rtu {

/** Campaign grid and analysis knobs. */
struct SchedCampaignSpec
{
    std::vector<CoreKind> cores = {CoreKind::kCv32e40p};
    std::vector<RtosUnitConfig> configs;
    std::vector<double> utilGrid = {0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
    unsigned tasksetsPerUtil = 12;
    std::uint64_t seed = 1;
    TasksetParams taskset;
    LowerParams lower;
    /**
     * Safety multiplier on measured overheads: probe runs cannot
     * visit every microarchitectural state (cache residency, in-
     * flight divides) a taskset run will, so measured maxima are
     * scaled before entering the recurrence. The static WCET bound
     * needs no margin and is used unscaled.
     */
    double margin = 1.25;
    bool simulate = true;  ///< false: RTA only (no validation runs)
    unsigned threads = 1;
};

/** Measured overhead terms plus their provenance, per (core, config). */
struct OverheadMeasurement
{
    RtaOverheads rta;          ///< what the solver consumes
    BusyCalibration busy;      ///< per-job cost model
    double measSwitchMax = 0;  ///< raw max switch episode latency
    double measTickMax = 0;    ///< raw max tick-only episode latency
    double measEntryMax = 0;   ///< raw max irq-assert -> trap-taken
    bool hasWcet = false;
    double wcetCycles = 0;     ///< static ISR bound (CV32E40P)
};

/**
 * Probe one (core, configuration): trace-phase measurement runs over
 * a lowered probe taskset plus two standard workloads, the busy
 * calibration, and (CV32E40P) the static WCET bound of the actual
 * sched-kernel ISR. Deterministic in its arguments.
 */
OverheadMeasurement measureOverheads(CoreKind core,
                                     const RtosUnitConfig &unit,
                                     const SchedCampaignSpec &spec);

/** One (core, config, util, taskset) grid point. */
struct SchedPointResult
{
    CoreKind core = CoreKind::kCv32e40p;
    std::string config;
    unsigned utilIndex = 0;
    unsigned tasksetIndex = 0;
    double util = 0.0;           ///< requested total utilization
    std::uint64_t tasksetSeed = 0;
    bool rtaSchedulable = false;
    double rtaMaxNorm = 0.0;     ///< max_i R_i / D_i
    bool simRan = false;
    bool simOk = false;          ///< run exited cleanly
    unsigned jobsExpected = 0;
    unsigned jobsDone = 0;
    unsigned misses = 0;
    double simMaxNorm = 0.0;     ///< max observed response / deadline
    bool sound = true;           ///< RTA-schedulable => clean, no miss
    std::string status;          ///< run status / diagnostic
};

/** Per-(core, config) rollup. */
struct SchedConfigSummary
{
    CoreKind core = CoreKind::kCv32e40p;
    std::string config;
    OverheadMeasurement overheads;
    unsigned points = 0;
    unsigned rtaSchedulable = 0;
    unsigned simSchedulable = 0;   ///< clean run, zero misses
    unsigned violations = 0;       ///< soundness violations
    /** Mean of rtaMaxNorm / simMaxNorm over points where both sides
     *  are schedulable (>= 1: how pessimistic the analysis is). */
    double meanPessimism = 0.0;
};

struct SchedCampaignResult
{
    std::vector<SchedPointResult> points;      ///< grid order
    std::vector<SchedConfigSummary> summaries; ///< (core, config) order
    unsigned soundnessViolations = 0;
};

/** Run the whole campaign (measurement serial, grid fan-out). */
SchedCampaignResult runSchedCampaign(const SchedCampaignSpec &spec);

/**
 * Byte-stable JSONL: one schema-stamped header object carrying the
 * campaign parameters and per-config measured overheads, then one
 * line per grid point. Independent of --threads.
 */
void writeSchedJsonl(std::ostream &os, const SchedCampaignSpec &spec,
                     const SchedCampaignResult &result);

/** JSONL schema version stamped into the header line. */
constexpr unsigned kSchedSchemaVersion = 1;

} // namespace rtu

#endif // RTU_SCHED_CAMPAIGN_HH
