#include "rta.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtu {

namespace {

/**
 * ceil(x / y) robust against the floating-point representation of an
 * exactly divisible pair landing a hair above the integer: nudge by
 * one part in 2^40 before ceiling, far below any meaningful cycle
 * resolution at these magnitudes.
 */
double
ceilDiv(double x, double y)
{
    const double q = x / y;
    return std::ceil(q * (1.0 - 0x1.0p-40));
}

} // namespace

RtaResult
responseTimeAnalysis(const std::vector<RtaTask> &tasks,
                     const RtaOverheads &oh)
{
    RtaResult result;
    result.schedulable = true;
    const bool tick = oh.tickCost > 0.0 && oh.tickPeriodCycles > 0.0;
    for (size_t i = 0; i < tasks.size(); ++i) {
        const double self = tasks[i].execCycles + 2.0 * oh.switchCost;
        double r = self;
        RtaTaskResult tr;
        // The recurrence is monotone non-decreasing from R = C + 2S,
        // so it either reaches a fixpoint or crosses the deadline;
        // the iteration cap only guards degenerate (zero-period)
        // input, which the assertions below exclude.
        for (unsigned iter = 0; iter < 100000; ++iter) {
            double next = self;
            for (size_t j = 0; j < i; ++j) {
                rtu_assert(tasks[j].periodCycles > 0.0,
                           "RTA task %zu has no period", j);
                next += ceilDiv(r, tasks[j].periodCycles) *
                        (tasks[j].execCycles + 2.0 * oh.switchCost);
            }
            if (tick)
                next += ceilDiv(r, oh.tickPeriodCycles) * oh.tickCost;
            if (next > tasks[i].deadlineCycles) {
                r = next;
                break;
            }
            if (next <= r)
                break;
            r = next;
        }
        tr.responseCycles = r;
        tr.schedulable = r <= tasks[i].deadlineCycles;
        result.schedulable = result.schedulable && tr.schedulable;
        result.tasks.push_back(tr);
    }
    return result;
}

std::vector<RtaTask>
rtaTasksFromTaskset(const Taskset &ts, double cycles_per_tick)
{
    std::vector<RtaTask> tasks;
    tasks.reserve(ts.tasks.size());
    for (const SchedTask &t : ts.tasks) {
        RtaTask rt;
        rt.periodCycles = t.periodTicks * cycles_per_tick;
        rt.deadlineCycles = t.deadlineTicks * cycles_per_tick;
        rt.execCycles = t.util * rt.periodCycles;
        tasks.push_back(rt);
    }
    return tasks;
}

double
breakdownUtilization(const Taskset &shape, const RtaOverheads &oh,
                     double cycles_per_tick, double tolerance)
{
    const double shapeUtil = shape.totalUtil();
    rtu_assert(shapeUtil > 0.0, "breakdown of a zero-utilization shape");
    const std::vector<RtaTask> nominal =
        rtaTasksFromTaskset(shape, cycles_per_tick);

    const auto schedulableAt = [&](double scale) {
        std::vector<RtaTask> scaled = nominal;
        for (RtaTask &t : scaled)
            t.execCycles *= scale;
        return responseTimeAnalysis(scaled, oh).schedulable;
    };

    // Scale is relative to the shape's own total; the answer is in
    // absolute utilization. Cap the probe at full load of the shape
    // normalized to 1.0 total utilization.
    const double maxScale = 1.0 / shapeUtil;
    if (!schedulableAt(tolerance))
        return 0.0;
    double lo = tolerance, hi = maxScale;
    if (schedulableAt(maxScale))
        return maxScale * shapeUtil;
    while ((hi - lo) * shapeUtil > tolerance) {
        const double mid = 0.5 * (lo + hi);
        if (schedulableAt(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo * shapeUtil;
}

} // namespace rtu
