/**
 * @file
 * Lowering: turn a synthetic taskset into a runnable Workload on the
 * generated microFreeRTOS kernel, and check the resulting guest
 * trace for deadline misses.
 *
 * Each task becomes a periodic loop: k_delay_until(absolute tick),
 * kJobStart trace, calibrated busy loop, kJobDone trace, next
 * release. Releases share a common phase (a synchronous critical
 * instant, the worst case fixed-priority RTA assumes), and the run
 * ends after a fixed horizon via the suite's w_done convention. Busy
 * iterations are derived from a per-(core, config) calibration run so
 * a nominal WCET in cycles maps onto real guest work; the effective
 * (calibrated) cost is what the RTA solver is fed, so the analysis
 * bounds what actually executes.
 *
 * Deadline checking is host-side: job completion events carry
 * (task << 16 | job), releases are at known absolute ticks (boot
 * programs the first compare to one period, so tick t fires at
 * t * timerPeriodCycles), and a miss is a completion after
 * (release + deadline) * cycles-per-tick — or a job that never
 * completed inside the run.
 */

#ifndef RTU_SCHED_LOWER_HH
#define RTU_SCHED_LOWER_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sched/taskset.hh"
#include "sim/hostio.hh"
#include "workloads/workloads.hh"

namespace rtu {

/** Shared lowering knobs (time unit: timer ticks). */
struct LowerParams
{
    unsigned phaseTicks = 2;    ///< common first release (critical instant)
    unsigned horizonTicks = 0;  ///< 0 = auto (phase + 4 * max period)
    Word timerPeriodCycles = 1000;
};

/** Busy-loop cost model measured on one (core, configuration). */
struct BusyCalibration
{
    double cyclesPerIter = 8.0;         ///< marginal loop-iteration cost
    double perJobOverheadCycles = 0.0;  ///< release-to-start + scaffold
};

/** Release horizon for @p ts under @p p (auto rule when 0). */
unsigned horizonTicksFor(const Taskset &ts, const LowerParams &p);

/** Jobs task @p t releases before the horizon. */
unsigned expectedJobs(const SchedTask &t, const LowerParams &p,
                      unsigned horizon_ticks);

/**
 * Measure the busy-loop cost model: a single periodic task runs jobs
 * with two known iteration counts; spans between its kJobStart and
 * kJobDone events give the marginal per-iteration cost, the
 * release-to-start gap gives the per-job overhead. Deterministic.
 */
BusyCalibration calibrateBusy(CoreKind core, const RtosUnitConfig &unit,
                              Word timer_period_cycles);

/** Busy iterations approximating @p exec_cycles of work (min 1). */
unsigned busyItersFor(const BusyCalibration &cal, double exec_cycles);

/** Upper-bound cost of a job running @p iters iterations — this is
 *  the C_i handed to the RTA solver, never the nominal value. */
double effectiveExecCycles(const BusyCalibration &cal, unsigned iters);

/** Build the runnable workload for @p ts (name appears in traces). */
std::unique_ptr<Workload> lowerTaskset(const Taskset &ts,
                                       const LowerParams &p,
                                       const BusyCalibration &cal,
                                       const std::string &name);

/** Per-task outcome of a validation run. */
struct TaskObservation
{
    unsigned jobsExpected = 0;
    unsigned jobsDone = 0;
    unsigned misses = 0;
    double maxResponseCycles = 0.0;
};

struct DeadlineReport
{
    unsigned jobsExpected = 0;
    unsigned jobsDone = 0;
    unsigned misses = 0;
    /** max over jobs of response / deadline (1.0 = exactly on time). */
    double maxNormResponse = 0.0;
    std::vector<TaskObservation> tasks;
};

/** Score a guest event stream against the taskset's deadlines. */
DeadlineReport checkDeadlines(const std::vector<GuestEvent> &events,
                              const Taskset &ts, const LowerParams &p,
                              unsigned horizon_ticks);

} // namespace rtu

#endif // RTU_SCHED_LOWER_HH
